// Figure 17 / Table 6: the five representative TPC-H / TPC-DS joins
// (J1=Q7, J2=Q18, J3=Q19, J4=Q64, J5=Q95) in two type regimes: 4-byte keys
// with 8-byte non-keys (the benchmark-faithful mix) and all-8-byte. Paper
// observations: *-OM ahead on J1/J2 (large, high match); small-input J3
// favors unclustered gathers (L2 absorbs them); PHJ-OM far ahead on the
// payload-heavy J4; the narrow self-join J5 is won by PHJ-* on partitioning
// cost; with all-8-byte types SMJ-OM's edge vanishes while PHJ-OM stays
// consistently best.

#include "bench_common.h"
#include "workload/tpc.h"

using namespace gpujoin;         // NOLINT(build/namespaces)
using namespace gpujoin::bench;  // NOLINT(build/namespaces)

namespace {

void RunRegime(const char* label, const char* short_label, DataType key_type,
               DataType nonkey_type) {
  std::printf("\n-- %s --\n", label);
  vgpu::Device reporter_device = harness::MakeBenchDevice();
  RunReporter rep(reporter_device, RunReporter::Kind::kJoin,
                  {"types", "join"});
  for (const workload::TpcJoinSpec& spec : workload::TpcJoinSpecs()) {
    vgpu::Device device = harness::MakeBenchDevice();
    workload::TpcGenOptions gen;
    gen.scale_tuples = harness::ScaleTuples();
    gen.key_type = key_type;
    gen.nonkey_type = nonkey_type;
    auto w = workload::GenerateTpcJoin(spec, gen);
    GPUJOIN_CHECK_OK(w.status());
    auto up = harness::Upload(device, *w);
    GPUJOIN_CHECK_OK(up.status());
    join::JoinOptions opts;
    opts.pk_fk = spec.pk_fk;
    for (join::JoinAlgo algo : join::kAllJoinAlgos) {
      const auto res = MustJoin(device, algo, up->r, up->s, opts);
      rep.Add({short_label, spec.id}, algo, res);
    }
  }
  rep.Print();
}

}  // namespace

int main() {
  harness::PrintBanner("Figure 17 / Table 6", "TPC-H and TPC-DS joins");
  RunRegime("4-byte keys, 8-byte non-key attributes", "4B+8B",
            DataType::kInt32, DataType::kInt64);
  RunRegime("all attributes 8-byte", "8B", DataType::kInt64, DataType::kInt64);
  gpujoin::harness::PrintSimSummary();
  return 0;
}
