// GB3 (designed; see DESIGN.md §0): effect of the number of aggregated
// columns and of value widths — the group-by analog of the join-side
// Figures 12 and 15. The GFTR-style partitioned variant transforms every
// aggregate column (2 passes each); sort-based pays 4 passes; the global
// hash variant's cost is per-update and grows with the aggregate count
// through extra atomics.

#include "bench_common.h"
#include "groupby/groupby.h"

using namespace gpujoin;         // NOLINT(build/namespaces)
using namespace gpujoin::bench;  // NOLINT(build/namespaces)

int main() {
  harness::PrintBanner("GB3", "aggregate count x value width sweep");
  vgpu::Device device = harness::MakeBenchDevice();

  RunReporter rep(device, RunReporter::Kind::kGroupBy,
                  {"agg cols", "value type"});
  for (DataType vt : {DataType::kInt32, DataType::kInt64}) {
    for (int cols : {1, 2, 4, 8}) {
      workload::GroupByWorkloadSpec spec;
      spec.rows = harness::ScaleTuples();
      spec.num_groups = uint64_t{1} << 14;
      spec.payload_cols = cols;
      spec.payload_type = vt;
      auto host = workload::GenerateGroupByInput(spec);
      GPUJOIN_CHECK_OK(host.status());
      auto input = Table::FromHost(device, *host);
      GPUJOIN_CHECK_OK(input.status());
      groupby::GroupBySpec gs;
      for (int c = 1; c <= cols; ++c) {
        gs.aggregates.push_back({c, groupby::AggOp::kSum});
      }
      for (groupby::GroupByAlgo algo : groupby::kAllGroupByAlgos) {
        device.FlushL2();
        auto res = RunGroupBy(device, algo, *input, gs);
        GPUJOIN_CHECK_OK(res.status());
        rep.Add({std::to_string(cols), DataTypeName(vt)}, algo, *res);
      }
    }
  }
  rep.Print();
  gpujoin::harness::PrintSimSummary();
  return 0;
}
