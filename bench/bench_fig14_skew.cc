// Figure 14: effect of foreign-key skewness (Zipf factor sweep, |R| = |S|,
// two payloads each). The paper's observations: PHJ-UM's bucket-chain
// partitioning collapses once the Zipf factor exceeds 1 (shared-memory
// atomic contention), RADIX-PARTITION-based transforms (PHJ-OM, SMJ-*) are
// flat across skew, match finding is robust everywhere, materialization
// shrinks with skew (fewer distinct primary keys are touched), and PHJ-OM
// is the best throughout.

#include "bench_common.h"

using namespace gpujoin;         // NOLINT(build/namespaces)
using namespace gpujoin::bench;  // NOLINT(build/namespaces)

int main() {
  harness::PrintBanner("Figure 14", "foreign-key skew sweep (Zipf factor)");
  vgpu::Device device = harness::MakeBenchDevice();

  RunReporter rep(device, RunReporter::Kind::kJoin, {"zipf"});
  for (double theta : {0.0, 0.5, 0.75, 1.0, 1.25, 1.5}) {
    workload::JoinWorkloadSpec spec;
    spec.r_rows = harness::ScaleTuples();
    spec.s_rows = harness::ScaleTuples();
    spec.r_payload_cols = 2;
    spec.s_payload_cols = 2;
    spec.zipf_theta = theta;
    auto w = MustUpload(device, spec);
    for (join::JoinAlgo algo : join::kAllJoinAlgos) {
      const auto res = MustJoin(device, algo, w.r, w.s);
      rep.Add({harness::TablePrinter::Fmt(theta, 2)}, algo, res);
    }
  }
  rep.Print();
  gpujoin::harness::PrintSimSummary();
  return 0;
}
