// Figure 13: effect of the match ratio (|R| = |S|, two payloads each).
// The paper: *-OM ahead at high match ratios; below ~25% the GFUR variants
// win because little is materialized, with PHJ-UM best at low ratios.

#include "bench_common.h"

using namespace gpujoin;         // NOLINT(build/namespaces)
using namespace gpujoin::bench;  // NOLINT(build/namespaces)

int main() {
  harness::PrintBanner("Figure 13", "match ratio sweep");
  vgpu::Device device = harness::MakeBenchDevice();

  RunReporter rep(device, RunReporter::Kind::kJoin, {"match ratio"});
  for (double ratio : {1.0, 0.75, 0.5, 0.25, 0.1, 0.03}) {
    workload::JoinWorkloadSpec spec;
    spec.r_rows = harness::ScaleTuples();
    spec.s_rows = harness::ScaleTuples();
    spec.r_payload_cols = 2;
    spec.s_payload_cols = 2;
    spec.match_ratio = ratio;
    auto w = MustUpload(device, spec);
    for (join::JoinAlgo algo : join::kAllJoinAlgos) {
      const auto res = MustJoin(device, algo, w.r, w.s);
      rep.Add({harness::TablePrinter::Fmt(ratio, 2)}, algo, res);
    }
  }
  rep.Print();
  gpujoin::harness::PrintSimSummary();
  return 0;
}
