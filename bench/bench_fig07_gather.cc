// Figure 7: efficiency of the unclustered GATHER vs the clustered GATHER
// *including* the additional transformation (sort or partition) cost, on
// both device configurations. The paper reports, on the A100, partitioning
// + clustered gather 1.79x faster than the unclustered gather, and sorting
// + clustered gather 1.23x faster (2.2x / 1.37x on the RTX 3090).

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <random>

#include "bench_common.h"
#include "join/transform.h"
#include "prim/hash_join.h"
#include "prim/gather.h"

using namespace gpujoin;         // NOLINT(build/namespaces)
using namespace gpujoin::bench;  // NOLINT(build/namespaces)

namespace {

double UnclusteredGatherSeconds(vgpu::Device& device, uint64_t n) {
  auto in = vgpu::DeviceBuffer<int32_t>::Allocate(device, n).ValueOrDie();
  auto map = vgpu::DeviceBuffer<RowId>::Allocate(device, n).ValueOrDie();
  auto out = vgpu::DeviceBuffer<int32_t>::Allocate(device, n).ValueOrDie();
  std::vector<RowId> perm(n);
  std::iota(perm.begin(), perm.end(), 0u);
  std::mt19937_64 rng(7);
  std::shuffle(perm.begin(), perm.end(), rng);
  std::copy(perm.begin(), perm.end(), map.data());
  device.FlushL2();
  const double t0 = device.ElapsedSeconds();
  GPUJOIN_CHECK_OK(prim::Gather(device, in, map, &out));
  return device.ElapsedSeconds() - t0;
}

double TransformPlusClusteredSeconds(vgpu::Device& device, uint64_t n,
                                     join::TransformKind kind) {
  // The (key, payload) pair is transformed, then the payload is gathered
  // through the clustered output positions — the *-OM materialization path.
  auto keys = vgpu::DeviceBuffer<int32_t>::Allocate(device, n).ValueOrDie();
  auto vals = vgpu::DeviceBuffer<int32_t>::Allocate(device, n).ValueOrDie();
  std::mt19937_64 rng(3);
  for (uint64_t i = 0; i < n; ++i) keys[i] = static_cast<int32_t>(rng() % n);
  auto map = vgpu::DeviceBuffer<RowId>::Allocate(device, n).ValueOrDie();
  std::iota(map.data(), map.data() + n, 0u);
  auto out = vgpu::DeviceBuffer<int32_t>::Allocate(device, n).ValueOrDie();

  device.FlushL2();
  const double t0 = device.ElapsedSeconds();
  vgpu::DeviceBuffer<int32_t> tk, tv;
  const int bits = join::ChoosePartitionBits<int32_t>(
      n, prim::SharedHashCapacity<int32_t>(device));
  GPUJOIN_CHECK_OK(
      join::TransformPairOutOfPlace(device, keys, vals, &tk, &tv, kind, bits));
  GPUJOIN_CHECK_OK(prim::Gather(device, tv, map, &out));
  return device.ElapsedSeconds() - t0;
}

void RunForDevice(const vgpu::DeviceConfig& base) {
  const uint64_t n = harness::ScaleTuples();
  vgpu::Device device(vgpu::DeviceConfig::ScaledToWorkload(base, n),
                      harness::FaultInjectorFromEnv());
  const double un = UnclusteredGatherSeconds(device, n);
  const double part =
      TransformPlusClusteredSeconds(device, n, join::TransformKind::kPartition);
  const double sort =
      TransformPlusClusteredSeconds(device, n, join::TransformKind::kSort);

  harness::TablePrinter tp(
      {"device", "strategy", "time(ms)", "Mtuples/s", "vs unclustered"});
  auto add = [&](const char* name, double secs) {
    tp.AddRow({base.name, name, Ms(secs),
               harness::TablePrinter::Fmt(n / secs / 1e6, 0),
               harness::TablePrinter::Fmt(un / secs, 2) + "x"});
    // JSON counterpart: the whole strategy runs as one "match" phase.
    join::PhaseBreakdown phases;
    phases.match_s = secs;
    RecordRun(device, {{"device", base.name}, {"strategy", name}}, name,
              phases, n / secs / 1e6, device.memory_stats().peak_bytes, n,
              device.total_stats());
  };
  add("unclustered gather", un);
  add("partition + clustered gather", part);
  add("sort + clustered gather", sort);
  tp.Print();
}

}  // namespace

int main() {
  harness::PrintBanner("Figure 7",
                       "clustered gather incl. transform cost vs unclustered");
  RunForDevice(vgpu::DeviceConfig::A100());
  RunForDevice(vgpu::DeviceConfig::RTX3090());
  std::printf(
      "paper: A100 partition+gather 1.79x, sort+gather 1.23x; RTX3090 2.2x / "
      "1.37x\n");
  gpujoin::harness::PrintSimSummary();
  return 0;
}
