// Google-benchmark microbenchmarks of the *simulator itself* (host
// wall-clock, not simulated time): how fast the vgpu memory model and the
// primitives execute per element. These guard against regressions that
// would make the figure benches impractically slow.

#include <benchmark/benchmark.h>

#include <numeric>
#include <random>

#include "harness/harness.h"
#include "join/transform.h"
#include "prim/gather.h"
#include "prim/hash_join.h"
#include "vgpu/buffer.h"

namespace gpujoin {
namespace {

vgpu::Device MakeDevice(uint64_t n) {
  return vgpu::Device(
      vgpu::DeviceConfig::ScaledToWorkload(vgpu::DeviceConfig::A100(), n),
      harness::FaultInjectorFromEnv());
}

void BM_SimSequentialScan(benchmark::State& state) {
  const uint64_t n = static_cast<uint64_t>(state.range(0));
  vgpu::Device device = MakeDevice(n);
  auto buf = vgpu::DeviceBuffer<int32_t>::Allocate(device, n).ValueOrDie();
  for (auto _ : state) {
    vgpu::KernelScope ks(device, "scan");
    device.LoadSeq(buf.addr(), n, 4);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_SimSequentialScan)->Arg(1 << 16)->Arg(1 << 20);

void BM_SimSequentialStore(benchmark::State& state) {
  const uint64_t n = static_cast<uint64_t>(state.range(0));
  vgpu::Device device = MakeDevice(n);
  auto buf = vgpu::DeviceBuffer<int32_t>::Allocate(device, n).ValueOrDie();
  for (auto _ : state) {
    vgpu::KernelScope ks(device, "fill");
    device.StoreSeq(buf.addr(), n, 4);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_SimSequentialStore)->Arg(1 << 16)->Arg(1 << 20);

void BM_SimRandomGather(benchmark::State& state) {
  const uint64_t n = static_cast<uint64_t>(state.range(0));
  vgpu::Device device = MakeDevice(n);
  auto in = vgpu::DeviceBuffer<int32_t>::Allocate(device, n).ValueOrDie();
  auto map = vgpu::DeviceBuffer<RowId>::Allocate(device, n).ValueOrDie();
  auto out = vgpu::DeviceBuffer<int32_t>::Allocate(device, n).ValueOrDie();
  std::vector<RowId> perm(n);
  std::iota(perm.begin(), perm.end(), 0u);
  std::mt19937_64 rng(1);
  std::shuffle(perm.begin(), perm.end(), rng);
  std::copy(perm.begin(), perm.end(), map.data());
  for (auto _ : state) {
    benchmark::DoNotOptimize(prim::Gather(device, in, map, &out));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_SimRandomGather)->Arg(1 << 16)->Arg(1 << 20);

void BM_SimRadixSortPairs(benchmark::State& state) {
  const uint64_t n = static_cast<uint64_t>(state.range(0));
  vgpu::Device device = MakeDevice(n);
  auto keys = vgpu::DeviceBuffer<int32_t>::Allocate(device, n).ValueOrDie();
  auto vals = vgpu::DeviceBuffer<int32_t>::Allocate(device, n).ValueOrDie();
  std::mt19937_64 rng(2);
  for (uint64_t i = 0; i < n; ++i) keys[i] = static_cast<int32_t>(rng() % n);
  for (auto _ : state) {
    vgpu::DeviceBuffer<int32_t> tk, tv;
    benchmark::DoNotOptimize(join::TransformPairOutOfPlace(
        device, keys, vals, &tk, &tv, join::TransformKind::kSort, 0));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_SimRadixSortPairs)->Arg(1 << 16)->Arg(1 << 18);

}  // namespace
}  // namespace gpujoin

// Expanded BENCHMARK_MAIN() with the harness banner/summary around it, so
// this binary participates in the GPUJOIN_JSON_DIR export like every other
// bench (its BENCH_*.json simply has no rows: the measured quantity here is
// host time, not simulated throughput).
int main(int argc, char** argv) {
  gpujoin::harness::PrintBanner("sim primitives",
                                "simulator host-speed microbenchmarks");
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  gpujoin::harness::PrintSimSummary();
  return 0;
}
