// GB4 (designed; see DESIGN.md §0): the combined join + grouped-aggregation
// pipeline — the end-to-end query shape ("join a fact table with a
// dimension, aggregate per dimension attribute") that motivates processing
// both operators on the GPU. Compares every join algorithm feeding every
// group-by algorithm.

#include "bench_common.h"
#include "groupby/groupby.h"

using namespace gpujoin;         // NOLINT(build/namespaces)
using namespace gpujoin::bench;  // NOLINT(build/namespaces)

int main() {
  harness::PrintBanner("GB4", "join + grouped aggregation pipeline");
  vgpu::Device device = harness::MakeBenchDevice();

  // R: dimension with one group attribute (few distinct values); S: fact
  // with one measure. Join on the PK, aggregate the measure per attribute.
  workload::JoinWorkloadSpec spec;
  spec.r_rows = harness::ScaleTuples() / 2;
  spec.s_rows = harness::ScaleTuples();
  spec.r_payload_cols = 1;
  spec.s_payload_cols = 1;
  auto w = workload::GenerateJoinInput(spec);
  GPUJOIN_CHECK_OK(w.status());
  // Recode R's payload into a group attribute with 2^12 distinct values.
  for (auto& v : w->r.columns[1].values) v &= 0xfff;
  auto up = harness::Upload(device, *w);
  GPUJOIN_CHECK_OK(up.status());

  harness::TablePrinter tp({"join algo", "groupby algo", "join(ms)",
                            "groupby(ms)", "total(ms)"});
  for (join::JoinAlgo ja : join::kAllJoinAlgos) {
    device.FlushL2();
    auto jr = RunJoin(device, ja, up->r, up->s);
    GPUJOIN_CHECK_OK(jr.status());
    // Joined schema: (key, r_pay1, s_pay1) -> group by r_pay1, SUM(s_pay1).
    Table grouped_input = Table::FromColumns(
        "joined", {"group_attr", "measure"},
        [&] {
          std::vector<DeviceColumn> cols;
          cols.push_back(jr->output.TakeColumn(1));
          cols.push_back(jr->output.TakeColumn(2));
          return cols;
        }());
    groupby::GroupBySpec gs;
    gs.aggregates = {{1, groupby::AggOp::kSum}};
    for (groupby::GroupByAlgo ga : groupby::kAllGroupByAlgos) {
      auto gr = RunGroupBy(device, ga, grouped_input, gs);
      GPUJOIN_CHECK_OK(gr.status());
      tp.AddRow({join::JoinAlgoName(ja), GroupByAlgoName(ga),
                 Ms(jr->phases.total_s()), Ms(gr->phases.total_s()),
                 Ms(jr->phases.total_s() + gr->phases.total_s())});
      // JSON counterpart of the printed row: the pipeline's combined
      // phases, counters, and throughput over the fact+dim input.
      join::PhaseBreakdown combined;
      combined.transform_s = jr->phases.transform_s + gr->phases.transform_s;
      combined.match_s = jr->phases.match_s + gr->phases.match_s;
      combined.materialize_s =
          jr->phases.materialize_s + gr->phases.materialize_s;
      vgpu::KernelStats stats = jr->stats;
      stats.Add(gr->stats);
      RecordRun(device,
                {{"join algo", join::JoinAlgoName(ja)},
                 {"groupby algo", groupby::GroupByAlgoName(ga)}},
                std::string(join::JoinAlgoName(ja)) + "+" +
                    groupby::GroupByAlgoName(ga),
                combined,
                static_cast<double>(spec.r_rows + spec.s_rows) /
                    combined.total_s() / 1e6,
                std::max(jr->peak_mem_bytes, gr->peak_mem_bytes),
                gr->num_groups, stats);
    }
  }
  tp.Print();
  gpujoin::harness::PrintSimSummary();
  return 0;
}
