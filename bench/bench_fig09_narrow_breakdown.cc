// Figure 9: time breakdown of GPU narrow joins (transformation vs match
// finding; narrow joins have no materialization phase). Paper observations:
// SMJ-OM is identical to SMJ-UM on narrow inputs; PHJ-UM is slightly ahead
// of PHJ-OM at small sizes and they converge at 1G x 2G; NPHJ's match
// finding (global hash table) is the slowest.

#include "bench_common.h"

using namespace gpujoin;         // NOLINT(build/namespaces)
using namespace gpujoin::bench;  // NOLINT(build/namespaces)

int main() {
  harness::PrintBanner("Figure 9", "narrow join phase breakdown");
  vgpu::Device device = harness::MakeBenchDevice();

  RunReporter rep(device, RunReporter::Kind::kJoin, {"|R| x |S| (tuples)"});
  for (int shift : {2, 0}) {
    const uint64_t r_rows = harness::ScaleTuples() >> shift;
    workload::JoinWorkloadSpec spec;
    spec.r_rows = r_rows;
    spec.s_rows = 2 * r_rows;
    vgpu::Device dev = harness::MakeBenchDevice();
    auto w = MustUpload(dev, spec);
    const std::string label =
        std::to_string(spec.r_rows) + " x " + std::to_string(spec.s_rows);
    for (join::JoinAlgo algo : join::kAllJoinAlgos) {
      const auto res = MustJoin(dev, algo, w.r, w.s);
      rep.Add({label}, algo, res);
    }
  }
  rep.Print();
  gpujoin::harness::PrintSimSummary();
  return 0;
}
