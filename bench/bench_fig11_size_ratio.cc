// Figure 11: effect of the |R|/|S| size ratio (|S| fixed, two payload
// columns per relation). The paper observes *-OM still ahead of *-UM even
// when R is small and materialization is cheaper.

#include "bench_common.h"

using namespace gpujoin;         // NOLINT(build/namespaces)
using namespace gpujoin::bench;  // NOLINT(build/namespaces)

int main() {
  harness::PrintBanner("Figure 11", "|R|/|S| ratio sweep (|S| fixed)");
  vgpu::Device device = harness::MakeBenchDevice();

  RunReporter rep(device, RunReporter::Kind::kJoin, {"|R|/|S|"});
  const uint64_t s_rows = harness::ScaleTuples();
  for (int shift : {4, 3, 2, 1, 0}) {
    workload::JoinWorkloadSpec spec;
    spec.r_rows = s_rows >> shift;
    spec.s_rows = s_rows;
    spec.r_payload_cols = 2;
    spec.s_payload_cols = 2;
    auto w = MustUpload(device, spec);
    const std::string label = "1/" + std::to_string(1 << shift);
    for (join::JoinAlgo algo : join::kAllJoinAlgos) {
      const auto res = MustJoin(device, algo, w.r, w.s);
      rep.Add({label}, algo, res);
    }
  }
  rep.Print();
  gpujoin::harness::PrintSimSummary();
  return 0;
}
