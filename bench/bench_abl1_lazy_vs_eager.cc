// Ablation 1: Algorithm 1's lazy one-column-at-a-time transform schedule
// vs. eager early-materialization-style transformation of every payload
// column up front (§4.1 argues lazy saves memory at equal work). Sweeps the
// payload column count and reports both simulated time and peak memory.

#include "bench_common.h"

using namespace gpujoin;         // NOLINT(build/namespaces)
using namespace gpujoin::bench;  // NOLINT(build/namespaces)

int main() {
  harness::PrintBanner("Ablation 1", "GFTR lazy (Algorithm 1) vs eager transform");
  vgpu::Device device = harness::MakeBenchDevice();

  RunReporter rep(device, RunReporter::Kind::kJoin,
                  {"payload cols", "schedule", "peak mem (MB)"});
  for (int cols : {2, 4, 8}) {
    workload::JoinWorkloadSpec spec;
    spec.r_rows = harness::ScaleTuples() / 2;
    spec.s_rows = harness::ScaleTuples();
    spec.r_payload_cols = cols;
    spec.s_payload_cols = cols;
    auto w = MustUpload(device, spec);
    for (join::JoinAlgo algo : {join::JoinAlgo::kSmjOm, join::JoinAlgo::kPhjOm}) {
      for (bool eager : {false, true}) {
        join::JoinOptions opts;
        opts.eager_transform = eager;
        const auto res = MustJoin(device, algo, w.r, w.s, opts);
        rep.Add({std::to_string(cols), eager ? "eager" : "lazy (Alg. 1)",
                 harness::TablePrinter::Fmt(res.peak_mem_bytes / 1e6, 1)},
                algo, res);
      }
    }
  }
  rep.Print();
  std::printf(
      "expected: near-identical totals (lazy is marginally faster: its final\n"
      "re-transform passes skip the transformed-key stores). Peak memory\n"
      "depends on what coexists: lazy holds a transform scratch quad while\n"
      "the output accumulates, eager holds all transformed payloads but\n"
      "releases them progressively — at bench scale the two land within a\n"
      "few percent of each other (Algorithm 1's all-at-once saving applies\n"
      "to disciplines that keep every transformed column live).\n");
  gpujoin::harness::PrintSimSummary();
  return 0;
}
