// GB1 (designed; see DESIGN.md §0): grouped-aggregation throughput vs the
// number of groups. Expected shape: the global hash table wins while it
// fits in cache, then collapses under random access; the partitioned
// variant is flat and best at high cardinalities; sort-based is flat but
// pays the full sort (4 passes vs 2).

#include "bench_common.h"
#include "groupby/groupby.h"

using namespace gpujoin;         // NOLINT(build/namespaces)
using namespace gpujoin::bench;  // NOLINT(build/namespaces)

int main() {
  harness::PrintBanner("GB1", "group-by cardinality sweep (SUM of one column)");
  vgpu::Device device = harness::MakeBenchDevice();

  RunReporter rep(device, RunReporter::Kind::kGroupBy, {"groups"});
  const uint64_t n = harness::ScaleTuples();
  for (int g_log2 : {4, 8, 12, 16, 18, 20}) {
    const uint64_t groups = std::min(n, uint64_t{1} << g_log2);
    workload::GroupByWorkloadSpec spec;
    spec.rows = n;
    spec.num_groups = groups;
    auto host = workload::GenerateGroupByInput(spec);
    GPUJOIN_CHECK_OK(host.status());
    auto input = Table::FromHost(device, *host);
    GPUJOIN_CHECK_OK(input.status());
    groupby::GroupBySpec gs;
    gs.aggregates = {{1, groupby::AggOp::kSum}};
    for (groupby::GroupByAlgo algo : groupby::kAllGroupByAlgos) {
      device.FlushL2();
      auto res = RunGroupBy(device, algo, *input, gs);
      GPUJOIN_CHECK_OK(res.status());
      rep.Add({std::to_string(groups)}, algo, *res);
    }
  }
  rep.Print();
  gpujoin::harness::PrintSimSummary();
  return 0;
}
