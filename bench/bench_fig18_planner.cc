// Figure 18: validates the decision trees by running the planner against
// measured results over the microbenchmark grid (payload widths x match
// ratios x skews x type mixes) and reporting (a) how often the planner's
// choice is the measured-best algorithm and (b) the regret (time lost vs
// the best) when it is not — the practical quality metric for an optimizer
// heuristic.

#include <cstdio>

#include "bench_common.h"
#include "join/planner.h"

using namespace gpujoin;         // NOLINT(build/namespaces)
using namespace gpujoin::bench;  // NOLINT(build/namespaces)

int main() {
  harness::PrintBanner("Figure 18", "planner decision-tree validation");
  vgpu::Device device = harness::MakeBenchDevice();

  struct GridPoint {
    int payloads;
    double match;
    double zipf;
    DataType key_type;
    DataType payload_type;
  };
  std::vector<GridPoint> grid;
  for (int payloads : {1, 2, 4}) {
    for (double match : {1.0, 0.5, 0.1}) {
      for (double zipf : {0.0, 1.25}) {
        grid.push_back({payloads, match, zipf, DataType::kInt32,
                        DataType::kInt32});
      }
    }
  }
  grid.push_back({2, 1.0, 0.0, DataType::kInt32, DataType::kInt64});
  grid.push_back({2, 1.0, 0.0, DataType::kInt64, DataType::kInt64});

  harness::TablePrinter tp({"payloads", "match", "zipf", "types", "planner",
                            "best", "regret%", "smj planner", "smj best"});
  int hits = 0, smj_hits = 0;
  double total_regret = 0;
  for (const GridPoint& g : grid) {
    workload::JoinWorkloadSpec spec;
    spec.r_rows = harness::ScaleTuples() / 2;
    spec.s_rows = harness::ScaleTuples();
    spec.r_payload_cols = g.payloads;
    spec.s_payload_cols = g.payloads;
    spec.match_ratio = g.match;
    spec.zipf_theta = g.zipf;
    spec.key_type = g.key_type;
    spec.r_payload_type = g.payload_type;
    spec.s_payload_type = g.payload_type;
    auto w = MustUpload(device, spec);

    join::JoinFeatures f = join::JoinFeatures::FromTables(w.r, w.s);
    f.match_ratio = g.match;
    f.zipf_theta = g.zipf;
    const join::JoinAlgo choice = ChooseJoinAlgo(f);
    const join::JoinAlgo smj_choice = ChooseSortMergeVariant(f);

    double best = 1e30, chosen = 0, smj_best = 1e30;
    join::JoinAlgo best_algo = choice, smj_best_algo = smj_choice;
    const std::string types_param =
        std::string(g.key_type == DataType::kInt64 ? "8B" : "4B") + "k/" +
        (g.payload_type == DataType::kInt64 ? "8B" : "4B") + "p";
    for (join::JoinAlgo algo :
         {join::JoinAlgo::kSmjUm, join::JoinAlgo::kSmjOm, join::JoinAlgo::kPhjUm,
          join::JoinAlgo::kPhjOm}) {
      const auto res = MustJoin(device, algo, w.r, w.s);
      RecordRun(device,
                {{"payloads", std::to_string(g.payloads)},
                 {"match", harness::TablePrinter::Fmt(g.match, 2)},
                 {"zipf", harness::TablePrinter::Fmt(g.zipf, 2)},
                 {"types", types_param}},
                join::JoinAlgoName(algo), res.phases, MTuples(res),
                res.peak_mem_bytes, res.output_rows, res.stats);
      const double t = res.phases.total_s();
      if (t < best) {
        best = t;
        best_algo = algo;
      }
      if (algo == choice) chosen = t;
      const bool is_smj =
          algo == join::JoinAlgo::kSmjUm || algo == join::JoinAlgo::kSmjOm;
      if (is_smj && t < smj_best) {
        smj_best = t;
        smj_best_algo = algo;
      }
    }
    const double regret = 100.0 * (chosen - best) / best;
    total_regret += regret;
    if (choice == best_algo) ++hits;
    if (smj_choice == smj_best_algo) ++smj_hits;
    const std::string& types = types_param;
    tp.AddRow({std::to_string(g.payloads),
               harness::TablePrinter::Fmt(g.match, 2),
               harness::TablePrinter::Fmt(g.zipf, 2), types,
               join::JoinAlgoName(choice), join::JoinAlgoName(best_algo),
               harness::TablePrinter::Fmt(regret, 1),
               join::JoinAlgoName(smj_choice),
               join::JoinAlgoName(smj_best_algo)});
  }
  tp.Print();
  std::printf("Fig 18a planner: best-pick rate %d/%zu, mean regret %.1f%%\n",
              hits, grid.size(), total_regret / grid.size());
  std::printf("Fig 18b (SMJ family): best-pick rate %d/%zu\n", smj_hits,
              grid.size());
  gpujoin::harness::PrintSimSummary();
  return 0;
}
