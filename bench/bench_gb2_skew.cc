// GB2 (designed; see DESIGN.md §0): grouped aggregation under key skew.
// Expected shape: the global-hash variant degrades as hot groups serialize
// its global atomics; the partitioned and sort-based variants are
// distribution-oblivious (RADIX-PARTITION / radix sort), mirroring the
// join-side Figure 14.

#include "bench_common.h"
#include "groupby/groupby.h"

using namespace gpujoin;         // NOLINT(build/namespaces)
using namespace gpujoin::bench;  // NOLINT(build/namespaces)

int main() {
  harness::PrintBanner("GB2", "group-by skew sweep (Zipf factor)");
  vgpu::Device device = harness::MakeBenchDevice();

  RunReporter rep(device, RunReporter::Kind::kGroupBy, {"zipf"});
  for (double theta : {0.0, 0.5, 0.75, 1.0, 1.25, 1.5}) {
    workload::GroupByWorkloadSpec spec;
    spec.rows = harness::ScaleTuples();
    spec.num_groups = uint64_t{1} << 16;
    spec.zipf_theta = theta;
    auto host = workload::GenerateGroupByInput(spec);
    GPUJOIN_CHECK_OK(host.status());
    auto input = Table::FromHost(device, *host);
    GPUJOIN_CHECK_OK(input.status());
    groupby::GroupBySpec gs;
    gs.aggregates = {{1, groupby::AggOp::kSum}, {1, groupby::AggOp::kCount}};
    for (groupby::GroupByAlgo algo : groupby::kAllGroupByAlgos) {
      device.FlushL2();
      auto res = RunGroupBy(device, algo, *input, gs);
      GPUJOIN_CHECK_OK(res.status());
      rep.Add({harness::TablePrinter::Fmt(theta, 2)}, algo, *res);
    }
  }
  rep.Print();
  gpujoin::harness::PrintSimSummary();
  return 0;
}
