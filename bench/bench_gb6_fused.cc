// GB6 (designed): fused join + aggregation (early projection) vs. the
// unfused join-everything-then-aggregate pipeline, sweeping the number of
// unreferenced payload columns. The fused form's advantage grows with the
// width of the fact table because it never transforms, gathers, or writes
// the columns the aggregation does not read — the join's materialization
// bottleneck (Figure 1) applied to the combined operator.

#include <cstdio>

#include "bench_common.h"
#include "groupby/groupby.h"
#include "join/join_aggregate.h"

using namespace gpujoin;         // NOLINT(build/namespaces)
using namespace gpujoin::bench;  // NOLINT(build/namespaces)

int main() {
  harness::PrintBanner("GB6", "fused join+aggregate vs unfused pipeline");
  vgpu::Device device = harness::MakeBenchDevice();

  harness::TablePrinter tp({"payload cols/side", "fused(ms)", "unfused(ms)",
                            "speedup"});
  for (int cols : {1, 2, 4, 8}) {
    workload::JoinWorkloadSpec spec;
    spec.r_rows = harness::ScaleTuples() / 2;
    spec.s_rows = harness::ScaleTuples();
    spec.r_payload_cols = cols;
    spec.s_payload_cols = cols;
    auto w = workload::GenerateJoinInput(spec);
    GPUJOIN_CHECK_OK(w.status());
    for (auto& v : w->r.columns[1].values) v &= 0xfff;  // Group attribute.
    auto up = harness::Upload(device, *w);
    GPUJOIN_CHECK_OK(up.status());

    join::JoinAggregateSpec fspec;
    fspec.group_by = {join::JoinColumnRef::Side::kR, 1};
    fspec.aggregates = {{{join::JoinColumnRef::Side::kS, 1},
                         groupby::AggOp::kSum}};

    device.FlushL2();
    const double f0 = device.ElapsedSeconds();
    vgpu::KernelStats fused_stats = device.total_stats();
    auto fused = RunJoinAggregate(device, join::JoinAlgo::kPhjOm,
                                  groupby::GroupByAlgo::kHashPartitioned,
                                  up->r, up->s, fspec);
    GPUJOIN_CHECK_OK(fused.status());
    const double fused_s = device.ElapsedSeconds() - f0;
    {
      vgpu::KernelStats delta = device.total_stats();
      delta.Sub(fused_stats);
      join::PhaseBreakdown phases;
      phases.match_s = fused->join_seconds;
      phases.materialize_s = fused->aggregate_seconds;
      RecordRun(device, {{"payload cols/side", std::to_string(cols)}},
                "fused PHJ-OM+GB-HASH-PART", phases,
                static_cast<double>(spec.r_rows + spec.s_rows) / fused_s / 1e6,
                device.memory_stats().peak_bytes, fused->num_groups, delta);
    }

    device.FlushL2();
    const double u0 = device.ElapsedSeconds();
    vgpu::KernelStats unfused_stats = device.total_stats();
    auto joined = RunJoin(device, join::JoinAlgo::kPhjOm, up->r, up->s);
    GPUJOIN_CHECK_OK(joined.status());
    Table gb_in = Table::FromColumns(
        "full", {"grp", "m"},
        [&] {
          std::vector<DeviceColumn> cs;
          cs.push_back(joined->output.TakeColumn(1));
          cs.push_back(joined->output.TakeColumn(1 + cols));  // s_pay1.
          return cs;
        }());
    groupby::GroupBySpec gs;
    gs.aggregates = {{1, groupby::AggOp::kSum}};
    auto unfused_gb =
        RunGroupBy(device, groupby::GroupByAlgo::kHashPartitioned, gb_in, gs);
    GPUJOIN_CHECK_OK(unfused_gb.status());
    const double unfused_s = device.ElapsedSeconds() - u0;
    {
      vgpu::KernelStats delta = device.total_stats();
      delta.Sub(unfused_stats);
      join::PhaseBreakdown phases;
      phases.match_s = joined->phases.total_s();
      phases.materialize_s = unfused_gb->phases.total_s();
      RecordRun(device, {{"payload cols/side", std::to_string(cols)}},
                "unfused PHJ-OM then GB-HASH-PART", phases,
                static_cast<double>(spec.r_rows + spec.s_rows) / unfused_s /
                    1e6,
                device.memory_stats().peak_bytes, unfused_gb->num_groups,
                delta);
    }

    tp.AddRow({std::to_string(cols), Ms(fused_s), Ms(unfused_s),
               harness::TablePrinter::Fmt(unfused_s / fused_s, 2) + "x"});
  }
  tp.Print();
  std::printf("expected: speedup grows with the number of unreferenced "
              "payload columns\n");
  gpujoin::harness::PrintSimSummary();
  return 0;
}
