// Figure 8: CPU- vs GPU-based narrow joins (one payload column per
// relation, |S| = 2|R|, 100% match) across input sizes. The paper reports
// the GPU-based partitioned implementations up to 34.5x faster than the
// CPU radix join and up to 4x faster than the cuDF-style non-partitioned
// hash join (NPHJ), with PHJ-* ahead of SMJ-* on narrow inputs.
//
// The CPU baseline runs natively (single core, wall clock); the GPU
// implementations run on the simulated device. Absolute CPU/GPU ratios are
// hardware-dependent; the ordering is the reproduced claim.

#include <cstdio>

#include "bench_common.h"
#include "cpubase/cpu_radix_join.h"

using namespace gpujoin;         // NOLINT(build/namespaces)
using namespace gpujoin::bench;  // NOLINT(build/namespaces)

int main() {
  harness::PrintBanner("Figure 8", "narrow join throughput, CPU vs GPU");
  vgpu::Device device = harness::MakeBenchDevice();

  harness::TablePrinter tp({"|R| x |S| (tuples)", "impl", "time(ms)",
                            "Mtuples/s"});
  for (int shift = 3; shift >= 0; --shift) {
    const uint64_t r_rows = harness::ScaleTuples() >> shift;
    const uint64_t s_rows = 2 * r_rows;
    workload::JoinWorkloadSpec spec;
    spec.r_rows = r_rows;
    spec.s_rows = s_rows;
    auto w = workload::GenerateJoinInput(spec);
    GPUJOIN_CHECK_OK(w.status());
    const std::string label =
        std::to_string(r_rows) + " x " + std::to_string(s_rows);

    // CPU baseline (Balkesen-style radix join, native wall clock).
    auto cpu = cpubase::CpuRadixJoin(w->r, w->s);
    GPUJOIN_CHECK_OK(cpu.status());
    tp.AddRow({label, "CPU radix join", Ms(cpu->seconds),
               harness::TablePrinter::Fmt(cpu->throughput_tuples_per_sec / 1e6,
                                          0)});

    auto up = harness::Upload(device, *w);
    GPUJOIN_CHECK_OK(up.status());
    for (join::JoinAlgo algo : join::kAllJoinAlgos) {
      const auto res = MustJoin(device, algo, up->r, up->s);
      tp.AddRow({label, join::JoinAlgoName(algo), Ms(res.phases.total_s()),
                 harness::TablePrinter::Fmt(MTuples(res), 0)});
    }
  }
  tp.Print();
  gpujoin::harness::PrintSimSummary();
  return 0;
}
