// Figure 8: CPU- vs GPU-based narrow joins (one payload column per
// relation, |S| = 2|R|, 100% match) across input sizes. The paper reports
// the GPU-based partitioned implementations up to 34.5x faster than the
// CPU radix join and up to 4x faster than the cuDF-style non-partitioned
// hash join (NPHJ), with PHJ-* ahead of SMJ-* on narrow inputs.
//
// The CPU baseline runs natively (single core, wall clock); the GPU
// implementations run on the simulated device. Absolute CPU/GPU ratios are
// hardware-dependent; the ordering is the reproduced claim.

#include <cstdio>

#include "bench_common.h"
#include "cpubase/cpu_radix_join.h"

using namespace gpujoin;         // NOLINT(build/namespaces)
using namespace gpujoin::bench;  // NOLINT(build/namespaces)

int main() {
  harness::PrintBanner("Figure 8", "narrow join throughput, CPU vs GPU");
  vgpu::Device device = harness::MakeBenchDevice();

  RunReporter rep(device, RunReporter::Kind::kJoin, {"|R| x |S| (tuples)"});
  for (int shift = 3; shift >= 0; --shift) {
    const uint64_t r_rows = harness::ScaleTuples() >> shift;
    const uint64_t s_rows = 2 * r_rows;
    workload::JoinWorkloadSpec spec;
    spec.r_rows = r_rows;
    spec.s_rows = s_rows;
    auto w = workload::GenerateJoinInput(spec);
    GPUJOIN_CHECK_OK(w.status());
    const std::string label =
        std::to_string(r_rows) + " x " + std::to_string(s_rows);

    // CPU baseline (Balkesen-style radix join, native wall clock). Its
    // whole runtime is reported as the match phase (the CPU join has no
    // instrumented phase breakdown) with empty simulator counters.
    auto cpu = cpubase::CpuRadixJoin(w->r, w->s);
    GPUJOIN_CHECK_OK(cpu.status());
    join::PhaseBreakdown cpu_phases;
    cpu_phases.match_s = cpu->seconds;
    rep.Add({label}, "CPU radix join", cpu_phases,
            cpu->throughput_tuples_per_sec / 1e6, 0, cpu->output_rows,
            vgpu::KernelStats{});

    auto up = harness::Upload(device, *w);
    GPUJOIN_CHECK_OK(up.status());
    for (join::JoinAlgo algo : join::kAllJoinAlgos) {
      const auto res = MustJoin(device, algo, up->r, up->s);
      rep.Add({label}, algo, res);
    }
  }
  rep.Print();
  gpujoin::harness::PrintSimSummary();
  return 0;
}
