// Figure 16: sequences of joins — a fact table with N foreign keys joined
// against N dimension tables (|F| = 2^27, |D_i| = 2^25 at paper scale).
// The paper: throughput decreases with N for everyone (each join
// materializes one more column); beyond two joins *-OM pulls ahead, with
// the PHJ-OM advantage growing from 1.49x (N=2) to 1.78x (N=8) over
// PHJ-UM.

#include <cstdio>

#include "bench_common.h"
#include "join/pipeline.h"

using namespace gpujoin;         // NOLINT(build/namespaces)
using namespace gpujoin::bench;  // NOLINT(build/namespaces)

int main() {
  harness::PrintBanner("Figure 16", "sequences of joins (star schema)");
  vgpu::Device device = harness::MakeBenchDevice();

  workload::StarSchemaSpec spec;
  spec.fact_rows = harness::ScaleTuples();
  spec.dim_rows = harness::ScaleTuples() / 4;  // 2^25 vs 2^27 in the paper.
  spec.num_dims = 8;
  auto schema = workload::GenerateStarSchema(spec);
  GPUJOIN_CHECK_OK(schema.status());
  auto fact = Table::FromHost(device, schema->fact);
  GPUJOIN_CHECK_OK(fact.status());

  RunReporter rep(device, RunReporter::Kind::kJoin, {"joins"});
  double um2 = 0, om2 = 0, um8 = 0, om8 = 0;
  for (int n : {1, 2, 4, 6, 8}) {
    std::vector<Table> dims;
    for (int i = 0; i < n; ++i) {
      // Re-wrap columns by reference is not possible; rebuild device tables
      // per sequence length from the host schema instead.
      auto t = Table::FromHost(device, schema->dims[i]);
      GPUJOIN_CHECK_OK(t.status());
      dims.push_back(std::move(*t));
    }
    for (join::JoinAlgo algo : join::kAllJoinAlgos) {
      device.FlushL2();
      vgpu::KernelStats stats = device.total_stats();
      auto res = join::RunJoinPipeline(device, algo, *fact, dims);
      GPUJOIN_CHECK_OK(res.status());
      vgpu::KernelStats after = device.total_stats();
      after.Sub(stats);
      join::PhaseBreakdown phases;
      for (const join::PhaseBreakdown& p : res->per_join) {
        phases.transform_s += p.transform_s;
        phases.match_s += p.match_s;
        phases.materialize_s += p.materialize_s;
      }
      rep.Add({std::to_string(n)}, join::JoinAlgoName(algo), phases,
              res->throughput_tuples_per_sec / 1e6,
              device.memory_stats().peak_bytes, res->final_rows, after);
      if (algo == join::JoinAlgo::kPhjUm && n == 2) um2 = res->total_seconds;
      if (algo == join::JoinAlgo::kPhjOm && n == 2) om2 = res->total_seconds;
      if (algo == join::JoinAlgo::kPhjUm && n == 8) um8 = res->total_seconds;
      if (algo == join::JoinAlgo::kPhjOm && n == 8) om8 = res->total_seconds;
    }
  }
  rep.Print();
  std::printf("PHJ-OM over PHJ-UM: %.2fx at N=2 (paper 1.49x), %.2fx at N=8 "
              "(paper 1.78x)\n",
              um2 / om2, um8 / om8);
  gpujoin::harness::PrintSimSummary();
  return 0;
}
