// HYB-1: the CPU/GPU crossover behind the cost-based operator router.
//
// At each scale the same PHJ-OM join (R(n) ⋈ S(2n)) and partitioned
// group-by (n rows, n/64 groups) run three ways:
//   cpux  — the vectorized CPU backend, measured host wall seconds (min of
//           several reps; the host clock is noisy, the sim clock is not),
//   vgpu  — the simulated device, simulated seconds including both PCIe
//           transfers and kernel-launch overheads,
//   auto  — the cost-based router, which must land on the winning side.
// Small inputs are dominated by the GPU's fixed costs (PCIe round-trips,
// kernel launches), large inputs by the CPU's per-tuple rate — the Figure 8
// style cross-system comparison applied inside one engine.
//
// GPUJOIN_HYB1_ASSERT=1 turns the expected shape into hard failures:
// cpux wins by >=2x at the smallest scale, vgpu wins at the largest, and
// the router's pick is within 5% of the best measured backend everywhere.
// GPUJOIN_BACKEND forces every "auto" row onto one backend (the assertions
// are skipped when forced). GPUJOIN_SIM_THREADS sizes the cpux pool.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.h"
#include "ops/router.h"

using namespace gpujoin;         // NOLINT(build/namespaces)
using namespace gpujoin::bench;  // NOLINT(build/namespaces)

namespace {

/// Measured seconds per backend for one (scale, operator) cell, plus the
/// router's pure decision for it.
struct Measured {
  double cpux_s = 0;
  double vgpu_s = 0;
  ops::Backend decided = ops::Backend::kVgpu;
};

struct ScaleResult {
  int scale = 0;
  Measured join;
  Measured gb;
};

void AddRow(RunReporter& rep, int scale, const char* op,
            const std::string& algo, const ops::OperatorRunResult& r,
            uint64_t input_tuples, std::string backend) {
  // cpux rows carry host wall seconds through the same cycle-denominated
  // JSON fields; the "backend" field names the clock (see obs/metrics.h).
  rep.Add({std::to_string(scale), op}, algo, r.phases,
          input_tuples / std::max(r.seconds, 1e-12) / 1e6, r.peak_mem_bytes,
          r.output_rows, vgpu::KernelStats{}, std::move(backend));
}

int CheckCrossover(const std::vector<ScaleResult>& results) {
  int failures = 0;
  const auto check = [&failures](bool ok, const std::string& what) {
    if (!ok) {
      std::fprintf(stderr, "HYB1 ASSERT FAILED: %s\n", what.c_str());
      ++failures;
    }
  };
  const auto cell = [](const ScaleResult& sr, bool is_join) -> const Measured& {
    return is_join ? sr.join : sr.gb;
  };
  for (const bool is_join : {true, false}) {
    const char* op = is_join ? "join" : "groupby";
    const Measured& lo = cell(results.front(), is_join);
    check(lo.cpux_s * 2 <= lo.vgpu_s,
          std::string(op) + " scale " + std::to_string(results.front().scale) +
              ": cpux (" + std::to_string(lo.cpux_s) +
              " s) not 2x faster than vgpu (" + std::to_string(lo.vgpu_s) +
              " s)");
    check(lo.decided == ops::Backend::kCpux,
          std::string(op) + " smallest scale: router picked " +
              ops::BackendName(lo.decided) + ", expected cpux");
    if (results.size() > 1) {
      const Measured& hi = cell(results.back(), is_join);
      check(hi.vgpu_s <= hi.cpux_s,
            std::string(op) + " scale " + std::to_string(results.back().scale) +
                ": vgpu (" + std::to_string(hi.vgpu_s) +
                " s) did not beat cpux (" + std::to_string(hi.cpux_s) + " s)");
      check(hi.decided == ops::Backend::kVgpu,
            std::string(op) + " largest scale: router picked " +
                ops::BackendName(hi.decided) + ", expected vgpu");
    }
    for (const ScaleResult& sr : results) {
      const Measured& m = cell(sr, is_join);
      const double best = std::min(m.cpux_s, m.vgpu_s);
      const double routed =
          m.decided == ops::Backend::kCpux ? m.cpux_s : m.vgpu_s;
      check(routed <= best * 1.05,
            std::string(op) + " scale " + std::to_string(sr.scale) +
                ": routed backend " + ops::BackendName(m.decided) + " (" +
                std::to_string(routed) + " s) not within 5% of best (" +
                std::to_string(best) + " s)");
    }
  }
  return failures;
}

}  // namespace

int main() {
  harness::PrintBanner("HYB1 crossover",
                       "cpux/vgpu crossover and cost-based routing");
  vgpu::Device device = harness::MakeBenchDevice();
  const int threads = harness::SimThreadsFromEnv();
  const bool assert_crossover = [] {
    const char* v = std::getenv("GPUJOIN_HYB1_ASSERT");
    return v != nullptr && v[0] != '\0' && v[0] != '0';
  }();

  ops::RouterOptions ropts;
  ropts.cpux_threads = threads;
  ropts = ops::RouterOptions::FromEnv(ropts);
  const bool forced = ropts.force != ops::Backend::kAuto;

  ops::CpuxProvider cpux(threads);
  ops::VgpuProvider vgpu(device);
  ops::Router router(device, ropts);

  std::vector<int> scales;
  for (const int s : {8, 10, 12, 14, 16, 18}) {
    if (s <= harness::ScaleLog2()) scales.push_back(s);
  }
  if (scales.empty()) scales.push_back(harness::ScaleLog2());

  RunReporter rep(device, RunReporter::Kind::kJoin, {"scale", "op"});
  std::vector<ScaleResult> results;

  for (const int scale : scales) {
    ScaleResult sr;
    sr.scale = scale;
    const uint64_t n = 1ull << scale;
    // Fixed-cost regimes hide rate differences, and sub-100us timings are
    // at the mercy of scheduler noise: take the min of many more reps at
    // the small scales (they are nearly free there anyway).
    const int reps = scale <= 10 ? 25 : scale <= 12 ? 7 : 3;

    // --- Join: R(n) ⋈ S(2n), PHJ-OM, one payload column per side. ---
    workload::JoinWorkloadSpec jspec;
    jspec.r_rows = n;
    jspec.s_rows = 2 * n;
    auto jw = workload::GenerateJoinInput(jspec);
    GPUJOIN_CHECK_OK(jw.status());
    ops::JoinOp jop;
    jop.algo = join::JoinAlgo::kPhjOm;
    jop.r = &jw->r;
    jop.s = &jw->s;
    const uint64_t jtuples = jspec.r_rows + jspec.s_rows;
    const std::string jalgo = join::JoinAlgoName(jop.algo);

    ops::OperatorRunResult jcpu;
    for (int i = 0; i < reps; ++i) {
      auto r = cpux.RunJoin(jop);
      GPUJOIN_CHECK_OK(r.status());
      if (i == 0 || r->seconds < jcpu.seconds) jcpu = std::move(*r);
    }
    auto jgpu = vgpu.RunJoin(jop);
    GPUJOIN_CHECK_OK(jgpu.status());
    auto jauto = router.RunJoin(jop);
    GPUJOIN_CHECK_OK(jauto.status());

    sr.join.cpux_s = jcpu.seconds;
    sr.join.vgpu_s = jgpu->seconds;
    sr.join.decided = ops::RouteJoin(jop, device.config(), ropts).backend;
    AddRow(rep, scale, "join", jalgo, jcpu, jtuples, "cpux");
    AddRow(rep, scale, "join", jalgo, *jgpu, jtuples, "vgpu");
    AddRow(rep, scale, "join", jalgo, *jauto, jtuples,
           std::string("auto:") + ops::BackendName(jauto->backend));

    // --- Group-by: n rows, n/64 groups, SUM+COUNT, HASH-PARTITIONED. ---
    workload::GroupByWorkloadSpec gspec;
    gspec.rows = n;
    gspec.num_groups = std::max<uint64_t>(n / 64, 4);
    auto gin = workload::GenerateGroupByInput(gspec);
    GPUJOIN_CHECK_OK(gin.status());
    ops::GroupByOp gop;
    gop.algo = groupby::GroupByAlgo::kHashPartitioned;
    gop.spec.aggregates = {{1, groupby::AggOp::kSum},
                           {1, groupby::AggOp::kCount}};
    gop.input = &*gin;
    const std::string galgo = groupby::GroupByAlgoName(gop.algo);

    ops::OperatorRunResult gcpu;
    for (int i = 0; i < reps; ++i) {
      auto r = cpux.RunGroupBy(gop);
      GPUJOIN_CHECK_OK(r.status());
      if (i == 0 || r->seconds < gcpu.seconds) gcpu = std::move(*r);
    }
    auto ggpu = vgpu.RunGroupBy(gop);
    GPUJOIN_CHECK_OK(ggpu.status());
    auto gauto = router.RunGroupBy(gop);
    GPUJOIN_CHECK_OK(gauto.status());

    sr.gb.cpux_s = gcpu.seconds;
    sr.gb.vgpu_s = ggpu->seconds;
    sr.gb.decided = ops::RouteGroupBy(gop, device.config(), ropts).backend;
    AddRow(rep, scale, "groupby", galgo, gcpu, gspec.rows, "cpux");
    AddRow(rep, scale, "groupby", galgo, *ggpu, gspec.rows, "vgpu");
    AddRow(rep, scale, "groupby", galgo, *gauto, gspec.rows,
           std::string("auto:") + ops::BackendName(gauto->backend));

    results.push_back(sr);
  }

  rep.Print();
  std::printf("router decisions (scale: join / groupby):\n");
  for (const ScaleResult& sr : results) {
    std::printf("  2^%-2d  %-4s / %-4s   join cpux %s ms vs vgpu %s ms   "
                "gb cpux %s ms vs vgpu %s ms\n",
                sr.scale, ops::BackendName(sr.join.decided),
                ops::BackendName(sr.gb.decided), Ms(sr.join.cpux_s).c_str(),
                Ms(sr.join.vgpu_s).c_str(), Ms(sr.gb.cpux_s).c_str(),
                Ms(sr.gb.vgpu_s).c_str());
  }

  int failures = 0;
  if (assert_crossover) {
    if (forced) {
      std::printf("GPUJOIN_BACKEND forces %s: crossover assertions skipped\n",
                  ops::BackendName(ropts.force));
    } else {
      failures = CheckCrossover(results);
      if (failures == 0) {
        std::printf("HYB1 crossover assertions passed\n");
      } else {
        std::printf("HYB1 crossover assertions FAILED (%d)\n", failures);
      }
    }
  }

  harness::PrintSimSummary();
  return failures == 0 ? 0 : 1;
}
