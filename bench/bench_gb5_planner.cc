// GB5 (designed): validates the group-by planner (cache-residency +
// skew heuristic driven by the HyperLogLog estimate) against measured
// results over a cardinality x skew grid, reporting best-pick rate and
// regret — the aggregation-side analog of the Figure 18 validation.

#include <cstdio>

#include "bench_common.h"
#include "groupby/groupby.h"
#include "groupby/planner.h"
#include "stats/estimator.h"

using namespace gpujoin;         // NOLINT(build/namespaces)
using namespace gpujoin::bench;  // NOLINT(build/namespaces)

int main() {
  harness::PrintBanner("GB5", "group-by planner validation");
  vgpu::Device device = harness::MakeBenchDevice();

  harness::TablePrinter tp({"groups", "zipf", "estimate", "planner", "best",
                            "regret%"});
  int hits = 0, total = 0;
  double total_regret = 0;
  for (int g_log2 : {4, 10, 14, 18}) {
    for (double zipf : {0.0, 1.5}) {
      workload::GroupByWorkloadSpec spec;
      spec.rows = harness::ScaleTuples();
      spec.num_groups = uint64_t{1} << g_log2;
      spec.zipf_theta = zipf;
      auto host = workload::GenerateGroupByInput(spec);
      GPUJOIN_CHECK_OK(host.status());
      auto input = Table::FromHost(device, *host);
      GPUJOIN_CHECK_OK(input.status());
      groupby::GroupBySpec gs;
      gs.aggregates = {{1, groupby::AggOp::kSum}};

      groupby::GroupByFeatures f;
      f.rows = spec.rows;
      auto est = stats::EstimateDistinct(device, input->column(0));
      GPUJOIN_CHECK_OK(est.status());
      f.estimated_groups = *est;
      f.zipf_theta = zipf;
      const groupby::GroupByAlgo choice = ChooseGroupByAlgo(device, f);

      double best = 1e30, chosen = 0;
      groupby::GroupByAlgo best_algo = choice;
      for (groupby::GroupByAlgo algo : groupby::kAllGroupByAlgos) {
        device.FlushL2();
        auto res = RunGroupBy(device, algo, *input, gs);
        GPUJOIN_CHECK_OK(res.status());
        RecordRun(device,
                  {{"groups", std::to_string(spec.num_groups)},
                   {"zipf", harness::TablePrinter::Fmt(zipf, 2)}},
                  groupby::GroupByAlgoName(algo), res->phases,
                  res->throughput_tuples_per_sec / 1e6, res->peak_mem_bytes,
                  res->num_groups, res->stats);
        const double t = res->phases.total_s();
        if (t < best) {
          best = t;
          best_algo = algo;
        }
        if (algo == choice) chosen = t;
      }
      const double regret = 100.0 * (chosen - best) / best;
      total_regret += regret;
      ++total;
      if (choice == best_algo) ++hits;
      tp.AddRow({std::to_string(spec.num_groups),
                 harness::TablePrinter::Fmt(zipf, 2), std::to_string(*est),
                 GroupByAlgoName(choice), GroupByAlgoName(best_algo),
                 harness::TablePrinter::Fmt(regret, 1)});
    }
  }
  tp.Print();
  std::printf("planner best-pick rate %d/%d, mean regret %.1f%%\n", hits, total,
              total_regret / total);
  gpujoin::harness::PrintSimSummary();
  return 0;
}
