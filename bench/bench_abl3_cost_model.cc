// Ablation 3: cost-model robustness. The headline conclusion (PHJ-OM wins
// wide high-match joins; *-UM wins low-match joins) should not hinge on the
// exact DRAM row-activation penalty. Sweeps the penalty from 0 (pure
// bandwidth model) upward and reports the PHJ-OM : PHJ-UM ratio on both a
// high-match and a low-match workload.

#include <cstdio>

#include "bench_common.h"

using namespace gpujoin;         // NOLINT(build/namespaces)
using namespace gpujoin::bench;  // NOLINT(build/namespaces)

int main() {
  harness::PrintBanner("Ablation 3", "DRAM row-penalty sensitivity");

  harness::TablePrinter tp({"row penalty (B)", "match ratio",
                            "PHJ-UM (ms)", "PHJ-OM (ms)", "OM speedup"});
  for (double penalty : {0.0, 32.0, 64.0, 96.0, 160.0, 256.0}) {
    for (double match : {1.0, 0.05}) {
      vgpu::DeviceConfig cfg = vgpu::DeviceConfig::ScaledToWorkload(
          harness::BaseDeviceConfig(), harness::ScaleTuples());
      cfg.dram_row_penalty_bytes = penalty;
      vgpu::Device device(cfg, harness::FaultInjectorFromEnv());
      workload::JoinWorkloadSpec spec;
      spec.r_rows = harness::ScaleTuples() / 2;
      spec.s_rows = harness::ScaleTuples();
      spec.r_payload_cols = 2;
      spec.s_payload_cols = 2;
      spec.match_ratio = match;
      auto w = MustUpload(device, spec);
      const auto um_res = MustJoin(device, join::JoinAlgo::kPhjUm, w.r, w.s);
      const auto om_res = MustJoin(device, join::JoinAlgo::kPhjOm, w.r, w.s);
      const double um = um_res.phases.total_s();
      const double om = om_res.phases.total_s();
      for (const auto* res : {&um_res, &om_res}) {
        RecordRun(device,
                  {{"row penalty (B)", harness::TablePrinter::Fmt(penalty, 0)},
                   {"match ratio", harness::TablePrinter::Fmt(match, 2)}},
                  res == &um_res ? "PHJ-UM" : "PHJ-OM", res->phases,
                  MTuples(*res), res->peak_mem_bytes, res->output_rows,
                  res->stats);
      }
      tp.AddRow({harness::TablePrinter::Fmt(penalty, 0),
                 harness::TablePrinter::Fmt(match, 2), Ms(um), Ms(om),
                 harness::TablePrinter::Fmt(um / om, 2) + "x"});
    }
  }
  tp.Print();
  std::printf("expected: OM's advantage at match=1.0 grows with the random-"
              "access penalty and never inverts; at match=0.05 the variants "
              "stay near parity regardless\n");
  gpujoin::harness::PrintSimSummary();
  return 0;
}
