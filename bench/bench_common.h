// Helpers shared by the figure/table reproduction benches.

#ifndef GPUJOIN_BENCH_BENCH_COMMON_H_
#define GPUJOIN_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "groupby/groupby.h"
#include "harness/harness.h"
#include "join/join.h"
#include "obs/metrics.h"
#include "workload/generator.h"

namespace gpujoin::bench {

/// Runs one join over a generated workload on the given device; aborts on
/// error (benches treat errors as fatal).
inline join::JoinRunResult MustJoin(vgpu::Device& device, join::JoinAlgo algo,
                                    const Table& r, const Table& s,
                                    const join::JoinOptions& opts = {}) {
  auto res = harness::RunJoinCold(device, algo, r, s, opts);
  GPUJOIN_CHECK_OK(res.status());
  return std::move(res).value();
}

inline harness::DeviceWorkload MustUpload(vgpu::Device& device,
                                          const workload::JoinWorkloadSpec& spec) {
  auto w = workload::GenerateJoinInput(spec);
  GPUJOIN_CHECK_OK(w.status());
  auto up = harness::Upload(device, *w);
  GPUJOIN_CHECK_OK(up.status());
  return std::move(up).value();
}

/// Mtuples/s of a join run ((|R|+|S|) / total time, the paper's metric).
inline double MTuples(const join::JoinRunResult& r) {
  return r.throughput_tuples_per_sec / 1e6;
}

inline std::string Ms(double seconds) {
  return harness::TablePrinter::Fmt(seconds * 1e3, 3);
}

/// Records one measured run into the process-wide metrics sink (the JSON
/// counterpart of a printed table row). Benches with fully custom tables
/// call this directly with the same variables they print; row-based
/// benches go through RunReporter, which calls it for them.
inline void RecordRun(const vgpu::Device& device,
                      std::vector<std::pair<std::string, std::string>> params,
                      std::string algo, const join::PhaseBreakdown& phases,
                      double mtuples_per_sec, uint64_t peak_mem_bytes,
                      uint64_t output_rows, const vgpu::KernelStats& stats,
                      std::string backend = "vgpu") {
  obs::MetricRow row;
  row.params = std::move(params);
  row.algo = std::move(algo);
  row.backend = std::move(backend);
  const double hz = device.config().clock_ghz * 1e9;
  row.transform_cycles = phases.transform_s * hz;
  row.match_cycles = phases.match_s * hz;
  row.materialize_cycles = phases.materialize_s * hz;
  row.total_cycles = phases.total_s() * hz;
  row.mtuples_per_sec = mtuples_per_sec;
  row.l2_hit_rate = stats.L2HitRate();
  row.peak_mem_bytes = peak_mem_bytes;
  row.output_rows = output_rows;
  row.stats = stats;
  obs::MetricsSink::Global().AddRow(std::move(row));
}

/// One reporter per bench table: every Add() derives the human table row
/// AND the JSON MetricRow from the same values, so the printed figure and
/// BENCH_<name>.json can never disagree.
class RunReporter {
 public:
  enum class Kind { kJoin, kGroupBy };

  /// `param_headers` are the bench-specific leading dimension columns
  /// (e.g. {"groups", "zipf"}); the phase/throughput columns are standard.
  RunReporter(const vgpu::Device& device, Kind kind,
              std::vector<std::string> param_headers)
      : device_(device),
        kind_(kind),
        param_headers_(param_headers),
        printer_(StandardHeaders(kind, std::move(param_headers))) {}

  /// Core row: `param_values` aligns with the constructor's
  /// `param_headers`.
  void Add(std::vector<std::string> param_values, const std::string& algo,
           const join::PhaseBreakdown& phases, double mtuples_per_sec,
           uint64_t peak_mem_bytes, uint64_t output_rows,
           const vgpu::KernelStats& stats, std::string backend = "vgpu") {
    std::vector<std::string> cells = param_values;
    cells.push_back(algo);
    cells.push_back(Ms(phases.transform_s));
    cells.push_back(Ms(phases.match_s));
    cells.push_back(Ms(phases.materialize_s));
    cells.push_back(Ms(phases.total_s()));
    cells.push_back(harness::TablePrinter::Fmt(mtuples_per_sec, 0));
    printer_.AddRow(std::move(cells));

    std::vector<std::pair<std::string, std::string>> params;
    for (size_t i = 0; i < param_headers_.size() && i < param_values.size();
         ++i) {
      params.emplace_back(param_headers_[i], param_values[i]);
    }
    RecordRun(device_, std::move(params), algo, phases, mtuples_per_sec,
              peak_mem_bytes, output_rows, stats, std::move(backend));
  }

  void Add(std::vector<std::string> param_values, join::JoinAlgo algo,
           const join::JoinRunResult& r) {
    Add(std::move(param_values), join::JoinAlgoName(algo), r.phases,
        MTuples(r), r.peak_mem_bytes, r.output_rows, r.stats);
  }

  void Add(std::vector<std::string> param_values, groupby::GroupByAlgo algo,
           const groupby::GroupByRunResult& r) {
    Add(std::move(param_values), groupby::GroupByAlgoName(algo), r.phases,
        r.throughput_tuples_per_sec / 1e6, r.peak_mem_bytes, r.num_groups,
        r.stats);
  }

  void Print() const { printer_.Print(); }

  static std::vector<std::string> StandardHeaders(
      Kind kind, std::vector<std::string> param_headers) {
    std::vector<std::string> h = std::move(param_headers);
    h.emplace_back("impl");
    h.emplace_back("transform(ms)");
    h.emplace_back(kind == Kind::kJoin ? "match(ms)" : "aggregate(ms)");
    h.emplace_back(kind == Kind::kJoin ? "materialize(ms)" : "emit(ms)");
    h.emplace_back("total(ms)");
    h.emplace_back("Mtuples/s");
    return h;
  }

 private:
  const vgpu::Device& device_;
  Kind kind_;
  std::vector<std::string> param_headers_;
  harness::TablePrinter printer_;
};

}  // namespace gpujoin::bench

#endif  // GPUJOIN_BENCH_BENCH_COMMON_H_
