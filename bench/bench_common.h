// Helpers shared by the figure/table reproduction benches.

#ifndef GPUJOIN_BENCH_BENCH_COMMON_H_
#define GPUJOIN_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <string>
#include <vector>

#include "harness/harness.h"
#include "join/join.h"
#include "workload/generator.h"

namespace gpujoin::bench {

/// Runs one join over a generated workload on the given device; aborts on
/// error (benches treat errors as fatal).
inline join::JoinRunResult MustJoin(vgpu::Device& device, join::JoinAlgo algo,
                                    const Table& r, const Table& s,
                                    const join::JoinOptions& opts = {}) {
  auto res = harness::RunJoinCold(device, algo, r, s, opts);
  GPUJOIN_CHECK_OK(res.status());
  return std::move(res).value();
}

inline harness::DeviceWorkload MustUpload(vgpu::Device& device,
                                          const workload::JoinWorkloadSpec& spec) {
  auto w = workload::GenerateJoinInput(spec);
  GPUJOIN_CHECK_OK(w.status());
  auto up = harness::Upload(device, *w);
  GPUJOIN_CHECK_OK(up.status());
  return std::move(up).value();
}

/// Mtuples/s of a join run ((|R|+|S|) / total time, the paper's metric).
inline double MTuples(const join::JoinRunResult& r) {
  return r.throughput_tuples_per_sec / 1e6;
}

inline std::string Ms(double seconds) {
  return harness::TablePrinter::Fmt(seconds * 1e3, 3);
}

}  // namespace gpujoin::bench

#endif  // GPUJOIN_BENCH_BENCH_COMMON_H_
