// Figure 10: time breakdown of wide joins (two payload columns per
// relation, |S| = 2|R|, 100% match) across sizes. The paper's key numbers:
// materialization dominates the *-UM implementations; SMJ-OM ~1.6x faster
// than SMJ-UM and ~1.6x faster than PHJ-UM; PHJ-OM the fastest with ~2.3x
// over PHJ-UM and ~1.4x over SMJ-OM.

#include <cstdio>

#include "bench_common.h"

using namespace gpujoin;         // NOLINT(build/namespaces)
using namespace gpujoin::bench;  // NOLINT(build/namespaces)

int main() {
  harness::PrintBanner("Figure 10", "wide join phase breakdown (2+2 payloads)");
  vgpu::Device device = harness::MakeBenchDevice();

  RunReporter rep(device, RunReporter::Kind::kJoin, {"|R| x |S| (tuples)"});
  double smj_um = 0, smj_om = 0, phj_um = 0, phj_om = 0;
  for (int shift : {2, 1, 0}) {
    const uint64_t r_rows = harness::ScaleTuples() >> shift;
    workload::JoinWorkloadSpec spec;
    spec.r_rows = r_rows;
    spec.s_rows = 2 * r_rows;
    spec.r_payload_cols = 2;
    spec.s_payload_cols = 2;
    auto w = MustUpload(device, spec);
    const std::string label =
        std::to_string(spec.r_rows) + " x " + std::to_string(spec.s_rows);
    for (join::JoinAlgo algo : join::kAllJoinAlgos) {
      const auto res = MustJoin(device, algo, w.r, w.s);
      rep.Add({label}, algo, res);
      if (shift == 0) {
        const double t = res.phases.total_s();
        if (algo == join::JoinAlgo::kSmjUm) smj_um = t;
        if (algo == join::JoinAlgo::kSmjOm) smj_om = t;
        if (algo == join::JoinAlgo::kPhjUm) phj_um = t;
        if (algo == join::JoinAlgo::kPhjOm) phj_om = t;
      }
    }
  }
  rep.Print();
  std::printf("largest size: SMJ-OM/SMJ-UM %.2fx (paper ~1.6x) | "
              "SMJ-OM/PHJ-UM %.2fx (paper ~1.6x) | PHJ-OM/PHJ-UM %.2fx "
              "(paper ~2.3x) | PHJ-OM/SMJ-OM %.2fx (paper ~1.4x)\n",
              smj_um / smj_om, phj_um / smj_om, phj_um / phj_om,
              smj_om / phj_om);
  gpujoin::harness::PrintSimSummary();
  return 0;
}
