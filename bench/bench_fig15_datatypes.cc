// Figure 15: effect of data types — mixtures of 4-byte and 8-byte keys and
// payloads (|R| = |S|, two payloads each). The paper: with 8-byte payloads
// *-UM barely moves while *-OM pays more for transforming wider columns
// (SMJ-OM loses its edge); with 8-byte keys everything's transform and
// match finding get more expensive; PHJ-OM leads in all combinations.

#include "bench_common.h"

using namespace gpujoin;         // NOLINT(build/namespaces)
using namespace gpujoin::bench;  // NOLINT(build/namespaces)

int main() {
  harness::PrintBanner("Figure 15", "data type mix sweep");
  vgpu::Device device = harness::MakeBenchDevice();

  struct Mix {
    const char* label;
    DataType key;
    DataType payload;
  };
  const Mix mixes[] = {
      {"4B key + 4B payload", DataType::kInt32, DataType::kInt32},
      {"4B key + 8B payload", DataType::kInt32, DataType::kInt64},
      {"8B key + 8B payload", DataType::kInt64, DataType::kInt64},
  };

  RunReporter rep(device, RunReporter::Kind::kJoin, {"types"});
  for (const Mix& mix : mixes) {
    workload::JoinWorkloadSpec spec;
    spec.r_rows = harness::ScaleTuples();
    spec.s_rows = harness::ScaleTuples();
    spec.r_payload_cols = 2;
    spec.s_payload_cols = 2;
    spec.key_type = mix.key;
    spec.r_payload_type = mix.payload;
    spec.s_payload_type = mix.payload;
    auto w = MustUpload(device, spec);
    for (join::JoinAlgo algo : join::kAllJoinAlgos) {
      const auto res = MustJoin(device, algo, w.r, w.s);
      rep.Add({mix.label}, algo, res);
    }
  }
  rep.Print();
  gpujoin::harness::PrintSimSummary();
  return 0;
}
