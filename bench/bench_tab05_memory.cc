// Table 5: peak device memory usage per implementation for the data-type
// mixes of Figure 15. The paper reports SMJ-OM and PHJ-OM (the GFTR
// variants) more memory-efficient than their GFUR counterparts in every
// mix, with PHJ-UM worst (bucket-chain fragmentation + two pools).

#include "bench_common.h"

using namespace gpujoin;         // NOLINT(build/namespaces)
using namespace gpujoin::bench;  // NOLINT(build/namespaces)

int main() {
  harness::PrintBanner("Table 5", "peak memory usage per implementation");
  vgpu::Device device = harness::MakeBenchDevice();

  struct Mix {
    const char* label;
    DataType key;
    DataType payload;
  };
  const Mix mixes[] = {
      {"4B key + 4B payload", DataType::kInt32, DataType::kInt32},
      {"4B key + 8B payload", DataType::kInt32, DataType::kInt64},
      {"8B key + 8B payload", DataType::kInt64, DataType::kInt64},
  };

  harness::TablePrinter tp({"impl", "4B K + 4B P (MB)", "4B K + 8B P (MB)",
                            "8B K + 8B P (MB)"});
  std::vector<std::vector<double>> peaks(join::kAllJoinAlgos.size());
  for (const Mix& mix : mixes) {
    workload::JoinWorkloadSpec spec;
    spec.r_rows = harness::ScaleTuples();
    spec.s_rows = harness::ScaleTuples();
    spec.r_payload_cols = 2;
    spec.s_payload_cols = 2;
    spec.key_type = mix.key;
    spec.r_payload_type = mix.payload;
    spec.s_payload_type = mix.payload;
    auto w = MustUpload(device, spec);
    for (size_t a = 0; a < join::kAllJoinAlgos.size(); ++a) {
      const auto res = MustJoin(device, join::kAllJoinAlgos[a], w.r, w.s);
      peaks[a].push_back(static_cast<double>(res.peak_mem_bytes) / 1e6);
      RecordRun(device, {{"types", mix.label}},
                join::JoinAlgoName(join::kAllJoinAlgos[a]), res.phases,
                MTuples(res), res.peak_mem_bytes, res.output_rows, res.stats);
    }
  }
  for (size_t a = 0; a < join::kAllJoinAlgos.size(); ++a) {
    tp.AddRow({join::JoinAlgoName(join::kAllJoinAlgos[a]),
               harness::TablePrinter::Fmt(peaks[a][0], 1),
               harness::TablePrinter::Fmt(peaks[a][1], 1),
               harness::TablePrinter::Fmt(peaks[a][2], 1)});
  }
  tp.Print();
  gpujoin::harness::PrintSimSummary();
  return 0;
}
