// Figure 1: time breakdown for join processing — a 1.5 GB primary-key
// relation joined with a 3 GB foreign-key relation, two payload columns per
// relation, comparing the non-partitioned hash join, the partitioned hash
// join of Sioulas et al. (PHJ-UM), the sort-merge join of Rui et al.
// (SMJ-UM), and this work's PHJ-OM. The paper's headline observations:
// materialization is up to ~75% of runtime for the *-UM implementations,
// and PHJ-OM is up to 2.3x faster end to end.

#include <cstdio>

#include "bench_common.h"

using namespace gpujoin;          // NOLINT(build/namespaces)
using namespace gpujoin::bench;   // NOLINT(build/namespaces)

int main() {
  harness::PrintBanner("Figure 1", "join phase breakdown, 1.5G x 3G wide join");
  vgpu::Device device = harness::MakeBenchDevice();

  workload::JoinWorkloadSpec spec;
  spec.r_rows = harness::ScaleTuples();
  spec.s_rows = 2 * harness::ScaleTuples();
  spec.r_payload_cols = 2;
  spec.s_payload_cols = 2;
  harness::DeviceWorkload w = MustUpload(device, spec);

  RunReporter rep(device, RunReporter::Kind::kJoin, {});
  const join::JoinAlgo algos[] = {join::JoinAlgo::kNphj, join::JoinAlgo::kSmjUm,
                                  join::JoinAlgo::kPhjUm, join::JoinAlgo::kPhjOm};
  double um_total = 0, om_total = 0;
  for (join::JoinAlgo algo : algos) {
    const auto r = MustJoin(device, algo, w.r, w.s);
    if (algo == join::JoinAlgo::kPhjUm) um_total = r.phases.total_s();
    if (algo == join::JoinAlgo::kPhjOm) om_total = r.phases.total_s();
    rep.Add({}, algo, r);
  }
  rep.Print();
  std::printf(
      "PHJ-OM speedup over PHJ-UM: %.2fx (paper: up to 2.3x on this shape)\n",
      um_total / om_total);
  gpujoin::harness::PrintSimSummary();
  return 0;
}
