// Table 4: micro-architectural comparison between the unclustered GATHER
// (as used by SMJ-UM's materialization) and the clustered GATHER (as used
// by SMJ-OM): total cycles, warp instructions, cycles per warp instruction,
// bytes read, and average sectors per load request. The paper reports the
// clustered gather ~8.5x faster, 4.5 GB vs 1.5 GB read, and 18 vs 6 sectors
// per request on the A100.

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <random>

#include "bench_common.h"
#include "prim/gather.h"

using namespace gpujoin;         // NOLINT(build/namespaces)
using namespace gpujoin::bench;  // NOLINT(build/namespaces)

namespace {

struct GatherProfile {
  double cycles;
  uint64_t warp_instructions;
  double cycles_per_instr;
  double gb_read;
  double sectors_per_request;
  vgpu::KernelStats stats;
};

GatherProfile ProfileGather(vgpu::Device& device, bool clustered, uint64_t n) {
  auto in = vgpu::DeviceBuffer<int32_t>::Allocate(device, n).ValueOrDie();
  auto map = vgpu::DeviceBuffer<RowId>::Allocate(device, n).ValueOrDie();
  auto out = vgpu::DeviceBuffer<int32_t>::Allocate(device, n).ValueOrDie();
  std::vector<RowId> perm(n);
  std::iota(perm.begin(), perm.end(), 0u);
  if (!clustered) {
    std::mt19937_64 rng(7);
    std::shuffle(perm.begin(), perm.end(), rng);
  }
  std::copy(perm.begin(), perm.end(), map.data());

  device.FlushL2();
  device.ResetStats();
  GPUJOIN_CHECK_OK(prim::Gather(device, in, map, &out));
  const vgpu::KernelStats& st = device.total_stats();
  return {st.cycles,   st.warp_instructions,      st.CyclesPerWarpInstruction(),
          static_cast<double>(st.bytes_read + st.dram_sectors * 0) / 1e9,
          st.AvgSectorsPerRequest(), st};
}

}  // namespace

int main() {
  harness::PrintBanner("Table 4",
                       "unclustered vs clustered GATHER microarchitecture");
  vgpu::Device device = harness::MakeBenchDevice();
  const uint64_t n = harness::ScaleTuples();

  const GatherProfile un = ProfileGather(device, /*clustered=*/false, n);
  const GatherProfile cl = ProfileGather(device, /*clustered=*/true, n);

  for (const auto* p : {&un, &cl}) {
    join::PhaseBreakdown phases;
    phases.materialize_s = device.config().CyclesToSeconds(p->cycles);
    RecordRun(device, {{"items", std::to_string(n)}},
              p == &un ? "unclustered gather (SMJ-UM)"
                       : "clustered gather (SMJ-OM)",
              phases, n / phases.materialize_s / 1e6,
              device.memory_stats().peak_bytes, n, p->stats);
  }

  harness::TablePrinter tp({"metric", "unclustered (SMJ-UM)",
                            "clustered (SMJ-OM)"});
  tp.AddRow({"number of items", std::to_string(n), std::to_string(n)});
  tp.AddRow({"total cycles", harness::TablePrinter::Fmt(un.cycles, 0),
             harness::TablePrinter::Fmt(cl.cycles, 0)});
  tp.AddRow({"warp instructions", std::to_string(un.warp_instructions),
             std::to_string(cl.warp_instructions)});
  tp.AddRow({"avg cycles / warp instr",
             harness::TablePrinter::Fmt(un.cycles_per_instr, 2),
             harness::TablePrinter::Fmt(cl.cycles_per_instr, 2)});
  tp.AddRow({"memory reads (GB requested)",
             harness::TablePrinter::Fmt(un.gb_read, 3),
             harness::TablePrinter::Fmt(cl.gb_read, 3)});
  tp.AddRow({"avg sectors / load request",
             harness::TablePrinter::Fmt(un.sectors_per_request, 2),
             harness::TablePrinter::Fmt(cl.sectors_per_request, 2)});
  tp.Print();
  std::printf("clustered speedup: %.2fx (paper: ~8.5x)\n",
              un.cycles / cl.cycles);
  gpujoin::harness::PrintSimSummary();
  return 0;
}
