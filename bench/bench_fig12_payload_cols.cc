// Figure 12: effect of the number of payload columns (|R| = |S|). The
// paper reports PHJ-OM and SMJ-OM maintaining ~2x and ~1.3x speedups over
// PHJ-UM as the column count grows.

#include <cstdio>

#include "bench_common.h"

using namespace gpujoin;         // NOLINT(build/namespaces)
using namespace gpujoin::bench;  // NOLINT(build/namespaces)

int main() {
  harness::PrintBanner("Figure 12", "payload column count sweep (|R| = |S|)");
  vgpu::Device device = harness::MakeBenchDevice();

  RunReporter rep(device, RunReporter::Kind::kJoin, {"payload cols/side"});
  for (int cols : {1, 2, 4, 6, 8}) {
    workload::JoinWorkloadSpec spec;
    spec.r_rows = harness::ScaleTuples();
    spec.s_rows = harness::ScaleTuples();
    spec.r_payload_cols = cols;
    spec.s_payload_cols = cols;
    auto w = MustUpload(device, spec);
    for (join::JoinAlgo algo : join::kAllJoinAlgos) {
      const auto res = MustJoin(device, algo, w.r, w.s);
      rep.Add({std::to_string(cols)}, algo, res);
    }
  }
  rep.Print();
  gpujoin::harness::PrintSimSummary();
  return 0;
}
