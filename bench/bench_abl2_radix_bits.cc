// Ablation 2: partitioned-hash-join fan-out sweep. The radix bit count
// trades partitioning work (more bits can mean more passes) against
// match-finding locality (partitions must fit the shared-memory hash
// table or the block-nested loop re-streams the probe side). The default
// derives the bits from the shared-memory capacity; this sweep shows the
// bathtub around it.

#include "bench_common.h"

using namespace gpujoin;         // NOLINT(build/namespaces)
using namespace gpujoin::bench;  // NOLINT(build/namespaces)

int main() {
  harness::PrintBanner("Ablation 2", "PHJ radix-bits (fan-out) sweep");
  vgpu::Device device = harness::MakeBenchDevice();

  workload::JoinWorkloadSpec spec;
  spec.r_rows = harness::ScaleTuples() / 2;
  spec.s_rows = harness::ScaleTuples();
  spec.r_payload_cols = 2;
  spec.s_payload_cols = 2;
  auto w = MustUpload(device, spec);

  RunReporter rep(device, RunReporter::Kind::kJoin, {"radix bits"});
  for (int bits : {4, 6, 8, 10, 12, 14, 16}) {
    for (join::JoinAlgo algo : {join::JoinAlgo::kPhjUm, join::JoinAlgo::kPhjOm}) {
      join::JoinOptions opts;
      opts.radix_bits_override = bits;
      const auto res = MustJoin(device, algo, w.r, w.s, opts);
      rep.Add({std::to_string(bits)}, algo, res);
    }
  }
  rep.Print();
  gpujoin::harness::PrintSimSummary();
  return 0;
}
