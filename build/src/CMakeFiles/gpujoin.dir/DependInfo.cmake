
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/status.cc" "src/CMakeFiles/gpujoin.dir/common/status.cc.o" "gcc" "src/CMakeFiles/gpujoin.dir/common/status.cc.o.d"
  "/root/repo/src/cpubase/cpu_radix_join.cc" "src/CMakeFiles/gpujoin.dir/cpubase/cpu_radix_join.cc.o" "gcc" "src/CMakeFiles/gpujoin.dir/cpubase/cpu_radix_join.cc.o.d"
  "/root/repo/src/groupby/groupby.cc" "src/CMakeFiles/gpujoin.dir/groupby/groupby.cc.o" "gcc" "src/CMakeFiles/gpujoin.dir/groupby/groupby.cc.o.d"
  "/root/repo/src/groupby/planner.cc" "src/CMakeFiles/gpujoin.dir/groupby/planner.cc.o" "gcc" "src/CMakeFiles/gpujoin.dir/groupby/planner.cc.o.d"
  "/root/repo/src/groupby/reference.cc" "src/CMakeFiles/gpujoin.dir/groupby/reference.cc.o" "gcc" "src/CMakeFiles/gpujoin.dir/groupby/reference.cc.o.d"
  "/root/repo/src/harness/harness.cc" "src/CMakeFiles/gpujoin.dir/harness/harness.cc.o" "gcc" "src/CMakeFiles/gpujoin.dir/harness/harness.cc.o.d"
  "/root/repo/src/join/bloom_filter.cc" "src/CMakeFiles/gpujoin.dir/join/bloom_filter.cc.o" "gcc" "src/CMakeFiles/gpujoin.dir/join/bloom_filter.cc.o.d"
  "/root/repo/src/join/join.cc" "src/CMakeFiles/gpujoin.dir/join/join.cc.o" "gcc" "src/CMakeFiles/gpujoin.dir/join/join.cc.o.d"
  "/root/repo/src/join/join_aggregate.cc" "src/CMakeFiles/gpujoin.dir/join/join_aggregate.cc.o" "gcc" "src/CMakeFiles/gpujoin.dir/join/join_aggregate.cc.o.d"
  "/root/repo/src/join/join_order.cc" "src/CMakeFiles/gpujoin.dir/join/join_order.cc.o" "gcc" "src/CMakeFiles/gpujoin.dir/join/join_order.cc.o.d"
  "/root/repo/src/join/out_of_core.cc" "src/CMakeFiles/gpujoin.dir/join/out_of_core.cc.o" "gcc" "src/CMakeFiles/gpujoin.dir/join/out_of_core.cc.o.d"
  "/root/repo/src/join/outer.cc" "src/CMakeFiles/gpujoin.dir/join/outer.cc.o" "gcc" "src/CMakeFiles/gpujoin.dir/join/outer.cc.o.d"
  "/root/repo/src/join/pipeline.cc" "src/CMakeFiles/gpujoin.dir/join/pipeline.cc.o" "gcc" "src/CMakeFiles/gpujoin.dir/join/pipeline.cc.o.d"
  "/root/repo/src/join/planner.cc" "src/CMakeFiles/gpujoin.dir/join/planner.cc.o" "gcc" "src/CMakeFiles/gpujoin.dir/join/planner.cc.o.d"
  "/root/repo/src/join/reference.cc" "src/CMakeFiles/gpujoin.dir/join/reference.cc.o" "gcc" "src/CMakeFiles/gpujoin.dir/join/reference.cc.o.d"
  "/root/repo/src/join/semi.cc" "src/CMakeFiles/gpujoin.dir/join/semi.cc.o" "gcc" "src/CMakeFiles/gpujoin.dir/join/semi.cc.o.d"
  "/root/repo/src/ops/ops.cc" "src/CMakeFiles/gpujoin.dir/ops/ops.cc.o" "gcc" "src/CMakeFiles/gpujoin.dir/ops/ops.cc.o.d"
  "/root/repo/src/ops/plan.cc" "src/CMakeFiles/gpujoin.dir/ops/plan.cc.o" "gcc" "src/CMakeFiles/gpujoin.dir/ops/plan.cc.o.d"
  "/root/repo/src/stats/estimator.cc" "src/CMakeFiles/gpujoin.dir/stats/estimator.cc.o" "gcc" "src/CMakeFiles/gpujoin.dir/stats/estimator.cc.o.d"
  "/root/repo/src/storage/column.cc" "src/CMakeFiles/gpujoin.dir/storage/column.cc.o" "gcc" "src/CMakeFiles/gpujoin.dir/storage/column.cc.o.d"
  "/root/repo/src/storage/csv.cc" "src/CMakeFiles/gpujoin.dir/storage/csv.cc.o" "gcc" "src/CMakeFiles/gpujoin.dir/storage/csv.cc.o.d"
  "/root/repo/src/storage/dictionary.cc" "src/CMakeFiles/gpujoin.dir/storage/dictionary.cc.o" "gcc" "src/CMakeFiles/gpujoin.dir/storage/dictionary.cc.o.d"
  "/root/repo/src/storage/key_pack.cc" "src/CMakeFiles/gpujoin.dir/storage/key_pack.cc.o" "gcc" "src/CMakeFiles/gpujoin.dir/storage/key_pack.cc.o.d"
  "/root/repo/src/storage/table.cc" "src/CMakeFiles/gpujoin.dir/storage/table.cc.o" "gcc" "src/CMakeFiles/gpujoin.dir/storage/table.cc.o.d"
  "/root/repo/src/vgpu/device.cc" "src/CMakeFiles/gpujoin.dir/vgpu/device.cc.o" "gcc" "src/CMakeFiles/gpujoin.dir/vgpu/device.cc.o.d"
  "/root/repo/src/vgpu/device_config.cc" "src/CMakeFiles/gpujoin.dir/vgpu/device_config.cc.o" "gcc" "src/CMakeFiles/gpujoin.dir/vgpu/device_config.cc.o.d"
  "/root/repo/src/vgpu/l2_cache.cc" "src/CMakeFiles/gpujoin.dir/vgpu/l2_cache.cc.o" "gcc" "src/CMakeFiles/gpujoin.dir/vgpu/l2_cache.cc.o.d"
  "/root/repo/src/vgpu/profiler.cc" "src/CMakeFiles/gpujoin.dir/vgpu/profiler.cc.o" "gcc" "src/CMakeFiles/gpujoin.dir/vgpu/profiler.cc.o.d"
  "/root/repo/src/vgpu/stats.cc" "src/CMakeFiles/gpujoin.dir/vgpu/stats.cc.o" "gcc" "src/CMakeFiles/gpujoin.dir/vgpu/stats.cc.o.d"
  "/root/repo/src/workload/generator.cc" "src/CMakeFiles/gpujoin.dir/workload/generator.cc.o" "gcc" "src/CMakeFiles/gpujoin.dir/workload/generator.cc.o.d"
  "/root/repo/src/workload/tpc.cc" "src/CMakeFiles/gpujoin.dir/workload/tpc.cc.o" "gcc" "src/CMakeFiles/gpujoin.dir/workload/tpc.cc.o.d"
  "/root/repo/src/workload/zipf.cc" "src/CMakeFiles/gpujoin.dir/workload/zipf.cc.o" "gcc" "src/CMakeFiles/gpujoin.dir/workload/zipf.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
