file(REMOVE_RECURSE
  "libgpujoin.a"
)
