# Empty dependencies file for gpujoin.
# This may be replaced when dependencies are built.
