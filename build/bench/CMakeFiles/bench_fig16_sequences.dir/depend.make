# Empty dependencies file for bench_fig16_sequences.
# This may be replaced when dependencies are built.
