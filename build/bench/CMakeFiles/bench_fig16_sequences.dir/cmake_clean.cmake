file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_sequences.dir/bench_fig16_sequences.cc.o"
  "CMakeFiles/bench_fig16_sequences.dir/bench_fig16_sequences.cc.o.d"
  "bench_fig16_sequences"
  "bench_fig16_sequences.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_sequences.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
