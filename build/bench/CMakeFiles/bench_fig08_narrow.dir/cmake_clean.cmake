file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_narrow.dir/bench_fig08_narrow.cc.o"
  "CMakeFiles/bench_fig08_narrow.dir/bench_fig08_narrow.cc.o.d"
  "bench_fig08_narrow"
  "bench_fig08_narrow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_narrow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
