# Empty compiler generated dependencies file for bench_fig08_narrow.
# This may be replaced when dependencies are built.
