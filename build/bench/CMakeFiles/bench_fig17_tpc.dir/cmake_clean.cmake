file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_tpc.dir/bench_fig17_tpc.cc.o"
  "CMakeFiles/bench_fig17_tpc.dir/bench_fig17_tpc.cc.o.d"
  "bench_fig17_tpc"
  "bench_fig17_tpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_tpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
