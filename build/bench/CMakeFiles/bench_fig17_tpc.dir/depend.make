# Empty dependencies file for bench_fig17_tpc.
# This may be replaced when dependencies are built.
