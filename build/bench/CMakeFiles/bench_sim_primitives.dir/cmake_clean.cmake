file(REMOVE_RECURSE
  "CMakeFiles/bench_sim_primitives.dir/bench_sim_primitives.cc.o"
  "CMakeFiles/bench_sim_primitives.dir/bench_sim_primitives.cc.o.d"
  "bench_sim_primitives"
  "bench_sim_primitives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sim_primitives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
