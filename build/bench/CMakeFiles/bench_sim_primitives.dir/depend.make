# Empty dependencies file for bench_sim_primitives.
# This may be replaced when dependencies are built.
