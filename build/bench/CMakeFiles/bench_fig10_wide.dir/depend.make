# Empty dependencies file for bench_fig10_wide.
# This may be replaced when dependencies are built.
