file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_wide.dir/bench_fig10_wide.cc.o"
  "CMakeFiles/bench_fig10_wide.dir/bench_fig10_wide.cc.o.d"
  "bench_fig10_wide"
  "bench_fig10_wide.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_wide.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
