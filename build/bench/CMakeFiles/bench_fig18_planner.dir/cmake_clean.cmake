file(REMOVE_RECURSE
  "CMakeFiles/bench_fig18_planner.dir/bench_fig18_planner.cc.o"
  "CMakeFiles/bench_fig18_planner.dir/bench_fig18_planner.cc.o.d"
  "bench_fig18_planner"
  "bench_fig18_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
