# Empty dependencies file for bench_fig18_planner.
# This may be replaced when dependencies are built.
