file(REMOVE_RECURSE
  "CMakeFiles/bench_gb2_skew.dir/bench_gb2_skew.cc.o"
  "CMakeFiles/bench_gb2_skew.dir/bench_gb2_skew.cc.o.d"
  "bench_gb2_skew"
  "bench_gb2_skew.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gb2_skew.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
