# Empty compiler generated dependencies file for bench_gb2_skew.
# This may be replaced when dependencies are built.
