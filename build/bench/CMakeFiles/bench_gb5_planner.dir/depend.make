# Empty dependencies file for bench_gb5_planner.
# This may be replaced when dependencies are built.
