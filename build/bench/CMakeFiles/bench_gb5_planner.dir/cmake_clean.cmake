file(REMOVE_RECURSE
  "CMakeFiles/bench_gb5_planner.dir/bench_gb5_planner.cc.o"
  "CMakeFiles/bench_gb5_planner.dir/bench_gb5_planner.cc.o.d"
  "bench_gb5_planner"
  "bench_gb5_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gb5_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
