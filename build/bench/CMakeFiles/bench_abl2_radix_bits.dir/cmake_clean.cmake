file(REMOVE_RECURSE
  "CMakeFiles/bench_abl2_radix_bits.dir/bench_abl2_radix_bits.cc.o"
  "CMakeFiles/bench_abl2_radix_bits.dir/bench_abl2_radix_bits.cc.o.d"
  "bench_abl2_radix_bits"
  "bench_abl2_radix_bits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl2_radix_bits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
