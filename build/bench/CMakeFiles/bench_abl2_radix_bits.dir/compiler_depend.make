# Empty compiler generated dependencies file for bench_abl2_radix_bits.
# This may be replaced when dependencies are built.
