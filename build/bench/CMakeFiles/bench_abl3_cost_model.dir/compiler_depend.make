# Empty compiler generated dependencies file for bench_abl3_cost_model.
# This may be replaced when dependencies are built.
