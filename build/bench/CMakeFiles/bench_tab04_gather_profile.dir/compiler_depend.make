# Empty compiler generated dependencies file for bench_tab04_gather_profile.
# This may be replaced when dependencies are built.
