file(REMOVE_RECURSE
  "CMakeFiles/bench_tab04_gather_profile.dir/bench_tab04_gather_profile.cc.o"
  "CMakeFiles/bench_tab04_gather_profile.dir/bench_tab04_gather_profile.cc.o.d"
  "bench_tab04_gather_profile"
  "bench_tab04_gather_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab04_gather_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
