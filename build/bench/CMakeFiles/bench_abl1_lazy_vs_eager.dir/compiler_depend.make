# Empty compiler generated dependencies file for bench_abl1_lazy_vs_eager.
# This may be replaced when dependencies are built.
