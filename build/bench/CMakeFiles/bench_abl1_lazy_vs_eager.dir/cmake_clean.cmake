file(REMOVE_RECURSE
  "CMakeFiles/bench_abl1_lazy_vs_eager.dir/bench_abl1_lazy_vs_eager.cc.o"
  "CMakeFiles/bench_abl1_lazy_vs_eager.dir/bench_abl1_lazy_vs_eager.cc.o.d"
  "bench_abl1_lazy_vs_eager"
  "bench_abl1_lazy_vs_eager.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl1_lazy_vs_eager.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
