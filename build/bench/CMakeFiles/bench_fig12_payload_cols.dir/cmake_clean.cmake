file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_payload_cols.dir/bench_fig12_payload_cols.cc.o"
  "CMakeFiles/bench_fig12_payload_cols.dir/bench_fig12_payload_cols.cc.o.d"
  "bench_fig12_payload_cols"
  "bench_fig12_payload_cols.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_payload_cols.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
