# Empty compiler generated dependencies file for bench_fig12_payload_cols.
# This may be replaced when dependencies are built.
