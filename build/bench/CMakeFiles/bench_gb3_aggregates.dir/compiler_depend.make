# Empty compiler generated dependencies file for bench_gb3_aggregates.
# This may be replaced when dependencies are built.
