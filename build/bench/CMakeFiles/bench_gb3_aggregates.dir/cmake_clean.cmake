file(REMOVE_RECURSE
  "CMakeFiles/bench_gb3_aggregates.dir/bench_gb3_aggregates.cc.o"
  "CMakeFiles/bench_gb3_aggregates.dir/bench_gb3_aggregates.cc.o.d"
  "bench_gb3_aggregates"
  "bench_gb3_aggregates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gb3_aggregates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
