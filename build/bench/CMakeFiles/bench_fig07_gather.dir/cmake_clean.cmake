file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_gather.dir/bench_fig07_gather.cc.o"
  "CMakeFiles/bench_fig07_gather.dir/bench_fig07_gather.cc.o.d"
  "bench_fig07_gather"
  "bench_fig07_gather.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_gather.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
