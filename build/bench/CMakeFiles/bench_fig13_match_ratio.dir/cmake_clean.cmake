file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_match_ratio.dir/bench_fig13_match_ratio.cc.o"
  "CMakeFiles/bench_fig13_match_ratio.dir/bench_fig13_match_ratio.cc.o.d"
  "bench_fig13_match_ratio"
  "bench_fig13_match_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_match_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
