# Empty dependencies file for bench_fig13_match_ratio.
# This may be replaced when dependencies are built.
