# Empty compiler generated dependencies file for bench_gb1_cardinality.
# This may be replaced when dependencies are built.
