file(REMOVE_RECURSE
  "CMakeFiles/bench_gb1_cardinality.dir/bench_gb1_cardinality.cc.o"
  "CMakeFiles/bench_gb1_cardinality.dir/bench_gb1_cardinality.cc.o.d"
  "bench_gb1_cardinality"
  "bench_gb1_cardinality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gb1_cardinality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
