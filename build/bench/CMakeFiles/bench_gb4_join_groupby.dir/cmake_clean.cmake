file(REMOVE_RECURSE
  "CMakeFiles/bench_gb4_join_groupby.dir/bench_gb4_join_groupby.cc.o"
  "CMakeFiles/bench_gb4_join_groupby.dir/bench_gb4_join_groupby.cc.o.d"
  "bench_gb4_join_groupby"
  "bench_gb4_join_groupby.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gb4_join_groupby.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
