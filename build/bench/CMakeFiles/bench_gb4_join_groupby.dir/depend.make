# Empty dependencies file for bench_gb4_join_groupby.
# This may be replaced when dependencies are built.
