file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_narrow_breakdown.dir/bench_fig09_narrow_breakdown.cc.o"
  "CMakeFiles/bench_fig09_narrow_breakdown.dir/bench_fig09_narrow_breakdown.cc.o.d"
  "bench_fig09_narrow_breakdown"
  "bench_fig09_narrow_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_narrow_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
