# Empty dependencies file for bench_fig09_narrow_breakdown.
# This may be replaced when dependencies are built.
