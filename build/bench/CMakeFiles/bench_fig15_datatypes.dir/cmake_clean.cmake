file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_datatypes.dir/bench_fig15_datatypes.cc.o"
  "CMakeFiles/bench_fig15_datatypes.dir/bench_fig15_datatypes.cc.o.d"
  "bench_fig15_datatypes"
  "bench_fig15_datatypes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_datatypes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
