# Empty compiler generated dependencies file for bench_gb6_fused.
# This may be replaced when dependencies are built.
