file(REMOVE_RECURSE
  "CMakeFiles/bench_gb6_fused.dir/bench_gb6_fused.cc.o"
  "CMakeFiles/bench_gb6_fused.dir/bench_gb6_fused.cc.o.d"
  "bench_gb6_fused"
  "bench_gb6_fused.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gb6_fused.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
