# Empty compiler generated dependencies file for bench_tab05_memory.
# This may be replaced when dependencies are built.
