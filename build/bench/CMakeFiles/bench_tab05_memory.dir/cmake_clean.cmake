file(REMOVE_RECURSE
  "CMakeFiles/bench_tab05_memory.dir/bench_tab05_memory.cc.o"
  "CMakeFiles/bench_tab05_memory.dir/bench_tab05_memory.cc.o.d"
  "bench_tab05_memory"
  "bench_tab05_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab05_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
