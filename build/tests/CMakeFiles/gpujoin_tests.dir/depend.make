# Empty dependencies file for gpujoin_tests.
# This may be replaced when dependencies are built.
