
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/bit_util_test.cc" "tests/CMakeFiles/gpujoin_tests.dir/bit_util_test.cc.o" "gcc" "tests/CMakeFiles/gpujoin_tests.dir/bit_util_test.cc.o.d"
  "/root/repo/tests/bloom_string_fuzz_test.cc" "tests/CMakeFiles/gpujoin_tests.dir/bloom_string_fuzz_test.cc.o" "gcc" "tests/CMakeFiles/gpujoin_tests.dir/bloom_string_fuzz_test.cc.o.d"
  "/root/repo/tests/bucket_chain_test.cc" "tests/CMakeFiles/gpujoin_tests.dir/bucket_chain_test.cc.o" "gcc" "tests/CMakeFiles/gpujoin_tests.dir/bucket_chain_test.cc.o.d"
  "/root/repo/tests/cpu_pipeline_planner_test.cc" "tests/CMakeFiles/gpujoin_tests.dir/cpu_pipeline_planner_test.cc.o" "gcc" "tests/CMakeFiles/gpujoin_tests.dir/cpu_pipeline_planner_test.cc.o.d"
  "/root/repo/tests/cross_device_test.cc" "tests/CMakeFiles/gpujoin_tests.dir/cross_device_test.cc.o" "gcc" "tests/CMakeFiles/gpujoin_tests.dir/cross_device_test.cc.o.d"
  "/root/repo/tests/determinism_test.cc" "tests/CMakeFiles/gpujoin_tests.dir/determinism_test.cc.o" "gcc" "tests/CMakeFiles/gpujoin_tests.dir/determinism_test.cc.o.d"
  "/root/repo/tests/estimator_profiler_test.cc" "tests/CMakeFiles/gpujoin_tests.dir/estimator_profiler_test.cc.o" "gcc" "tests/CMakeFiles/gpujoin_tests.dir/estimator_profiler_test.cc.o.d"
  "/root/repo/tests/extension_test.cc" "tests/CMakeFiles/gpujoin_tests.dir/extension_test.cc.o" "gcc" "tests/CMakeFiles/gpujoin_tests.dir/extension_test.cc.o.d"
  "/root/repo/tests/groupby_property_test.cc" "tests/CMakeFiles/gpujoin_tests.dir/groupby_property_test.cc.o" "gcc" "tests/CMakeFiles/gpujoin_tests.dir/groupby_property_test.cc.o.d"
  "/root/repo/tests/groupby_test.cc" "tests/CMakeFiles/gpujoin_tests.dir/groupby_test.cc.o" "gcc" "tests/CMakeFiles/gpujoin_tests.dir/groupby_test.cc.o.d"
  "/root/repo/tests/harness_env_test.cc" "tests/CMakeFiles/gpujoin_tests.dir/harness_env_test.cc.o" "gcc" "tests/CMakeFiles/gpujoin_tests.dir/harness_env_test.cc.o.d"
  "/root/repo/tests/join_correctness_test.cc" "tests/CMakeFiles/gpujoin_tests.dir/join_correctness_test.cc.o" "gcc" "tests/CMakeFiles/gpujoin_tests.dir/join_correctness_test.cc.o.d"
  "/root/repo/tests/join_order_test.cc" "tests/CMakeFiles/gpujoin_tests.dir/join_order_test.cc.o" "gcc" "tests/CMakeFiles/gpujoin_tests.dir/join_order_test.cc.o.d"
  "/root/repo/tests/join_property_test.cc" "tests/CMakeFiles/gpujoin_tests.dir/join_property_test.cc.o" "gcc" "tests/CMakeFiles/gpujoin_tests.dir/join_property_test.cc.o.d"
  "/root/repo/tests/l2_cache_test.cc" "tests/CMakeFiles/gpujoin_tests.dir/l2_cache_test.cc.o" "gcc" "tests/CMakeFiles/gpujoin_tests.dir/l2_cache_test.cc.o.d"
  "/root/repo/tests/memory_accounting_test.cc" "tests/CMakeFiles/gpujoin_tests.dir/memory_accounting_test.cc.o" "gcc" "tests/CMakeFiles/gpujoin_tests.dir/memory_accounting_test.cc.o.d"
  "/root/repo/tests/merge_path_test.cc" "tests/CMakeFiles/gpujoin_tests.dir/merge_path_test.cc.o" "gcc" "tests/CMakeFiles/gpujoin_tests.dir/merge_path_test.cc.o.d"
  "/root/repo/tests/ops_test.cc" "tests/CMakeFiles/gpujoin_tests.dir/ops_test.cc.o" "gcc" "tests/CMakeFiles/gpujoin_tests.dir/ops_test.cc.o.d"
  "/root/repo/tests/outer_join_test.cc" "tests/CMakeFiles/gpujoin_tests.dir/outer_join_test.cc.o" "gcc" "tests/CMakeFiles/gpujoin_tests.dir/outer_join_test.cc.o.d"
  "/root/repo/tests/perf_shape_test.cc" "tests/CMakeFiles/gpujoin_tests.dir/perf_shape_test.cc.o" "gcc" "tests/CMakeFiles/gpujoin_tests.dir/perf_shape_test.cc.o.d"
  "/root/repo/tests/prim_match_test.cc" "tests/CMakeFiles/gpujoin_tests.dir/prim_match_test.cc.o" "gcc" "tests/CMakeFiles/gpujoin_tests.dir/prim_match_test.cc.o.d"
  "/root/repo/tests/prim_radix_partition_test.cc" "tests/CMakeFiles/gpujoin_tests.dir/prim_radix_partition_test.cc.o" "gcc" "tests/CMakeFiles/gpujoin_tests.dir/prim_radix_partition_test.cc.o.d"
  "/root/repo/tests/prim_scan_test.cc" "tests/CMakeFiles/gpujoin_tests.dir/prim_scan_test.cc.o" "gcc" "tests/CMakeFiles/gpujoin_tests.dir/prim_scan_test.cc.o.d"
  "/root/repo/tests/prim_sort_gather_test.cc" "tests/CMakeFiles/gpujoin_tests.dir/prim_sort_gather_test.cc.o" "gcc" "tests/CMakeFiles/gpujoin_tests.dir/prim_sort_gather_test.cc.o.d"
  "/root/repo/tests/semi_join_test.cc" "tests/CMakeFiles/gpujoin_tests.dir/semi_join_test.cc.o" "gcc" "tests/CMakeFiles/gpujoin_tests.dir/semi_join_test.cc.o.d"
  "/root/repo/tests/status_test.cc" "tests/CMakeFiles/gpujoin_tests.dir/status_test.cc.o" "gcc" "tests/CMakeFiles/gpujoin_tests.dir/status_test.cc.o.d"
  "/root/repo/tests/storage_test.cc" "tests/CMakeFiles/gpujoin_tests.dir/storage_test.cc.o" "gcc" "tests/CMakeFiles/gpujoin_tests.dir/storage_test.cc.o.d"
  "/root/repo/tests/tpc_join_test.cc" "tests/CMakeFiles/gpujoin_tests.dir/tpc_join_test.cc.o" "gcc" "tests/CMakeFiles/gpujoin_tests.dir/tpc_join_test.cc.o.d"
  "/root/repo/tests/transform_test.cc" "tests/CMakeFiles/gpujoin_tests.dir/transform_test.cc.o" "gcc" "tests/CMakeFiles/gpujoin_tests.dir/transform_test.cc.o.d"
  "/root/repo/tests/vgpu_device_test.cc" "tests/CMakeFiles/gpujoin_tests.dir/vgpu_device_test.cc.o" "gcc" "tests/CMakeFiles/gpujoin_tests.dir/vgpu_device_test.cc.o.d"
  "/root/repo/tests/workload_test.cc" "tests/CMakeFiles/gpujoin_tests.dir/workload_test.cc.o" "gcc" "tests/CMakeFiles/gpujoin_tests.dir/workload_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gpujoin.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
