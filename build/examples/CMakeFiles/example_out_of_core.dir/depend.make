# Empty dependencies file for example_out_of_core.
# This may be replaced when dependencies are built.
