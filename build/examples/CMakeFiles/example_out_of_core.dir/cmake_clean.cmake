file(REMOVE_RECURSE
  "CMakeFiles/example_out_of_core.dir/out_of_core.cpp.o"
  "CMakeFiles/example_out_of_core.dir/out_of_core.cpp.o.d"
  "example_out_of_core"
  "example_out_of_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_out_of_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
