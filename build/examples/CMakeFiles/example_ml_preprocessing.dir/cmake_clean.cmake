file(REMOVE_RECURSE
  "CMakeFiles/example_ml_preprocessing.dir/ml_preprocessing.cpp.o"
  "CMakeFiles/example_ml_preprocessing.dir/ml_preprocessing.cpp.o.d"
  "example_ml_preprocessing"
  "example_ml_preprocessing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_ml_preprocessing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
