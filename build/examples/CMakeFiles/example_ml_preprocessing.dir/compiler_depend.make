# Empty compiler generated dependencies file for example_ml_preprocessing.
# This may be replaced when dependencies are built.
