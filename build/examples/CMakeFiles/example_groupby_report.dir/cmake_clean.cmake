file(REMOVE_RECURSE
  "CMakeFiles/example_groupby_report.dir/groupby_report.cpp.o"
  "CMakeFiles/example_groupby_report.dir/groupby_report.cpp.o.d"
  "example_groupby_report"
  "example_groupby_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_groupby_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
