# Empty dependencies file for example_groupby_report.
# This may be replaced when dependencies are built.
