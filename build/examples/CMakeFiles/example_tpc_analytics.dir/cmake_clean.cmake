file(REMOVE_RECURSE
  "CMakeFiles/example_tpc_analytics.dir/tpc_analytics.cpp.o"
  "CMakeFiles/example_tpc_analytics.dir/tpc_analytics.cpp.o.d"
  "example_tpc_analytics"
  "example_tpc_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_tpc_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
