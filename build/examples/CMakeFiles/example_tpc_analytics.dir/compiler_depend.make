# Empty compiler generated dependencies file for example_tpc_analytics.
# This may be replaced when dependencies are built.
