file(REMOVE_RECURSE
  "CMakeFiles/example_query_pipeline.dir/query_pipeline.cpp.o"
  "CMakeFiles/example_query_pipeline.dir/query_pipeline.cpp.o.d"
  "example_query_pipeline"
  "example_query_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_query_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
