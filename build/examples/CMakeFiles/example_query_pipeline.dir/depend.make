# Empty dependencies file for example_query_pipeline.
# This may be replaced when dependencies are built.
