# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_groupby_report "/root/repo/build/examples/example_groupby_report")
set_tests_properties(example_groupby_report PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;9;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_ml_preprocessing "/root/repo/build/examples/example_ml_preprocessing")
set_tests_properties(example_ml_preprocessing PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;9;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_out_of_core "/root/repo/build/examples/example_out_of_core")
set_tests_properties(example_out_of_core PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;9;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_query_pipeline "/root/repo/build/examples/example_query_pipeline")
set_tests_properties(example_query_pipeline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;9;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_quickstart "/root/repo/build/examples/example_quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;9;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_tpc_analytics "/root/repo/build/examples/example_tpc_analytics")
set_tests_properties(example_tpc_analytics PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;9;add_test;/root/repo/examples/CMakeLists.txt;0;")
