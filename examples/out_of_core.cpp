// Out-of-core joins: inputs that do not fit the device are host-partitioned
// into co-fragments and streamed through the GPU over the PCIe model. This
// example joins ~12 MB of input through a deliberately tiny 2 MB device.
//
//   $ ./example_out_of_core

#include <cstdio>

#include "join/out_of_core.h"
#include "workload/generator.h"

using namespace gpujoin;  // NOLINT(build/namespaces)

int main() {
  workload::JoinWorkloadSpec spec;
  spec.r_rows = 1 << 18;
  spec.s_rows = 1 << 18;
  spec.r_payload_cols = 2;
  spec.s_payload_cols = 2;
  auto w = workload::GenerateJoinInput(spec);
  GPUJOIN_CHECK_OK(w.status());

  vgpu::DeviceConfig cfg = vgpu::DeviceConfig::ScaledToWorkload(
      vgpu::DeviceConfig::A100(), spec.r_rows);
  cfg.global_mem_bytes = 2 * 1024 * 1024;  // A 2 MB "GPU".
  vgpu::Device device(cfg);

  const double input_mb =
      static_cast<double>((spec.r_rows + spec.s_rows) * 12) / 1e6;
  std::printf("joining %.1f MB of input through a %.1f MB device\n", input_mb,
              cfg.global_mem_bytes / 1e6);

  auto res = join::RunOutOfCoreJoin(device, join::JoinAlgo::kPhjOm, w->r, w->s);
  GPUJOIN_CHECK_OK(res.status());

  std::printf("fragments:          %d\n", res->fragments);
  std::printf("output rows:        %llu\n",
              static_cast<unsigned long long>(res->output_rows));
  std::printf("bytes over PCIe:    %.1f MB\n", res->bytes_transferred / 1e6);
  std::printf("device time (sim):  %.3f ms\n", res->device_seconds * 1e3);
  std::printf("host time (wall):   %.3f ms\n", res->host_seconds * 1e3);

  // Compare against an in-memory run on a device that fits everything.
  vgpu::Device big(vgpu::DeviceConfig::ScaledToWorkload(
      vgpu::DeviceConfig::A100(), spec.r_rows));
  auto r = Table::FromHost(big, w->r);
  auto s = Table::FromHost(big, w->s);
  GPUJOIN_CHECK_OK(r.status());
  GPUJOIN_CHECK_OK(s.status());
  auto in_mem = join::RunJoin(big, join::JoinAlgo::kPhjOm, *r, *s);
  GPUJOIN_CHECK_OK(in_mem.status());
  std::printf("\nin-memory reference: %.3f ms (sim) — streaming overhead "
              "%.2fx\n",
              in_mem->phases.total_s() * 1e3,
              res->device_seconds / in_mem->phases.total_s());
  return 0;
}
