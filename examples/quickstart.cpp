// Quickstart: build two small tables, run an end-to-end GPU join (PHJ-OM,
// the paper's best all-round implementation), and print the result along
// with the phase breakdown.
//
//   $ ./example_quickstart

#include <cstdio>

#include "join/join.h"
#include "storage/table.h"
#include "vgpu/device.h"

using gpujoin::DataType;
using gpujoin::HostColumn;
using gpujoin::HostTable;
using gpujoin::Table;

int main() {
  // A simulated NVIDIA A100 (the paper's primary machine).
  gpujoin::vgpu::Device device(gpujoin::vgpu::DeviceConfig::A100());

  // R: customers (key, age, score). S: orders (customer key, amount).
  HostTable customers{
      "customers",
      {{"cust_key", DataType::kInt32, {0, 1, 2, 3, 4}},
       {"age", DataType::kInt32, {34, 58, 41, 25, 63}},
       {"score", DataType::kInt32, {720, 680, 790, 655, 700}}}};
  HostTable orders{"orders",
                   {{"cust_key", DataType::kInt32, {3, 1, 4, 1, 0, 2, 1}},
                    {"amount", DataType::kInt32, {120, 80, 45, 230, 19, 77, 60}}}};

  auto r = Table::FromHost(device, customers);
  auto s = Table::FromHost(device, orders);
  GPUJOIN_CHECK_OK(r.status());
  GPUJOIN_CHECK_OK(s.status());

  auto result = gpujoin::join::RunJoin(device, gpujoin::join::JoinAlgo::kPhjOm,
                                       *r, *s);
  GPUJOIN_CHECK_OK(result.status());

  const HostTable out = result->output.ToHost();
  std::printf("joined %llu orders with %llu customers -> %llu rows\n\n",
              static_cast<unsigned long long>(s->num_rows()),
              static_cast<unsigned long long>(r->num_rows()),
              static_cast<unsigned long long>(result->output_rows));
  for (const HostColumn& c : out.columns) std::printf("%10s", c.name.c_str());
  std::printf("\n");
  for (uint64_t i = 0; i < out.num_rows(); ++i) {
    for (const HostColumn& c : out.columns) {
      std::printf("%10lld", static_cast<long long>(c.values[i]));
    }
    std::printf("\n");
  }

  std::printf("\nsimulated phases: transform=%.1fus match=%.1fus "
              "materialize=%.1fus\n",
              result->phases.transform_s * 1e6, result->phases.match_s * 1e6,
              result->phases.materialize_s * 1e6);
  return 0;
}
