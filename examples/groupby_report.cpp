// End-to-end analytics: join a sales fact table with a dictionary-encoded
// region dimension, then run a grouped aggregation (revenue per region) —
// the join + grouped-aggregation combination the target paper's title
// covers. Shows the hash- vs sort-based group-by costs and decodes the
// dictionary back to strings for the final report.
//
//   $ ./example_groupby_report

#include <cstdio>
#include <random>

#include "groupby/groupby.h"
#include "join/join.h"
#include "storage/dictionary.h"
#include "storage/table.h"
#include "vgpu/device.h"

using namespace gpujoin;  // NOLINT(build/namespaces)

int main() {
  const uint64_t kSales = 1 << 18;
  vgpu::Device device(
      vgpu::DeviceConfig::ScaledToWorkload(vgpu::DeviceConfig::A100(), kSales));

  // Dimension: stores with dictionary-encoded region names.
  static const char* kRegions[] = {"EUROPE", "ASIA", "AMERICA", "AFRICA",
                                   "OCEANIA"};
  DictionaryEncoder dict;
  const uint64_t kStores = 1024;
  HostTable stores{"stores", {{"store_key", DataType::kInt32, {}},
                              {"region", DataType::kInt32, {}}}};
  std::mt19937_64 rng(11);
  for (uint64_t i = 0; i < kStores; ++i) {
    stores.columns[0].values.push_back(static_cast<int64_t>(i));
    stores.columns[1].values.push_back(dict.Encode(kRegions[rng() % 5]));
  }

  // Fact: sales (store_key, amount).
  HostTable sales{"sales", {{"store_key", DataType::kInt32, {}},
                            {"amount", DataType::kInt32, {}}}};
  for (uint64_t i = 0; i < kSales; ++i) {
    sales.columns[0].values.push_back(static_cast<int64_t>(rng() % kStores));
    sales.columns[1].values.push_back(static_cast<int64_t>(rng() % 500 + 1));
  }

  auto r = Table::FromHost(device, stores);
  auto s = Table::FromHost(device, sales);
  GPUJOIN_CHECK_OK(r.status());
  GPUJOIN_CHECK_OK(s.status());

  // Join: every sale finds its store (100% match).
  auto joined = join::RunJoin(device, join::JoinAlgo::kPhjOm, *r, *s);
  GPUJOIN_CHECK_OK(joined.status());
  std::printf("join: %llu sales x %llu stores in %.3f ms (simulated)\n",
              static_cast<unsigned long long>(kSales),
              static_cast<unsigned long long>(kStores),
              joined->phases.total_s() * 1e3);

  // Regroup the joined result by region: SUM(amount), COUNT, AVG(amount).
  // The joined schema is (store_key, region, amount); group by region.
  Table grouped_input = Table::FromColumns(
      "joined", {"region", "amount"},
      [&] {
        std::vector<DeviceColumn> cols;
        cols.push_back(joined->output.TakeColumn(1));  // region
        cols.push_back(joined->output.TakeColumn(2));  // amount
        return cols;
      }());

  groupby::GroupBySpec spec;
  spec.aggregates = {{1, groupby::AggOp::kSum},
                     {1, groupby::AggOp::kCount},
                     {1, groupby::AggOp::kAvg}};
  for (groupby::GroupByAlgo algo : groupby::kAllGroupByAlgos) {
    device.FlushL2();
    auto res = RunGroupBy(device, algo, grouped_input, spec);
    GPUJOIN_CHECK_OK(res.status());
    std::printf("%-15s %.3f ms (simulated), %llu groups\n",
                GroupByAlgoName(algo), res->phases.total_s() * 1e3,
                static_cast<unsigned long long>(res->num_groups));
  }

  // Final report (any algorithm produces the same result).
  auto res = RunGroupBy(device, groupby::GroupByAlgo::kHashPartitioned,
                        grouped_input, spec);
  GPUJOIN_CHECK_OK(res.status());
  const HostTable report = res->output.ToHost();
  std::printf("\n%-10s %14s %10s %10s\n", "region", "revenue", "sales", "avg");
  for (uint64_t i = 0; i < report.num_rows(); ++i) {
    auto name = dict.Decode(report.columns[0].values[i]);
    GPUJOIN_CHECK_OK(name.status());
    std::printf("%-10s %14lld %10lld %10lld\n", name->c_str(),
                static_cast<long long>(report.columns[1].values[i]),
                static_cast<long long>(report.columns[2].values[i]),
                static_cast<long long>(report.columns[3].values[i]));
  }
  return 0;
}
