// EXPLAIN ANALYZE for the simulated GPU stack: runs a hash join and a
// group-by with query tracing enabled, then prints the span tree with
// per-phase percentages and the hottest kernels per phase — the same view
// GPUJOIN_EXPLAIN=1 produces for any bench binary.
//
// The demo doubles as a smoke test of the tracer's accounting invariant:
// for every query span, the simulated cycles of its phase children must sum
// to the query total (kernels only run inside phases). It exits non-zero if
// that property does not hold.
//
//   $ ./example_explain_demo

#include <cmath>
#include <cstdio>
#include <vector>

#include "groupby/groupby.h"
#include "join/join.h"
#include "obs/explain.h"
#include "obs/trace.h"
#include "storage/table.h"
#include "vgpu/device.h"
#include "workload/generator.h"

using namespace gpujoin;  // NOLINT(build/namespaces)

namespace {

// Checks that the phase children of every query span account for the span's
// full simulated duration (relative tolerance only guards float summation).
bool PhasesSumToQueryTotal(const obs::Tracer& tracer) {
  bool ok = true;
  for (const obs::SpanRecord& span : tracer.spans()) {
    if (span.category != "query") continue;
    double phase_cycles = 0;
    for (const obs::SpanRecord& child : tracer.spans()) {
      if (child.parent == span.id && child.category == "phase") {
        phase_cycles += child.duration_cycles();
      }
    }
    const double total = span.duration_cycles();
    if (std::fabs(phase_cycles - total) > 1e-6 * total + 1e-6) {
      std::fprintf(stderr,
                   "FAIL: query span '%s': phases sum to %.1f cycles, "
                   "query total is %.1f\n",
                   span.name.c_str(), phase_cycles, total);
      ok = false;
    }
  }
  return ok;
}

}  // namespace

int main() {
  obs::Tracer::Global().set_enabled(true);

  const uint64_t kRows = 1 << 16;
  vgpu::Device device(
      vgpu::DeviceConfig::ScaledToWorkload(vgpu::DeviceConfig::A100(), kRows));

  // Query 1: a wide PHJ-OM join (transform / match / materialize phases).
  workload::JoinWorkloadSpec jspec;
  jspec.r_rows = kRows / 2;
  jspec.s_rows = kRows;
  jspec.r_payload_cols = 2;
  jspec.s_payload_cols = 2;
  jspec.zipf_theta = 0.25;
  auto jw = workload::GenerateJoinInput(jspec);
  GPUJOIN_CHECK_OK(jw.status());
  auto r = Table::FromHost(device, jw->r);
  auto s = Table::FromHost(device, jw->s);
  GPUJOIN_CHECK_OK(r.status());
  GPUJOIN_CHECK_OK(s.status());
  auto jres = join::RunJoin(device, join::JoinAlgo::kPhjOm, *r, *s);
  GPUJOIN_CHECK_OK(jres.status());
  std::printf("join produced %llu rows\n",
              static_cast<unsigned long long>(jres->output_rows));

  // Query 2: a partitioned hash aggregation over the probe side.
  workload::GroupByWorkloadSpec gspec;
  gspec.rows = kRows;
  gspec.num_groups = 1 << 9;
  gspec.zipf_theta = 0.5;
  auto gw = workload::GenerateGroupByInput(gspec);
  GPUJOIN_CHECK_OK(gw.status());
  auto gin = Table::FromHost(device, *gw);
  GPUJOIN_CHECK_OK(gin.status());
  groupby::GroupBySpec gs;
  gs.aggregates = {{1, groupby::AggOp::kSum}};
  auto gres = groupby::RunGroupBy(device, groupby::GroupByAlgo::kHashPartitioned,
                                  *gin, gs);
  GPUJOIN_CHECK_OK(gres.status());
  std::printf("group-by produced %llu groups\n\n",
              static_cast<unsigned long long>(gres->num_groups));

  std::fputs(obs::RenderExplain(obs::Tracer::Global()).c_str(), stdout);

  if (!PhasesSumToQueryTotal(obs::Tracer::Global())) return 1;
  std::printf("\nOK: per-phase cycles sum to each query's total\n");
  return 0;
}
