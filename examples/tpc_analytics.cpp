// Runs the five TPC-H/TPC-DS joins of the paper's Table 6 with the
// Figure 18 planner choosing the implementation, and shows the decision
// rationale plus how the choice compares against running every algorithm.
//
//   $ ./example_tpc_analytics

#include <cstdio>

#include "harness/harness.h"
#include "join/join.h"
#include "join/planner.h"
#include "workload/tpc.h"

using namespace gpujoin;  // NOLINT(build/namespaces)

int main() {
  const uint64_t kScale = 1 << 18;  // Paper-scale 2^27, scaled down.
  vgpu::Device device(
      vgpu::DeviceConfig::ScaledToWorkload(vgpu::DeviceConfig::A100(), kScale));

  workload::TpcGenOptions gen;
  gen.scale_tuples = kScale;

  for (const workload::TpcJoinSpec& spec : workload::TpcJoinSpecs()) {
    auto w = workload::GenerateTpcJoin(spec, gen);
    GPUJOIN_CHECK_OK(w.status());
    auto up = harness::Upload(device, *w);
    GPUJOIN_CHECK_OK(up.status());

    join::JoinFeatures f = join::JoinFeatures::FromTables(up->r, up->s);
    f.match_ratio = 1.0;  // Table 6: |T| == |S| for all five joins.
    const join::JoinAlgo choice = ChooseJoinAlgo(f);

    std::printf("\n%s — %s  (|R|=%llu, |S|=%llu)\n", spec.id.c_str(),
                spec.source.c_str(),
                static_cast<unsigned long long>(up->r.num_rows()),
                static_cast<unsigned long long>(up->s.num_rows()));
    std::printf("  planner: %s\n", ExplainChoice(f).c_str());

    join::JoinOptions opts;
    opts.pk_fk = spec.pk_fk;
    double best = 1e30, chosen = 0;
    const char* best_name = "?";
    for (join::JoinAlgo algo : join::kAllJoinAlgos) {
      device.FlushL2();
      auto res = RunJoin(device, algo, up->r, up->s, opts);
      GPUJOIN_CHECK_OK(res.status());
      const double t = res->phases.total_s();
      std::printf("  %-7s %9.3f ms  %8.0f Mtuples/s%s\n",
                  join::JoinAlgoName(algo), t * 1e3,
                  res->throughput_tuples_per_sec / 1e6,
                  algo == choice ? "   <- planner's choice" : "");
      if (t < best) {
        best = t;
        best_name = join::JoinAlgoName(algo);
      }
      if (algo == choice) chosen = t;
    }
    std::printf("  planner regret: %.1f%% vs best (%s)\n",
                100.0 * (chosen - best) / best, best_name);
  }
  return 0;
}
