// Composing the library's operators through the plan layer — the SQL-shaped
// query
//
//   SELECT region, SUM(amount)
//   FROM stores JOIN sales ON stores.store_key = sales.store_key
//   WHERE sales.amount >= 25
//   GROUP BY region
//   ORDER BY region;
//
// with the join implementation chosen by the Figure 18 planner and the
// group-by algorithm chosen from a HyperLogLog cardinality estimate.
//
//   $ ./example_query_pipeline

#include <cstdio>
#include <random>

#include "ops/plan.h"
#include "storage/table.h"
#include "vgpu/device.h"

using namespace gpujoin;  // NOLINT(build/namespaces)

int main() {
  const uint64_t kSales = 1 << 17;
  vgpu::Device device(
      vgpu::DeviceConfig::ScaledToWorkload(vgpu::DeviceConfig::A100(), kSales));

  // stores(store_key, region), sales(store_key, amount).
  HostTable stores{"stores", {{"store_key", DataType::kInt32, {}},
                              {"region", DataType::kInt32, {}}}};
  HostTable sales{"sales", {{"store_key", DataType::kInt32, {}},
                            {"amount", DataType::kInt32, {}}}};
  std::mt19937_64 rng(5);
  const uint64_t kStores = 2048;
  for (uint64_t i = 0; i < kStores; ++i) {
    stores.columns[0].values.push_back(static_cast<int64_t>(i));
    stores.columns[1].values.push_back(static_cast<int64_t>(rng() % 12));
  }
  for (uint64_t i = 0; i < kSales; ++i) {
    sales.columns[0].values.push_back(static_cast<int64_t>(rng() % kStores));
    sales.columns[1].values.push_back(static_cast<int64_t>(rng() % 200));
  }
  auto stores_t = Table::FromHost(device, stores);
  auto sales_t = Table::FromHost(device, sales);
  GPUJOIN_CHECK_OK(stores_t.status());
  GPUJOIN_CHECK_OK(sales_t.status());

  groupby::GroupBySpec agg;
  agg.aggregates = {{1, groupby::AggOp::kSum}};
  auto plan = ops::OrderByNode(
      ops::GroupByNode(
          ops::ProjectNode(
              ops::JoinNode(ops::ScanNode(&*stores_t),
                            ops::FilterNode(ops::ScanNode(&*sales_t),
                                            {{1, ops::CmpOp::kGe, 25}})),
              {1, 2}),  // (region, amount).
          agg),
      0);

  std::printf("plan:\n%s\n", plan->Describe().c_str());
  const double t0 = device.ElapsedSeconds();
  auto result = plan->Execute(device);
  GPUJOIN_CHECK_OK(result.status());
  std::printf("executed in %.3f ms simulated on %s\n\n",
              (device.ElapsedSeconds() - t0) * 1e3,
              device.config().name.c_str());

  const HostTable out = result->ToHost();
  std::printf("%8s %14s\n", "region", "revenue");
  for (uint64_t i = 0; i < out.num_rows(); ++i) {
    std::printf("%8lld %14lld\n",
                static_cast<long long>(out.columns[0].values[i]),
                static_cast<long long>(out.columns[1].values[i]));
  }

  std::printf("\nper-kernel profile (top lines):\n%s",
              device.profiler().Report().substr(0, 1200).c_str());
  std::printf("\nmemory: %s\n", device.memory_stats().ToString().c_str());
  return 0;
}
