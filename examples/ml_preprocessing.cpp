// The paper's motivating scenario (§1): assembling an ML feature table on
// the GPU by joining a fact table against several dimension tables with a
// 100% match ratio — the setting where materialization dominates and the
// GFTR pattern shines. This example runs the same star-schema pipeline with
// GFUR (PHJ-UM) and GFTR (PHJ-OM) materialization and reports the speedup.
//
//   $ ./example_ml_preprocessing

#include <cstdio>

#include "join/pipeline.h"
#include "storage/table.h"
#include "vgpu/device.h"
#include "workload/generator.h"

using namespace gpujoin;  // NOLINT(build/namespaces)

int main() {
  const uint64_t kFactRows = 1 << 18;
  vgpu::Device device(vgpu::DeviceConfig::ScaledToWorkload(
      vgpu::DeviceConfig::A100(), kFactRows));

  // A 4-dimension star schema: e.g. clicks joined with user, item, seller,
  // and campaign tables to assemble training features.
  workload::StarSchemaSpec spec;
  spec.fact_rows = kFactRows;
  spec.num_dims = 4;
  spec.dim_rows = kFactRows / 4;
  auto schema = workload::GenerateStarSchema(spec);
  GPUJOIN_CHECK_OK(schema.status());

  auto fact = Table::FromHost(device, schema->fact);
  GPUJOIN_CHECK_OK(fact.status());
  std::vector<Table> dims;
  for (const HostTable& d : schema->dims) {
    auto t = Table::FromHost(device, d);
    GPUJOIN_CHECK_OK(t.status());
    dims.push_back(std::move(*t));
  }

  std::printf("feature assembly: %llu fact rows x %d dimension joins "
              "(100%% match — nothing is filtered before training)\n\n",
              static_cast<unsigned long long>(spec.fact_rows), spec.num_dims);

  double gfur_s = 0, gftr_s = 0;
  for (join::JoinAlgo algo : {join::JoinAlgo::kPhjUm, join::JoinAlgo::kPhjOm}) {
    device.FlushL2();
    auto res = join::RunJoinPipeline(device, algo, *fact, dims);
    GPUJOIN_CHECK_OK(res.status());
    std::printf("%s (%s): %.3f ms simulated, %.0f Mtuples/s, %llu feature rows, "
                "%d feature columns\n",
                join::JoinAlgoName(algo),
                algo == join::JoinAlgo::kPhjUm ? "GFUR" : "GFTR",
                res->total_seconds * 1e3,
                res->throughput_tuples_per_sec / 1e6,
                static_cast<unsigned long long>(res->final_rows),
                res->output.num_columns());
    if (algo == join::JoinAlgo::kPhjUm) gfur_s = res->total_seconds;
    if (algo == join::JoinAlgo::kPhjOm) gftr_s = res->total_seconds;
  }
  std::printf("\nGFTR speedup for the feature pipeline: %.2fx\n",
              gfur_s / gftr_s);
  std::printf("(the joined table would now feed the GPU training job "
              "without leaving device memory)\n");
  return 0;
}
