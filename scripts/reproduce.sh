#!/usr/bin/env bash
# Builds the library, runs the full test suite, and regenerates every paper
# table/figure reproduction. Outputs land in test_output.txt and
# bench_output.txt at the repository root.
#
# Usage: scripts/reproduce.sh [scale_log2]
#   scale_log2: log2 of the canonical relation size (default 20; the paper
#               uses 27 — see DESIGN.md on device scaling).
#
#        scripts/reproduce.sh --sanitize
#   Robustness mode: rebuilds under ASan+UBSan (GPUJOIN_SANITIZE=ON) in
#   build-asan/, runs the full test suite (which includes the exhaustive
#   fault-injection failure sweeps), then smoke-checks the GPUJOIN_FAULT_*
#   harness knobs: a bench under an injected allocation fault must exit
#   non-zero with a clean ResourceExhausted diagnostic — never crash, hang,
#   or trip the device's leak-abort.
#
#        scripts/reproduce.sh --sanitize tsan
#   ThreadSanitizer mode: rebuilds under TSan (GPUJOIN_TSAN=ON) in
#   build-tsan/ and runs the full test suite with GPUJOIN_SIM_THREADS=8 so
#   the host-parallel simulation path (DESIGN.md §12) is race-checked:
#   ParallelBlocks workers only ever touch their private shards and
#   disjoint output ranges, so TSan must stay silent. Finishes with a
#   threaded bench smoke run.
#
#        scripts/reproduce.sh --json [outdir]
#   Metrics-export mode: runs one bench at smoke scale with
#   GPUJOIN_JSON_DIR set, then validates the resulting BENCH_smoke.json
#   (metrics schema) and TRACE_smoke.json (Chrome trace events) with
#   tools/bench_json_check, which fails on missing or non-finite fields.
#
#        scripts/reproduce.sh --crossover
#   Backend-routing mode: runs bench_hyb1_crossover at smoke scale with
#   GPUJOIN_HYB1_ASSERT=1, so the vectorized CPU backend must win by >=2x
#   at the smallest scale, the simulated GPU must win at the largest, and
#   the cost-based router must land within 5% of the best backend at every
#   scale. The exported BENCH_hyb1_crossover.json (including the per-row
#   "backend" field) is then schema-checked with tools/bench_json_check.
#
#        scripts/reproduce.sh --scheduler [rounds]
#   Multi-tenant scheduler mode: runs a short adversarial tenant soak
#   (tools/lifecycle_soak, default 4 rounds) — one hog tenant versus
#   interactive tenants with salted arrivals, cancels, and deadlines under
#   a shrinking budget — twice with the same seed, asserting the two runs
#   print identical per-round latency reports (scheduler determinism), and
#   once more with GPUJOIN_SIM_THREADS=8 to prove the thread fan-out does
#   not change a single scheduling decision.
#
#        scripts/reproduce.sh --lifecycle [rounds]
#   Query-lifecycle mode: runs the concurrent-admission soak
#   (tools/lifecycle_soak, default 8 rounds) — mixed join/group-by
#   submissions under a shrinking admission budget with deadlines and
#   kernel-boundary cancellations salted in; every round must return the
#   reserved budget to zero with no device leaks — then smoke-checks the
#   GPUJOIN_DEADLINE_CYCLES / GPUJOIN_CANCEL_AT_KERNEL harness knobs: a
#   bench under each knob must exit non-zero with a clean DeadlineExceeded /
#   Cancelled diagnostic and no leak abort.
#
#        scripts/reproduce.sh --chaos [rounds]
#   Transient-fault mode (DESIGN.md §16): runs the chaos soak
#   (tools/lifecycle_soak --chaos, default 6 rounds) across three seeds.
#   Every round replays a fixed query mix three times — a fault-free
#   reference, a chaos pass under seeded kernel faults or an
#   always-tripping watchdog, and a replay — asserting structured terminal
#   outcomes, rows bit-identical to the reference for every completed
#   query, breaker-trip/hedge/retry double-entry against the metrics
#   registry, and bit-identical replays. Then proves the chaos METRICS
#   artifacts are byte-identical at 1 and 8 simulation threads, and
#   smoke-checks the kernel-fault harness knobs: a bench under
#   GPUJOIN_FAULT_KERNEL_NTH / GPUJOIN_WATCHDOG_CYCLES must exit non-zero
#   with a clean kernel_fault / watchdog_timeout diagnostic and no leaks.
#
#        scripts/reproduce.sh --metrics [outdir]
#   Metrics-registry mode (DESIGN.md §15): runs the canonical 4-round
#   scheduler soak with metrics export and checks the whole observability
#   pipeline — METRICS_scheduler_soak.json passes the schema AND the
#   counter reconciliation cross-checks (admissions == terminal outcomes,
#   router decisions == routed ops), the Prometheus exposition carries its
#   TYPE lines, and a rerun at GPUJOIN_SIM_THREADS=8 produces byte-identical
#   artifacts. Then validates every committed bench/results/*.json,
#   smoke-tests the GPUJOIN_EXPLAIN "[metrics]" summary block, and finishes
#   with the bench-regression gate: tools/bench_compare --strict diffs the
#   freshly generated BENCH_*.json against the committed baselines and
#   must return a green verdict (exit 3 on regression; without --strict
#   the tool is report-only).

set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--sanitize" && "${2:-}" == "tsan" ]]; then
  cmake -B build-tsan -G Ninja -DGPUJOIN_TSAN=ON
  cmake --build build-tsan

  echo "===== full suite under TSan with GPUJOIN_SIM_THREADS=8 ====="
  # Every ParallelBlocks-ported kernel fans out across 8 workers here;
  # TSAN_OPTIONS makes any report fail the run instead of just logging.
  GPUJOIN_SIM_THREADS=8 TSAN_OPTIONS="halt_on_error=1" \
    ctest --test-dir build-tsan --output-on-failure 2>&1 | tee test_output_tsan.txt

  echo "===== threaded bench smoke under TSan ====="
  GPUJOIN_SCALE=16 GPUJOIN_SIM_THREADS=8 GPUJOIN_JSON_DIR="" \
    TSAN_OPTIONS="halt_on_error=1" build-tsan/bench/bench_fig07_gather

  echo "===== threaded cpux backend smoke under TSan ====="
  # The cpux worker pool (count-then-fill into disjoint ranges) must be as
  # race-free as the simulator's ParallelBlocks path. No crossover
  # assertions here: TSan skews the wall clock both backends are timed on.
  GPUJOIN_SCALE=14 GPUJOIN_SIM_THREADS=8 GPUJOIN_JSON_DIR="" \
    TSAN_OPTIONS="halt_on_error=1" build-tsan/bench/bench_hyb1_crossover
  echo "done: see test_output_tsan.txt"
  exit 0
fi

if [[ "${1:-}" == "--sanitize" ]]; then
  cmake -B build-asan -G Ninja -DGPUJOIN_SANITIZE=ON
  cmake --build build-asan

  ctest --test-dir build-asan 2>&1 | tee test_output_asan.txt

  echo "===== fault-injection smoke (GPUJOIN_FAULT_NTH) ====="
  # Inject a failure mid-query; the bench must die on the structured
  # ResourceExhausted status, not on a sanitizer report or a leak abort.
  set +e
  out="$(GPUJOIN_SCALE=14 GPUJOIN_FAULT_NTH=12 build-asan/bench/bench_fig07_gather 2>&1)"
  rc=$?
  set -e
  echo "$out" | tail -n 3
  if [[ "$rc" -eq 0 ]]; then
    echo "FAIL: bench succeeded despite injected allocation fault"
    exit 1
  fi
  if ! grep -q "ResourceExhausted" <<<"$out"; then
    echo "FAIL: bench did not fail with a clean ResourceExhausted status"
    exit 1
  fi
  if grep -q "leaked simulated memory" <<<"$out"; then
    echo "FAIL: injected fault leaked device memory"
    exit 1
  fi
  echo "ok: injected fault produced a clean ResourceExhausted failure"
  echo "done: see test_output_asan.txt"
  exit 0
fi

if [[ "${1:-}" == "--json" ]]; then
  cmake -B build -G Ninja
  cmake --build build

  outdir="${2:-bench_json}"
  rm -rf "$outdir"
  echo "===== JSON export smoke (GPUJOIN_JSON_DIR) ====="
  GPUJOIN_SCALE=14 GPUJOIN_BENCH_NAME=smoke GPUJOIN_JSON_DIR="$outdir" \
    build/bench/bench_fig10_wide
  build/tools/bench_json_check "$outdir"/BENCH_smoke.json "$outdir"/TRACE_smoke.json
  echo "ok: schema-valid artifacts in $outdir/ (load the trace at ui.perfetto.dev)"
  exit 0
fi

if [[ "${1:-}" == "--crossover" ]]; then
  if [[ ! -f build/CMakeCache.txt ]]; then
    cmake -B build -G Ninja
  fi
  cmake --build build

  outdir="${2:-bench_json_crossover}"
  rm -rf "$outdir"
  echo "===== CPU/GPU crossover + router placement (GPUJOIN_HYB1_ASSERT) ====="
  GPUJOIN_SCALE=16 GPUJOIN_HYB1_ASSERT=1 GPUJOIN_JSON_DIR="$outdir" \
    build/bench/bench_hyb1_crossover
  build/tools/bench_json_check "$outdir"/BENCH_hyb1_crossover.json
  echo "ok: crossover assertions held and BENCH_hyb1_crossover.json is schema-valid"
  exit 0
fi

if [[ "${1:-}" == "--scheduler" ]]; then
  # Reuse an already-configured build tree (whatever its generator);
  # configure fresh with Ninja otherwise.
  if [[ ! -f build/CMakeCache.txt ]]; then
    cmake -B build -G Ninja
  fi
  cmake --build build

  rounds="${2:-4}"
  seed="${GPUJOIN_SOAK_SEED:-1}"
  # GPUJOIN_JSON_DIR="" keeps determinism sweeps at arbitrary rounds/seeds
  # from overwriting the canonical committed baselines in bench/results
  # (those are regenerated by --metrics, which pins 4 rounds / seed 1).
  echo "===== adversarial tenant soak ($rounds rounds, seed $seed) ====="
  GPUJOIN_JSON_DIR="" build/tools/lifecycle_soak "$rounds" --seed "$seed" | tee soak_a.txt

  echo "===== replay determinism (same seed, fresh run) ====="
  GPUJOIN_JSON_DIR="" build/tools/lifecycle_soak "$rounds" --seed "$seed" > soak_b.txt
  if ! diff soak_a.txt soak_b.txt; then
    echo "FAIL: two soak runs with the same seed diverged"
    exit 1
  fi
  echo "ok: identical per-round latency reports across runs"

  echo "===== thread-count invariance (GPUJOIN_SIM_THREADS=8) ====="
  GPUJOIN_JSON_DIR="" GPUJOIN_SIM_THREADS=8 build/tools/lifecycle_soak "$rounds" --seed "$seed" > soak_t8.txt
  if ! diff soak_a.txt soak_t8.txt; then
    echo "FAIL: scheduling decisions changed under GPUJOIN_SIM_THREADS=8"
    exit 1
  fi
  echo "ok: bit-identical scheduling at 1 and 8 simulation threads"
  rm -f soak_a.txt soak_b.txt soak_t8.txt
  echo "done: scheduler soak + determinism checks passed"
  exit 0
fi

if [[ "${1:-}" == "--lifecycle" ]]; then
  cmake -B build -G Ninja
  cmake --build build

  rounds="${2:-8}"
  echo "===== concurrent-admission soak ($rounds rounds) ====="
  GPUJOIN_JSON_DIR="" build/tools/lifecycle_soak "$rounds"

  check_knob() {
    local label="$1" expect="$2"; shift 2
    echo "===== $label ====="
    set +e
    local out rc
    # fig08 runs full joins through RunJoin, so every lifecycle seam
    # (kernel boundaries, phase checks, allocations) is on the path.
    out="$(env "$@" GPUJOIN_SCALE=14 build/bench/bench_fig08_narrow 2>&1)"
    rc=$?
    set -e
    echo "$out" | tail -n 2
    if [[ "$rc" -eq 0 ]]; then
      echo "FAIL: bench succeeded despite $label"
      exit 1
    fi
    if ! grep -q "$expect" <<<"$out"; then
      echo "FAIL: bench did not fail with a clean $expect status"
      exit 1
    fi
    if grep -q "leaked simulated memory" <<<"$out"; then
      echo "FAIL: $label leaked device memory"
      exit 1
    fi
    echo "ok: $label produced a clean $expect failure"
  }

  check_knob "deadline smoke (GPUJOIN_DEADLINE_CYCLES)" "DeadlineExceeded" \
    GPUJOIN_DEADLINE_CYCLES=50000
  check_knob "cancellation smoke (GPUJOIN_CANCEL_AT_KERNEL)" "Cancelled" \
    GPUJOIN_CANCEL_AT_KERNEL=3
  echo "done: lifecycle soak + harness knob smoke passed"
  exit 0
fi

if [[ "${1:-}" == "--chaos" ]]; then
  if [[ ! -f build/CMakeCache.txt ]]; then
    cmake -B build -G Ninja
  fi
  cmake --build build

  rounds="${2:-6}"
  echo "===== transient-fault chaos soak ($rounds rounds x 3 seeds) ====="
  # Each seeded soak injects probabilistic kernel faults and watchdog
  # timeouts, then asserts: every query reaches a structured terminal
  # outcome, retried/hedged queries return rows bit-identical to a
  # fault-free reference pass, breaker trips reconcile with the metrics
  # registry's double entry, and a replay of every chaos round is
  # bit-identical.
  for seed in 1 2 3; do
    GPUJOIN_JSON_DIR="" build/tools/lifecycle_soak --chaos "$rounds" --seed "$seed"
  done

  echo "===== chaos replay stability at GPUJOIN_SIM_THREADS=8 ====="
  outdir="bench_json_chaos"
  rm -rf "$outdir" "$outdir.t8"
  GPUJOIN_JSON_DIR="$outdir" GPUJOIN_SIM_THREADS=1 \
    build/tools/lifecycle_soak --chaos "$rounds" --seed 1 > /dev/null
  GPUJOIN_JSON_DIR="$outdir.t8" GPUJOIN_SIM_THREADS=8 \
    build/tools/lifecycle_soak --chaos "$rounds" --seed 1 > /dev/null
  for f in METRICS_chaos_soak.json METRICS_chaos_soak.prom; do
    if ! diff "$outdir/$f" "$outdir.t8/$f"; then
      echo "FAIL: $f differs between 1 and 8 simulation threads"
      exit 1
    fi
  done
  rm -rf "$outdir.t8"
  echo "ok: byte-identical chaos metrics at 1 and 8 simulation threads"

  check_fault_knob() {
    local label="$1" expect="$2"; shift 2
    echo "===== $label ====="
    set +e
    local out rc
    out="$(env "$@" GPUJOIN_SCALE=14 build/bench/bench_fig08_narrow 2>&1)"
    rc=$?
    set -e
    echo "$out" | tail -n 2
    if [[ "$rc" -eq 0 ]]; then
      echo "FAIL: bench succeeded despite $label"
      exit 1
    fi
    if ! grep -q "$expect" <<<"$out"; then
      echo "FAIL: bench did not fail with a clean $expect diagnostic"
      exit 1
    fi
    if grep -q "leaked simulated memory" <<<"$out"; then
      echo "FAIL: $label leaked device memory"
      exit 1
    fi
    echo "ok: $label produced a clean $expect failure"
  }

  check_fault_knob "kernel-fault smoke (GPUJOIN_FAULT_KERNEL_NTH)" \
    "kernel_fault" GPUJOIN_FAULT_KERNEL_NTH=2
  check_fault_knob "watchdog smoke (GPUJOIN_WATCHDOG_CYCLES)" \
    "watchdog_timeout" GPUJOIN_WATCHDOG_CYCLES=1
  echo "done: chaos soak + kernel-fault knob smoke passed"
  exit 0
fi

if [[ "${1:-}" == "--metrics" ]]; then
  if [[ ! -f build/CMakeCache.txt ]]; then
    cmake -B build -G Ninja
  fi
  cmake --build build

  outdir="${2:-bench_json_metrics}"
  rm -rf "$outdir" "$outdir.t8"

  echo "===== scheduler soak with metrics export (4 rounds, seed 1) ====="
  GPUJOIN_JSON_DIR="$outdir" build/tools/lifecycle_soak 4 --seed 1
  build/tools/bench_json_check --reconcile \
    "$outdir"/BENCH_scheduler_soak.json "$outdir"/METRICS_scheduler_soak.json
  echo "ok: soak metrics are schema-valid and reconcile"

  echo "===== Prometheus exposition sanity ====="
  grep -q '^# TYPE service_admissions_total counter' "$outdir"/METRICS_scheduler_soak.prom
  grep -q '^# TYPE service_wait_cycles histogram' "$outdir"/METRICS_scheduler_soak.prom
  grep -q '^# TYPE router_decisions_total counter' "$outdir"/METRICS_scheduler_soak.prom
  echo "ok: TYPE lines present in METRICS_scheduler_soak.prom"

  echo "===== replay stability at GPUJOIN_SIM_THREADS=8 ====="
  GPUJOIN_JSON_DIR="$outdir.t8" GPUJOIN_SIM_THREADS=8 \
    build/tools/lifecycle_soak 4 --seed 1 > /dev/null
  for f in BENCH_scheduler_soak.json METRICS_scheduler_soak.json \
           METRICS_scheduler_soak.prom; do
    if ! diff "$outdir/$f" "$outdir.t8/$f"; then
      echo "FAIL: $f differs between 1 and 8 simulation threads"
      exit 1
    fi
  done
  echo "ok: byte-identical metrics artifacts at 1 and 8 simulation threads"

  echo "===== committed artifact hygiene (bench/results/*.json) ====="
  build/tools/bench_json_check --reconcile bench/results/*.json

  echo "===== EXPLAIN metrics summary smoke ====="
  out="$(GPUJOIN_SCALE=16 GPUJOIN_EXPLAIN=1 GPUJOIN_JSON_DIR="$outdir" \
    build/bench/bench_fig08_narrow)"
  if ! grep -q '^\[metrics\]' <<<"$out"; then
    echo "FAIL: GPUJOIN_EXPLAIN output is missing the [metrics] summary"
    exit 1
  fi
  echo "ok: EXPLAIN output carries the [metrics] summary block"

  echo "===== bench-regression gate (tools/bench_compare) ====="
  # fig08 and the crossover sweep regenerate at the committed baselines'
  # scale, so the gate compares real rows, not just the soak's.
  GPUJOIN_SCALE=16 GPUJOIN_JSON_DIR="$outdir" build/bench/bench_hyb1_crossover > /dev/null
  build/tools/bench_compare --strict --fresh "$outdir" --baseline bench/results \
    --out "$outdir"/bench_compare_verdict.json
  rm -rf "$outdir.t8"
  echo "done: metrics pipeline green (artifacts + verdict in $outdir/)"
  exit 0
fi

SCALE="${1:-20}"

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

GPUJOIN_SCALE="$SCALE" bash -c '
  for b in build/bench/bench_*; do
    echo "===== $(basename "$b") ====="
    "$b"
  done
' 2>&1 | tee bench_output.txt

echo "done: see test_output.txt, bench_output.txt, EXPERIMENTS.md"
