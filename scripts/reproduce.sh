#!/usr/bin/env bash
# Builds the library, runs the full test suite, and regenerates every paper
# table/figure reproduction. Outputs land in test_output.txt and
# bench_output.txt at the repository root.
#
# Usage: scripts/reproduce.sh [scale_log2]
#   scale_log2: log2 of the canonical relation size (default 20; the paper
#               uses 27 — see DESIGN.md on device scaling).

set -euo pipefail
cd "$(dirname "$0")/.."

SCALE="${1:-20}"

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

GPUJOIN_SCALE="$SCALE" bash -c '
  for b in build/bench/bench_*; do
    echo "===== $(basename "$b") ====="
    "$b"
  done
' 2>&1 | tee bench_output.txt

echo "done: see test_output.txt, bench_output.txt, EXPERIMENTS.md"
