#include "cpubase/cpu_radix_join.h"

#include <chrono>
#include <cstring>
#include <vector>

#include "common/bit_util.h"
#include "prim/hash.h"

namespace gpujoin::cpubase {

namespace {

struct KeyId {
  int64_t key;
  uint32_t id;
};

/// Two-pass stable LSD radix partition of (key, id) pairs by the low
/// 2 * bits_per_pass key bits. Returns partition offsets (fanout + 1).
std::vector<uint64_t> Partition(std::vector<KeyId>* data, int bits_per_pass) {
  const int total_bits = bits_per_pass * 2;
  std::vector<KeyId> tmp(data->size());
  std::vector<KeyId>* src = data;
  std::vector<KeyId>* dst = &tmp;
  for (int pass = 0; pass < 2; ++pass) {
    const int lo = pass * bits_per_pass;
    const uint32_t fanout = 1u << bits_per_pass;
    std::vector<uint64_t> hist(fanout + 1, 0);
    for (const KeyId& e : *src) {
      ++hist[bit_util::RadixDigit(e.key, lo, bits_per_pass) + 1];
    }
    for (uint32_t p = 0; p < fanout; ++p) hist[p + 1] += hist[p];
    for (const KeyId& e : *src) {
      (*dst)[hist[bit_util::RadixDigit(e.key, lo, bits_per_pass)]++] = e;
    }
    std::swap(src, dst);
  }
  if (src != data) *data = std::move(tmp);

  const uint32_t fanout = 1u << total_bits;
  std::vector<uint64_t> offsets(fanout + 1, 0);
  for (const KeyId& e : *data) {
    ++offsets[bit_util::RadixDigit(e.key, 0, total_bits) + 1];
  }
  for (uint32_t p = 0; p < fanout; ++p) offsets[p + 1] += offsets[p];
  return offsets;
}

}  // namespace

Result<CpuJoinResult> CpuRadixJoin(const HostTable& r, const HostTable& s,
                                   const CpuJoinOptions& options,
                                   HostTable* output) {
  if (r.columns.empty() || s.columns.empty()) {
    return Status::InvalidArgument("CpuRadixJoin: missing key columns");
  }
  if (options.bits_per_pass < 1 || options.bits_per_pass > 12) {
    return Status::InvalidArgument("CpuRadixJoin: bits_per_pass out of range");
  }
  const uint64_t nr = r.num_rows();
  const uint64_t ns = s.num_rows();
  const auto t_begin = std::chrono::steady_clock::now();

  // --- Transform: pair keys with physical row ids and radix-partition.
  std::vector<KeyId> rp(nr), sp(ns);
  for (uint64_t i = 0; i < nr; ++i) {
    rp[i] = {r.columns[0].values[i], static_cast<uint32_t>(i)};
  }
  for (uint64_t i = 0; i < ns; ++i) {
    sp[i] = {s.columns[0].values[i], static_cast<uint32_t>(i)};
  }
  const std::vector<uint64_t> r_off = Partition(&rp, options.bits_per_pass);
  const std::vector<uint64_t> s_off = Partition(&sp, options.bits_per_pass);

  // --- Build/probe each co-partition with a small open-addressing table.
  std::vector<uint32_t> out_r_ids, out_s_ids;
  out_r_ids.reserve(ns);
  out_s_ids.reserve(ns);
  uint64_t max_part = 0;
  const size_t parts = r_off.size() - 1;
  for (size_t p = 0; p < parts; ++p) {
    max_part = std::max(max_part, r_off[p + 1] - r_off[p]);
  }
  const uint64_t table_size =
      bit_util::NextPowerOfTwo(std::max<uint64_t>(max_part * 2, 16));
  const uint64_t mask = table_size - 1;
  std::vector<int64_t> slot_keys(table_size, -1);
  std::vector<uint32_t> slot_ids(table_size, 0);
  for (size_t p = 0; p < parts; ++p) {
    const uint64_t rb = r_off[p], re = r_off[p + 1];
    const uint64_t sb = s_off[p], se = s_off[p + 1];
    if (rb == re || sb == se) continue;
    std::fill(slot_keys.begin(), slot_keys.end(), -1);
    for (uint64_t i = rb; i < re; ++i) {
      uint64_t h = prim::HashToSlot(rp[i].key, mask);
      while (slot_keys[h] != -1) h = (h + 1) & mask;
      slot_keys[h] = rp[i].key;
      slot_ids[h] = rp[i].id;
    }
    for (uint64_t j = sb; j < se; ++j) {
      uint64_t h = prim::HashToSlot(sp[j].key, mask);
      while (slot_keys[h] != -1) {
        if (slot_keys[h] == sp[j].key) {
          out_r_ids.push_back(slot_ids[h]);
          out_s_ids.push_back(sp[j].id);
        }
        h = (h + 1) & mask;
      }
    }
  }

  // --- Materialize every output column through the row ids.
  const uint64_t n_out = out_s_ids.size();
  HostTable result;
  result.name = "cpu_join_result";
  {
    HostColumn key_col;
    key_col.name = r.columns[0].name;
    key_col.type = r.columns[0].type;
    key_col.values.resize(n_out);
    for (uint64_t i = 0; i < n_out; ++i) {
      key_col.values[i] = s.columns[0].values[out_s_ids[i]];
    }
    result.columns.push_back(std::move(key_col));
  }
  for (size_t c = 1; c < r.columns.size(); ++c) {
    HostColumn col;
    col.name = r.columns[c].name;
    col.type = r.columns[c].type;
    col.values.resize(n_out);
    for (uint64_t i = 0; i < n_out; ++i) {
      col.values[i] = r.columns[c].values[out_r_ids[i]];
    }
    result.columns.push_back(std::move(col));
  }
  for (size_t c = 1; c < s.columns.size(); ++c) {
    HostColumn col;
    col.name = s.columns[c].name;
    col.type = s.columns[c].type;
    col.values.resize(n_out);
    for (uint64_t i = 0; i < n_out; ++i) {
      col.values[i] = s.columns[c].values[out_s_ids[i]];
    }
    result.columns.push_back(std::move(col));
  }

  const auto t_end = std::chrono::steady_clock::now();
  CpuJoinResult res;
  res.output_rows = n_out;
  res.seconds = std::chrono::duration<double>(t_end - t_begin).count();
  res.throughput_tuples_per_sec =
      res.seconds > 0 ? static_cast<double>(nr + ns) / res.seconds : 0;
  if (options.keep_output && output != nullptr) *output = std::move(result);
  return res;
}

}  // namespace gpujoin::cpubase
