// CPU baseline: a cache-conscious partitioned radix hash join in the style
// of Balkesen et al. [9], executed natively and timed with the wall clock.
// The paper's Figure 8 compares GPU implementations against this baseline
// (reporting >20x GPU speedups); we reproduce the comparison with the
// simulated-GPU time on one side and real single-core CPU time on the other
// (the absolute ratio is hardware-dependent; the ordering is the claim).

#ifndef GPUJOIN_CPUBASE_CPU_RADIX_JOIN_H_
#define GPUJOIN_CPUBASE_CPU_RADIX_JOIN_H_

#include <cstdint>

#include "common/status.h"
#include "storage/table.h"

namespace gpujoin::cpubase {

struct CpuJoinResult {
  uint64_t output_rows = 0;
  /// Wall-clock seconds for the end-to-end join (partition + build/probe +
  /// materialization of all payload columns).
  double seconds = 0;
  double throughput_tuples_per_sec = 0;
};

struct CpuJoinOptions {
  /// Radix bits per pass (two passes). Partitions should fit L2.
  int bits_per_pass = 7;
  /// Materialize payload columns into `output` (always measured; storing the
  /// result is optional).
  bool keep_output = false;
};

/// Inner equi-join of host tables r and s on column 0.
Result<CpuJoinResult> CpuRadixJoin(const HostTable& r, const HostTable& s,
                                   const CpuJoinOptions& options = {},
                                   HostTable* output = nullptr);

}  // namespace gpujoin::cpubase

#endif  // GPUJOIN_CPUBASE_CPU_RADIX_JOIN_H_
