// Small bit-manipulation helpers used by the radix primitives and the
// memory model.

#ifndef GPUJOIN_COMMON_BIT_UTIL_H_
#define GPUJOIN_COMMON_BIT_UTIL_H_

#include <cstdint>
#include <type_traits>

namespace gpujoin::bit_util {

/// True iff v is a power of two (0 is not).
constexpr bool IsPowerOfTwo(uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

/// Smallest power of two >= v (v must be >= 1; result saturates at 2^63).
constexpr uint64_t NextPowerOfTwo(uint64_t v) {
  if (v <= 1) return 1;
  --v;
  v |= v >> 1;
  v |= v >> 2;
  v |= v >> 4;
  v |= v >> 8;
  v |= v >> 16;
  v |= v >> 32;
  return v + 1;
}

/// floor(log2(v)) for v >= 1.
constexpr int Log2Floor(uint64_t v) {
  int r = 0;
  while (v >>= 1) ++r;
  return r;
}

/// ceil(log2(v)) for v >= 1. Number of bits needed to represent values in
/// [0, v).
constexpr int Log2Ceil(uint64_t v) {
  if (v <= 1) return 0;
  return Log2Floor(v - 1) + 1;
}

/// ceil(a / b) for b > 0.
constexpr uint64_t CeilDiv(uint64_t a, uint64_t b) { return (a + b - 1) / b; }

/// Rounds a up to the next multiple of align (align must be a power of two).
constexpr uint64_t AlignUp(uint64_t a, uint64_t align) {
  return (a + align - 1) & ~(align - 1);
}

/// Extracts the radix digit: bits [lo, lo+width) of key, as an unsigned value.
template <typename K>
constexpr uint32_t RadixDigit(K key, int lo, int width) {
  using U = std::make_unsigned_t<K>;
  const U u = static_cast<U>(key);
  if (width >= 64) return static_cast<uint32_t>(u >> lo);
  const U mask = (U{1} << width) - 1;
  return static_cast<uint32_t>((u >> lo) & mask);
}

}  // namespace gpujoin::bit_util

#endif  // GPUJOIN_COMMON_BIT_UTIL_H_
