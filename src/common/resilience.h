// Degradation log shared by the resilient query-layer wrappers: every time a
// wrapper catches a resource failure and moves down its policy ladder
// (retry, re-plan, out-of-core fallback), it records one step so callers can
// see exactly how a query was salvaged.

#ifndef GPUJOIN_COMMON_RESILIENCE_H_
#define GPUJOIN_COMMON_RESILIENCE_H_

#include <string>
#include <vector>

namespace gpujoin {

/// One rung taken on a degradation ladder.
struct DegradationStep {
  /// Machine-checkable action name, e.g. "retry_more_partition_bits",
  /// "out_of_core_fallback", "algo_fallback".
  std::string action;
  /// Human-readable context: the error that triggered the step and the
  /// parameters chosen for the next attempt.
  std::string detail;
};

/// Renders a degradation log as one line per step (for error messages).
inline std::string FormatDegradation(const std::vector<DegradationStep>& steps) {
  std::string out;
  for (const DegradationStep& s : steps) {
    out += "  - " + s.action + ": " + s.detail + "\n";
  }
  return out;
}

}  // namespace gpujoin

#endif  // GPUJOIN_COMMON_RESILIENCE_H_
