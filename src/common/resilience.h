// Degradation log and retry policy shared by the resilient query-layer
// wrappers: every time a wrapper catches a resource failure and moves down
// its policy ladder (retry, re-plan, out-of-core fallback), it records one
// step so callers can see exactly how a query was salvaged, and consults one
// BackoffPolicy for how long to wait (in simulated cycles) before the next
// attempt.

#ifndef GPUJOIN_COMMON_RESILIENCE_H_
#define GPUJOIN_COMMON_RESILIENCE_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

namespace gpujoin {

/// One rung taken on a degradation ladder.
struct DegradationStep {
  /// Machine-checkable action name, e.g. "retry_more_partition_bits",
  /// "out_of_core_fallback", "algo_fallback".
  std::string action;
  /// Human-readable context: the error that triggered the step and the
  /// parameters chosen for the next attempt.
  std::string detail;
};

/// Renders a degradation log as one line per step (for error messages).
inline std::string FormatDegradation(const std::vector<DegradationStep>& steps) {
  std::string out;
  for (const DegradationStep& s : steps) {
    out += "  - " + s.action + ": " + s.detail + "\n";
  }
  return out;
}

/// Seeded exponential backoff with jitter, measured in SIMULATED cycles so
/// retry schedules are deterministic and bit-identical on replay (no wall
/// clock, no global RNG — same contract as vgpu::FaultInjector). One policy
/// is shared by every retry loop in the query layer: the resilient join /
/// group-by ladders, the pipeline per-join retry hook, and the service-level
/// admission queue.
struct BackoffPolicy {
  /// Attempt cap for loops that have no cap of their own (first attempt
  /// included). Ladders with an explicit budget (ResilienceOptions::
  /// max_attempts) use the smaller of the two.
  int max_attempts = 4;
  /// Delay charged before retry #1 (i.e. attempt 2). 0 disables delays
  /// while keeping the attempt cap.
  double base_cycles = 50'000;
  /// Growth factor per retry (>= 1).
  double multiplier = 2.0;
  /// Delay ceiling before jitter.
  double max_cycles = 5e7;
  /// Jitter fraction in [0, 1): the delay is scaled by a deterministic
  /// draw from [1 - jitter, 1 + jitter) so synchronized retries de-correlate.
  double jitter = 0.25;
  /// Seed for the jitter stream (splitmix64 of seed ^ retry index).
  uint64_t seed = 0x9e3779b97f4a7c15ull;

  /// True while `attempt` (1-based, first try included) is within budget.
  bool AttemptAllowed(int attempt) const { return attempt <= max_attempts; }

  /// Simulated-cycle delay to charge before retry `retry_index` (1-based:
  /// 1 = the delay between attempts 1 and 2). Deterministic per (policy,
  /// retry_index); never negative.
  double DelayCycles(int retry_index) const {
    if (retry_index < 1 || base_cycles <= 0) return 0;
    double delay = base_cycles;
    for (int i = 1; i < retry_index; ++i) {
      delay = std::min(delay * std::max(multiplier, 1.0), max_cycles);
    }
    delay = std::min(delay, max_cycles);
    if (jitter > 0) {
      // splitmix64 of (seed ^ retry_index) -> uniform in [0, 1).
      uint64_t z = seed ^ (static_cast<uint64_t>(retry_index) *
                           0xbf58476d1ce4e5b9ull);
      z += 0x9e3779b97f4a7c15ull;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      z ^= z >> 31;
      const double u =
          static_cast<double>(z >> 11) / static_cast<double>(1ull << 53);
      delay *= 1.0 - jitter + 2.0 * jitter * u;
    }
    return delay;
  }
};

}  // namespace gpujoin

#endif  // GPUJOIN_COMMON_RESILIENCE_H_
