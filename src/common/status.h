// Status / Result error-handling primitives (Arrow/RocksDB idiom).
//
// All fallible APIs in gpujoin return Status or Result<T> instead of throwing
// exceptions. Use the GPUJOIN_RETURN_IF_ERROR / GPUJOIN_ASSIGN_OR_RETURN
// macros to propagate errors up the call stack.

#ifndef GPUJOIN_COMMON_STATUS_H_
#define GPUJOIN_COMMON_STATUS_H_

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <utility>

namespace gpujoin {

/// Broad category of an error. Kept small on purpose; the detail lives in the
/// human-readable message.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfMemory = 2,
  kNotImplemented = 3,
  kInternal = 4,
  kResourceExhausted = 5,
  kCancelled = 6,
  kDeadlineExceeded = 7,
  /// The query was preempted by the scheduler at a cooperative seam; the
  /// interrupted fragment unwound cleanly and will run again. Never a final
  /// query outcome — the scheduler absorbs it and resumes the query.
  kYielded = 8,
  /// Per-tenant admission backpressure: the submission exceeds the tenant's
  /// quota (plus its borrowing allowance) or the tenant's queue is full.
  kTenantOverQuota = 9,
  /// A transient fault: an injected kernel-execution fault, a watchdog
  /// timeout on a runaway kernel, or a backend quarantined by its circuit
  /// breaker. Retryable — unlike OOM (the work itself does not fit) the
  /// same work is expected to succeed on a later attempt or on the other
  /// backend. The message carries the fault kind and attempt count.
  kUnavailable = 10,
};

/// Returns a short stable name for a StatusCode ("OK", "InvalidArgument", ...).
const char* StatusCodeToString(StatusCode code);

/// A success-or-error value. Cheap to copy in the OK case (no allocation).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfMemory(std::string msg) {
    return Status(StatusCode::kOutOfMemory, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Yielded(std::string msg) {
    return Status(StatusCode::kYielded, std::move(msg));
  }
  static Status TenantOverQuota(std::string msg) {
    return Status(StatusCode::kTenantOverQuota, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsCancelled() const { return code_ == StatusCode::kCancelled; }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }
  bool IsYielded() const { return code_ == StatusCode::kYielded; }
  bool IsTenantOverQuota() const {
    return code_ == StatusCode::kTenantOverQuota;
  }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  /// True for the lifecycle-layer terminal statuses: the query was stopped
  /// on purpose (cancel request or deadline), not by a fault. A yield is
  /// deliberately NOT a lifecycle stop — it is transient scheduler state,
  /// never a final outcome.
  bool IsLifecycleStop() const {
    return IsCancelled() || IsDeadlineExceeded();
  }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && msg_ == other.msg_;
  }

 private:
  StatusCode code_;
  std::string msg_;
};

/// Either a value of type T or an error Status. Like arrow::Result.
template <typename T>
class Result {
 public:
  /// Implicit from value: allows `return some_t;` in Result-returning code.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from error status: allows `return Status::Invalid...(...);`.
  Result(Status status) : status_(std::move(status)) {  // NOLINT(runtime/explicit)
    assert(!status_.ok() && "Result constructed from OK status without a value");
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Precondition: ok(). Aborts otherwise (programming error).
  T& value() & {
    CheckOk();
    return *value_;
  }
  const T& value() const& {
    CheckOk();
    return *value_;
  }
  T&& value() && {
    CheckOk();
    return std::move(*value_);
  }

  T ValueOrDie() && {
    CheckOk();
    return std::move(*value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  void CheckOk() const {
    if (!value_.has_value()) {
      std::fprintf(stderr, "FATAL: Result accessed with error: %s\n",
                   status_.ToString().c_str());
      std::abort();
    }
  }

  std::optional<T> value_;
  Status status_ = Status::OK();
};

namespace internal {
inline Status GenericToStatus(Status s) { return s; }
template <typename T>
Status GenericToStatus(const Result<T>& r) {
  return r.status();
}
}  // namespace internal

}  // namespace gpujoin

/// Propagates a non-OK Status (or the status of an error Result) to the caller.
#define GPUJOIN_RETURN_IF_ERROR(expr)                                \
  do {                                                               \
    const ::gpujoin::Status _gpujoin_st =                            \
        ::gpujoin::internal::GenericToStatus((expr));                \
    if (!_gpujoin_st.ok()) return _gpujoin_st;                       \
  } while (0)

#define GPUJOIN_CONCAT_IMPL(x, y) x##y
#define GPUJOIN_CONCAT(x, y) GPUJOIN_CONCAT_IMPL(x, y)

/// GPUJOIN_ASSIGN_OR_RETURN(lhs, rexpr): evaluates rexpr (a Result<T>); on
/// error returns its status, otherwise move-assigns the value into lhs.
#define GPUJOIN_ASSIGN_OR_RETURN_IMPL(result_name, lhs, rexpr) \
  auto result_name = (rexpr);                                  \
  if (!result_name.ok()) return result_name.status();          \
  lhs = std::move(result_name).value();

#define GPUJOIN_ASSIGN_OR_RETURN(lhs, rexpr) \
  GPUJOIN_ASSIGN_OR_RETURN_IMPL(             \
      GPUJOIN_CONCAT(_gpujoin_result_, __LINE__), lhs, rexpr)

/// Aborts the process when `expr` yields a non-OK status. For use in main()
/// functions, tests, and examples where errors are programming errors.
#define GPUJOIN_CHECK_OK(expr)                                       \
  do {                                                               \
    const ::gpujoin::Status _gpujoin_st =                            \
        ::gpujoin::internal::GenericToStatus((expr));                \
    if (!_gpujoin_st.ok()) {                                         \
      std::fprintf(stderr, "FATAL at %s:%d: %s\n", __FILE__,         \
                   __LINE__, _gpujoin_st.ToString().c_str());        \
      std::abort();                                                  \
    }                                                                \
  } while (0)

#endif  // GPUJOIN_COMMON_STATUS_H_
