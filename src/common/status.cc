#include "common/status.h"

namespace gpujoin {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfMemory:
      return "OutOfMemory";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kYielded:
      return "Yielded";
    case StatusCode::kTenantOverQuota:
      return "TenantOverQuota";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  out += ": ";
  out += msg_;
  return out;
}

}  // namespace gpujoin
