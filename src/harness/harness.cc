#include "harness/harness.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "common/bit_util.h"
#include "obs/chrome_trace.h"
#include "obs/explain.h"
#include "obs/metrics.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "vgpu/profiler.h"

namespace gpujoin::harness {

int ScaleLog2() {
  const char* env = std::getenv("GPUJOIN_SCALE");
  if (env != nullptr) {
    const long long v = std::atoll(env);
    if (v >= 10 && v <= 27) return static_cast<int>(v);
    // Absolute tuple counts are accepted too (e.g. 4194304 == 2^22) and
    // rounded down to the nearest power of two.
    if (v >= 1024 && v <= (1ll << 27)) {
      return bit_util::Log2Floor(static_cast<uint64_t>(v));
    }
    std::fprintf(stderr,
                 "GPUJOIN_SCALE=%s is neither a log2 in [10,27] nor a tuple "
                 "count in [2^10,2^27]; using 20\n",
                 env);
  }
  return 20;
}

uint64_t ScaleTuples() { return uint64_t{1} << ScaleLog2(); }

vgpu::DeviceConfig BaseDeviceConfig() {
  const char* env = std::getenv("GPUJOIN_DEVICE");
  if (env != nullptr && std::strcmp(env, "RTX3090") == 0) {
    return vgpu::DeviceConfig::RTX3090();
  }
  return vgpu::DeviceConfig::A100();
}

namespace {

/// Strict integer parse: the whole string must be a base-10 integer.
/// (std::atoll silently reads "12abc" as 12 and "abc" as 0, so a typo'd
/// fault spec used to dissolve into "no fault armed".)
Result<long long> ParseInt(const char* name, const char* text) {
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(text, &end, 10);
  if (end == text || *end != '\0' || errno == ERANGE) {
    return Status::InvalidArgument(std::string(name) + "=" + text +
                                   " is not an integer");
  }
  return v;
}

Result<double> ParseDouble(const char* name, const char* text) {
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(text, &end);
  if (end == text || *end != '\0' || errno == ERANGE) {
    return Status::InvalidArgument(std::string(name) + "=" + text +
                                   " is not a number");
  }
  return v;
}

uint64_t FaultSeedFromEnv() {
  uint64_t seed = 42;
  if (const char* s = std::getenv("GPUJOIN_FAULT_SEED")) {
    char* end = nullptr;
    const long long v = std::strtoll(s, &end, 10);
    if (end != s && *end == '\0') seed = static_cast<uint64_t>(v);
  }
  return seed;
}

}  // namespace

Result<vgpu::FaultInjector> FaultSpecFromEnv() {
  const char* nth = std::getenv("GPUJOIN_FAULT_NTH");
  const char* bytes = std::getenv("GPUJOIN_FAULT_BYTES");
  const char* prob = std::getenv("GPUJOIN_FAULT_PROB");
  const char* knth = std::getenv("GPUJOIN_FAULT_KERNEL_NTH");
  const char* kprob = std::getenv("GPUJOIN_FAULT_KERNEL_PROB");
  const char* kburst = std::getenv("GPUJOIN_FAULT_KERNEL_BURST");
  const int set = (nth != nullptr) + (bytes != nullptr) + (prob != nullptr) +
                  (knth != nullptr) + (kprob != nullptr) + (kburst != nullptr);
  if (set > 1) {
    return Status::InvalidArgument(
        "at most one of GPUJOIN_FAULT_NTH / GPUJOIN_FAULT_BYTES / "
        "GPUJOIN_FAULT_PROB / GPUJOIN_FAULT_KERNEL_NTH / "
        "GPUJOIN_FAULT_KERNEL_PROB / GPUJOIN_FAULT_KERNEL_BURST may be set");
  }
  if (nth != nullptr) {
    GPUJOIN_ASSIGN_OR_RETURN(const long long v,
                             ParseInt("GPUJOIN_FAULT_NTH", nth));
    if (v < 1) {
      return Status::InvalidArgument(std::string("GPUJOIN_FAULT_NTH=") + nth +
                                     " must be >= 1");
    }
    return vgpu::FaultInjector::FailNth(static_cast<uint64_t>(v));
  }
  if (bytes != nullptr) {
    GPUJOIN_ASSIGN_OR_RETURN(const long long v,
                             ParseInt("GPUJOIN_FAULT_BYTES", bytes));
    if (v < 0) {
      return Status::InvalidArgument(std::string("GPUJOIN_FAULT_BYTES=") +
                                     bytes + " must be >= 0");
    }
    return vgpu::FaultInjector::FailAfterBytes(static_cast<uint64_t>(v));
  }
  if (prob != nullptr) {
    GPUJOIN_ASSIGN_OR_RETURN(const double p,
                             ParseDouble("GPUJOIN_FAULT_PROB", prob));
    if (p < 0 || p >= 1) {
      return Status::InvalidArgument(std::string("GPUJOIN_FAULT_PROB=") +
                                     prob + " must be in [0,1)");
    }
    return vgpu::FaultInjector::FailWithProbability(p, FaultSeedFromEnv());
  }
  if (knth != nullptr) {
    GPUJOIN_ASSIGN_OR_RETURN(const long long v,
                             ParseInt("GPUJOIN_FAULT_KERNEL_NTH", knth));
    if (v < 1) {
      return Status::InvalidArgument(
          std::string("GPUJOIN_FAULT_KERNEL_NTH=") + knth + " must be >= 1");
    }
    return vgpu::FaultInjector::FailNthKernel(static_cast<uint64_t>(v));
  }
  if (kprob != nullptr) {
    GPUJOIN_ASSIGN_OR_RETURN(const double p,
                             ParseDouble("GPUJOIN_FAULT_KERNEL_PROB", kprob));
    if (p < 0 || p >= 1) {
      return Status::InvalidArgument(
          std::string("GPUJOIN_FAULT_KERNEL_PROB=") + kprob +
          " must be in [0,1)");
    }
    return vgpu::FaultInjector::FailKernelWithProbability(p,
                                                          FaultSeedFromEnv());
  }
  if (kburst != nullptr) {
    // "first:len" — a burst of `len` consecutive kernel faults starting at
    // the `first`th kernel (1-based). "7:3" fails kernels 7, 8, 9.
    const std::string spec(kburst);
    const size_t colon = spec.find(':');
    if (colon == std::string::npos) {
      return Status::InvalidArgument(
          std::string("GPUJOIN_FAULT_KERNEL_BURST=") + kburst +
          " must be of the form first:len");
    }
    GPUJOIN_ASSIGN_OR_RETURN(
        const long long first,
        ParseInt("GPUJOIN_FAULT_KERNEL_BURST", spec.substr(0, colon).c_str()));
    GPUJOIN_ASSIGN_OR_RETURN(
        const long long len,
        ParseInt("GPUJOIN_FAULT_KERNEL_BURST", spec.substr(colon + 1).c_str()));
    if (first < 1 || len < 1) {
      return Status::InvalidArgument(
          std::string("GPUJOIN_FAULT_KERNEL_BURST=") + kburst +
          " needs first >= 1 and len >= 1");
    }
    return vgpu::FaultInjector::FailKernelBurst(static_cast<uint64_t>(first),
                                                static_cast<uint64_t>(len));
  }
  return vgpu::FaultInjector();
}

Result<double> WatchdogCyclesFromEnv() {
  const char* env = std::getenv("GPUJOIN_WATCHDOG_CYCLES");
  if (env == nullptr) return 0.0;
  GPUJOIN_ASSIGN_OR_RETURN(const double v,
                           ParseDouble("GPUJOIN_WATCHDOG_CYCLES", env));
  if (v <= 0) {
    return Status::InvalidArgument(std::string("GPUJOIN_WATCHDOG_CYCLES=") +
                                   env + " must be > 0");
  }
  return v;
}

vgpu::FaultInjector FaultInjectorFromEnv() {
  Result<vgpu::FaultInjector> spec = FaultSpecFromEnv();
  if (!spec.ok()) {
    std::fprintf(stderr, "%s\n", spec.status().message().c_str());
    std::abort();
  }
  return *std::move(spec);
}

vgpu::LifecycleControl* LifecycleFromEnv() {
  const char* deadline = std::getenv("GPUJOIN_DEADLINE_CYCLES");
  const char* cancel_at = std::getenv("GPUJOIN_CANCEL_AT_KERNEL");
  if (deadline == nullptr && cancel_at == nullptr) return nullptr;
  static vgpu::LifecycleControl control;
  static bool armed = false;
  if (!armed) {
    armed = true;
    if (deadline != nullptr) {
      const double v = std::atof(deadline);
      if (v <= 0) {
        std::fprintf(stderr, "GPUJOIN_DEADLINE_CYCLES=%s must be > 0\n",
                     deadline);
        std::abort();
      }
      // The bench device's clock starts at 0, so a relative budget is an
      // absolute deadline.
      control.set_deadline(vgpu::Deadline::AfterCycles(0, v));
    }
    if (cancel_at != nullptr) {
      const long long v = std::atoll(cancel_at);
      if (v < 1) {
        std::fprintf(stderr, "GPUJOIN_CANCEL_AT_KERNEL=%s must be >= 1\n",
                     cancel_at);
        std::abort();
      }
      control.set_cancel_at_kernel(static_cast<uint64_t>(v));
    }
  }
  return &control;
}

int SimThreadsFromEnv() {
  const char* env = std::getenv("GPUJOIN_SIM_THREADS");
  if (env == nullptr || env[0] == '\0') return 1;
  if (std::strcmp(env, "auto") == 0 || std::strcmp(env, "0") == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
  }
  const long long v = std::atoll(env);
  if (v < 1 || v > 1024) {
    std::fprintf(stderr,
                 "GPUJOIN_SIM_THREADS=%s must be 1..1024, 0, or \"auto\"; "
                 "using 1\n",
                 env);
    return 1;
  }
  return static_cast<int>(v);
}

vgpu::Device MakeBenchDevice() {
  Result<double> watchdog = WatchdogCyclesFromEnv();
  if (!watchdog.ok()) {
    std::fprintf(stderr, "%s\n", watchdog.status().message().c_str());
    std::abort();
  }
  return vgpu::Device(
      vgpu::DeviceConfig::ScaledToWorkload(BaseDeviceConfig(), ScaleTuples()),
      FaultInjectorFromEnv(), LifecycleFromEnv(), SimThreadsFromEnv(),
      *watchdog);
}

Result<DeviceWorkload> Upload(vgpu::Device& device,
                              const workload::JoinWorkload& w) {
  DeviceWorkload out;
  GPUJOIN_ASSIGN_OR_RETURN(out.r, Table::FromHost(device, w.r));
  GPUJOIN_ASSIGN_OR_RETURN(out.s, Table::FromHost(device, w.s));
  return out;
}

Result<join::JoinRunResult> RunJoinCold(vgpu::Device& device, join::JoinAlgo algo,
                                        const Table& r, const Table& s,
                                        const join::JoinOptions& opts) {
  device.FlushL2();
  return join::RunJoin(device, algo, r, s, opts);
}

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    std::printf("  ");
    for (size_t c = 0; c < row.size(); ++c) {
      std::printf("%-*s  ", static_cast<int>(widths[c]), row[c].c_str());
    }
    std::printf("\n");
  };
  print_row(headers_);
  std::string sep;
  for (size_t c = 0; c < headers_.size(); ++c) {
    sep += std::string(widths[c], '-') + "  ";
  }
  std::printf("  %s\n", sep.c_str());
  for (const auto& row : rows_) print_row(row);
}

std::string TablePrinter::Fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

void PrintBanner(const std::string& experiment, const std::string& what) {
  const vgpu::DeviceConfig cfg = BaseDeviceConfig();
  std::printf("\n=== %s — %s ===\n", experiment.c_str(), what.c_str());
  std::printf("device=%s (scaled to 2^%d tuples; paper scale is 2^27)\n",
              cfg.name.c_str(), ScaleLog2());

  std::string bench = experiment;
  if (const char* override_name = std::getenv("GPUJOIN_BENCH_NAME")) {
    bench = override_name;
  }
  obs::MetricsSink::Global().Configure(obs::SanitizeBenchName(bench), what,
                                       cfg.name, ScaleLog2());
  if (!obs::JsonDirFromEnv().empty() ||
      std::getenv("GPUJOIN_TRACE") != nullptr ||
      std::getenv("GPUJOIN_EXPLAIN") != nullptr) {
    obs::Tracer::Global().set_enabled(true);
  }
}

void PrintSimSummary() {
  const vgpu::SimSelfProfile& p = vgpu::GlobalSimSelfProfile();
  const double rate = p.host_seconds > 0 ? p.sim_cycles / p.host_seconds : 0;
  std::printf(
      "[sim] %llu kernels, %.3g simulated cycles in %.2f s host wall-clock "
      "(%.2f s CPU across %d sim threads, %.3g cycles/s)\n",
      static_cast<unsigned long long>(p.kernels), p.sim_cycles, p.host_seconds,
      p.host_cpu_seconds, SimThreadsFromEnv(), rate);

  // Fold the simulator self-profile into the registry: kernel count and
  // simulated cycles are replay-stable; the host wall/CPU seconds go
  // through the host-flagged entry points.
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  if (p.kernels > 0) {
    reg.CounterAdd("sim_kernels_total", {}, p.kernels);
    reg.HistogramObserve("sim_section_cycles", {}, p.sim_cycles);
    reg.HostHistogramObserve("sim_section_host_seconds", {}, p.host_seconds);
  }

  if (std::getenv("GPUJOIN_EXPLAIN") != nullptr) {
    std::fputs(obs::RenderExplain(obs::Tracer::Global()).c_str(), stdout);
    std::fputs(obs::RenderMetricsSummary(reg.Snapshot()).c_str(), stdout);
  }
  const std::string dir = obs::JsonDirFromEnv();
  const obs::MetricsSink& sink = obs::MetricsSink::Global();
  if (!dir.empty() && sink.configured()) {
    Result<std::string> bench_path = sink.WriteJson(dir);
    if (bench_path.ok()) {
      std::printf("[json] wrote %s\n", bench_path->c_str());
    } else {
      std::fprintf(stderr, "[json] bench export failed: %s\n",
                   bench_path.status().message().c_str());
    }
    const std::string trace_path = dir + "/TRACE_" + sink.bench() + ".json";
    Status st = obs::WriteChromeTrace(obs::Tracer::Global(), trace_path);
    if (st.ok()) {
      std::printf("[json] wrote %s\n", trace_path.c_str());
    } else {
      std::fprintf(stderr, "[json] trace export failed: %s\n",
                   st.message().c_str());
    }
    const obs::MetricsSnapshot snap = reg.Snapshot();
    if (!snap.empty()) {
      for (auto* writer : {&obs::WriteMetricsJson, &obs::WriteMetricsProm}) {
        Result<std::string> path =
            (*writer)(snap, dir, sink.bench(), /*include_host_timing=*/true);
        if (path.ok()) {
          std::printf("[json] wrote %s\n", path->c_str());
        } else {
          std::fprintf(stderr, "[json] metrics export failed: %s\n",
                       path.status().message().c_str());
        }
      }
    }
  }
  vgpu::ResetGlobalSimSelfProfile();
}

}  // namespace gpujoin::harness
