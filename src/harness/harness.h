// Experiment harness shared by the bench binaries: device construction from
// environment knobs, workload-to-device upload, and aligned table printing
// in the style of the paper's figures.
//
// Environment variables:
//   GPUJOIN_SCALE       log2 of the canonical relation tuple count (default
//                       20; the paper uses 27 — see DESIGN.md on scaling).
//   GPUJOIN_DEVICE      "A100" (default) or "RTX3090".
//   GPUJOIN_SIM_THREADS host threads for the parallel simulation path
//                       (default 1 = sequential). Simulated results and
//                       stats are bit-identical for every value; only host
//                       wall-clock changes (see DESIGN.md §12). Also sizes
//                       the cpux backend's worker pool in benches and the
//                       service (same contract: results are bit-identical
//                       at every setting).
//   GPUJOIN_BACKEND     operator backend: "auto" (cost-based routing),
//                       "cpu"/"cpux" (vectorized host engines), or
//                       "gpu"/"vgpu" (simulated device). Parsed by
//                       ops::ParseBackend; consumed by the router-aware
//                       benches (bench_hyb1_crossover) and by
//                       service::QueryService (whose default remains vgpu
//                       when unset — see DESIGN.md §14).
//   GPUJOIN_FAULT_NTH   fail the Nth device allocation (one-shot).
//   GPUJOIN_FAULT_BYTES fail every allocation once cumulative allocated
//                       bytes exceed this budget.
//   GPUJOIN_FAULT_PROB  fail each allocation with this probability [0,1).
//   GPUJOIN_FAULT_KERNEL_NTH
//                       inject a transient kernel-execution fault
//                       (kUnavailable) at the Nth kernel launch (one-shot).
//   GPUJOIN_FAULT_KERNEL_PROB
//                       fail each kernel with this probability [0,1).
//   GPUJOIN_FAULT_KERNEL_BURST
//                       "first:len" — fail `len` consecutive kernels
//                       starting at the `first`th (models a burst fault
//                       domain; "7:3" fails kernels 7, 8, 9).
//   GPUJOIN_FAULT_SEED  RNG seed for the probabilistic modes (default 42).
//   GPUJOIN_WATCHDOG_CYCLES
//                       simulated-cycle budget for a single kernel; a
//                       kernel exceeding it trips a structured
//                       watchdog_timeout (kUnavailable). Must be > 0.
//   GPUJOIN_JSON_DIR    directory for BENCH_<name>.json (structured
//                       metrics), TRACE_<name>.json (Chrome trace-event
//                       / Perfetto), and METRICS_<name>.json/.prom
//                       (registry snapshot + Prometheus text exposition),
//                       written at PrintSimSummary() with tracing enabled.
//                       Defaults to bench/results when unset; set
//                       GPUJOIN_JSON_DIR="" to disable export.
//   GPUJOIN_BENCH_NAME  overrides the bench name derived from the banner
//                       (used by scripts/reproduce.sh --json smoke runs).
//   GPUJOIN_TRACE       enable span tracing without JSON export.
//   GPUJOIN_EXPLAIN     print an EXPLAIN ANALYZE span-tree rendering of
//                       the traced queries at PrintSimSummary().
//   GPUJOIN_DEADLINE_CYCLES
//                       arm a simulated-cycle deadline on the bench device:
//                       queries stop with kDeadlineExceeded once the clock
//                       passes this budget (deterministic — the same run
//                       trips at the same kernel every time).
//   GPUJOIN_CANCEL_AT_KERNEL
//                       trip the bench device's cancel token when the Nth
//                       kernel launches (1-based), driving a clean
//                       kCancelled stop at that boundary.
// At most one of the six GPUJOIN_FAULT_* mode knobs may be set; the bench
// device is built with the resulting injector armed, so any bench binary
// doubles as a fault-injection smoke test (it must fail with a clean
// ResourceExhausted — or absorb/surface a clean kUnavailable for the
// kernel-fault modes — never crash or leak). A malformed fault spec is a
// structured startup error: FaultSpecFromEnv returns InvalidArgument and
// the bench aborts with the diagnostic instead of silently running
// fault-free. The lifecycle knobs work the same way: a bench driven with a
// deadline or cancel-at-kernel must stop with the structured status and
// zero leaks, never crash.

#ifndef GPUJOIN_HARNESS_HARNESS_H_
#define GPUJOIN_HARNESS_HARNESS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "join/join.h"
#include "storage/table.h"
#include "vgpu/device.h"
#include "workload/generator.h"

namespace gpujoin::harness {

/// log2 of the canonical bench relation size (GPUJOIN_SCALE, default 20).
int ScaleLog2();

/// Canonical bench relation size in tuples: 1 << ScaleLog2().
uint64_t ScaleTuples();

/// The base (unscaled) device config selected by GPUJOIN_DEVICE.
vgpu::DeviceConfig BaseDeviceConfig();

/// The fault injector requested via GPUJOIN_FAULT_* as a structured
/// result: unarmed when no knob is set, InvalidArgument for a malformed or
/// conflicting spec (non-numeric value, out-of-range probability, bad
/// burst shape, more than one mode).
Result<vgpu::FaultInjector> FaultSpecFromEnv();

/// The fault injector requested via GPUJOIN_FAULT_* (unarmed when none are
/// set; invalid or conflicting settings abort with FaultSpecFromEnv's
/// diagnostic).
vgpu::FaultInjector FaultInjectorFromEnv();

/// GPUJOIN_WATCHDOG_CYCLES as a structured result: 0 when unset (watchdog
/// disarmed), InvalidArgument for a non-numeric or non-positive value.
Result<double> WatchdogCyclesFromEnv();

/// Host threads for the parallel simulation path (GPUJOIN_SIM_THREADS,
/// default 1; 0 or "auto" selects the hardware concurrency).
int SimThreadsFromEnv();

/// The process-wide lifecycle control armed from GPUJOIN_DEADLINE_CYCLES /
/// GPUJOIN_CANCEL_AT_KERNEL, or nullptr when neither knob is set. The
/// control lives for the whole process, so MakeBenchDevice can install it
/// at device construction (invalid settings abort with a diagnostic).
vgpu::LifecycleControl* LifecycleFromEnv();

/// A device whose caches are scaled to the canonical bench size, so the
/// paper's cache-to-working-set ratios hold at GPUJOIN_SCALE (see DESIGN.md),
/// with any GPUJOIN_FAULT_* injector armed and the parallel simulation path
/// fanned out to GPUJOIN_SIM_THREADS host threads.
vgpu::Device MakeBenchDevice();

/// Uploads both sides of a generated workload.
struct DeviceWorkload {
  Table r;
  Table s;
};
Result<DeviceWorkload> Upload(vgpu::Device& device,
                              const workload::JoinWorkload& w);

/// Runs one join and flushes device caches first (cold-cache convention used
/// by all benches for comparability).
Result<join::JoinRunResult> RunJoinCold(vgpu::Device& device, join::JoinAlgo algo,
                                        const Table& r, const Table& s,
                                        const join::JoinOptions& opts = {});

/// Fixed-width console table writer.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);
  void AddRow(std::vector<std::string> cells);
  void Print() const;

  static std::string Fmt(double v, int precision = 2);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints the standard bench banner (experiment id, device, scale), names
/// the process-wide metrics sink after the experiment (first banner wins;
/// GPUJOIN_BENCH_NAME overrides), and enables the global tracer when any
/// of GPUJOIN_JSON_DIR / GPUJOIN_TRACE / GPUJOIN_EXPLAIN is set.
void PrintBanner(const std::string& experiment, const std::string& what);

/// Prints a one-line simulator self-profile: kernels simulated, simulated
/// cycles, host wall-clock spent simulating, and sim throughput
/// (cycles/second of host time). Call at the end of a bench main. Also
/// folds the self-profile into the obs metrics registry, renders EXPLAIN
/// ANALYZE plus the "[metrics]" summary block when GPUJOIN_EXPLAIN is set,
/// flushes BENCH_/TRACE_/METRICS_ artifacts when GPUJOIN_JSON_DIR is set,
/// and resets the process-wide sim self-profile so back-to-back
/// experiments in one process report independent summaries.
void PrintSimSummary();

}  // namespace gpujoin::harness

#endif  // GPUJOIN_HARNESS_HARNESS_H_
