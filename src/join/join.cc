#include "join/join.h"

#include <algorithm>
#include <optional>
#include <utility>
#include <vector>

#include "common/bit_util.h"
#include "join/transform.h"
#include "obs/trace.h"
#include "prim/bucket_chain.h"
#include "prim/gather.h"
#include "prim/hash_join.h"
#include "prim/match.h"
#include "prim/merge_join.h"

namespace gpujoin::join {

const char* JoinAlgoName(JoinAlgo algo) {
  switch (algo) {
    case JoinAlgo::kSmjUm:
      return "SMJ-UM";
    case JoinAlgo::kSmjOm:
      return "SMJ-OM";
    case JoinAlgo::kPhjUm:
      return "PHJ-UM";
    case JoinAlgo::kPhjOm:
      return "PHJ-OM";
    case JoinAlgo::kNphj:
      return "NPHJ";
  }
  return "?";
}

const char* JoinAlgoShortName(JoinAlgo algo) {
  switch (algo) {
    case JoinAlgo::kSmjUm:
      return "SU";
    case JoinAlgo::kSmjOm:
      return "SO";
    case JoinAlgo::kPhjUm:
      return "PU";
    case JoinAlgo::kPhjOm:
      return "PO";
    case JoinAlgo::kNphj:
      return "NP";
  }
  return "?";
}

namespace {

template <typename K>
const vgpu::DeviceBuffer<K>& KeyBuffer(const DeviceColumn& col);
template <>
const vgpu::DeviceBuffer<int32_t>& KeyBuffer<int32_t>(const DeviceColumn& col) {
  return col.i32();
}
template <>
const vgpu::DeviceBuffer<int64_t>& KeyBuffer<int64_t>(const DeviceColumn& col) {
  return col.i64();
}

template <typename K>
DeviceColumn WrapKeyBuffer(vgpu::DeviceBuffer<K> buf) {
  if constexpr (sizeof(K) == 4) {
    return DeviceColumn::WrapI32(std::move(buf));
  } else {
    return DeviceColumn::WrapI64(std::move(buf));
  }
}

/// Replays a bucket-chain layout onto a payload column (narrow PHJ-UM side).
template <typename K>
Result<DeviceColumn> ApplyBucketChainToColumn(
    vgpu::Device& device, const prim::BucketChainLayout<K>& layout,
    const DeviceColumn& src) {
  if (src.type() == DataType::kInt32) {
    GPUJOIN_ASSIGN_OR_RETURN(
        auto pool, prim::ApplyBucketChainToValues(device, layout, src.i32()));
    return DeviceColumn::WrapI32(std::move(pool));
  }
  GPUJOIN_ASSIGN_OR_RETURN(
      auto pool, prim::ApplyBucketChainToValues(device, layout, src.i64()));
  return DeviceColumn::WrapI64(std::move(pool));
}

/// Transform state of one input relation.
template <typename K>
struct SideState {
  // Dense transforms (SMJ-*, PHJ-OM):
  vgpu::DeviceBuffer<K> t_keys;
  DeviceColumn t_pay1;             // Transformed first payload (OM, or narrow UM).
  std::vector<DeviceColumn> t_pays_rest;  // Eager GFTR: payloads 2..n.
  vgpu::DeviceBuffer<RowId> t_ids; // Transformed physical IDs (wide UM).
  std::vector<uint64_t> offsets;   // Partition boundaries (PHJ-OM).

  // Bucket chains (PHJ-UM):
  std::optional<prim::BucketChainLayout<K>> bc;
  DeviceColumn bc_pay1;             // Narrow UM payload pool.
  vgpu::DeviceBuffer<RowId> bc_ids; // Wide UM physical-ID pool.
};

/// One side's join-relevant description.
struct SideDesc {
  const Table* table;
  int n_payloads;
  bool narrow;  // Exactly one payload: ride it through the transform.
};

template <typename K>
Result<JoinRunResult> JoinDriver(vgpu::Device& device, JoinAlgo algo,
                                 const Table& r, const Table& s,
                                 const JoinOptions& opts) {
  const auto& r_keys = KeyBuffer<K>(r.column(0));
  const auto& s_keys = KeyBuffer<K>(s.column(0));
  const SideDesc rd{&r, r.num_columns() - 1, r.num_columns() - 1 == 1};
  const SideDesc sd{&s, s.num_columns() - 1, s.num_columns() - 1 == 1};
  const bool narrow_join = rd.n_payloads <= 1 && sd.n_payloads <= 1;

  const uint64_t capacity = prim::SharedHashCapacity<K>(device);
  int radix_bits = opts.radix_bits_override > 0
                       ? opts.radix_bits_override
                       : ChoosePartitionBits<K>(r.num_rows(), capacity);
  radix_bits = std::min(radix_bits, 16);
  const uint32_t bucket_elems =
      opts.bucket_elems_override > 0
          ? opts.bucket_elems_override
          : static_cast<uint32_t>(std::min<uint64_t>(capacity, 4096));
  const int bits1 = std::min(8, std::max(1, (radix_bits + 1) / 2));
  const int bits2 = std::min(8, radix_bits - bits1);

  device.ResetPeakMemory();
  JoinRunResult res;
  const vgpu::KernelStats stats_before = device.total_stats();
  obs::TraceSpan query_span(device, "query",
                            std::string("join:") + JoinAlgoName(algo));
  query_span.Annotate("algo", JoinAlgoName(algo));
  query_span.Annotate("r_rows", std::to_string(r.num_rows()));
  query_span.Annotate("s_rows", std::to_string(s.num_rows()));
  const double t0 = device.ElapsedSeconds();

  // =========================== Transformation ===========================
  SideState<K> rs, ss;
  const bool is_smj = algo == JoinAlgo::kSmjUm || algo == JoinAlgo::kSmjOm;
  const bool is_om = algo == JoinAlgo::kSmjOm || algo == JoinAlgo::kPhjOm;
  const TransformKind tkind = is_smj ? TransformKind::kSort : TransformKind::kPartition;

  auto transform_dense_side = [&](const SideDesc& side,
                                  const vgpu::DeviceBuffer<K>& keys,
                                  SideState<K>* state) -> Status {
    vgpu::AllocTagScope tag(device, "join:transform:" + side.table->name());
    const bool carry_payload = side.narrow || (is_om && side.n_payloads >= 1);
    if (carry_payload) {
      GPUJOIN_ASSIGN_OR_RETURN(
          state->t_pay1,
          TransformKeyPayload(device, keys, side.table->column(1),
                              &state->t_keys, tkind, radix_bits));
      if (is_om && opts.eager_transform) {
        // Early-materialization ablation: transform the remaining payload
        // columns up front and keep them all resident.
        for (int c = 2; c <= side.n_payloads; ++c) {
          vgpu::DeviceBuffer<K> t_keys_again;
          GPUJOIN_ASSIGN_OR_RETURN(
              DeviceColumn t_pay,
              TransformKeyPayload(device, keys, side.table->column(c),
                                  &t_keys_again, tkind, radix_bits));
          t_keys_again.Release();
          state->t_pays_rest.push_back(std::move(t_pay));
        }
      }
    } else {
      // Initialize physical tuple identifiers and transform (GFUR).
      GPUJOIN_ASSIGN_OR_RETURN(
          auto ids, vgpu::DeviceBuffer<RowId>::Allocate(device, keys.size()));
      GPUJOIN_RETURN_IF_ERROR(prim::Iota(device, &ids));
      GPUJOIN_RETURN_IF_ERROR(TransformPairOutOfPlace(
          device, keys, ids, &state->t_keys, &state->t_ids, tkind, radix_bits));
      ids.Release();
    }
    if (algo == JoinAlgo::kPhjOm) {
      GPUJOIN_RETURN_IF_ERROR(prim::ComputePartitionOffsets(
          device, state->t_keys, radix_bits, &state->offsets));
    }
    return Status::OK();
  };

  auto transform_chain_side = [&](const SideDesc& side,
                                  const vgpu::DeviceBuffer<K>& keys,
                                  SideState<K>* state) -> Status {
    vgpu::AllocTagScope tag(device, "join:transform:" + side.table->name());
    GPUJOIN_ASSIGN_OR_RETURN(
        auto layout,
        prim::BuildBucketChainLayout(device, keys, bits1, std::max(bits2, 0),
                                     bucket_elems));
    state->bc.emplace(std::move(layout));
    if (side.narrow) {
      GPUJOIN_ASSIGN_OR_RETURN(
          state->bc_pay1,
          ApplyBucketChainToColumn(device, *state->bc, side.table->column(1)));
    } else {
      GPUJOIN_ASSIGN_OR_RETURN(
          auto ids, vgpu::DeviceBuffer<RowId>::Allocate(device, keys.size()));
      GPUJOIN_RETURN_IF_ERROR(prim::Iota(device, &ids));
      GPUJOIN_ASSIGN_OR_RETURN(
          state->bc_ids, prim::ApplyBucketChainToValues(device, *state->bc, ids));
      ids.Release();
    }
    return Status::OK();
  };

  {
    // NPHJ has no transformation phase: no span, and 0 cycles elapse here.
    std::optional<obs::TraceSpan> transform_span;
    if (algo != JoinAlgo::kNphj) {
      transform_span.emplace(device, "phase", "transform");
    }
    switch (algo) {
      case JoinAlgo::kSmjUm:
      case JoinAlgo::kSmjOm:
      case JoinAlgo::kPhjOm:
        GPUJOIN_RETURN_IF_ERROR(transform_dense_side(rd, r_keys, &rs));
        GPUJOIN_RETURN_IF_ERROR(transform_dense_side(sd, s_keys, &ss));
        break;
      case JoinAlgo::kPhjUm:
        GPUJOIN_RETURN_IF_ERROR(transform_chain_side(rd, r_keys, &rs));
        GPUJOIN_RETURN_IF_ERROR(transform_chain_side(sd, s_keys, &ss));
        break;
      case JoinAlgo::kNphj:
        break;  // No transformation phase (keys are consumed in place).
    }
  }
  GPUJOIN_RETURN_IF_ERROR(obs::CheckLifecycle(device));
  const double t1 = device.ElapsedSeconds();
  res.phases.transform_s = t1 - t0;

  // ============================ Match finding ============================
  prim::MatchResult<K> match;
  std::optional<obs::TraceSpan> match_span;
  match_span.emplace(device, "phase", "match");
  {
    vgpu::AllocTagScope tag(device, "join:match");
    switch (algo) {
    case JoinAlgo::kSmjUm:
    case JoinAlgo::kSmjOm: {
      GPUJOIN_ASSIGN_OR_RETURN(
          match, prim::MergeJoinSorted(device, rs.t_keys, ss.t_keys, opts.pk_fk));
      break;
    }
    case JoinAlgo::kPhjOm: {
      GPUJOIN_ASSIGN_OR_RETURN(
          match, prim::HashJoinCoPartitioned(device, rs.t_keys, ss.t_keys,
                                             rs.offsets, ss.offsets, capacity));
      break;
    }
    case JoinAlgo::kPhjUm: {
      GPUJOIN_ASSIGN_OR_RETURN(
          match, prim::HashJoinBucketChains(device, *rs.bc, *ss.bc, capacity));
      break;
    }
    case JoinAlgo::kNphj: {
      GPUJOIN_ASSIGN_OR_RETURN(match,
                               prim::HashJoinGlobal(device, r_keys, s_keys));
      break;
    }
    }
  }
  res.output_rows = match.count();

  // GFUR: translate positions into physical tuple IDs (T' = (k, ID_R, ID_S)).
  // The gathers are clustered (positions ascend), so this is cheap; the
  // expense moved to the materialization phase — the paper's §3.3 point.
  vgpu::DeviceBuffer<RowId> r_ids_at_match, s_ids_at_match;
  if (!is_om && algo != JoinAlgo::kNphj) {
    if (!rd.narrow && rd.n_payloads > 0) {
      GPUJOIN_ASSIGN_OR_RETURN(r_ids_at_match,
                               vgpu::DeviceBuffer<RowId>::Allocate(
                                   device, match.count(), "join:r_ids_at_match"));
      const auto& ids = algo == JoinAlgo::kPhjUm ? rs.bc_ids : rs.t_ids;
      GPUJOIN_RETURN_IF_ERROR(
          prim::Gather(device, ids, match.r_pos, &r_ids_at_match));
    }
    if (!sd.narrow && sd.n_payloads > 0) {
      GPUJOIN_ASSIGN_OR_RETURN(s_ids_at_match,
                               vgpu::DeviceBuffer<RowId>::Allocate(
                                   device, match.count(), "join:s_ids_at_match"));
      const auto& ids = algo == JoinAlgo::kPhjUm ? ss.bc_ids : ss.t_ids;
      GPUJOIN_RETURN_IF_ERROR(
          prim::Gather(device, ids, match.s_pos, &s_ids_at_match));
    }
  }

  // Build the output key column (written during match finding).
  std::vector<std::string> out_names;
  std::vector<DeviceColumn> out_cols;
  out_names.push_back(r.column_name(0));
  out_cols.push_back(WrapKeyBuffer<K>(std::move(match.keys)));

  // Narrow-side payloads of a narrow join are emitted during match finding.
  auto emit_narrow_side = [&](const SideDesc& side, SideState<K>* state,
                              const vgpu::DeviceBuffer<RowId>& pos) -> Status {
    const DeviceColumn& pool = algo == JoinAlgo::kPhjUm ? state->bc_pay1
                                                        : state->t_pay1;
    GPUJOIN_ASSIGN_OR_RETURN(auto col, GatherColumn(device, pool, pos));
    out_names.push_back(side.table->column_name(1));
    out_cols.push_back(std::move(col));
    return Status::OK();
  };
  if (narrow_join && algo != JoinAlgo::kNphj) {
    if (rd.n_payloads == 1) {
      GPUJOIN_RETURN_IF_ERROR(emit_narrow_side(rd, &rs, match.r_pos));
    }
    if (sd.n_payloads == 1) {
      GPUJOIN_RETURN_IF_ERROR(emit_narrow_side(sd, &ss, match.s_pos));
    }
  }

  // Free transform-phase state that is dead after match finding.
  // GFUR frees everything; GFTR keeps the transformed first payloads.
  auto release_side_keys = [&](SideState<K>* state) {
    state->t_keys.Release();
    state->t_ids.Release();
    state->bc_ids.Release();
    if (state->bc.has_value()) state->bc->keys.Release();
  };
  release_side_keys(&rs);
  release_side_keys(&ss);
  if (narrow_join) {
    rs.t_pay1.Release();
    ss.t_pay1.Release();
    rs.bc_pay1.Release();
    ss.bc_pay1.Release();
  }

  match_span.reset();
  GPUJOIN_RETURN_IF_ERROR(obs::CheckLifecycle(device));
  const double t2 = device.ElapsedSeconds();
  res.phases.match_s = t2 - t1;

  // ============================ Materialization ==========================
  // NPHJ always materializes through gathers (it has no transform to ride);
  // the other implementations already emitted narrow-join payloads above.
  // Output payload columns are allocated lazily, one per gather, matching
  // Algorithm 1's free-on-exit discipline.
  if (!narrow_join || algo == JoinAlgo::kNphj) {
    obs::TraceSpan mat_span(device, "phase", "materialize");
    vgpu::AllocTagScope mat_tag(device, "join:materialize");
    // R side, then S side; first payload (if transformed) gathers from the
    // kept transformed column, the rest follow Algorithm 1 (re-transform
    // lazily, gather, free).
    struct MatSide {
      const SideDesc* desc;
      SideState<K>* state;
      const vgpu::DeviceBuffer<K>* keys;
      const vgpu::DeviceBuffer<RowId>* pos;
      const vgpu::DeviceBuffer<RowId>* ids;
    };
    const MatSide sides[2] = {
        {&rd, &rs, &r_keys, &match.r_pos, &r_ids_at_match},
        {&sd, &ss, &s_keys, &match.s_pos, &s_ids_at_match},
    };
    for (const MatSide& m : sides) {
      const Table& t = *m.desc->table;
      for (int c = 1; c <= m.desc->n_payloads; ++c) {
        // The output column is allocated by the gather, AFTER any lazy
        // re-transform has already released its scratch (Algorithm 1's
        // free-on-exit discipline keeps the peak down, §4.4).
        DeviceColumn out_col;
        if (algo == JoinAlgo::kNphj) {
          // Build side: unclustered; probe side: clustered (§5.2.2).
          GPUJOIN_ASSIGN_OR_RETURN(out_col,
                                   GatherColumn(device, t.column(c), *m.pos));
        } else if (!is_om) {
          if (m.desc->narrow) {
            // Narrow side of a wide GFUR join: payload rode the transform.
            const DeviceColumn& pool = algo == JoinAlgo::kPhjUm
                                           ? m.state->bc_pay1
                                           : m.state->t_pay1;
            GPUJOIN_ASSIGN_OR_RETURN(out_col, GatherColumn(device, pool, *m.pos));
          } else {
            // GFUR: unclustered gather from the untransformed relation.
            GPUJOIN_ASSIGN_OR_RETURN(out_col,
                                     GatherColumn(device, t.column(c), *m.ids));
          }
        } else {
          // GFTR (Algorithm 1).
          if (c == 1) {
            GPUJOIN_ASSIGN_OR_RETURN(
                out_col, GatherColumn(device, m.state->t_pay1, *m.pos));
            m.state->t_pay1.Release();
          } else if (opts.eager_transform) {
            DeviceColumn& t_pay = m.state->t_pays_rest[c - 2];
            GPUJOIN_ASSIGN_OR_RETURN(out_col, GatherColumn(device, t_pay, *m.pos));
            t_pay.Release();
          } else {
            // Algorithm 1: transform (key, payload_c) lazily, gather, free.
            // The transformed keys are never read again: discard them.
            vgpu::DeviceBuffer<K> t_keys_again;
            GPUJOIN_ASSIGN_OR_RETURN(
                DeviceColumn t_pay,
                TransformKeyPayload(device, *m.keys, t.column(c), &t_keys_again,
                                    tkind, radix_bits, /*discard_keys=*/true));
            t_keys_again.Release();
            GPUJOIN_ASSIGN_OR_RETURN(out_col, GatherColumn(device, t_pay, *m.pos));
            t_pay.Release();
          }
        }
        out_names.push_back(t.column_name(c));
        out_cols.push_back(std::move(out_col));
      }
      // This side is fully materialized: its match positions / gathered IDs
      // are dead — free them before the other side's transforms peak.
      if (m.pos == &match.r_pos) {
        match.r_pos.Release();
        r_ids_at_match.Release();
      }
    }
  }
  const double t3 = device.ElapsedSeconds();
  res.phases.materialize_s = t3 - t2;

  // A query whose last kernel tripped the deadline (or whose token was
  // cancelled after the final allocation) must still return the lifecycle
  // stop, not a completed result.
  GPUJOIN_RETURN_IF_ERROR(obs::CheckLifecycle(device));
  res.output = Table::FromColumns("join_result", std::move(out_names),
                                  std::move(out_cols));
  res.peak_mem_bytes = device.memory_stats().peak_bytes;
  res.stats = device.total_stats();
  res.stats.Sub(stats_before);
  const double total = t3 - t0;
  res.throughput_tuples_per_sec =
      total > 0 ? static_cast<double>(r.num_rows() + s.num_rows()) / total : 0;
  return res;
}

}  // namespace

Result<JoinRunResult> RunJoin(vgpu::Device& device, JoinAlgo algo, const Table& r,
                              const Table& s, const JoinOptions& options) {
  if (r.num_columns() < 1 || s.num_columns() < 1) {
    return Status::InvalidArgument("RunJoin: tables need at least a key column");
  }
  if (r.column(0).type() != s.column(0).type()) {
    return Status::InvalidArgument("RunJoin: key column types differ");
  }
  if (r.num_rows() == 0 || s.num_rows() == 0) {
    return Status::InvalidArgument("RunJoin: empty input relation");
  }
  GPUJOIN_RETURN_IF_ERROR(obs::CheckLifecycle(device));
  if (r.column(0).type() == DataType::kInt32) {
    return JoinDriver<int32_t>(device, algo, r, s, options);
  }
  return JoinDriver<int64_t>(device, algo, r, s, options);
}

}  // namespace gpujoin::join
