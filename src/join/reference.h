// Host-side reference (oracle) join used to verify every GPU implementation:
// a straightforward hash join over the staged host tables, producing the
// expected output as a canonically sorted multiset of rows.

#ifndef GPUJOIN_JOIN_REFERENCE_H_
#define GPUJOIN_JOIN_REFERENCE_H_

#include <cstdint>
#include <vector>

#include "storage/table.h"

namespace gpujoin::join {

/// All rows of r ⋈ s (key = column 0 of each), each row widened to int64:
/// [key, r payloads..., s payloads...], sorted lexicographically.
std::vector<std::vector<int64_t>> ReferenceJoinRows(const HostTable& r,
                                                    const HostTable& s);

/// Rows of a host table in the same canonical form (widened, sorted).
std::vector<std::vector<int64_t>> CanonicalRows(const HostTable& t);

}  // namespace gpujoin::join

#endif  // GPUJOIN_JOIN_REFERENCE_H_
