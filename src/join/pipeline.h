// Sequences of joins (§5.2.7, Figure 16): a fact table with N foreign keys
// joined against N dimension tables. Following the paper, the fact side
// carries physical tuple identifiers, and each foreign key is materialized
// (gathered through the current identifiers) *right before* its join, so no
// unused foreign key is ever materialized. The i-th join processes
// (FK_i, ID, P_1, ..., P_{i-1}) ⋈ D_i, accumulating one dimension payload
// column per join.

#ifndef GPUJOIN_JOIN_PIPELINE_H_
#define GPUJOIN_JOIN_PIPELINE_H_

#include <vector>

#include "common/resilience.h"
#include "common/status.h"
#include "join/join.h"
#include "storage/table.h"
#include "vgpu/device.h"

namespace gpujoin::join {

/// Per-join OOM handling inside a pipeline: when a constituent join hits
/// ResourceExhausted, retry it (with more partition bits for the radix-
/// partitioned algorithms) instead of failing the whole pipeline. The
/// intermediate fact-side state survives a failed join attempt — RunJoin
/// releases its own working state on error — so a retry sees the exact
/// inputs of the failed attempt.
struct PipelineResilience {
  /// Attempts per constituent join (1 = no retries). The effective cap is
  /// min(max_attempts_per_join, backoff.max_attempts), and a retry that
  /// cannot change anything (radix bits already at the ceiling) stops the
  /// loop early regardless of remaining budget.
  int max_attempts_per_join = 3;
  /// Delay schedule between attempts, charged to the simulated clock.
  BackoffPolicy backoff;
};

struct PipelineRunResult {
  /// The fully joined table: last join key, all dim payloads, fact ids.
  Table output;
  uint64_t final_rows = 0;
  double total_seconds = 0;
  /// (|F| + sum |D_i|) / total simulated seconds (Figure 16's metric).
  double throughput_tuples_per_sec = 0;
  /// Per-join phase breakdowns, in execution order.
  std::vector<PhaseBreakdown> per_join;
  /// Degradation steps taken by the resilience hook (empty when disabled or
  /// never triggered).
  std::vector<DegradationStep> degradation;
};

/// Joins `fact` (whose first N columns are the foreign keys FK_1..FK_N)
/// against dims[0..N-1]; dims[i] joins on its column 0 against FK_i+1.
/// Passing `resilience` enables per-join retry on resource exhaustion.
Result<PipelineRunResult> RunJoinPipeline(vgpu::Device& device, JoinAlgo algo,
                                          const Table& fact,
                                          const std::vector<Table>& dims,
                                          const JoinOptions& options = {},
                                          const PipelineResilience* resilience =
                                              nullptr);

}  // namespace gpujoin::join

#endif  // GPUJOIN_JOIN_PIPELINE_H_
