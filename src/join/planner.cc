#include "join/planner.h"

namespace gpujoin::join {

namespace {
/// Below this estimated match ratio, materialization is no longer the
/// bottleneck and GFUR wins (§5.2.3: the crossover sits near 25%).
constexpr double kLowMatchRatio = 0.25;
/// Beyond this Zipf factor, bucket chaining's atomic contention collapses
/// (§5.2.4: the degradation sets in as the factor "grows and exceeds 1").
constexpr double kSkewThreshold = 1.0;
}  // namespace

JoinFeatures JoinFeatures::FromTables(const Table& r, const Table& s) {
  JoinFeatures f;
  f.r_rows = r.num_rows();
  f.s_rows = s.num_rows();
  f.r_payload_cols = r.num_columns() - 1;
  f.s_payload_cols = s.num_columns() - 1;
  f.keys_8byte = r.column(0).type() == DataType::kInt64;
  for (const Table* t : {&r, &s}) {
    for (int c = 1; c < t->num_columns(); ++c) {
      if (t->column(c).type() == DataType::kInt64) f.payloads_8byte = true;
    }
  }
  return f;
}

JoinAlgo ChooseJoinAlgo(const JoinFeatures& f) {
  // Figure 18a. Partitioned hash joins dominate; the only real question is
  // GFUR (bucket chains) vs GFTR (dense radix partition).
  if (f.zipf_theta > kSkewThreshold) {
    // Bucket chaining degrades sharply under skew; PHJ-OM's partitioning is
    // distribution-oblivious and it has the cheapest materialization too.
    return JoinAlgo::kPhjOm;
  }
  if (f.narrow() || f.match_ratio < kLowMatchRatio) {
    // Little to materialize: the GFUR transform is (slightly) cheaper.
    return JoinAlgo::kPhjUm;
  }
  return JoinAlgo::kPhjOm;
}

JoinAlgo ChooseSortMergeVariant(const JoinFeatures& f) {
  // Figure 18b. SMJ-OM's extra sorting of payload columns pays off only
  // when (a) there is enough materialization to save and (b) the payloads
  // are cheap to sort (mostly 4-byte).
  if (f.narrow() || f.match_ratio < kLowMatchRatio) return JoinAlgo::kSmjUm;
  if (f.keys_8byte || f.payloads_8byte) return JoinAlgo::kSmjUm;
  return JoinAlgo::kSmjOm;
}

std::string ExplainChoice(const JoinFeatures& f) {
  std::string out = "join features: ";
  out += "|R|=" + std::to_string(f.r_rows) + " |S|=" + std::to_string(f.s_rows);
  out += " payloads=" + std::to_string(f.r_payload_cols) + "+" +
         std::to_string(f.s_payload_cols);
  out += " match~" + std::to_string(f.match_ratio);
  out += " zipf~" + std::to_string(f.zipf_theta);
  out += f.keys_8byte ? " keys=8B" : " keys=4B";
  out += f.payloads_8byte ? " payloads incl. 8B" : " payloads=4B";
  out += " -> ";
  out += JoinAlgoName(ChooseJoinAlgo(f));
  if (f.zipf_theta > kSkewThreshold) {
    out += " (skewed FKs: bucket chaining degrades; GFTR partitioning is "
           "distribution-oblivious)";
  } else if (f.narrow()) {
    out += " (narrow join: nothing to materialize, GFUR transform is cheaper)";
  } else if (f.match_ratio < kLowMatchRatio) {
    out += " (low match ratio: unclustered gathers touch little data)";
  } else {
    out += " (wide high-match join: clustered gathers repay the transform)";
  }
  return out;
}

}  // namespace gpujoin::join
