#include "join/join_order.h"

#include <algorithm>
#include <numeric>

#include "ops/ops.h"
#include "stats/estimator.h"

namespace gpujoin::join {

std::string JoinOrderDecision::Explain() const {
  std::string out = "join order:";
  for (int d : order) {
    out += " D" + std::to_string(d + 1) + "(sel~" +
           std::to_string(selectivity[d]).substr(0, 4) + ")";
  }
  return out;
}

Result<JoinOrderDecision> ChooseJoinOrder(vgpu::Device& device, const Table& fact,
                                          const std::vector<Table>& dims) {
  const int n = static_cast<int>(dims.size());
  if (n == 0) {
    return Status::InvalidArgument("ChooseJoinOrder: no dimension tables");
  }
  if (fact.num_columns() < n) {
    return Status::InvalidArgument("ChooseJoinOrder: fewer FK columns than dims");
  }
  JoinOrderDecision decision;
  decision.selectivity.resize(n);
  for (int d = 0; d < n; ++d) {
    GPUJOIN_ASSIGN_OR_RETURN(
        decision.selectivity[d],
        stats::EstimateMatchRatio(device, dims[d].column(0), fact.column(d)));
  }
  decision.order.resize(n);
  std::iota(decision.order.begin(), decision.order.end(), 0);
  std::stable_sort(decision.order.begin(), decision.order.end(),
                   [&](int a, int b) {
                     return decision.selectivity[a] < decision.selectivity[b];
                   });
  return decision;
}

Result<PipelineRunResult> RunOrderedJoinPipeline(vgpu::Device& device,
                                                 JoinAlgo algo, const Table& fact,
                                                 const std::vector<Table>& dims,
                                                 const JoinOrderDecision& decision,
                                                 const JoinOptions& options) {
  if (decision.order.size() != dims.size()) {
    return Status::InvalidArgument("RunOrderedJoinPipeline: order size mismatch");
  }
  // Permute the fact table's FK columns (and keep any trailing payload
  // columns) to match the chosen order, then run the standard pipeline
  // against the permuted dimension list.
  std::vector<int> fact_cols;
  for (int d : decision.order) fact_cols.push_back(d);
  for (int c = static_cast<int>(dims.size()); c < fact.num_columns(); ++c) {
    fact_cols.push_back(c);
  }
  GPUJOIN_ASSIGN_OR_RETURN(Table fact_perm, ops::Project(device, fact, fact_cols));
  // Tables are move-only; rebuild shallow copies by projecting each dim
  // fully (charged copy — acceptable: dims are small relative to the fact).
  std::vector<Table> dims_perm;
  for (int d : decision.order) {
    std::vector<int> all(dims[d].num_columns());
    std::iota(all.begin(), all.end(), 0);
    GPUJOIN_ASSIGN_OR_RETURN(Table copy, ops::Project(device, dims[d], all));
    dims_perm.push_back(std::move(copy));
  }
  return RunJoinPipeline(device, algo, fact_perm, dims_perm, options);
}

}  // namespace gpujoin::join
