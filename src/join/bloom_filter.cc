#include "join/bloom_filter.h"

#include <algorithm>
#include <vector>

#include "common/bit_util.h"
#include "join/transform.h"
#include "prim/hash.h"

namespace gpujoin::join {

namespace {

/// Two derived probe positions per key (Kirsch-Mitzenmacher construction).
inline void ProbeBits(int64_t key, uint64_t mask, uint64_t* b1, uint64_t* b2) {
  const uint64_t h = prim::Murmur3Fmix64(static_cast<uint64_t>(key));
  *b1 = h & mask;
  *b2 = (h >> 32) & mask;
}

}  // namespace

Result<BloomFilter> BloomFilter::Build(vgpu::Device& device, const Table& build,
                                       int bits_per_key) {
  if (build.num_columns() < 1 || build.num_rows() == 0) {
    return Status::InvalidArgument("BloomFilter::Build: empty build side");
  }
  if (bits_per_key < 2 || bits_per_key > 64) {
    return Status::InvalidArgument("BloomFilter::Build: bits_per_key out of range");
  }
  BloomFilter bf;
  const uint64_t bits = bit_util::NextPowerOfTwo(
      std::max<uint64_t>(64, build.num_rows() * static_cast<uint64_t>(bits_per_key)));
  bf.mask_ = bits - 1;
  GPUJOIN_ASSIGN_OR_RETURN(
      bf.words_, vgpu::DeviceBuffer<uint64_t>::Allocate(device, bits / 64));

  const DeviceColumn& keys = build.column(0);
  const int warp = device.config().warp_size;
  vgpu::KernelScope ks(device, "bloom_build");
  device.LoadSeq(keys.addr(), keys.size(),
                 static_cast<uint32_t>(DataTypeSize(keys.type())));
  uint64_t addrs[32];
  for (uint64_t i = 0; i < keys.size(); i += warp) {
    const uint32_t lanes =
        static_cast<uint32_t>(std::min<uint64_t>(warp, keys.size() - i));
    for (uint32_t l = 0; l < lanes; ++l) {
      uint64_t b1, b2;
      ProbeBits(keys.Get(i + l), bf.mask_, &b1, &b2);
      bf.words_[b1 / 64] |= uint64_t{1} << (b1 % 64);
      bf.words_[b2 / 64] |= uint64_t{1} << (b2 % 64);
      addrs[l] = bf.words_.addr(b1 / 64);
    }
    // Atomic-OR into the filter: one random RMW per key (the second probe
    // usually shares the word's cache line in blocked filters; charged as
    // one access).
    device.GlobalAtomic({addrs, lanes}, 8);
  }
  return bf;
}

bool BloomFilter::MightContain(int64_t key) const {
  uint64_t b1, b2;
  ProbeBits(key, mask_, &b1, &b2);
  return (words_[b1 / 64] >> (b1 % 64) & 1) && (words_[b2 / 64] >> (b2 % 64) & 1);
}

Result<Table> BloomFilter::FilterTable(vgpu::Device& device,
                                       const Table& probe) const {
  const DeviceColumn& keys = probe.column(0);
  const uint64_t n = keys.size();
  const int warp = device.config().warp_size;
  std::vector<RowId> kept;
  {
    vgpu::KernelScope ks(device, "bloom_probe");
    device.LoadSeq(keys.addr(), n, static_cast<uint32_t>(DataTypeSize(keys.type())));
    uint64_t addrs[32];
    for (uint64_t i = 0; i < n; i += warp) {
      const uint32_t lanes = static_cast<uint32_t>(std::min<uint64_t>(warp, n - i));
      for (uint32_t l = 0; l < lanes; ++l) {
        uint64_t b1, b2;
        ProbeBits(keys.Get(i + l), mask_, &b1, &b2);
        addrs[l] = words_.addr(b1 / 64);
        if (MightContain(keys.Get(i + l))) {
          kept.push_back(static_cast<RowId>(i + l));
        }
      }
      device.Load({addrs, lanes}, 8);
    }
  }
  GPUJOIN_ASSIGN_OR_RETURN(auto map,
                           vgpu::DeviceBuffer<RowId>::FromHost(device, kept));
  {
    vgpu::KernelScope ks(device, "bloom_compact_map");
    device.StoreSeq(map.addr(), map.size(), sizeof(RowId));
  }
  std::vector<std::string> names;
  std::vector<DeviceColumn> cols;
  for (int c = 0; c < probe.num_columns(); ++c) {
    GPUJOIN_ASSIGN_OR_RETURN(DeviceColumn col,
                             GatherColumn(device, probe.column(c), map));
    names.push_back(probe.column_name(c));
    cols.push_back(std::move(col));
  }
  return Table::FromColumns(probe.name() + "_sip", std::move(names),
                            std::move(cols));
}

Result<Table> SipPruneProbeSide(vgpu::Device& device, const Table& build,
                                const Table& probe, SipJoinStats* stats,
                                int bits_per_key) {
  const double t0 = device.ElapsedSeconds();
  GPUJOIN_ASSIGN_OR_RETURN(BloomFilter bf,
                           BloomFilter::Build(device, build, bits_per_key));
  GPUJOIN_ASSIGN_OR_RETURN(Table pruned, bf.FilterTable(device, probe));
  if (stats != nullptr) {
    stats->probe_rows_in = probe.num_rows();
    stats->probe_rows_kept = pruned.num_rows();
    stats->filter_seconds = device.ElapsedSeconds() - t0;
  }
  return pruned;
}

}  // namespace gpujoin::join
