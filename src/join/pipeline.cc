#include "join/pipeline.h"

#include <algorithm>
#include <string>
#include <utility>

#include "join/transform.h"
#include "obs/trace.h"
#include "prim/gather.h"

namespace gpujoin::join {

Result<PipelineRunResult> RunJoinPipeline(vgpu::Device& device, JoinAlgo algo,
                                          const Table& fact,
                                          const std::vector<Table>& dims,
                                          const JoinOptions& options,
                                          const PipelineResilience* resilience) {
  const int n_joins = static_cast<int>(dims.size());
  if (n_joins == 0) {
    return Status::InvalidArgument("RunJoinPipeline: no dimension tables");
  }
  if (fact.num_columns() < n_joins) {
    return Status::InvalidArgument(
        "RunJoinPipeline: fact table has fewer FK columns than dims");
  }

  PipelineRunResult res;
  obs::TraceSpan pipeline_span(device, "query",
                               std::string("pipeline:") + JoinAlgoName(algo));
  pipeline_span.Annotate("joins", std::to_string(n_joins));
  const double t0 = device.ElapsedSeconds();

  // Current fact-side tuple identifiers (initially the identity) and the
  // dimension payload columns accumulated so far.
  GPUJOIN_ASSIGN_OR_RETURN(
      auto ids, vgpu::DeviceBuffer<RowId>::Allocate(device, fact.num_rows()));
  GPUJOIN_RETURN_IF_ERROR(prim::Iota(device, &ids));
  std::vector<DeviceColumn> acc_cols;
  std::vector<std::string> acc_names;
  DeviceColumn last_key;
  std::string last_key_name;

  for (int i = 0; i < n_joins; ++i) {
    GPUJOIN_RETURN_IF_ERROR(obs::CheckLifecycle(device));
    obs::TraceSpan step_span(device, "step",
                             "join_" + std::to_string(i) + ":" + dims[i].name());
    // Materialize FK_i through the current identifiers, right before use.
    GPUJOIN_ASSIGN_OR_RETURN(DeviceColumn fk,
                             GatherColumn(device, fact.column(i), ids));

    // Assemble the probe-side relation: (FK_i, ID, P_1, ..., P_{i-1}).
    std::vector<std::string> s_names;
    std::vector<DeviceColumn> s_cols;
    s_names.push_back(fact.column_name(i));
    s_cols.push_back(std::move(fk));
    {
      // Identifiers ride as a 4-byte payload column.
      GPUJOIN_ASSIGN_OR_RETURN(
          auto id_col, DeviceColumn::Allocate(device, DataType::kInt32, ids.size()));
      for (uint64_t t = 0; t < ids.size(); ++t) {
        id_col.Set(t, static_cast<int64_t>(ids[t]));
      }
      s_names.emplace_back("fact_id");
      s_cols.push_back(std::move(id_col));
    }
    for (size_t c = 0; c < acc_cols.size(); ++c) {
      s_names.push_back(acc_names[c]);
      s_cols.push_back(std::move(acc_cols[c]));
    }
    Table s_cur =
        Table::FromColumns("pipeline_probe", std::move(s_names), std::move(s_cols));

    JoinRunResult jr;
    {
      // Per-join resilience: a failed RunJoin releases its working state
      // while `s_cur` and `dims[i]` stay resident, so a retry with more
      // partition bits sees the same inputs. Attempts are capped by both the
      // per-join budget and the backoff policy, delays are charged to the
      // simulated clock, and a retry that cannot change the plan (bits
      // already at the ceiling) stops the loop instead of spinning.
      const BackoffPolicy backoff =
          resilience != nullptr ? resilience->backoff : BackoffPolicy{};
      const int max_attempts =
          resilience != nullptr
              ? std::min(std::max(resilience->max_attempts_per_join, 1),
                         std::max(backoff.max_attempts, 1))
              : 1;
      JoinOptions jopts = options;
      const bool partitioned =
          algo == JoinAlgo::kPhjUm || algo == JoinAlgo::kPhjOm;
      for (int attempt = 1;; ++attempt) {
        Result<JoinRunResult> run = RunJoin(device, algo, dims[i], s_cur, jopts);
        if (run.ok()) {
          jr = std::move(run).value();
          break;
        }
        const bool resource =
            run.status().code() == StatusCode::kResourceExhausted ||
            run.status().code() == StatusCode::kOutOfMemory;
        if (!resource || !partitioned || attempt >= max_attempts) {
          return run.status();
        }
        const int next_bits = std::min(
            jopts.radix_bits_override <= 0 ? 8 : jopts.radix_bits_override + 2,
            16);
        if (next_bits == jopts.radix_bits_override) {
          // Bits already at the ceiling: an identical retry cannot succeed.
          return run.status();
        }
        jopts.radix_bits_override = next_bits;
        const double delay = backoff.DelayCycles(attempt);
        device.AdvanceClock(delay);
        res.degradation.push_back(
            {"retry_more_partition_bits",
             "pipeline join " + std::to_string(i) + " failed (" +
                 run.status().message() + "); retrying with radix_bits=" +
                 std::to_string(jopts.radix_bits_override) +
                 " after backoff of " + std::to_string(delay) + " cycles"});
        obs::TraceInstant(device, "degradation:retry_more_partition_bits",
                          res.degradation.back().detail);
        GPUJOIN_RETURN_IF_ERROR(obs::CheckLifecycle(device));
      }
    }
    res.per_join.push_back(jr.phases);

    // Output schema: key, dim payloads (n_dim_pay), fact_id, previous accs.
    const int n_dim_pay = dims[i].num_columns() - 1;
    acc_names.clear();
    std::vector<DeviceColumn> new_acc;
    for (int c = 1; c <= n_dim_pay; ++c) {
      acc_names.push_back(jr.output.column_name(c));
      new_acc.push_back(jr.output.TakeColumn(c));
    }
    const int id_idx = 1 + n_dim_pay;
    DeviceColumn id_col = jr.output.TakeColumn(id_idx);
    for (int c = id_idx + 1; c < jr.output.num_columns(); ++c) {
      acc_names.push_back(jr.output.column_name(c));
      new_acc.push_back(jr.output.TakeColumn(c));
    }
    acc_cols = std::move(new_acc);
    last_key = jr.output.TakeColumn(0);
    last_key_name = jr.output.column_name(0);

    // Rebuild the identifier buffer from the carried id column.
    ids.Release();
    GPUJOIN_ASSIGN_OR_RETURN(
        ids, vgpu::DeviceBuffer<RowId>::Allocate(device, id_col.size()));
    for (uint64_t t = 0; t < id_col.size(); ++t) {
      ids[t] = static_cast<RowId>(id_col.Get(t));
    }
    id_col.Release();
    res.final_rows = jr.output_rows;
  }

  // Assemble the final output table.
  std::vector<std::string> out_names;
  std::vector<DeviceColumn> out_cols;
  out_names.push_back(last_key_name);
  out_cols.push_back(std::move(last_key));
  for (size_t c = 0; c < acc_cols.size(); ++c) {
    out_names.push_back(acc_names[c]);
    out_cols.push_back(std::move(acc_cols[c]));
  }
  {
    GPUJOIN_ASSIGN_OR_RETURN(
        auto id_col, DeviceColumn::Allocate(device, DataType::kInt32, ids.size()));
    for (uint64_t t = 0; t < ids.size(); ++t) {
      id_col.Set(t, static_cast<int64_t>(ids[t]));
    }
    out_names.emplace_back("fact_id");
    out_cols.push_back(std::move(id_col));
  }
  res.output = Table::FromColumns("pipeline_result", std::move(out_names),
                                  std::move(out_cols));

  res.total_seconds = device.ElapsedSeconds() - t0;
  uint64_t input_tuples = fact.num_rows();
  for (const Table& d : dims) input_tuples += d.num_rows();
  res.throughput_tuples_per_sec =
      res.total_seconds > 0
          ? static_cast<double>(input_tuples) / res.total_seconds
          : 0;
  return res;
}

}  // namespace gpujoin::join
