// Public join API: the five join implementations the paper evaluates
// (§5.1 "Implementations"), executed end-to-end (transformation, match
// finding, materialization) on a simulated device, with the per-phase time
// breakdown and memory accounting the paper reports.
//
//   SMJ-UM  sort-merge join, unoptimized materialization (GFUR, §3.1)
//   SMJ-OM  sort-merge join, optimized materialization  (GFTR, §4.2)
//   PHJ-UM  partitioned hash join, bucket chaining       (GFUR, §3.2)
//   PHJ-OM  partitioned hash join, dense radix partition (GFTR, §4.3)
//   NPHJ    non-partitioned (global hash table) join — the cuDF baseline
//
// Conventions: column 0 of each table is the join key (4- or 8-byte int,
// non-negative); the remaining columns are payloads. The output schema is
// T(k, r_1..r_n, s_1..s_m). A relation with a single payload column takes
// the paper's "narrow" path on that side: the payload rides along the
// transform and is emitted during match finding (no materialization phase
// contribution).

#ifndef GPUJOIN_JOIN_JOIN_H_
#define GPUJOIN_JOIN_JOIN_H_

#include <array>
#include <cstdint>

#include "common/status.h"
#include "storage/table.h"
#include "vgpu/device.h"

namespace gpujoin::join {

enum class JoinAlgo {
  kSmjUm,
  kSmjOm,
  kPhjUm,
  kPhjOm,
  kNphj,
};

inline constexpr std::array<JoinAlgo, 5> kAllJoinAlgos = {
    JoinAlgo::kSmjUm, JoinAlgo::kSmjOm, JoinAlgo::kPhjUm, JoinAlgo::kPhjOm,
    JoinAlgo::kNphj};

/// "SMJ-UM", "PHJ-OM", ... (paper naming).
const char* JoinAlgoName(JoinAlgo algo);
/// Two-letter short name used in the paper's figures: SU, SO, PU, PO, NP.
const char* JoinAlgoShortName(JoinAlgo algo);

struct JoinOptions {
  /// R's keys are unique (primary keys). Affects only the charged Merge
  /// Path setup cost (§3.1); correctness is M:N in all cases.
  bool pk_fk = true;
  /// Override the partitioned joins' total radix bits (default: derived
  /// from the shared-memory hash-table capacity).
  int radix_bits_override = -1;
  /// Override the bucket size (elements) of PHJ-UM's chains.
  uint32_t bucket_elems_override = 0;
  /// GFTR ablation: transform ALL payload columns in the transformation
  /// phase (early-materialization style) instead of Algorithm 1's lazy
  /// one-column-at-a-time schedule. Same results, but all transformed
  /// payloads are resident simultaneously — more peak memory (§4.1).
  /// Ignored by the GFUR implementations and NPHJ.
  bool eager_transform = false;
};

/// Simulated seconds per phase (Figure 1 / 9 / 10 breakdowns).
struct PhaseBreakdown {
  double transform_s = 0;
  double match_s = 0;
  double materialize_s = 0;
  double total_s() const { return transform_s + match_s + materialize_s; }
};

struct JoinRunResult {
  Table output;
  PhaseBreakdown phases;
  uint64_t output_rows = 0;
  /// Peak simulated device memory during the join, including the resident
  /// input relations (Table 5).
  uint64_t peak_mem_bytes = 0;
  /// (|R| + |S|) / total simulated time — the paper's throughput metric.
  double throughput_tuples_per_sec = 0;
  /// KernelStats delta accumulated by this run (Table 4 counters for the
  /// whole query: sector efficiency, L2 hit rate, DRAM traffic).
  vgpu::KernelStats stats;
};

/// Runs an inner equi-join of r and s (on column 0 of each) end-to-end.
/// Requirements: key columns have the same type; keys are non-negative.
Result<JoinRunResult> RunJoin(vgpu::Device& device, JoinAlgo algo, const Table& r,
                              const Table& s, const JoinOptions& options = {});

}  // namespace gpujoin::join

#endif  // GPUJOIN_JOIN_JOIN_H_
