// Fused join + grouped aggregation — the combined operator the target
// paper's title puts side by side. The fusion applied here is *early
// projection*: only the columns the aggregation actually references (the
// group key and the aggregate inputs) are materialized out of the join;
// unreferenced payload columns are never transformed, gathered, or written.
// For the common analytics pattern "join a wide fact table, aggregate one
// measure", this removes most of the materialization that Figures 1/10
// show dominating the join.

#ifndef GPUJOIN_JOIN_JOIN_AGGREGATE_H_
#define GPUJOIN_JOIN_JOIN_AGGREGATE_H_

#include <vector>

#include "common/status.h"
#include "groupby/groupby.h"
#include "join/join.h"
#include "storage/table.h"
#include "vgpu/device.h"

namespace gpujoin::join {

/// A column of one of the join inputs.
struct JoinColumnRef {
  enum class Side { kR, kS };
  Side side = Side::kR;
  /// Column index within that input table. 0 is the join key.
  int column = 0;
};

struct JoinAggregateSpec {
  /// The grouping attribute.
  JoinColumnRef group_by;
  struct Aggregate {
    JoinColumnRef column;  // Ignored for kCount.
    groupby::AggOp op = groupby::AggOp::kSum;
  };
  std::vector<Aggregate> aggregates;
};

struct JoinAggregateRunResult {
  /// Output schema: group key, then one int64 column per aggregate.
  Table output;
  uint64_t join_rows = 0;   // Cardinality of the (unmaterialized) join.
  uint64_t num_groups = 0;
  double join_seconds = 0;      // Simulated, join incl. projected materialization.
  double aggregate_seconds = 0; // Simulated, aggregation.
};

/// Runs SELECT group, agg1, ... FROM r JOIN s ON r.key = s.key GROUP BY
/// group — materializing only the referenced columns.
Result<JoinAggregateRunResult> RunJoinAggregate(vgpu::Device& device,
                                                JoinAlgo join_algo,
                                                groupby::GroupByAlgo agg_algo,
                                                const Table& r, const Table& s,
                                                const JoinAggregateSpec& spec,
                                                const JoinOptions& options = {});

}  // namespace gpujoin::join

#endif  // GPUJOIN_JOIN_JOIN_AGGREGATE_H_
