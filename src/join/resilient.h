// Resilient join execution: RunJoinResilient wraps RunJoin with a
// degradation ladder so a device-resident OOM (real or injected) degrades a
// query instead of failing it outright:
//
//   1. In-memory attempt with the caller's options.
//   2. For the radix-partitioned implementations, bounded retries with more
//      partition bits (smaller per-partition working state).
//   3. Out-of-core fallback: host-side radix fragmentation with derived
//      fragment_bits, escalated on repeated failure.
//   4. A clean structured ResourceExhausted error carrying the full
//      degradation log.
//
// Every failed attempt must leave the device exactly as it found it: the
// wrapper verifies the live-byte watermark after each failure and turns a
// leak into an Internal error (the leak-audit contract of vgpu::Device).

#ifndef GPUJOIN_JOIN_RESILIENT_H_
#define GPUJOIN_JOIN_RESILIENT_H_

#include <cstdint>
#include <vector>

#include "common/resilience.h"
#include "common/status.h"
#include "join/join.h"
#include "storage/table.h"
#include "vgpu/device.h"

namespace gpujoin::join {

struct ResilienceOptions {
  /// Base options for every in-memory attempt (the retry ladder only bumps
  /// radix_bits_override on top of these).
  JoinOptions join;
  /// Total attempt budget across the whole ladder (first try included).
  int max_attempts = 4;
  /// Rung 3: fall back to RunOutOfCoreJoin when in-memory attempts fail.
  bool allow_out_of_core = true;
  /// Device-memory budget fraction for the out-of-core fallback.
  double device_budget_fraction = 0.2;
  /// Delay schedule between ladder attempts, charged to the simulated clock
  /// (deterministic; see BackoffPolicy). max_attempts above remains the
  /// attempt budget — the policy only paces the retries.
  BackoffPolicy backoff;
};

struct ResilientJoinResult {
  HostTable output;
  uint64_t output_rows = 0;
  /// Attempts consumed (1 = first try succeeded, no degradation).
  int attempts = 0;
  bool used_out_of_core = false;
  /// One entry per ladder step taken; empty on a clean first-attempt run.
  std::vector<DegradationStep> degradation;
  /// Simulated device seconds across all attempts (failed ones included).
  double device_seconds = 0;
};

/// Joins host tables r and s (keys in column 0), degrading along the ladder
/// above instead of failing on ResourceExhausted/OutOfMemory. Non-resource
/// errors (bad inputs, internal faults) propagate immediately.
Result<ResilientJoinResult> RunJoinResilient(vgpu::Device& device,
                                             JoinAlgo algo, const HostTable& r,
                                             const HostTable& s,
                                             const ResilienceOptions& options = {});

}  // namespace gpujoin::join

#endif  // GPUJOIN_JOIN_RESILIENT_H_
