// Greedy join-order selection for multi-join pipelines (the Figure 16
// setting): when dimension joins are selective (match ratio < 1), executing
// the most selective joins first shrinks the carried fact side early and
// every later join transforms and materializes fewer tuples. Selectivities
// are estimated by sampling (stats::EstimateMatchRatio), as a real
// optimizer would.

#ifndef GPUJOIN_JOIN_JOIN_ORDER_H_
#define GPUJOIN_JOIN_JOIN_ORDER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "join/pipeline.h"
#include "storage/table.h"
#include "vgpu/device.h"

namespace gpujoin::join {

struct JoinOrderDecision {
  /// Dimension indexes in execution order (most selective first).
  std::vector<int> order;
  /// Estimated fraction of fact tuples surviving each dimension's join,
  /// indexed by ORIGINAL dimension position.
  std::vector<double> selectivity;

  std::string Explain() const;
};

/// Estimates per-dimension selectivities (dims[i] joins fact column i) and
/// returns the greedy most-selective-first order.
Result<JoinOrderDecision> ChooseJoinOrder(vgpu::Device& device, const Table& fact,
                                          const std::vector<Table>& dims);

/// Runs the pipeline in the optimizer-chosen order. Results equal the
/// as-given order (inner joins commute); only the execution cost differs.
Result<PipelineRunResult> RunOrderedJoinPipeline(vgpu::Device& device,
                                                 JoinAlgo algo, const Table& fact,
                                                 const std::vector<Table>& dims,
                                                 const JoinOrderDecision& decision,
                                                 const JoinOptions& options = {});

}  // namespace gpujoin::join

#endif  // GPUJOIN_JOIN_JOIN_ORDER_H_
