// Transformation-phase helpers shared by the join drivers: out-of-place
// sort/partition of a (key, value) column pair, leaving the source relation
// untouched (it is still needed by GFUR materialization), plus typed
// column gather utilities.

#ifndef GPUJOIN_JOIN_TRANSFORM_H_
#define GPUJOIN_JOIN_TRANSFORM_H_

#include <algorithm>
#include <utility>
#include <vector>

#include "common/bit_util.h"
#include "common/status.h"
#include "prim/gather.h"
#include "prim/radix_partition.h"
#include "storage/column.h"
#include "vgpu/buffer.h"
#include "vgpu/device.h"

namespace gpujoin::join {

/// How a relation is transformed before match finding.
enum class TransformKind {
  kSort,       // SORT-PAIRS: full-key-width LSD radix sort (SMJ).
  kPartition,  // RADIX-PARTITION: low `radix_bits` only (PHJ-OM).
};

/// Out-of-place stable radix transform of (src_keys, src_vals) into
/// (*out_keys, *out_vals): sorts by the full key width (kSort) or groups by
/// the low total_bits (kPartition). Temp ping-pong buffers (the paper's M_t)
/// are allocated and freed inside.
///
/// discard_keys: the caller never reads the transformed keys (Algorithm 1's
/// materialization re-transform) — the final pass skips writing them, which
/// trims a key-column from the peak footprint. *out_keys is left empty when
/// the optimization elides the buffer entirely (two-pass partitions).
template <typename K, typename V>
Status TransformPairOutOfPlace(vgpu::Device& device,
                               const vgpu::DeviceBuffer<K>& src_keys,
                               const vgpu::DeviceBuffer<V>& src_vals,
                               vgpu::DeviceBuffer<K>* out_keys,
                               vgpu::DeviceBuffer<V>* out_vals,
                               TransformKind kind, int radix_bits,
                               bool discard_keys = false) {
  const uint64_t n = src_keys.size();
  if (src_vals.size() != n) {
    return Status::InvalidArgument("TransformPairOutOfPlace: size mismatch");
  }
  const int total_bits =
      kind == TransformKind::kSort ? static_cast<int>(sizeof(K)) * 8 : radix_bits;
  if (total_bits < 1) {
    return Status::InvalidArgument("TransformPairOutOfPlace: bits < 1");
  }
  const int passes = static_cast<int>(bit_util::CeilDiv(
      static_cast<uint64_t>(total_bits), prim::kMaxRadixBitsPerPass));
  std::vector<int> widths(passes, total_bits / passes);
  for (int i = 0; i < total_bits % passes; ++i) ++widths[i];

  GPUJOIN_ASSIGN_OR_RETURN(*out_vals, vgpu::DeviceBuffer<V>::Allocate(device, n));
  if (passes == 1) {
    if (discard_keys) {
      return prim::RadixPartitionPass<K, V>(device, src_keys, src_vals, nullptr,
                                            out_vals, 0, widths[0]);
    }
    GPUJOIN_ASSIGN_OR_RETURN(*out_keys,
                             vgpu::DeviceBuffer<K>::Allocate(device, n));
    return prim::RadixPartitionPass(device, src_keys, src_vals, out_keys,
                                    out_vals, 0, widths[0]);
  }
  if (passes == 2 && discard_keys) {
    // src -> (A_k, A_v) -> vals-only final pass into out_vals; the
    // transformed key buffer for the final pass is never materialized.
    GPUJOIN_ASSIGN_OR_RETURN(auto keys_a, vgpu::DeviceBuffer<K>::Allocate(device, n));
    GPUJOIN_ASSIGN_OR_RETURN(auto vals_a, vgpu::DeviceBuffer<V>::Allocate(device, n));
    GPUJOIN_RETURN_IF_ERROR(prim::RadixPartitionPass(
        device, src_keys, src_vals, &keys_a, &vals_a, 0, widths[0]));
    return prim::RadixPartitionPass<K, V>(device, keys_a, vals_a, nullptr,
                                          out_vals, widths[0], widths[1]);
  }
  // Multi-pass: first pass src -> out, then ping-pong out <-> tmp; a final
  // pointer swap (free on real hardware) puts the result in out. With
  // discard_keys, the final pass skips the key stores (same buffers).
  GPUJOIN_ASSIGN_OR_RETURN(*out_keys, vgpu::DeviceBuffer<K>::Allocate(device, n));
  GPUJOIN_ASSIGN_OR_RETURN(auto keys_tmp, vgpu::DeviceBuffer<K>::Allocate(device, n));
  GPUJOIN_ASSIGN_OR_RETURN(auto vals_tmp, vgpu::DeviceBuffer<V>::Allocate(device, n));
  GPUJOIN_RETURN_IF_ERROR(prim::RadixPartitionPass(device, src_keys, src_vals,
                                                   out_keys, out_vals, 0,
                                                   widths[0]));
  vgpu::DeviceBuffer<K>* ka = out_keys;
  vgpu::DeviceBuffer<V>* va = out_vals;
  vgpu::DeviceBuffer<K>* kb = &keys_tmp;
  vgpu::DeviceBuffer<V>* vb = &vals_tmp;
  int bit_lo = widths[0];
  for (int p = 1; p < passes; ++p) {
    const bool last = (p == passes - 1);
    GPUJOIN_RETURN_IF_ERROR(prim::RadixPartitionPass(
        device, *ka, *va, (last && discard_keys) ? nullptr : kb, vb, bit_lo,
        widths[p]));
    bit_lo += widths[p];
    std::swap(ka, kb);
    std::swap(va, vb);
  }
  if (ka != out_keys) {
    std::swap(*out_keys, keys_tmp);
    std::swap(*out_vals, vals_tmp);
  }
  if (discard_keys) {
    out_keys->Release();
    keys_tmp.Release();
  }
  return Status::OK();
}

/// Visits the typed buffer inside a DeviceColumn.
template <typename Fn>
auto VisitColumn(const DeviceColumn& col, Fn&& fn) {
  if (col.type() == DataType::kInt32) return fn(col.i32());
  return fn(col.i64());
}
template <typename Fn>
auto VisitColumnMut(DeviceColumn& col, Fn&& fn) {
  if (col.type() == DataType::kInt32) return fn(col.i32());
  return fn(col.i64());
}

/// Transforms (src_keys, payload column) out of place. The transformed
/// payload is returned as a DeviceColumn of the same type; *t_keys gets the
/// transformed keys.
template <typename K>
Result<DeviceColumn> TransformKeyPayload(vgpu::Device& device,
                                         const vgpu::DeviceBuffer<K>& src_keys,
                                         const DeviceColumn& payload,
                                         vgpu::DeviceBuffer<K>* t_keys,
                                         TransformKind kind, int radix_bits,
                                         bool discard_keys = false) {
  if (payload.type() == DataType::kInt32) {
    vgpu::DeviceBuffer<int32_t> t_payload;
    GPUJOIN_RETURN_IF_ERROR(TransformPairOutOfPlace(device, src_keys,
                                                    payload.i32(), t_keys,
                                                    &t_payload, kind,
                                                    radix_bits, discard_keys));
    return DeviceColumn::WrapI32(std::move(t_payload));
  }
  vgpu::DeviceBuffer<int64_t> t_payload;
  GPUJOIN_RETURN_IF_ERROR(TransformPairOutOfPlace(device, src_keys,
                                                  payload.i64(), t_keys,
                                                  &t_payload, kind, radix_bits,
                                                  discard_keys));
  return DeviceColumn::WrapI64(std::move(t_payload));
}

/// Gathers src[map[i]] into an existing column (same type, size == map size).
inline Status GatherColumnInto(vgpu::Device& device, const DeviceColumn& src,
                               const vgpu::DeviceBuffer<RowId>& map,
                               DeviceColumn* out) {
  if (out->type() != src.type() || out->size() != map.size()) {
    return Status::InvalidArgument("GatherColumnInto: shape mismatch");
  }
  if (src.type() == DataType::kInt32) {
    return prim::Gather(device, src.i32(), map, &out->i32());
  }
  return prim::Gather(device, src.i64(), map, &out->i64());
}

/// Gathers src[map[i]] into a fresh column of src's type.
inline Result<DeviceColumn> GatherColumn(vgpu::Device& device,
                                         const DeviceColumn& src,
                                         const vgpu::DeviceBuffer<RowId>& map) {
  if (src.type() == DataType::kInt32) {
    GPUJOIN_ASSIGN_OR_RETURN(
        auto out, vgpu::DeviceBuffer<int32_t>::Allocate(device, map.size()));
    GPUJOIN_RETURN_IF_ERROR(prim::Gather(device, src.i32(), map, &out));
    return DeviceColumn::WrapI32(std::move(out));
  }
  GPUJOIN_ASSIGN_OR_RETURN(
      auto out, vgpu::DeviceBuffer<int64_t>::Allocate(device, map.size()));
  GPUJOIN_RETURN_IF_ERROR(prim::Gather(device, src.i64(), map, &out));
  return DeviceColumn::WrapI64(std::move(out));
}

/// Number of radix bits for the partitioned hash joins: enough bits that the
/// average build partition fits the shared-memory hash table, clamped to the
/// paper's 16-bit two-invocation budget.
template <typename K>
int ChoosePartitionBits(uint64_t build_rows, uint64_t capacity) {
  if (build_rows <= capacity) return 1;
  int bits = bit_util::Log2Ceil(bit_util::CeilDiv(build_rows, capacity));
  return std::clamp(bits, 1, 16);
}

}  // namespace gpujoin::join

#endif  // GPUJOIN_JOIN_TRANSFORM_H_
