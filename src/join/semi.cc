#include "join/semi.h"

#include <vector>

#include "common/bit_util.h"
#include "join/transform.h"
#include "prim/bucket_chain.h"
#include "prim/gather.h"
#include "prim/hash_join.h"
#include "prim/match.h"
#include "prim/merge_join.h"

namespace gpujoin::join {

namespace {

template <typename K>
Result<SemiJoinRunResult> SemiJoinDriver(vgpu::Device& device, JoinAlgo algo,
                                         const Table& r, const Table& s,
                                         SemiJoinType type,
                                         const JoinOptions& opts) {
  const vgpu::DeviceBuffer<K>* r_keys_ptr;
  const vgpu::DeviceBuffer<K>* s_keys_ptr;
  if constexpr (sizeof(K) == 4) {
    r_keys_ptr = &r.column(0).i32();
    s_keys_ptr = &s.column(0).i32();
  } else {
    r_keys_ptr = &r.column(0).i64();
    s_keys_ptr = &s.column(0).i64();
  }
  const vgpu::DeviceBuffer<K>& r_keys = *r_keys_ptr;
  const vgpu::DeviceBuffer<K>& s_keys = *s_keys_ptr;

  const uint64_t capacity = prim::SharedHashCapacity<K>(device);
  int radix_bits = opts.radix_bits_override > 0
                       ? opts.radix_bits_override
                       : ChoosePartitionBits<K>(r.num_rows(), capacity);
  radix_bits = std::min(radix_bits, 16);
  const uint32_t bucket_elems =
      opts.bucket_elems_override > 0
          ? opts.bucket_elems_override
          : static_cast<uint32_t>(std::min<uint64_t>(capacity, 4096));

  SemiJoinRunResult res;
  const double t0 = device.ElapsedSeconds();

  // --- Transform (match-finding machinery only; S carries its row ids) ---
  vgpu::DeviceBuffer<K> tr_keys, ts_keys;
  vgpu::DeviceBuffer<RowId> tr_ids, ts_ids;
  std::vector<uint64_t> r_off, s_off;
  std::optional<prim::BucketChainLayout<K>> r_bc, s_bc;
  vgpu::DeviceBuffer<RowId> r_bc_ids, s_bc_ids;
  const bool is_smj = algo == JoinAlgo::kSmjUm || algo == JoinAlgo::kSmjOm;

  if (algo == JoinAlgo::kPhjUm) {
    GPUJOIN_ASSIGN_OR_RETURN(
        auto rl, prim::BuildBucketChainLayout(
                     device, r_keys, std::min(8, std::max(1, (radix_bits + 1) / 2)),
                     std::min(8, radix_bits - (radix_bits + 1) / 2), bucket_elems));
    GPUJOIN_ASSIGN_OR_RETURN(
        auto sl, prim::BuildBucketChainLayout(
                     device, s_keys, std::min(8, std::max(1, (radix_bits + 1) / 2)),
                     std::min(8, radix_bits - (radix_bits + 1) / 2), bucket_elems));
    GPUJOIN_ASSIGN_OR_RETURN(
        auto ids, vgpu::DeviceBuffer<RowId>::Allocate(device, s.num_rows()));
    GPUJOIN_RETURN_IF_ERROR(prim::Iota(device, &ids));
    GPUJOIN_ASSIGN_OR_RETURN(s_bc_ids,
                             prim::ApplyBucketChainToValues(device, sl, ids));
    r_bc.emplace(std::move(rl));
    s_bc.emplace(std::move(sl));
  } else if (algo != JoinAlgo::kNphj) {
    const TransformKind tkind =
        is_smj ? TransformKind::kSort : TransformKind::kPartition;
    GPUJOIN_ASSIGN_OR_RETURN(
        auto r_ids, vgpu::DeviceBuffer<RowId>::Allocate(device, r.num_rows()));
    GPUJOIN_RETURN_IF_ERROR(prim::Iota(device, &r_ids));
    GPUJOIN_RETURN_IF_ERROR(TransformPairOutOfPlace(
        device, r_keys, r_ids, &tr_keys, &tr_ids, tkind, radix_bits));
    GPUJOIN_ASSIGN_OR_RETURN(
        auto s_ids, vgpu::DeviceBuffer<RowId>::Allocate(device, s.num_rows()));
    GPUJOIN_RETURN_IF_ERROR(prim::Iota(device, &s_ids));
    GPUJOIN_RETURN_IF_ERROR(TransformPairOutOfPlace(
        device, s_keys, s_ids, &ts_keys, &ts_ids, tkind, radix_bits));
    if (algo == JoinAlgo::kPhjOm) {
      GPUJOIN_RETURN_IF_ERROR(
          prim::ComputePartitionOffsets(device, tr_keys, radix_bits, &r_off));
      GPUJOIN_RETURN_IF_ERROR(
          prim::ComputePartitionOffsets(device, ts_keys, radix_bits, &s_off));
    }
  }
  const double t1 = device.ElapsedSeconds();
  res.phases.transform_s = t1 - t0;

  // --- Match finding + flag construction over original S row ids ---
  prim::MatchResult<K> match;
  switch (algo) {
    case JoinAlgo::kSmjUm:
    case JoinAlgo::kSmjOm: {
      GPUJOIN_ASSIGN_OR_RETURN(
          match, prim::MergeJoinSorted(device, tr_keys, ts_keys, opts.pk_fk));
      break;
    }
    case JoinAlgo::kPhjOm: {
      GPUJOIN_ASSIGN_OR_RETURN(
          match, prim::HashJoinCoPartitioned(device, tr_keys, ts_keys, r_off,
                                             s_off, capacity));
      break;
    }
    case JoinAlgo::kPhjUm: {
      GPUJOIN_ASSIGN_OR_RETURN(
          match, prim::HashJoinBucketChains(device, *r_bc, *s_bc, capacity));
      break;
    }
    case JoinAlgo::kNphj: {
      GPUJOIN_ASSIGN_OR_RETURN(match,
                               prim::HashJoinGlobal(device, r_keys, s_keys));
      break;
    }
  }

  // Scatter match flags into an |S|-sized vector indexed by ORIGINAL row id.
  GPUJOIN_ASSIGN_OR_RETURN(
      auto flags, vgpu::DeviceBuffer<uint8_t>::Allocate(device, s.num_rows()));
  {
    vgpu::KernelScope ks(device, "semi_flag_scatter");
    const int warp = device.config().warp_size;
    uint64_t addrs[32];
    const uint64_t m = match.count();
    device.LoadSeq(match.s_pos.addr(), m, sizeof(RowId));
    for (uint64_t i = 0; i < m; i += warp) {
      const uint32_t lanes = static_cast<uint32_t>(std::min<uint64_t>(warp, m - i));
      for (uint32_t l = 0; l < lanes; ++l) {
        const RowId pos = match.s_pos[i + l];
        RowId orig;
        if (algo == JoinAlgo::kNphj) {
          orig = pos;  // Global hash join emits original positions.
        } else if (algo == JoinAlgo::kPhjUm) {
          orig = s_bc_ids[pos];
        } else {
          orig = ts_ids[pos];
        }
        flags[orig] = 1;
        addrs[l] = flags.addr(orig);
      }
      device.Store({addrs, lanes}, 1);
    }
  }
  match.keys.Release();
  match.r_pos.Release();
  match.s_pos.Release();
  tr_keys.Release();
  ts_keys.Release();
  tr_ids.Release();
  ts_ids.Release();
  s_bc_ids.Release();
  if (r_bc.has_value()) r_bc->keys.Release();
  if (s_bc.has_value()) s_bc->keys.Release();
  const double t2 = device.ElapsedSeconds();
  res.phases.match_s = t2 - t1;

  // --- Compaction: ascending surviving row ids, then clustered gathers ---
  const uint8_t want = type == SemiJoinType::kSemi ? 1 : 0;
  std::vector<RowId> survivors;
  {
    vgpu::KernelScope ks(device, "semi_compact");
    device.LoadSeq(flags.addr(), flags.size(), 1);
    for (uint64_t i = 0; i < flags.size(); ++i) {
      if (flags[i] == want) survivors.push_back(static_cast<RowId>(i));
    }
    device.Compute(bit_util::CeilDiv(flags.size(), device.config().warp_size));
  }
  GPUJOIN_ASSIGN_OR_RETURN(
      auto map, vgpu::DeviceBuffer<RowId>::FromHost(device, survivors));
  {
    vgpu::KernelScope ks(device, "semi_write_map");
    device.StoreSeq(map.addr(), map.size(), sizeof(RowId));
  }
  std::vector<std::string> names;
  std::vector<DeviceColumn> cols;
  for (int c = 0; c < s.num_columns(); ++c) {
    GPUJOIN_ASSIGN_OR_RETURN(DeviceColumn col,
                             GatherColumn(device, s.column(c), map));
    names.push_back(s.column_name(c));
    cols.push_back(std::move(col));
  }
  res.output = Table::FromColumns(
      type == SemiJoinType::kSemi ? "semi_join_result" : "anti_join_result",
      std::move(names), std::move(cols));
  res.output_rows = survivors.size();
  res.phases.materialize_s = device.ElapsedSeconds() - t2;
  return res;
}

}  // namespace

Result<SemiJoinRunResult> RunSemiJoin(vgpu::Device& device, JoinAlgo algo,
                                      const Table& r, const Table& s,
                                      SemiJoinType type,
                                      const JoinOptions& options) {
  if (r.num_columns() < 1 || s.num_columns() < 1 || r.num_rows() == 0 ||
      s.num_rows() == 0) {
    return Status::InvalidArgument("RunSemiJoin: bad inputs");
  }
  if (r.column(0).type() != s.column(0).type()) {
    return Status::InvalidArgument("RunSemiJoin: key types differ");
  }
  if (r.column(0).type() == DataType::kInt32) {
    return SemiJoinDriver<int32_t>(device, algo, r, s, type, options);
  }
  return SemiJoinDriver<int64_t>(device, algo, r, s, type, options);
}

}  // namespace gpujoin::join
