// Bloom-filter sideways information passing (SIP). The paper's related-work
// discussion (§6, Shrinivas et al. / Bandle et al.) notes that early
// materialization with SIP wins for low-match-ratio joins: a compact filter
// built from the build side's keys prunes probe-side tuples *before* the
// join, so the transform and materialization only ever touch survivors.
//
// BuildBloomFilter streams R's keys once; FilterByBloom compacts S through
// the filter (two streaming passes + clustered gathers). Combine with any
// join implementation: join(R, FilterByBloom(R, S)) == join(R, S) because
// the Bloom filter has no false negatives.

#ifndef GPUJOIN_JOIN_BLOOM_FILTER_H_
#define GPUJOIN_JOIN_BLOOM_FILTER_H_

#include <cstdint>

#include "common/status.h"
#include "storage/table.h"
#include "vgpu/buffer.h"
#include "vgpu/device.h"

namespace gpujoin::join {

class BloomFilter {
 public:
  /// Builds a blocked Bloom filter (two hash probes per key) sized at
  /// `bits_per_key` bits per distinct key, from column 0 of `build`.
  static Result<BloomFilter> Build(vgpu::Device& device, const Table& build,
                                   int bits_per_key = 10);

  /// Membership test (no false negatives; false-positive rate ~ 2-3% at
  /// 10 bits/key with 2 probes).
  bool MightContain(int64_t key) const;

  uint64_t size_bits() const { return words_.size() * 64; }

  /// Compacts `probe` to the rows whose key might be in the filter
  /// (ascending row order => clustered gathers).
  Result<Table> FilterTable(vgpu::Device& device, const Table& probe) const;

 private:
  vgpu::DeviceBuffer<uint64_t> words_;
  uint64_t mask_ = 0;  // size_bits - 1 (power of two).
};

struct SipJoinStats {
  uint64_t probe_rows_in = 0;
  uint64_t probe_rows_kept = 0;
  double filter_seconds = 0;  // Simulated build + compaction time.
};

/// Applies SIP ahead of a join: returns the pruned probe table and fills
/// `stats`. The caller then joins build with the pruned table.
Result<Table> SipPruneProbeSide(vgpu::Device& device, const Table& build,
                                const Table& probe, SipJoinStats* stats,
                                int bits_per_key = 10);

}  // namespace gpujoin::join

#endif  // GPUJOIN_JOIN_BLOOM_FILTER_H_
