// Join-algorithm selection heuristics — the decision trees of Figure 18,
// distilled from the paper's §5.4 summary:
//
//  * Partitioned hash joins dominate sort-merge joins everywhere
//    (partitioning needs 2 RADIX-PARTITION invocations per column where
//    sorting needs 4, while both make match finding equally efficient).
//  * For narrow joins and low-match-ratio joins, materialization is cheap,
//    so the GFUR bucket-chain variant (PHJ-UM) wins — unless the foreign
//    keys are skewed, where bucket chaining collapses and PHJ-OM's
//    skew-robust RADIX-PARTITION takes over.
//  * For wide joins with a high match ratio, the GFTR variants (*-OM) win;
//    PHJ-OM is the overall choice, and stays ahead even with 8-byte types.
//  * Within the sort-merge family (Figure 18b), SMJ-OM pays off only when
//    materialization dominates AND the sorted data is mostly 4-byte.

#ifndef GPUJOIN_JOIN_PLANNER_H_
#define GPUJOIN_JOIN_PLANNER_H_

#include <cstdint>
#include <string>

#include "join/join.h"
#include "storage/table.h"

namespace gpujoin::join {

/// Workload features available to an optimizer (cardinalities + estimates).
struct JoinFeatures {
  uint64_t r_rows = 0;
  uint64_t s_rows = 0;
  int r_payload_cols = 0;
  int s_payload_cols = 0;
  /// Estimated fraction of S tuples with a join partner.
  double match_ratio = 1.0;
  /// Estimated Zipf factor of the foreign-key distribution (0 = uniform).
  double zipf_theta = 0.0;
  bool keys_8byte = false;
  bool payloads_8byte = false;

  bool narrow() const { return r_payload_cols <= 1 && s_payload_cols <= 1; }

  /// Derives the static features from device tables (estimates default to
  /// uniform 100% match; callers refine them from statistics).
  static JoinFeatures FromTables(const Table& r, const Table& s);
};

/// Figure 18a: picks among all four partitioned/sort-merge implementations.
JoinAlgo ChooseJoinAlgo(const JoinFeatures& f);

/// Figure 18b: within the sort-merge family only.
JoinAlgo ChooseSortMergeVariant(const JoinFeatures& f);

/// One-line explanation of the decision path taken (for logs/examples).
std::string ExplainChoice(const JoinFeatures& f);

}  // namespace gpujoin::join

#endif  // GPUJOIN_JOIN_PLANNER_H_
