#include "join/resilient.h"

#include <algorithm>
#include <string>
#include <utility>

#include "join/out_of_core.h"
#include "join/transform.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "prim/hash_join.h"

namespace gpujoin::join {

namespace {

/// Errors the ladder may absorb; everything else propagates immediately.
bool IsResourceFailure(const Status& st) {
  return st.code() == StatusCode::kResourceExhausted ||
         st.code() == StatusCode::kOutOfMemory;
}

/// Transient faults (injected kernel fault, watchdog timeout): the same
/// work is expected to succeed on retry, so the ladder re-runs the current
/// rung instead of escalating.
bool IsTransientFailure(const Status& st) { return st.IsUnavailable(); }

bool IsRadixPartitioned(JoinAlgo algo) {
  return algo == JoinAlgo::kPhjUm || algo == JoinAlgo::kPhjOm;
}

/// A failed attempt must roll the device back to its entry watermark; a
/// mismatch is a leak (or double free) in the error path and is promoted to
/// an Internal error — degrading further would hide it.
Status VerifyCleanRollback(vgpu::Device& device, uint64_t baseline_live) {
  const uint64_t live = device.memory_stats().live_bytes;
  obs::MetricsRegistry::Global().CounterAdd(
      "vgpu_leak_check_total",
      {{"op", "join"}, {"outcome", live == baseline_live ? "clean" : "leak"}});
  if (live != baseline_live) {
    return Status::Internal(
        "RunJoinResilient: failed attempt left " + std::to_string(live) +
        " live bytes (entry watermark " + std::to_string(baseline_live) +
        ")\n" + device.LeakReport());
  }
  return Status::OK();
}

/// The partition-bit count attempt 1 would use, mirroring JoinDriver's
/// sizing so the retry rung escalates from the actual starting point.
int InitialPartitionBits(const vgpu::Device& device, const HostTable& r,
                         const JoinOptions& opts) {
  if (opts.radix_bits_override > 0) {
    return std::min(opts.radix_bits_override, 16);
  }
  const uint64_t capacity = r.columns[0].type == DataType::kInt32
                                ? prim::SharedHashCapacity<int32_t>(device)
                                : prim::SharedHashCapacity<int64_t>(device);
  return ChoosePartitionBits<int64_t>(r.num_rows(), capacity);
}

/// One full in-memory attempt: upload, join, download. All device state is
/// released on exit (success or failure) by the RAII tables.
Status AttemptInMemory(vgpu::Device& device, JoinAlgo algo, const HostTable& r,
                       const HostTable& s, const JoinOptions& opts,
                       ResilientJoinResult* res) {
  GPUJOIN_ASSIGN_OR_RETURN(Table rd, Table::FromHost(device, r));
  GPUJOIN_ASSIGN_OR_RETURN(Table sd, Table::FromHost(device, s));
  GPUJOIN_ASSIGN_OR_RETURN(JoinRunResult jr, RunJoin(device, algo, rd, sd, opts));
  res->output = jr.output.ToHost();
  res->output_rows = jr.output_rows;
  return Status::OK();
}

}  // namespace

Result<ResilientJoinResult> RunJoinResilient(vgpu::Device& device,
                                             JoinAlgo algo, const HostTable& r,
                                             const HostTable& s,
                                             const ResilienceOptions& options) {
  if (options.max_attempts < 1) {
    return Status::InvalidArgument("RunJoinResilient: max_attempts must be >= 1");
  }
  if (r.columns.empty() || s.columns.empty()) {
    return Status::InvalidArgument("RunJoinResilient: tables need a key column");
  }

  ResilientJoinResult res;
  obs::TraceSpan query_span(
      device, "query", std::string("resilient_join:") + JoinAlgoName(algo));
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  const uint64_t baseline_live = device.memory_stats().live_bytes;
  const uint64_t faults0 = device.memory_stats().injected_failures;
  // A query that completes despite injected allocation faults survived
  // them; recorded on the success paths only.
  const uint64_t kfaults0 =
      device.fault_injector().injected_kernel_faults() +
      device.watchdog_trips();
  const auto record_survived = [&] {
    const uint64_t absorbed =
        device.memory_stats().injected_failures - faults0;
    if (absorbed > 0) {
      reg.CounterAdd("vgpu_faults_survived_total", {{"op", "join"}}, absorbed);
    }
    const uint64_t kernel_absorbed =
        device.fault_injector().injected_kernel_faults() +
        device.watchdog_trips() - kfaults0;
    if (kernel_absorbed > 0) {
      reg.CounterAdd("vgpu_kernel_faults_survived_total", {{"op", "join"}},
                     kernel_absorbed);
    }
  };
  const double t0 = device.ElapsedSeconds();
  int attempt = 0;
  int transient_retries = 0;
  Status last_error = Status::OK();

  // Transient rung, shared by every ladder level: a kUnavailable attempt
  // unwinds cleanly, clears the device's sticky fault, waits a seeded
  // backoff, and re-runs the SAME rung (no escalation — the work fits, the
  // backend hiccuped). Returns true to retry; propagates the fault once
  // the transient budget is spent so the service layer can hedge backends.
  const auto try_absorb_transient = [&](const Status& st) -> Result<bool> {
    if (!IsTransientFailure(st)) return false;
    obs::TraceInstant(device, "transient_fault", st.message());
    reg.CounterAdd("resilient_transient_faults_total", {{"op", "join"}});
    GPUJOIN_RETURN_IF_ERROR(VerifyCleanRollback(device, baseline_live));
    device.ClearTransientFault();
    ++transient_retries;
    if (transient_retries >= options.backoff.max_attempts) {
      return Status::Unavailable(
          st.message() + " (attempt " + std::to_string(transient_retries) +
          "; ladder transient-retry budget exhausted)");
    }
    device.AdvanceClock(options.backoff.DelayCycles(transient_retries));
    GPUJOIN_RETURN_IF_ERROR(obs::CheckLifecycle(device));
    res.degradation.push_back(
        {"transient_retry",
         "transient fault (" + st.message() + "); retrying same rung, retry " +
             std::to_string(transient_retries)});
    obs::TraceInstant(device, "degradation:transient_retry",
                      res.degradation.back().detail);
    reg.CounterAdd("resilient_degradations_total",
                   {{"op", "join"}, {"action", "transient_retry"}});
    return true;
  };

  // Rungs 1 + 2: in-memory attempts, escalating partition bits while the
  // algorithm can use them.
  int bits = InitialPartitionBits(device, r, options.join);
  JoinOptions jopts = options.join;
  while (attempt < options.max_attempts) {
    ++attempt;
    Status st;
    {
      obs::TraceSpan attempt_span(device, "attempt",
                                  "in_memory_" + std::to_string(attempt));
      st = AttemptInMemory(device, algo, r, s, jopts, &res);
    }
    if (st.ok()) {
      res.attempts = attempt;
      res.device_seconds = device.ElapsedSeconds() - t0;
      record_survived();
      return res;
    }
    {
      GPUJOIN_ASSIGN_OR_RETURN(const bool retry_rung, try_absorb_transient(st));
      if (retry_rung) {
        --attempt;  // Transient retries do not consume ladder attempts.
        continue;
      }
    }
    if (!IsResourceFailure(st)) return st;
    obs::TraceInstant(device, "resource_failure", st.message());
    reg.CounterAdd("resilient_resource_failures_total", {{"op", "join"}});
    GPUJOIN_RETURN_IF_ERROR(VerifyCleanRollback(device, baseline_live));
    last_error = st;

    if (!IsRadixPartitioned(algo) || bits >= 16 ||
        attempt >= options.max_attempts) {
      break;  // No in-memory rung left: fall through to out-of-core.
    }
    bits = std::min(bits + 2, 16);
    jopts.radix_bits_override = bits;
    device.AdvanceClock(options.backoff.DelayCycles(attempt));
    res.degradation.push_back(
        {"retry_more_partition_bits",
         "attempt " + std::to_string(attempt) + " failed (" + st.message() +
             "); retrying in-memory with radix_bits=" + std::to_string(bits)});
    obs::TraceInstant(device, "degradation:retry_more_partition_bits",
                      res.degradation.back().detail);
    reg.CounterAdd("resilient_degradations_total",
                   {{"op", "join"}, {"action", "retry_more_partition_bits"}});
    GPUJOIN_RETURN_IF_ERROR(obs::CheckLifecycle(device));
  }

  // Rung 3: out-of-core fallback with escalating fragment counts.
  if (options.allow_out_of_core) {
    int frag_bits =
        DeriveFragmentBits(device, r, s, options.device_budget_fraction);
    while (attempt < options.max_attempts) {
      if (attempt > 0) {
        device.AdvanceClock(options.backoff.DelayCycles(attempt));
        GPUJOIN_RETURN_IF_ERROR(obs::CheckLifecycle(device));
      }
      ++attempt;
      res.degradation.push_back(
          {"out_of_core_fallback",
           "in-memory failed (" + last_error.message() +
               "); streaming fragment pairs with fragment_bits=" +
               std::to_string(frag_bits)});
      obs::TraceInstant(device, "degradation:out_of_core_fallback",
                        res.degradation.back().detail);
      reg.CounterAdd("resilient_degradations_total",
                     {{"op", "join"}, {"action", "out_of_core_fallback"}});
      OutOfCoreOptions oopts;
      oopts.join = options.join;
      oopts.fragment_bits = frag_bits;
      oopts.device_budget_fraction = options.device_budget_fraction;
      Result<OutOfCoreRunResult> oc = Status::Internal("unset");
      {
        obs::TraceSpan attempt_span(device, "attempt",
                                    "out_of_core_" + std::to_string(attempt));
        oc = RunOutOfCoreJoin(device, algo, r, s, oopts);
      }
      if (oc.ok()) {
        res.output = std::move(oc->output);
        res.output_rows = oc->output_rows;
        res.attempts = attempt;
        res.used_out_of_core = true;
        res.device_seconds = device.ElapsedSeconds() - t0;
        record_survived();
        return res;
      }
      {
        GPUJOIN_ASSIGN_OR_RETURN(const bool retry_rung,
                                 try_absorb_transient(oc.status()));
        if (retry_rung) {
          --attempt;  // Re-run the same fragment count.
          continue;
        }
      }
      if (!IsResourceFailure(oc.status())) return oc.status();
      reg.CounterAdd("resilient_resource_failures_total", {{"op", "join"}});
      GPUJOIN_RETURN_IF_ERROR(VerifyCleanRollback(device, baseline_live));
      last_error = oc.status();
      if (frag_bits >= 20) break;  // Fragmentation limit reached.
      frag_bits = std::min(frag_bits + 2, 20);
    }
  }

  // Rung 4: clean structured error carrying the ladder.
  return Status::ResourceExhausted(
      "RunJoinResilient: " + std::string(JoinAlgoName(algo)) + " failed after " +
      std::to_string(attempt) + " attempt(s); last error: " +
      last_error.message() +
      (res.degradation.empty()
           ? std::string("; no degradation rung applicable")
           : "\ndegradation ladder:\n" + FormatDegradation(res.degradation)));
}

}  // namespace gpujoin::join
