#include "join/outer.h"

#include <utility>
#include <vector>

#include "join/semi.h"

namespace gpujoin::join {

namespace {

/// Appends src's rows to dst (same type), charging a sequential copy.
Status AppendColumn(vgpu::Device& device, const DeviceColumn& src,
                    DeviceColumn* dst, uint64_t dst_offset) {
  const uint32_t width = static_cast<uint32_t>(DataTypeSize(src.type()));
  vgpu::KernelScope ks(device, "outer_concat");
  device.LoadSeq(src.addr(), src.size(), width);
  device.StoreSeq(dst->addr(dst_offset), src.size(), width);
  for (uint64_t i = 0; i < src.size(); ++i) {
    dst->Set(dst_offset + i, src.Get(i));
  }
  return Status::OK();
}

/// Fills dst[offset..offset+count) with `value`, charging the stores.
Status FillColumn(vgpu::Device& device, DeviceColumn* dst, uint64_t offset,
                  uint64_t count, int64_t value) {
  const uint32_t width = static_cast<uint32_t>(DataTypeSize(dst->type()));
  vgpu::KernelScope ks(device, "outer_fill");
  device.StoreSeq(dst->addr(offset), count, width);
  for (uint64_t i = 0; i < count; ++i) dst->Set(offset + i, value);
  return Status::OK();
}

}  // namespace

Result<OuterJoinRunResult> RunLeftOuterJoin(vgpu::Device& device, JoinAlgo algo,
                                            const Table& r, const Table& s,
                                            const OuterJoinOptions& options) {
  // Sentinel must fit int32 columns (payloads may be 4-byte).
  if (options.null_sentinel < INT32_MIN || options.null_sentinel > INT32_MAX) {
    return Status::InvalidArgument("RunLeftOuterJoin: sentinel must fit int32");
  }
  GPUJOIN_ASSIGN_OR_RETURN(JoinRunResult inner,
                           RunJoin(device, algo, r, s, options.join));
  GPUJOIN_ASSIGN_OR_RETURN(
      SemiJoinRunResult anti,
      RunSemiJoin(device, algo, r, s, SemiJoinType::kAnti, options.join));

  OuterJoinRunResult res;
  res.matched_rows = inner.output_rows;
  res.unmatched_rows = anti.output_rows;
  res.output_rows = res.matched_rows + res.unmatched_rows;

  const int n_r_pay = r.num_columns() - 1;
  const int n_s_pay = s.num_columns() - 1;
  std::vector<std::string> names;
  std::vector<DeviceColumn> cols;

  // Key column: inner keys then the unmatched S keys.
  {
    GPUJOIN_ASSIGN_OR_RETURN(
        DeviceColumn key,
        DeviceColumn::Allocate(device, s.column(0).type(), res.output_rows));
    GPUJOIN_RETURN_IF_ERROR(AppendColumn(device, inner.output.column(0), &key, 0));
    GPUJOIN_RETURN_IF_ERROR(
        AppendColumn(device, anti.output.column(0), &key, res.matched_rows));
    names.push_back(s.column_name(0));
    cols.push_back(std::move(key));
  }
  // R payloads: inner values then sentinels.
  for (int c = 1; c <= n_r_pay; ++c) {
    GPUJOIN_ASSIGN_OR_RETURN(
        DeviceColumn col,
        DeviceColumn::Allocate(device, r.column(c).type(), res.output_rows));
    GPUJOIN_RETURN_IF_ERROR(AppendColumn(device, inner.output.column(c), &col, 0));
    GPUJOIN_RETURN_IF_ERROR(FillColumn(device, &col, res.matched_rows,
                                       res.unmatched_rows, options.null_sentinel));
    names.push_back(r.column_name(c));
    cols.push_back(std::move(col));
  }
  // S payloads: inner values then the anti-join values.
  for (int c = 1; c <= n_s_pay; ++c) {
    GPUJOIN_ASSIGN_OR_RETURN(
        DeviceColumn col,
        DeviceColumn::Allocate(device, s.column(c).type(), res.output_rows));
    GPUJOIN_RETURN_IF_ERROR(AppendColumn(
        device, inner.output.column(n_r_pay + c), &col, 0));
    GPUJOIN_RETURN_IF_ERROR(
        AppendColumn(device, anti.output.column(c), &col, res.matched_rows));
    names.push_back(s.column_name(c));
    cols.push_back(std::move(col));
  }
  if (options.emit_matched_column) {
    GPUJOIN_ASSIGN_OR_RETURN(
        DeviceColumn matched,
        DeviceColumn::Allocate(device, DataType::kInt32, res.output_rows));
    GPUJOIN_RETURN_IF_ERROR(
        FillColumn(device, &matched, 0, res.matched_rows, 1));
    GPUJOIN_RETURN_IF_ERROR(FillColumn(device, &matched, res.matched_rows,
                                       res.unmatched_rows, 0));
    names.emplace_back("matched");
    cols.push_back(std::move(matched));
  }
  res.output = Table::FromColumns("left_outer_join_result", std::move(names),
                                  std::move(cols));
  return res;
}

}  // namespace gpujoin::join
