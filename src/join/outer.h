// Left outer join (extension): every probe-side (S) tuple survives; R
// payloads take a caller-chosen sentinel where no partner exists (this
// integer-only engine has no NULL representation — the sentinel plus the
// `matched` indicator column carry the same information).
//
// Composed from the existing machinery: the inner join materializes the
// matched rows, the anti join compacts the unmatched S rows, and the two
// are concatenated with sentinel-filled R columns.

#ifndef GPUJOIN_JOIN_OUTER_H_
#define GPUJOIN_JOIN_OUTER_H_

#include <cstdint>

#include "common/status.h"
#include "join/join.h"
#include "storage/table.h"
#include "vgpu/device.h"

namespace gpujoin::join {

struct OuterJoinOptions {
  JoinOptions join;
  /// Value written into R payload cells of unmatched S rows.
  int64_t null_sentinel = -1;
  /// Append an int32 `matched` column (1 = inner row, 0 = padded row).
  bool emit_matched_column = true;
};

struct OuterJoinRunResult {
  /// Schema: key, R payloads, S payloads [, matched].
  Table output;
  uint64_t output_rows = 0;
  uint64_t matched_rows = 0;
  uint64_t unmatched_rows = 0;
};

/// LEFT OUTER JOIN preserving S: r INNER s plus the unmatched S rows.
Result<OuterJoinRunResult> RunLeftOuterJoin(vgpu::Device& device, JoinAlgo algo,
                                            const Table& r, const Table& s,
                                            const OuterJoinOptions& options = {});

}  // namespace gpujoin::join

#endif  // GPUJOIN_JOIN_OUTER_H_
