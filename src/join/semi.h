// Semi and anti joins (extension beyond the paper's inner joins — the
// operators a downstream engine needs next): SEMI keeps the S tuples with
// at least one partner in R, ANTI keeps those with none. The output is a
// subset of S (no R payloads, so neither nulls nor materialization of the
// build side are involved).
//
// Implementation: the inner-join match finders produce the matching
// transformed S positions; those are translated to original S row ids
// (carried as the transform's value column), deduplicated through a flag
// vector, compacted in ascending id order, and the surviving rows are
// gathered — the ascending map keeps the gathers clustered.

#ifndef GPUJOIN_JOIN_SEMI_H_
#define GPUJOIN_JOIN_SEMI_H_

#include "common/status.h"
#include "join/join.h"
#include "storage/table.h"
#include "vgpu/device.h"

namespace gpujoin::join {

enum class SemiJoinType {
  kSemi,  // S tuples with a partner in R.
  kAnti,  // S tuples without a partner in R.
};

struct SemiJoinRunResult {
  Table output;  // Subset of S's rows, full S schema.
  uint64_t output_rows = 0;
  join::PhaseBreakdown phases;
};

/// Semi/anti join of s against r (keys = column 0 of each). `algo` selects
/// the underlying match-finding machinery (any of the five implementations).
Result<SemiJoinRunResult> RunSemiJoin(vgpu::Device& device, JoinAlgo algo,
                                      const Table& r, const Table& s,
                                      SemiJoinType type,
                                      const JoinOptions& options = {});

}  // namespace gpujoin::join

#endif  // GPUJOIN_JOIN_SEMI_H_
