#include "join/reference.h"

#include <algorithm>
#include <unordered_map>

namespace gpujoin::join {

std::vector<std::vector<int64_t>> ReferenceJoinRows(const HostTable& r,
                                                    const HostTable& s) {
  std::unordered_multimap<int64_t, uint64_t> build;
  build.reserve(r.num_rows());
  for (uint64_t i = 0; i < r.num_rows(); ++i) {
    build.emplace(r.columns[0].values[i], i);
  }
  std::vector<std::vector<int64_t>> rows;
  for (uint64_t j = 0; j < s.num_rows(); ++j) {
    const int64_t key = s.columns[0].values[j];
    auto [lo, hi] = build.equal_range(key);
    for (auto it = lo; it != hi; ++it) {
      std::vector<int64_t> row;
      row.reserve(r.columns.size() + s.columns.size() - 1);
      row.push_back(key);
      for (size_t c = 1; c < r.columns.size(); ++c) {
        row.push_back(r.columns[c].values[it->second]);
      }
      for (size_t c = 1; c < s.columns.size(); ++c) {
        row.push_back(s.columns[c].values[j]);
      }
      rows.push_back(std::move(row));
    }
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

std::vector<std::vector<int64_t>> CanonicalRows(const HostTable& t) {
  std::vector<std::vector<int64_t>> rows(t.num_rows());
  for (uint64_t i = 0; i < t.num_rows(); ++i) {
    rows[i].reserve(t.columns.size());
    for (const HostColumn& c : t.columns) rows[i].push_back(c.values[i]);
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

}  // namespace gpujoin::join
