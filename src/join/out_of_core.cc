#include "join/out_of_core.h"

#include <algorithm>
#include <chrono>
#include <vector>

#include "common/bit_util.h"
#include "obs/trace.h"

namespace gpujoin::join {

std::vector<HostTable> PartitionHostByKeyRadix(const HostTable& t, int bits) {
  const uint32_t fanout = 1u << bits;
  const uint64_t n = t.num_rows();
  std::vector<uint64_t> counts(fanout, 0);
  for (uint64_t i = 0; i < n; ++i) {
    ++counts[bit_util::RadixDigit(t.columns[0].values[i], 0, bits)];
  }
  std::vector<HostTable> frags(fanout);
  for (uint32_t f = 0; f < fanout; ++f) {
    frags[f].name = t.name + "_f" + std::to_string(f);
    frags[f].columns.resize(t.columns.size());
    for (size_t c = 0; c < t.columns.size(); ++c) {
      frags[f].columns[c].name = t.columns[c].name;
      frags[f].columns[c].type = t.columns[c].type;
      frags[f].columns[c].values.reserve(counts[f]);
    }
  }
  for (uint64_t i = 0; i < n; ++i) {
    const uint32_t f = bit_util::RadixDigit(t.columns[0].values[i], 0, bits);
    for (size_t c = 0; c < t.columns.size(); ++c) {
      frags[f].columns[c].values.push_back(t.columns[c].values[i]);
    }
  }
  return frags;
}

uint64_t HostTableBytes(const HostTable& t) {
  uint64_t bytes = 0;
  for (const HostColumn& c : t.columns) {
    bytes += c.values.size() * DataTypeSize(c.type);
  }
  return bytes;
}

int DeriveFragmentBits(const vgpu::Device& device, const HostTable& r,
                       const HostTable& s, double device_budget_fraction) {
  const double budget = static_cast<double>(device.config().global_mem_bytes) *
                        device_budget_fraction;
  const double total =
      static_cast<double>(HostTableBytes(r) + HostTableBytes(s));
  int bits = 1;
  while (bits < 16 && total / static_cast<double>(1u << bits) > budget) {
    ++bits;
  }
  return bits;
}

Result<OutOfCoreRunResult> RunOutOfCoreJoin(vgpu::Device& device, JoinAlgo algo,
                                            const HostTable& r,
                                            const HostTable& s,
                                            const OutOfCoreOptions& options) {
  if (r.columns.empty() || s.columns.empty() || r.num_rows() == 0 ||
      s.num_rows() == 0) {
    return Status::InvalidArgument("RunOutOfCoreJoin: bad inputs");
  }
  if (options.device_budget_fraction <= 0 || options.device_budget_fraction > 1) {
    return Status::InvalidArgument("RunOutOfCoreJoin: bad budget fraction");
  }

  // Pick the fragment count: the average co-fragment pair must fit the
  // device budget (join working state takes the rest of the capacity).
  int bits = options.fragment_bits;
  if (bits <= 0) {
    bits = DeriveFragmentBits(device, r, s, options.device_budget_fraction);
  }
  if (bits > 20) {
    return Status::InvalidArgument("RunOutOfCoreJoin: fragment_bits too large");
  }

  OutOfCoreRunResult res;
  res.fragments = 1 << bits;
  obs::TraceSpan query_span(
      device, "query", std::string("out_of_core:") + JoinAlgoName(algo));
  query_span.Annotate("fragments", std::to_string(res.fragments));
  const double dev_t0 = device.ElapsedSeconds();
  const auto host_t0 = std::chrono::steady_clock::now();

  std::vector<HostTable> r_frags = PartitionHostByKeyRadix(r, bits);
  std::vector<HostTable> s_frags = PartitionHostByKeyRadix(s, bits);

  double host_partition_s = std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - host_t0)
                                .count();

  // Output accumulator (schema = key + R payloads + S payloads).
  HostTable out;
  out.name = "out_of_core_join_result";
  bool out_initialized = false;

  double host_merge_s = 0;
  for (int f = 0; f < res.fragments; ++f) {
    if (r_frags[f].num_rows() == 0 || s_frags[f].num_rows() == 0) continue;
    // Fragment boundary: a cancel request or deadline trip stops the stream
    // before the next fragment's upload is charged.
    GPUJOIN_RETURN_IF_ERROR(obs::CheckLifecycle(device));
    obs::TraceSpan frag_span(device, "fragment",
                             "fragment_" + std::to_string(f));
    const uint64_t up_bytes =
        HostTableBytes(r_frags[f]) + HostTableBytes(s_frags[f]);
    device.ChargeHostTransfer(up_bytes);
    res.bytes_transferred += up_bytes;

    GPUJOIN_ASSIGN_OR_RETURN(Table rd, Table::FromHost(device, r_frags[f]));
    GPUJOIN_ASSIGN_OR_RETURN(Table sd, Table::FromHost(device, s_frags[f]));
    GPUJOIN_ASSIGN_OR_RETURN(JoinRunResult jr,
                             RunJoin(device, algo, rd, sd, options.join));

    const HostTable part = jr.output.ToHost();
    const uint64_t down_bytes = HostTableBytes(part);
    device.ChargeHostTransfer(down_bytes);
    res.bytes_transferred += down_bytes;

    const auto merge_t0 = std::chrono::steady_clock::now();
    if (!out_initialized) {
      out.columns.resize(part.columns.size());
      for (size_t c = 0; c < part.columns.size(); ++c) {
        out.columns[c].name = part.columns[c].name;
        out.columns[c].type = part.columns[c].type;
      }
      out_initialized = true;
    }
    for (size_t c = 0; c < part.columns.size(); ++c) {
      out.columns[c].values.insert(out.columns[c].values.end(),
                                   part.columns[c].values.begin(),
                                   part.columns[c].values.end());
    }
    host_merge_s += std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - merge_t0)
                        .count();
  }

  // The final fragment's download may itself trip the deadline.
  GPUJOIN_RETURN_IF_ERROR(obs::CheckLifecycle(device));
  res.output_rows = out.num_rows();
  res.output = std::move(out);
  res.device_seconds = device.ElapsedSeconds() - dev_t0;
  res.host_seconds = host_partition_s + host_merge_s;
  return res;
}

}  // namespace gpujoin::join
