#include "join/join_aggregate.h"

#include <algorithm>
#include <utility>

#include "ops/ops.h"

namespace gpujoin::join {

namespace {

/// Collects the distinct referenced payload columns of one side, in a
/// stable order. The join key (column 0) is always materialized by the
/// join itself.
std::vector<int> ReferencedColumns(const JoinAggregateSpec& spec,
                                   JoinColumnRef::Side side) {
  std::vector<int> cols;
  auto add = [&](const JoinColumnRef& ref) {
    if (ref.side != side || ref.column == 0) return;
    if (std::find(cols.begin(), cols.end(), ref.column) == cols.end()) {
      cols.push_back(ref.column);
    }
  };
  add(spec.group_by);
  for (const auto& agg : spec.aggregates) {
    if (agg.op != groupby::AggOp::kCount) add(agg.column);
  }
  return cols;
}

/// Maps a column reference to its index in the slim join output
/// (key, referenced R columns..., referenced S columns...).
int OutputIndexOf(const JoinColumnRef& ref, const std::vector<int>& r_cols,
                  const std::vector<int>& s_cols) {
  if (ref.column == 0) return 0;  // The join key survives as column 0.
  if (ref.side == JoinColumnRef::Side::kR) {
    const auto it = std::find(r_cols.begin(), r_cols.end(), ref.column);
    return 1 + static_cast<int>(it - r_cols.begin());
  }
  const auto it = std::find(s_cols.begin(), s_cols.end(), ref.column);
  return 1 + static_cast<int>(r_cols.size()) +
         static_cast<int>(it - s_cols.begin());
}

Status ValidateSpec(const Table& r, const Table& s,
                    const JoinAggregateSpec& spec) {
  auto check = [&](const JoinColumnRef& ref) -> Status {
    const Table& t = ref.side == JoinColumnRef::Side::kR ? r : s;
    if (ref.column < 0 || ref.column >= t.num_columns()) {
      return Status::InvalidArgument("JoinAggregate: column reference out of range");
    }
    return Status::OK();
  };
  GPUJOIN_RETURN_IF_ERROR(check(spec.group_by));
  if (spec.aggregates.empty()) {
    return Status::InvalidArgument("JoinAggregate: no aggregates");
  }
  for (const auto& agg : spec.aggregates) {
    if (agg.op == groupby::AggOp::kCount) continue;
    GPUJOIN_RETURN_IF_ERROR(check(agg.column));
    if (agg.column.side == spec.group_by.side &&
        agg.column.column == spec.group_by.column) {
      return Status::NotImplemented(
          "JoinAggregate: aggregating the grouping attribute itself");
    }
    if (agg.column.column == 0 && spec.group_by.column == 0) {
      return Status::NotImplemented(
          "JoinAggregate: aggregating the join key while grouping by it");
    }
  }
  return Status::OK();
}

}  // namespace

Result<JoinAggregateRunResult> RunJoinAggregate(vgpu::Device& device,
                                                JoinAlgo join_algo,
                                                groupby::GroupByAlgo agg_algo,
                                                const Table& r, const Table& s,
                                                const JoinAggregateSpec& spec,
                                                const JoinOptions& options) {
  GPUJOIN_RETURN_IF_ERROR(ValidateSpec(r, s, spec));
  const std::vector<int> r_cols = ReferencedColumns(spec, JoinColumnRef::Side::kR);
  const std::vector<int> s_cols = ReferencedColumns(spec, JoinColumnRef::Side::kS);

  JoinAggregateRunResult res;
  const double t0 = device.ElapsedSeconds();

  // Early projection: the join inputs are narrowed to the key plus the
  // referenced payload columns before the join runs, so the join never
  // touches (transforms, gathers, or writes) anything else.
  std::vector<int> r_proj = {0};
  r_proj.insert(r_proj.end(), r_cols.begin(), r_cols.end());
  std::vector<int> s_proj = {0};
  s_proj.insert(s_proj.end(), s_cols.begin(), s_cols.end());
  GPUJOIN_ASSIGN_OR_RETURN(Table r_slim, ops::Project(device, r, r_proj));
  GPUJOIN_ASSIGN_OR_RETURN(Table s_slim, ops::Project(device, s, s_proj));

  GPUJOIN_ASSIGN_OR_RETURN(JoinRunResult joined,
                           RunJoin(device, join_algo, r_slim, s_slim, options));
  res.join_rows = joined.output_rows;
  res.join_seconds = device.ElapsedSeconds() - t0;

  // Re-shape the slim join output as (group_key, agg inputs...) and run
  // the grouped aggregation directly on it.
  const double t1 = device.ElapsedSeconds();
  const int group_idx = OutputIndexOf(spec.group_by, r_cols, s_cols);
  std::vector<std::string> gb_names = {joined.output.column_name(group_idx)};
  std::vector<DeviceColumn> gb_cols;
  gb_cols.push_back(joined.output.TakeColumn(group_idx));
  groupby::GroupBySpec gb_spec;
  // Aggregate inputs: deduplicate identical column references so the
  // group-by table stays narrow.
  std::vector<int> placed_outputs;
  for (const auto& agg : spec.aggregates) {
    if (agg.op == groupby::AggOp::kCount) {
      gb_spec.aggregates.push_back({1, groupby::AggOp::kCount});
      continue;
    }
    const int out_idx = OutputIndexOf(agg.column, r_cols, s_cols);
    int slot = -1;
    for (size_t i = 0; i < placed_outputs.size(); ++i) {
      if (placed_outputs[i] == out_idx) {
        slot = static_cast<int>(i) + 1;
        break;
      }
    }
    if (slot < 0) {
      // Distinct from group_idx by validation, so the take is safe.
      gb_names.push_back(joined.output.column_name(out_idx));
      gb_cols.push_back(joined.output.TakeColumn(out_idx));
      placed_outputs.push_back(out_idx);
      slot = static_cast<int>(placed_outputs.size());
    }
    gb_spec.aggregates.push_back({slot, agg.op});
  }
  Table gb_input = Table::FromColumns("join_aggregate_input", std::move(gb_names),
                                      std::move(gb_cols));

  GPUJOIN_ASSIGN_OR_RETURN(groupby::GroupByRunResult gb,
                           RunGroupBy(device, agg_algo, gb_input, gb_spec));
  res.output = std::move(gb.output);
  res.num_groups = gb.num_groups;
  res.aggregate_seconds = device.ElapsedSeconds() - t1;
  return res;
}

}  // namespace gpujoin::join
