// Out-of-core joins: inputs larger than the device memory are radix-
// partitioned on the host into co-fragments, and fragment pairs are
// streamed through the device one at a time (upload over the PCIe model,
// in-memory join, download of the partial result). The paper treats
// out-of-memory joins as orthogonal related work [35, 55, 60]; this module
// makes the library usable beyond the in-memory regime with the same five
// join implementations.

#ifndef GPUJOIN_JOIN_OUT_OF_CORE_H_
#define GPUJOIN_JOIN_OUT_OF_CORE_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "join/join.h"
#include "storage/table.h"
#include "vgpu/device.h"

namespace gpujoin::join {

struct OutOfCoreOptions {
  JoinOptions join;
  /// Host-side fragment count as log2 (0 = derive from the device capacity:
  /// the largest fragment pair plus working space must fit).
  int fragment_bits = 0;
  /// Fraction of device memory a fragment pair may plan to use (join
  /// intermediates need the rest).
  double device_budget_fraction = 0.2;
};

struct OutOfCoreRunResult {
  HostTable output;
  uint64_t output_rows = 0;
  int fragments = 0;
  /// Simulated device seconds (kernels + PCIe transfers).
  double device_seconds = 0;
  /// Native wall-clock seconds spent in host-side partitioning/merging.
  double host_seconds = 0;
  uint64_t bytes_transferred = 0;
};

/// Total payload bytes of a host table (all columns, no metadata).
uint64_t HostTableBytes(const HostTable& t);

/// Host-side stable partition of a table by the low `bits` radix digits of
/// column 0 (the key). Returns 2^bits per-fragment tables; rows with equal
/// keys always land in the same fragment, and row order inside a fragment
/// follows the input order. Shared by the out-of-core join stream and the
/// scheduler's fragment decomposition (service/fragments.cc).
std::vector<HostTable> PartitionHostByKeyRadix(const HostTable& t, int bits);

/// Derives the fragment count (as log2) so that the average co-fragment
/// pair fits `device_budget_fraction` of the device's global memory; join
/// intermediates need the rest. Result is in [1, 16]. This is the same
/// policy RunOutOfCoreJoin applies when `fragment_bits == 0`, exposed so
/// resilient wrappers can derive and then escalate it.
int DeriveFragmentBits(const vgpu::Device& device, const HostTable& r,
                       const HostTable& s, double device_budget_fraction);

/// Joins host tables r and s (keys in column 0) through a device that may
/// be (much) smaller than the inputs.
Result<OutOfCoreRunResult> RunOutOfCoreJoin(vgpu::Device& device, JoinAlgo algo,
                                            const HostTable& r,
                                            const HostTable& s,
                                            const OutOfCoreOptions& options = {});

}  // namespace gpujoin::join

#endif  // GPUJOIN_JOIN_OUT_OF_CORE_H_
