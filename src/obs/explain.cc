#include "obs/explain.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "obs/registry.h"

namespace gpujoin::obs {

namespace {

struct Node {
  const SpanRecord* span = nullptr;
  std::vector<int32_t> children;  // Non-kernel children, in open order.
  /// Kernel cycles/invocations aggregated by kernel name, direct children
  /// only.
  std::map<std::string, std::pair<double, uint64_t>> kernels;
};

void RenderNode(const std::vector<Node>& nodes, int32_t id, double root_cycles,
                const std::string& indent, bool last,
                const ExplainOptions& opts, std::string& out) {
  const Node& node = nodes[id];
  const SpanRecord& span = *node.span;
  const double parent_base = root_cycles > 0 ? root_cycles : 1;
  if (span.duration_cycles() / parent_base < opts.min_fraction &&
      span.depth > 0) {
    return;
  }

  char line[256];
  const std::string branch =
      span.parent < 0 ? "" : (last ? "└─ " : "├─ ");
  std::snprintf(line, sizeof(line),
                "%-48s %12.0f cycles %6.1f%%  %8.3f ms  peak %.1f MB\n",
                (indent + branch + span.category + ":" + span.name).c_str(),
                span.duration_cycles(),
                100.0 * span.duration_cycles() / parent_base,
                span.duration_seconds() * 1e3,
                static_cast<double>(span.peak_bytes_end) / 1e6);
  out += line;

  const std::string child_indent =
      indent + (span.parent < 0 ? "" : (last ? "   " : "│  "));

  // Free-form annotations (backend routing, cost estimates, ...). The
  // "mem:<tag>" live-byte breakdown recorded at span close is bookkeeping,
  // not narrative — skip it here.
  std::string aline;
  for (const auto& [key, value] : span.attrs) {
    if (key.rfind("mem:", 0) == 0) continue;
    aline += (aline.empty() ? "" : " ") + key + "=" + value;
  }
  if (!aline.empty()) {
    out += child_indent + "   [" + aline + "]\n";
  }

  if (!node.kernels.empty() && opts.top_k_kernels > 0) {
    std::vector<std::pair<std::string, std::pair<double, uint64_t>>> ks(
        node.kernels.begin(), node.kernels.end());
    std::sort(ks.begin(), ks.end(), [](const auto& a, const auto& b) {
      return a.second.first > b.second.first;
    });
    std::string kline = child_indent + "   kernels: ";
    const size_t k = std::min<size_t>(ks.size(),
                                      static_cast<size_t>(opts.top_k_kernels));
    const double self = span.duration_cycles() > 0 ? span.duration_cycles() : 1;
    for (size_t i = 0; i < k; ++i) {
      char kbuf[128];
      std::snprintf(kbuf, sizeof(kbuf), "%s%s %.1f%% x%llu",
                    i == 0 ? "" : ", ", ks[i].first.c_str(),
                    100.0 * ks[i].second.first / self,
                    static_cast<unsigned long long>(ks[i].second.second));
      kline += kbuf;
    }
    if (ks.size() > k) {
      kline += ", +" + std::to_string(ks.size() - k) + " more";
    }
    out += kline + "\n";
  }

  double child_cycles = 0;
  for (const int32_t c : node.children) {
    child_cycles += nodes[c].span->duration_cycles();
  }
  for (size_t i = 0; i < node.children.size(); ++i) {
    RenderNode(nodes, node.children[i], span.duration_cycles(), child_indent,
               i + 1 == node.children.size(), opts, out);
  }
  // Cycles not covered by structured children (only worth a line when
  // there ARE structured children and the gap is visible).
  if (!node.children.empty() && span.duration_cycles() > 0) {
    const double gap = span.duration_cycles() - child_cycles;
    if (gap / span.duration_cycles() > 1e-9) {
      std::snprintf(line, sizeof(line), "%-48s %12.0f cycles %6.1f%%\n",
                    (child_indent + "(unattributed)").c_str(), gap,
                    100.0 * gap / span.duration_cycles());
      out += line;
    }
  }
}

}  // namespace

std::string RenderExplain(const Tracer& tracer, const ExplainOptions& options) {
  const std::vector<SpanRecord>& spans = tracer.spans();
  std::vector<Node> nodes(spans.size());
  std::vector<int32_t> roots;
  for (const SpanRecord& span : spans) {
    if (!span.closed) continue;
    nodes[span.id].span = &span;
    if (span.category == "kernel") {
      if (span.parent >= 0) {
        auto& agg = nodes[span.parent].kernels[span.name];
        agg.first += span.duration_cycles();
        ++agg.second;
      }
      continue;
    }
    if (span.parent < 0) {
      roots.push_back(span.id);
    } else {
      nodes[span.parent].children.push_back(span.id);
    }
  }

  std::string out = "EXPLAIN ANALYZE (simulated device cycles)\n";
  if (roots.empty()) {
    out += "  (no spans recorded — is tracing enabled?)\n";
    return out;
  }
  for (const int32_t root : roots) {
    RenderNode(nodes, root, nodes[root].span->duration_cycles(), "", true,
               options, out);
  }

  if (!tracer.events().empty()) {
    out += "events:\n";
    for (const EventRecord& ev : tracer.events()) {
      char line[512];
      std::snprintf(line, sizeof(line), "  @%.0f cycles  %s: %s\n",
                    ev.at_cycles, ev.name.c_str(), ev.detail.c_str());
      out += line;
    }
  }
  return out;
}

std::string RenderMetricsSummary(const MetricsSnapshot& snapshot) {
  // Each line aggregates one layer's counters across all label sets; a
  // layer with zero samples contributes no line, and an idle snapshot
  // renders nothing at all.
  const auto total = [&snapshot](const char* name) {
    return snapshot.CounterTotal(name);
  };
  std::string out;
  const auto add_line = [&out](const std::string& line) {
    if (out.empty()) out = "[metrics]\n";
    out += "  " + line + "\n";
  };

  const uint64_t admissions = total("service_admissions_total");
  if (admissions > 0) {
    add_line("service: admissions=" + std::to_string(admissions) +
             " outcomes=" + std::to_string(total("service_outcomes_total")) +
             " quota_borrows=" +
             std::to_string(total("service_quota_borrow_total")) +
             " backend_fallbacks=" +
             std::to_string(total("service_backend_fallback_total")));
  }
  const uint64_t turns = total("sched_turns_total");
  if (turns > 0) {
    add_line("sched: turns=" + std::to_string(turns) + " passes=" +
             std::to_string(total("sched_passes_total")) + " preemptions=" +
             std::to_string(total("sched_preemptions_total")) +
             " idle_advances=" +
             std::to_string(total("sched_idle_advances_total")));
  }
  const uint64_t decisions = total("router_decisions_total");
  if (decisions > 0) {
    std::string by_backend;
    for (const auto& [key, cell] : snapshot.cells) {
      if (key.name != "router_decisions_total") continue;
      for (const auto& [k, v] : key.labels) {
        if (k != "backend") continue;
        by_backend += " " + v + "+=" + std::to_string(cell.counter);
      }
    }
    add_line("router: decisions=" + std::to_string(decisions) + " ops=" +
             std::to_string(total("router_ops_total")) + " fallbacks=" +
             std::to_string(total("router_fallback_total")) + by_backend);
  }
  const uint64_t ops = total("ops_executed_total");
  if (ops > 0) {
    add_line(
        "exec: ops=" + std::to_string(ops) + " vgpu_kernels=" +
        std::to_string(total("vgpu_kernel_launches_total")) +
        " degradations=" + std::to_string(total("resilient_degradations_total")) +
        " resource_failures=" +
        std::to_string(total("resilient_resource_failures_total")) +
        " faults_survived=" +
        std::to_string(total("vgpu_faults_survived_total")));
  }
  const uint64_t sim_kernels = total("sim_kernels_total");
  if (sim_kernels > 0) {
    std::string line = "sim: kernels=" + std::to_string(sim_kernels);
    if (const HistogramData* h = snapshot.Histogram("sim_section_cycles")) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), " cycles=%.4g", h->sum);
      line += buf;
    }
    add_line(line);
  }
  return out;
}

}  // namespace gpujoin::obs
