// Hierarchical trace spans over the simulated GPU — the query-structure
// layer on top of vgpu::Profiler's flat per-kernel counters.
//
// A span brackets a region of simulated execution (a query, a phase, a
// resilience attempt, an out-of-core fragment) and records, purely by
// READING device state at open/close:
//   * the simulated clock (cycles and seconds) at both ends,
//   * host wall-clock at both ends (simulator self-profiling),
//   * the KernelStats delta accumulated inside the region,
//   * the live-bytes watermark at both ends and the device peak at close,
//   * free-form attributes and, for non-kernel spans, the per-allocation-
//     tag live-byte breakdown at close.
// Kernel-level spans are recorded automatically: the tracer implements
// vgpu::KernelObserver, and every TraceSpan attaches the tracer to its
// device, so each BeginKernel/EndKernel inside an open span becomes a
// child span carrying that kernel's exact stats.
//
// Determinism contract: the tracer NEVER mutates device state — no cycles,
// no allocations, no cache traffic. Tracing on/off leaves simulated
// results bit-identical (obs_determinism_test.cc). The global tracer is
// disabled by default; a disabled TraceSpan is a no-op.

#ifndef GPUJOIN_OBS_TRACE_H_
#define GPUJOIN_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "vgpu/device.h"
#include "vgpu/observer.h"
#include "vgpu/stats.h"

namespace gpujoin::obs {

/// One completed (or still-open) span.
struct SpanRecord {
  int32_t id = -1;
  int32_t parent = -1;  // -1 for a root span.
  int32_t depth = 0;
  /// Timeline index of the device this span ran on (tracer-assigned, in
  /// attach order). Different devices have independent simulated clocks.
  int32_t device_id = 0;
  /// "query" | "phase" | "kernel" | "attempt" | "fragment" | "step" | ...
  std::string category;
  std::string name;
  bool closed = false;

  // Simulated clock at open/close.
  double start_cycles = 0, end_cycles = 0;
  double start_seconds = 0, end_seconds = 0;
  // Host wall-clock seconds relative to the tracer epoch.
  double host_start_s = 0, host_end_s = 0;
  // KernelStats delta over the span (exact kernel stats for kernel spans).
  vgpu::KernelStats stats;
  // Memory watermarks.
  uint64_t live_bytes_start = 0, live_bytes_end = 0;
  uint64_t peak_bytes_end = 0;
  // Free-form key/value annotations (includes the per-tag live-byte
  // breakdown "mem:<tag>" recorded at close for non-kernel spans).
  std::vector<std::pair<std::string, std::string>> attrs;

  double duration_cycles() const { return end_cycles - start_cycles; }
  double duration_seconds() const { return end_seconds - start_seconds; }
};

/// A point event (degradation rung taken, fault absorbed, ...).
struct EventRecord {
  int32_t parent = -1;  // Innermost open span at record time (-1: none).
  int32_t device_id = 0;
  std::string name;
  std::string detail;
  double at_cycles = 0;
  double at_seconds = 0;
};

/// Span collector and vgpu::KernelObserver implementation. Use the RAII
/// TraceSpan/TraceInstant helpers rather than calling Open/Close directly.
class Tracer : public vgpu::KernelObserver {
 public:
  /// The process-wide tracer (mirrors GlobalSimSelfProfile): bench binaries
  /// and the explain renderer share one span tree per process.
  static Tracer& Global();

  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  /// Registers this tracer as `device`'s kernel observer and assigns the
  /// device a timeline id. Idempotent. Called by every TraceSpan, so
  /// kernel capture starts with the first span on a device.
  void Attach(vgpu::Device& device);

  int32_t OpenSpan(const vgpu::Device& device, std::string category,
                   std::string name);
  void CloseSpan(const vgpu::Device& device, int32_t id);
  void AnnotateSpan(int32_t id, std::string key, std::string value);
  void AddEvent(const vgpu::Device& device, std::string name,
                std::string detail);

  // vgpu::KernelObserver: kernels become leaf spans automatically.
  void OnKernelBegin(const vgpu::Device& device, const char* name) override;
  void OnKernelEnd(const vgpu::Device& device, const char* name,
                   const vgpu::KernelStats& stats,
                   double host_seconds) override;

  /// All spans, in open order (ids are indices into this vector).
  const std::vector<SpanRecord>& spans() const { return spans_; }
  const std::vector<EventRecord>& events() const { return events_; }

  /// Drops all recorded spans/events and the open-span stack. Does not
  /// change enabled() and does not detach from devices.
  void Clear();

 private:
  double HostNow() const;
  int32_t DeviceId(const vgpu::Device& device);

  bool enabled_ = false;
  std::vector<SpanRecord> spans_;
  std::vector<EventRecord> events_;
  std::vector<int32_t> stack_;  // Open spans, innermost last.
  std::unordered_map<const vgpu::Device*, int32_t> device_ids_;
  std::chrono::steady_clock::time_point epoch_ =
      std::chrono::steady_clock::now();
  int32_t open_kernel_ = -1;  // Kernels do not nest (device invariant).
};

/// RAII span on the global tracer. A no-op when tracing is disabled.
class TraceSpan {
 public:
  TraceSpan(vgpu::Device& device, const char* category, std::string name) {
    Tracer& t = Tracer::Global();
    if (!t.enabled()) return;
    t.Attach(device);
    device_ = &device;
    id_ = t.OpenSpan(device, category, std::move(name));
  }
  ~TraceSpan() {
    if (id_ >= 0) Tracer::Global().CloseSpan(*device_, id_);
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  void Annotate(std::string key, std::string value) {
    if (id_ >= 0) {
      Tracer::Global().AnnotateSpan(id_, std::move(key), std::move(value));
    }
  }

 private:
  vgpu::Device* device_ = nullptr;
  int32_t id_ = -1;
};

/// Records a point event on the global tracer (no-op when disabled).
inline void TraceInstant(vgpu::Device& device, std::string name,
                         std::string detail) {
  Tracer& t = Tracer::Global();
  if (!t.enabled()) return;
  t.Attach(device);
  t.AddEvent(device, std::move(name), std::move(detail));
}

/// Cooperative lifecycle seam: returns the device's sticky lifecycle status
/// (kCancelled / kDeadlineExceeded once a cancel request or simulated-cycle
/// deadline tripped, kUnavailable while a transient kernel fault is
/// pending), recording a trace instant the moment a query layer observes
/// the stop. Query drivers call this between kernels, phases, fragments,
/// and pipeline steps, and before returning a completed result.
inline Status CheckLifecycle(vgpu::Device& device) {
  Status st = device.LifecycleStatus();
  if (!st.ok()) {
    TraceInstant(device,
                 st.IsCancelled()      ? "lifecycle:cancelled"
                 : st.IsYielded()      ? "lifecycle:yielded"
                 : st.IsUnavailable()  ? "lifecycle:unavailable"
                                       : "lifecycle:deadline_exceeded",
                 st.message());
  }
  return st;
}

}  // namespace gpujoin::obs

#endif  // GPUJOIN_OBS_TRACE_H_
