#include "obs/registry.h"

#include <algorithm>
#include <cstring>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "obs/metrics.h"

namespace gpujoin::obs {

namespace {

// Structural misuse (unbounded labels, type clashes) is a programmer error:
// fail loudly and immediately rather than exporting a corrupt registry.
[[noreturn]] void RegistryAbort(const std::string& what) {
  std::fprintf(stderr, "FATAL: MetricsRegistry misuse: %s\n", what.c_str());
  std::abort();
}

bool ValidMetricName(std::string_view name) {
  if (name.empty()) return false;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '_' || c == ':';
    if (!ok) return false;
  }
  return true;
}

MetricLabels SortedLabels(std::string_view name, const MetricLabels& labels) {
  if (labels.size() > MetricsRegistry::kMaxLabels) {
    RegistryAbort(std::string(name) + ": more than " +
                  std::to_string(MetricsRegistry::kMaxLabels) + " labels");
  }
  MetricLabels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  for (size_t i = 0; i < sorted.size(); ++i) {
    if (sorted[i].first.empty()) {
      RegistryAbort(std::string(name) + ": empty label key");
    }
    if (i > 0 && sorted[i].first == sorted[i - 1].first) {
      RegistryAbort(std::string(name) + ": duplicate label key \"" +
                    sorted[i].first + "\"");
    }
  }
  return sorted;
}

// Shortest decimal form that still round-trips: integers print without a
// fractional part so exports stay byte-stable and diff-friendly.
std::string FormatNumber(double v) {
  if (!std::isfinite(v)) return "NaN";  // never happens for registry values
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  // Trim to the shortest representation that round-trips.
  for (int prec = 1; prec < 17; ++prec) {
    char shorter[64];
    std::snprintf(shorter, sizeof(shorter), "%.*g", prec, v);
    if (std::strtod(shorter, nullptr) == v) return shorter;
  }
  return buf;
}

std::string EscapeLabelValue(const std::string& v) {
  std::string out;
  for (const char c : v) {
    if (c == '\\' || c == '"') out += '\\';
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out += c;
  }
  return out;
}

Status MetricsMissing(const std::string& where, const std::string& field) {
  return Status::InvalidArgument(where + ": missing or invalid \"" + field +
                                 "\"");
}

Result<std::string> WriteTextFile(const std::string& dir,
                                  const std::string& filename,
                                  const std::string& body) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::Internal("cannot create " + dir + ": " + ec.message());
  }
  const std::string path = dir + "/" + filename;
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return Status::Internal("cannot open " + path);
  const size_t written = std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  if (written != body.size()) return Status::Internal("short write to " + path);
  return path;
}

}  // namespace

const char* MetricTypeName(MetricType t) {
  switch (t) {
    case MetricType::kCounter:
      return "counter";
    case MetricType::kGauge:
      return "gauge";
    case MetricType::kHistogram:
      return "histogram";
  }
  return "unknown";
}

// --- HistogramData ---------------------------------------------------------

int32_t HistogramData::BucketIndex(double v) {
  if (!(v >= 1.0)) return -1;  // underflow bucket; also catches NaN
  int exp = 0;
  const double frac = std::frexp(v, &exp);  // v = frac * 2^exp, frac in [0.5,1)
  int32_t e2 = exp - 1;                     // v in [2^e2, 2^(e2+1))
  if (e2 > 500) e2 = 500;                   // clamp: 2^500 is "infinity" here
  // Linear position of v within its octave, in [0, kSubBuckets).
  const double within = frac * 2.0 - 1.0;  // in [0,1)
  int sub = static_cast<int>(within * kSubBuckets);
  if (sub < 0) sub = 0;
  if (sub >= kSubBuckets) sub = kSubBuckets - 1;
  return e2 * kSubBuckets + sub;
}

double HistogramData::BucketLowerBound(int32_t index) {
  if (index < 0) return 0.0;
  const int32_t e2 = index / kSubBuckets;
  const int32_t sub = index % kSubBuckets;
  return std::ldexp(1.0 + static_cast<double>(sub) / kSubBuckets, e2);
}

double HistogramData::BucketUpperBound(int32_t index) {
  if (index < 0) return 1.0;
  return BucketLowerBound(index + 1);
}

void HistogramData::Observe(double v) {
  if (!std::isfinite(v)) {
    RegistryAbort("histogram observation is not finite");
  }
  if (count == 0) {
    min = v;
    max = v;
  } else {
    min = std::min(min, v);
    max = std::max(max, v);
  }
  ++count;
  sum += v;
  ++buckets[BucketIndex(v)];
}

void HistogramData::Add(const HistogramData& o) {
  if (o.count == 0) return;
  if (count == 0) {
    min = o.min;
    max = o.max;
  } else {
    min = std::min(min, o.min);
    max = std::max(max, o.max);
  }
  count += o.count;
  sum += o.sum;
  for (const auto& [index, n] : o.buckets) buckets[index] += n;
}

void HistogramData::Sub(const HistogramData& earlier) {
  if (earlier.count == 0) return;
  count = count >= earlier.count ? count - earlier.count : 0;
  sum -= earlier.sum;
  for (const auto& [index, n] : earlier.buckets) {
    auto it = buckets.find(index);
    if (it == buckets.end()) continue;
    it->second = it->second >= n ? it->second - n : 0;
    if (it->second == 0) buckets.erase(it);
  }
  if (count == 0) {
    sum = 0;
    min = 0;
    max = 0;
  }
  // min/max cannot be tightened without the raw stream; they stay as the
  // full-history envelope, which keeps quantile bounds conservative.
}

double HistogramData::QuantileUpperBound(double q) const {
  if (count == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  uint64_t rank = static_cast<uint64_t>(std::ceil(q * count));
  if (rank == 0) rank = 1;
  uint64_t seen = 0;
  for (const auto& [index, n] : buckets) {
    seen += n;
    if (seen >= rank) {
      return std::clamp(BucketUpperBound(index), min, max);
    }
  }
  return max;
}

double HistogramData::QuantileLowerBound(double q) const {
  if (count == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  uint64_t rank = static_cast<uint64_t>(std::ceil(q * count));
  if (rank == 0) rank = 1;
  uint64_t seen = 0;
  for (const auto& [index, n] : buckets) {
    seen += n;
    if (seen >= rank) {
      return std::clamp(BucketLowerBound(index), min, max);
    }
  }
  return max;
}

// --- MetricKey -------------------------------------------------------------

std::string MetricKey::ToString() const {
  std::string out = name;
  if (labels.empty()) return out;
  out += '{';
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += k;
    out += "=\"";
    out += EscapeLabelValue(v);
    out += '"';
  }
  out += '}';
  return out;
}

// --- MetricsSnapshot -------------------------------------------------------

MetricsSnapshot MetricsSnapshot::Delta(const MetricsSnapshot& earlier) const {
  MetricsSnapshot out;
  for (const auto& [key, cell] : cells) {
    MetricCell d = cell;
    auto it = earlier.cells.find(key);
    if (it != earlier.cells.end()) {
      const MetricCell& e = it->second;
      switch (d.type) {
        case MetricType::kCounter:
          d.counter = d.counter >= e.counter ? d.counter - e.counter : 0;
          break;
        case MetricType::kGauge:
          break;  // gauges are instantaneous: keep the later value
        case MetricType::kHistogram:
          d.hist.Sub(e.hist);
          break;
      }
    }
    // Drop cells the window never touched so deltas only show activity.
    const bool touched = (d.type == MetricType::kCounter && d.counter > 0) ||
                         (d.type == MetricType::kGauge) ||
                         (d.type == MetricType::kHistogram && d.hist.count > 0);
    if (touched) out.cells.emplace(key, std::move(d));
  }
  return out;
}

void MetricsSnapshot::Merge(const MetricsSnapshot& other) {
  for (const auto& [key, cell] : other.cells) {
    auto [it, inserted] = cells.emplace(key, cell);
    if (inserted) continue;
    MetricCell& mine = it->second;
    if (mine.type != cell.type) {
      RegistryAbort("merge type mismatch for " + key.ToString());
    }
    switch (mine.type) {
      case MetricType::kCounter:
        mine.counter += cell.counter;
        break;
      case MetricType::kGauge:
        mine.gauge = std::max(mine.gauge, cell.gauge);
        break;
      case MetricType::kHistogram:
        mine.hist.Add(cell.hist);
        break;
    }
  }
}

const MetricCell* MetricsSnapshot::Find(std::string_view name,
                                        const MetricLabels& labels) const {
  MetricKey key{std::string(name), SortedLabels(name, labels)};
  auto it = cells.find(key);
  return it == cells.end() ? nullptr : &it->second;
}

uint64_t MetricsSnapshot::CounterValue(std::string_view name,
                                       const MetricLabels& labels) const {
  const MetricCell* cell = Find(name, labels);
  if (cell == nullptr || cell->type != MetricType::kCounter) return 0;
  return cell->counter;
}

uint64_t MetricsSnapshot::CounterTotal(std::string_view name) const {
  uint64_t total = 0;
  // cells are ordered by name first, so all label sets of one name are
  // contiguous; a linear scan is fine at registry cardinalities.
  for (const auto& [key, cell] : cells) {
    if (key.name == name && cell.type == MetricType::kCounter) {
      total += cell.counter;
    }
  }
  return total;
}

const HistogramData* MetricsSnapshot::Histogram(
    std::string_view name, const MetricLabels& labels) const {
  const MetricCell* cell = Find(name, labels);
  if (cell == nullptr || cell->type != MetricType::kHistogram) return nullptr;
  return &cell->hist;
}

std::string MetricsSnapshot::ToPrometheus(bool include_host_timing) const {
  std::string out;
  // Two fixed-order passes: replay-stable cells first, host-timing cells
  // after a marker so "everything above the marker" is diffable across
  // GPUJOIN_SIM_THREADS settings.
  for (const int pass : {0, 1}) {
    if (pass == 1) {
      if (!include_host_timing) break;
      bool any_host = false;
      for (const auto& [key, cell] : cells) any_host |= cell.host_timing;
      if (!any_host) break;
      out += "# host-timing metrics below (not replay-stable)\n";
    }
    std::string last_name;
    for (const auto& [key, cell] : cells) {
      if (cell.host_timing != (pass == 1)) continue;
      if (key.name != last_name) {
        out += "# TYPE " + key.name + " " + MetricTypeName(cell.type) + "\n";
        last_name = key.name;
      }
      switch (cell.type) {
        case MetricType::kCounter:
          out += key.ToString() + " " +
                 FormatNumber(static_cast<double>(cell.counter)) + "\n";
          break;
        case MetricType::kGauge:
          out += key.ToString() + " " + FormatNumber(cell.gauge) + "\n";
          break;
        case MetricType::kHistogram: {
          uint64_t cumulative = 0;
          for (const auto& [index, n] : cell.hist.buckets) {
            cumulative += n;
            MetricKey bkey = key;
            bkey.name += "_bucket";
            bkey.labels.emplace_back(
                "le", FormatNumber(HistogramData::BucketUpperBound(index)));
            out += bkey.ToString() + " " +
                   FormatNumber(static_cast<double>(cumulative)) + "\n";
          }
          MetricKey inf = key;
          inf.name += "_bucket";
          inf.labels.emplace_back("le", "+Inf");
          out += inf.ToString() + " " +
                 FormatNumber(static_cast<double>(cell.hist.count)) + "\n";
          MetricKey sum = key;
          sum.name += "_sum";
          out += sum.ToString() + " " + FormatNumber(cell.hist.sum) + "\n";
          MetricKey cnt = key;
          cnt.name += "_count";
          out += cnt.ToString() + " " +
                 FormatNumber(static_cast<double>(cell.hist.count)) + "\n";
          break;
        }
      }
    }
  }
  return out;
}

std::string MetricsSnapshot::ToJson(const std::string& name,
                                    bool include_host_timing) const {
  JsonWriter w;
  w.BeginObject();
  w.Key("schema_version").Number(static_cast<int64_t>(1));
  w.Key("bench").String(name);
  w.Key("metrics").BeginArray();
  for (const auto& [key, cell] : cells) {
    if (cell.host_timing && !include_host_timing) continue;
    w.BeginObject();
    w.Key("name").String(key.name);
    w.Key("type").String(MetricTypeName(cell.type));
    w.Key("host_timing").Bool(cell.host_timing);
    w.Key("labels").BeginObject();
    for (const auto& [k, v] : key.labels) w.Key(k).String(v);
    w.EndObject();
    switch (cell.type) {
      case MetricType::kCounter:
        w.Key("value").Number(cell.counter);
        break;
      case MetricType::kGauge:
        w.Key("value").Number(cell.gauge);
        break;
      case MetricType::kHistogram:
        w.Key("count").Number(cell.hist.count);
        w.Key("sum").Number(cell.hist.sum);
        w.Key("min").Number(cell.hist.min);
        w.Key("max").Number(cell.hist.max);
        w.Key("buckets").BeginArray();
        for (const auto& [index, n] : cell.hist.buckets) {
          w.BeginObject();
          w.Key("le").Number(HistogramData::BucketUpperBound(index));
          w.Key("count").Number(n);
          w.EndObject();
        }
        w.EndArray();
        break;
    }
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.Take();
}

// --- MetricsRegistry -------------------------------------------------------

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry registry;
  return registry;
}

MetricCell& MetricsRegistry::Cell(std::string_view name,
                                  const MetricLabels& labels, MetricType type,
                                  bool host_timing) {
  if (!ValidMetricName(name)) {
    RegistryAbort("invalid metric name \"" + std::string(name) + "\"");
  }
  MetricKey key{std::string(name), SortedLabels(name, labels)};
  auto [it, inserted] = cells_.try_emplace(std::move(key));
  MetricCell& cell = it->second;
  if (inserted) {
    cell.type = type;
    cell.host_timing = host_timing;
  } else if (cell.type != type || cell.host_timing != host_timing) {
    RegistryAbort(std::string(name) + ": type/host-timing mismatch (" +
                  MetricTypeName(cell.type) + " vs " + MetricTypeName(type) +
                  ")");
  }
  return cell;
}

void MetricsRegistry::CounterAdd(std::string_view name,
                                 const MetricLabels& labels, uint64_t delta) {
  std::lock_guard<std::mutex> lock(mu_);
  Cell(name, labels, MetricType::kCounter, false).counter += delta;
}

void MetricsRegistry::GaugeSet(std::string_view name,
                               const MetricLabels& labels, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  Cell(name, labels, MetricType::kGauge, false).gauge = value;
}

void MetricsRegistry::GaugeMax(std::string_view name,
                               const MetricLabels& labels, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  MetricCell& cell = Cell(name, labels, MetricType::kGauge, false);
  cell.gauge = std::max(cell.gauge, value);
}

void MetricsRegistry::HistogramObserve(std::string_view name,
                                       const MetricLabels& labels,
                                       double value) {
  std::lock_guard<std::mutex> lock(mu_);
  Cell(name, labels, MetricType::kHistogram, false).hist.Observe(value);
}

void MetricsRegistry::HostGaugeSet(std::string_view name,
                                   const MetricLabels& labels, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  Cell(name, labels, MetricType::kGauge, true).gauge = value;
}

void MetricsRegistry::HostHistogramObserve(std::string_view name,
                                           const MetricLabels& labels,
                                           double value) {
  std::lock_guard<std::mutex> lock(mu_);
  Cell(name, labels, MetricType::kHistogram, true).hist.Observe(value);
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  snap.cells = cells_;
  return snap;
}

void MetricsRegistry::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  cells_.clear();
}

size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cells_.size();
}

// --- Validation / writers --------------------------------------------------

Status ValidateMetricsReport(const JsonValue& root) {
  if (!root.is_object()) {
    return Status::InvalidArgument(
        "metrics report: top level is not an object");
  }
  const JsonValue* version = root.Find("schema_version");
  if (version == nullptr || !version->is_number() || version->number != 1) {
    return MetricsMissing("metrics report", "schema_version");
  }
  const JsonValue* bench = root.Find("bench");
  if (bench == nullptr || !bench->is_string() || bench->string.empty()) {
    return MetricsMissing("metrics report", "bench");
  }
  const JsonValue* metrics = root.Find("metrics");
  if (metrics == nullptr || !metrics->is_array()) {
    return MetricsMissing("metrics report", "metrics");
  }
  for (size_t i = 0; i < metrics->array.size(); ++i) {
    const JsonValue& m = metrics->array[i];
    const std::string where = "metrics[" + std::to_string(i) + "]";
    if (!m.is_object()) {
      return Status::InvalidArgument(where + ": not an object");
    }
    const JsonValue* name = m.Find("name");
    if (name == nullptr || !name->is_string() || name->string.empty()) {
      return MetricsMissing(where, "name");
    }
    const JsonValue* type = m.Find("type");
    if (type == nullptr || !type->is_string() ||
        (type->string != "counter" && type->string != "gauge" &&
         type->string != "histogram")) {
      return MetricsMissing(where, "type");
    }
    const JsonValue* host = m.Find("host_timing");
    if (host == nullptr || host->kind != JsonValue::Kind::kBool) {
      return MetricsMissing(where, "host_timing");
    }
    const JsonValue* labels = m.Find("labels");
    if (labels == nullptr || !labels->is_object()) {
      return MetricsMissing(where, "labels");
    }
    for (const auto& [k, v] : labels->object) {
      if (k.empty() || !v.is_string()) {
        return Status::InvalidArgument(where +
                                       ": labels must map keys to strings");
      }
    }
    if (type->string == "histogram") {
      for (const char* f : {"count", "sum", "min", "max"}) {
        const JsonValue* v = m.Find(f);
        if (v == nullptr || !v->is_number() || !std::isfinite(v->number)) {
          return MetricsMissing(where, f);
        }
      }
      const double count = m.Find("count")->number;
      if (count < 0) {
        return Status::InvalidArgument(where + ": negative count");
      }
      const JsonValue* buckets = m.Find("buckets");
      if (buckets == nullptr || !buckets->is_array()) {
        return MetricsMissing(where, "buckets");
      }
      double last_le = -1;
      double bucket_total = 0;
      for (size_t b = 0; b < buckets->array.size(); ++b) {
        const JsonValue& bucket = buckets->array[b];
        const std::string bwhere =
            where + ".buckets[" + std::to_string(b) + "]";
        if (!bucket.is_object()) {
          return Status::InvalidArgument(bwhere + ": not an object");
        }
        const JsonValue* le = bucket.Find("le");
        const JsonValue* n = bucket.Find("count");
        if (le == nullptr || !le->is_number() || !std::isfinite(le->number)) {
          return MetricsMissing(bwhere, "le");
        }
        if (n == nullptr || !n->is_number() || !std::isfinite(n->number) ||
            n->number < 0) {
          return MetricsMissing(bwhere, "count");
        }
        if (le->number <= last_le) {
          return Status::InvalidArgument(
              bwhere + ": bucket upper bounds must be strictly ascending");
        }
        last_le = le->number;
        bucket_total += n->number;
      }
      if (bucket_total != count) {
        return Status::InvalidArgument(
            where + ": bucket counts do not sum to count");
      }
    } else {
      const JsonValue* v = m.Find("value");
      if (v == nullptr || !v->is_number() || !std::isfinite(v->number)) {
        return MetricsMissing(where, "value");
      }
      if (type->string == "counter" && v->number < 0) {
        return Status::InvalidArgument(where + ": negative counter");
      }
    }
  }
  return Status::OK();
}

Result<std::string> WriteMetricsJson(const MetricsSnapshot& snapshot,
                                     const std::string& dir,
                                     const std::string& name,
                                     bool include_host_timing) {
  const std::string bench = SanitizeBenchName(name);
  return WriteTextFile(dir, "METRICS_" + bench + ".json",
                       snapshot.ToJson(bench, include_host_timing));
}

Result<std::string> WriteMetricsProm(const MetricsSnapshot& snapshot,
                                     const std::string& dir,
                                     const std::string& name,
                                     bool include_host_timing) {
  const std::string bench = SanitizeBenchName(name);
  return WriteTextFile(dir, "METRICS_" + bench + ".prom",
                       snapshot.ToPrometheus(include_host_timing));
}

}  // namespace gpujoin::obs
