// Structured metrics sink: the machine-readable counterpart of the bench
// harness's human tables. Each bench binary configures the process-wide
// sink once (PrintBanner) and records one MetricRow per measured run
// (bench::ReportRun/RecordRun); the harness flushes the sink to
// $GPUJOIN_JSON_DIR/BENCH_<name>.json alongside the Chrome trace
// TRACE_<name>.json. GPUJOIN_JSON_DIR defaults to bench/results, so every
// bench run emits structured results; set GPUJOIN_JSON_DIR="" to opt out.
//
// BENCH_<name>.json schema (schema_version 1):
//   {
//     "schema_version": 1,
//     "bench": "<sanitized name>",        // e.g. "figure_9"
//     "title": "<human title>",
//     "device": "A100" | "RTX3090",
//     "scale_log2": 20,
//     "rows": [
//       {
//         "algo": "PHJ-OM",
//         "backend": "vgpu" | "cpux" | "auto:cpux" | ...,  // Executing backend.
//         "params": {"zipf": "0.50", ...},   // Bench-specific dimensions.
//         "mtuples_per_sec": 123.4,
//         "phases": {"transform_cycles": ..., "match_cycles": ...,
//                    "materialize_cycles": ..., "total_cycles": ...},
//         "l2_hit_rate": 0.62,               // [0,1] over sectors.
//         "peak_mem_bytes": 123456,
//         "output_rows": 1048576,
//         "sim": {"warp_instructions": ..., "sectors": ...,
//                 "dram_sectors": ..., "bytes_read": ..., "bytes_written": ...}
//       }, ...
//     ]
//   }
// Every field above except "sim" and "backend" is REQUIRED and must be a
// finite number / non-empty string; ValidateBenchReport (and
// tools/bench_json_check) enforce that, so a NaN phase time or a missing
// metric fails CI instead of shipping silently. "backend" is optional for
// compatibility with baselines recorded before backend routing existed,
// but must be a non-empty string when present (rows written by current
// code always carry it).

#ifndef GPUJOIN_OBS_METRICS_H_
#define GPUJOIN_OBS_METRICS_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "obs/json.h"
#include "vgpu/stats.h"

namespace gpujoin::obs {

/// One measured run (a row of a bench's human table).
struct MetricRow {
  /// Bench-specific dimensions, in display order (value strings exactly as
  /// printed in the human table).
  std::vector<std::pair<std::string, std::string>> params;
  std::string algo;
  /// Backend that executed the run: "vgpu", "cpux", or "auto:<chosen>" for
  /// router-decided runs. Serialized as "vgpu" when left empty (the
  /// pre-routing default: every bench ran on the simulated device).
  std::string backend;
  double transform_cycles = 0;
  double match_cycles = 0;
  double materialize_cycles = 0;
  double total_cycles = 0;
  double mtuples_per_sec = 0;
  double l2_hit_rate = 0;
  uint64_t peak_mem_bytes = 0;
  uint64_t output_rows = 0;
  vgpu::KernelStats stats;
};

class MetricsSink {
 public:
  /// The process-wide sink the harness and bench helpers share.
  static MetricsSink& Global();

  /// Names the bench (called by harness::PrintBanner). The first Configure
  /// wins; later banners in the same process keep recording into the same
  /// document (multi-section benches).
  void Configure(std::string bench, std::string title, std::string device,
                 int scale_log2);
  bool configured() const { return !bench_.empty(); }
  const std::string& bench() const { return bench_; }

  void AddRow(MetricRow row) { rows_.push_back(std::move(row)); }
  const std::vector<MetricRow>& rows() const { return rows_; }

  /// Serializes the BENCH_<name>.json document.
  std::string ToJson() const;
  /// Writes ToJson() to `dir`/BENCH_<bench>.json, creating `dir` if
  /// needed; returns the path written.
  Result<std::string> WriteJson(const std::string& dir) const;

  void Clear();

 private:
  std::string bench_, title_, device_;
  int scale_log2_ = 0;
  std::vector<MetricRow> rows_;
};

/// "Figure 17 / Table 6" -> "figure_17_table_6": lowercase, alphanumeric
/// runs kept, everything else collapsed to single underscores.
std::string SanitizeBenchName(const std::string& name);

/// Validates a parsed BENCH_*.json against the schema above. Fails on a
/// missing field, a wrong type, a non-finite number, or an out-of-range
/// l2_hit_rate. Empty "rows" is legal (a bench may measure nothing at the
/// smallest scale).
Status ValidateBenchReport(const JsonValue& root);

/// Validates a parsed TRACE_*.json: a traceEvents array whose entries all
/// carry name/ph/ts (the fields Perfetto requires).
Status ValidateChromeTrace(const JsonValue& root);

/// The JSON export directory: $GPUJOIN_JSON_DIR, defaulting to
/// "bench/results" when the variable is unset. An explicitly empty value
/// ("") disables export.
std::string JsonDirFromEnv();

}  // namespace gpujoin::obs

#endif  // GPUJOIN_OBS_METRICS_H_
