#include "obs/metrics.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>

namespace gpujoin::obs {

MetricsSink& MetricsSink::Global() {
  static MetricsSink sink;
  return sink;
}

void MetricsSink::Configure(std::string bench, std::string title,
                            std::string device, int scale_log2) {
  if (configured()) return;
  bench_ = std::move(bench);
  title_ = std::move(title);
  device_ = std::move(device);
  scale_log2_ = scale_log2;
}

std::string MetricsSink::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("schema_version").Number(static_cast<int64_t>(1));
  w.Key("bench").String(bench_);
  w.Key("title").String(title_);
  w.Key("device").String(device_);
  w.Key("scale_log2").Number(static_cast<int64_t>(scale_log2_));
  w.Key("rows").BeginArray();
  for (const MetricRow& row : rows_) {
    w.BeginObject();
    w.Key("algo").String(row.algo);
    w.Key("backend").String(row.backend.empty() ? "vgpu" : row.backend);
    w.Key("params").BeginObject();
    for (const auto& [key, value] : row.params) {
      w.Key(key).String(value);
    }
    w.EndObject();
    w.Key("mtuples_per_sec").Number(row.mtuples_per_sec);
    w.Key("phases").BeginObject();
    w.Key("transform_cycles").Number(row.transform_cycles);
    w.Key("match_cycles").Number(row.match_cycles);
    w.Key("materialize_cycles").Number(row.materialize_cycles);
    w.Key("total_cycles").Number(row.total_cycles);
    w.EndObject();
    w.Key("l2_hit_rate").Number(row.l2_hit_rate);
    w.Key("peak_mem_bytes").Number(row.peak_mem_bytes);
    w.Key("output_rows").Number(row.output_rows);
    w.Key("sim").BeginObject();
    w.Key("warp_instructions").Number(row.stats.warp_instructions);
    w.Key("sectors").Number(row.stats.sectors);
    w.Key("dram_sectors").Number(row.stats.dram_sectors);
    w.Key("bytes_read").Number(row.stats.bytes_read);
    w.Key("bytes_written").Number(row.stats.bytes_written);
    w.EndObject();
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.Take();
}

Result<std::string> MetricsSink::WriteJson(const std::string& dir) const {
  if (!configured()) {
    return Status::InvalidArgument("MetricsSink: not configured (no banner)");
  }
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::Internal("cannot create " + dir + ": " + ec.message());
  }
  const std::string path = dir + "/BENCH_" + bench_ + ".json";
  const std::string json = ToJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return Status::Internal("cannot open " + path);
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (written != json.size()) return Status::Internal("short write to " + path);
  return path;
}

void MetricsSink::Clear() {
  bench_.clear();
  title_.clear();
  device_.clear();
  scale_log2_ = 0;
  rows_.clear();
}

std::string SanitizeBenchName(const std::string& name) {
  std::string out;
  bool pending_sep = false;
  for (const char c : name) {
    if (std::isalnum(static_cast<unsigned char>(c)) != 0) {
      if (pending_sep && !out.empty()) out += '_';
      pending_sep = false;
      out += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    } else {
      pending_sep = true;
    }
  }
  return out.empty() ? "bench" : out;
}

namespace {

Status Missing(const std::string& where, const std::string& field) {
  return Status::InvalidArgument(where + ": missing or invalid \"" + field +
                                 "\"");
}

Status RequireFiniteNumber(const JsonValue& obj, const std::string& where,
                           const std::string& field) {
  const JsonValue* v = obj.Find(field);
  if (v == nullptr || !v->is_number() || !std::isfinite(v->number)) {
    return Missing(where, field);
  }
  return Status::OK();
}

Status RequireString(const JsonValue& obj, const std::string& where,
                     const std::string& field, bool allow_empty = false) {
  const JsonValue* v = obj.Find(field);
  if (v == nullptr || !v->is_string() ||
      (!allow_empty && v->string.empty())) {
    return Missing(where, field);
  }
  return Status::OK();
}

}  // namespace

Status ValidateBenchReport(const JsonValue& root) {
  if (!root.is_object()) {
    return Status::InvalidArgument("bench report: top level is not an object");
  }
  const JsonValue* version = root.Find("schema_version");
  if (version == nullptr || !version->is_number() || version->number != 1) {
    return Missing("bench report", "schema_version");
  }
  GPUJOIN_RETURN_IF_ERROR(RequireString(root, "bench report", "bench"));
  GPUJOIN_RETURN_IF_ERROR(
      RequireString(root, "bench report", "title", /*allow_empty=*/true));
  GPUJOIN_RETURN_IF_ERROR(RequireString(root, "bench report", "device"));
  GPUJOIN_RETURN_IF_ERROR(
      RequireFiniteNumber(root, "bench report", "scale_log2"));
  const JsonValue* rows = root.Find("rows");
  if (rows == nullptr || !rows->is_array()) {
    return Missing("bench report", "rows");
  }
  for (size_t i = 0; i < rows->array.size(); ++i) {
    const JsonValue& row = rows->array[i];
    const std::string where = "rows[" + std::to_string(i) + "]";
    if (!row.is_object()) {
      return Status::InvalidArgument(where + ": not an object");
    }
    GPUJOIN_RETURN_IF_ERROR(RequireString(row, where, "algo"));
    // "backend" is optional (pre-routing baselines lack it) but must be a
    // non-empty string when present.
    if (const JsonValue* backend = row.Find("backend"); backend != nullptr) {
      if (!backend->is_string() || backend->string.empty()) {
        return Status::InvalidArgument(where +
                                       ": backend must be a non-empty string");
      }
    }
    const JsonValue* params = row.Find("params");
    if (params == nullptr || !params->is_object()) {
      return Missing(where, "params");
    }
    GPUJOIN_RETURN_IF_ERROR(
        RequireFiniteNumber(row, where, "mtuples_per_sec"));
    const JsonValue* phases = row.Find("phases");
    if (phases == nullptr || !phases->is_object()) {
      return Missing(where, "phases");
    }
    for (const char* f : {"transform_cycles", "match_cycles",
                          "materialize_cycles", "total_cycles"}) {
      GPUJOIN_RETURN_IF_ERROR(
          RequireFiniteNumber(*phases, where + ".phases", f));
    }
    GPUJOIN_RETURN_IF_ERROR(RequireFiniteNumber(row, where, "l2_hit_rate"));
    const double l2 = row.Find("l2_hit_rate")->number;
    if (l2 < 0 || l2 > 1) {
      return Status::InvalidArgument(where + ": l2_hit_rate out of [0,1]");
    }
    GPUJOIN_RETURN_IF_ERROR(RequireFiniteNumber(row, where, "peak_mem_bytes"));
    GPUJOIN_RETURN_IF_ERROR(RequireFiniteNumber(row, where, "output_rows"));
  }
  return Status::OK();
}

Status ValidateChromeTrace(const JsonValue& root) {
  if (!root.is_object()) {
    return Status::InvalidArgument("trace: top level is not an object");
  }
  const JsonValue* events = root.Find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    return Missing("trace", "traceEvents");
  }
  for (size_t i = 0; i < events->array.size(); ++i) {
    const JsonValue& ev = events->array[i];
    const std::string where = "traceEvents[" + std::to_string(i) + "]";
    if (!ev.is_object()) {
      return Status::InvalidArgument(where + ": not an object");
    }
    GPUJOIN_RETURN_IF_ERROR(
        RequireString(ev, where, "name", /*allow_empty=*/true));
    GPUJOIN_RETURN_IF_ERROR(RequireString(ev, where, "ph"));
    if (ev.Find("ph")->string != "M") {
      GPUJOIN_RETURN_IF_ERROR(RequireFiniteNumber(ev, where, "ts"));
    }
  }
  return Status::OK();
}

std::string JsonDirFromEnv() {
  const char* dir = std::getenv("GPUJOIN_JSON_DIR");
  // Unset means the default export directory (benches emit structured
  // results out of the box); an explicitly empty value opts out.
  return dir == nullptr ? std::string("bench/results") : std::string(dir);
}

}  // namespace gpujoin::obs
