// Deterministic, label-dimensioned metrics registry (DESIGN.md §15) — the
// cross-run aggregation layer the per-query Tracer cannot provide. Every
// layer of the stack (service admission/scheduling, the CPU/GPU router,
// the resilient operators, the providers, the harness) records monotonic
// counters, gauges, and log₂-bucketed histograms here; snapshots export as
// a Prometheus-style text exposition, a schema-validated METRICS_<name>.json
// under GPUJOIN_JSON_DIR, and the sched/router summary block appended to
// GPUJOIN_EXPLAIN=1 output.
//
// Determinism contract: metrics are keyed by (name, sorted labels) in a
// std::map, so iteration, snapshot, Delta, Merge, and both exports are in
// one fixed order — a workload whose instrumented values are themselves
// deterministic (simulated cycles, counts, bytes) produces bit-identical
// exports at every GPUJOIN_SIM_THREADS setting, with tracing on or off,
// and under fault-injection replay (tests/metrics_test.cc asserts all
// three). Metrics measuring HOST time (cpux wall seconds, simulator
// self-profiling) are intrinsically replay-unstable; they must be recorded
// through the Host* entry points, which flag the cell so exports can
// segregate or exclude them (the Prometheus writer emits them after a
// marker line; ToJson can drop them entirely).
//
// Label cardinality rules: at most kMaxLabels labels per metric; label
// values must come from bounded sets (status codes, backend/decision/
// action enums, configured tenant names) — NEVER query names, paths, or
// anything per-submission, which would grow the registry without bound.
// Violations of the structural rules (too many labels, duplicate keys,
// empty or non-[a-z0-9_:] names) abort with a diagnostic: they are
// programmer errors, not data.

#ifndef GPUJOIN_OBS_REGISTRY_H_
#define GPUJOIN_OBS_REGISTRY_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"
#include "obs/json.h"

namespace gpujoin::obs {

enum class MetricType { kCounter, kGauge, kHistogram };

/// "counter" / "gauge" / "histogram".
const char* MetricTypeName(MetricType t);

/// Label set: key/value pairs. Callers may pass them in any order; the
/// registry sorts by key before keying the cell.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

/// Log-linear histogram: each power of two splits into kSubBuckets linear
/// sub-buckets, so an upper-bound quantile estimate overshoots the true
/// value by at most 1/kSubBuckets of an octave (~19%) instead of a full
/// octave. Values < 1 share one underflow bucket (index -1, bound [0,1));
/// non-positive values land there too. Buckets are sparse: only observed
/// indices are stored, in ascending index order.
struct HistogramData {
  static constexpr int kSubBuckets = 4;

  uint64_t count = 0;
  double sum = 0;
  double min = 0;
  double max = 0;
  /// bucket index -> observations in that bucket (non-cumulative).
  std::map<int32_t, uint64_t> buckets;

  /// The bucket index `v` falls into.
  static int32_t BucketIndex(double v);
  /// Half-open bucket range [lower, upper) for an index.
  static double BucketLowerBound(int32_t index);
  static double BucketUpperBound(int32_t index);

  void Observe(double v);
  void Add(const HistogramData& o);
  /// Subtracts an earlier observation window (callers guarantee `earlier`
  /// is a prefix of this histogram's history; counts saturate at 0).
  void Sub(const HistogramData& earlier);

  /// Upper/lower bound of the q-quantile (q in [0,1]) from the bucket
  /// boundaries, clamped into [min, max]. 0 when empty.
  double QuantileUpperBound(double q) const;
  double QuantileLowerBound(double q) const;
};

/// Registry key: metric name plus its sorted label set.
struct MetricKey {
  std::string name;
  MetricLabels labels;  // sorted by key

  bool operator<(const MetricKey& o) const {
    if (name != o.name) return name < o.name;
    return labels < o.labels;
  }
  bool operator==(const MetricKey& o) const {
    return name == o.name && labels == o.labels;
  }
  /// name{k="v",...} (Prometheus sample syntax, values escaped).
  std::string ToString() const;
};

/// One metric cell. Exactly one of counter/gauge/hist is meaningful,
/// selected by `type`.
struct MetricCell {
  MetricType type = MetricType::kCounter;
  /// True for cells recorded through the Host* entry points: the value
  /// measures host time and is NOT replay-stable. Exports segregate these.
  bool host_timing = false;
  uint64_t counter = 0;
  double gauge = 0;
  HistogramData hist;
};

/// Fixed-order snapshot of a registry (or a delta/merge of snapshots).
class MetricsSnapshot {
 public:
  std::map<MetricKey, MetricCell> cells;

  bool empty() const { return cells.empty(); }
  size_t size() const { return cells.size(); }

  /// This snapshot minus an earlier one of the same registry: counters and
  /// histogram buckets subtract (saturating at 0), gauges keep this
  /// snapshot's value. Cells absent from `earlier` pass through.
  MetricsSnapshot Delta(const MetricsSnapshot& earlier) const;

  /// Adds `other` into this snapshot in fixed key order: counters and
  /// histograms add, gauges take the max (the only order-independent gauge
  /// merge). Merging any permutation of shard snapshots yields the same
  /// result — the bit-identical merge the parallel-simulation contract
  /// requires.
  void Merge(const MetricsSnapshot& other);

  const MetricCell* Find(std::string_view name,
                         const MetricLabels& labels = {}) const;
  /// Counter value of one cell (0 when absent).
  uint64_t CounterValue(std::string_view name,
                        const MetricLabels& labels = {}) const;
  /// Sum of all counter cells with this name, across every label set.
  uint64_t CounterTotal(std::string_view name) const;
  /// Histogram of one cell (nullptr when absent or not a histogram).
  const HistogramData* Histogram(std::string_view name,
                                 const MetricLabels& labels = {}) const;

  /// Prometheus text exposition: "# TYPE" lines, samples in fixed key
  /// order, histograms as cumulative le-buckets plus _sum/_count. Cells
  /// flagged host_timing are emitted after a marker comment (or dropped
  /// when include_host_timing is false), so "diff everything above the
  /// marker" is the replay-stability check.
  std::string ToPrometheus(bool include_host_timing = true) const;

  /// METRICS_<name>.json document (schema below; see ValidateMetricsReport).
  std::string ToJson(const std::string& name,
                     bool include_host_timing = true) const;
};

/// Process-wide metrics registry. Mutations are cheap (one map lookup) and
/// mutex-guarded; the deterministic layers only ever record from the
/// simulator's driving thread, so ordering is deterministic wherever the
/// recorded values are.
class MetricsRegistry {
 public:
  static constexpr size_t kMaxLabels = 4;

  static MetricsRegistry& Global();

  void CounterAdd(std::string_view name, const MetricLabels& labels = {},
                  uint64_t delta = 1);
  void GaugeSet(std::string_view name, const MetricLabels& labels,
                double value);
  /// Keeps the maximum of the current and new value (high-watermark gauge).
  void GaugeMax(std::string_view name, const MetricLabels& labels,
                double value);
  void HistogramObserve(std::string_view name, const MetricLabels& labels,
                        double value);

  /// Host-timing variants: identical semantics, but the cell is flagged
  /// replay-unstable and segregated by the exports.
  void HostGaugeSet(std::string_view name, const MetricLabels& labels,
                    double value);
  void HostHistogramObserve(std::string_view name, const MetricLabels& labels,
                            double value);

  MetricsSnapshot Snapshot() const;
  void Clear();
  size_t size() const;

 private:
  MetricCell& Cell(std::string_view name, const MetricLabels& labels,
                   MetricType type, bool host_timing);

  mutable std::mutex mu_;
  std::map<MetricKey, MetricCell> cells_;
};

// --- Export / validation ---------------------------------------------------
//
// METRICS_<name>.json schema (schema_version 1):
//   {
//     "schema_version": 1,
//     "bench": "<sanitized name>",
//     "metrics": [
//       {"name": "service_admissions_total", "type": "counter",
//        "host_timing": false,
//        "labels": {"decision": "admitted", "tenant": "hog"},
//        "value": 12},
//       {"name": "...", "type": "gauge", ..., "value": 1.5},
//       {"name": "service_wait_cycles", "type": "histogram", ...,
//        "count": 5, "sum": 123.0, "min": 1.0, "max": 50.0,
//        "buckets": [{"le": 16.0, "count": 3}, ...]}   // non-cumulative
//     ]
//   }
// Bucket "le" values are the buckets' upper bounds, strictly ascending, and
// the bucket counts must sum to "count". Every number must be finite.

/// Validates a parsed METRICS_*.json against the schema above.
Status ValidateMetricsReport(const JsonValue& root);

/// Writes snapshot.ToJson(name) to `dir`/METRICS_<name>.json (creating
/// `dir`); returns the path written.
Result<std::string> WriteMetricsJson(const MetricsSnapshot& snapshot,
                                     const std::string& dir,
                                     const std::string& name,
                                     bool include_host_timing = true);
/// Writes snapshot.ToPrometheus() to `dir`/METRICS_<name>.prom.
Result<std::string> WriteMetricsProm(const MetricsSnapshot& snapshot,
                                     const std::string& dir,
                                     const std::string& name,
                                     bool include_host_timing = true);

}  // namespace gpujoin::obs

#endif  // GPUJOIN_OBS_REGISTRY_H_
