#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace gpujoin::obs {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::BeforeValue() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // Key() already handled the comma.
  }
  if (!has_sibling_.empty()) {
    if (has_sibling_.back()) out_ += ',';
    has_sibling_.back() = true;
  }
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_ += '{';
  has_sibling_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  has_sibling_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_ += '[';
  has_sibling_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  has_sibling_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::Key(const std::string& k) {
  if (!has_sibling_.empty()) {
    if (has_sibling_.back()) out_ += ',';
    has_sibling_.back() = true;
  }
  out_ += '"';
  out_ += JsonEscape(k);
  out_ += "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(const std::string& v) {
  BeforeValue();
  out_ += '"';
  out_ += JsonEscape(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::Number(double v) {
  BeforeValue();
  if (!std::isfinite(v)) {
    out_ += "null";
    return *this;
  }
  char buf[32];
  // %.17g round-trips any double; prefer the shortest of %.15g when exact.
  std::snprintf(buf, sizeof(buf), "%.15g", v);
  if (std::strtod(buf, nullptr) != v) {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Number(uint64_t v) {
  BeforeValue();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::Number(int64_t v) {
  BeforeValue();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::Bool(bool v) {
  BeforeValue();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
  return *this;
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

/// Recursive-descent parser over a bounds-checked cursor.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<JsonValue> Parse() {
    GPUJOIN_ASSIGN_OR_RETURN(JsonValue v, ParseValue(0));
    SkipWs();
    if (pos_ != text_.size()) {
      return Fail("trailing characters after JSON value");
    }
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status Fail(const std::string& what) const {
    return Status::InvalidArgument("JSON parse error at offset " +
                                   std::to_string(pos_) + ": " + what);
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<JsonValue> ParseValue(int depth) {
    if (depth > kMaxDepth) return Fail("nesting too deep");
    SkipWs();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(depth);
      case '[':
        return ParseArray(depth);
      case '"':
        return ParseString();
      case 't':
      case 'f':
        return ParseBool();
      case 'n':
        return ParseNull();
      default:
        return ParseNumber();
    }
  }

  Result<JsonValue> ParseObject(int depth) {
    ++pos_;  // '{'
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    SkipWs();
    if (Consume('}')) return v;
    while (true) {
      SkipWs();
      GPUJOIN_ASSIGN_OR_RETURN(JsonValue key, ParseString());
      SkipWs();
      if (!Consume(':')) return Fail("expected ':' in object");
      GPUJOIN_ASSIGN_OR_RETURN(JsonValue val, ParseValue(depth + 1));
      v.object.emplace_back(std::move(key.string), std::move(val));
      SkipWs();
      if (Consume('}')) return v;
      if (!Consume(',')) return Fail("expected ',' or '}' in object");
    }
  }

  Result<JsonValue> ParseArray(int depth) {
    ++pos_;  // '['
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    SkipWs();
    if (Consume(']')) return v;
    while (true) {
      GPUJOIN_ASSIGN_OR_RETURN(JsonValue elem, ParseValue(depth + 1));
      v.array.push_back(std::move(elem));
      SkipWs();
      if (Consume(']')) return v;
      if (!Consume(',')) return Fail("expected ',' or ']' in array");
    }
  }

  Result<JsonValue> ParseString() {
    if (!Consume('"')) return Fail("expected string");
    JsonValue v;
    v.kind = JsonValue::Kind::kString;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return v;
      if (c != '\\') {
        v.string += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char e = text_[pos_++];
      switch (e) {
        case '"':
          v.string += '"';
          break;
        case '\\':
          v.string += '\\';
          break;
        case '/':
          v.string += '/';
          break;
        case 'n':
          v.string += '\n';
          break;
        case 'r':
          v.string += '\r';
          break;
        case 't':
          v.string += '\t';
          break;
        case 'b':
          v.string += '\b';
          break;
        case 'f':
          v.string += '\f';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Fail("bad hex digit in \\u escape");
            }
          }
          // Our writer only emits \u00xx for control bytes; decode BMP
          // code points as UTF-8 for completeness.
          if (code < 0x80) {
            v.string += static_cast<char>(code);
          } else if (code < 0x800) {
            v.string += static_cast<char>(0xc0 | (code >> 6));
            v.string += static_cast<char>(0x80 | (code & 0x3f));
          } else {
            v.string += static_cast<char>(0xe0 | (code >> 12));
            v.string += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            v.string += static_cast<char>(0x80 | (code & 0x3f));
          }
          break;
        }
        default:
          return Fail("bad escape character");
      }
    }
    return Fail("unterminated string");
  }

  Result<JsonValue> ParseBool() {
    JsonValue v;
    v.kind = JsonValue::Kind::kBool;
    if (text_.compare(pos_, 4, "true") == 0) {
      v.boolean = true;
      pos_ += 4;
      return v;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      v.boolean = false;
      pos_ += 5;
      return v;
    }
    return Fail("expected true/false");
  }

  Result<JsonValue> ParseNull() {
    if (text_.compare(pos_, 4, "null") != 0) return Fail("expected null");
    pos_ += 4;
    JsonValue v;
    v.kind = JsonValue::Kind::kNull;
    return v;
  }

  Result<JsonValue> ParseNumber() {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Fail("expected a value");
    const std::string tok = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double d = std::strtod(tok.c_str(), &end);
    if (end == nullptr || *end != '\0') return Fail("malformed number");
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.number = d;
    return v;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> ParseJson(const std::string& text) {
  return Parser(text).Parse();
}

}  // namespace gpujoin::obs
