// Chrome trace-event exporter: renders a Tracer's spans and events as the
// trace-event JSON format that chrome://tracing and Perfetto load
// directly. The timeline is SIMULATED time (span cycles converted to
// microseconds via the device clock), so the trace shows where the modeled
// GPU spends its cycles, not where the simulator spends host time.

#ifndef GPUJOIN_OBS_CHROME_TRACE_H_
#define GPUJOIN_OBS_CHROME_TRACE_H_

#include <string>

#include "common/status.h"
#include "obs/trace.h"

namespace gpujoin::obs {

/// The complete trace document: {"traceEvents": [...], ...}. Spans become
/// duration ("ph":"X") events, EventRecords become instant ("ph":"i")
/// events; each device timeline is a separate tid.
std::string ChromeTraceJson(const Tracer& tracer);

/// Writes ChromeTraceJson to `path` (overwrites).
Status WriteChromeTrace(const Tracer& tracer, const std::string& path);

}  // namespace gpujoin::obs

#endif  // GPUJOIN_OBS_CHROME_TRACE_H_
