// EXPLAIN ANALYZE-style renderer: prints a Tracer's span tree with
// per-phase cycle shares and the top-k kernels inside each phase —
// the human-readable view of the same data the Chrome trace exports.

#ifndef GPUJOIN_OBS_EXPLAIN_H_
#define GPUJOIN_OBS_EXPLAIN_H_

#include <string>

#include "obs/trace.h"

namespace gpujoin::obs {

struct ExplainOptions {
  /// Kernels listed per parent span (aggregated by kernel name, by cycles
  /// descending).
  int top_k_kernels = 3;
  /// Non-kernel spans cheaper than this share of their root are elided.
  double min_fraction = 0.0;
};

/// Renders every root span in the tracer as an indented tree:
///   query:join:PHJ-OM     cycles    100.0%   sim ms   peak MB
///   ├─ phase:transform    ...        41.4%   ...
///   │    kernels: radix_scatter 61.2% x4, histogram 20.3% x4
/// Percentages are of the parent span; an "(unattributed)" line appears
/// when a span's non-kernel children do not cover its cycles.
std::string RenderExplain(const Tracer& tracer, const ExplainOptions& options = {});

class MetricsSnapshot;

/// Renders the cross-query counters of a metrics snapshot as the
/// "[metrics]" summary block appended to GPUJOIN_EXPLAIN=1 output:
/// one line each for the service (admissions/outcomes/borrows), the
/// scheduler (turns/passes/preemptions), the router (decisions/fallbacks),
/// and the execution layer (ops/launches/degradations/faults). Sections
/// with no samples are omitted; an empty snapshot renders "".
std::string RenderMetricsSummary(const MetricsSnapshot& snapshot);

}  // namespace gpujoin::obs

#endif  // GPUJOIN_OBS_EXPLAIN_H_
