#include "obs/chrome_trace.h"

#include <algorithm>
#include <cstdio>
#include <vector>

#include "obs/json.h"

namespace gpujoin::obs {

namespace {

constexpr int kPid = 1;

void CommonFields(JsonWriter& w, const std::string& name,
                  const std::string& cat, double ts_us, int32_t tid) {
  w.Key("name").String(name);
  w.Key("cat").String(cat);
  w.Key("ts").Number(ts_us);
  w.Key("pid").Number(static_cast<int64_t>(kPid));
  w.Key("tid").Number(static_cast<int64_t>(tid));
}

}  // namespace

std::string ChromeTraceJson(const Tracer& tracer) {
  JsonWriter w;
  w.BeginObject();
  w.Key("displayTimeUnit").String("ms");
  w.Key("traceEvents").BeginArray();

  for (const SpanRecord& span : tracer.spans()) {
    if (!span.closed) continue;
    w.BeginObject();
    CommonFields(w, span.name, span.category, span.start_seconds * 1e6,
                 span.device_id);
    w.Key("ph").String("X");
    w.Key("dur").Number(span.duration_seconds() * 1e6);
    w.Key("args").BeginObject();
    w.Key("cycles").Number(span.duration_cycles());
    w.Key("warp_instructions").Number(span.stats.warp_instructions);
    w.Key("sectors").Number(span.stats.sectors);
    w.Key("l2_hit_rate").Number(span.stats.L2HitRate());
    w.Key("dram_mb").Number(static_cast<double>(span.stats.dram_sectors) *
                            32.0 / 1e6);
    w.Key("live_bytes_start").Number(span.live_bytes_start);
    w.Key("live_bytes_end").Number(span.live_bytes_end);
    w.Key("peak_bytes").Number(span.peak_bytes_end);
    w.Key("host_seconds").Number(span.host_end_s - span.host_start_s);
    for (const auto& [key, value] : span.attrs) {
      w.Key(key).String(value);
    }
    w.EndObject();
    w.EndObject();
  }

  for (const EventRecord& ev : tracer.events()) {
    w.BeginObject();
    CommonFields(w, ev.name, "event", ev.at_seconds * 1e6, ev.device_id);
    w.Key("ph").String("i");
    w.Key("s").String("t");  // Thread-scoped instant.
    w.Key("args").BeginObject();
    w.Key("detail").String(ev.detail);
    w.EndObject();
    w.EndObject();
  }

  // Name the per-device timelines.
  std::vector<int32_t> device_ids;
  for (const SpanRecord& span : tracer.spans()) {
    if (std::find(device_ids.begin(), device_ids.end(), span.device_id) ==
        device_ids.end()) {
      device_ids.push_back(span.device_id);
    }
  }
  for (const int32_t tid : device_ids) {
    w.BeginObject();
    w.Key("name").String("thread_name");
    w.Key("ph").String("M");
    w.Key("pid").Number(static_cast<int64_t>(kPid));
    w.Key("tid").Number(static_cast<int64_t>(tid));
    w.Key("args").BeginObject();
    w.Key("name").String("vgpu device " + std::to_string(tid));
    w.EndObject();
    w.EndObject();
  }

  w.EndArray();
  w.EndObject();
  return w.Take();
}

Status WriteChromeTrace(const Tracer& tracer, const std::string& path) {
  const std::string json = ChromeTraceJson(tracer);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Internal("cannot open trace file " + path);
  }
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (written != json.size()) {
    return Status::Internal("short write to trace file " + path);
  }
  return Status::OK();
}

}  // namespace gpujoin::obs
