// Dependency-free JSON writing and parsing for the observability layer.
//
// The writer backs the metrics sink and the Chrome trace exporter; the
// parser backs the schema checker (tools/bench_json_check) and the
// round-trip tests. Both cover exactly the JSON subset those producers
// emit: objects, arrays, strings, finite doubles, bools, and null.
// Non-finite doubles are written as null — they never silently become a
// number the schema validator would accept.

#ifndef GPUJOIN_OBS_JSON_H_
#define GPUJOIN_OBS_JSON_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace gpujoin::obs {

/// Escapes `s` per RFC 8259 (quotes, backslash, control characters).
std::string JsonEscape(const std::string& s);

/// Streaming JSON writer. Commas between siblings are inserted
/// automatically; the caller is responsible for well-formed nesting.
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();
  /// Writes an object key; the next value call is its value.
  JsonWriter& Key(const std::string& k);
  JsonWriter& String(const std::string& v);
  /// Finite doubles round-trip (up to 17 significant digits, trailing
  /// zeros trimmed); NaN/Inf are written as null.
  JsonWriter& Number(double v);
  JsonWriter& Number(uint64_t v);
  JsonWriter& Number(int64_t v);
  JsonWriter& Bool(bool v);
  JsonWriter& Null();

  const std::string& str() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  void BeforeValue();
  std::string out_;
  // One frame per open container: whether a sibling was already written.
  std::vector<bool> has_sibling_;
  bool pending_key_ = false;
};

/// Parsed JSON value (ordered object members).
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }

  /// Member lookup on an object; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;
};

/// Parses one complete JSON document (trailing garbage is an error).
Result<JsonValue> ParseJson(const std::string& text);

}  // namespace gpujoin::obs

#endif  // GPUJOIN_OBS_JSON_H_
