#include "obs/trace.h"

#include <algorithm>
#include <map>

namespace gpujoin::obs {

Tracer& Tracer::Global() {
  static Tracer tracer;
  return tracer;
}

double Tracer::HostNow() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

int32_t Tracer::DeviceId(const vgpu::Device& device) {
  const auto it = device_ids_.find(&device);
  return it == device_ids_.end() ? 0 : it->second;
}

void Tracer::Attach(vgpu::Device& device) {
  if (device.kernel_observer() == this) return;
  device.set_kernel_observer(this);
  device_ids_.emplace(&device,
                      static_cast<int32_t>(device_ids_.size()));
}

int32_t Tracer::OpenSpan(const vgpu::Device& device, std::string category,
                         std::string name) {
  SpanRecord span;
  span.id = static_cast<int32_t>(spans_.size());
  span.parent = stack_.empty() ? -1 : stack_.back();
  span.depth = static_cast<int32_t>(stack_.size());
  span.device_id = DeviceId(device);
  span.category = std::move(category);
  span.name = std::move(name);
  span.start_cycles = device.elapsed_cycles();
  span.start_seconds = device.ElapsedSeconds();
  span.host_start_s = HostNow();
  span.stats = device.total_stats();  // Snapshot; turned into a delta on close.
  span.live_bytes_start = device.memory_stats().live_bytes;
  spans_.push_back(std::move(span));
  stack_.push_back(spans_.back().id);
  return spans_.back().id;
}

void Tracer::CloseSpan(const vgpu::Device& device, int32_t id) {
  if (id < 0 || id >= static_cast<int32_t>(spans_.size())) return;
  // Tolerate a Clear() between open and close: the id must still be open.
  const auto it = std::find(stack_.begin(), stack_.end(), id);
  if (it == stack_.end()) return;
  // Error paths can unwind several scopes at once; anything opened after
  // `id` that is still on the stack closes with it.
  while (!stack_.empty()) {
    const int32_t top = stack_.back();
    stack_.pop_back();
    SpanRecord& span = spans_[top];
    span.closed = true;
    span.end_cycles = device.elapsed_cycles();
    span.end_seconds = device.ElapsedSeconds();
    span.host_end_s = HostNow();
    vgpu::KernelStats delta = device.total_stats();
    delta.Sub(span.stats);
    span.stats = delta;
    span.live_bytes_end = device.memory_stats().live_bytes;
    span.peak_bytes_end = device.memory_stats().peak_bytes;
    if (span.category != "kernel") {
      // Allocation-tag watermark: live bytes by tag at close, largest
      // first (capped — leak-style listings belong to LeakReport()).
      std::map<std::string, uint64_t> by_tag;
      for (const vgpu::AllocationRecord& a : device.OutstandingAllocations()) {
        by_tag[a.tag] += a.bytes;
      }
      std::vector<std::pair<std::string, uint64_t>> tags(by_tag.begin(),
                                                         by_tag.end());
      std::sort(tags.begin(), tags.end(), [](const auto& a, const auto& b) {
        return a.second > b.second;
      });
      constexpr size_t kMaxTags = 4;
      for (size_t i = 0; i < tags.size() && i < kMaxTags; ++i) {
        span.attrs.emplace_back("mem:" + tags[i].first,
                                std::to_string(tags[i].second));
      }
    }
    if (top == id) break;
  }
}

void Tracer::AnnotateSpan(int32_t id, std::string key, std::string value) {
  if (id < 0 || id >= static_cast<int32_t>(spans_.size())) return;
  spans_[id].attrs.emplace_back(std::move(key), std::move(value));
}

void Tracer::AddEvent(const vgpu::Device& device, std::string name,
                      std::string detail) {
  EventRecord ev;
  ev.parent = stack_.empty() ? -1 : stack_.back();
  ev.device_id = DeviceId(device);
  ev.name = std::move(name);
  ev.detail = std::move(detail);
  ev.at_cycles = device.elapsed_cycles();
  ev.at_seconds = device.ElapsedSeconds();
  events_.push_back(std::move(ev));
}

void Tracer::OnKernelBegin(const vgpu::Device& device, const char* name) {
  if (!enabled_) return;
  open_kernel_ = OpenSpan(device, "kernel", name);
}

void Tracer::OnKernelEnd(const vgpu::Device& device, const char* name,
                         const vgpu::KernelStats& stats,
                         double host_seconds) {
  (void)name;
  (void)host_seconds;
  if (!enabled_ || open_kernel_ < 0) return;
  const int32_t id = open_kernel_;
  open_kernel_ = -1;
  CloseSpan(device, id);
  // The delta mechanism already equals this kernel's stats (total_stats
  // advanced by exactly `stats` between Begin and End); keep the exact
  // per-kernel record anyway for robustness.
  if (id < static_cast<int32_t>(spans_.size())) spans_[id].stats = stats;
}

void Tracer::Clear() {
  spans_.clear();
  events_.clear();
  stack_.clear();
  open_kernel_ = -1;
  epoch_ = std::chrono::steady_clock::now();
}

}  // namespace gpujoin::obs
