#include "groupby/reference.h"

#include <algorithm>
#include <limits>
#include <map>

namespace gpujoin::groupby {

std::vector<std::vector<int64_t>> ReferenceGroupByRows(const HostTable& input,
                                                       const GroupBySpec& spec) {
  struct Acc {
    int64_t count = 0;
    std::vector<int64_t> vals;
  };
  std::map<int64_t, Acc> accs;
  const uint64_t n = input.num_rows();
  for (uint64_t i = 0; i < n; ++i) {
    Acc& acc = accs[input.columns[0].values[i]];
    if (acc.count == 0) {
      acc.vals.assign(spec.aggregates.size(), 0);
      for (size_t a = 0; a < spec.aggregates.size(); ++a) {
        if (spec.aggregates[a].op == AggOp::kMin) {
          acc.vals[a] = std::numeric_limits<int64_t>::max();
        } else if (spec.aggregates[a].op == AggOp::kMax) {
          acc.vals[a] = std::numeric_limits<int64_t>::min();
        }
      }
    }
    ++acc.count;
    for (size_t a = 0; a < spec.aggregates.size(); ++a) {
      const AggSpec& as = spec.aggregates[a];
      if (as.op == AggOp::kCount) continue;
      const int64_t v = input.columns[as.column].values[i];
      switch (as.op) {
        case AggOp::kSum:
        case AggOp::kAvg:
          acc.vals[a] += v;
          break;
        case AggOp::kMin:
          acc.vals[a] = std::min(acc.vals[a], v);
          break;
        case AggOp::kMax:
          acc.vals[a] = std::max(acc.vals[a], v);
          break;
        case AggOp::kCount:
          break;
      }
    }
  }
  std::vector<std::vector<int64_t>> rows;
  rows.reserve(accs.size());
  for (const auto& [key, acc] : accs) {
    std::vector<int64_t> row;
    row.push_back(key);
    for (size_t a = 0; a < spec.aggregates.size(); ++a) {
      switch (spec.aggregates[a].op) {
        case AggOp::kCount:
          row.push_back(acc.count);
          break;
        case AggOp::kAvg:
          row.push_back(acc.count == 0 ? 0 : acc.vals[a] / acc.count);
          break;
        default:
          row.push_back(acc.vals[a]);
      }
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace gpujoin::groupby
