#include "groupby/resilient.h"

#include <algorithm>
#include <string>
#include <utility>

#include "obs/registry.h"
#include "obs/trace.h"

namespace gpujoin::groupby {

namespace {

bool IsResourceFailure(const Status& st) {
  return st.code() == StatusCode::kResourceExhausted ||
         st.code() == StatusCode::kOutOfMemory;
}

Status VerifyCleanRollback(vgpu::Device& device, uint64_t baseline_live) {
  const uint64_t live = device.memory_stats().live_bytes;
  obs::MetricsRegistry::Global().CounterAdd(
      "vgpu_leak_check_total",
      {{"op", "groupby"},
       {"outcome", live == baseline_live ? "clean" : "leak"}});
  if (live != baseline_live) {
    return Status::Internal(
        "RunGroupByResilient: failed attempt left " + std::to_string(live) +
        " live bytes (entry watermark " + std::to_string(baseline_live) +
        ")\n" + device.LeakReport());
  }
  return Status::OK();
}

}  // namespace

Result<ResilientGroupByResult> RunGroupByResilient(
    vgpu::Device& device, GroupByAlgo algo, const Table& input,
    const GroupBySpec& spec, const GroupByResilienceOptions& options) {
  if (options.max_attempts < 1) {
    return Status::InvalidArgument(
        "RunGroupByResilient: max_attempts must be >= 1");
  }

  ResilientGroupByResult res;
  obs::TraceSpan query_span(
      device, "query",
      std::string("resilient_groupby:") + GroupByAlgoName(algo));
  // The input table is resident and stays so: the watermark includes it.
  const uint64_t baseline_live = device.memory_stats().live_bytes;
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  const uint64_t faults0 = device.memory_stats().injected_failures;
  const uint64_t kfaults0 = device.fault_injector().injected_kernel_faults() +
                            device.watchdog_trips();
  GroupByAlgo current = algo;
  GroupByOptions gopts = options.groupby;
  int attempt = 0;
  int transient_retries = 0;
  Status last_error = Status::OK();

  while (attempt < options.max_attempts) {
    ++attempt;
    Result<GroupByRunResult> run = Status::Internal("unset");
    {
      obs::TraceSpan attempt_span(device, "attempt",
                                  "attempt_" + std::to_string(attempt) + ":" +
                                      GroupByAlgoName(current));
      run = RunGroupBy(device, current, input, spec, gopts);
    }
    if (run.ok()) {
      res.run = std::move(run).value();
      res.attempts = attempt;
      res.algo_used = current;
      const uint64_t absorbed =
          device.memory_stats().injected_failures - faults0;
      if (absorbed > 0) {
        reg.CounterAdd("vgpu_faults_survived_total", {{"op", "groupby"}},
                       absorbed);
      }
      const uint64_t kernel_absorbed =
          device.fault_injector().injected_kernel_faults() +
          device.watchdog_trips() - kfaults0;
      if (kernel_absorbed > 0) {
        reg.CounterAdd("vgpu_kernel_faults_survived_total",
                       {{"op", "groupby"}}, kernel_absorbed);
      }
      return res;
    }
    if (run.status().IsUnavailable()) {
      // Transient rung: unwind, clear the sticky fault, seeded backoff, and
      // re-run the SAME rung (no escalation — the work fits, the backend
      // hiccuped). Once the transient budget is spent, propagate the
      // retryable fault so the service layer can hedge backends.
      obs::TraceInstant(device, "transient_fault", run.status().message());
      reg.CounterAdd("resilient_transient_faults_total", {{"op", "groupby"}});
      GPUJOIN_RETURN_IF_ERROR(VerifyCleanRollback(device, baseline_live));
      device.ClearTransientFault();
      ++transient_retries;
      if (transient_retries >= options.backoff.max_attempts) {
        return Status::Unavailable(
            run.status().message() + " (attempt " +
            std::to_string(transient_retries) +
            "; ladder transient-retry budget exhausted)");
      }
      device.AdvanceClock(options.backoff.DelayCycles(transient_retries));
      GPUJOIN_RETURN_IF_ERROR(obs::CheckLifecycle(device));
      res.degradation.push_back(
          {"transient_retry",
           "transient fault (" + run.status().message() +
               "); retrying same rung, retry " +
               std::to_string(transient_retries)});
      obs::TraceInstant(device, "degradation:transient_retry",
                        res.degradation.back().detail);
      reg.CounterAdd("resilient_degradations_total",
                     {{"op", "groupby"}, {"action", "transient_retry"}});
      --attempt;  // Transient retries do not consume ladder attempts.
      continue;
    }
    if (!IsResourceFailure(run.status())) return run.status();
    obs::TraceInstant(device, "resource_failure", run.status().message());
    reg.CounterAdd("resilient_resource_failures_total", {{"op", "groupby"}});
    GPUJOIN_RETURN_IF_ERROR(VerifyCleanRollback(device, baseline_live));
    last_error = run.status();
    if (attempt >= options.max_attempts) break;
    device.AdvanceClock(options.backoff.DelayCycles(attempt));
    GPUJOIN_RETURN_IF_ERROR(obs::CheckLifecycle(device));

    // Pick the next rung.
    if (current == GroupByAlgo::kHashGlobal && options.allow_algo_fallback) {
      current = GroupByAlgo::kHashPartitioned;
      res.degradation.push_back(
          {"algo_fallback", "GB-HASH-GLOBAL failed (" + last_error.message() +
                                "); falling back to GB-HASH-PART"});
      reg.CounterAdd("resilient_degradations_total",
                     {{"op", "groupby"}, {"action", "algo_fallback"}});
      continue;
    }
    if (current == GroupByAlgo::kHashPartitioned) {
      const int bits = gopts.radix_bits_override;
      if (bits < 16) {
        gopts.radix_bits_override = std::min(bits <= 0 ? 8 : bits + 2, 16);
        res.degradation.push_back(
            {"retry_more_partition_bits",
             "GB-HASH-PART failed (" + last_error.message() +
                 "); retrying with radix_bits=" +
                 std::to_string(gopts.radix_bits_override)});
        reg.CounterAdd(
            "resilient_degradations_total",
            {{"op", "groupby"}, {"action", "retry_more_partition_bits"}});
        continue;
      }
      if (options.allow_algo_fallback) {
        current = GroupByAlgo::kSortBased;
        res.degradation.push_back(
            {"algo_fallback", "GB-HASH-PART failed (" + last_error.message() +
                                  "); falling back to GB-SORT"});
        reg.CounterAdd("resilient_degradations_total",
                       {{"op", "groupby"}, {"action", "algo_fallback"}});
        continue;
      }
    }
    break;  // Sort-based failed, or fallback disabled: no rung left.
  }

  return Status::ResourceExhausted(
      "RunGroupByResilient: " + std::string(GroupByAlgoName(algo)) +
      " failed after " + std::to_string(attempt) +
      " attempt(s); last error: " + last_error.message() +
      (res.degradation.empty()
           ? std::string("; no degradation rung applicable")
           : "\ndegradation ladder:\n" + FormatDegradation(res.degradation)));
}

}  // namespace gpujoin::groupby
