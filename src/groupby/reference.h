// Host-side reference (oracle) grouped aggregation for verifying the GPU
// implementations.

#ifndef GPUJOIN_GROUPBY_REFERENCE_H_
#define GPUJOIN_GROUPBY_REFERENCE_H_

#include <cstdint>
#include <vector>

#include "groupby/groupby.h"
#include "storage/table.h"

namespace gpujoin::groupby {

/// Expected output rows [key, agg1, agg2, ...] (widened), sorted by key.
std::vector<std::vector<int64_t>> ReferenceGroupByRows(const HostTable& input,
                                                       const GroupBySpec& spec);

}  // namespace gpujoin::groupby

#endif  // GPUJOIN_GROUPBY_REFERENCE_H_
