// Group-by algorithm selection — the aggregation-side analog of the join
// decision trees (Figure 18): the global hash table wins while it is
// cache-resident and the key distribution keeps its atomics spread; once
// the table outgrows the L2 or a hot group serializes the atomics, the
// partition-based aggregation (flat in the group count) takes over.

#ifndef GPUJOIN_GROUPBY_PLANNER_H_
#define GPUJOIN_GROUPBY_PLANNER_H_

#include <cstdint>
#include <string>

#include "groupby/groupby.h"
#include "vgpu/device.h"

namespace gpujoin::groupby {

struct GroupByFeatures {
  uint64_t rows = 0;
  /// Estimated distinct group count (e.g. from stats::EstimateDistinct).
  uint64_t estimated_groups = 0;
  /// Estimated key-skew Zipf factor (0 = uniform).
  double zipf_theta = 0.0;
  /// Number of aggregate accumulators per group.
  int num_aggregates = 1;
};

GroupByAlgo ChooseGroupByAlgo(const vgpu::Device& device,
                              const GroupByFeatures& features);

std::string ExplainGroupByChoice(const vgpu::Device& device,
                                 const GroupByFeatures& features);

}  // namespace gpujoin::groupby

#endif  // GPUJOIN_GROUPBY_PLANNER_H_
