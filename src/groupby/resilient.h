// Resilient grouped aggregation: RunGroupByResilient wraps RunGroupBy with a
// degradation ladder mirroring the join side (see join/resilient.h):
//
//   1. Attempt with the requested strategy and options.
//   2. HASH-GLOBAL falls back to HASH-PARTITIONED (the global table is the
//      memory hog; partitioning bounds per-partition state).
//   3. HASH-PARTITIONED retries with more radix bits.
//   4. Final fallback to SORT-BASED (lowest footprint: one transformed copy).
//   5. A clean structured ResourceExhausted error carrying the ladder.
//
// Failed attempts must restore the device's live-byte watermark; a mismatch
// is promoted to an Internal error.

#ifndef GPUJOIN_GROUPBY_RESILIENT_H_
#define GPUJOIN_GROUPBY_RESILIENT_H_

#include <cstdint>
#include <vector>

#include "common/resilience.h"
#include "common/status.h"
#include "groupby/groupby.h"
#include "storage/table.h"
#include "vgpu/device.h"

namespace gpujoin::groupby {

struct GroupByResilienceOptions {
  /// Base options for every attempt (the ladder only bumps
  /// radix_bits_override on top of these).
  GroupByOptions groupby;
  /// Total attempt budget across the whole ladder (first try included).
  int max_attempts = 4;
  /// Allow switching to a different aggregation strategy when the requested
  /// one keeps running out of memory.
  bool allow_algo_fallback = true;
  /// Delay schedule between ladder attempts, charged to the simulated clock
  /// (deterministic; see BackoffPolicy). max_attempts above remains the
  /// attempt budget — the policy only paces the retries.
  BackoffPolicy backoff;
};

struct ResilientGroupByResult {
  /// The completed run (device-resident output table and phase stats).
  GroupByRunResult run;
  /// Attempts consumed (1 = first try succeeded, no degradation).
  int attempts = 0;
  /// Strategy that finally completed (== requested when no fallback fired).
  GroupByAlgo algo_used = GroupByAlgo::kHashGlobal;
  /// One entry per ladder step taken; empty on a clean first-attempt run.
  std::vector<DegradationStep> degradation;
};

/// Groups `input` (keys in column 0) by `spec`, degrading along the ladder
/// above instead of failing on ResourceExhausted/OutOfMemory. Non-resource
/// errors propagate immediately.
Result<ResilientGroupByResult> RunGroupByResilient(
    vgpu::Device& device, GroupByAlgo algo, const Table& input,
    const GroupBySpec& spec, const GroupByResilienceOptions& options = {});

}  // namespace gpujoin::groupby

#endif  // GPUJOIN_GROUPBY_RESILIENT_H_
