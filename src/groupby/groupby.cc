#include "groupby/groupby.h"

#include <algorithm>
#include <limits>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/bit_util.h"
#include "join/transform.h"
#include "obs/trace.h"
#include "stats/estimator.h"
#include "prim/hash.h"
#include "prim/hash_join.h"
#include "prim/radix_partition.h"

namespace gpujoin::groupby {

const char* GroupByAlgoName(GroupByAlgo algo) {
  switch (algo) {
    case GroupByAlgo::kHashGlobal:
      return "GB-HASH-GLOBAL";
    case GroupByAlgo::kHashPartitioned:
      return "GB-HASH-PART";
    case GroupByAlgo::kSortBased:
      return "GB-SORT";
  }
  return "?";
}

const char* AggOpName(AggOp op) {
  switch (op) {
    case AggOp::kSum:
      return "sum";
    case AggOp::kCount:
      return "count";
    case AggOp::kMin:
      return "min";
    case AggOp::kMax:
      return "max";
    case AggOp::kAvg:
      return "avg";
  }
  return "?";
}

namespace {

/// Functional accumulator for one group.
struct GroupAcc {
  int64_t count = 0;
  std::vector<int64_t> sum;  // Per aggregate (sum semantics; min/max in place).
  bool initialized = false;
};

void UpdateAcc(GroupAcc* acc, const GroupBySpec& spec,
               const std::vector<int64_t>& agg_values) {
  if (!acc->initialized) {
    acc->sum.assign(spec.aggregates.size(), 0);
    for (size_t a = 0; a < spec.aggregates.size(); ++a) {
      switch (spec.aggregates[a].op) {
        case AggOp::kMin:
          acc->sum[a] = std::numeric_limits<int64_t>::max();
          break;
        case AggOp::kMax:
          acc->sum[a] = std::numeric_limits<int64_t>::min();
          break;
        default:
          acc->sum[a] = 0;
      }
    }
    acc->initialized = true;
  }
  ++acc->count;
  for (size_t a = 0; a < spec.aggregates.size(); ++a) {
    const int64_t v = agg_values[a];
    switch (spec.aggregates[a].op) {
      case AggOp::kSum:
      case AggOp::kAvg:
        acc->sum[a] += v;
        break;
      case AggOp::kCount:
        break;  // Count tracked separately.
      case AggOp::kMin:
        acc->sum[a] = std::min(acc->sum[a], v);
        break;
      case AggOp::kMax:
        acc->sum[a] = std::max(acc->sum[a], v);
        break;
    }
  }
}

int64_t FinalizeAcc(const GroupAcc& acc, const GroupBySpec& spec, size_t a) {
  switch (spec.aggregates[a].op) {
    case AggOp::kCount:
      return acc.count;
    case AggOp::kAvg:
      return acc.count == 0 ? 0 : acc.sum[a] / acc.count;
    default:
      return acc.sum[a];
  }
}

/// Bytes of one hash-table slot: key + one 8-byte accumulator per aggregate
/// (+ a count cell when any aggregate needs it).
uint64_t SlotBytes(DataType key_type, const GroupBySpec& spec) {
  bool needs_count = false;
  for (const AggSpec& a : spec.aggregates) {
    if (a.op == AggOp::kCount || a.op == AggOp::kAvg) needs_count = true;
  }
  return DataTypeSize(key_type) + 8 * spec.aggregates.size() +
         (needs_count ? 8 : 0);
}

Status ValidateSpec(const Table& input, const GroupBySpec& spec) {
  for (const AggSpec& a : spec.aggregates) {
    if (a.op == AggOp::kCount) continue;
    if (a.column < 1 || a.column >= input.num_columns()) {
      return Status::InvalidArgument("aggregate references column " +
                                     std::to_string(a.column) +
                                     " out of range");
    }
  }
  return Status::OK();
}

/// Emits the final output table from an ordered list of (key, acc).
Result<Table> EmitOutput(vgpu::Device& device, const Table& input,
                         const GroupBySpec& spec,
                         const std::vector<std::pair<int64_t, GroupAcc>>& groups) {
  const uint64_t g = groups.size();
  vgpu::AllocTagScope tag(device, "groupby:emit");
  std::vector<std::string> names;
  std::vector<DeviceColumn> cols;
  GPUJOIN_ASSIGN_OR_RETURN(
      DeviceColumn key_col,
      DeviceColumn::Allocate(device, input.column(0).type(), g));
  for (uint64_t i = 0; i < g; ++i) key_col.Set(i, groups[i].first);
  {
    vgpu::KernelScope ks(device, "groupby_emit");
    device.StoreSeq(key_col.addr(), g, DataTypeSize(key_col.type()));
  }
  names.push_back(input.column_name(0));
  cols.push_back(std::move(key_col));
  for (size_t a = 0; a < spec.aggregates.size(); ++a) {
    GPUJOIN_ASSIGN_OR_RETURN(DeviceColumn col,
                             DeviceColumn::Allocate(device, DataType::kInt64, g));
    for (uint64_t i = 0; i < g; ++i) {
      col.Set(i, FinalizeAcc(groups[i].second, spec, a));
    }
    {
      vgpu::KernelScope ks(device, "groupby_emit");
      device.StoreSeq(col.addr(), g, 8);
    }
    std::string name = AggOpName(spec.aggregates[a].op);
    if (spec.aggregates[a].op != AggOp::kCount) {
      name += "_" + input.column_name(spec.aggregates[a].column);
    }
    names.push_back(std::move(name));
    cols.push_back(std::move(col));
  }
  return Table::FromColumns("groupby_result", std::move(names), std::move(cols));
}

/// Distinct input columns the aggregates read (count-only needs none).
std::vector<int> NeededColumns(const GroupBySpec& spec) {
  std::vector<int> cols;
  for (const AggSpec& a : spec.aggregates) {
    if (a.op == AggOp::kCount) continue;
    if (std::find(cols.begin(), cols.end(), a.column) == cols.end()) {
      cols.push_back(a.column);
    }
  }
  return cols;
}

// ---------------------------------------------------------------------------
// HASH-GLOBAL
// ---------------------------------------------------------------------------

template <typename K>
Result<std::vector<std::pair<int64_t, GroupAcc>>> HashGlobalAggregate(
    vgpu::Device& device, const Table& input, const GroupBySpec& spec) {
  vgpu::AllocTagScope tag(device, "groupby:hash_global");
  const uint64_t n = input.num_rows();
  const int warp = device.config().warp_size;
  // Size the table from a HyperLogLog estimate (a real system's sizing
  // input), with 3x headroom against both estimation error and clustering.
  uint64_t g_est = 0;
  {
    obs::TraceSpan estimate_span(device, "phase", "estimate");
    GPUJOIN_ASSIGN_OR_RETURN(g_est,
                             stats::EstimateDistinct(device, input.column(0)));
  }
  // Everything from here to the compacted group list is the aggregate
  // phase (the span closes when this function returns).
  obs::TraceSpan aggregate_span(device, "phase", "aggregate");
  const uint64_t table_size =
      bit_util::NextPowerOfTwo(std::max<uint64_t>(g_est * 3, 64));
  const uint64_t mask = table_size - 1;
  const uint64_t n_acc = spec.aggregates.size() + 1;  // + count cell.

  GPUJOIN_ASSIGN_OR_RETURN(auto slot_keys,
                           vgpu::DeviceBuffer<int64_t>::Allocate(device, table_size));
  GPUJOIN_ASSIGN_OR_RETURN(
      auto slot_accs,
      vgpu::DeviceBuffer<int64_t>::Allocate(device, table_size * n_acc));
  std::vector<GroupAcc> accs(table_size);
  std::fill(slot_keys.data(), slot_keys.data() + table_size, prim::kEmptySlot);

  const std::vector<int> needed = NeededColumns(spec);
  std::vector<int64_t> agg_values(spec.aggregates.size(), 0);
  // Updates to the SAME group's accumulators serialize at the L2 atomic
  // unit across the whole device; the hottest group is a critical path.
  uint64_t max_group_freq = 0;
  {
    std::unordered_map<int64_t, uint64_t> freq;
    for (uint64_t i = 0; i < n; ++i) ++freq[input.column(0).Get(i)];
    for (const auto& [k, c] : freq) max_group_freq = std::max(max_group_freq, c);
  }
  {
    // This kernel stays on the sequential simulation path even under
    // GPUJOIN_SIM_THREADS > 1: the global table's linear-probe layout (and
    // therefore every probe's address trace) depends on insertion order, so
    // tuples cannot be re-sharded without changing the simulated stats.
    vgpu::KernelScope ks(device, "gb_hash_global_update");
    // Warp-aggregated atomics (the compiler combines same-address atomicAdds
    // within a warp): the device-wide serialization chain on the hottest
    // group is one aggregated atomic per warp that touches it.
    constexpr double kSameAddressAtomicCycles = 4.0;
    device.SerialStall(static_cast<double>(max_group_freq) /
                       device.config().warp_size *
                       static_cast<double>(n_acc) * kSameAddressAtomicCycles);
    // Key and aggregate-input columns are fully coalesced sequential
    // streams: charge them as bulk runs up front. Only the probe/update
    // traffic depends on the hash of each key and stays per-warp.
    device.LoadSeq(input.column(0).addr(), n,
                   static_cast<uint32_t>(DataTypeSize(input.column(0).type())));
    for (int c : needed) {
      device.LoadSeq(input.column(c).addr(), n,
                     static_cast<uint32_t>(DataTypeSize(input.column(c).type())));
    }
    uint64_t probe_addrs[32];
    uint64_t acc_addrs[32];
    for (uint64_t i = 0; i < n; i += warp) {
      const uint32_t lanes = static_cast<uint32_t>(std::min<uint64_t>(warp, n - i));
      for (uint32_t l = 0; l < lanes; ++l) {
        const int64_t key = input.column(0).Get(i + l);
        uint64_t h = prim::HashToSlot(key, mask);
        uint64_t steps = 1;
        while (slot_keys[h] != prim::kEmptySlot && slot_keys[h] != key) {
          h = (h + 1) & mask;
          if (++steps > table_size) {
            return Status::Internal(
                "hash group-by table overflow (cardinality estimate too low)");
          }
        }
        slot_keys[h] = key;
        probe_addrs[l] = slot_keys.addr(h);
        acc_addrs[l] = slot_accs.addr(h * n_acc);
        if (steps > 1) device.Compute(steps - 1);
        for (size_t a = 0; a < spec.aggregates.size(); ++a) {
          const AggSpec& as = spec.aggregates[a];
          agg_values[a] = as.op == AggOp::kCount ? 0 : input.column(as.column).Get(i + l);
        }
        UpdateAcc(&accs[h], spec, agg_values);
      }
      // Probe loads + one warp-aggregated atomic RMW per aggregate cell.
      device.Load({probe_addrs, lanes}, sizeof(int64_t));
      for (uint64_t a = 0; a < n_acc; ++a) {
        device.Store({acc_addrs, lanes}, sizeof(int64_t));
        device.Compute(1);
      }
    }
  }

  // Compact: scan the table, gather live slots.
  std::vector<std::pair<int64_t, GroupAcc>> groups;
  groups.reserve(g_est);
  {
    vgpu::KernelScope ks(device, "gb_hash_global_compact");
    device.LoadSeq(slot_keys.addr(), table_size, sizeof(int64_t));
    device.LoadSeq(slot_accs.addr(), table_size * n_acc, sizeof(int64_t));
    for (uint64_t h = 0; h < table_size; ++h) {
      if (slot_keys[h] != prim::kEmptySlot) {
        groups.emplace_back(slot_keys[h], std::move(accs[h]));
      }
    }
    device.Compute(bit_util::CeilDiv(table_size, warp));
  }
  return groups;
}

// ---------------------------------------------------------------------------
// HASH-PARTITIONED (GFTR applied to aggregation)
// ---------------------------------------------------------------------------

template <typename K>
Result<std::vector<std::pair<int64_t, GroupAcc>>> HashPartitionedAggregate(
    vgpu::Device& device, const Table& input, const GroupBySpec& spec,
    const GroupByOptions& opts, double* transform_seconds) {
  vgpu::AllocTagScope tag(device, "groupby:hash_part");
  const uint64_t n = input.num_rows();
  const int warp = device.config().warp_size;
  const auto& key_col = input.column(0);
  const uint64_t slot_bytes = SlotBytes(key_col.type(), spec);
  const uint64_t capacity = std::max<uint64_t>(
      device.config().shared_mem_per_block_bytes / slot_bytes / 2, 16);
  uint64_t g = 0;
  {
    obs::TraceSpan estimate_span(device, "phase", "estimate");
    GPUJOIN_ASSIGN_OR_RETURN(g, stats::EstimateDistinct(device, key_col));
  }

  int bits = opts.radix_bits_override > 0
                 ? opts.radix_bits_override
                 : std::clamp(bit_util::Log2Ceil(bit_util::CeilDiv(
                                  std::max<uint64_t>(g, 1), capacity)),
                              1, 16);

  const double t0 = device.ElapsedSeconds();
  // Transform (GFTR style): partition the key with every needed aggregate
  // column; stability aligns all transformed columns.
  const std::vector<int> needed = NeededColumns(spec);
  const vgpu::DeviceBuffer<K>* key_buf;
  if constexpr (sizeof(K) == 4) {
    key_buf = &key_col.i32();
  } else {
    key_buf = &key_col.i64();
  }
  vgpu::DeviceBuffer<K> t_keys;
  std::vector<DeviceColumn> t_cols;  // Parallel to `needed`.
  std::vector<uint64_t> offsets;
  {
    obs::TraceSpan transform_span(device, "phase", "transform");
    if (needed.empty()) {
      GPUJOIN_ASSIGN_OR_RETURN(
          auto ids, vgpu::DeviceBuffer<RowId>::Allocate(device, n));
      vgpu::DeviceBuffer<RowId> t_ids;
      GPUJOIN_RETURN_IF_ERROR(join::TransformPairOutOfPlace(
          device, *key_buf, ids, &t_keys, &t_ids,
          join::TransformKind::kPartition, bits));
    } else {
      for (size_t c = 0; c < needed.size(); ++c) {
        vgpu::DeviceBuffer<K> t_keys_c;
        GPUJOIN_ASSIGN_OR_RETURN(
            DeviceColumn t_col,
            join::TransformKeyPayload(device, *key_buf, input.column(needed[c]),
                                      &t_keys_c, join::TransformKind::kPartition,
                                      bits));
        t_cols.push_back(std::move(t_col));
        if (c == 0) {
          t_keys = std::move(t_keys_c);
        } else {
          t_keys_c.Release();
        }
      }
    }
    GPUJOIN_RETURN_IF_ERROR(
        prim::ComputePartitionOffsets(device, t_keys, bits, &offsets));
  }
  *transform_seconds = device.ElapsedSeconds() - t0;

  // Aggregate each partition in a shared-memory table. Partitions whose
  // distinct-group count exceeds the capacity are processed in extra passes
  // (charged below); functionally a map per partition keeps it exact.
  std::vector<std::pair<int64_t, GroupAcc>> groups;
  groups.reserve(g);
  obs::TraceSpan aggregate_span(device, "phase", "aggregate");
  {
    // One partition per thread block: each block owns its shared-memory
    // table image and emits into its own slot of part_groups, so the blocks
    // are independent and the concatenation (partition order, key order
    // within a partition) is deterministic.
    vgpu::KernelScope ks(device, "gb_hash_part_aggregate");
    const uint32_t fanout = 1u << bits;
    std::vector<std::vector<std::pair<int64_t, GroupAcc>>> part_groups(fanout);
    GPUJOIN_RETURN_IF_ERROR(device.ParallelBlocks(
        fanout, [&](uint64_t p, vgpu::BlockContext& ctx) -> Status {
          const uint64_t pb = offsets[p], pe = offsets[p + 1];
          if (pb == pe) return Status::OK();
          std::unordered_map<int64_t, GroupAcc> local;
          std::vector<int64_t> agg_values(spec.aggregates.size(), 0);
          ctx.LoadSeq(t_keys.addr(pb), pe - pb, sizeof(K));
          for (const DeviceColumn& col : t_cols) {
            ctx.LoadSeq(col.addr(pb), pe - pb,
                        static_cast<uint32_t>(DataTypeSize(col.type())));
          }
          ctx.SharedAccess(bit_util::CeilDiv(pe - pb, warp) *
                           (1 + spec.aggregates.size()));
          for (uint64_t i = pb; i < pe; ++i) {
            for (size_t a = 0; a < spec.aggregates.size(); ++a) {
              const AggSpec& as = spec.aggregates[a];
              if (as.op == AggOp::kCount) {
                agg_values[a] = 0;
                continue;
              }
              const auto it = std::find(needed.begin(), needed.end(), as.column);
              agg_values[a] = t_cols[it - needed.begin()].Get(i);
            }
            UpdateAcc(&local[static_cast<int64_t>(t_keys[i])], spec, agg_values);
          }
          // Overflow passes: every extra capacity-chunk of distinct groups
          // re-streams this partition (block-nested-loop analog).
          const uint64_t passes = bit_util::CeilDiv(
              std::max<uint64_t>(local.size(), 1), capacity);
          for (uint64_t extra = 1; extra < passes; ++extra) {
            ctx.LoadSeq(t_keys.addr(pb), pe - pb, sizeof(K));
            for (const DeviceColumn& col : t_cols) {
              ctx.LoadSeq(col.addr(pb), pe - pb,
                          static_cast<uint32_t>(DataTypeSize(col.type())));
            }
          }
          // Emit this partition's groups in key order (deterministic).
          std::map<int64_t, GroupAcc> ordered;
          for (auto& [key, acc] : local) ordered.emplace(key, std::move(acc));
          for (auto& [key, acc] : ordered) {
            part_groups[p].emplace_back(key, std::move(acc));
          }
          return Status::OK();
        }));
    for (auto& pg : part_groups) {
      for (auto& kv : pg) groups.emplace_back(kv.first, std::move(kv.second));
    }
  }
  return groups;
}

// ---------------------------------------------------------------------------
// SORT-BASED
// ---------------------------------------------------------------------------

template <typename K>
Result<std::vector<std::pair<int64_t, GroupAcc>>> SortAggregate(
    vgpu::Device& device, const Table& input, const GroupBySpec& spec,
    double* transform_seconds) {
  vgpu::AllocTagScope tag(device, "groupby:sort");
  const uint64_t n = input.num_rows();
  const int warp = device.config().warp_size;
  const auto& key_col = input.column(0);
  const vgpu::DeviceBuffer<K>* key_buf;
  if constexpr (sizeof(K) == 4) {
    key_buf = &key_col.i32();
  } else {
    key_buf = &key_col.i64();
  }

  const double t0 = device.ElapsedSeconds();
  const std::vector<int> needed = NeededColumns(spec);
  vgpu::DeviceBuffer<K> t_keys;
  std::vector<DeviceColumn> t_cols;
  {
    obs::TraceSpan transform_span(device, "phase", "transform");
    if (needed.empty()) {
      GPUJOIN_ASSIGN_OR_RETURN(auto ids,
                               vgpu::DeviceBuffer<RowId>::Allocate(device, n));
      vgpu::DeviceBuffer<RowId> t_ids;
      GPUJOIN_RETURN_IF_ERROR(join::TransformPairOutOfPlace(
          device, *key_buf, ids, &t_keys, &t_ids, join::TransformKind::kSort,
          0));
    } else {
      for (size_t c = 0; c < needed.size(); ++c) {
        vgpu::DeviceBuffer<K> t_keys_c;
        GPUJOIN_ASSIGN_OR_RETURN(
            DeviceColumn t_col,
            join::TransformKeyPayload(device, *key_buf, input.column(needed[c]),
                                      &t_keys_c, join::TransformKind::kSort, 0));
        t_cols.push_back(std::move(t_col));
        if (c == 0) {
          t_keys = std::move(t_keys_c);
        } else {
          t_keys_c.Release();
        }
      }
    }
  }
  *transform_seconds = device.ElapsedSeconds() - t0;

  // Segmented reduction over equal-key runs (purely sequential).
  std::vector<std::pair<int64_t, GroupAcc>> groups;
  std::vector<int64_t> agg_values(spec.aggregates.size(), 0);
  obs::TraceSpan aggregate_span(device, "phase", "aggregate");
  {
    vgpu::KernelScope ks(device, "gb_sort_reduce");
    // The streaming (loads + per-warp reduction work) is tile-parallel;
    // the run detection below is functional only (carries across tiles),
    // so it runs on the calling thread and charges nothing.
    const uint64_t kTile = 4096;
    const uint64_t n_tiles = bit_util::CeilDiv(n, kTile);
    GPUJOIN_RETURN_IF_ERROR(device.ParallelBlocks(
        n_tiles, [&](uint64_t tile, vgpu::BlockContext& ctx) -> Status {
          const uint64_t begin = tile * kTile;
          const uint64_t tile_n = std::min(kTile, n - begin);
          ctx.LoadSeq(t_keys.addr(begin), tile_n, sizeof(K));
          for (const DeviceColumn& col : t_cols) {
            ctx.LoadSeq(col.addr(begin), tile_n,
                        static_cast<uint32_t>(DataTypeSize(col.type())));
          }
          ctx.Compute(bit_util::CeilDiv(tile_n, warp) *
                      (1 + spec.aggregates.size()));
          return Status::OK();
        }));
    uint64_t run_start = 0;
    for (uint64_t i = 0; i <= n; ++i) {
      if (i == n || (i > 0 && t_keys[i] != t_keys[run_start])) {
        GroupAcc acc;
        for (uint64_t j = run_start; j < i; ++j) {
          for (size_t a = 0; a < spec.aggregates.size(); ++a) {
            const AggSpec& as = spec.aggregates[a];
            if (as.op == AggOp::kCount) {
              agg_values[a] = 0;
              continue;
            }
            const auto it = std::find(needed.begin(), needed.end(), as.column);
            agg_values[a] = t_cols[it - needed.begin()].Get(j);
          }
          UpdateAcc(&acc, spec, agg_values);
        }
        groups.emplace_back(static_cast<int64_t>(t_keys[run_start]),
                            std::move(acc));
        run_start = i;
      }
    }
  }
  return groups;
}

template <typename K>
Result<GroupByRunResult> GroupByDriver(vgpu::Device& device, GroupByAlgo algo,
                                       const Table& input, const GroupBySpec& spec,
                                       const GroupByOptions& opts) {
  device.ResetPeakMemory();
  GroupByRunResult res;
  const vgpu::KernelStats stats_before = device.total_stats();
  obs::TraceSpan query_span(device, "query",
                            std::string("groupby:") + GroupByAlgoName(algo));
  query_span.Annotate("algo", GroupByAlgoName(algo));
  query_span.Annotate("rows", std::to_string(input.num_rows()));
  const double t0 = device.ElapsedSeconds();
  double transform_s = 0;

  std::vector<std::pair<int64_t, GroupAcc>> groups;
  switch (algo) {
    case GroupByAlgo::kHashGlobal: {
      GPUJOIN_ASSIGN_OR_RETURN(groups, HashGlobalAggregate<K>(device, input, spec));
      break;
    }
    case GroupByAlgo::kHashPartitioned: {
      GPUJOIN_ASSIGN_OR_RETURN(
          groups, HashPartitionedAggregate<K>(device, input, spec, opts,
                                              &transform_s));
      break;
    }
    case GroupByAlgo::kSortBased: {
      GPUJOIN_ASSIGN_OR_RETURN(groups,
                               SortAggregate<K>(device, input, spec, &transform_s));
      break;
    }
  }
  const double t1 = device.ElapsedSeconds();
  GPUJOIN_RETURN_IF_ERROR(obs::CheckLifecycle(device));
  {
    obs::TraceSpan emit_span(device, "phase", "emit");
    GPUJOIN_ASSIGN_OR_RETURN(res.output,
                             EmitOutput(device, input, spec, groups));
  }
  const double t2 = device.ElapsedSeconds();
  GPUJOIN_RETURN_IF_ERROR(obs::CheckLifecycle(device));

  res.phases.transform_s = transform_s;
  res.phases.match_s = (t1 - t0) - transform_s;
  res.phases.materialize_s = t2 - t1;
  res.num_groups = groups.size();
  res.peak_mem_bytes = device.memory_stats().peak_bytes;
  res.stats = device.total_stats();
  res.stats.Sub(stats_before);
  const double total = t2 - t0;
  res.throughput_tuples_per_sec =
      total > 0 ? static_cast<double>(input.num_rows()) / total : 0;
  return res;
}

}  // namespace

Result<GroupByRunResult> RunGroupBy(vgpu::Device& device, GroupByAlgo algo,
                                    const Table& input, const GroupBySpec& spec,
                                    const GroupByOptions& options) {
  if (input.num_columns() < 1 || input.num_rows() == 0) {
    return Status::InvalidArgument("RunGroupBy: empty input");
  }
  GPUJOIN_RETURN_IF_ERROR(ValidateSpec(input, spec));
  GPUJOIN_RETURN_IF_ERROR(obs::CheckLifecycle(device));
  if (input.column(0).type() == DataType::kInt32) {
    return GroupByDriver<int32_t>(device, algo, input, spec, options);
  }
  return GroupByDriver<int64_t>(device, algo, input, spec, options);
}

}  // namespace gpujoin::groupby
