#include "groupby/planner.h"

namespace gpujoin::groupby {

namespace {

/// Bytes of one global-table group entry: key slot + 8-byte accumulators
/// (+ count), doubled for the open-addressing load factor.
uint64_t GlobalTableBytes(const GroupByFeatures& f) {
  const uint64_t slot = 8 + 8 * static_cast<uint64_t>(f.num_aggregates) + 8;
  return f.estimated_groups * slot * 2;
}

constexpr double kSkewThreshold = 1.0;

}  // namespace

GroupByAlgo ChooseGroupByAlgo(const vgpu::Device& device,
                              const GroupByFeatures& features) {
  if (features.zipf_theta > kSkewThreshold) {
    // Hot groups serialize the global table's atomics; partitioning keeps
    // the contention inside shared memory where it is an order of
    // magnitude cheaper.
    return GroupByAlgo::kHashPartitioned;
  }
  if (GlobalTableBytes(features) <= device.config().l2_bytes / 2) {
    // Cache-resident table: random updates are L2 hits; no transform cost.
    return GroupByAlgo::kHashGlobal;
  }
  // Large group counts: pay the 2-pass partition, aggregate locally.
  return GroupByAlgo::kHashPartitioned;
}

std::string ExplainGroupByChoice(const vgpu::Device& device,
                                 const GroupByFeatures& features) {
  std::string out = "groupby features: rows=" + std::to_string(features.rows);
  out += " groups~" + std::to_string(features.estimated_groups);
  out += " zipf~" + std::to_string(features.zipf_theta);
  out += " aggs=" + std::to_string(features.num_aggregates);
  out += " -> ";
  const GroupByAlgo choice = ChooseGroupByAlgo(device, features);
  out += GroupByAlgoName(choice);
  if (features.zipf_theta > kSkewThreshold) {
    out += " (skewed keys: global atomics on hot groups serialize)";
  } else if (choice == GroupByAlgo::kHashGlobal) {
    out += " (table fits L2: random updates stay on chip)";
  } else {
    out += " (table exceeds L2: partition so groups fit shared memory)";
  }
  return out;
}

}  // namespace gpujoin::groupby
