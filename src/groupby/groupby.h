// Grouped aggregation on the simulated GPU — the second half of the target
// paper's title. Three algorithm families mirroring the join design space:
//
//   HASH-GLOBAL       one global-memory hash table updated with atomics
//                     (cuDF-style). Wins when the group count is small
//                     enough that the table lives in cache; suffers from
//                     random access and atomic contention otherwise.
//   HASH-PARTITIONED  radix-partition the input so each partition's groups
//                     fit a shared-memory table (the GFTR insight applied
//                     to aggregation: all aggregate columns are transformed
//                     with the keys), then aggregate locally and emit
//                     densely. Flat cost in the group count.
//   SORT-BASED        sort (key, column) pairs, then a segmented reduction
//                     over equal-key runs. Robust but pays the full sort.
//
// Conventions: column 0 of the input is the group key; aggregates reference
// payload columns by index. All aggregate outputs are int64 (SUM/COUNT are
// widened; AVG is an integer mean, floor(sum/count)).

#ifndef GPUJOIN_GROUPBY_GROUPBY_H_
#define GPUJOIN_GROUPBY_GROUPBY_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "join/join.h"
#include "storage/table.h"
#include "vgpu/device.h"

namespace gpujoin::groupby {

enum class GroupByAlgo {
  kHashGlobal,
  kHashPartitioned,
  kSortBased,
};

inline constexpr std::array<GroupByAlgo, 3> kAllGroupByAlgos = {
    GroupByAlgo::kHashGlobal, GroupByAlgo::kHashPartitioned,
    GroupByAlgo::kSortBased};

const char* GroupByAlgoName(GroupByAlgo algo);

enum class AggOp {
  kSum,
  kCount,
  kMin,
  kMax,
  kAvg,
};

const char* AggOpName(AggOp op);

struct AggSpec {
  /// Input column index (>= 1; column 0 is the group key). Ignored for
  /// kCount.
  int column = 1;
  AggOp op = AggOp::kSum;
};

struct GroupBySpec {
  std::vector<AggSpec> aggregates;
};

struct GroupByOptions {
  /// Override the partitioned variant's radix bits (default: derived from
  /// the shared-memory accumulator capacity).
  int radix_bits_override = -1;
};

struct GroupByRunResult {
  /// Output schema: group key, then one int64 column per aggregate.
  Table output;
  join::PhaseBreakdown phases;  // transform / aggregate (match) / emit.
  uint64_t num_groups = 0;
  uint64_t peak_mem_bytes = 0;
  /// Input tuples per simulated second.
  double throughput_tuples_per_sec = 0;
  /// KernelStats delta accumulated by this run (Table 4 counters).
  vgpu::KernelStats stats;
};

/// Runs a grouped aggregation of `input` grouped by column 0.
Result<GroupByRunResult> RunGroupBy(vgpu::Device& device, GroupByAlgo algo,
                                    const Table& input, const GroupBySpec& spec,
                                    const GroupByOptions& options = {});

}  // namespace gpujoin::groupby

#endif  // GPUJOIN_GROUPBY_GROUPBY_H_
