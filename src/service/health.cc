#include "service/health.h"

#include "obs/registry.h"

namespace gpujoin::service {

namespace {

double StateGauge(BreakerState s) {
  switch (s) {
    case BreakerState::kClosed:
      return 0;
    case BreakerState::kOpen:
      return 1;
    case BreakerState::kHalfOpen:
      return 2;
  }
  return 0;
}

}  // namespace

const char* BreakerStateName(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half_open";
  }
  return "unknown";
}

std::string FaultKindOf(const Status& st) {
  const std::string& msg = st.message();
  const size_t colon = msg.find(':');
  if (colon == std::string::npos || colon == 0) return "unknown";
  const std::string kind = msg.substr(0, colon);
  // Bounded label values only: accept the known fault domains, fold the
  // rest into "unknown" rather than minting a label per message shape.
  if (kind == "kernel_fault" || kind == "watchdog_timeout") return kind;
  return "unknown";
}

BackendHealth::BackendHealth(BreakerOptions options) : options_(options) {}

BackendHealth::Breaker& BackendHealth::Slot(ops::Backend backend,
                                            const std::string& fault_kind) {
  return breakers_[Key(ops::BackendName(backend), fault_kind)];
}

void BackendHealth::Transition(const Key& key, Breaker& b, BreakerState to,
                               double now_cycles) {
  if (b.state == to) return;
  b.state = to;
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  reg.CounterAdd("service_breaker_transitions_total",
                 {{"backend", key.first},
                  {"fault", key.second},
                  {"to", BreakerStateName(to)}});
  reg.GaugeSet("service_breaker_state",
               {{"backend", key.first}, {"fault", key.second}},
               StateGauge(to));
  switch (to) {
    case BreakerState::kOpen:
      ++trips_;
      b.opened_at_cycles = now_cycles;
      break;
    case BreakerState::kHalfOpen:
      ++probes_;
      break;
    case BreakerState::kClosed:
      ++closes_;
      break;
  }
}

void BackendHealth::RecordFailure(ops::Backend backend,
                                  const std::string& fault_kind,
                                  double now_cycles) {
  Breaker& b = Slot(backend, fault_kind);
  const Key key(ops::BackendName(backend), fault_kind);
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  reg.CounterAdd("service_breaker_failures_total",
                 {{"backend", key.first}, {"fault", key.second}});
  switch (b.state) {
    case BreakerState::kClosed:
      if (++b.consecutive_failures >= options_.trip_threshold) {
        // Threshold site of the trips double-entry: every path into kOpen
        // passes through here or the half-open re-trip below, and each
        // also emits transitions{to="open"} inside Transition().
        reg.CounterAdd("service_breaker_trips_total",
                       {{"backend", key.first}, {"fault", key.second}});
        Transition(key, b, BreakerState::kOpen, now_cycles);
      }
      break;
    case BreakerState::kHalfOpen:
      // The probe fragment failed: re-trip without a fresh threshold.
      b.consecutive_failures = options_.trip_threshold;
      reg.CounterAdd("service_breaker_trips_total",
                     {{"backend", key.first}, {"fault", key.second}});
      Transition(key, b, BreakerState::kOpen, now_cycles);
      break;
    case BreakerState::kOpen:
      // A fragment already in flight when the breaker opened; count the
      // failure but the breaker is as open as it gets.
      ++b.consecutive_failures;
      break;
  }
}

void BackendHealth::RecordSuccess(ops::Backend backend, double now_cycles) {
  const std::string name = ops::BackendName(backend);
  for (auto& [key, b] : breakers_) {
    if (key.first != name) continue;
    b.consecutive_failures = 0;
    if (b.state == BreakerState::kHalfOpen) {
      Transition(key, b, BreakerState::kClosed, now_cycles);
    }
  }
}

bool BackendHealth::Quarantined(ops::Backend backend, double now_cycles) {
  const std::string name = ops::BackendName(backend);
  bool open = false;
  for (auto& [key, b] : breakers_) {
    if (key.first != name || b.state != BreakerState::kOpen) continue;
    if (now_cycles >= b.opened_at_cycles + options_.probe_after_cycles) {
      // Probe window elapsed: admit the next fragment as the probe.
      Transition(key, b, BreakerState::kHalfOpen, now_cycles);
      continue;
    }
    open = true;
  }
  return open;
}

BreakerState BackendHealth::StateOf(ops::Backend backend,
                                    const std::string& fault_kind) const {
  const auto it =
      breakers_.find(Key(ops::BackendName(backend), fault_kind));
  return it == breakers_.end() ? BreakerState::kClosed : it->second.state;
}

}  // namespace gpujoin::service
