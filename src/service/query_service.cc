#include "service/query_service.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "join/out_of_core.h"
#include "obs/registry.h"
#include "obs/trace.h"

namespace gpujoin::service {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// splitmix64: the deterministic tie-break stream for pass rotation (same
/// generator family as BackoffPolicy jitter and FaultInjector).
uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

void AppendColumns(HostTable& into, const HostTable& part) {
  for (size_t c = 0; c < part.columns.size(); ++c) {
    into.columns[c].values.insert(into.columns[c].values.end(),
                                  part.columns[c].values.begin(),
                                  part.columns[c].values.end());
  }
}

/// Whether the cpux engines can run this table at all (integer-only, row
/// ids fit 32 bits) — the hedge guard for forced-backend requests. The
/// router applies the same guard internally on the kAuto path.
bool CpuxCanRun(const HostTable* t) {
  if (t == nullptr) return true;
  for (const HostColumn& col : t->columns) {
    if (col.is_string()) return false;
  }
  return t->num_rows() < uint64_t{0xFFFFFFFF};
}

}  // namespace

const char* AdmissionDecisionName(AdmissionDecision d) {
  switch (d) {
    case AdmissionDecision::kAdmitted: return "admitted";
    case AdmissionDecision::kQueued: return "queued";
    case AdmissionDecision::kRejected: return "rejected";
    case AdmissionDecision::kDeferred: return "deferred";
  }
  return "unknown";
}

QueryService::QueryService(vgpu::Device& device, ServiceOptions options)
    : device_(device),
      budget_bytes_(options.budget_bytes != 0
                        ? options.budget_bytes
                        : device.config().global_mem_bytes),
      max_queue_(options.max_queue),
      backoff_(options.backoff),
      sched_(options.scheduler),
      default_backend_(options.default_backend),
      cpux_threads_(std::max(1, options.cpux_threads)),
      transient_retry_limit_(std::max(0, options.transient_retry_limit)),
      health_(options.breaker) {
  // GPUJOIN_BACKEND overrides the configured default; unset or unparsable
  // leaves it alone (a service cannot surface a Status from a constructor).
  if (Result<ops::Backend> env = ops::BackendFromEnv(default_backend_);
      env.ok()) {
    default_backend_ = *env;
  }
  for (const TenantQuota& q : options.tenants) {
    TenantState state;
    state.quota = q;
    if (state.quota.quota_bytes == 0) state.quota.quota_bytes = budget_bytes_;
    tenants_.emplace(q.name, std::move(state));
  }
}

const TenantState* QueryService::tenant(const std::string& name) const {
  auto it = tenants_.find(name.empty() ? "default" : name);
  return it == tenants_.end() ? nullptr : &it->second;
}

TenantState& QueryService::ResolveTenant(const std::string& name) {
  auto it = tenants_.find(name);
  if (it != tenants_.end()) return it->second;
  // Unconfigured tenants are unconstrained beyond the global budget: full
  // quota, no borrowing (nothing to borrow past the budget), shared queue
  // limit. This keeps single-tenant workloads byte-compatible with the
  // pre-quota service.
  TenantState state;
  state.quota.name = name;
  state.quota.quota_bytes = budget_bytes_;
  state.quota.borrow_limit_bytes = 0;
  state.quota.max_queue = max_queue_;
  return tenants_.emplace(name, std::move(state)).first->second;
}

stats::MemoryEstimate QueryService::Estimate(const QueryRequest& request) const {
  if (request.estimate_bytes_override > 0) {
    stats::MemoryEstimate est;
    est.working_bytes = request.estimate_bytes_override;
    return est;
  }
  if (request.kind == QueryKind::kJoin) {
    return stats::EstimateJoinMemory(*request.r, *request.s);
  }
  return stats::EstimateGroupByMemory(
      *request.r, static_cast<int>(request.groupby_spec.aggregates.size()));
}

int QueryService::ResolveFragmentBits(const QueryRequest& request,
                                      uint64_t need) const {
  const int cap = std::max(0, sched_.max_fragment_bits);
  if (request.fragment_bits_override >= 0) {
    return std::min(request.fragment_bits_override, cap);
  }
  if (!sched_.interleave) return 0;
  return DeriveScheduleFragmentBits(need, budget_bytes_,
                                    sched_.fragment_target_fraction, cap);
}

size_t QueryService::QueuedCount() const {
  size_t n = 0;
  for (const auto& [name, t] : tenants_) n += t.stats.queued;
  return n;
}

bool QueryService::TryReserve(Run& run) {
  // All limit checks in subtraction form: near-UINT64_MAX estimates must
  // reject, not wrap (the old `reserved + need <= budget` form overflowed).
  const uint64_t need = run.need;
  if (reserved_bytes_ > budget_bytes_ ||
      need > budget_bytes_ - reserved_bytes_) {
    return false;
  }
  TenantState& t = ResolveTenant(run.request.tenant);
  const uint64_t quota = t.quota.quota_bytes;
  const uint64_t quota_avail =
      quota > t.stats.reserved_bytes ? quota - t.stats.reserved_bytes : 0;
  const uint64_t borrow = need > quota_avail ? need - quota_avail : 0;
  if (borrow > 0) {
    const uint64_t borrow_avail =
        t.quota.borrow_limit_bytes > t.stats.borrowed_bytes
            ? t.quota.borrow_limit_bytes - t.stats.borrowed_bytes
            : 0;
    if (borrow > borrow_avail) return false;
  }
  reserved_bytes_ += need;
  t.stats.reserved_bytes += need;
  t.stats.borrowed_bytes += borrow;
  run.reserved = true;
  run.borrowed = borrow;
  outcomes_[run.id].borrowed_bytes = borrow;
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  if (borrow > 0) {
    reg.CounterAdd("service_quota_borrow_total",
                   {{"tenant", run.request.tenant}});
    reg.CounterAdd("service_quota_borrow_bytes_total",
                   {{"tenant", run.request.tenant}}, borrow);
  }
  reg.GaugeMax("service_reserved_peak_bytes", {},
               static_cast<double>(reserved_bytes_));
  return true;
}

void QueryService::ReleaseReservation(Run& run) {
  TenantState& t = ResolveTenant(run.request.tenant);
  reserved_bytes_ -= run.need;
  t.stats.reserved_bytes -= run.need;
  t.stats.borrowed_bytes -= run.borrowed;
  run.reserved = false;
  run.borrowed = 0;
}

Result<int> QueryService::Submit(QueryRequest request) {
  if (request.r == nullptr ||
      (request.kind == QueryKind::kJoin && request.s == nullptr)) {
    return Status::InvalidArgument("QueryService::Submit: missing input table");
  }
  if (request.tenant.empty()) request.tenant = "default";

  const int id = static_cast<int>(outcomes_.size());
  QueryOutcome out;
  out.name = request.name;
  out.tenant = request.tenant;
  out.priority = request.priority;
  out.estimate = Estimate(request);
  out.submitted_at_cycles = device_.elapsed_cycles();
  const uint64_t need = out.estimate.total_bytes();

  if (need > budget_bytes_) {
    // Could never fit even an idle device: structured rejection, no queueing.
    out.admission = AdmissionDecision::kRejected;
    out.status = Status::ResourceExhausted(
        "admission rejected: query '" + request.name + "' estimates " +
        std::to_string(need) + " B but the service budget is " +
        std::to_string(budget_bytes_) + " B");
    obs::TraceInstant(device_, "admission:rejected", out.status.message());
    ResolveTenant(request.tenant).stats.rejected++;
    RecordAdmission(out);
    RecordTerminal(out);
    outcomes_.push_back(std::move(out));
    return id;
  }

  Run run;
  run.id = id;
  run.need = need;
  run.request = std::move(request);
  outcomes_.push_back(std::move(out));

  if (run.request.arrival_cycles > device_.elapsed_cycles()) {
    // Models an asynchronous Submit racing the drain: admission is
    // evaluated when the simulated clock reaches the arrival time.
    outcomes_[id].admission = AdmissionDecision::kDeferred;
    obs::TraceInstant(device_, "admission:deferred",
                      "query '" + run.request.name + "' arrives at cycle " +
                          std::to_string(run.request.arrival_cycles));
    RecordAdmission(outcomes_[id]);
  } else {
    run.arrived = true;
    AdmitOrQueue(run);
    RecordAdmission(outcomes_[id]);
    if (run.done) {
      // Rejected: never enters the pending set, so this is terminal now.
      RecordTerminal(outcomes_[id]);
      return id;
    }
  }

  const int bits = ResolveFragmentBits(run.request, need);
  if (run.request.kind == QueryKind::kJoin) {
    run.plan = FragmentPlan::ForJoin(*run.request.r, *run.request.s, bits);
  } else {
    run.plan = FragmentPlan::ForGroupBy(*run.request.r, bits);
  }
  outcomes_[id].fragments_total = static_cast<int>(run.plan.units().size());
  run.control.set_token(run.request.lifecycle.token);
  pending_.push_back(std::move(run));
  return id;
}

void QueryService::AdmitOrQueue(Run& run) {
  QueryOutcome& out = outcomes_[run.id];
  TenantState& t = ResolveTenant(run.request.tenant);
  const uint64_t need = run.need;

  if (TryReserve(run)) {
    out.admission = AdmissionDecision::kAdmitted;
    t.stats.admitted++;
    obs::TraceInstant(device_, "admission:reserved",
                      "query '" + out.name + "' (tenant '" + out.tenant +
                          "') reserved " + std::to_string(need) + " B (" +
                          std::to_string(run.borrowed) + " B borrowed, " +
                          std::to_string(reserved_bytes_) + "/" +
                          std::to_string(budget_bytes_) + " B reserved)");
    return;
  }

  if (QueuedCount() >= max_queue_) {
    out.admission = AdmissionDecision::kRejected;
    out.status = Status::ResourceExhausted(
        "admission rejected: queue full (" + std::to_string(max_queue_) +
        " queued submission(s)) for query '" + out.name + "'");
    obs::TraceInstant(device_, "admission:rejected", out.status.message());
    t.stats.rejected++;
    run.done = true;
    return;
  }
  if (t.stats.queued >= t.quota.max_queue) {
    out.admission = AdmissionDecision::kRejected;
    out.status = Status::TenantOverQuota(
        "tenant '" + out.tenant + "' queue full (" +
        std::to_string(t.quota.max_queue) +
        " queued submission(s)) for query '" + out.name + "'");
    obs::TraceInstant(device_, "admission:rejected", out.status.message());
    t.stats.rejected++;
    t.stats.over_quota++;
    run.done = true;
    return;
  }

  out.admission = AdmissionDecision::kQueued;
  t.stats.queued++;
  t.stats.queued_total++;
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  reg.HistogramObserve("service_queue_depth", {{"tenant", out.tenant}},
                       static_cast<double>(t.stats.queued));
  reg.GaugeMax("service_queue_depth_peak", {{"tenant", out.tenant}},
               static_cast<double>(t.stats.queued));
  obs::TraceInstant(
      device_, "admission:queued",
      "query '" + out.name + "' (tenant '" + out.tenant + "') queued: " +
          std::to_string(need) + " B needed, " +
          std::to_string(budget_bytes_ - reserved_bytes_) + " B unreserved");
}

void QueryService::ProcessArrivals(std::vector<Run>& batch) {
  const double now = device_.elapsed_cycles();
  for (Run& r : batch) {
    if (r.done || r.arrived) continue;
    if (r.request.arrival_cycles > now) continue;
    r.arrived = true;
    obs::TraceInstant(device_, "sched:arrival",
                      "query '" + outcomes_[r.id].name + "' (tenant '" +
                          outcomes_[r.id].tenant + "', priority " +
                          std::to_string(r.request.priority) +
                          ") arrived at cycle " + std::to_string(now));
    AdmitOrQueue(r);
    // A deferred arrival can be rejected at its evaluation time; that is
    // terminal without ever reaching Finalize.
    if (r.done) RecordTerminal(outcomes_[r.id]);
  }
}

void QueryService::AdmitQueuedAfterRelease(std::vector<Run>& batch) {
  // A freed reservation goes to the highest-priority waiter first; FIFO
  // order only breaks ties within a priority tier. Otherwise an early-
  // submitted bulk query would capture every release ahead of interactive
  // queries that outrank it.
  std::vector<Run*> waiting;
  for (Run& run : batch) {
    if (run.done || !run.arrived || run.reserved) continue;
    waiting.push_back(&run);
  }
  std::stable_sort(waiting.begin(), waiting.end(),
                   [](const Run* a, const Run* b) {
                     return a->request.priority > b->request.priority;
                   });
  for (Run* rp : waiting) {
    Run& r = *rp;
    if (!TryReserve(r)) continue;
    TenantState& t = ResolveTenant(r.request.tenant);
    t.stats.queued--;
    t.stats.admitted++;
    outcomes_[r.id].admission = AdmissionDecision::kAdmitted;
    obs::TraceInstant(device_, "admission:reserved",
                      "queued query '" + outcomes_[r.id].name +
                          "' reserved " + std::to_string(r.need) +
                          " B after a release");
  }
}

void QueryService::RetryQueuedIdle(std::vector<Run>& batch) {
  // Nothing is runnable and no arrival is pending, so only the paced
  // retries below separate a queued query from a deterministic
  // backpressure failure (nothing else will free budget).
  for (Run& r : batch) {
    if (r.done || !r.arrived || r.reserved) continue;
    TenantState& t = ResolveTenant(r.request.tenant);
    for (int attempt = 1;; ++attempt) {
      if (TryReserve(r)) {
        t.stats.queued--;
        t.stats.admitted++;
        outcomes_[r.id].admission = AdmissionDecision::kAdmitted;
        obs::TraceInstant(device_, "admission:reserved",
                          "queued query '" + outcomes_[r.id].name +
                              "' reserved " + std::to_string(r.need) +
                              " B on attempt " + std::to_string(attempt));
        return;  // Runnable now; let the scheduler take a pass.
      }
      if (!backoff_.AttemptAllowed(attempt + 1)) {
        // Statically infeasible for this tenant (even an idle service could
        // not reserve it): quota + borrow allowance can never cover `need`.
        const uint64_t quota = t.quota.quota_bytes;
        const bool tenant_limited =
            r.need > quota && r.need - quota > t.quota.borrow_limit_bytes;
        Status st =
            tenant_limited
                ? Status::TenantOverQuota(
                      "admission retry budget exhausted for queued query '" +
                      outcomes_[r.id].name + "': tenant '" + outcomes_[r.id].tenant +
                      "' needs " + std::to_string(r.need) + " B against quota " +
                      std::to_string(quota) + " B + borrow limit " +
                      std::to_string(t.quota.borrow_limit_bytes) + " B after " +
                      std::to_string(attempt) + " attempt(s)")
                : Status::ResourceExhausted(
                      "admission retry budget exhausted for queued query '" +
                      outcomes_[r.id].name + "': " + std::to_string(r.need) +
                      " B needed, " +
                      std::to_string(budget_bytes_ - reserved_bytes_) +
                      " B unreserved after " + std::to_string(attempt) +
                      " attempt(s)");
        obs::TraceInstant(device_, "admission:rejected", st.message());
        t.stats.queued--;
        t.stats.rejected++;
        if (tenant_limited) t.stats.over_quota++;
        Finalize(r, std::move(st));
        break;  // Next queued submission.
      }
      device_.AdvanceClock(backoff_.DelayCycles(attempt));
    }
  }
}

ops::CpuxProvider& QueryService::Cpux() {
  if (cpux_ == nullptr) {
    cpux_ = std::make_unique<ops::CpuxProvider>(cpux_threads_);
  }
  return *cpux_;
}

bool QueryService::ResolveUseCpux(const QueryRequest& request,
                                  const FragmentUnit& unit,
                                  std::string* label) {
  const double now = device_.elapsed_cycles();
  // Hedge-decision double entry: metered here, once per hedged resolution;
  // the executing side meters service_hedged_fragments_total once per
  // hedged turn. The two totals reconcile after every Drain.
  const auto record_hedge = [&](ops::Backend to) {
    obs::MetricsRegistry::Global().CounterAdd(
        "service_hedge_decisions_total", {{"to", ops::BackendName(to)}});
  };
  const ops::Backend want = request.backend.value_or(default_backend_);
  if (want != ops::Backend::kAuto) {
    // A forced backend still hedges off an open breaker: pinning a
    // fragment to a quarantined backend would just burn its transient
    // retry budget. Eligibility still binds (strings stay on vgpu).
    const ops::Backend other = want == ops::Backend::kCpux
                                   ? ops::Backend::kVgpu
                                   : ops::Backend::kCpux;
    const bool other_viable =
        other == ops::Backend::kVgpu ||
        (CpuxCanRun(unit.r) &&
         (request.kind != QueryKind::kJoin || CpuxCanRun(unit.s)));
    if (health_.Quarantined(want, now) && other_viable &&
        !health_.Quarantined(other, now)) {
      *label = std::string("hedge:") + ops::BackendName(other);
      record_hedge(other);
      return other == ops::Backend::kCpux;
    }
    *label = ops::BackendName(want);
    return want == ops::Backend::kCpux;
  }
  // Cost-based route per fragment unit: pure function of tuple counts, the
  // device config, and breaker state driven by the simulated clock — so
  // replays and every GPUJOIN_SIM_THREADS setting pick the same backend.
  ops::RouterOptions ropts;
  ropts.cpux_threads = cpux_threads_;
  ropts.quarantined = [this, now](ops::Backend b) {
    return health_.Quarantined(b, now);
  };
  ops::RouteDecision decision;
  if (request.kind == QueryKind::kJoin) {
    ops::JoinOp op;
    op.algo = request.join_algo;
    op.options = request.join_options.join;
    op.r = unit.r;
    op.s = unit.s;
    decision = ops::RouteJoin(op, device_.config(), ropts);
  } else {
    ops::GroupByOp op;
    op.algo = request.groupby_algo;
    op.spec = request.groupby_spec;
    op.options = request.groupby_options.groupby;
    op.input = unit.r;
    decision = ops::RouteGroupBy(op, device_.config(), ropts);
  }
  if (decision.reason == "quarantined") {
    *label = std::string("hedge:") + ops::BackendName(decision.backend);
    record_hedge(decision.backend);
  } else {
    *label = std::string("auto:") + ops::BackendName(decision.backend);
  }
  return decision.backend == ops::Backend::kCpux;
}

Status QueryService::RunUnit(Run& run, bool use_cpux,
                             ops::Backend* executed) {
  const FragmentUnit& u = run.plan.units()[run.next_unit];
  const QueryRequest& req = run.request;
  QueryOutcome& out = outcomes_[run.id];
  HostTable part;
  uint64_t part_rows = 0;
  bool ran_on_cpux = false;
  *executed = use_cpux ? ops::Backend::kCpux : ops::Backend::kVgpu;

  if (use_cpux) {
    // Host-side execution: zero simulated cycles, no PCIe charges. A cpux
    // resource failure is the cross-backend fallback rung — the fragment
    // re-runs on the vgpu resilient path below.
    Result<ops::OperatorRunResult> rr = [&]() {
      if (req.kind == QueryKind::kJoin) {
        ops::JoinOp op;
        op.algo = req.join_algo;
        op.options = req.join_options.join;
        op.r = u.r;
        op.s = u.s;
        return Cpux().RunJoin(op);
      }
      ops::GroupByOp op;
      op.algo = req.groupby_algo;
      op.spec = req.groupby_spec;
      op.options = req.groupby_options.groupby;
      op.input = u.r;
      return Cpux().RunGroupBy(op);
    }();
    if (rr.ok()) {
      out.attempts = std::max(out.attempts, rr->attempts);
      part = std::move(rr->output);
      part_rows = rr->output_rows;
      ran_on_cpux = true;
    } else if (rr.status().code() == StatusCode::kResourceExhausted ||
               rr.status().code() == StatusCode::kOutOfMemory) {
      obs::TraceInstant(device_, "backend_fallback",
                        "query '" + out.name + "' fragment " +
                            std::to_string(run.next_unit) +
                            ": cpux failed (" + rr.status().message() +
                            "); retrying on vgpu");
      out.backend += "->vgpu";
      *executed = ops::Backend::kVgpu;
      obs::MetricsRegistry::Global().CounterAdd(
          "service_backend_fallback_total", {{"tenant", out.tenant}});
    } else {
      return rr.status();
    }
  }

  if (!ran_on_cpux && req.kind == QueryKind::kJoin) {
    if (run.plan.fragmented()) {
      // Fragment streaming is modelled like the out-of-core path: the
      // co-fragment pair crosses PCIe up, the partial result crosses down.
      device_.ChargeHostTransfer(join::HostTableBytes(*u.r) +
                                 join::HostTableBytes(*u.s));
      GPUJOIN_RETURN_IF_ERROR(obs::CheckLifecycle(device_));
    }
    Result<join::ResilientJoinResult> jr = join::RunJoinResilient(
        device_, req.join_algo, *u.r, *u.s, req.join_options);
    GPUJOIN_RETURN_IF_ERROR(jr.status());
    out.attempts = std::max(out.attempts, jr->attempts);
    part = std::move(jr->output);
    part_rows = jr->output_rows;
    if (run.plan.fragmented()) {
      device_.ChargeHostTransfer(join::HostTableBytes(part));
    }
  } else if (!ran_on_cpux) {
    if (run.plan.fragmented()) {
      device_.ChargeHostTransfer(join::HostTableBytes(*u.r));
      GPUJOIN_RETURN_IF_ERROR(obs::CheckLifecycle(device_));
    }
    // Upload, aggregate, download. The device-resident tables must die
    // inside this call so the post-turn watermark check sees a clean
    // device.
    GPUJOIN_ASSIGN_OR_RETURN(Table input, Table::FromHost(device_, *u.r));
    Result<groupby::ResilientGroupByResult> gr = groupby::RunGroupByResilient(
        device_, req.groupby_algo, input, req.groupby_spec,
        req.groupby_options);
    GPUJOIN_RETURN_IF_ERROR(gr.status());
    out.attempts = std::max(out.attempts, gr->attempts);
    part = gr->run.output.ToHost();
    part_rows = gr->run.num_groups;
    if (run.plan.fragmented()) {
      device_.ChargeHostTransfer(join::HostTableBytes(part));
    }
  }

  // Merge in fixed fragment order: units run (and re-run after preemption)
  // strictly in plan order, so appending is the deterministic merge.
  if (!run.partial_init) {
    run.partial = std::move(part);
    run.partial_init = true;
  } else {
    AppendColumns(run.partial, part);
  }
  run.partial_rows += part_rows;
  return Status::OK();
}

Status QueryService::RunFragmentTurn(Run& run, std::vector<Run>& batch,
                                     TurnResult* turn) {
  QueryOutcome& out = outcomes_[run.id];
  TenantState& t = ResolveTenant(run.request.tenant);
  const double turn_start = device_.elapsed_cycles();

  if (!run.started) {
    run.started = true;
    out.started_at_cycles = turn_start;
    // Wait is measured from when the query became runnable: a deferred
    // arrival is not waiting before its arrival time.
    out.wait_cycles =
        turn_start -
        std::max(out.submitted_at_cycles, run.request.arrival_cycles);
    t.stats.wait_cycles += out.wait_cycles;
    if (run.request.lifecycle.deadline_cycles > 0) {
      run.control.set_deadline(vgpu::Deadline::AfterCycles(
          turn_start, run.request.lifecycle.deadline_cycles));
    }
    run.control.set_cancel_at_kernel(run.request.lifecycle.cancel_at_kernel);
  }

  // Pre-turn seam: a cancel or deadline that tripped while the query was
  // waiting its turn terminalizes it without touching the device.
  run.control.Evaluate(turn_start);
  if (run.control.tripped()) {
    Finalize(run, run.control.status());
    AdmitQueuedAfterRelease(batch);
    return Status::OK();
  }

  // Nothing to run (every co-fragment pair was empty): empty result.
  if (run.next_unit >= run.plan.units().size()) {
    Finalize(run, Status::OK());
    AdmitQueuedAfterRelease(batch);
    return Status::OK();
  }

  if (run.resume_pending) {
    run.resume_pending = false;
    obs::TraceInstant(device_, "sched:resume",
                      "query '" + out.name + "' resumes fragment " +
                          std::to_string(run.next_unit) + " after preemption");
  }

  // Arm the preemption point: the earliest future arrival that outranks
  // this query trips a kYielded unwind at the first seam past it.
  if (sched_.interleave) {
    double preempt_at = kInf;
    for (const Run& w : batch) {
      if (w.done || w.arrived) continue;
      if (w.request.priority <= run.request.priority) continue;
      preempt_at = std::min(preempt_at, w.request.arrival_cycles);
    }
    if (preempt_at > turn_start && preempt_at < kInf) {
      run.control.set_yield_at_cycles(preempt_at);
    }
  }

  std::string backend_label;
  const bool use_cpux = ResolveUseCpux(
      run.request, run.plan.units()[run.next_unit], &backend_label);
  // Keep a "->vgpu" fallback record from an earlier fragment visible.
  if (out.backend.rfind(backend_label, 0) != 0) out.backend = backend_label;
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  reg.CounterAdd("sched_turns_total", {{"tenant", out.tenant}});
  reg.CounterAdd("service_backend_resolved_total",
                 {{"backend", backend_label}});
  if (backend_label.rfind("hedge:", 0) == 0) {
    // Execution side of the hedge double entry (decision side metered in
    // ResolveUseCpux).
    out.hedged_fragments++;
    reg.CounterAdd("service_hedged_fragments_total", {{"tenant", out.tenant}});
    obs::TraceInstant(device_, "sched:hedge",
                      "query '" + out.name + "' fragment " +
                          std::to_string(run.next_unit) +
                          " hedged to " + backend_label.substr(6) +
                          " (resolved backend quarantined)");
  }

  const uint64_t baseline_live = device_.memory_stats().live_bytes;
  ops::Backend executed = ops::Backend::kVgpu;
  Status st;
  {
    obs::TraceSpan span(device_, "sched", "turn:" + out.name);
    span.Annotate("tenant", out.tenant);
    span.Annotate("priority", std::to_string(out.priority));
    span.Annotate("fragment", std::to_string(run.next_unit) + "/" +
                                  std::to_string(run.plan.units().size()));
    span.Annotate("backend", backend_label);
    vgpu::LifecycleScope scope(device_, run.control);
    st = RunUnit(run, use_cpux, &executed);
  }
  // Disarm the preemption triggers; clears a kYielded trip (including one
  // that fired on the fragment's final clock advance after its work was
  // already complete) without touching cancel/deadline state.
  run.control.ClearYield();
  if (st.ok() && run.plan.fragmented()) {
    // Mirror the out-of-core stream: a deadline/cancel that tripped during
    // the fragment's download fails the query at this seam rather than one
    // turn later.
    run.control.Evaluate(device_.elapsed_cycles());
    if (run.control.tripped()) st = run.control.status();
  }

  const double turn_cycles = device_.elapsed_cycles() - turn_start;
  turn->cycles = turn_cycles;
  out.run_cycles += turn_cycles;
  t.stats.run_cycles += turn_cycles;
  out.fragment_turns++;
  out.kernels_launched = run.control.kernels_launched();

  // The leak-audit contract: whatever the outcome — success, preemption,
  // cancellation, deadline, OOM — a fragment turn must leave the device at
  // its entry watermark.
  const uint64_t live = device_.memory_stats().live_bytes;
  reg.CounterAdd("service_leak_check_total",
                 {{"outcome", live == baseline_live ? "clean" : "leak"}});
  if (live != baseline_live) {
    return Status::Internal(
        "QueryService: query '" + out.name + "' fragment turn (" +
        StatusCodeToString(st.code()) + ") left " + std::to_string(live) +
        " live bytes (entry watermark " + std::to_string(baseline_live) +
        ")\n" + device_.LeakReport());
  }

  if (st.ok()) {
    // A clean fragment on this backend resets its consecutive-failure
    // counts and closes a half-open breaker (the probe passed).
    health_.RecordSuccess(executed, device_.elapsed_cycles());
    ++run.next_unit;
    if (run.next_unit >= run.plan.units().size()) {
      Finalize(run, Status::OK());
      AdmitQueuedAfterRelease(batch);
    }
  } else if (st.IsUnavailable()) {
    // Transient fault that exhausted the ladder's own retry budget (or
    // surfaced at a seam outside it). Feed the breaker, clear the device's
    // sticky fault so later queries are untouched, and re-run the SAME
    // fragment after a seeded backoff — next resolution hedges to the
    // surviving backend once the breaker trips. The retry limit turns a
    // persistent fault into a structured terminal kUnavailable.
    const std::string kind = FaultKindOf(st);
    health_.RecordFailure(executed, kind, device_.elapsed_cycles());
    device_.ClearTransientFault();
    ++run.transient_retries;
    out.transient_retries = run.transient_retries;
    if (run.transient_retries > transient_retry_limit_) {
      Finalize(run, Status::Unavailable(
                        st.message() + " (service transient-retry limit " +
                        std::to_string(transient_retry_limit_) +
                        " exhausted)"));
      AdmitQueuedAfterRelease(batch);
    } else {
      reg.CounterAdd("service_transient_retries_total",
                     {{"tenant", out.tenant}});
      obs::TraceInstant(device_, "sched:transient_retry",
                        "query '" + out.name + "' fragment " +
                            std::to_string(run.next_unit) + " retry " +
                            std::to_string(run.transient_retries) + " on " +
                            kind + " (" + st.message() + ")");
      device_.AdvanceClock(backoff_.DelayCycles(run.transient_retries));
      // next_unit stays put: the fragment re-runs on a later turn, like a
      // preempted fragment (but without the resume instant).
    }
  } else if (st.IsYielded()) {
    // Preempted: the fragment unwound cleanly and stays at the front of
    // the query's plan; the scheduler re-runs it after the preemptor.
    turn->yielded = true;
    run.resume_pending = true;
    out.preemptions++;
    t.stats.preemptions++;
    reg.CounterAdd("sched_preemptions_total", {{"tenant", out.tenant}});
    obs::TraceInstant(device_, "sched:preempt",
                      "query '" + out.name + "' yielded fragment " +
                          std::to_string(run.next_unit) + " at cycle " +
                          std::to_string(device_.elapsed_cycles()) + ": " +
                          st.message());
  } else {
    Finalize(run, std::move(st));
    AdmitQueuedAfterRelease(batch);
  }
  return Status::OK();
}

void QueryService::Finalize(Run& run, Status status) {
  QueryOutcome& out = outcomes_[run.id];
  TenantState& t = ResolveTenant(run.request.tenant);
  if (run.reserved) {
    const uint64_t need = run.need;
    ReleaseReservation(run);
    obs::TraceInstant(device_, "admission:released",
                      "query '" + out.name + "' released " +
                          std::to_string(need) + " B (" +
                          StatusCodeToString(status.code()) + ")");
  }
  run.done = true;
  out.status = std::move(status);
  out.finished_at_cycles = device_.elapsed_cycles();
  out.kernels_launched = run.control.kernels_launched();
  if (out.status.ok()) {
    out.output = std::move(run.partial);
    out.output_rows = run.partial_rows;
    t.stats.completed++;
  }
  obs::TraceInstant(
      device_, "sched:complete",
      "query=" + out.name + " tenant=" + out.tenant +
          " priority=" + std::to_string(out.priority) +
          " status=" + StatusCodeToString(out.status.code()) +
          " wait_cycles=" + std::to_string(out.wait_cycles) +
          " run_cycles=" + std::to_string(out.run_cycles) +
          " preemptions=" + std::to_string(out.preemptions) +
          " fragments=" + std::to_string(out.fragments_total));
  RecordTerminal(out);
}

void QueryService::RecordAdmission(const QueryOutcome& out) {
  obs::MetricsRegistry::Global().CounterAdd(
      "service_admissions_total",
      {{"decision", AdmissionDecisionName(out.admission)},
       {"tenant", out.tenant}});
}

void QueryService::RecordTerminal(const QueryOutcome& out) {
  // Exactly one sample per submitted query (Finalize, or the reject paths
  // that never reach it), so Σ service_admissions_total ==
  // Σ service_outcomes_total reconciles after every Drain.
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  const obs::MetricLabels tenant = {{"tenant", out.tenant}};
  reg.CounterAdd("service_outcomes_total",
                 {{"status", StatusCodeToString(out.status.code())},
                  {"tenant", out.tenant}});
  reg.HistogramObserve("service_wait_cycles", tenant, out.wait_cycles);
  reg.HistogramObserve("service_run_cycles", tenant, out.run_cycles);
  reg.HistogramObserve("service_query_preemptions", tenant,
                       static_cast<double>(out.preemptions));
  if (out.kernels_launched > 0) {
    reg.CounterAdd("service_kernels_launched_total", tenant,
                   static_cast<uint64_t>(out.kernels_launched));
  }
}

Status QueryService::DrainBatch(std::vector<Run>& batch) {
  uint64_t pass = 0;
  const double quantum = std::max(sched_.quantum_cycles, 1.0);
  for (;;) {
    ProcessArrivals(batch);

    std::vector<Run*> runnable;
    double next_arrival = kInf;
    bool have_queued = false;
    for (Run& r : batch) {
      if (r.done) continue;
      if (!r.arrived) {
        next_arrival = std::min(next_arrival, r.request.arrival_cycles);
        continue;
      }
      if (r.reserved) {
        runnable.push_back(&r);
      } else {
        have_queued = true;
      }
    }

    if (runnable.empty()) {
      if (next_arrival < kInf) {
        const double now = device_.elapsed_cycles();
        if (next_arrival > now) {
          obs::TraceInstant(device_, "sched:idle",
                            "no runnable query; advancing clock " +
                                std::to_string(next_arrival - now) +
                                " cycles to the next arrival");
          obs::MetricsRegistry::Global().CounterAdd(
              "sched_idle_advances_total");
          device_.AdvanceClock(next_arrival - now);
        }
        continue;
      }
      if (have_queued) {
        RetryQueuedIdle(batch);
        continue;
      }
      break;  // Everything terminal.
    }

    // Strict priority: only the highest tier present gets fragment turns.
    int tier = runnable.front()->request.priority;
    for (const Run* r : runnable) tier = std::max(tier, r->request.priority);
    std::vector<Run*> members;
    for (Run* r : runnable) {
      if (r->request.priority == tier) members.push_back(r);
    }
    // When a higher-priority query has arrived but cannot reserve memory,
    // interleaving the running tier only delays the first release it is
    // waiting for (every member finishes late instead of one finishing
    // early). Focus on completion in that case: run the member with the
    // least remaining work until it releases its reservation.
    const auto memory_starved_above = [&batch, tier]() {
      for (const Run& r : batch) {
        if (!r.done && r.arrived && !r.reserved &&
            r.request.priority > tier) {
          return true;
        }
      }
      return false;
    };

    if (sched_.interleave && members.size() > 1) {
      if (memory_starved_above()) {
        // Shortest-remaining-first, sticky across yield-broken passes:
        // the most advanced member keeps the focus until it frees its
        // reservation, instead of re-rotating to a fresh member and
        // stretching the starved waiter's latency.
        std::stable_sort(members.begin(), members.end(),
                         [](const Run* a, const Run* b) {
                           return a->plan.units().size() - a->next_unit <
                                  b->plan.units().size() - b->next_unit;
                         });
      } else {
        // Seeded rotation: which member a pass starts at must not always
        // favor low submission ids, but must replay identically for a
        // given seed.
        const size_t offset = static_cast<size_t>(
            SplitMix64(sched_.seed ^ pass) % members.size());
        std::rotate(members.begin(), members.begin() + offset,
                    members.end());
      }
    }
    uint64_t min_need = 0;
    for (const Run* r : members) {
      const uint64_t need = std::max<uint64_t>(r->need, 1);
      min_need = min_need == 0 ? need : std::min(min_need, need);
    }

    bool break_pass = false;
    for (Run* q : members) {
      if (q->done || !q->reserved) continue;
      if (sched_.interleave) {
        // Deficit-weighted round-robin: service share proportional to the
        // reserved bytes (a tenant that reserves more gets more device
        // time per pass), clamped so one huge reservation cannot own a
        // whole pass.
        const double weight = std::clamp(
            static_cast<double>(std::max<uint64_t>(q->need, 1)) /
                static_cast<double>(min_need),
            1.0, 4.0);
        q->deficit += quantum * weight;
      }
      while (!q->done && (!sched_.interleave || q->deficit > 0 ||
                          memory_starved_above())) {
        TurnResult turn;
        GPUJOIN_RETURN_IF_ERROR(RunFragmentTurn(*q, batch, &turn));
        if (sched_.interleave) q->deficit -= turn.cycles;
        if (turn.yielded) {
          break_pass = true;  // A higher-priority arrival is due.
          break;
        }
        // The turn may have admitted queued work or reached an arrival
        // that outranks this tier; if so, restart the pass on the new
        // tier immediately.
        ProcessArrivals(batch);
        for (const Run& r : batch) {
          if (!r.done && r.arrived && r.reserved &&
              r.request.priority > tier) {
            break_pass = true;
            break;
          }
        }
        if (break_pass) break;
      }
      if (break_pass) break;
    }
    ++pass;
    obs::MetricsRegistry::Global().CounterAdd("sched_passes_total");
  }
  return Status::OK();
}

Status QueryService::Drain() {
  std::vector<Run> batch = std::move(pending_);
  pending_.clear();
  Status st = DrainBatch(batch);
  if (!st.ok()) {
    // Broken invariant: unwind the remaining reservations and queue counts
    // so the budget is consistent, then surface the error.
    for (Run& r : batch) {
      if (r.reserved) ReleaseReservation(r);
      if (!r.done && r.arrived && !r.reserved) {
        TenantState& t = ResolveTenant(r.request.tenant);
        if (t.stats.queued > 0) t.stats.queued--;
      }
    }
  }
  return st;
}

}  // namespace gpujoin::service
