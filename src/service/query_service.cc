#include "service/query_service.h"

#include <algorithm>
#include <utility>

#include "obs/trace.h"

namespace gpujoin::service {

const char* AdmissionDecisionName(AdmissionDecision d) {
  switch (d) {
    case AdmissionDecision::kAdmitted: return "admitted";
    case AdmissionDecision::kQueued: return "queued";
    case AdmissionDecision::kRejected: return "rejected";
  }
  return "unknown";
}

size_t QueryService::QueuedCount() const {
  size_t n = 0;
  for (const Pending& p : pending_) {
    if (!p.reserved) ++n;
  }
  return n;
}

QueryService::QueryService(vgpu::Device& device, ServiceOptions options)
    : device_(device),
      budget_bytes_(options.budget_bytes != 0
                        ? options.budget_bytes
                        : device.config().global_mem_bytes),
      max_queue_(options.max_queue),
      backoff_(options.backoff) {}

stats::MemoryEstimate QueryService::Estimate(const QueryRequest& request) const {
  if (request.kind == QueryKind::kJoin) {
    return stats::EstimateJoinMemory(*request.r, *request.s);
  }
  return stats::EstimateGroupByMemory(
      *request.r, static_cast<int>(request.groupby_spec.aggregates.size()));
}

Result<int> QueryService::Submit(QueryRequest request) {
  if (request.r == nullptr ||
      (request.kind == QueryKind::kJoin && request.s == nullptr)) {
    return Status::InvalidArgument("QueryService::Submit: missing input table");
  }

  const int id = static_cast<int>(outcomes_.size());
  QueryOutcome out;
  out.name = request.name;
  out.estimate = Estimate(request);
  const uint64_t need = out.estimate.total_bytes();

  if (need > budget_bytes_) {
    // Could never fit even an idle device: structured rejection, no queueing.
    out.admission = AdmissionDecision::kRejected;
    out.status = Status::ResourceExhausted(
        "admission rejected: query '" + request.name + "' estimates " +
        std::to_string(need) + " B but the service budget is " +
        std::to_string(budget_bytes_) + " B");
    obs::TraceInstant(device_, "admission:rejected", out.status.message());
    outcomes_.push_back(std::move(out));
    return id;
  }

  Pending p;
  p.id = id;
  if (reserved_bytes_ + need <= budget_bytes_) {
    reserved_bytes_ += need;
    p.reserved = true;
    out.admission = AdmissionDecision::kAdmitted;
    obs::TraceInstant(device_, "admission:reserved",
                      "query '" + request.name + "' reserved " +
                          std::to_string(need) + " B (" +
                          std::to_string(reserved_bytes_) + "/" +
                          std::to_string(budget_bytes_) + " B reserved)");
  } else if (QueuedCount() < max_queue_) {
    // Budget oversubscribed but the query fits an idle device: queue it.
    out.admission = AdmissionDecision::kQueued;
    obs::TraceInstant(device_, "admission:queued",
                      "query '" + request.name + "' queued behind " +
                          std::to_string(pending_.size()) + " submission(s): " +
                          std::to_string(need) + " B needed, " +
                          std::to_string(budget_bytes_ - reserved_bytes_) +
                          " B unreserved");
  } else {
    out.admission = AdmissionDecision::kRejected;
    out.status = Status::ResourceExhausted(
        "admission rejected: queue full (" + std::to_string(max_queue_) +
        " queued submission(s)) for query '" + request.name + "'");
    obs::TraceInstant(device_, "admission:rejected", out.status.message());
    outcomes_.push_back(std::move(out));
    return id;
  }
  p.request = std::move(request);
  outcomes_.push_back(std::move(out));
  pending_.push_back(std::move(p));
  return id;
}

Status QueryService::RunOne(Pending& p) {
  QueryOutcome& out = outcomes_[p.id];
  const uint64_t need = out.estimate.total_bytes();

  // Queued at Submit: take the reservation now, pacing retries with the
  // backoff policy. With serial execution nothing frees budget while we
  // wait, so exhausting the retry budget is a deterministic backpressure
  // failure, not a hang.
  if (!p.reserved) {
    for (int attempt = 1; !p.reserved; ++attempt) {
      if (reserved_bytes_ + need <= budget_bytes_) {
        reserved_bytes_ += need;
        p.reserved = true;
        obs::TraceInstant(device_, "admission:reserved",
                          "queued query '" + out.name + "' reserved " +
                              std::to_string(need) + " B on attempt " +
                              std::to_string(attempt));
        break;
      }
      if (!backoff_.AttemptAllowed(attempt + 1)) {
        out.status = Status::ResourceExhausted(
            "admission retry budget exhausted for queued query '" + out.name +
            "': " + std::to_string(need) + " B needed, " +
            std::to_string(budget_bytes_ - reserved_bytes_) +
            " B unreserved after " + std::to_string(attempt) + " attempt(s)");
        obs::TraceInstant(device_, "admission:rejected", out.status.message());
        return Status::OK();
      }
      device_.AdvanceClock(backoff_.DelayCycles(attempt));
    }
  }

  // Reservation is held from here: the guard releases it on every exit
  // path, so `p.reserved` flips off now (Drain's unwind must not release
  // it a second time).
  struct ReservationGuard {
    uint64_t* reserved;
    uint64_t bytes;
    ~ReservationGuard() { *reserved -= bytes; }
  } guard{&reserved_bytes_, need};
  p.reserved = false;

  const QueryRequest& req = p.request;
  const uint64_t baseline_live = device_.memory_stats().live_bytes;

  vgpu::LifecycleControl control(
      req.lifecycle.token,
      req.lifecycle.deadline_cycles > 0
          ? vgpu::Deadline::AfterCycles(device_.elapsed_cycles(),
                                        req.lifecycle.deadline_cycles)
          : vgpu::Deadline::Never());
  control.set_cancel_at_kernel(req.lifecycle.cancel_at_kernel);
  out.started_at_cycles = device_.elapsed_cycles();
  {
    vgpu::LifecycleScope scope(device_, control);
    if (req.kind == QueryKind::kJoin) {
      Result<join::ResilientJoinResult> run = join::RunJoinResilient(
          device_, req.join_algo, *req.r, *req.s, req.join_options);
      if (run.ok()) {
        out.output = std::move(run->output);
        out.output_rows = run->output_rows;
        out.attempts = run->attempts;
        out.status = Status::OK();
      } else {
        out.status = run.status();
      }
    } else {
      // Upload, aggregate, download. The device-resident tables must die
      // inside this block so the post-query watermark check sees a clean
      // device.
      Result<Table> input = Table::FromHost(device_, *req.r);
      if (!input.ok()) {
        out.status = input.status();
      } else {
        Result<groupby::ResilientGroupByResult> run =
            groupby::RunGroupByResilient(device_, req.groupby_algo,
                                         input.value(), req.groupby_spec,
                                         req.groupby_options);
        if (run.ok()) {
          out.output = run->run.output.ToHost();
          out.output_rows = run->run.num_groups;
          out.attempts = run->attempts;
          out.status = Status::OK();
        } else {
          out.status = run.status();
        }
      }
    }
  }
  out.finished_at_cycles = device_.elapsed_cycles();
  out.kernels_launched = control.kernels_launched();
  obs::TraceInstant(device_, "admission:released",
                    "query '" + out.name + "' released " +
                        std::to_string(need) + " B (" +
                        StatusCodeToString(out.status.code()) + ")");

  // The leak-audit contract: whatever the outcome — success, cancellation,
  // deadline, OOM — the query must leave the device at its entry watermark.
  const uint64_t live = device_.memory_stats().live_bytes;
  if (live != baseline_live) {
    return Status::Internal(
        "QueryService: query '" + out.name + "' (" +
        StatusCodeToString(out.status.code()) + ") left " +
        std::to_string(live) + " live bytes (entry watermark " +
        std::to_string(baseline_live) + ")\n" + device_.LeakReport());
  }
  return Status::OK();
}

Status QueryService::Drain() {
  std::vector<Pending> batch = std::move(pending_);
  pending_.clear();
  for (Pending& p : batch) {
    Status st = RunOne(p);
    if (!st.ok()) {
      // Broken invariant: unwind the remaining reservations so the budget
      // is consistent, then surface the error.
      for (Pending& rest : batch) {
        if (&rest != &p && rest.reserved) {
          reserved_bytes_ -= outcomes_[rest.id].estimate.total_bytes();
          rest.reserved = false;
        }
      }
      return st;
    }
  }
  return Status::OK();
}

}  // namespace gpujoin::service
