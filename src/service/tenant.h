// Per-tenant admission quotas for the multi-tenant scheduler (DESIGN.md
// §13). The single service budget splits into named tenant quotas; a
// tenant may borrow a bounded number of bytes beyond its quota from the
// globally unreserved pool, and each tenant has its own queue limit so one
// noisy tenant's backlog cannot consume the shared queue. Over-quota
// submissions fail with the structured kTenantOverQuota status instead of
// silently queueing behind the whole service.
//
// All accounting is plain uint64 arithmetic in subtraction form
// (`need <= limit - used`), never addition form (`used + need <= limit`),
// so absurd near-UINT64_MAX estimates reject instead of wrapping.

#ifndef GPUJOIN_SERVICE_TENANT_H_
#define GPUJOIN_SERVICE_TENANT_H_

#include <cstdint>
#include <string>

namespace gpujoin::service {

/// Configuration of one named tenant.
struct TenantQuota {
  std::string name;
  /// Reservation quota in bytes. 0 = the full service budget.
  uint64_t quota_bytes = 0;
  /// Bytes the tenant may hold beyond its quota, taken from the globally
  /// unreserved pool (bounded borrowing). 0 = no borrowing.
  uint64_t borrow_limit_bytes = 0;
  /// Queued submissions this tenant may hold (beyond its reservations)
  /// before Submit rejects with kTenantOverQuota.
  size_t max_queue = 8;
};

/// Live accounting and lifetime counters for one tenant.
struct TenantStats {
  /// Bytes currently reserved by the tenant (quota use + borrowed).
  uint64_t reserved_bytes = 0;
  /// Portion of reserved_bytes borrowed beyond the quota.
  uint64_t borrowed_bytes = 0;
  /// Submissions currently queued (arrived but unreserved).
  size_t queued = 0;

  // Lifetime counters (never reset; one service instance = one lifetime).
  uint64_t admitted = 0;
  uint64_t queued_total = 0;
  uint64_t rejected = 0;
  /// Rejections that were tenant-limited (quota/borrow/tenant queue), a
  /// subset of `rejected`.
  uint64_t over_quota = 0;
  uint64_t completed = 0;
  /// Fragment turns of this tenant's queries that were preempted.
  uint64_t preemptions = 0;
  /// Simulated cycles the tenant's queries spent waiting (admission to
  /// first fragment) and running (sum of fragment turns).
  double wait_cycles = 0;
  double run_cycles = 0;
};

}  // namespace gpujoin::service

#endif  // GPUJOIN_SERVICE_TENANT_H_
