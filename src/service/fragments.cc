#include "service/fragments.h"

#include <utility>

#include "join/out_of_core.h"

namespace gpujoin::service {

FragmentPlan FragmentPlan::Single(const HostTable& r, const HostTable* s) {
  FragmentPlan plan;
  plan.fragment_bits_ = 0;
  plan.units_.push_back(FragmentUnit{&r, s, 0});
  return plan;
}

FragmentPlan FragmentPlan::ForJoin(const HostTable& r, const HostTable& s,
                                   int bits) {
  if (bits <= 0) return Single(r, &s);
  FragmentPlan plan;
  plan.fragment_bits_ = bits;
  plan.owned_r_ = join::PartitionHostByKeyRadix(r, bits);
  plan.owned_s_ = join::PartitionHostByKeyRadix(s, bits);
  const int fanout = 1 << bits;
  for (int f = 0; f < fanout; ++f) {
    // An empty side means the co-fragment pair contributes no join rows.
    if (plan.owned_r_[f].num_rows() == 0 || plan.owned_s_[f].num_rows() == 0) {
      continue;
    }
    plan.units_.push_back(FragmentUnit{&plan.owned_r_[f], &plan.owned_s_[f], f});
  }
  return plan;
}

FragmentPlan FragmentPlan::ForGroupBy(const HostTable& input, int bits) {
  if (bits <= 0) return Single(input, nullptr);
  FragmentPlan plan;
  plan.fragment_bits_ = bits;
  plan.owned_r_ = join::PartitionHostByKeyRadix(input, bits);
  const int fanout = 1 << bits;
  for (int f = 0; f < fanout; ++f) {
    if (plan.owned_r_[f].num_rows() == 0) continue;
    plan.units_.push_back(FragmentUnit{&plan.owned_r_[f], nullptr, f});
  }
  return plan;
}

int DeriveScheduleFragmentBits(uint64_t need_bytes, uint64_t budget_bytes,
                               double target_fraction, int max_bits) {
  if (max_bits <= 0 || target_fraction <= 0 || budget_bytes == 0) return 0;
  const double target = static_cast<double>(budget_bytes) * target_fraction;
  if (target <= 0) return 0;
  int bits = 0;
  while (bits < max_bits &&
         static_cast<double>(need_bytes) / static_cast<double>(1u << bits) >
             target) {
    ++bits;
  }
  return bits;
}

}  // namespace gpujoin::service
