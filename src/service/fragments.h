// Fragment decomposition for the multi-tenant scheduler (DESIGN.md §13).
//
// A query admitted by the QueryService is decomposed host-side into an
// ordered list of independent fragments — the schedulable unit the
// deficit-weighted round-robin interleaves across queries. Decomposition
// reuses the out-of-core shard substrate: inputs are stably radix-
// partitioned by key on the host (join::PartitionHostByKeyRadix), so
//   * a join fragment is one co-fragment pair (r_i, s_i) — equal keys land
//     in the same fragment, so fragment joins are independent and their
//     concatenation in fixed fragment order is the full join;
//   * a group-by fragment is one key partition — groups never span
//     fragments, so per-fragment aggregation results concatenate in
//     fragment order into the full aggregation.
// Each fragment runs upload → operate → download and leaves the device at
// its entry watermark, which makes every fragment boundary a safe
// preemption seam: an interrupted fragment unwinds with zero leaks and
// re-runs later, bit-identically (fragment results do not depend on the
// simulated clock).
//
// A plan with fragment_bits == 0 is a single fragment aliasing the
// caller's tables — byte-for-byte the pre-scheduler execution path.

#ifndef GPUJOIN_SERVICE_FRAGMENTS_H_
#define GPUJOIN_SERVICE_FRAGMENTS_H_

#include <cstdint>
#include <vector>

#include "storage/table.h"

namespace gpujoin::service {

/// One schedulable unit: the host-side co-inputs of a fragment.
struct FragmentUnit {
  /// Join: build side. Group-by: the input partition.
  const HostTable* r = nullptr;
  /// Join: probe side. Group-by: unused (nullptr).
  const HostTable* s = nullptr;
  /// Position in the plan's fixed merge order (the radix digit).
  int index = 0;
};

/// An ordered fragment list plus the owned partition storage the units
/// point into. Move-only: units alias owned_* elements.
class FragmentPlan {
 public:
  FragmentPlan() = default;
  FragmentPlan(FragmentPlan&&) = default;
  FragmentPlan& operator=(FragmentPlan&&) = default;
  FragmentPlan(const FragmentPlan&) = delete;
  FragmentPlan& operator=(const FragmentPlan&) = delete;

  const std::vector<FragmentUnit>& units() const { return units_; }
  int fragment_bits() const { return fragment_bits_; }
  /// True when the inputs were actually partitioned: fragment uploads and
  /// downloads are then charged to the PCIe model like the out-of-core
  /// stream (a single-fragment plan adds no transfer charges, preserving
  /// bit-identity with direct execution).
  bool fragmented() const { return fragment_bits_ > 0; }

  /// Single fragment aliasing the caller's tables (`s` may be null).
  static FragmentPlan Single(const HostTable& r, const HostTable* s);
  /// 2^bits co-fragment pairs for a join; pairs with an empty build or
  /// probe side produce no rows and are dropped from the unit list.
  static FragmentPlan ForJoin(const HostTable& r, const HostTable& s,
                              int bits);
  /// 2^bits key partitions for a group-by; empty partitions are dropped.
  static FragmentPlan ForGroupBy(const HostTable& input, int bits);

 private:
  std::vector<HostTable> owned_r_;
  std::vector<HostTable> owned_s_;
  std::vector<FragmentUnit> units_;
  int fragment_bits_ = 0;
};

/// Scheduler fragmentation policy: 0 (single fragment) while the admission
/// estimate `need_bytes` stays within `target_fraction` of the budget,
/// otherwise just enough bits that an average fragment's share of the
/// estimate fits the target, capped at `max_bits`. Pure host arithmetic —
/// deterministic for a given (need, budget, policy).
int DeriveScheduleFragmentBits(uint64_t need_bytes, uint64_t budget_bytes,
                               double target_fraction, int max_bits);

}  // namespace gpujoin::service

#endif  // GPUJOIN_SERVICE_FRAGMENTS_H_
