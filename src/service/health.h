// Per-backend health model: circuit breakers over transient faults.
//
// Every terminal kUnavailable a fragment surfaces (injected kernel fault,
// watchdog timeout on a runaway kernel) is recorded against the breaker
// keyed by (backend, fault_kind). Each breaker is the classic three-state
// machine, driven entirely by the SIMULATED clock so trips, probes, and
// re-admissions replay bit-identically at any GPUJOIN_SIM_THREADS:
//
//   closed ──(trip_threshold consecutive failures)──▶ open
//   open ──(probe_after_cycles elapse)──▶ half-open
//   half-open ──(probe fragment succeeds)──▶ closed
//   half-open ──(probe fragment fails)──▶ open          (re-trip)
//
// While ANY breaker for a backend is open, `Quarantined(backend)` is true
// and the router hedges fragments to the surviving backend (reason
// "quarantined", vgpu ⇄ cpux). Once the probe window elapses the breaker
// moves to half-open and admits exactly the next fragment as a probe; its
// outcome closes or re-trips the breaker.
//
// Double-entry metrics (reconciled by the chaos soak and health tests):
//   service_breaker_trips_total{backend,fault}       — metered at the
//     failure-threshold site (RecordFailure), once per closed/half-open
//     → open transition,
//   service_breaker_transitions_total{backend,fault,to} — metered in the
//     state-machine transition helper; trips == transitions{to="open"},
//   service_breaker_probes_total{backend,fault}      — open → half-open
//     admissions; every probe also appears as transitions{to="half_open"},
//   service_breaker_state{backend,fault}             — gauge, 0 closed /
//     1 open / 2 half-open.

#ifndef GPUJOIN_SERVICE_HEALTH_H_
#define GPUJOIN_SERVICE_HEALTH_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>

#include "common/status.h"
#include "ops/operator.h"

namespace gpujoin::service {

enum class BreakerState { kClosed, kOpen, kHalfOpen };

const char* BreakerStateName(BreakerState state);

struct BreakerOptions {
  /// Consecutive failures of one (backend, fault_kind) that trip the
  /// breaker open. Ladder-level transient retries are invisible here; only
  /// faults that exhaust the ladder budget reach RecordFailure.
  int trip_threshold = 3;
  /// Simulated cycles an open breaker waits before moving to half-open and
  /// admitting a probe fragment.
  double probe_after_cycles = 2e6;
};

/// The fault-domain key carried in a kUnavailable message: the prefix
/// before the first ':' ("kernel_fault", "watchdog_timeout"). Messages
/// without a recognizable prefix map to "unknown" so breaker label values
/// stay bounded.
std::string FaultKindOf(const Status& st);

class BackendHealth {
 public:
  explicit BackendHealth(BreakerOptions options = {});

  /// Records a terminal transient failure of `fault_kind` on `backend` at
  /// simulated time `now_cycles`. Trips the breaker open at the threshold;
  /// a failed half-open probe re-trips immediately.
  void RecordFailure(ops::Backend backend, const std::string& fault_kind,
                     double now_cycles);

  /// Records a successfully completed fragment on `backend`: resets every
  /// consecutive-failure count for the backend and closes its half-open
  /// breakers (the probe passed).
  void RecordSuccess(ops::Backend backend, double now_cycles);

  /// True while any breaker for `backend` is open at `now_cycles`. Open
  /// breakers whose probe window has elapsed transition to half-open here
  /// (and stop quarantining — the next fragment is the probe), so this is
  /// the clock-driven edge of the state machine and is NOT const.
  bool Quarantined(ops::Backend backend, double now_cycles);

  /// Current state of one breaker (kClosed when never seen).
  BreakerState StateOf(ops::Backend backend,
                       const std::string& fault_kind) const;

  /// Lifetime transition counts, for reconciliation against the registry.
  uint64_t trips() const { return trips_; }
  uint64_t probes() const { return probes_; }
  uint64_t closes() const { return closes_; }

  const BreakerOptions& options() const { return options_; }

 private:
  struct Breaker {
    BreakerState state = BreakerState::kClosed;
    int consecutive_failures = 0;
    double opened_at_cycles = 0;
  };

  using Key = std::pair<std::string, std::string>;  // (backend, fault_kind)

  Breaker& Slot(ops::Backend backend, const std::string& fault_kind);
  void Transition(const Key& key, Breaker& b, BreakerState to,
                  double now_cycles);

  BreakerOptions options_;
  /// Ordered map: iteration order (and thus metric emission order) is
  /// deterministic and independent of insertion history.
  std::map<Key, Breaker> breakers_;
  uint64_t trips_ = 0;
  uint64_t probes_ = 0;
  uint64_t closes_ = 0;
};

}  // namespace gpujoin::service

#endif  // GPUJOIN_SERVICE_HEALTH_H_
