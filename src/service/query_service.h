// Multi-tenant query service: admission control plus a deterministic
// deficit-weighted round-robin scheduler over the resilient join / group-by
// entry points (DESIGN.md §11 admission, §13 scheduling).
//
// A QueryService owns one device's memory budget, split into named
// per-tenant quotas (service/tenant.h). Submitting a query estimates its
// device-memory footprint host-side (stats::EstimateJoinMemory /
// EstimateGroupByMemory — no simulated cycles are spent) and either
//   * RESERVES the estimate against the tenant's quota (borrowing a
//     bounded amount from the unreserved pool when allowed) and admits,
//   * QUEUES it (structured backpressure) when the quota or budget is
//     currently oversubscribed but the query could fit later,
//   * DEFERS it when its arrival_cycles lies in the simulated future
//     (admission is evaluated at arrival during Drain), or
//   * REJECTS it with a structured kResourceExhausted (global budget /
//     queue) or kTenantOverQuota (tenant quota, borrow allowance, or
//     tenant queue) admission error.
//
// Drain() no longer runs admitted queries to completion in admission
// order: each query is decomposed into resumable fragments at the existing
// lifecycle seams (service/fragments.h) and a deficit-weighted round-robin
// — weighted by each query's reserved bytes — interleaves fragments of all
// runnable queries, so a long scan cannot starve short lookups. Strict
// priority tiers ride on top: a higher-priority arrival preempts the
// running query at its next cooperative seam (kernel boundary, allocation,
// clock advance) through the kYielded lifecycle trip; the interrupted
// fragment unwinds with zero leaks and re-runs after the high-priority
// work, bit-identically. Reservations are released on EVERY exit path, so
// the budget always returns to zero once the service drains.
//
// Determinism: fragment decomposition, quota arithmetic, deficit updates,
// and preemption points are all functions of host-side estimates and the
// simulated clock; round-robin tie-breaks rotate by a seeded hash of the
// pass index. A drained workload is bit-identical on replay and at any
// GPUJOIN_SIM_THREADS fan-out. Every scheduling decision is observable:
// the scheduler emits spans (category "sched") and instants through
// obs::Tracer, so per-tenant wait/run/preempt latency is assertable from
// traces (tools/lifecycle_soak does exactly that).

#ifndef GPUJOIN_SERVICE_QUERY_SERVICE_H_
#define GPUJOIN_SERVICE_QUERY_SERVICE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/resilience.h"
#include "common/status.h"
#include "groupby/resilient.h"
#include "join/resilient.h"
#include "ops/router.h"
#include "service/fragments.h"
#include "service/health.h"
#include "service/tenant.h"
#include "stats/estimator.h"
#include "storage/table.h"
#include "vgpu/device.h"
#include "vgpu/lifecycle.h"

namespace gpujoin::service {

/// Per-query lifecycle knobs carried by a submission.
struct QueryLifecycleOptions {
  /// Cancellation handle; keep a copy and RequestCancel() to stop the query
  /// at its next cooperative seam.
  vgpu::CancelToken token;
  /// Relative simulated-cycle budget measured from the query's start of
  /// execution (not submission). <= 0 disables the deadline. With
  /// interleaving the clock keeps running while the query is preempted —
  /// it is a latency deadline, not a device-time budget.
  double deadline_cycles = 0;
  /// Test knob: trip the cancel token when the Nth kernel of this query
  /// launches (1-based; 0 = disarmed; counts across fragment resumptions).
  /// Mirrors GPUJOIN_CANCEL_AT_KERNEL.
  uint64_t cancel_at_kernel = 0;
};

enum class QueryKind { kJoin, kGroupBy };

/// One query submission. Input tables are host staging state owned by the
/// caller and must stay alive until Drain() returns.
struct QueryRequest {
  std::string name = "query";
  QueryKind kind = QueryKind::kJoin;

  // kJoin: r ⋈ s on column 0, via RunJoinResilient.
  join::JoinAlgo join_algo = join::JoinAlgo::kPhjOm;
  join::ResilienceOptions join_options;
  const HostTable* r = nullptr;
  const HostTable* s = nullptr;

  // kGroupBy: group `r` by column 0, via RunGroupByResilient (`s` unused).
  groupby::GroupByAlgo groupby_algo = groupby::GroupByAlgo::kHashPartitioned;
  groupby::GroupBySpec groupby_spec;
  groupby::GroupByResilienceOptions groupby_options;

  QueryLifecycleOptions lifecycle;

  /// Execution backend for this query's fragments: unset = the service's
  /// default_backend; kAuto = per-fragment cost-based routing
  /// (ops::RouteJoin/RouteGroupBy); kCpux/kVgpu force a backend. cpux
  /// fragments run host-side and consume ZERO simulated cycles (no PCIe
  /// charges, no kernels), so cycle-based deadlines and cancel_at_kernel
  /// only trip on vgpu fragments; a cpux resource failure falls back to the
  /// vgpu resilient path (recorded as a "backend_fallback" trace instant).
  std::optional<ops::Backend> backend;

  // --- Multi-tenant scheduling (DESIGN.md §13) ---

  /// Quota the reservation is charged to ("" = "default"). Tenants not
  /// named in ServiceOptions::tenants get an implicit full-budget quota.
  std::string tenant;
  /// Strict priority tier: the scheduler only runs fragments of the
  /// highest tier present, and a higher-priority arrival preempts the
  /// running query at its next lifecycle seam. Default 0 (batch).
  int priority = 0;
  /// Simulated-cycle arrival time. A submission whose arrival lies in the
  /// future is DEFERRED: it models an asynchronous Submit racing a running
  /// Drain, deterministically — admission happens when the simulated clock
  /// reaches it. <= the current clock means "available immediately".
  double arrival_cycles = 0;
  /// Caller-supplied admission estimate in bytes (0 = run the host-side
  /// estimators). Lets external planners override the reservation size.
  uint64_t estimate_bytes_override = 0;
  /// Fragment decomposition override: -1 = scheduler policy
  /// (SchedulerOptions), 0 = force a single fragment, >0 = force 2^n
  /// fragments. Capped at SchedulerOptions::max_fragment_bits.
  int fragment_bits_override = -1;
};

/// How admission classified a submission.
enum class AdmissionDecision { kAdmitted, kQueued, kRejected, kDeferred };

const char* AdmissionDecisionName(AdmissionDecision d);

/// Final record of one submitted query.
struct QueryOutcome {
  std::string name;
  std::string tenant;
  int priority = 0;
  /// Final admission state (a deferred/queued submission that later
  /// reserved reads kAdmitted after Drain).
  AdmissionDecision admission = AdmissionDecision::kAdmitted;
  /// Execution status: OK, kCancelled, kDeadlineExceeded,
  /// kResourceExhausted (post-ladder or admission), kTenantOverQuota
  /// (admission backpressure), kUnavailable (transient faults exhausted the
  /// service retry limit), or the rejection for kRejected queries.
  /// Never kYielded — yields are absorbed by the scheduler.
  Status status = Status::OK();
  /// Result rows, downloaded to host (empty unless status is OK). For a
  /// fragmented query, fragment partials concatenated in fixed fragment
  /// order — deterministic, but a different row order than an
  /// unfragmented run of the same query.
  HostTable output;
  uint64_t output_rows = 0;
  /// Max resilience-ladder attempts consumed by any fragment (0 for
  /// rejected/unrun queries, 1 = every fragment succeeded first try).
  int attempts = 0;
  /// The admission estimate reserved while the query ran.
  stats::MemoryEstimate estimate;
  /// Backend that executed the query's fragments: "vgpu", "cpux",
  /// "auto:<chosen>" for routed queries, with "->vgpu" appended when the
  /// cross-backend OOM fallback fired. Empty for queries that never ran.
  std::string backend;
  /// Bytes of the reservation borrowed beyond the tenant quota.
  uint64_t borrowed_bytes = 0;

  // --- Scheduling telemetry (simulated cycles) ---
  /// Fragments in the plan / fragment turns actually executed (turns can
  /// exceed the plan size when preempted fragments re-run).
  int fragments_total = 0;
  int fragment_turns = 0;
  /// Times a fragment of this query was preempted (kYielded unwind).
  int preemptions = 0;
  /// Fragment re-executions after a transient fault (kUnavailable) that
  /// exhausted the ladder's own retry budget.
  int transient_retries = 0;
  /// Fragment turns hedged to the surviving backend because the resolved
  /// backend's circuit breaker was open.
  int hedged_fragments = 0;
  double submitted_at_cycles = 0;
  /// Clock at the first fragment turn / at finalization (0/0 if never run).
  double started_at_cycles = 0;
  double finished_at_cycles = 0;
  /// started - submitted (admission + queue + arrival wait).
  double wait_cycles = 0;
  /// Cycles the query actually occupied the device (sum of its turns,
  /// including turns that were preempted and re-run).
  double run_cycles = 0;
  /// Kernels launched while the query's lifecycle control was installed.
  uint64_t kernels_launched = 0;
};

/// Scheduler policy knobs. Defaults interleave with a quantum comparable
/// to a small fragment's cost; legacy run-to-completion admission order is
/// `interleave = false`.
struct SchedulerOptions {
  /// false = run each admitted query to completion in admission order (the
  /// pre-scheduler behavior; no preemption, no interleaving).
  bool interleave = true;
  /// Deficit quantum in simulated cycles credited per round-robin pass.
  /// Sized near one fragment turn's cost (PCIe up + body + PCIe down) at
  /// test scale, so a pass grants each runnable query a fragment or two —
  /// a quantum much larger than the workload degenerates to
  /// run-to-completion.
  double quantum_cycles = 25'000;
  /// Seed for the pass-rotation tie-break (which runnable query a pass
  /// starts at), so equal-deficit ties do not always favor low ids.
  uint64_t seed = 0x5eedc0ffee15600dull;
  /// Auto-fragmentation target: a query whose estimate exceeds this
  /// fraction of the budget is split until the per-fragment share fits
  /// (see DeriveScheduleFragmentBits). <= 0 disables auto-fragmentation.
  double fragment_target_fraction = 0.25;
  /// Cap on fragment bits (auto and per-request overrides).
  int max_fragment_bits = 6;
};

struct ServiceOptions {
  /// Admission budget in bytes; 0 = the device's global memory capacity.
  uint64_t budget_bytes = 0;
  /// Queued submissions allowed across all tenants before Submit rejects
  /// with backpressure.
  size_t max_queue = 16;
  /// Named tenant quotas. Tenants not listed (and the "" / "default"
  /// tenant) get an implicit quota of the full budget with no borrowing
  /// and a queue limit of max_queue.
  std::vector<TenantQuota> tenants;
  /// Paces admission retries for queued queries when the scheduler is
  /// otherwise idle (delays are charged to the simulated clock).
  BackoffPolicy backoff;
  SchedulerOptions scheduler;
  /// Backend for queries that do not set QueryRequest::backend. The
  /// service default stays kVgpu so the simulated-cycle accounting of
  /// existing workloads is untouched; GPUJOIN_BACKEND overrides this at
  /// construction (unset or unparsable leaves it alone).
  ops::Backend default_backend = ops::Backend::kVgpu;
  /// Worker threads for the service-owned cpux context (created lazily on
  /// the first cpux fragment).
  int cpux_threads = 1;
  /// Circuit-breaker thresholds for the per-backend health model
  /// (service/health.h): transient faults that exhaust the ladder's own
  /// retry budget feed the breaker keyed (backend, fault_kind); an open
  /// breaker quarantines the backend and hedges fragments to the survivor.
  BreakerOptions breaker;
  /// Fragment re-executions a query may spend on transient faults before
  /// its kUnavailable becomes terminal. Sized above breaker.trip_threshold
  /// so a persistently faulting backend trips its breaker — and the
  /// remaining retries hedge to the healthy backend — before the budget
  /// runs out.
  int transient_retry_limit = 8;
};

/// A configured tenant's quota plus its live accounting.
struct TenantState {
  TenantQuota quota;
  TenantStats stats;
};

/// Single-device query service. Submissions accumulate (reserving budget
/// immediately when it is available); Drain() interleaves fragments of
/// every runnable query on the simulator's single thread until all
/// submissions reach a terminal outcome.
class QueryService {
 public:
  explicit QueryService(vgpu::Device& device, ServiceOptions options = {});

  /// Admits, queues, defers, or rejects the request. Returns the query id
  /// (index into outcomes()) in all cases; rejection is recorded in the
  /// outcome's status rather than thrown, so a full workload's fate is
  /// inspectable in one place. Returns InvalidArgument for malformed
  /// requests (missing tables).
  Result<int> Submit(QueryRequest request);

  /// Runs every pending submission to a terminal outcome. Always leaves
  /// reserved_bytes() == 0 and the device lifecycle-free, whatever the mix
  /// of outcomes. Returns the first Internal error encountered (a leak or
  /// a broken invariant); per-query cancellations/deadlines/OOMs/quota
  /// rejections are recorded in their outcomes, not returned.
  Status Drain();

  const std::vector<QueryOutcome>& outcomes() const { return outcomes_; }
  const QueryOutcome& outcome(int id) const { return outcomes_[id]; }

  /// Bytes currently reserved against the budget (all tenants).
  uint64_t reserved_bytes() const { return reserved_bytes_; }
  uint64_t budget_bytes() const { return budget_bytes_; }
  /// Submissions not yet drained (admitted, queued, or deferred).
  size_t pending() const { return pending_.size(); }

  /// The service-owned cpux provider (created lazily on first use; this
  /// accessor forces creation). Exposed so callers and tests can inspect
  /// the context or arm its fault injector, mirroring
  /// ops::Router::cpux_provider().
  ops::CpuxProvider& cpux_provider() { return Cpux(); }

  /// Per-tenant quota state and counters, keyed by tenant name. Tenants
  /// appear on first use or configuration; std::map iteration order makes
  /// reports deterministic.
  const std::map<std::string, TenantState>& tenants() const {
    return tenants_;
  }
  /// Null when the tenant has never been configured or used.
  const TenantState* tenant(const std::string& name) const;

  /// The per-backend circuit-breaker state (read-only; the service owns
  /// every transition). Tests and the chaos soak reconcile its transition
  /// counts against the metrics registry.
  const BackendHealth& health() const { return health_; }

 private:
  /// Scheduler-side state of one not-yet-finished submission.
  struct Run {
    int id = 0;
    QueryRequest request;
    FragmentPlan plan;
    size_t next_unit = 0;
    double deficit = 0;
    uint64_t need = 0;
    uint64_t borrowed = 0;
    bool arrived = false;   // arrival_cycles reached (admission evaluated)
    bool reserved = false;  // holds a budget reservation
    bool started = false;   // first fragment turn taken
    bool done = false;      // terminal outcome recorded
    bool resume_pending = false;  // last turn was preempted
    int transient_retries = 0;    // kUnavailable re-executions so far
    vgpu::LifecycleControl control;
    HostTable partial;
    uint64_t partial_rows = 0;
    bool partial_init = false;
  };

  struct TurnResult {
    bool yielded = false;
    /// Simulated cycles the turn consumed (charged against the deficit).
    double cycles = 0;
  };

  stats::MemoryEstimate Estimate(const QueryRequest& request) const;
  TenantState& ResolveTenant(const std::string& name);
  int ResolveFragmentBits(const QueryRequest& request, uint64_t need) const;
  size_t QueuedCount() const;

  /// Overflow-safe reservation attempt against tenant quota + borrow
  /// allowance + global budget. On success flips run.reserved and charges
  /// the tenant; returns false without side effects otherwise.
  bool TryReserve(Run& run);
  void ReleaseReservation(Run& run);

  Status DrainBatch(std::vector<Run>& batch);
  /// Classifies an arrived submission: reserve (admit), queue under the
  /// global and tenant queue limits, or reject with backpressure.
  void AdmitOrQueue(Run& run);
  /// Evaluates admission for waiting submissions whose arrival time has
  /// been reached (admit / queue / reject).
  void ProcessArrivals(std::vector<Run>& batch);
  /// Admission-order sweep over queued submissions after a reservation
  /// release; no pacing (budget just changed).
  void AdmitQueuedAfterRelease(std::vector<Run>& batch);
  /// Idle path: nothing runnable, no future arrivals — paced, bounded
  /// admission retries for queued submissions; queries whose retry budget
  /// exhausts get a structured backpressure outcome.
  void RetryQueuedIdle(std::vector<Run>& batch);
  /// Runs one fragment turn of `run` (arming the preemption point), and
  /// merges / requeues / finalizes according to the turn's status.
  /// Returns Internal on a broken invariant (leak), OK otherwise.
  Status RunFragmentTurn(Run& run, std::vector<Run>& batch, TurnResult* turn);
  /// One fragment body: upload → operate → download on the current unit
  /// (or a host-side cpux run when `use_cpux`, with vgpu OOM fallback).
  /// `executed` reports the backend the unit actually ran on (differs from
  /// the resolved one when the cpux → vgpu OOM fallback fires).
  Status RunUnit(Run& run, bool use_cpux, ops::Backend* executed);
  /// Resolves the executing backend for one fragment unit (request override
  /// → service default → cost-based route, hedged off a quarantined
  /// backend) and names it for telemetry ("hedge:<backend>" when hedged).
  /// Non-const: consulting the breaker can move it open → half-open.
  bool ResolveUseCpux(const QueryRequest& request, const FragmentUnit& unit,
                      std::string* label);
  /// The lazily created service-owned cpux provider.
  ops::CpuxProvider& Cpux();
  void Finalize(Run& run, Status status);
  /// Meters the submission-time admission decision (exactly once per
  /// submitted query) into the obs registry.
  static void RecordAdmission(const QueryOutcome& out);
  /// Meters a terminal outcome (status counter + per-tenant wait/run/
  /// preemption histograms), exactly once per submitted query — from
  /// Finalize, or from the reject paths that never reach it.
  static void RecordTerminal(const QueryOutcome& out);

  vgpu::Device& device_;
  uint64_t budget_bytes_ = 0;
  size_t max_queue_ = 0;
  BackoffPolicy backoff_;
  SchedulerOptions sched_;
  ops::Backend default_backend_ = ops::Backend::kVgpu;
  int cpux_threads_ = 1;
  int transient_retry_limit_ = 8;
  BackendHealth health_;
  std::unique_ptr<ops::CpuxProvider> cpux_;
  uint64_t reserved_bytes_ = 0;
  std::map<std::string, TenantState> tenants_;
  std::vector<Run> pending_;
  std::vector<QueryOutcome> outcomes_;
};

}  // namespace gpujoin::service

#endif  // GPUJOIN_SERVICE_QUERY_SERVICE_H_
