// Query lifecycle service: the admission-control front door over the
// resilient join / group-by entry points (DESIGN.md §11).
//
// A QueryService owns one device's memory budget. Submitting a query
// estimates its device-memory footprint host-side (stats::EstimateJoinMemory
// / EstimateGroupByMemory — no simulated cycles are spent) and either
//   * RESERVES the estimate against the budget and admits the query,
//   * QUEUES it (structured backpressure) when the budget is currently
//     oversubscribed but the query could fit an idle device, or
//   * REJECTS it with a structured kResourceExhausted admission error when
//     the estimate exceeds the total budget or the queue is full.
// Drain() then executes admitted and queued queries in admission order,
// installing a per-query vgpu::LifecycleControl (cancel token + simulated-
// cycle deadline + the cancel-at-kernel test knob) for the duration of each
// run. Reservations are released on EVERY exit path — success, cancellation,
// deadline, resource exhaustion, internal error — so the budget always
// returns to zero once the service drains (service_test.cc asserts this
// together with Device::CheckNoLeaks()).
//
// Determinism: admission order is submission order, deadlines are simulated
// cycles, queue retries are paced by the shared BackoffPolicy charged to the
// simulated clock — a drained workload is bit-identical on replay.

#ifndef GPUJOIN_SERVICE_QUERY_SERVICE_H_
#define GPUJOIN_SERVICE_QUERY_SERVICE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/resilience.h"
#include "common/status.h"
#include "groupby/resilient.h"
#include "join/resilient.h"
#include "stats/estimator.h"
#include "storage/table.h"
#include "vgpu/device.h"
#include "vgpu/lifecycle.h"

namespace gpujoin::service {

/// Per-query lifecycle knobs carried by a submission.
struct QueryLifecycleOptions {
  /// Cancellation handle; keep a copy and RequestCancel() to stop the query
  /// at its next cooperative seam.
  vgpu::CancelToken token;
  /// Relative simulated-cycle budget measured from the query's start of
  /// execution (not submission). <= 0 disables the deadline.
  double deadline_cycles = 0;
  /// Test knob: trip the cancel token when the Nth kernel of this query
  /// launches (1-based; 0 = disarmed). Mirrors GPUJOIN_CANCEL_AT_KERNEL.
  uint64_t cancel_at_kernel = 0;
};

enum class QueryKind { kJoin, kGroupBy };

/// One query submission. Input tables are host staging state owned by the
/// caller and must stay alive until Drain() returns.
struct QueryRequest {
  std::string name = "query";
  QueryKind kind = QueryKind::kJoin;

  // kJoin: r ⋈ s on column 0, via RunJoinResilient.
  join::JoinAlgo join_algo = join::JoinAlgo::kPhjOm;
  join::ResilienceOptions join_options;
  const HostTable* r = nullptr;
  const HostTable* s = nullptr;

  // kGroupBy: group `r` by column 0, via RunGroupByResilient (`s` unused).
  groupby::GroupByAlgo groupby_algo = groupby::GroupByAlgo::kHashPartitioned;
  groupby::GroupBySpec groupby_spec;
  groupby::GroupByResilienceOptions groupby_options;

  QueryLifecycleOptions lifecycle;
};

/// How admission classified a submission.
enum class AdmissionDecision { kAdmitted, kQueued, kRejected };

const char* AdmissionDecisionName(AdmissionDecision d);

/// Final record of one submitted query.
struct QueryOutcome {
  std::string name;
  AdmissionDecision admission = AdmissionDecision::kAdmitted;
  /// Execution status: OK, kCancelled, kDeadlineExceeded, kResourceExhausted
  /// (post-ladder), or the admission rejection for kRejected queries.
  Status status = Status::OK();
  /// Result rows, downloaded to host (empty unless status is OK).
  HostTable output;
  uint64_t output_rows = 0;
  /// Resilience-ladder attempts consumed (0 for rejected/unrun queries).
  int attempts = 0;
  /// The admission estimate reserved while the query ran.
  stats::MemoryEstimate estimate;
  /// Simulated cycles at execution start / end (0/0 when never run).
  double started_at_cycles = 0;
  double finished_at_cycles = 0;
  /// Kernels launched while the query's lifecycle control was installed.
  uint64_t kernels_launched = 0;
};

struct ServiceOptions {
  /// Admission budget in bytes; 0 = the device's global memory capacity.
  uint64_t budget_bytes = 0;
  /// Queued submissions allowed beyond the reserved budget before Submit
  /// rejects with backpressure.
  size_t max_queue = 16;
  /// Paces admission retries for queued queries during Drain (delays are
  /// charged to the simulated clock).
  BackoffPolicy backoff;
};

/// Single-device, run-to-completion query service. Submissions accumulate
/// (reserving budget immediately when it is available); Drain() executes
/// everything in admission order on the simulator's single thread.
class QueryService {
 public:
  explicit QueryService(vgpu::Device& device, ServiceOptions options = {});

  /// Admits, queues, or rejects the request. Returns the query id (index
  /// into outcomes()) in all three cases; rejection is recorded in the
  /// outcome's status rather than thrown, so a full workload's fate is
  /// inspectable in one place. Returns InvalidArgument for malformed
  /// requests (missing tables).
  Result<int> Submit(QueryRequest request);

  /// Executes every admitted/queued query in admission order. Always leaves
  /// reserved_bytes() == 0 and the device lifecycle-free, whatever the mix
  /// of outcomes. Returns the first Internal error encountered (a leak or a
  /// broken invariant); per-query cancellations/deadlines/OOMs are recorded
  /// in their outcomes, not returned.
  Status Drain();

  const std::vector<QueryOutcome>& outcomes() const { return outcomes_; }
  const QueryOutcome& outcome(int id) const { return outcomes_[id]; }

  /// Bytes currently reserved against the budget.
  uint64_t reserved_bytes() const { return reserved_bytes_; }
  uint64_t budget_bytes() const { return budget_bytes_; }
  /// Submissions admitted-but-not-yet-run plus queued ones.
  size_t pending() const { return pending_.size(); }

 private:
  struct Pending {
    int id = 0;
    QueryRequest request;
    bool reserved = false;  // Budget held since Submit (admitted) or not
                            // (queued; reserved during Drain).
  };

  Status RunOne(Pending& p);
  stats::MemoryEstimate Estimate(const QueryRequest& request) const;
  size_t QueuedCount() const;

  vgpu::Device& device_;
  uint64_t budget_bytes_ = 0;
  size_t max_queue_ = 0;
  BackoffPolicy backoff_;
  uint64_t reserved_bytes_ = 0;
  std::vector<Pending> pending_;
  std::vector<QueryOutcome> outcomes_;
};

}  // namespace gpujoin::service

#endif  // GPUJOIN_SERVICE_QUERY_SERVICE_H_
