#include "vgpu/l2_cache.h"

#include <algorithm>

#include "common/bit_util.h"

namespace gpujoin::vgpu {

L2Cache::L2Cache(const DeviceConfig& config) {
  ways_ = std::max(1, config.l2_ways);
  const size_t total_sectors =
      std::max<size_t>(1, config.l2_bytes / config.sector_bytes);
  num_sets_ = std::max<size_t>(1, total_sectors / ways_);
  // Power-of-two sets make indexing a mask; round down to keep capacity <=
  // configured size.
  size_t pow2 = bit_util::NextPowerOfTwo(num_sets_);
  if (pow2 > num_sets_) pow2 >>= 1;
  num_sets_ = std::max<size_t>(1, pow2);
  tags_.assign(num_sets_ * ways_, kInvalidTag);
  lru_.assign(num_sets_ * ways_, 0);
}

namespace {
// Mixes the sector id so that buffers allocated at large power-of-two
// strides do not alias into the same set (models address interleaving).
inline uint64_t MixAddressBits(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdull;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ull;
  x ^= x >> 33;
  return x;
}
}  // namespace

bool L2Cache::AccessSlow(uint64_t sector_id) {
  const size_t set = MixAddressBits(sector_id) & (num_sets_ - 1);
  const uint64_t* tags = &tags_[set * ways_];
  uint32_t* lru = &lru_[set * ways_];
  ++clock_;
  for (int w = 0; w < ways_; ++w) {
    if (tags[w] == sector_id) {
      lru[w] = clock_;
      last_sector_ = sector_id;
      last_slot_ = set * ways_ + w;
      return true;
    }
  }
  int victim = 0;
  uint32_t victim_lru = ~uint32_t{0};
  for (int w = 0; w < ways_; ++w) {
    if (lru[w] < victim_lru) {
      victim_lru = lru[w];
      victim = w;
    }
  }
  tags_[set * ways_ + victim] = sector_id;
  lru[victim] = clock_;
  last_sector_ = sector_id;
  last_slot_ = set * ways_ + victim;
  return false;
}

void L2Cache::Clear() {
  std::fill(tags_.begin(), tags_.end(), kInvalidTag);
  std::fill(lru_.begin(), lru_.end(), 0);
  clock_ = 0;
  last_sector_ = kInvalidTag;
  last_slot_ = 0;
}

}  // namespace gpujoin::vgpu
