#include "vgpu/l2_cache.h"

#include <algorithm>
#include <utility>

#include "common/bit_util.h"

namespace gpujoin::vgpu {

L2Cache::L2Cache(const DeviceConfig& config, uint64_t bytes_override) {
  ways_ = std::max(1, config.l2_ways);
  const uint64_t bytes = bytes_override != 0 ? bytes_override : config.l2_bytes;
  const size_t total_sectors =
      std::max<size_t>(1, bytes / static_cast<uint64_t>(config.sector_bytes));
  num_sets_ = std::max<size_t>(1, total_sectors / ways_);
  // Power-of-two sets make indexing a mask; round down to keep capacity <=
  // configured size.
  size_t pow2 = bit_util::NextPowerOfTwo(num_sets_);
  if (pow2 > num_sets_) pow2 >>= 1;
  num_sets_ = std::max<size_t>(1, pow2);
  tags_.assign(num_sets_ * ways_, kInvalidTag);
  lru_.assign(num_sets_ * ways_, 0);
}

namespace {
// Mixes the sector id so that buffers allocated at large power-of-two
// strides do not alias into the same set (models address interleaving).
inline uint64_t MixAddressBits(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdull;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ull;
  x ^= x >> 33;
  return x;
}
}  // namespace

bool L2Cache::AccessSlow(uint64_t sector_id) {
  const size_t set = MixAddressBits(sector_id) & (num_sets_ - 1);
  const uint64_t* tags = &tags_[set * ways_];
  uint32_t* lru = &lru_[set * ways_];
  ++clock_;
  for (int w = 0; w < ways_; ++w) {
    // A matching tag from a previous epoch is stale: the slot was logically
    // cleared, so the access must miss (exactly as after a memset clear).
    if (tags[w] == sector_id && lru[w] >= epoch_) {
      lru[w] = clock_;
      last_sector_ = sector_id;
      last_slot_ = set * ways_ + w;
      return true;
    }
  }
  // Stale slots carry pre-epoch stamps, so the LRU scan always evicts them
  // before any current-epoch slot — identical fill behavior to an actually
  // emptied set.
  int victim = 0;
  uint32_t victim_lru = ~uint32_t{0};
  for (int w = 0; w < ways_; ++w) {
    if (lru[w] < victim_lru) {
      victim_lru = lru[w];
      victim = w;
    }
  }
  tags_[set * ways_ + victim] = sector_id;
  lru[victim] = clock_;
  last_sector_ = sector_id;
  last_slot_ = set * ways_ + victim;
  return false;
}

void L2Cache::HardClear() {
  std::fill(tags_.begin(), tags_.end(), kInvalidTag);
  std::fill(lru_.begin(), lru_.end(), 0);
  clock_ = 0;
  epoch_ = 1;
  last_sector_ = kInvalidTag;
  last_slot_ = 0;
}

void L2Cache::Clear() {
  if (clock_ >= kClockHighWater) {
    HardClear();
    return;
  }
  epoch_ = clock_ + 1;
  last_sector_ = kInvalidTag;
  last_slot_ = 0;
}

std::vector<uint64_t> L2Cache::ResidentSectorsByLru() const {
  std::vector<std::pair<uint32_t, uint64_t>> stamped;
  const size_t n = tags_.size();
  for (size_t i = 0; i < n; ++i) {
    if (tags_[i] != kInvalidTag && lru_[i] >= epoch_) {
      stamped.emplace_back(lru_[i], tags_[i]);
    }
  }
  // LRU stamps are unique (every access increments the clock), so this
  // order is total and deterministic.
  std::sort(stamped.begin(), stamped.end());
  std::vector<uint64_t> out;
  out.reserve(stamped.size());
  for (const auto& [stamp, tag] : stamped) out.push_back(tag);
  return out;
}

}  // namespace gpujoin::vgpu
