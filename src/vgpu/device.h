// The simulated GPU device: allocator, memory model, kernel accounting, and
// the simulated clock.
//
// Kernels in gpujoin are ordinary host functions that (a) compute real
// results on host memory and (b) report every warp-level memory access to
// the Device, which classifies sectors through the L2 model and charges
// cycles per the DeviceConfig cost model. A kernel is bracketed by
// BeginKernel()/EndKernel() — use the RAII KernelScope.
//
// Two accounting paths exist for global memory:
//   * the generic per-warp path (Load/Store with explicit lane addresses),
//     which dedups the sectors/lines each warp touches, and
//   * the batched run path (AccessRun / LoadSeq / StoreSeq) for fully
//     coalesced sequential streams, which derives the same counters by
//     sector-range arithmetic — no per-lane address materialization, no
//     in-warp dedup — and walks the L2/DRAM-row models in bulk.
// The two paths are BIT-IDENTICAL in simulated statistics: for the same
// logical access stream they produce exactly equal KernelStats and leave
// the L2/row-tracker state exactly equal (enforced by
// sim_fastpath_test.cc). The run path is purely a host-speed optimization.
//
// Host-parallel block simulation: kernels whose thread blocks are
// independent are ported to ParallelBlocks(), which simulates each block
// against a cold private shard (see block_sim.h) and merges the per-block
// outcomes in fixed block order. set_parallel_sim(threads) fans the blocks
// out across a pool of host worker threads; because each block's outcome is
// a pure function of its block id and the merge order is fixed, simulated
// results are bit-identical for every thread count (enforced by
// sim_parallel_test.cc). The default of 1 runs the same per-block loop
// inline on the calling thread.
//
// Thread-safety: the Device's public API is single-threaded (calls come
// from the query thread). Worker threads spawned by ParallelBlocks only
// touch their own BlockContext shards; all merging happens on the calling
// thread.

#ifndef GPUJOIN_VGPU_DEVICE_H_
#define GPUJOIN_VGPU_DEVICE_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "vgpu/block_sim.h"
#include "vgpu/device_config.h"
#include "vgpu/fault.h"
#include "vgpu/l2_cache.h"
#include "vgpu/lifecycle.h"
#include "vgpu/observer.h"
#include "vgpu/profiler.h"
#include "vgpu/stats.h"

namespace gpujoin::vgpu {

/// One live allocation, as reported by Device::OutstandingAllocations().
struct AllocationRecord {
  uint64_t addr = 0;
  uint64_t bytes = 0;
  /// 1-based allocation-attempt index at which this allocation was made
  /// (matches the FaultInjector::FailNth numbering).
  uint64_t seq = 0;
  /// Allocation-site tag: the explicit tag passed to AllocateRaw prefixed
  /// by any AllocTagScope frames active at allocation time ("untagged"
  /// when neither is present).
  std::string tag;
};

class Device {
 public:
  /// `lifecycle` optionally installs a query lifecycle control from birth
  /// (the harness wires GPUJOIN_DEADLINE_CYCLES / GPUJOIN_CANCEL_AT_KERNEL
  /// through it, mirroring the fault-injector knobs); equivalent to calling
  /// set_lifecycle() right after construction.
  /// `sim_threads` seeds the host-parallel simulation fan-out (same effect
  /// as calling set_parallel_sim() right after construction; results are
  /// bit-identical for every value).
  /// `kernel_watchdog_cycles` arms the runaway-kernel watchdog from birth
  /// (same as set_kernel_watchdog_cycles(); 0 = disarmed), so the harness
  /// can wire GPUJOIN_WATCHDOG_CYCLES through the non-movable device.
  explicit Device(DeviceConfig config, FaultInjector fault = {},
                  LifecycleControl* lifecycle = nullptr, int sim_threads = 1,
                  double kernel_watchdog_cycles = 0);

  /// Destroying a device that still holds live allocations is a hard
  /// failure (report + abort) unless set_leak_check_on_destroy(false):
  /// every query must free what it allocates, on success AND error paths.
  ~Device();

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  const DeviceConfig& config() const { return config_; }

  // --- Allocation (Table 5 accounting) ---

  /// Reserves `bytes` of simulated device memory; returns the base address.
  /// Fails with ResourceExhausted when the device capacity is exceeded or
  /// when the armed FaultInjector trips. `tag` names the allocation site
  /// for leak attribution (see AllocationRecord::tag).
  Result<uint64_t> AllocateRaw(uint64_t bytes, const char* tag = nullptr);
  /// Releases an allocation made by AllocateRaw.
  Status FreeRaw(uint64_t addr);

  const MemoryStats& memory_stats() const { return memory_stats_; }
  /// Resets the peak-memory watermark to the current live bytes.
  void ResetPeakMemory() { memory_stats_.peak_bytes = memory_stats_.live_bytes; }

  // --- Fault injection ---

  /// Arms (or replaces) the fault injector (allocation or kernel class).
  void set_fault_injector(FaultInjector fault) { fault_ = std::move(fault); }
  /// Disarms fault injection.
  void clear_fault_injector() { fault_ = FaultInjector(); }
  const FaultInjector& fault_injector() const { return fault_; }

  // --- Transient kernel faults (retryable kUnavailable) ---

  /// Arms the simulated-cycle watchdog: a kernel whose derived cycle cost
  /// exceeds `cycles` raises a sticky "watchdog_timeout" kUnavailable fault
  /// — the structured form of a runaway-kernel launch timeout. 0 disarms
  /// (the default). Pure function of simulated cycles, so watchdog trips
  /// are bit-identical on replay and at any GPUJOIN_SIM_THREADS.
  void set_kernel_watchdog_cycles(double cycles) {
    kernel_watchdog_cycles_ = cycles;
  }
  double kernel_watchdog_cycles() const { return kernel_watchdog_cycles_; }

  /// Sticky transient-fault status: OK until an armed kernel-mode fault
  /// injector trips or the watchdog fires inside EndKernel, then the
  /// kUnavailable fault (fault kind + kernel index in the message). Folded
  /// into LifecycleStatus(), so query layers observe it at the same
  /// cooperative seams as cancellation, and it blocks further allocations
  /// (uncounted, like lifecycle rejection). Unlike a lifecycle stop it is
  /// clearable: retry layers call ClearTransientFault() after a clean
  /// unwind and run the work again.
  const Status& TransientFaultStatus() const { return fault_status_; }
  void ClearTransientFault() { fault_status_ = Status::OK(); }

  /// Watchdog timeouts raised since construction/Reset().
  uint64_t watchdog_trips() const { return watchdog_trips_; }

  // --- Leak auditing ---

  /// Pushes/pops a tag frame that prefixes every allocation tag while
  /// active (use the RAII AllocTagScope).
  void PushAllocTag(std::string tag) { alloc_tag_stack_.push_back(std::move(tag)); }
  void PopAllocTag() { alloc_tag_stack_.pop_back(); }

  /// All live allocations, oldest first.
  std::vector<AllocationRecord> OutstandingAllocations() const;
  /// OK iff no allocation is live; otherwise Internal with the leak report.
  Status CheckNoLeaks() const;
  /// Human-readable report of live allocations ("" when clean).
  std::string LeakReport() const;
  void set_leak_check_on_destroy(bool enabled) { leak_check_on_destroy_ = enabled; }

  /// Restores the device to its as-constructed state: clock, stats,
  /// profiler, L2, DRAM row tracker, address space, tag stack, and fault
  /// injector. Fails with Internal (and changes nothing) while allocations
  /// are outstanding — free everything first. After a successful Reset the
  /// device replays any workload bit-identically to a freshly constructed
  /// device of the same config. Host-execution knobs (fast path, parallel
  /// sim threads) are not simulated state and survive a Reset.
  Status Reset();

  // --- Kernel bracketing ---

  /// Starts accounting a new kernel. Kernels do not nest.
  void BeginKernel(const char* name);
  /// Finishes the kernel: derives cycles from the accumulated counters and
  /// advances the simulated clock. Returns the kernel's stats.
  const KernelStats& EndKernel();

  /// Stats of the most recently completed kernel.
  const KernelStats& last_kernel_stats() const { return last_kernel_; }
  /// Kernels launched since construction/Reset(). Deliberately NOT zeroed
  /// by ResetStats(): phase-bracketed reports reset stats mid-query, but
  /// callers metering launch counts (obs registry) need the full tally.
  uint64_t kernels_launched() const { return kernels_launched_; }
  /// Stats accumulated over all kernels since construction/ResetStats().
  const KernelStats& total_stats() const { return total_; }
  /// Per-kernel-name profiling (the Nsight Compute analog, Table 4).
  const Profiler& profiler() const { return profiler_; }
  Profiler& profiler() { return profiler_; }

  /// Simulated seconds elapsed since construction (or ResetClock()).
  double ElapsedSeconds() const { return config_.CyclesToSeconds(elapsed_cycles_); }
  double elapsed_cycles() const { return elapsed_cycles_; }
  void ResetClock() { elapsed_cycles_ = 0; }
  /// Zeroes total/last-kernel stats AND the profiler's per-kernel
  /// aggregates, so phase-bracketed reports (Table 4 style) never leak
  /// kernels from a prior phase.
  void ResetStats();
  /// Drops all cached state in the L2 model (does not touch the clock).
  void FlushL2() { engine_.FlushL2(); }

  /// Host wall-clock seconds spent inside Begin/EndKernel brackets on this
  /// device (simulator self-profiling; does not affect simulated results).
  double host_kernel_seconds() const { return host_kernel_seconds_; }
  /// Host CPU seconds spent inside kernel brackets, summed across the
  /// worker threads of the parallel simulation path. Equal to
  /// host_kernel_seconds() when parallel_sim_threads() == 1; under the
  /// parallel path, wall divided into CPU shows the realized speedup.
  double host_kernel_cpu_seconds() const { return host_kernel_cpu_seconds_; }

  // --- Observability hook ---

  /// Registers an observer notified on every BeginKernel/EndKernel (pass
  /// nullptr to detach). Observers are read-only: they never charge cycles
  /// or memory, so attaching one cannot perturb simulated results. The
  /// observer must outlive the device (or be detached first); Reset() does
  /// not detach it — the hook is harness wiring, not device state.
  void set_kernel_observer(KernelObserver* observer) { observer_ = observer; }
  KernelObserver* kernel_observer() const { return observer_; }

  // --- Query lifecycle (cooperative cancellation + deadlines) ---

  /// Installs a per-query lifecycle control (pass nullptr to detach). The
  /// control must outlive its installation. The device consults it at every
  /// kernel boundary, after every clock advance, and on every allocation
  /// attempt; once it trips, LifecycleStatus() and all further allocations
  /// return its structured kCancelled / kDeadlineExceeded error. A control
  /// with no deadline/token set never perturbs simulated results.
  /// Device::Reset() detaches the control (a query's control is query
  /// state, unlike the harness-owned KernelObserver).
  void set_lifecycle(LifecycleControl* lifecycle) { lifecycle_ = lifecycle; }
  LifecycleControl* lifecycle() const { return lifecycle_; }

  /// OK when no control is installed or the control has not tripped;
  /// otherwise the sticky kCancelled / kDeadlineExceeded status. Query
  /// layers call this at cooperative seams (between kernels, fragments,
  /// pipeline steps, and before returning a completed result). A pending
  /// transient kernel fault (TransientFaultStatus()) surfaces here too,
  /// but lifecycle trips outrank it: a cancelled query must terminate,
  /// not retry.
  Status LifecycleStatus() const {
    if (lifecycle_ != nullptr) {
      lifecycle_->Evaluate(elapsed_cycles_);
      if (!lifecycle_->status().ok()) return lifecycle_->status();
    }
    return fault_status_;
  }

  /// Advances the simulated clock outside a kernel (retry backoff sleeps).
  /// Deadline checks observe the new time immediately.
  void AdvanceClock(double cycles);

  // --- Memory-access hooks (call only between Begin/EndKernel) ---

  /// One warp-level load: up to warp_size lane addresses, each reading
  /// `bytes_per_lane` bytes. Classifies the touched sectors via the L2.
  void Load(std::span<const uint64_t> lane_addrs, uint32_t bytes_per_lane);
  /// One warp-level store (same classification as Load; write-allocate).
  void Store(std::span<const uint64_t> lane_addrs, uint32_t bytes_per_lane);

  /// Batched run fast path: a fully coalesced sequential access of `count`
  /// elements of `elem_bytes` starting at `base_addr` (lane i of warp w
  /// touches base_addr + (w*warp_size + i)*elem_bytes). Charges warp
  /// instructions, transactions, and sector counts by range arithmetic and
  /// walks the L2/DRAM-row models in contiguous runs; produces exactly the
  /// stats the generic per-warp path would.
  void AccessRun(uint64_t base_addr, uint64_t count, uint32_t elem_bytes,
                 bool is_store);

  /// Fully coalesced sequential read of `count` elements of `elem_bytes`
  /// (AccessRun load).
  void LoadSeq(uint64_t base_addr, uint64_t count, uint32_t elem_bytes);
  /// Fully coalesced sequential write (AccessRun store).
  void StoreSeq(uint64_t base_addr, uint64_t count, uint32_t elem_bytes);

  /// Charges `count` warp-level shared-memory accesses (no bank conflicts).
  void SharedAccess(uint64_t count = 1);
  /// Charges a warp of shared-memory atomics given the per-lane target slots;
  /// lanes hitting the same slot serialize (cost = max multiplicity).
  void SharedAtomic(std::span<const uint32_t> lane_slots);
  /// Charges a warp of global-memory atomics (read-modify-write): the memory
  /// access plus a serialization penalty kGlobalAtomicSerializeCost x
  /// (max same-address multiplicity - 1). Global atomic contention is far
  /// costlier than shared-memory contention (DRAM round trips).
  void GlobalAtomic(std::span<const uint64_t> lane_addrs, uint32_t bytes_per_lane);
  /// Charges `count` warp-level compute instructions.
  void Compute(uint64_t count = 1);
  /// Charges cycles that serialize across the whole device (e.g. a chain of
  /// same-address global atomics) — they are NOT divided by the SM count.
  void SerialStall(double cycles);

  // --- Host-parallel block simulation (call only between Begin/EndKernel) ---

  /// Simulates one thread block: issue the block's accesses against `ctx`
  /// and return OK (or the block's error). Must be a pure function of
  /// (block_id, data readable at launch): blocks may run on any worker
  /// thread in any order, so a BlockFn must not write host data another
  /// block reads, and concurrent blocks must write disjoint host ranges.
  using BlockFn = std::function<Status(uint64_t block_id, BlockContext& ctx)>;

  /// Runs `fn` for block ids [0, num_blocks), each against a cold private
  /// shard, and merges the per-block stats and shard state into the device
  /// in fixed block order — simulated results are bit-identical for every
  /// parallel_sim_threads() setting. All blocks run even if one fails; the
  /// first error in block order is returned.
  Status ParallelBlocks(uint64_t num_blocks, const BlockFn& fn);

  /// Sets the number of host threads ParallelBlocks fans blocks across
  /// (clamped to >= 1; 1 = inline sequential execution, the default). A
  /// host-speed knob only: simulated results do not depend on it. The
  /// harness wires GPUJOIN_SIM_THREADS through this.
  void set_parallel_sim(int threads);
  int parallel_sim_threads() const { return sim_threads_; }

  /// Advances the simulated clock by a host <-> device transfer of `bytes`
  /// over the PCIe model (bandwidth + fixed latency). Not a kernel; used by
  /// the out-of-core join to charge fragment staging.
  void ChargeHostTransfer(uint64_t bytes);

  // --- Determinism control ---

  /// Seed that nondeterministic implementations (PHJ-UM bucket chaining) use
  /// to model atomics arrival order. Deterministic implementations ignore it.
  uint64_t interleave_seed() const { return interleave_seed_; }
  void set_interleave_seed(uint64_t seed) { interleave_seed_ = seed; }

  // --- Fast-path control (testing hook) ---

  /// When disabled, AccessRun/LoadSeq/StoreSeq fall back to the generic
  /// per-warp path. The two paths are bit-identical in simulated stats;
  /// the flag exists so equivalence tests can drive both.
  bool fast_path_enabled() const { return engine_.fast_path_enabled; }
  void set_fast_path_enabled(bool enabled) { engine_.fast_path_enabled = enabled; }

  // --- Memory-model state snapshots (testing hooks) ---

  /// Resident L2 sectors, least recently used first (deterministic).
  std::vector<uint64_t> DebugResidentL2Sectors() const {
    return engine_.ResidentL2SectorsByLru();
  }
  /// Open DRAM rows, least recently used first (deterministic).
  std::vector<uint64_t> DebugOpenDramRows() const {
    return engine_.OpenDramRowsByLru();
  }

 private:
  class ParallelPool;

  /// Folds one finished block into the device engine: stats added, shard
  /// residents replayed LRU-first (silent installs — no stats). Called in
  /// strictly ascending block order by both execution paths.
  void MergeBlockOutcome(const KernelStats& block_stats,
                         const std::vector<uint64_t>& l2_sectors,
                         const std::vector<uint64_t>& dram_rows,
                         const Status& block_status, Status* first_error);

  /// The tag AllocateRaw records: active AllocTagScope frames joined with
  /// '/', then the explicit site tag (or "untagged").
  std::string EffectiveTag(const char* tag) const;

  struct AllocationInfo {
    uint64_t bytes = 0;
    uint64_t seq = 0;
    std::string tag;
  };

  DeviceConfig config_;
  MemEngine engine_;  // Full-sized L2/row models + the current kernel's stats.
  MemoryStats memory_stats_;
  std::unordered_map<uint64_t, AllocationInfo> allocations_;  // By address.
  uint64_t next_addr_ = 4096;  // Leave page 0 unmapped for easier debugging.
  FaultInjector fault_;
  /// Sticky retryable kUnavailable raised by EndKernel (injected kernel
  /// fault or watchdog timeout); OK when none pending.
  Status fault_status_;
  double kernel_watchdog_cycles_ = 0;  // 0 = watchdog disarmed.
  uint64_t watchdog_trips_ = 0;
  std::vector<std::string> alloc_tag_stack_;
  bool leak_check_on_destroy_ = true;

  bool in_kernel_ = false;
  const char* kernel_name_ = "";
  uint64_t kernels_launched_ = 0;
  KernelStats last_kernel_;
  KernelStats total_;
  Profiler profiler_;
  KernelObserver* observer_ = nullptr;
  LifecycleControl* lifecycle_ = nullptr;
  double elapsed_cycles_ = 0;
  std::chrono::steady_clock::time_point kernel_host_start_;
  double host_kernel_seconds_ = 0;
  double host_kernel_cpu_seconds_ = 0;
  // Wall/CPU time spent inside ParallelBlocks during the current kernel
  // (reset by BeginKernel; folded into the CPU total by EndKernel).
  double kernel_parallel_wall_ = 0;
  double kernel_parallel_cpu_ = 0;
  uint64_t interleave_seed_ = 0x9e3779b97f4a7c15ull;

  int sim_threads_ = 1;
  std::unique_ptr<ParallelPool> pool_;     // Lazily created when threads > 1.
  std::unique_ptr<BlockContext> seq_ctx_;  // Reused by the inline path.
};

/// RAII allocation-tag frame: every allocation made while the scope is
/// alive is attributed to `tag` (nested scopes join with '/'), so leak
/// reports name the operator/phase that lost the buffer.
class AllocTagScope {
 public:
  AllocTagScope(Device& device, std::string tag) : device_(device) {
    device_.PushAllocTag(std::move(tag));
  }
  ~AllocTagScope() { device_.PopAllocTag(); }

  AllocTagScope(const AllocTagScope&) = delete;
  AllocTagScope& operator=(const AllocTagScope&) = delete;

 private:
  Device& device_;
};

/// RAII lifecycle installation: installs `control` on the device for the
/// scope's lifetime and restores the previously installed control (usually
/// none) on exit, so an early return from a cancelled query never leaves a
/// dangling control behind.
class LifecycleScope {
 public:
  LifecycleScope(Device& device, LifecycleControl& control)
      : device_(device), previous_(device.lifecycle()) {
    device_.set_lifecycle(&control);
  }
  ~LifecycleScope() { device_.set_lifecycle(previous_); }

  LifecycleScope(const LifecycleScope&) = delete;
  LifecycleScope& operator=(const LifecycleScope&) = delete;

 private:
  Device& device_;
  LifecycleControl* previous_;
};

/// RAII kernel bracket.
class KernelScope {
 public:
  KernelScope(Device& device, const char* name) : device_(device) {
    device_.BeginKernel(name);
  }
  ~KernelScope() { device_.EndKernel(); }

  KernelScope(const KernelScope&) = delete;
  KernelScope& operator=(const KernelScope&) = delete;

 private:
  Device& device_;
};

}  // namespace gpujoin::vgpu

#endif  // GPUJOIN_VGPU_DEVICE_H_
