// Static description of a simulated GPU: geometry (SMs, warp size, memory
// sizes) plus the parameters of the analytic cost model.
//
// Presets are provided for the two GPUs evaluated in the paper (NVIDIA A100
// and RTX 3090, Table 3). Because the simulator runs scaled-down workloads,
// ScaledToWorkload() derives a device whose cache capacity keeps the paper's
// cache-to-working-set ratio.

#ifndef GPUJOIN_VGPU_DEVICE_CONFIG_H_
#define GPUJOIN_VGPU_DEVICE_CONFIG_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace gpujoin::vgpu {

/// Hardware parameters of a simulated device.
///
/// The cost model charges, per kernel:
///   compute_cycles = (warp instructions + transaction replays +
///                     shared-memory accesses + atomic serializations) /
///                    num_sms
///   memory_cycles  = dram_sectors * sector_bytes / dram_bytes_per_cycle()
///                  + l2_hit_sectors * sector_bytes / l2_bytes_per_cycle()
///   kernel_cycles  = max(compute_cycles, memory_cycles) + launch_overhead
///
/// i.e., compute and memory overlap perfectly (latency hiding), and the
/// kernel is bound by whichever pipe saturates — the same first-order model
/// the paper's analysis uses (sequential scans are bandwidth-bound, random
/// gathers are sector/replay-bound).
struct DeviceConfig {
  std::string name = "custom";

  // --- Geometry (Table 3 of the paper) ---
  int num_sms = 108;
  int warp_size = 32;
  size_t shared_mem_per_block_bytes = 164 * 1024;
  size_t l2_bytes = 40ull * 1024 * 1024;
  size_t global_mem_bytes = 40ull * 1024 * 1024 * 1024;
  double clock_ghz = 1.095;
  double mem_bandwidth_gbps = 1555.0;  // bytes/ns = GB/s.

  // --- Memory system granularity ---
  int sector_bytes = 32;      // DRAM/L2 transfer granularity.
  int cacheline_bytes = 128;  // L1 line = 4 sectors; one transaction each.
  int l2_ways = 16;

  // --- Cost-model knobs ---
  /// L2 delivers this multiple of DRAM bandwidth (A100: ~4 TB/s vs 1.5 TB/s).
  double l2_bandwidth_ratio = 3.0;
  /// Fixed per-kernel-launch overhead, in cycles.
  double launch_overhead_cycles = 5000.0;

  // --- DRAM row-buffer model ---
  // Peak bandwidth is only achieved by row-buffer-friendly (streaming)
  // access; an L2-miss sector whose DRAM row is not open pays an activation
  // penalty. This is what makes unclustered gathers ~4x more expensive per
  // byte than streams (Table 4: ~410 GB/s effective vs 1555 GB/s peak on
  // A100 for random 32 B reads).
  int dram_row_bytes = 1024;
  int dram_row_buffers = 1024;  // Open rows tracked across banks/channels.
  /// Associativity of the open-row tracker: models the memory controller's
  /// request reordering, which keeps hundreds of write streams row-friendly.
  int dram_row_assoc = 8;
  /// Activation cost, expressed in bandwidth-equivalent bytes per row miss.
  double dram_row_penalty_bytes = 96.0;

  // --- Host interconnect (out-of-core joins) ---
  /// Host <-> device transfer bandwidth (PCIe 4.0 x16 effective).
  double pcie_gbps = 25.0;
  /// Fixed per-transfer setup latency, in cycles (~10 us).
  double pcie_latency_cycles = 11000.0;

  /// NVIDIA A100 40 GB (SXM) — the paper's primary machine.
  static DeviceConfig A100();
  /// NVIDIA GeForce RTX 3090 — the paper's secondary machine.
  static DeviceConfig RTX3090();

  /// Derives a device for a scaled-down workload: cache and global-memory
  /// capacities shrink by (n_tuples / paper_n_tuples) so that the paper's
  /// cache-to-working-set ratios are preserved. Compute geometry, pass
  /// structure, and bandwidth ratios are unchanged. paper_n_tuples defaults
  /// to the paper's canonical relation size 2^27.
  static DeviceConfig ScaledToWorkload(const DeviceConfig& base, size_t n_tuples,
                                       size_t paper_n_tuples = size_t{1} << 27);

  double dram_bytes_per_cycle() const { return mem_bandwidth_gbps / clock_ghz; }
  double l2_bytes_per_cycle() const {
    return dram_bytes_per_cycle() * l2_bandwidth_ratio;
  }
  int sectors_per_line() const { return cacheline_bytes / sector_bytes; }
  /// Simulated seconds for a cycle count.
  double CyclesToSeconds(double cycles) const { return cycles / (clock_ghz * 1e9); }
};

}  // namespace gpujoin::vgpu

#endif  // GPUJOIN_VGPU_DEVICE_CONFIG_H_
