#include "vgpu/device.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstdio>
#include <cstdlib>

#include "common/bit_util.h"

namespace gpujoin::vgpu {

Device::Device(DeviceConfig config, FaultInjector fault,
               LifecycleControl* lifecycle)
    : config_(std::move(config)),
      l2_(config_),
      fault_(std::move(fault)),
      lifecycle_(lifecycle) {
  const int buffers = std::max(config_.dram_row_assoc, config_.dram_row_buffers);
  dram_open_rows_.assign(buffers, ~uint64_t{0});
  dram_row_lru_.assign(buffers, 0);
}

Device::~Device() {
  if (leak_check_on_destroy_ && !allocations_.empty()) {
    std::fprintf(stderr,
                 "FATAL: Device destroyed with leaked simulated memory\n%s",
                 LeakReport().c_str());
    std::abort();
  }
}

std::string Device::EffectiveTag(const char* tag) const {
  std::string out;
  for (const std::string& frame : alloc_tag_stack_) {
    out += frame;
    out += '/';
  }
  out += tag != nullptr ? tag : "untagged";
  return out;
}

Result<uint64_t> Device::AllocateRaw(uint64_t bytes, const char* tag) {
  if (bytes == 0) bytes = 1;
  if (lifecycle_ != nullptr) {
    // A tripped lifecycle (cancel/deadline) rejects further allocations so
    // a doomed query stops at its next resource request. The attempt is not
    // counted: lifecycle rejection must not shift the FaultInjector's
    // deterministic allocation numbering.
    lifecycle_->Evaluate(elapsed_cycles_);
    if (lifecycle_->tripped()) return lifecycle_->status();
  }
  ++memory_stats_.alloc_attempts;
  if (fault_.armed() && fault_.ShouldFail(bytes)) {
    ++memory_stats_.failed_allocations;
    ++memory_stats_.injected_failures;
    return Status::ResourceExhausted(
        "injected allocation fault (" + fault_.ToString() + ") at attempt #" +
        std::to_string(memory_stats_.alloc_attempts) + ": " +
        std::to_string(bytes) + " B for " + EffectiveTag(tag));
  }
  if (memory_stats_.live_bytes + bytes > config_.global_mem_bytes) {
    ++memory_stats_.failed_allocations;
    return Status::ResourceExhausted(
        "device OOM: requested " + std::to_string(bytes) + " B for " +
        EffectiveTag(tag) + " with " + std::to_string(memory_stats_.live_bytes) +
        " B live of " + std::to_string(config_.global_mem_bytes) +
        " B capacity");
  }
  const uint64_t addr = next_addr_;
  next_addr_ = bit_util::AlignUp(next_addr_ + bytes, 256);
  allocations_.emplace(
      addr,
      AllocationInfo{bytes, memory_stats_.alloc_attempts, EffectiveTag(tag)});
  memory_stats_.live_bytes += bytes;
  memory_stats_.peak_bytes =
      std::max(memory_stats_.peak_bytes, memory_stats_.live_bytes);
  ++memory_stats_.total_allocations;
  return addr;
}

Status Device::FreeRaw(uint64_t addr) {
  auto it = allocations_.find(addr);
  if (it == allocations_.end()) {
    return Status::InvalidArgument("FreeRaw of unknown device address " +
                                   std::to_string(addr));
  }
  memory_stats_.live_bytes -= it->second.bytes;
  allocations_.erase(it);
  return Status::OK();
}

std::vector<AllocationRecord> Device::OutstandingAllocations() const {
  std::vector<AllocationRecord> live;
  live.reserve(allocations_.size());
  for (const auto& [addr, info] : allocations_) {
    live.push_back(AllocationRecord{addr, info.bytes, info.seq, info.tag});
  }
  std::sort(live.begin(), live.end(),
            [](const AllocationRecord& a, const AllocationRecord& b) {
              return a.seq < b.seq;
            });
  return live;
}

std::string Device::LeakReport() const {
  if (allocations_.empty()) return "";
  std::string report = std::to_string(allocations_.size()) +
                       " live allocation(s), " +
                       std::to_string(memory_stats_.live_bytes) + " B total:\n";
  constexpr size_t kMaxListed = 16;
  const std::vector<AllocationRecord> live = OutstandingAllocations();
  for (size_t i = 0; i < live.size() && i < kMaxListed; ++i) {
    report += "  #" + std::to_string(live[i].seq) + " " + live[i].tag + ": " +
              std::to_string(live[i].bytes) + " B at addr " +
              std::to_string(live[i].addr) + "\n";
  }
  if (live.size() > kMaxListed) {
    report += "  ... and " + std::to_string(live.size() - kMaxListed) +
              " more\n";
  }
  return report;
}

Status Device::CheckNoLeaks() const {
  if (allocations_.empty()) return Status::OK();
  return Status::Internal("leaked simulated device memory: " + LeakReport());
}

Status Device::Reset() {
  if (!allocations_.empty()) {
    return Status::Internal("Device::Reset with live allocations: " +
                            LeakReport());
  }
  assert(!in_kernel_ && "Device::Reset inside a kernel");
  l2_.Clear();
  dram_open_rows_.assign(dram_open_rows_.size(), ~uint64_t{0});
  dram_row_lru_.assign(dram_row_lru_.size(), 0);
  dram_row_clock_ = 0;
  memory_stats_ = MemoryStats{};
  next_addr_ = 4096;
  elapsed_cycles_ = 0;
  fault_ = FaultInjector();
  lifecycle_ = nullptr;
  alloc_tag_stack_.clear();
  ResetStats();
  return Status::OK();
}

void Device::BeginKernel(const char* name) {
  assert(!in_kernel_ && "kernels do not nest");
  in_kernel_ = true;
  kernel_name_ = name;
  current_ = KernelStats{};
  if (lifecycle_ != nullptr) lifecycle_->OnKernelLaunch(elapsed_cycles_);
  if (observer_ != nullptr) observer_->OnKernelBegin(*this, name);
  kernel_host_start_ = std::chrono::steady_clock::now();
}

const KernelStats& Device::EndKernel() {
  assert(in_kernel_);
  in_kernel_ = false;
  // Cost model (see DeviceConfig docs): compute and memory pipes overlap.
  const double issue_work =
      static_cast<double>(current_.warp_instructions) +
      static_cast<double>(current_.transactions) +
      static_cast<double>(current_.shared_accesses) +
      static_cast<double>(current_.atomic_serializations);
  current_.compute_cycles = issue_work / static_cast<double>(config_.num_sms) +
                            current_.serial_cycles;
  const double dram_bytes =
      static_cast<double>(current_.dram_sectors) * config_.sector_bytes +
      static_cast<double>(current_.dram_row_misses) * config_.dram_row_penalty_bytes;
  const double l2_bytes =
      static_cast<double>(current_.l2_hit_sectors) * config_.sector_bytes;
  current_.memory_cycles = dram_bytes / config_.dram_bytes_per_cycle() +
                           l2_bytes / config_.l2_bytes_per_cycle();
  current_.cycles = std::max(current_.compute_cycles, current_.memory_cycles) +
                    config_.launch_overhead_cycles;
  elapsed_cycles_ += current_.cycles;
  last_kernel_ = current_;
  total_.Add(current_);
  const double host_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    kernel_host_start_)
          .count();
  host_kernel_seconds_ += host_seconds;
  profiler_.Record(kernel_name_, current_, host_seconds);
  SimSelfProfile& g = MutableGlobalSimSelfProfile();
  g.host_seconds += host_seconds;
  g.sim_cycles += current_.cycles;
  ++g.kernels;
  if (observer_ != nullptr) {
    observer_->OnKernelEnd(*this, kernel_name_, last_kernel_, host_seconds);
  }
  if (lifecycle_ != nullptr) lifecycle_->OnClockAdvance(elapsed_cycles_);
  return last_kernel_;
}

void Device::ResetStats() {
  total_ = KernelStats{};
  last_kernel_ = KernelStats{};
  profiler_.Clear();
  host_kernel_seconds_ = 0;
}

void Device::TouchDramRow(uint64_t row, uint64_t multiplicity) {
  if (multiplicity == 0) return;
  // Hash the row to a tracker group: real DRAM interleaves banks on low
  // address bits, so large power-of-two strides must not alias. Full
  // murmur fmix64 — a single multiply is not avalanche-complete for
  // strided row numbers and produces persistent group collisions.
  uint64_t mix = row;
  mix ^= mix >> 33;
  mix *= 0xff51afd7ed558ccdull;
  mix ^= mix >> 33;
  mix *= 0xc4ceb9fe1a85ec53ull;
  mix ^= mix >> 33;
  const int assoc = config_.dram_row_assoc;
  const uint64_t n_rows = dram_open_rows_.size();
  const uint64_t group = (mix % (n_rows / assoc)) * assoc;
  // `multiplicity` consecutive miss sectors in the same row: the first
  // access decides hit/miss, the rest only refresh the LRU stamp — so the
  // batched form advances the clock once by the full multiplicity and
  // stamps the final value (identical end state to per-sector operations).
  dram_row_clock_ += static_cast<uint32_t>(multiplicity);
  for (int w = 0; w < assoc; ++w) {
    if (dram_open_rows_[group + w] == row) {
      dram_row_lru_[group + w] = dram_row_clock_;
      return;
    }
  }
  int victim = 0;
  uint32_t victim_lru = ~uint32_t{0};
  for (int w = 0; w < assoc; ++w) {
    if (dram_row_lru_[group + w] < victim_lru) {
      victim_lru = dram_row_lru_[group + w];
      victim = w;
    }
  }
  dram_open_rows_[group + victim] = row;
  dram_row_lru_[group + victim] = dram_row_clock_;
  ++current_.dram_row_misses;
}

void Device::AccessWarp(std::span<const uint64_t> lane_addrs,
                        uint32_t bytes_per_lane, bool is_store) {
  assert(in_kernel_ && "memory access outside of a kernel");
  if (lane_addrs.empty()) return;
  ++current_.warp_instructions;
  ++current_.mem_instructions;
  const uint64_t bytes = static_cast<uint64_t>(lane_addrs.size()) * bytes_per_lane;
  if (is_store) {
    current_.bytes_written += bytes;
  } else {
    current_.bytes_read += bytes;
  }

  // Collect the distinct sectors and 128B lines this warp touches. A lane
  // spanning [a, a + bytes_per_lane) touches at most bytes_per_lane/32 + 2
  // sectors, so the scratch capacity below is a true upper bound — wide
  // lanes (or wide warps) are never silently dropped.
  const size_t cap =
      lane_addrs.size() *
      (static_cast<size_t>(bytes_per_lane) / config_.sector_bytes + 2);
  if (scratch_sectors_.size() < cap) {
    scratch_sectors_.resize(cap);
    scratch_lines_.resize(cap);
  }
  uint64_t* sectors = scratch_sectors_.data();
  size_t n_sectors = 0;
  uint64_t* lines = scratch_lines_.data();
  size_t n_lines = 0;
  const int sector_shift = bit_util::Log2Floor(config_.sector_bytes);
  const int line_shift = bit_util::Log2Floor(config_.cacheline_bytes);
  for (uint64_t addr : lane_addrs) {
    const uint64_t first_sector = addr >> sector_shift;
    const uint64_t last_sector = (addr + bytes_per_lane - 1) >> sector_shift;
    for (uint64_t s = first_sector; s <= last_sector; ++s) {
      bool seen = false;
      for (size_t i = n_sectors; i-- > 0;) {
        if (sectors[i] == s) {
          seen = true;
          break;
        }
      }
      if (!seen) sectors[n_sectors++] = s;
    }
    const uint64_t first_line = addr >> line_shift;
    const uint64_t last_line = (addr + bytes_per_lane - 1) >> line_shift;
    for (uint64_t l = first_line; l <= last_line; ++l) {
      bool seen = false;
      for (size_t i = n_lines; i-- > 0;) {
        if (lines[i] == l) {
          seen = true;
          break;
        }
      }
      if (!seen) lines[n_lines++] = l;
    }
  }
  current_.transactions += static_cast<uint64_t>(n_lines);
  current_.sectors += static_cast<uint64_t>(n_sectors);
  const int row_shift =
      bit_util::Log2Floor(static_cast<uint64_t>(config_.dram_row_bytes));
  for (size_t i = 0; i < n_sectors; ++i) {
    if (l2_.Access(sectors[i])) {
      ++current_.l2_hit_sectors;
    } else {
      ++current_.dram_sectors;
      // DRAM row-buffer model: an L2 miss to a row that is not open pays an
      // activation penalty (this is what makes random access slower than
      // streaming even at equal sector counts).
      const uint64_t byte_addr = sectors[i] << sector_shift;
      TouchDramRow(byte_addr >> row_shift, 1);
    }
  }
}

void Device::Load(std::span<const uint64_t> lane_addrs, uint32_t bytes_per_lane) {
  AccessWarp(lane_addrs, bytes_per_lane, /*is_store=*/false);
}

void Device::Store(std::span<const uint64_t> lane_addrs, uint32_t bytes_per_lane) {
  AccessWarp(lane_addrs, bytes_per_lane, /*is_store=*/true);
}

void Device::AccessRunGeneric(uint64_t base_addr, uint64_t count,
                              uint32_t elem_bytes, bool is_store) {
  const uint32_t warp = static_cast<uint32_t>(config_.warp_size);
  if (scratch_addrs_.size() < warp) scratch_addrs_.resize(warp);
  uint64_t* addrs = scratch_addrs_.data();
  for (uint64_t i = 0; i < count; i += warp) {
    const uint32_t lanes = static_cast<uint32_t>(std::min<uint64_t>(warp, count - i));
    for (uint32_t l = 0; l < lanes; ++l) {
      addrs[l] = base_addr + (i + l) * elem_bytes;
    }
    AccessWarp({addrs, lanes}, elem_bytes, is_store);
  }
}

void Device::AccessRun(uint64_t base_addr, uint64_t count, uint32_t elem_bytes,
                       bool is_store) {
  assert(in_kernel_ && "memory access outside of a kernel");
  assert(elem_bytes > 0);
  if (count == 0) return;
  if (!fast_path_enabled_) {
    AccessRunGeneric(base_addr, count, elem_bytes, is_store);
    return;
  }

  const uint32_t warp = static_cast<uint32_t>(config_.warp_size);
  const int sector_shift = bit_util::Log2Floor(config_.sector_bytes);
  const int line_shift = bit_util::Log2Floor(config_.cacheline_bytes);
  const int row_shift =
      bit_util::Log2Floor(static_cast<uint64_t>(config_.dram_row_bytes)) -
      sector_shift;  // Row of a sector id.

  // Closed-form per-warp instruction/byte accounting: the stream is one
  // warp-level memory instruction per warp_size elements.
  const uint64_t n_warps = bit_util::CeilDiv(count, warp);
  current_.warp_instructions += n_warps;
  current_.mem_instructions += n_warps;
  const uint64_t total_bytes = count * elem_bytes;
  if (is_store) {
    current_.bytes_written += total_bytes;
  } else {
    current_.bytes_read += total_bytes;
  }

  // Walk the stream warp by warp. A warp covers the contiguous byte range
  // [addr, addr + lanes*elem_bytes): its distinct sectors/lines are exactly
  // the ranges [first..last], no dedup needed. When a warp boundary falls
  // mid-sector, the boundary sector is accessed again by the next warp
  // (the generic path does the same) — the L2's MRU shortcut makes that
  // re-access cheap, and it is always a hit.
  uint64_t pending_row = ~uint64_t{0};
  uint64_t pending_misses = 0;
  uint64_t addr = base_addr;
  uint64_t remaining = count;
  while (remaining > 0) {
    const uint64_t lanes = std::min<uint64_t>(warp, remaining);
    const uint64_t warp_bytes = lanes * elem_bytes;
    const uint64_t last_byte = addr + warp_bytes - 1;
    current_.transactions += (last_byte >> line_shift) - (addr >> line_shift) + 1;
    uint64_t sector = addr >> sector_shift;
    const uint64_t sector_end = last_byte >> sector_shift;
    current_.sectors += sector_end - sector + 1;
    while (sector <= sector_end) {
      const uint32_t chunk =
          static_cast<uint32_t>(std::min<uint64_t>(sector_end - sector + 1, 64));
      uint64_t miss_mask = 0;
      current_.l2_hit_sectors += l2_.AccessRun(sector, chunk, &miss_mask);
      current_.dram_sectors += static_cast<uint64_t>(std::popcount(miss_mask));
      while (miss_mask != 0) {
        const int bit = std::countr_zero(miss_mask);
        miss_mask &= miss_mask - 1;
        const uint64_t row = (sector + static_cast<uint64_t>(bit)) >> row_shift;
        if (row == pending_row) {
          ++pending_misses;
        } else {
          TouchDramRow(pending_row, pending_misses);
          pending_row = row;
          pending_misses = 1;
        }
      }
      sector += chunk;
    }
    addr += warp_bytes;
    remaining -= lanes;
  }
  TouchDramRow(pending_row, pending_misses);
}

void Device::LoadSeq(uint64_t base_addr, uint64_t count, uint32_t elem_bytes) {
  AccessRun(base_addr, count, elem_bytes, /*is_store=*/false);
}

void Device::StoreSeq(uint64_t base_addr, uint64_t count, uint32_t elem_bytes) {
  AccessRun(base_addr, count, elem_bytes, /*is_store=*/true);
}

void Device::SharedAccess(uint64_t count) {
  assert(in_kernel_);
  current_.shared_accesses += count;
  current_.warp_instructions += count;
}

void Device::SharedAtomic(std::span<const uint32_t> lane_slots) {
  assert(in_kernel_);
  if (lane_slots.empty()) return;
  ++current_.warp_instructions;
  ++current_.shared_accesses;
  // Lanes targeting the same slot serialize; the warp pays for the most
  // contended slot, and each serialized retry is a multi-cycle shared-memory
  // round trip (this is the §5.2.4 bucket-chain skew collapse). Count
  // multiplicities with a small quadratic scan (<= 32 lanes).
  constexpr uint64_t kSharedAtomicSerializeCost = 4;
  uint32_t max_mult = 1;
  for (size_t i = 0; i < lane_slots.size(); ++i) {
    uint32_t mult = 1;
    for (size_t j = i + 1; j < lane_slots.size(); ++j) {
      if (lane_slots[j] == lane_slots[i]) ++mult;
    }
    max_mult = std::max(max_mult, mult);
  }
  current_.atomic_serializations +=
      static_cast<uint64_t>(max_mult - 1) * kSharedAtomicSerializeCost;
}

void Device::Compute(uint64_t count) {
  assert(in_kernel_);
  current_.warp_instructions += count;
}

void Device::ChargeHostTransfer(uint64_t bytes) {
  const double bytes_per_cycle = config_.pcie_gbps / config_.clock_ghz;
  elapsed_cycles_ +=
      static_cast<double>(bytes) / bytes_per_cycle + config_.pcie_latency_cycles;
  if (lifecycle_ != nullptr) lifecycle_->OnClockAdvance(elapsed_cycles_);
}

void Device::AdvanceClock(double cycles) {
  assert(!in_kernel_ && "AdvanceClock inside a kernel");
  if (cycles > 0) elapsed_cycles_ += cycles;
  if (lifecycle_ != nullptr) lifecycle_->OnClockAdvance(elapsed_cycles_);
}

void Device::SerialStall(double cycles) {
  assert(in_kernel_);
  current_.serial_cycles += cycles;
}

void Device::GlobalAtomic(std::span<const uint64_t> lane_addrs,
                          uint32_t bytes_per_lane) {
  assert(in_kernel_);
  if (lane_addrs.empty()) return;
  // The read-modify-write memory traffic.
  AccessWarp(lane_addrs, bytes_per_lane, /*is_store=*/true);
  // Serialization: lanes hitting the same address queue at the L2 atomic
  // unit; a DRAM-latency-scale round trip per conflicting lane.
  constexpr uint64_t kGlobalAtomicSerializeCost = 8;
  uint32_t max_mult = 1;
  for (size_t i = 0; i < lane_addrs.size(); ++i) {
    uint32_t mult = 1;
    for (size_t j = i + 1; j < lane_addrs.size(); ++j) {
      if (lane_addrs[j] == lane_addrs[i]) ++mult;
    }
    max_mult = std::max(max_mult, mult);
  }
  current_.atomic_serializations +=
      static_cast<uint64_t>(max_mult - 1) * kGlobalAtomicSerializeCost;
}

}  // namespace gpujoin::vgpu
