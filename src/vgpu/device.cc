#include "vgpu/device.h"

#include <algorithm>
#include <cassert>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <map>
#include <mutex>
#include <thread>

#include "common/bit_util.h"

namespace gpujoin::vgpu {

namespace {

// CPU time of the calling thread (simulator self-profiling only; never
// feeds back into simulated results).
double ThreadCpuSeconds() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
    return static_cast<double>(ts.tv_sec) +
           static_cast<double>(ts.tv_nsec) * 1e-9;
  }
#endif
  return 0.0;
}

}  // namespace

// Worker pool of the host-parallel simulation path. Workers own a private
// BlockContext each and dynamically claim block ids in ascending order; the
// calling thread merges finished blocks strictly in block order. Claiming
// is window-bounded (a worker may run at most `window_` blocks ahead of the
// merge frontier) so the buffered per-block outcomes stay O(threads), not
// O(num_blocks).
class Device::ParallelPool {
 public:
  struct BlockOutcome {
    KernelStats stats;
    std::vector<uint64_t> l2_sectors;  // Resident shard sectors, LRU first.
    std::vector<uint64_t> dram_rows;   // Open shard rows, LRU first.
    Status status;
    double cpu_seconds = 0;
  };

  ParallelPool(const DeviceConfig& config, int threads) : config_(config) {
    workers_.reserve(threads);
    for (int i = 0; i < threads; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ~ParallelPool() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      shutdown_ = true;
    }
    cv_work_.notify_all();
    for (std::thread& t : workers_) t.join();
  }

  ParallelPool(const ParallelPool&) = delete;
  ParallelPool& operator=(const ParallelPool&) = delete;

  /// Runs `fn` over all blocks and hands each outcome to `merge` strictly
  /// in block order. Returns the first error in block order (all blocks run
  /// regardless). `*cpu_seconds_out` is the summed worker CPU time.
  Status Run(uint64_t num_blocks, const Device::BlockFn& fn, bool fast_path,
             const std::function<void(const BlockOutcome&)>& merge,
             double* cpu_seconds_out) {
    Status first_error = Status::OK();
    double cpu_total = 0;
    std::unique_lock<std::mutex> lk(mu_);
    fn_ = &fn;
    fast_path_ = fast_path;
    num_blocks_ = num_blocks;
    next_ = 0;
    merged_ = 0;
    window_ = 4 * workers_.size() + 4;
    job_active_ = true;
    cv_work_.notify_all();
    while (merged_ < num_blocks_) {
      cv_ready_.wait(lk, [&] { return ready_.count(merged_) > 0; });
      auto node = ready_.extract(merged_);
      ++merged_;
      cv_work_.notify_all();  // The claim window advanced.
      lk.unlock();
      const BlockOutcome& out = node.mapped();
      merge(out);
      cpu_total += out.cpu_seconds;
      if (first_error.ok() && !out.status.ok()) first_error = out.status;
      lk.lock();
    }
    job_active_ = false;
    fn_ = nullptr;
    *cpu_seconds_out = cpu_total;
    return first_error;
  }

  int threads() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop() {
    BlockContext ctx(config_);
    std::unique_lock<std::mutex> lk(mu_);
    for (;;) {
      cv_work_.wait(lk, [&] {
        return shutdown_ || (job_active_ && next_ < num_blocks_ &&
                             next_ < merged_ + window_);
      });
      if (shutdown_) return;
      const uint64_t block = next_++;
      const Device::BlockFn* fn = fn_;
      const bool fast_path = fast_path_;
      lk.unlock();
      BlockOutcome out;
      const double cpu0 = ThreadCpuSeconds();
      ctx.BeginBlock(block, fast_path);
      out.status = (*fn)(block, ctx);
      out.stats = ctx.engine().stats;
      out.l2_sectors = ctx.engine().ResidentL2SectorsByLru();
      out.dram_rows = ctx.engine().OpenDramRowsByLru();
      out.cpu_seconds = ThreadCpuSeconds() - cpu0;
      lk.lock();
      ready_.emplace(block, std::move(out));
      cv_ready_.notify_one();
    }
  }

  const DeviceConfig& config_;
  std::mutex mu_;
  std::condition_variable cv_work_;   // Workers wait for claimable blocks.
  std::condition_variable cv_ready_;  // The merger waits for block `merged_`.
  bool shutdown_ = false;
  bool job_active_ = false;
  const Device::BlockFn* fn_ = nullptr;
  bool fast_path_ = true;
  uint64_t num_blocks_ = 0;
  uint64_t next_ = 0;    // Next unclaimed block id.
  uint64_t merged_ = 0;  // Merge frontier: blocks < merged_ are folded in.
  uint64_t window_ = 0;  // Claim bound: next_ < merged_ + window_.
  std::map<uint64_t, BlockOutcome> ready_;  // Finished, not yet merged.
  std::vector<std::thread> workers_;
};

Device::Device(DeviceConfig config, FaultInjector fault,
               LifecycleControl* lifecycle, int sim_threads,
               double kernel_watchdog_cycles)
    : config_(std::move(config)),
      engine_(config_),
      fault_(std::move(fault)),
      kernel_watchdog_cycles_(kernel_watchdog_cycles),
      lifecycle_(lifecycle) {
  if (sim_threads > 1) set_parallel_sim(sim_threads);
}

Device::~Device() {
  if (leak_check_on_destroy_ && !allocations_.empty()) {
    std::fprintf(stderr,
                 "FATAL: Device destroyed with leaked simulated memory\n%s",
                 LeakReport().c_str());
    std::abort();
  }
}

std::string Device::EffectiveTag(const char* tag) const {
  std::string out;
  for (const std::string& frame : alloc_tag_stack_) {
    out += frame;
    out += '/';
  }
  out += tag != nullptr ? tag : "untagged";
  return out;
}

Result<uint64_t> Device::AllocateRaw(uint64_t bytes, const char* tag) {
  if (bytes == 0) bytes = 1;
  if (lifecycle_ != nullptr) {
    // A tripped lifecycle (cancel/deadline) rejects further allocations so
    // a doomed query stops at its next resource request. The attempt is not
    // counted: lifecycle rejection must not shift the FaultInjector's
    // deterministic allocation numbering.
    lifecycle_->Evaluate(elapsed_cycles_);
    if (lifecycle_->tripped()) return lifecycle_->status();
  }
  if (!fault_status_.ok()) {
    // A pending transient kernel fault rejects further allocations until a
    // retry layer clears it: the faulted kernel's results are poisoned, so
    // building on them would waste work. Uncounted for the same reason as
    // lifecycle rejection — it must not shift the FaultInjector's
    // deterministic allocation numbering.
    return fault_status_;
  }
  ++memory_stats_.alloc_attempts;
  if (fault_.armed() && fault_.ShouldFail(bytes)) {
    ++memory_stats_.failed_allocations;
    ++memory_stats_.injected_failures;
    return Status::ResourceExhausted(
        "injected allocation fault (" + fault_.ToString() + ") at attempt #" +
        std::to_string(memory_stats_.alloc_attempts) + ": " +
        std::to_string(bytes) + " B for " + EffectiveTag(tag));
  }
  if (memory_stats_.live_bytes + bytes > config_.global_mem_bytes) {
    ++memory_stats_.failed_allocations;
    return Status::ResourceExhausted(
        "device OOM: requested " + std::to_string(bytes) + " B for " +
        EffectiveTag(tag) + " with " + std::to_string(memory_stats_.live_bytes) +
        " B live of " + std::to_string(config_.global_mem_bytes) +
        " B capacity");
  }
  const uint64_t addr = next_addr_;
  next_addr_ = bit_util::AlignUp(next_addr_ + bytes, 256);
  allocations_.emplace(
      addr,
      AllocationInfo{bytes, memory_stats_.alloc_attempts, EffectiveTag(tag)});
  memory_stats_.live_bytes += bytes;
  memory_stats_.peak_bytes =
      std::max(memory_stats_.peak_bytes, memory_stats_.live_bytes);
  ++memory_stats_.total_allocations;
  return addr;
}

Status Device::FreeRaw(uint64_t addr) {
  auto it = allocations_.find(addr);
  if (it == allocations_.end()) {
    return Status::InvalidArgument("FreeRaw of unknown device address " +
                                   std::to_string(addr));
  }
  memory_stats_.live_bytes -= it->second.bytes;
  allocations_.erase(it);
  return Status::OK();
}

std::vector<AllocationRecord> Device::OutstandingAllocations() const {
  std::vector<AllocationRecord> live;
  live.reserve(allocations_.size());
  for (const auto& [addr, info] : allocations_) {
    live.push_back(AllocationRecord{addr, info.bytes, info.seq, info.tag});
  }
  std::sort(live.begin(), live.end(),
            [](const AllocationRecord& a, const AllocationRecord& b) {
              return a.seq < b.seq;
            });
  return live;
}

std::string Device::LeakReport() const {
  if (allocations_.empty()) return "";
  std::string report = std::to_string(allocations_.size()) +
                       " live allocation(s), " +
                       std::to_string(memory_stats_.live_bytes) + " B total:\n";
  constexpr size_t kMaxListed = 16;
  const std::vector<AllocationRecord> live = OutstandingAllocations();
  for (size_t i = 0; i < live.size() && i < kMaxListed; ++i) {
    report += "  #" + std::to_string(live[i].seq) + " " + live[i].tag + ": " +
              std::to_string(live[i].bytes) + " B at addr " +
              std::to_string(live[i].addr) + "\n";
  }
  if (live.size() > kMaxListed) {
    report += "  ... and " + std::to_string(live.size() - kMaxListed) +
              " more\n";
  }
  return report;
}

Status Device::CheckNoLeaks() const {
  if (allocations_.empty()) return Status::OK();
  return Status::Internal("leaked simulated device memory: " + LeakReport());
}

Status Device::Reset() {
  if (!allocations_.empty()) {
    return Status::Internal("Device::Reset with live allocations: " +
                            LeakReport());
  }
  assert(!in_kernel_ && "Device::Reset inside a kernel");
  engine_.ResetMemoryState();
  memory_stats_ = MemoryStats{};
  next_addr_ = 4096;
  elapsed_cycles_ = 0;
  fault_ = FaultInjector();
  fault_status_ = Status::OK();
  kernel_watchdog_cycles_ = 0;
  watchdog_trips_ = 0;
  lifecycle_ = nullptr;
  alloc_tag_stack_.clear();
  kernels_launched_ = 0;
  ResetStats();
  return Status::OK();
}

void Device::BeginKernel(const char* name) {
  assert(!in_kernel_ && "kernels do not nest");
  in_kernel_ = true;
  ++kernels_launched_;
  kernel_name_ = name;
  engine_.stats = KernelStats{};
  kernel_parallel_wall_ = 0;
  kernel_parallel_cpu_ = 0;
  if (lifecycle_ != nullptr) lifecycle_->OnKernelLaunch(elapsed_cycles_);
  if (observer_ != nullptr) observer_->OnKernelBegin(*this, name);
  kernel_host_start_ = std::chrono::steady_clock::now();
}

const KernelStats& Device::EndKernel() {
  assert(in_kernel_);
  in_kernel_ = false;
  KernelStats& current = engine_.stats;
  // Cost model (see DeviceConfig docs): compute and memory pipes overlap.
  const double issue_work =
      static_cast<double>(current.warp_instructions) +
      static_cast<double>(current.transactions) +
      static_cast<double>(current.shared_accesses) +
      static_cast<double>(current.atomic_serializations);
  current.compute_cycles = issue_work / static_cast<double>(config_.num_sms) +
                           current.serial_cycles;
  const double dram_bytes =
      static_cast<double>(current.dram_sectors) * config_.sector_bytes +
      static_cast<double>(current.dram_row_misses) * config_.dram_row_penalty_bytes;
  const double l2_bytes =
      static_cast<double>(current.l2_hit_sectors) * config_.sector_bytes;
  current.memory_cycles = dram_bytes / config_.dram_bytes_per_cycle() +
                          l2_bytes / config_.l2_bytes_per_cycle();
  current.cycles = std::max(current.compute_cycles, current.memory_cycles) +
                   config_.launch_overhead_cycles;
  elapsed_cycles_ += current.cycles;
  last_kernel_ = current;
  total_.Add(current);
  // Transient-fault evaluation: the kernel's cost is now known and the
  // launch counter identifies it, so both decisions are pure functions of
  // (injector state, kernel index, derived cycles) — bit-identical on
  // replay and at any host fan-out. First fault sticks; later kernels on a
  // not-yet-unwound query keep the original diagnosis.
  if (fault_.kernel_mode() && fault_.ShouldFailKernel() &&
      fault_status_.ok()) {
    fault_status_ = Status::Unavailable(
        "kernel_fault: injected (" + fault_.ToString() + ") at kernel #" +
        std::to_string(kernels_launched_) + " '" + kernel_name_ + "'");
  }
  if (kernel_watchdog_cycles_ > 0 && current.cycles > kernel_watchdog_cycles_ &&
      fault_status_.ok()) {
    ++watchdog_trips_;
    fault_status_ = Status::Unavailable(
        "watchdog_timeout: kernel #" + std::to_string(kernels_launched_) +
        " '" + kernel_name_ + "' ran " + std::to_string(current.cycles) +
        " cycles > watchdog budget " +
        std::to_string(kernel_watchdog_cycles_));
  }
  const double host_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    kernel_host_start_)
          .count();
  // CPU-summed time: the bracket's wall time with each ParallelBlocks
  // window replaced by the CPU its workers actually burned. Equal to wall
  // under the inline path; under the parallel path, wall < cpu shows the
  // realized fan-out.
  const double cpu_seconds = std::max(
      0.0, host_seconds - kernel_parallel_wall_ + kernel_parallel_cpu_);
  host_kernel_seconds_ += host_seconds;
  host_kernel_cpu_seconds_ += cpu_seconds;
  profiler_.Record(kernel_name_, current, host_seconds);
  SimSelfProfile& g = MutableGlobalSimSelfProfile();
  g.host_seconds += host_seconds;
  g.host_cpu_seconds += cpu_seconds;
  g.sim_cycles += current.cycles;
  ++g.kernels;
  if (observer_ != nullptr) {
    observer_->OnKernelEnd(*this, kernel_name_, last_kernel_, host_seconds);
  }
  if (lifecycle_ != nullptr) lifecycle_->OnClockAdvance(elapsed_cycles_);
  return last_kernel_;
}

void Device::ResetStats() {
  total_ = KernelStats{};
  last_kernel_ = KernelStats{};
  profiler_.Clear();
  host_kernel_seconds_ = 0;
  host_kernel_cpu_seconds_ = 0;
}

void Device::Load(std::span<const uint64_t> lane_addrs, uint32_t bytes_per_lane) {
  assert(in_kernel_ && "memory access outside of a kernel");
  engine_.AccessWarp(lane_addrs, bytes_per_lane, /*is_store=*/false);
}

void Device::Store(std::span<const uint64_t> lane_addrs, uint32_t bytes_per_lane) {
  assert(in_kernel_ && "memory access outside of a kernel");
  engine_.AccessWarp(lane_addrs, bytes_per_lane, /*is_store=*/true);
}

void Device::AccessRun(uint64_t base_addr, uint64_t count, uint32_t elem_bytes,
                       bool is_store) {
  assert(in_kernel_ && "memory access outside of a kernel");
  engine_.AccessRun(base_addr, count, elem_bytes, is_store);
}

void Device::LoadSeq(uint64_t base_addr, uint64_t count, uint32_t elem_bytes) {
  AccessRun(base_addr, count, elem_bytes, /*is_store=*/false);
}

void Device::StoreSeq(uint64_t base_addr, uint64_t count, uint32_t elem_bytes) {
  AccessRun(base_addr, count, elem_bytes, /*is_store=*/true);
}

void Device::SharedAccess(uint64_t count) {
  assert(in_kernel_);
  engine_.SharedAccess(count);
}

void Device::SharedAtomic(std::span<const uint32_t> lane_slots) {
  assert(in_kernel_);
  engine_.SharedAtomic(lane_slots);
}

void Device::GlobalAtomic(std::span<const uint64_t> lane_addrs,
                          uint32_t bytes_per_lane) {
  assert(in_kernel_);
  engine_.GlobalAtomic(lane_addrs, bytes_per_lane);
}

void Device::Compute(uint64_t count) {
  assert(in_kernel_);
  engine_.Compute(count);
}

void Device::SerialStall(double cycles) {
  assert(in_kernel_);
  engine_.SerialStall(cycles);
}

void Device::MergeBlockOutcome(const KernelStats& block_stats,
                               const std::vector<uint64_t>& l2_sectors,
                               const std::vector<uint64_t>& dram_rows,
                               const Status& block_status,
                               Status* first_error) {
  engine_.stats.Add(block_stats);
  // Replay the shard's resident state into the device models, LRU first, so
  // the post-kernel device state is a deterministic function of the block
  // outcomes alone. Installs are silent: the block already paid for these.
  for (uint64_t sector : l2_sectors) engine_.InstallL2Sector(sector);
  for (uint64_t row : dram_rows) engine_.InstallDramRow(row);
  if (first_error->ok() && !block_status.ok()) *first_error = block_status;
}

Status Device::ParallelBlocks(uint64_t num_blocks, const BlockFn& fn) {
  assert(in_kernel_ && "ParallelBlocks outside of a kernel");
  if (num_blocks == 0) return Status::OK();
  Status first_error = Status::OK();
  if (sim_threads_ <= 1) {
    // Inline path: identical per-block loop and merge, on this thread.
    if (seq_ctx_ == nullptr) {
      seq_ctx_ = std::make_unique<BlockContext>(config_);
    }
    for (uint64_t block = 0; block < num_blocks; ++block) {
      seq_ctx_->BeginBlock(block, engine_.fast_path_enabled);
      const Status st = fn(block, *seq_ctx_);
      MergeBlockOutcome(seq_ctx_->engine().stats,
                        seq_ctx_->engine().ResidentL2SectorsByLru(),
                        seq_ctx_->engine().OpenDramRowsByLru(), st,
                        &first_error);
    }
    return first_error;
  }
  if (pool_ == nullptr || pool_->threads() != sim_threads_) {
    pool_ = std::make_unique<ParallelPool>(config_, sim_threads_);
  }
  const auto wall0 = std::chrono::steady_clock::now();
  double cpu_seconds = 0;
  first_error = pool_->Run(
      num_blocks, fn, engine_.fast_path_enabled,
      [&](const ParallelPool::BlockOutcome& out) {
        Status sink = Status::OK();  // Run() tracks the first error itself.
        MergeBlockOutcome(out.stats, out.l2_sectors, out.dram_rows, out.status,
                          &sink);
      },
      &cpu_seconds);
  kernel_parallel_wall_ +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall0)
          .count();
  kernel_parallel_cpu_ += cpu_seconds;
  return first_error;
}

void Device::set_parallel_sim(int threads) {
  threads = std::max(1, threads);
  if (threads == sim_threads_) return;
  assert(!in_kernel_ && "set_parallel_sim inside a kernel");
  sim_threads_ = threads;
  pool_.reset();  // Lazily recreated at the new size on first use.
}

void Device::ChargeHostTransfer(uint64_t bytes) {
  const double bytes_per_cycle = config_.pcie_gbps / config_.clock_ghz;
  elapsed_cycles_ +=
      static_cast<double>(bytes) / bytes_per_cycle + config_.pcie_latency_cycles;
  if (lifecycle_ != nullptr) lifecycle_->OnClockAdvance(elapsed_cycles_);
}

void Device::AdvanceClock(double cycles) {
  assert(!in_kernel_ && "AdvanceClock inside a kernel");
  if (cycles > 0) elapsed_cycles_ += cycles;
  if (lifecycle_ != nullptr) lifecycle_->OnClockAdvance(elapsed_cycles_);
}

}  // namespace gpujoin::vgpu
