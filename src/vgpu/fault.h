// FaultInjector: deterministic, configurable fault injection for the
// simulated device, covering two fault classes:
//
// Allocation faults — consulted by Device::AllocateRaw on every allocation
// attempt; when the injector trips, the allocation fails with
// ResourceExhausted exactly as a capacity OOM would, so callers exercise
// the same error path a genuinely undersized device produces:
//
//   FailNth(n)              fail the nth attempt after arming, once
//                           (exhaustive failure sweeps: for every allocation
//                           point k of a query, inject at k and assert a
//                           clean non-OK status and zero leaks).
//   FailAfterBytes(budget)  fail every attempt once cumulative requested
//                           bytes exceed `budget` (models a smaller device
//                           without rebuilding the config).
//   FailWithProbability(p, seed)
//                           fail each attempt independently with
//                           probability p from a seeded splitmix64 stream
//                           (chaos testing; fully reproducible per seed).
//
// Kernel-execution faults — consulted by Device::EndKernel once per kernel
// launch; when the injector trips, the kernel's results are presumed
// poisoned and the device raises a sticky, retryable kUnavailable fault
// (cleared by Device::ClearTransientFault). These model transient GPU
// failures (ECC events, launch timeouts, driver hiccups) where retrying
// the same work is expected to succeed:
//
//   FailNthKernel(n)        fail the nth kernel launch after arming, once.
//   FailKernelBurst(first, len)
//                           fail kernels [first, first+len) — a correlated
//                           burst, the shape a flapping device produces.
//   FailKernelWithProbability(p, seed)
//                           fail each kernel independently with probability
//                           p from a seeded splitmix64 stream.
//
// The two classes are disjoint: a kernel-mode injector never fails an
// allocation (and does not advance the allocation attempt counter), and
// vice versa, so arming one class cannot shift the other's deterministic
// numbering.
//
// An injector is plain value state owned by the Device; it is deliberately
// deterministic — no wall clock, no global RNG — so a failing sweep case
// can always be replayed.

#ifndef GPUJOIN_VGPU_FAULT_H_
#define GPUJOIN_VGPU_FAULT_H_

#include <cstdint>
#include <string>

namespace gpujoin::vgpu {

class FaultInjector {
 public:
  /// Disarmed injector: never fails anything.
  FaultInjector() = default;

  /// Fails the `nth` allocation attempt (1-based) after arming, once.
  static FaultInjector FailNth(uint64_t nth);
  /// Fails every attempt once cumulative requested bytes exceed the budget.
  static FaultInjector FailAfterBytes(uint64_t budget_bytes);
  /// Fails each attempt independently with probability `p` (clamped to
  /// [0, 1]), drawn from a deterministic splitmix64 stream seeded by `seed`.
  static FaultInjector FailWithProbability(double p, uint64_t seed);

  /// Fails the `nth` kernel launch (1-based) after arming, once.
  static FaultInjector FailNthKernel(uint64_t nth);
  /// Fails kernel launches [first, first + len) (1-based), a correlated
  /// burst. len == 0 is treated as 1.
  static FaultInjector FailKernelBurst(uint64_t first, uint64_t len);
  /// Fails each kernel launch independently with probability `p` (clamped
  /// to [0, 1]) from a deterministic splitmix64 stream seeded by `seed`.
  static FaultInjector FailKernelWithProbability(double p, uint64_t seed);

  bool armed() const { return mode_ != Mode::kNone; }
  /// True when the armed mode targets kernel execution (not allocations).
  bool kernel_mode() const {
    return mode_ == Mode::kKernelNth || mode_ == Mode::kKernelBurst ||
           mode_ == Mode::kKernelProbability;
  }

  /// Called by Device::AllocateRaw for each attempt of `bytes` bytes.
  /// Advances the injector's counters; returns true when the attempt must
  /// fail. A disarmed or kernel-mode injector always returns false (and
  /// counts nothing).
  bool ShouldFail(uint64_t bytes);

  /// Called by Device::EndKernel once per kernel launch. Advances the
  /// kernel counters; returns true when this kernel's execution must be
  /// treated as faulted. A disarmed or allocation-mode injector always
  /// returns false (and counts nothing).
  bool ShouldFailKernel();

  /// Allocation attempts seen since arming (disarmed injectors count
  /// nothing).
  uint64_t attempts_seen() const { return attempts_; }
  /// Allocation failures this injector has injected.
  uint64_t injected_failures() const { return failures_; }
  /// Kernel launches seen since arming a kernel mode.
  uint64_t kernel_attempts_seen() const { return kernel_attempts_; }
  /// Kernel faults this injector has injected.
  uint64_t injected_kernel_faults() const { return kernel_failures_; }

  /// "disarmed", "fail-nth(3)", "fail-after-bytes(1024)",
  /// "fail-nth-kernel(5)", "fail-kernel-burst(4:2)", ...
  std::string ToString() const;

 private:
  enum class Mode {
    kNone,
    kNth,
    kByteBudget,
    kProbability,
    kKernelNth,
    kKernelBurst,
    kKernelProbability,
  };

  Mode mode_ = Mode::kNone;
  uint64_t nth_ = 0;
  uint64_t budget_bytes_ = 0;
  uint64_t cumulative_bytes_ = 0;
  double probability_ = 0;
  uint64_t rng_state_ = 0;
  uint64_t attempts_ = 0;
  uint64_t failures_ = 0;
  uint64_t burst_first_ = 0;
  uint64_t burst_len_ = 0;
  uint64_t kernel_attempts_ = 0;
  uint64_t kernel_failures_ = 0;
};

}  // namespace gpujoin::vgpu

#endif  // GPUJOIN_VGPU_FAULT_H_
