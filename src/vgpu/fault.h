// FaultInjector: deterministic, configurable allocation-failure injection
// for the simulated device.
//
// The injector is consulted by Device::AllocateRaw on every allocation
// attempt; when it trips, the allocation fails with ResourceExhausted
// exactly as a capacity OOM would, so callers exercise the same error path
// a genuinely undersized device produces. Three modes:
//
//   FailNth(n)              fail the nth attempt after arming, once
//                           (exhaustive failure sweeps: for every allocation
//                           point k of a query, inject at k and assert a
//                           clean non-OK status and zero leaks).
//   FailAfterBytes(budget)  fail every attempt once cumulative requested
//                           bytes exceed `budget` (models a smaller device
//                           without rebuilding the config).
//   FailWithProbability(p, seed)
//                           fail each attempt independently with
//                           probability p from a seeded splitmix64 stream
//                           (chaos testing; fully reproducible per seed).
//
// An injector is plain value state owned by the Device; it is deliberately
// deterministic — no wall clock, no global RNG — so a failing sweep case
// can always be replayed.

#ifndef GPUJOIN_VGPU_FAULT_H_
#define GPUJOIN_VGPU_FAULT_H_

#include <cstdint>
#include <string>

namespace gpujoin::vgpu {

class FaultInjector {
 public:
  /// Disarmed injector: never fails anything.
  FaultInjector() = default;

  /// Fails the `nth` allocation attempt (1-based) after arming, once.
  static FaultInjector FailNth(uint64_t nth);
  /// Fails every attempt once cumulative requested bytes exceed the budget.
  static FaultInjector FailAfterBytes(uint64_t budget_bytes);
  /// Fails each attempt independently with probability `p` (clamped to
  /// [0, 1]), drawn from a deterministic splitmix64 stream seeded by `seed`.
  static FaultInjector FailWithProbability(double p, uint64_t seed);

  bool armed() const { return mode_ != Mode::kNone; }

  /// Called by Device::AllocateRaw for each attempt of `bytes` bytes.
  /// Advances the injector's counters; returns true when the attempt must
  /// fail. A disarmed injector always returns false (and counts nothing).
  bool ShouldFail(uint64_t bytes);

  /// Attempts seen since arming (disarmed injectors count nothing).
  uint64_t attempts_seen() const { return attempts_; }
  /// Failures this injector has injected.
  uint64_t injected_failures() const { return failures_; }

  /// "disarmed", "fail-nth(3)", "fail-after-bytes(1024)", ...
  std::string ToString() const;

 private:
  enum class Mode { kNone, kNth, kByteBudget, kProbability };

  Mode mode_ = Mode::kNone;
  uint64_t nth_ = 0;
  uint64_t budget_bytes_ = 0;
  uint64_t cumulative_bytes_ = 0;
  double probability_ = 0;
  uint64_t rng_state_ = 0;
  uint64_t attempts_ = 0;
  uint64_t failures_ = 0;
};

}  // namespace gpujoin::vgpu

#endif  // GPUJOIN_VGPU_FAULT_H_
