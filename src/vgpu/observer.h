// Kernel lifecycle observer — the hook the observability layer (src/obs)
// attaches to a Device to see every BeginKernel/EndKernel without the
// simulator depending on it.
//
// Contract: observers are READ-ONLY with respect to simulated state. They
// may snapshot the device clock, counters, and memory stats, but must not
// charge cycles, allocate device memory, or otherwise perturb the
// simulation — tracing on/off must leave simulated results bit-identical
// (enforced by obs_determinism_test.cc).

#ifndef GPUJOIN_VGPU_OBSERVER_H_
#define GPUJOIN_VGPU_OBSERVER_H_

namespace gpujoin::vgpu {

class Device;
struct KernelStats;

class KernelObserver {
 public:
  virtual ~KernelObserver() = default;

  /// Called by Device::BeginKernel after the kernel bracket opens (the
  /// simulated clock still reads the pre-kernel time).
  virtual void OnKernelBegin(const Device& device, const char* name) = 0;

  /// Called by Device::EndKernel after cycles are derived and the clock
  /// advanced. `stats` are the finished kernel's counters; `host_seconds`
  /// is the host wall-clock spent simulating it.
  virtual void OnKernelEnd(const Device& device, const char* name,
                           const KernelStats& stats, double host_seconds) = 0;
};

}  // namespace gpujoin::vgpu

#endif  // GPUJOIN_VGPU_OBSERVER_H_
