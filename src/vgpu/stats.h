// Execution counters produced by the simulated memory system and kernel
// scheduler. KernelStats corresponds to what NVIDIA Nsight Compute reports
// for one kernel (Table 4 of the paper): warp instructions, transactions,
// sectors, cache hits, and derived cycles.

#ifndef GPUJOIN_VGPU_STATS_H_
#define GPUJOIN_VGPU_STATS_H_

#include <cstdint>
#include <string>

namespace gpujoin::vgpu {

/// Counters for one kernel execution (or an accumulation over kernels).
struct KernelStats {
  /// Total warp-level instructions issued (memory + compute alike).
  uint64_t warp_instructions = 0;
  /// Warp-level global-memory instructions (subset of warp_instructions).
  uint64_t mem_instructions = 0;
  /// 128-byte line transactions (each costs one issue/replay slot).
  uint64_t transactions = 0;
  /// 32-byte sectors touched by global accesses (L2 lookups).
  uint64_t sectors = 0;
  /// Sectors served from the L2 cache.
  uint64_t l2_hit_sectors = 0;
  /// Sectors served from DRAM (L2 misses).
  uint64_t dram_sectors = 0;
  /// DRAM accesses that had to open a new row (activation penalty).
  uint64_t dram_row_misses = 0;
  /// Bytes requested by loads (lane-level, not sector-level).
  uint64_t bytes_read = 0;
  /// Bytes requested by stores.
  uint64_t bytes_written = 0;
  /// Warp-level shared-memory accesses.
  uint64_t shared_accesses = 0;
  /// Extra serialization cycles from atomic contention (warp-level).
  uint64_t atomic_serializations = 0;
  /// Cycles that do not parallelize across SMs (cross-block serialization,
  /// e.g. contended global allocators); added to compute time directly.
  double serial_cycles = 0;

  // Derived by Device::EndKernel():
  double compute_cycles = 0;
  double memory_cycles = 0;
  double cycles = 0;

  void Add(const KernelStats& o) {
    warp_instructions += o.warp_instructions;
    mem_instructions += o.mem_instructions;
    transactions += o.transactions;
    sectors += o.sectors;
    l2_hit_sectors += o.l2_hit_sectors;
    dram_sectors += o.dram_sectors;
    dram_row_misses += o.dram_row_misses;
    bytes_read += o.bytes_read;
    bytes_written += o.bytes_written;
    shared_accesses += o.shared_accesses;
    atomic_serializations += o.atomic_serializations;
    serial_cycles += o.serial_cycles;
    compute_cycles += o.compute_cycles;
    memory_cycles += o.memory_cycles;
    cycles += o.cycles;
  }

  /// Average 32B sectors per global-memory warp instruction — the paper's
  /// "avg. sectors read per load request" (Table 4). Coalesced 4-byte
  /// accesses give 4; fully random gathers give ~32.
  double AvgSectorsPerRequest() const {
    return mem_instructions == 0
               ? 0.0
               : static_cast<double>(sectors) / static_cast<double>(mem_instructions);
  }
  /// L2 hit rate over sectors.
  double L2HitRate() const {
    return sectors == 0 ? 0.0
                        : static_cast<double>(l2_hit_sectors) /
                              static_cast<double>(sectors);
  }
  /// Cycles per warp instruction (Table 4's "avg. cycles per warp instr").
  double CyclesPerWarpInstruction() const {
    return warp_instructions == 0 ? 0.0
                                  : cycles / static_cast<double>(warp_instructions);
  }

  /// Counter-wise subtraction (the inverse of Add). Used to attribute a
  /// bracketed region: delta = total_stats at exit minus a snapshot taken
  /// at entry.
  void Sub(const KernelStats& o) {
    warp_instructions -= o.warp_instructions;
    mem_instructions -= o.mem_instructions;
    transactions -= o.transactions;
    sectors -= o.sectors;
    l2_hit_sectors -= o.l2_hit_sectors;
    dram_sectors -= o.dram_sectors;
    dram_row_misses -= o.dram_row_misses;
    bytes_read -= o.bytes_read;
    bytes_written -= o.bytes_written;
    shared_accesses -= o.shared_accesses;
    atomic_serializations -= o.atomic_serializations;
    serial_cycles -= o.serial_cycles;
    compute_cycles -= o.compute_cycles;
    memory_cycles -= o.memory_cycles;
    cycles -= o.cycles;
  }

  /// Exact (bit-level) equality over every counter, including the derived
  /// cycle counts. Used by determinism and failure-sweep tests to assert two
  /// runs are indistinguishable to the simulator.
  bool operator==(const KernelStats&) const = default;

  std::string ToString() const;
};

/// Counters for memory allocation (Table 5 of the paper).
struct MemoryStats {
  uint64_t live_bytes = 0;
  uint64_t peak_bytes = 0;
  /// Successful allocations.
  uint64_t total_allocations = 0;
  /// Allocation attempts, successful or not. The attempt index identifies
  /// an allocation point for fault-injection sweeps (FaultInjector::FailNth).
  uint64_t alloc_attempts = 0;
  /// Attempts that failed: capacity OOM plus injected faults.
  uint64_t failed_allocations = 0;
  /// Failures injected by the device's FaultInjector (subset of
  /// failed_allocations).
  uint64_t injected_failures = 0;

  std::string ToString() const;
};

}  // namespace gpujoin::vgpu

#endif  // GPUJOIN_VGPU_STATS_H_
