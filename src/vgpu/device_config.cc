#include "vgpu/device_config.h"

#include <algorithm>

namespace gpujoin::vgpu {

DeviceConfig DeviceConfig::A100() {
  DeviceConfig c;
  c.name = "A100";
  c.num_sms = 108;
  c.shared_mem_per_block_bytes = 164 * 1024;
  c.l2_bytes = 40ull * 1024 * 1024;
  c.global_mem_bytes = 40ull * 1024 * 1024 * 1024;
  c.clock_ghz = 1.095;
  c.mem_bandwidth_gbps = 1555.0;
  c.l2_bandwidth_ratio = 3.0;
  return c;
}

DeviceConfig DeviceConfig::RTX3090() {
  DeviceConfig c;
  c.name = "RTX3090";
  c.num_sms = 82;
  c.shared_mem_per_block_bytes = 100 * 1024;
  c.l2_bytes = 6ull * 1024 * 1024;
  c.global_mem_bytes = 24ull * 1024 * 1024 * 1024;
  c.clock_ghz = 1.395;
  c.mem_bandwidth_gbps = 936.0;
  c.l2_bandwidth_ratio = 3.0;
  return c;
}

DeviceConfig DeviceConfig::ScaledToWorkload(const DeviceConfig& base,
                                            size_t n_tuples,
                                            size_t paper_n_tuples) {
  DeviceConfig c = base;
  if (n_tuples == 0 || n_tuples >= paper_n_tuples) return c;
  const double factor =
      static_cast<double>(n_tuples) / static_cast<double>(paper_n_tuples);
  c.name = base.name + "-scaled";
  // Keep at least a few cache sets so associativity still means something.
  c.l2_bytes = std::max<size_t>(
      static_cast<size_t>(static_cast<double>(base.l2_bytes) * factor),
      static_cast<size_t>(base.l2_ways) * base.sector_bytes * 16);
  c.global_mem_bytes = std::max<size_t>(
      static_cast<size_t>(static_cast<double>(base.global_mem_bytes) * factor),
      16ull * 1024 * 1024);
  // Shared memory (and thus bucket/partition sizing) shrinks with the same
  // factor so that the partitioning fan-out per pass matches the paper's
  // two-pass structure. Floor keeps histograms for 256-way fan-out viable.
  c.shared_mem_per_block_bytes = std::max<size_t>(
      static_cast<size_t>(
          static_cast<double>(base.shared_mem_per_block_bytes) * factor),
      4 * 1024);
  // Kernel count is size-independent, so the launch overhead must shrink
  // with the data volume to keep its relative weight paper-like.
  c.launch_overhead_cycles =
      std::max(base.launch_overhead_cycles * factor, 50.0);
  // DRAM row-buffer geometry is physical and does not scale; consequently
  // random-access effects need workloads of >= ~2^20 tuples to emerge
  // (column span >> row_buffers * row_bytes), which is the bench default.
  return c;
}

}  // namespace gpujoin::vgpu
