#include "vgpu/fault.h"

#include <algorithm>

namespace gpujoin::vgpu {

namespace {

/// splitmix64: the canonical seed-expansion mixer — full avalanche, so even
/// seed 0 or consecutive seeds give independent-looking streams.
inline uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

FaultInjector FaultInjector::FailNth(uint64_t nth) {
  FaultInjector f;
  f.mode_ = Mode::kNth;
  f.nth_ = std::max<uint64_t>(nth, 1);
  return f;
}

FaultInjector FaultInjector::FailAfterBytes(uint64_t budget_bytes) {
  FaultInjector f;
  f.mode_ = Mode::kByteBudget;
  f.budget_bytes_ = budget_bytes;
  return f;
}

FaultInjector FaultInjector::FailWithProbability(double p, uint64_t seed) {
  FaultInjector f;
  f.mode_ = Mode::kProbability;
  f.probability_ = std::clamp(p, 0.0, 1.0);
  f.rng_state_ = seed;
  return f;
}

FaultInjector FaultInjector::FailNthKernel(uint64_t nth) {
  FaultInjector f;
  f.mode_ = Mode::kKernelNth;
  f.nth_ = std::max<uint64_t>(nth, 1);
  return f;
}

FaultInjector FaultInjector::FailKernelBurst(uint64_t first, uint64_t len) {
  FaultInjector f;
  f.mode_ = Mode::kKernelBurst;
  f.burst_first_ = std::max<uint64_t>(first, 1);
  f.burst_len_ = std::max<uint64_t>(len, 1);
  return f;
}

FaultInjector FaultInjector::FailKernelWithProbability(double p,
                                                       uint64_t seed) {
  FaultInjector f;
  f.mode_ = Mode::kKernelProbability;
  f.probability_ = std::clamp(p, 0.0, 1.0);
  f.rng_state_ = seed;
  return f;
}

bool FaultInjector::ShouldFail(uint64_t bytes) {
  if (mode_ == Mode::kNone || kernel_mode()) return false;
  ++attempts_;
  bool fail = false;
  switch (mode_) {
    case Mode::kNth:
      fail = attempts_ == nth_;
      break;
    case Mode::kByteBudget:
      // Requested bytes count whether or not the attempt succeeds: the
      // budget trips once and every later attempt fails too, modelling a
      // persistently smaller device.
      cumulative_bytes_ += bytes;
      fail = cumulative_bytes_ > budget_bytes_;
      break;
    case Mode::kProbability: {
      // 53-bit uniform draw in [0, 1).
      const double u = static_cast<double>(SplitMix64(&rng_state_) >> 11) *
                       0x1.0p-53;
      fail = u < probability_;
      break;
    }
    default:
      break;
  }
  if (fail) ++failures_;
  return fail;
}

bool FaultInjector::ShouldFailKernel() {
  if (!kernel_mode()) return false;
  ++kernel_attempts_;
  bool fail = false;
  switch (mode_) {
    case Mode::kKernelNth:
      fail = kernel_attempts_ == nth_;
      break;
    case Mode::kKernelBurst:
      fail = kernel_attempts_ >= burst_first_ &&
             kernel_attempts_ < burst_first_ + burst_len_;
      break;
    case Mode::kKernelProbability: {
      // Same 53-bit uniform draw as the allocation stream; the kernel
      // counter keys the draw sequence, so replays are bit-identical.
      const double u = static_cast<double>(SplitMix64(&rng_state_) >> 11) *
                       0x1.0p-53;
      fail = u < probability_;
      break;
    }
    default:
      break;
  }
  if (fail) ++kernel_failures_;
  return fail;
}

std::string FaultInjector::ToString() const {
  switch (mode_) {
    case Mode::kNone:
      return "disarmed";
    case Mode::kNth:
      return "fail-nth(" + std::to_string(nth_) + ")";
    case Mode::kByteBudget:
      return "fail-after-bytes(" + std::to_string(budget_bytes_) + ")";
    case Mode::kProbability:
      return "fail-with-probability(" + std::to_string(probability_) + ")";
    case Mode::kKernelNth:
      return "fail-nth-kernel(" + std::to_string(nth_) + ")";
    case Mode::kKernelBurst:
      return "fail-kernel-burst(" + std::to_string(burst_first_) + ":" +
             std::to_string(burst_len_) + ")";
    case Mode::kKernelProbability:
      return "fail-kernel-with-probability(" + std::to_string(probability_) +
             ")";
  }
  return "?";
}

}  // namespace gpujoin::vgpu
