#include "vgpu/block_sim.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <utility>

#include "common/bit_util.h"

namespace gpujoin::vgpu {

uint64_t ShardL2Bytes(const DeviceConfig& config) {
  const uint64_t per_sm =
      config.l2_bytes / static_cast<uint64_t>(std::max(1, config.num_sms));
  return std::max<uint64_t>(per_sm, 4096);
}

int ShardDramRowBuffers(const DeviceConfig& config) {
  const int assoc = std::max(1, config.dram_row_assoc);
  const int total = std::max(config.dram_row_buffers, assoc);
  const int sms = std::max(1, config.num_sms);
  const int per_sm = (total + sms - 1) / sms;
  const int groups = std::max(1, (per_sm + assoc - 1) / assoc);
  return groups * assoc;
}

MemEngine::MemEngine(const DeviceConfig& config, uint64_t l2_bytes_override,
                     int dram_row_buffers_override)
    : config_(&config), l2_(config, l2_bytes_override) {
  const int buffers =
      dram_row_buffers_override > 0
          ? dram_row_buffers_override
          : std::max(config.dram_row_assoc, config.dram_row_buffers);
  dram_open_rows_.assign(buffers, ~uint64_t{0});
  dram_row_lru_.assign(buffers, 0);
}

void MemEngine::ResetMemoryState() {
  l2_.Clear();
  dram_open_rows_.assign(dram_open_rows_.size(), ~uint64_t{0});
  dram_row_lru_.assign(dram_row_lru_.size(), 0);
  dram_row_clock_ = 0;
}

std::vector<uint64_t> MemEngine::OpenDramRowsByLru() const {
  std::vector<std::pair<uint32_t, uint64_t>> stamped;
  for (size_t i = 0; i < dram_open_rows_.size(); ++i) {
    if (dram_open_rows_[i] != ~uint64_t{0}) {
      stamped.emplace_back(dram_row_lru_[i], dram_open_rows_[i]);
    }
  }
  // Stamps are distinct values of the monotone row clock, so this order is
  // total and deterministic.
  std::sort(stamped.begin(), stamped.end());
  std::vector<uint64_t> out;
  out.reserve(stamped.size());
  for (const auto& [stamp, row] : stamped) out.push_back(row);
  return out;
}

void MemEngine::TouchDramRow(uint64_t row, uint64_t multiplicity,
                             bool count_miss) {
  if (multiplicity == 0) return;
  // Hash the row to a tracker group: real DRAM interleaves banks on low
  // address bits, so large power-of-two strides must not alias. Full
  // murmur fmix64 — a single multiply is not avalanche-complete for
  // strided row numbers and produces persistent group collisions.
  uint64_t mix = row;
  mix ^= mix >> 33;
  mix *= 0xff51afd7ed558ccdull;
  mix ^= mix >> 33;
  mix *= 0xc4ceb9fe1a85ec53ull;
  mix ^= mix >> 33;
  const int assoc = config_->dram_row_assoc;
  const uint64_t n_rows = dram_open_rows_.size();
  const uint64_t group = (mix % (n_rows / assoc)) * assoc;
  // `multiplicity` consecutive miss sectors in the same row: the first
  // access decides hit/miss, the rest only refresh the LRU stamp — so the
  // batched form advances the clock once by the full multiplicity and
  // stamps the final value (identical end state to per-sector operations).
  dram_row_clock_ += static_cast<uint32_t>(multiplicity);
  for (int w = 0; w < assoc; ++w) {
    if (dram_open_rows_[group + w] == row) {
      dram_row_lru_[group + w] = dram_row_clock_;
      return;
    }
  }
  int victim = 0;
  uint32_t victim_lru = ~uint32_t{0};
  for (int w = 0; w < assoc; ++w) {
    if (dram_row_lru_[group + w] < victim_lru) {
      victim_lru = dram_row_lru_[group + w];
      victim = w;
    }
  }
  dram_open_rows_[group + victim] = row;
  dram_row_lru_[group + victim] = dram_row_clock_;
  if (count_miss) ++stats.dram_row_misses;
}

void MemEngine::AccessWarp(std::span<const uint64_t> lane_addrs,
                           uint32_t bytes_per_lane, bool is_store) {
  if (lane_addrs.empty()) return;
  ++stats.warp_instructions;
  ++stats.mem_instructions;
  const uint64_t bytes =
      static_cast<uint64_t>(lane_addrs.size()) * bytes_per_lane;
  if (is_store) {
    stats.bytes_written += bytes;
  } else {
    stats.bytes_read += bytes;
  }

  // Collect the distinct sectors and 128B lines this warp touches. A lane
  // spanning [a, a + bytes_per_lane) touches at most bytes_per_lane/32 + 2
  // sectors, so the scratch capacity below is a true upper bound — wide
  // lanes (or wide warps) are never silently dropped.
  const size_t cap =
      lane_addrs.size() *
      (static_cast<size_t>(bytes_per_lane) / config_->sector_bytes + 2);
  if (scratch_sectors_.size() < cap) {
    scratch_sectors_.resize(cap);
    scratch_lines_.resize(cap);
  }
  uint64_t* sectors = scratch_sectors_.data();
  size_t n_sectors = 0;
  uint64_t* lines = scratch_lines_.data();
  size_t n_lines = 0;
  const int sector_shift = bit_util::Log2Floor(config_->sector_bytes);
  const int line_shift = bit_util::Log2Floor(config_->cacheline_bytes);
  for (uint64_t addr : lane_addrs) {
    const uint64_t first_sector = addr >> sector_shift;
    const uint64_t last_sector = (addr + bytes_per_lane - 1) >> sector_shift;
    for (uint64_t s = first_sector; s <= last_sector; ++s) {
      bool seen = false;
      for (size_t i = n_sectors; i-- > 0;) {
        if (sectors[i] == s) {
          seen = true;
          break;
        }
      }
      if (!seen) sectors[n_sectors++] = s;
    }
    const uint64_t first_line = addr >> line_shift;
    const uint64_t last_line = (addr + bytes_per_lane - 1) >> line_shift;
    for (uint64_t l = first_line; l <= last_line; ++l) {
      bool seen = false;
      for (size_t i = n_lines; i-- > 0;) {
        if (lines[i] == l) {
          seen = true;
          break;
        }
      }
      if (!seen) lines[n_lines++] = l;
    }
  }
  stats.transactions += static_cast<uint64_t>(n_lines);
  stats.sectors += static_cast<uint64_t>(n_sectors);
  const int row_shift =
      bit_util::Log2Floor(static_cast<uint64_t>(config_->dram_row_bytes));
  for (size_t i = 0; i < n_sectors; ++i) {
    if (l2_.Access(sectors[i])) {
      ++stats.l2_hit_sectors;
    } else {
      ++stats.dram_sectors;
      // DRAM row-buffer model: an L2 miss to a row that is not open pays an
      // activation penalty (this is what makes random access slower than
      // streaming even at equal sector counts).
      const uint64_t byte_addr = sectors[i] << sector_shift;
      TouchDramRow(byte_addr >> row_shift, 1);
    }
  }
}

void MemEngine::AccessRunGeneric(uint64_t base_addr, uint64_t count,
                                 uint32_t elem_bytes, bool is_store) {
  const uint32_t warp = static_cast<uint32_t>(config_->warp_size);
  if (scratch_addrs_.size() < warp) scratch_addrs_.resize(warp);
  uint64_t* addrs = scratch_addrs_.data();
  for (uint64_t i = 0; i < count; i += warp) {
    const uint32_t lanes =
        static_cast<uint32_t>(std::min<uint64_t>(warp, count - i));
    for (uint32_t l = 0; l < lanes; ++l) {
      addrs[l] = base_addr + (i + l) * elem_bytes;
    }
    AccessWarp({addrs, lanes}, elem_bytes, is_store);
  }
}

void MemEngine::AccessRun(uint64_t base_addr, uint64_t count,
                          uint32_t elem_bytes, bool is_store) {
  assert(elem_bytes > 0);
  if (count == 0) return;
  if (!fast_path_enabled) {
    AccessRunGeneric(base_addr, count, elem_bytes, is_store);
    return;
  }

  const uint32_t warp = static_cast<uint32_t>(config_->warp_size);
  const int sector_shift = bit_util::Log2Floor(config_->sector_bytes);
  const int line_shift = bit_util::Log2Floor(config_->cacheline_bytes);
  const int row_shift =
      bit_util::Log2Floor(static_cast<uint64_t>(config_->dram_row_bytes)) -
      sector_shift;  // Row of a sector id.

  // Closed-form per-warp instruction/byte accounting: the stream is one
  // warp-level memory instruction per warp_size elements.
  const uint64_t n_warps = bit_util::CeilDiv(count, warp);
  stats.warp_instructions += n_warps;
  stats.mem_instructions += n_warps;
  const uint64_t total_bytes = count * elem_bytes;
  if (is_store) {
    stats.bytes_written += total_bytes;
  } else {
    stats.bytes_read += total_bytes;
  }

  // Walk the stream warp by warp. A warp covers the contiguous byte range
  // [addr, addr + lanes*elem_bytes): its distinct sectors/lines are exactly
  // the ranges [first..last], no dedup needed. When a warp boundary falls
  // mid-sector, the boundary sector is accessed again by the next warp
  // (the generic path does the same) — the L2's MRU shortcut makes that
  // re-access cheap, and it is always a hit.
  uint64_t pending_row = ~uint64_t{0};
  uint64_t pending_misses = 0;
  uint64_t addr = base_addr;
  uint64_t remaining = count;
  while (remaining > 0) {
    const uint64_t lanes = std::min<uint64_t>(warp, remaining);
    const uint64_t warp_bytes = lanes * elem_bytes;
    const uint64_t last_byte = addr + warp_bytes - 1;
    stats.transactions += (last_byte >> line_shift) - (addr >> line_shift) + 1;
    uint64_t sector = addr >> sector_shift;
    const uint64_t sector_end = last_byte >> sector_shift;
    stats.sectors += sector_end - sector + 1;
    while (sector <= sector_end) {
      const uint32_t chunk = static_cast<uint32_t>(
          std::min<uint64_t>(sector_end - sector + 1, 64));
      uint64_t miss_mask = 0;
      stats.l2_hit_sectors += l2_.AccessRun(sector, chunk, &miss_mask);
      stats.dram_sectors += static_cast<uint64_t>(std::popcount(miss_mask));
      while (miss_mask != 0) {
        const int bit = std::countr_zero(miss_mask);
        miss_mask &= miss_mask - 1;
        const uint64_t row = (sector + static_cast<uint64_t>(bit)) >> row_shift;
        if (row == pending_row) {
          ++pending_misses;
        } else {
          TouchDramRow(pending_row, pending_misses);
          pending_row = row;
          pending_misses = 1;
        }
      }
      sector += chunk;
    }
    addr += warp_bytes;
    remaining -= lanes;
  }
  TouchDramRow(pending_row, pending_misses);
}

void MemEngine::SharedAccess(uint64_t count) {
  stats.shared_accesses += count;
  stats.warp_instructions += count;
}

void MemEngine::SharedAtomic(std::span<const uint32_t> lane_slots) {
  if (lane_slots.empty()) return;
  ++stats.warp_instructions;
  ++stats.shared_accesses;
  // Lanes targeting the same slot serialize; the warp pays for the most
  // contended slot, and each serialized retry is a multi-cycle shared-memory
  // round trip (this is the §5.2.4 bucket-chain skew collapse). Count
  // multiplicities with a small quadratic scan (<= 32 lanes).
  constexpr uint64_t kSharedAtomicSerializeCost = 4;
  uint32_t max_mult = 1;
  for (size_t i = 0; i < lane_slots.size(); ++i) {
    uint32_t mult = 1;
    for (size_t j = i + 1; j < lane_slots.size(); ++j) {
      if (lane_slots[j] == lane_slots[i]) ++mult;
    }
    max_mult = std::max(max_mult, mult);
  }
  stats.atomic_serializations +=
      static_cast<uint64_t>(max_mult - 1) * kSharedAtomicSerializeCost;
}

void MemEngine::GlobalAtomic(std::span<const uint64_t> lane_addrs,
                             uint32_t bytes_per_lane) {
  if (lane_addrs.empty()) return;
  // The read-modify-write memory traffic.
  AccessWarp(lane_addrs, bytes_per_lane, /*is_store=*/true);
  // Serialization: lanes hitting the same address queue at the L2 atomic
  // unit; a DRAM-latency-scale round trip per conflicting lane.
  constexpr uint64_t kGlobalAtomicSerializeCost = 8;
  uint32_t max_mult = 1;
  for (size_t i = 0; i < lane_addrs.size(); ++i) {
    uint32_t mult = 1;
    for (size_t j = i + 1; j < lane_addrs.size(); ++j) {
      if (lane_addrs[j] == lane_addrs[i]) ++mult;
    }
    max_mult = std::max(max_mult, mult);
  }
  stats.atomic_serializations +=
      static_cast<uint64_t>(max_mult - 1) * kGlobalAtomicSerializeCost;
}

void MemEngine::Compute(uint64_t count) { stats.warp_instructions += count; }

void MemEngine::SerialStall(double cycles) { stats.serial_cycles += cycles; }

}  // namespace gpujoin::vgpu
