// The shard abstraction of the host-parallel simulation path.
//
// MemEngine is the memory-accounting core: an L2 model, a DRAM open-row
// tracker, and a KernelStats accumulator, plus the access-classification
// routines (per-warp and batched-run) that used to live directly in
// Device. Device owns one full-sized MemEngine for the sequential path;
// BlockContext wraps a shard-sized one that models a single thread block's
// slice of the memory system.
//
// Parallel model. Thread blocks are independent between kernel launches —
// the observation that lets the paper's kernels scale across SMs makes
// per-block simulation embarrassingly parallel on the host. A kernel ported
// to Device::ParallelBlocks() simulates each block against a COLD private
// shard (BeginBlock epoch-clears the L2 shard and row tracker), so every
// block's outcome — its KernelStats delta, resident L2 sectors, and open
// DRAM rows — is a pure function of (block id, pre-kernel inputs) and in
// particular independent of which host thread ran it and in what order.
// The outcomes are then merged into the device engine in fixed block order
// (stats added; shard residents replayed via InstallL2Sector /
// InstallDramRow, least-recently-used first). Both facts together make the
// simulated results bit-identical for every host thread count, including 1:
// the sequential path runs the exact same per-block loop inline.
//
// The cold-shard model intentionally differs from pretending all blocks
// share the sequential engine: real concurrent blocks do not see each
// other's lines deterministically, so a private slice of the L2
// (ShardL2Bytes = l2_bytes / num_sms) is the honest approximation, and it
// is the one that parallelizes.

#ifndef GPUJOIN_VGPU_BLOCK_SIM_H_
#define GPUJOIN_VGPU_BLOCK_SIM_H_

#include <cstdint>
#include <span>
#include <vector>

#include "vgpu/device_config.h"
#include "vgpu/l2_cache.h"
#include "vgpu/stats.h"

namespace gpujoin::vgpu {

/// Per-block L2 shard capacity: one SM's share of the device L2 (floored so
/// degenerate scaled-down configs keep a nonempty cache).
uint64_t ShardL2Bytes(const DeviceConfig& config);
/// Per-block open-row tracker size: one SM's share of the device row
/// buffers, rounded up to whole associativity groups.
int ShardDramRowBuffers(const DeviceConfig& config);

/// Memory-accounting engine: L2 + DRAM-row models and the stats they feed.
/// Not thread-safe; the parallel path gives each worker its own engine.
class MemEngine {
 public:
  /// `l2_bytes_override`/`dram_row_buffers_override` of 0 mean the full
  /// device-sized models (Device's engine); BlockContext passes the shard
  /// sizes.
  explicit MemEngine(const DeviceConfig& config, uint64_t l2_bytes_override = 0,
                     int dram_row_buffers_override = 0);

  /// Counters accumulated by the access methods below. The owner brackets:
  /// Device resets this per kernel, BlockContext per block.
  KernelStats stats;
  /// When false, AccessRun falls back to the generic per-warp path (the
  /// two are bit-identical in simulated stats; testing hook).
  bool fast_path_enabled = true;

  // --- Access accounting (mirrors the Device hooks) ---

  /// One warp-level access: dedups the touched sectors/lines and classifies
  /// each sector through the L2 + row models.
  void AccessWarp(std::span<const uint64_t> lane_addrs, uint32_t bytes_per_lane,
                  bool is_store);
  /// Batched fully-coalesced sequential run (see Device::AccessRun).
  void AccessRun(uint64_t base_addr, uint64_t count, uint32_t elem_bytes,
                 bool is_store);
  void SharedAccess(uint64_t count);
  void SharedAtomic(std::span<const uint32_t> lane_slots);
  void GlobalAtomic(std::span<const uint64_t> lane_addrs,
                    uint32_t bytes_per_lane);
  void Compute(uint64_t count);
  void SerialStall(double cycles);

  // --- Memory-model state control ---

  /// Invalidates the L2 contents only (Device::FlushL2).
  void FlushL2() { l2_.Clear(); }
  /// Cold state: L2 and row tracker both invalidated (per-block reset, and
  /// Device::Reset). O(1) on the L2 side via the epoch clear.
  void ResetMemoryState();

  // --- Deterministic state extraction / replay (the shard-merge step) ---

  /// Resident L2 sectors, least recently used first (deterministic: LRU
  /// stamps are unique).
  std::vector<uint64_t> ResidentL2SectorsByLru() const {
    return l2_.ResidentSectorsByLru();
  }
  /// Open DRAM rows, least recently used first.
  std::vector<uint64_t> OpenDramRowsByLru() const;
  /// Silently installs a sector (no stats charged) — replaying a shard's
  /// ResidentL2SectorsByLru() reproduces its contents and recency order.
  void InstallL2Sector(uint64_t sector) { l2_.Access(sector); }
  /// Silently opens a row (no stats, no miss counted).
  void InstallDramRow(uint64_t row) {
    TouchDramRow(row, 1, /*count_miss=*/false);
  }

 private:
  /// Reference implementation of AccessRun: materializes lane addresses
  /// warp by warp and feeds them through AccessWarp.
  void AccessRunGeneric(uint64_t base_addr, uint64_t count, uint32_t elem_bytes,
                        bool is_store);
  /// One open-row-tracker operation for `multiplicity` consecutive L2-miss
  /// sectors mapping to the same DRAM row. `count_miss` is false only for
  /// merge replay, which must not recharge activation penalties.
  void TouchDramRow(uint64_t row, uint64_t multiplicity, bool count_miss = true);

  const DeviceConfig* config_;
  L2Cache l2_;
  std::vector<uint64_t> dram_open_rows_;  // Row tracker tags (set-assoc LRU).
  std::vector<uint32_t> dram_row_lru_;
  uint32_t dram_row_clock_ = 0;
  // Scratch for the generic paths (grown on demand; member state so the
  // per-warp path never allocates in steady state).
  std::vector<uint64_t> scratch_addrs_;
  std::vector<uint64_t> scratch_sectors_;
  std::vector<uint64_t> scratch_lines_;
};

/// One simulated thread block's execution context: a shard-sized MemEngine
/// plus the block id. Kernels ported to Device::ParallelBlocks() issue the
/// same Load/Store/LoadSeq/StoreSeq/... calls they would issue on the
/// Device, but against their BlockContext. A worker thread owns one
/// BlockContext and recycles it across blocks via BeginBlock().
class BlockContext {
 public:
  explicit BlockContext(const DeviceConfig& config)
      : config_(&config),
        engine_(config, ShardL2Bytes(config), ShardDramRowBuffers(config)) {}

  BlockContext(const BlockContext&) = delete;
  BlockContext& operator=(const BlockContext&) = delete;

  /// Rearms the context for a new block: zeroed stats, cold shard.
  void BeginBlock(uint64_t block_id, bool fast_path) {
    block_id_ = block_id;
    engine_.fast_path_enabled = fast_path;
    engine_.stats = KernelStats{};
    engine_.ResetMemoryState();
  }

  uint64_t block_id() const { return block_id_; }
  const DeviceConfig& config() const { return *config_; }

  // --- Memory-access hooks (same contracts as the Device methods) ---

  void Load(std::span<const uint64_t> lane_addrs, uint32_t bytes_per_lane) {
    engine_.AccessWarp(lane_addrs, bytes_per_lane, /*is_store=*/false);
  }
  void Store(std::span<const uint64_t> lane_addrs, uint32_t bytes_per_lane) {
    engine_.AccessWarp(lane_addrs, bytes_per_lane, /*is_store=*/true);
  }
  void AccessRun(uint64_t base_addr, uint64_t count, uint32_t elem_bytes,
                 bool is_store) {
    engine_.AccessRun(base_addr, count, elem_bytes, is_store);
  }
  void LoadSeq(uint64_t base_addr, uint64_t count, uint32_t elem_bytes) {
    engine_.AccessRun(base_addr, count, elem_bytes, /*is_store=*/false);
  }
  void StoreSeq(uint64_t base_addr, uint64_t count, uint32_t elem_bytes) {
    engine_.AccessRun(base_addr, count, elem_bytes, /*is_store=*/true);
  }
  void SharedAccess(uint64_t count = 1) { engine_.SharedAccess(count); }
  void SharedAtomic(std::span<const uint32_t> lane_slots) {
    engine_.SharedAtomic(lane_slots);
  }
  void GlobalAtomic(std::span<const uint64_t> lane_addrs,
                    uint32_t bytes_per_lane) {
    engine_.GlobalAtomic(lane_addrs, bytes_per_lane);
  }
  void Compute(uint64_t count = 1) { engine_.Compute(count); }
  void SerialStall(double cycles) { engine_.SerialStall(cycles); }

  MemEngine& engine() { return engine_; }
  const MemEngine& engine() const { return engine_; }

 private:
  const DeviceConfig* config_;
  MemEngine engine_;
  uint64_t block_id_ = 0;
};

}  // namespace gpujoin::vgpu

#endif  // GPUJOIN_VGPU_BLOCK_SIM_H_
