// Sector-granular set-associative L2 cache model with LRU replacement.
//
// The cache is addressed by 32-byte sector ids of the simulated device
// address space. It only tracks tags (no data): the simulator executes
// functionally on host memory, and the cache model exists to classify each
// sector access as an L2 hit or a DRAM access for the cost model.
//
// The model is on the simulator's hottest path (one lookup per touched
// sector), so the implementation is tuned for host speed without changing
// behavior: tags and LRU stamps are stored as separate flat arrays (the
// per-set scans vectorize), Access() is inline with a one-entry MRU
// shortcut (sequential streams re-touch warp-boundary sectors constantly),
// AccessRun() classifies a contiguous ascending sector range in bulk for
// Device::AccessRun, and Clear() is an O(1) epoch bump (per-block shard
// resets in the parallel simulation path would otherwise memset the tag
// arrays thousands of times per kernel). All of these are bit-identical in
// observable behavior (hit/miss sequence, LRU state, victim choice) to the
// plain per-sector lookup with a full memset clear: a slot is valid only if
// its LRU stamp is from the current epoch, and stale slots always lose the
// victim scan to valid ones (their stamps are older by construction).
//
// An optional byte-capacity override supports the block-shard use: a
// BlockContext models one thread block's slice of the L2, sized
// independently of the device total (see block_sim.h).

#ifndef GPUJOIN_VGPU_L2_CACHE_H_
#define GPUJOIN_VGPU_L2_CACHE_H_

#include <cstdint>
#include <vector>

#include "vgpu/device_config.h"

namespace gpujoin::vgpu {

class L2Cache {
 public:
  /// Models a cache of `bytes_override` bytes (or config.l2_bytes when 0)
  /// with the config's sector size and associativity.
  explicit L2Cache(const DeviceConfig& config, uint64_t bytes_override = 0);

  /// Looks up (and on miss, installs) a sector. Returns true on hit.
  bool Access(uint64_t sector_id) {
    if (sector_id == last_sector_) {
      // The immediately preceding access touched this sector; it cannot
      // have been evicted in between, so this is a hit on the same slot.
      lru_[last_slot_] = ++clock_;
      return true;
    }
    return AccessSlow(sector_id);
  }

  /// Bulk fast path: classifies `n` (<= 64) contiguous ascending sectors
  /// [first_sector, first_sector + n). Returns the number of hits and sets
  /// bit i of *miss_mask for every missed sector first_sector + i.
  /// Equivalent to calling Access() n times in ascending order.
  uint32_t AccessRun(uint64_t first_sector, uint32_t n, uint64_t* miss_mask) {
    uint64_t mask = 0;
    uint32_t hits = 0;
    for (uint32_t i = 0; i < n; ++i) {
      if (Access(first_sector + i)) {
        ++hits;
      } else {
        mask |= uint64_t{1} << i;
      }
    }
    *miss_mask = mask;
    return hits;
  }

  /// Invalidates all contents (between experiments, and per block in the
  /// parallel shard path). O(1): bumps the validity epoch instead of
  /// clearing the tag arrays; falls back to a hard clear when the LRU clock
  /// nears wraparound.
  void Clear();

  /// The resident sector ids, least recently used first. Replaying them
  /// through Access() on another cache reproduces this cache's contents and
  /// recency order — the deterministic shard-merge step of the parallel
  /// simulation path.
  std::vector<uint64_t> ResidentSectorsByLru() const;

  size_t num_sets() const { return num_sets_; }
  int ways() const { return ways_; }

 private:
  bool AccessSlow(uint64_t sector_id);
  void HardClear();

  static constexpr uint64_t kInvalidTag = ~uint64_t{0};
  /// Hard-clear threshold: far below uint32 wraparound, far above any
  /// plausible per-epoch access count.
  static constexpr uint32_t kClockHighWater = 0x40000000u;

  size_t num_sets_;
  int ways_;
  uint32_t clock_ = 0;  // Higher = more recently used.
  uint32_t epoch_ = 1;  // Slots with lru_ < epoch_ are invalid (stale).
  std::vector<uint64_t> tags_;  // num_sets_ * ways_, SoA with lru_.
  std::vector<uint32_t> lru_;
  uint64_t last_sector_ = kInvalidTag;  // One-entry MRU shortcut.
  size_t last_slot_ = 0;
};

}  // namespace gpujoin::vgpu

#endif  // GPUJOIN_VGPU_L2_CACHE_H_
