// Sector-granular set-associative L2 cache model with LRU replacement.
//
// The cache is addressed by 32-byte sector ids of the simulated device
// address space. It only tracks tags (no data): the simulator executes
// functionally on host memory, and the cache model exists to classify each
// sector access as an L2 hit or a DRAM access for the cost model.

#ifndef GPUJOIN_VGPU_L2_CACHE_H_
#define GPUJOIN_VGPU_L2_CACHE_H_

#include <cstdint>
#include <vector>

#include "vgpu/device_config.h"

namespace gpujoin::vgpu {

class L2Cache {
 public:
  explicit L2Cache(const DeviceConfig& config);

  /// Looks up (and on miss, installs) a sector. Returns true on hit.
  bool Access(uint64_t sector_id);

  /// Invalidates all contents (e.g., between experiments).
  void Clear();

  size_t num_sets() const { return num_sets_; }
  int ways() const { return ways_; }

 private:
  struct Way {
    uint64_t tag = kInvalidTag;
    uint32_t lru = 0;  // Higher = more recently used.
  };
  static constexpr uint64_t kInvalidTag = ~uint64_t{0};

  size_t num_sets_;
  int ways_;
  uint32_t clock_ = 0;
  std::vector<Way> ways_storage_;  // num_sets_ * ways_.
};

}  // namespace gpujoin::vgpu

#endif  // GPUJOIN_VGPU_L2_CACHE_H_
