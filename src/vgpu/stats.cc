#include "vgpu/stats.h"

#include <cstdio>

namespace gpujoin::vgpu {

std::string KernelStats::ToString() const {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "warp_instrs=%llu mem_instrs=%llu transactions=%llu sectors=%llu "
                "l2_hits=%llu dram=%llu sectors/req=%.2f l2_hit_rate=%.2f "
                "cycles=%.0f (compute=%.0f, memory=%.0f)",
                static_cast<unsigned long long>(warp_instructions),
                static_cast<unsigned long long>(mem_instructions),
                static_cast<unsigned long long>(transactions),
                static_cast<unsigned long long>(sectors),
                static_cast<unsigned long long>(l2_hit_sectors),
                static_cast<unsigned long long>(dram_sectors),
                AvgSectorsPerRequest(), L2HitRate(), cycles, compute_cycles,
                memory_cycles);
  return buf;
}

std::string MemoryStats::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "live=%.2f MB peak=%.2f MB allocs=%llu/%llu attempts "
                "failed=%llu (injected=%llu)",
                static_cast<double>(live_bytes) / 1e6,
                static_cast<double>(peak_bytes) / 1e6,
                static_cast<unsigned long long>(total_allocations),
                static_cast<unsigned long long>(alloc_attempts),
                static_cast<unsigned long long>(failed_allocations),
                static_cast<unsigned long long>(injected_failures));
  return buf;
}

}  // namespace gpujoin::vgpu
