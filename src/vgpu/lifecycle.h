// Query lifecycle control for the simulated device: cooperative
// cancellation and simulated-cycle deadlines.
//
// A LifecycleControl is installed on a Device for the duration of one query
// (non-owning, like KernelObserver). The device consults it at every kernel
// boundary (BeginKernel), after every clock advance (EndKernel /
// ChargeHostTransfer / AdvanceClock), and on every allocation attempt. When
// the control trips — the CancelToken was signalled, or the simulated clock
// passed the deadline — its status turns into a sticky structured
// kCancelled / kDeadlineExceeded error that the query layer observes at the
// next cooperative seam (an allocation, or an explicit LifecycleStatus()
// check between kernels / fragments) and propagates up through the same
// error paths the fault injector exercises, so cancellation at any point
// leaves zero outstanding allocations and a reusable device.
//
// Everything here is deterministic: deadlines are simulated cycles, the
// cancel-at-kernel test knob counts kernel launches, and no wall clock is
// ever read — the same query with the same deadline trips at the same
// kernel on every run, and a control with no deadline/token never perturbs
// simulated results (it is read-only with respect to the simulation).

#ifndef GPUJOIN_VGPU_LIFECYCLE_H_
#define GPUJOIN_VGPU_LIFECYCLE_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <string>

#include "common/status.h"

namespace gpujoin::vgpu {

/// Shared cancellation flag. Copyable handle over shared state, so a caller
/// can keep one end and hand the other to a running query (or to a
/// QueryService submission). Signalling is one-way and idempotent.
class CancelToken {
 public:
  CancelToken() : state_(std::make_shared<State>()) {}

  /// Requests cancellation. The first reason sticks; later calls are no-ops.
  void RequestCancel(std::string reason = "cancel requested") {
    if (!state_->cancelled) {
      state_->cancelled = true;
      state_->reason = std::move(reason);
    }
  }

  bool cancel_requested() const { return state_->cancelled; }
  const std::string& reason() const { return state_->reason; }

  /// True when two handles share the same underlying state.
  bool SameTokenAs(const CancelToken& other) const {
    return state_ == other.state_;
  }

 private:
  struct State {
    bool cancelled = false;
    std::string reason;
  };
  std::shared_ptr<State> state_;
};

/// Absolute simulated-cycle deadline. Infinite by default.
struct Deadline {
  double cycles = std::numeric_limits<double>::infinity();

  static Deadline Never() { return Deadline{}; }
  /// A deadline `budget` cycles after `now` (both simulated cycles).
  static Deadline AfterCycles(double now, double budget) {
    return Deadline{now + budget};
  }
  bool armed() const {
    return cycles != std::numeric_limits<double>::infinity();
  }
};

/// Per-query lifecycle state consulted by the Device. Install with
/// Device::set_lifecycle (or the RAII LifecycleScope); the control must
/// outlive its installation. Plain value state, no locks — the simulator is
/// single-threaded by design.
class LifecycleControl {
 public:
  LifecycleControl() = default;
  LifecycleControl(CancelToken token, Deadline deadline)
      : token_(std::move(token)), deadline_(deadline) {}

  CancelToken& token() { return token_; }
  const CancelToken& token() const { return token_; }
  void set_token(CancelToken token) { token_ = std::move(token); }

  const Deadline& deadline() const { return deadline_; }
  void set_deadline(Deadline deadline) { deadline_ = deadline; }

  /// Test/harness knob (GPUJOIN_CANCEL_AT_KERNEL): trip the token when the
  /// Nth kernel (1-based, counted since installation or Rearm) launches.
  /// 0 = disarmed. This is how the cancellation sweep hits every kernel
  /// boundary deterministically.
  void set_cancel_at_kernel(uint64_t nth) { cancel_at_kernel_ = nth; }
  uint64_t cancel_at_kernel() const { return cancel_at_kernel_; }

  // --- Preemption (scheduler yield) ---
  //
  // A yield trip turns the sticky status into kYielded at the next
  // cooperative seam — same unwind discipline as a cancellation (every
  // allocation freed, device back at its entry watermark) but NOT terminal:
  // the scheduler clears the trip with ClearYield() and re-runs the
  // interrupted fragment later. Cancel and deadline always outrank a
  // pending yield (a dead query must not be resumed).

  /// Trips kYielded once the simulated clock passes `cycles` (absolute).
  /// Infinity (the default) disarms. The scheduler arms this with the
  /// arrival time of the next higher-priority query before each fragment.
  void set_yield_at_cycles(double cycles) { yield_at_cycles_ = cycles; }
  double yield_at_cycles() const { return yield_at_cycles_; }

  /// Test knob mirroring cancel_at_kernel: trips kYielded when the Nth
  /// kernel (1-based, counted since installation or Rearm) launches.
  /// 0 = disarmed. Lets tests force a preemption at every kernel seam.
  void set_yield_at_kernel(uint64_t nth) { yield_at_kernel_ = nth; }
  uint64_t yield_at_kernel() const { return yield_at_kernel_; }

  /// True while the sticky status is a yield (the control is preempted,
  /// not dead).
  bool yielded() const { return status_.IsYielded(); }

  /// Clears a kYielded trip and disarms both yield triggers so the query
  /// can resume; kernel counters and cancel/deadline state are untouched.
  /// No-op unless the current sticky status is a yield.
  void ClearYield() {
    yield_at_cycles_ = std::numeric_limits<double>::infinity();
    yield_at_kernel_ = 0;
    if (status_.IsYielded()) status_ = Status::OK();
  }

  /// Kernels launched while this control was installed.
  uint64_t kernels_launched() const { return kernels_launched_; }

  /// Sticky status: OK until the control trips, then the structured
  /// kCancelled / kDeadlineExceeded error (first trip wins).
  const Status& status() const { return status_; }
  bool tripped() const { return !status_.ok(); }

  /// Clears the trip state, the kernel counter, and any armed yield
  /// triggers for reuse by a new query (the token and deadline are caller
  /// state and are left untouched).
  void Rearm() {
    status_ = Status::OK();
    kernels_launched_ = 0;
    yield_at_cycles_ = std::numeric_limits<double>::infinity();
    yield_at_kernel_ = 0;
  }

  // --- Device-side hooks (called by vgpu::Device; not for query code) ---

  /// Kernel boundary: counts the launch, fires the cancel-at-kernel knob,
  /// and evaluates token + deadline against the pre-kernel clock.
  void OnKernelLaunch(double elapsed_cycles) {
    ++kernels_launched_;
    if (cancel_at_kernel_ != 0 && kernels_launched_ == cancel_at_kernel_) {
      token_.RequestCancel("cancelled at kernel boundary " +
                           std::to_string(kernels_launched_));
    }
    if (yield_at_kernel_ != 0 && kernels_launched_ == yield_at_kernel_) {
      yield_at_cycles_ = -std::numeric_limits<double>::infinity();
    }
    Evaluate(elapsed_cycles);
  }

  /// Clock advance (EndKernel, host transfer, backoff sleep): re-evaluates
  /// the deadline only — a cancel request is picked up at the next kernel
  /// boundary or allocation.
  void OnClockAdvance(double elapsed_cycles) { Evaluate(elapsed_cycles); }

  /// Evaluates token and deadline now; used by explicit checks.
  void Evaluate(double elapsed_cycles) {
    if (tripped()) return;
    if (token_.cancel_requested()) {
      status_ = Status::Cancelled(
          "query cancelled after " + std::to_string(kernels_launched_) +
          " kernel(s): " + token_.reason());
      return;
    }
    if (deadline_.armed() && elapsed_cycles > deadline_.cycles) {
      status_ = Status::DeadlineExceeded(
          "simulated-cycle deadline exceeded: " +
          std::to_string(elapsed_cycles) + " cycles elapsed, deadline " +
          std::to_string(deadline_.cycles) + " (after " +
          std::to_string(kernels_launched_) + " kernel(s))");
      return;
    }
    if (elapsed_cycles >= yield_at_cycles_) {
      status_ = Status::Yielded(
          "preempted at seam: " + std::to_string(elapsed_cycles) +
          " cycles elapsed, yield point " + std::to_string(yield_at_cycles_) +
          " (after " + std::to_string(kernels_launched_) + " kernel(s))");
    }
  }

 private:
  CancelToken token_;
  Deadline deadline_;
  uint64_t cancel_at_kernel_ = 0;
  uint64_t yield_at_kernel_ = 0;
  double yield_at_cycles_ = std::numeric_limits<double>::infinity();
  uint64_t kernels_launched_ = 0;
  Status status_;
};

}  // namespace gpujoin::vgpu

#endif  // GPUJOIN_VGPU_LIFECYCLE_H_
