// DeviceBuffer<T>: a typed array in simulated device memory.
//
// The element storage lives in host memory (the simulator computes real
// results); the buffer additionally owns a range of simulated device
// addresses so that every element has a stable address for the memory model:
// addr(i) = base_addr + i * sizeof(T).

#ifndef GPUJOIN_VGPU_BUFFER_H_
#define GPUJOIN_VGPU_BUFFER_H_

#include <cassert>
#include <cstdint>
#include <limits>
#include <span>
#include <utility>
#include <vector>

#include "common/status.h"
#include "vgpu/device.h"

namespace gpujoin::vgpu {

template <typename T>
class DeviceBuffer {
 public:
  /// Creates an empty (unallocated) buffer.
  DeviceBuffer() = default;

  /// Allocates a buffer of n elements on `device` (zero-initialized).
  /// `tag` names the allocation site for leak attribution.
  static Result<DeviceBuffer<T>> Allocate(Device& device, uint64_t n,
                                          const char* tag = nullptr) {
    // n * sizeof(T) must not wrap: a wrapped (tiny) byte count would pass
    // the capacity check and then die in the host mirror's assign below.
    if (n > std::numeric_limits<uint64_t>::max() / sizeof(T)) {
      return Status::OutOfMemory(
          "DeviceBuffer::Allocate: " + std::to_string(n) + " elements of " +
          std::to_string(sizeof(T)) + " B overflow the byte size");
    }
    GPUJOIN_ASSIGN_OR_RETURN(uint64_t addr,
                             device.AllocateRaw(n * sizeof(T), tag));
    DeviceBuffer<T> buf;
    buf.device_ = &device;
    buf.base_addr_ = addr;
    buf.data_.assign(n, T{});
    return buf;
  }

  /// Allocates and copies host data in.
  static Result<DeviceBuffer<T>> FromHost(Device& device, std::span<const T> host,
                                          const char* tag = nullptr) {
    GPUJOIN_ASSIGN_OR_RETURN(DeviceBuffer<T> buf,
                             Allocate(device, host.size(), tag));
    std::copy(host.begin(), host.end(), buf.data_.begin());
    return buf;
  }

  ~DeviceBuffer() { Release(); }

  DeviceBuffer(const DeviceBuffer&) = delete;
  DeviceBuffer& operator=(const DeviceBuffer&) = delete;

  DeviceBuffer(DeviceBuffer&& other) noexcept { *this = std::move(other); }
  DeviceBuffer& operator=(DeviceBuffer&& other) noexcept {
    if (this != &other) {
      Release();
      device_ = other.device_;
      base_addr_ = other.base_addr_;
      data_ = std::move(other.data_);
      other.device_ = nullptr;
      other.base_addr_ = 0;
      other.data_.clear();
    }
    return *this;
  }

  /// Frees the simulated allocation; the buffer becomes empty.
  void Release() {
    if (device_ != nullptr) {
      // Free cannot fail for a live allocation: a failure means a
      // double-free or a stale device pointer, which would silently corrupt
      // live_bytes accounting — surface it in debug builds.
      const Status st = device_->FreeRaw(base_addr_);
      (void)st;
      assert(st.ok() &&
             "DeviceBuffer::Release: FreeRaw failed (double free or stale "
             "device?)");
      device_ = nullptr;
      base_addr_ = 0;
      data_.clear();
    }
  }

  bool empty() const { return data_.empty(); }
  uint64_t size() const { return data_.size(); }
  uint64_t size_bytes() const { return data_.size() * sizeof(T); }

  /// Device address of element i.
  uint64_t addr(uint64_t i = 0) const { return base_addr_ + i * sizeof(T); }

  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }
  T& operator[](uint64_t i) { return data_[i]; }
  const T& operator[](uint64_t i) const { return data_[i]; }

  std::span<T> span() { return {data_.data(), data_.size()}; }
  std::span<const T> span() const { return {data_.data(), data_.size()}; }

  Device* device() const { return device_; }

 private:
  Device* device_ = nullptr;
  uint64_t base_addr_ = 0;
  std::vector<T> data_;
};

}  // namespace gpujoin::vgpu

#endif  // GPUJOIN_VGPU_BUFFER_H_
