// Per-kernel profiling — the simulator's analog of NVIDIA Nsight Compute
// (§5.2.1 / Table 4 were produced with Nsight). The device aggregates the
// stats of every kernel execution by kernel name; the profiler renders the
// per-kernel table (invocations, cycles, instructions, sector efficiency,
// L2 hit rate, DRAM traffic).

#ifndef GPUJOIN_VGPU_PROFILER_H_
#define GPUJOIN_VGPU_PROFILER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "vgpu/stats.h"

namespace gpujoin::vgpu {

/// Aggregated statistics of all executions of one kernel name.
struct KernelProfile {
  std::string name;
  uint64_t invocations = 0;
  KernelStats stats;
};

class Profiler {
 public:
  /// Records one finished kernel execution.
  void Record(const char* name, const KernelStats& stats);

  /// Profiles aggregated by kernel name, ordered by total cycles (desc).
  std::vector<KernelProfile> Profiles() const;

  /// A profile for a specific kernel name (zeroed if never executed).
  KernelProfile ProfileFor(const std::string& name) const;

  /// Multi-line human-readable report (one row per kernel).
  std::string Report() const;

  void Clear() { by_name_.clear(); }
  bool empty() const { return by_name_.empty(); }

 private:
  std::map<std::string, KernelProfile> by_name_;
};

}  // namespace gpujoin::vgpu

#endif  // GPUJOIN_VGPU_PROFILER_H_
