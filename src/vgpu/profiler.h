// Per-kernel profiling — the simulator's analog of NVIDIA Nsight Compute
// (§5.2.1 / Table 4 were produced with Nsight). The device aggregates the
// stats of every kernel execution by kernel name; the profiler renders the
// per-kernel table (invocations, cycles, instructions, sector efficiency,
// L2 hit rate, DRAM traffic).
//
// Alongside simulated counters, the profiler records the *host* wall-clock
// spent simulating each kernel name (sim_wall_s). That column is pure
// simulator self-profiling: it shows where the simulator's own time goes,
// so perf work on the memory model can be targeted at the kernels that
// actually dominate host time.

#ifndef GPUJOIN_VGPU_PROFILER_H_
#define GPUJOIN_VGPU_PROFILER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "vgpu/stats.h"

namespace gpujoin::vgpu {

/// Aggregated statistics of all executions of one kernel name.
struct KernelProfile {
  std::string name;
  uint64_t invocations = 0;
  KernelStats stats;
  /// Host wall-clock seconds spent simulating this kernel (observability
  /// only; never feeds back into simulated results).
  double host_seconds = 0;
};

/// Process-wide tally of host wall-clock spent inside simulated kernels,
/// across every Device in the process (bench binaries construct several).
/// Observability only — deterministic simulated results never read it.
struct SimSelfProfile {
  double host_seconds = 0;
  /// CPU seconds summed across the parallel simulation path's worker
  /// threads (equal to host_seconds when GPUJOIN_SIM_THREADS=1); the
  /// wall-vs-CPU gap shows the realized fan-out.
  double host_cpu_seconds = 0;
  double sim_cycles = 0;
  uint64_t kernels = 0;
};
const SimSelfProfile& GlobalSimSelfProfile();
SimSelfProfile& MutableGlobalSimSelfProfile();
/// Zeroes the process-wide self-profile. The harness calls this after each
/// bench section's summary so back-to-back sections in one process report
/// per-section numbers, not inflated cumulative ones.
void ResetGlobalSimSelfProfile();

class Profiler {
 public:
  /// Records one finished kernel execution (and the host seconds spent
  /// simulating it).
  void Record(const char* name, const KernelStats& stats,
              double host_seconds = 0.0);

  /// Profiles aggregated by kernel name, ordered by total cycles (desc).
  std::vector<KernelProfile> Profiles() const;

  /// A profile for a specific kernel name (zeroed if never executed).
  KernelProfile ProfileFor(const std::string& name) const;

  /// Multi-line human-readable report (one row per kernel).
  std::string Report() const;

  /// Report() plus a trailing memory line (Table 5 counters: live/peak
  /// bytes, allocation attempts, failed + injected allocations). Pass
  /// device.memory_stats() — the profiler itself does not track memory.
  std::string Report(const MemoryStats& memory) const;

  /// Drops every per-kernel aggregate AND resets the process-wide
  /// SimSelfProfile: a cleared profiler starts a fresh observation window,
  /// and the global self-profile is part of that window.
  void Clear();
  bool empty() const { return by_name_.empty(); }

 private:
  std::map<std::string, KernelProfile> by_name_;
};

}  // namespace gpujoin::vgpu

#endif  // GPUJOIN_VGPU_PROFILER_H_
