#include "vgpu/profiler.h"

#include <algorithm>
#include <cstdio>

namespace gpujoin::vgpu {

SimSelfProfile& MutableGlobalSimSelfProfile() {
  static SimSelfProfile profile;
  return profile;
}

const SimSelfProfile& GlobalSimSelfProfile() {
  return MutableGlobalSimSelfProfile();
}

void ResetGlobalSimSelfProfile() {
  MutableGlobalSimSelfProfile() = SimSelfProfile{};
}

void Profiler::Clear() {
  by_name_.clear();
  ResetGlobalSimSelfProfile();
}

void Profiler::Record(const char* name, const KernelStats& stats,
                      double host_seconds) {
  KernelProfile& p = by_name_[name];
  if (p.invocations == 0) p.name = name;
  ++p.invocations;
  p.stats.Add(stats);
  p.host_seconds += host_seconds;
}

std::vector<KernelProfile> Profiler::Profiles() const {
  std::vector<KernelProfile> out;
  out.reserve(by_name_.size());
  for (const auto& [name, profile] : by_name_) out.push_back(profile);
  std::sort(out.begin(), out.end(),
            [](const KernelProfile& a, const KernelProfile& b) {
              return a.stats.cycles > b.stats.cycles;
            });
  return out;
}

KernelProfile Profiler::ProfileFor(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    KernelProfile empty;
    empty.name = name;
    return empty;
  }
  return it->second;
}

std::string Profiler::Report() const {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line),
                "%-24s %6s %12s %10s %9s %7s %10s %11s\n", "kernel", "calls",
                "cycles", "warp_instr", "sect/req", "l2_hit", "dram(MB)",
                "sim_wall_s");
  out += line;
  for (const KernelProfile& p : Profiles()) {
    std::snprintf(line, sizeof(line),
                  "%-24s %6llu %12.0f %10llu %9.2f %6.1f%% %10.2f %11.4f\n",
                  p.name.c_str(), static_cast<unsigned long long>(p.invocations),
                  p.stats.cycles,
                  static_cast<unsigned long long>(p.stats.warp_instructions),
                  p.stats.AvgSectorsPerRequest(), p.stats.L2HitRate() * 100.0,
                  static_cast<double>(p.stats.dram_sectors) * 32.0 / 1e6,
                  p.host_seconds);
    out += line;
  }
  return out;
}

std::string Profiler::Report(const MemoryStats& memory) const {
  return Report() + "memory: " + memory.ToString() + "\n";
}

}  // namespace gpujoin::vgpu
