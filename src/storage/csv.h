// CSV import/export for host tables — minimal but strict: a header row of
// "name:type" fields (type in {i32,i64}), integer-valued cells, comma
// separated. Intended for loading small reference datasets into examples
// and dumping experiment outputs; not a general CSV parser.

#ifndef GPUJOIN_STORAGE_CSV_H_
#define GPUJOIN_STORAGE_CSV_H_

#include <string>

#include "common/status.h"
#include "storage/table.h"

namespace gpujoin {

/// Serializes a host table ("name:type" header + one line per row).
std::string WriteCsvString(const HostTable& table);
Status WriteCsvFile(const HostTable& table, const std::string& path);

/// Parses the format produced by WriteCsv*.
Result<HostTable> ReadCsvString(const std::string& data, std::string table_name);
Result<HostTable> ReadCsvFile(const std::string& path, std::string table_name);

}  // namespace gpujoin

#endif  // GPUJOIN_STORAGE_CSV_H_
