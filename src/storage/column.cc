#include "storage/column.h"

#include <limits>

namespace gpujoin {

Result<DeviceColumn> DeviceColumn::Allocate(vgpu::Device& device, DataType type,
                                            uint64_t n, const char* tag) {
  if (n > kMaxRows) {
    return Status::InvalidArgument("column too large: " + std::to_string(n));
  }
  DeviceColumn col;
  col.type_ = type;
  if (type == DataType::kInt32) {
    GPUJOIN_ASSIGN_OR_RETURN(
        auto buf, vgpu::DeviceBuffer<int32_t>::Allocate(device, n, tag));
    col.buf_ = std::move(buf);
  } else {
    GPUJOIN_ASSIGN_OR_RETURN(
        auto buf, vgpu::DeviceBuffer<int64_t>::Allocate(device, n, tag));
    col.buf_ = std::move(buf);
  }
  return col;
}

Result<DeviceColumn> DeviceColumn::FromHost(vgpu::Device& device, DataType type,
                                            std::span<const int64_t> values,
                                            const char* tag) {
  GPUJOIN_ASSIGN_OR_RETURN(DeviceColumn col,
                           Allocate(device, type, values.size(), tag));
  if (type == DataType::kInt32) {
    auto& buf = col.i32();
    for (uint64_t i = 0; i < values.size(); ++i) {
      const int64_t v = values[i];
      if (v < std::numeric_limits<int32_t>::min() ||
          v > std::numeric_limits<int32_t>::max()) {
        return Status::InvalidArgument("value " + std::to_string(v) +
                                       " does not fit int32 column");
      }
      buf[i] = static_cast<int32_t>(v);
    }
  } else {
    auto& buf = col.i64();
    for (uint64_t i = 0; i < values.size(); ++i) buf[i] = values[i];
  }
  return col;
}

DeviceColumn DeviceColumn::WrapI32(vgpu::DeviceBuffer<int32_t> buf) {
  DeviceColumn col;
  col.type_ = DataType::kInt32;
  col.buf_ = std::move(buf);
  return col;
}

DeviceColumn DeviceColumn::WrapI64(vgpu::DeviceBuffer<int64_t> buf) {
  DeviceColumn col;
  col.type_ = DataType::kInt64;
  col.buf_ = std::move(buf);
  return col;
}

uint64_t DeviceColumn::size() const {
  return type_ == DataType::kInt32
             ? std::get<vgpu::DeviceBuffer<int32_t>>(buf_).size()
             : std::get<vgpu::DeviceBuffer<int64_t>>(buf_).size();
}

uint64_t DeviceColumn::addr(uint64_t i) const {
  return type_ == DataType::kInt32
             ? std::get<vgpu::DeviceBuffer<int32_t>>(buf_).addr(i)
             : std::get<vgpu::DeviceBuffer<int64_t>>(buf_).addr(i);
}

int64_t DeviceColumn::Get(uint64_t i) const {
  return type_ == DataType::kInt32
             ? static_cast<int64_t>(std::get<vgpu::DeviceBuffer<int32_t>>(buf_)[i])
             : std::get<vgpu::DeviceBuffer<int64_t>>(buf_)[i];
}

void DeviceColumn::Set(uint64_t i, int64_t v) {
  if (type_ == DataType::kInt32) {
    std::get<vgpu::DeviceBuffer<int32_t>>(buf_)[i] = static_cast<int32_t>(v);
  } else {
    std::get<vgpu::DeviceBuffer<int64_t>>(buf_)[i] = v;
  }
}

std::vector<int64_t> DeviceColumn::ToHost() const {
  std::vector<int64_t> out(size());
  for (uint64_t i = 0; i < out.size(); ++i) out[i] = Get(i);
  return out;
}

void DeviceColumn::Release() {
  if (type_ == DataType::kInt32) {
    std::get<vgpu::DeviceBuffer<int32_t>>(buf_).Release();
  } else {
    std::get<vgpu::DeviceBuffer<int64_t>>(buf_).Release();
  }
}

}  // namespace gpujoin
