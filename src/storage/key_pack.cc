#include "storage/key_pack.h"

namespace gpujoin {

Result<DeviceColumn> PackKeyColumns(vgpu::Device& device, const DeviceColumn& hi,
                                    const DeviceColumn& lo) {
  if (hi.type() != DataType::kInt32 || lo.type() != DataType::kInt32) {
    return Status::InvalidArgument("PackKeyColumns: inputs must be int32");
  }
  if (hi.size() != lo.size()) {
    return Status::InvalidArgument("PackKeyColumns: size mismatch");
  }
  const uint64_t n = hi.size();
  GPUJOIN_ASSIGN_OR_RETURN(DeviceColumn out,
                           DeviceColumn::Allocate(device, DataType::kInt64, n));
  vgpu::KernelScope ks(device, "key_pack");
  device.LoadSeq(hi.addr(), n, 4);
  device.LoadSeq(lo.addr(), n, 4);
  for (uint64_t i = 0; i < n; ++i) {
    const int64_t h = hi.Get(i);
    const int64_t l = lo.Get(i);
    if (h < 0 || l < 0) {
      return Status::InvalidArgument("PackKeyColumns: negative key component");
    }
    out.Set(i, (h << 32) | l);
  }
  device.StoreSeq(out.addr(), n, 8);
  return out;
}

Result<std::pair<DeviceColumn, DeviceColumn>> UnpackKeyColumn(
    vgpu::Device& device, const DeviceColumn& packed) {
  if (packed.type() != DataType::kInt64) {
    return Status::InvalidArgument("UnpackKeyColumn: input must be int64");
  }
  const uint64_t n = packed.size();
  GPUJOIN_ASSIGN_OR_RETURN(DeviceColumn hi,
                           DeviceColumn::Allocate(device, DataType::kInt32, n));
  GPUJOIN_ASSIGN_OR_RETURN(DeviceColumn lo,
                           DeviceColumn::Allocate(device, DataType::kInt32, n));
  vgpu::KernelScope ks(device, "key_unpack");
  device.LoadSeq(packed.addr(), n, 8);
  for (uint64_t i = 0; i < n; ++i) {
    const int64_t v = packed.Get(i);
    hi.Set(i, v >> 32);
    lo.Set(i, v & 0xffffffff);
  }
  device.StoreSeq(hi.addr(), n, 4);
  device.StoreSeq(lo.addr(), n, 4);
  return std::make_pair(std::move(hi), std::move(lo));
}

}  // namespace gpujoin
