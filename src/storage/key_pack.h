// Composite-key support by key packing: two 4-byte non-negative key columns
// are packed into one int64 column ((hi << 32) | lo), turning a multi-column
// equi-join or group-by into the single-key form the operators consume.
// The standard trick GPU engines use before radix-based operators.

#ifndef GPUJOIN_STORAGE_KEY_PACK_H_
#define GPUJOIN_STORAGE_KEY_PACK_H_

#include <utility>

#include "common/status.h"
#include "storage/column.h"
#include "vgpu/device.h"

namespace gpujoin {

/// packed[i] = (hi[i] << 32) | lo[i]. Both inputs must be non-negative
/// int32 columns of equal size. One streaming kernel.
Result<DeviceColumn> PackKeyColumns(vgpu::Device& device, const DeviceColumn& hi,
                                    const DeviceColumn& lo);

/// Inverse of PackKeyColumns.
Result<std::pair<DeviceColumn, DeviceColumn>> UnpackKeyColumn(
    vgpu::Device& device, const DeviceColumn& packed);

}  // namespace gpujoin

#endif  // GPUJOIN_STORAGE_KEY_PACK_H_
