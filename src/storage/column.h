// DeviceColumn: a type-erased column of int32 or int64 values resident in
// simulated device memory. Generic code uses the widened Get/Set accessors;
// performance-sensitive kernels dispatch to the typed buffers.

#ifndef GPUJOIN_STORAGE_COLUMN_H_
#define GPUJOIN_STORAGE_COLUMN_H_

#include <cstdint>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "common/status.h"
#include "storage/types.h"
#include "vgpu/buffer.h"

namespace gpujoin {

class DeviceColumn {
 public:
  DeviceColumn() = default;

  /// Allocates a zero-initialized column of n values. `tag` names the
  /// allocation site for leak attribution.
  static Result<DeviceColumn> Allocate(vgpu::Device& device, DataType type,
                                       uint64_t n, const char* tag = nullptr);
  /// Allocates and fills from widened host values. Values must fit the type.
  static Result<DeviceColumn> FromHost(vgpu::Device& device, DataType type,
                                       std::span<const int64_t> values,
                                       const char* tag = nullptr);

  /// Wraps an existing device buffer as a column (takes ownership).
  static DeviceColumn WrapI32(vgpu::DeviceBuffer<int32_t> buf);
  static DeviceColumn WrapI64(vgpu::DeviceBuffer<int64_t> buf);

  DeviceColumn(DeviceColumn&&) = default;
  DeviceColumn& operator=(DeviceColumn&&) = default;
  DeviceColumn(const DeviceColumn&) = delete;
  DeviceColumn& operator=(const DeviceColumn&) = delete;

  DataType type() const { return type_; }
  uint64_t size() const;
  bool empty() const { return size() == 0; }
  uint64_t size_bytes() const { return size() * DataTypeSize(type_); }
  /// Device address of element i.
  uint64_t addr(uint64_t i = 0) const;

  /// Widened element access (functional only; does not touch the cost model).
  int64_t Get(uint64_t i) const;
  void Set(uint64_t i, int64_t v);

  /// Typed access. Calling the mismatched accessor aborts.
  vgpu::DeviceBuffer<int32_t>& i32() { return std::get<vgpu::DeviceBuffer<int32_t>>(buf_); }
  const vgpu::DeviceBuffer<int32_t>& i32() const {
    return std::get<vgpu::DeviceBuffer<int32_t>>(buf_);
  }
  vgpu::DeviceBuffer<int64_t>& i64() { return std::get<vgpu::DeviceBuffer<int64_t>>(buf_); }
  const vgpu::DeviceBuffer<int64_t>& i64() const {
    return std::get<vgpu::DeviceBuffer<int64_t>>(buf_);
  }

  /// Copies the whole column out as widened host values (for tests/output).
  std::vector<int64_t> ToHost() const;

  /// Releases the device allocation.
  void Release();

 private:
  DataType type_ = DataType::kInt32;
  std::variant<vgpu::DeviceBuffer<int32_t>, vgpu::DeviceBuffer<int64_t>> buf_;
};

}  // namespace gpujoin

#endif  // GPUJOIN_STORAGE_COLUMN_H_
