#include "storage/csv.h"

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

namespace gpujoin {

namespace {

std::vector<std::string> SplitComma(const std::string& line) {
  std::vector<std::string> out;
  std::string cell;
  std::stringstream ss(line);
  while (std::getline(ss, cell, ',')) out.push_back(cell);
  if (!line.empty() && line.back() == ',') out.emplace_back();
  return out;
}

}  // namespace

std::string WriteCsvString(const HostTable& table) {
  std::string out;
  for (size_t c = 0; c < table.columns.size(); ++c) {
    if (c > 0) out += ',';
    out += table.columns[c].name + ':' +
           (table.columns[c].type == DataType::kInt32 ? "i32" : "i64");
  }
  out += '\n';
  for (uint64_t r = 0; r < table.num_rows(); ++r) {
    for (size_t c = 0; c < table.columns.size(); ++c) {
      if (c > 0) out += ',';
      out += std::to_string(table.columns[c].values[r]);
    }
    out += '\n';
  }
  return out;
}

Status WriteCsvFile(const HostTable& table, const std::string& path) {
  std::ofstream f(path);
  if (!f.is_open()) {
    return Status::InvalidArgument("cannot open " + path + " for writing");
  }
  f << WriteCsvString(table);
  return f.good() ? Status::OK()
                  : Status::Internal("write to " + path + " failed");
}

Result<HostTable> ReadCsvString(const std::string& data, std::string table_name) {
  std::stringstream ss(data);
  std::string line;
  if (!std::getline(ss, line) || line.empty()) {
    return Status::InvalidArgument("CSV: missing header");
  }
  HostTable table;
  table.name = std::move(table_name);
  for (const std::string& field : SplitComma(line)) {
    const size_t colon = field.rfind(':');
    if (colon == std::string::npos) {
      return Status::InvalidArgument("CSV header field '" + field +
                                     "' lacks a :type suffix");
    }
    HostColumn col;
    col.name = field.substr(0, colon);
    const std::string type = field.substr(colon + 1);
    if (type == "i32") {
      col.type = DataType::kInt32;
    } else if (type == "i64") {
      col.type = DataType::kInt64;
    } else {
      return Status::InvalidArgument("CSV: unknown type '" + type + "'");
    }
    table.columns.push_back(std::move(col));
  }
  uint64_t row = 0;
  while (std::getline(ss, line)) {
    if (line.empty()) continue;
    const auto cells = SplitComma(line);
    if (cells.size() != table.columns.size()) {
      return Status::InvalidArgument("CSV row " + std::to_string(row) + " has " +
                                     std::to_string(cells.size()) +
                                     " cells, expected " +
                                     std::to_string(table.columns.size()));
    }
    for (size_t c = 0; c < cells.size(); ++c) {
      errno = 0;
      char* end = nullptr;
      const long long v = std::strtoll(cells[c].c_str(), &end, 10);
      if (errno != 0 || end == cells[c].c_str() || *end != '\0') {
        return Status::InvalidArgument("CSV: bad integer '" + cells[c] +
                                       "' at row " + std::to_string(row));
      }
      table.columns[c].values.push_back(v);
    }
    ++row;
  }
  return table;
}

Result<HostTable> ReadCsvFile(const std::string& path, std::string table_name) {
  std::ifstream f(path);
  if (!f.is_open()) {
    return Status::InvalidArgument("cannot open " + path);
  }
  std::stringstream buf;
  buf << f.rdbuf();
  return ReadCsvString(buf.str(), std::move(table_name));
}

}  // namespace gpujoin
