#include "storage/dictionary.h"

namespace gpujoin {

int64_t DictionaryEncoder::Encode(std::string_view value) {
  auto it = codes_.find(std::string(value));
  if (it != codes_.end()) return it->second;
  const int64_t code = static_cast<int64_t>(values_.size());
  values_.emplace_back(value);
  codes_.emplace(values_.back(), code);
  return code;
}

Result<std::string> DictionaryEncoder::Decode(int64_t code) const {
  if (code < 0 || static_cast<size_t>(code) >= values_.size()) {
    return Status::InvalidArgument("unknown dictionary code " +
                                   std::to_string(code));
  }
  return values_[static_cast<size_t>(code)];
}

int64_t DictionaryEncoder::Lookup(std::string_view value) const {
  auto it = codes_.find(std::string(value));
  return it == codes_.end() ? -1 : it->second;
}

}  // namespace gpujoin
