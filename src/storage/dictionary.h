// Dictionary encoding of strings to dense integer codes (§5.3: "we transform
// strings into numeric values by dictionary encoding"). Used by the TPC-H/DS
// workload generators to turn string attributes into joinable/aggregatable
// integer columns.

#ifndef GPUJOIN_STORAGE_DICTIONARY_H_
#define GPUJOIN_STORAGE_DICTIONARY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace gpujoin {

class DictionaryEncoder {
 public:
  /// Returns the code for `value`, assigning the next dense code on first
  /// sight. Codes start at 0.
  int64_t Encode(std::string_view value);

  /// Returns the string for a code, or an error for unknown codes.
  Result<std::string> Decode(int64_t code) const;

  /// Code already assigned? Returns -1 if not present (does not insert).
  int64_t Lookup(std::string_view value) const;

  size_t size() const { return values_.size(); }

 private:
  std::unordered_map<std::string, int64_t> codes_;
  std::vector<std::string> values_;
};

}  // namespace gpujoin

#endif  // GPUJOIN_STORAGE_DICTIONARY_H_
