// Device-resident columnar table. Column 0 is by convention the join key
// unless a JoinSpec says otherwise; remaining columns are payload ("non-key")
// attributes, matching the paper's R(k, r1, ..., rn) notation.

#ifndef GPUJOIN_STORAGE_TABLE_H_
#define GPUJOIN_STORAGE_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include <memory>

#include "common/status.h"
#include "storage/column.h"
#include "storage/dictionary.h"

namespace gpujoin {

/// Host-side staging representation of a column (used by generators).
/// String data is staged in `strings` and dictionary-encoded into int64
/// codes on upload (§5.3 of the paper); integer data is staged widened in
/// `values`.
struct HostColumn {
  std::string name;
  DataType type = DataType::kInt32;
  std::vector<int64_t> values;  // Widened integer data.
  /// Non-empty marks a string column: encoded on upload, `values` ignored.
  std::vector<std::string> strings;

  bool is_string() const { return !strings.empty(); }
  uint64_t size() const { return is_string() ? strings.size() : values.size(); }
};

/// Host-side staging table.
struct HostTable {
  std::string name;
  std::vector<HostColumn> columns;

  uint64_t num_rows() const { return columns.empty() ? 0 : columns.front().size(); }
};

class Table {
 public:
  Table() = default;
  Table(Table&&) = default;
  Table& operator=(Table&&) = default;
  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  /// Uploads a host table to the device.
  static Result<Table> FromHost(vgpu::Device& device, const HostTable& host);

  /// Creates a table from already-built device columns.
  static Table FromColumns(std::string name, std::vector<std::string> col_names,
                           std::vector<DeviceColumn> cols);

  const std::string& name() const { return name_; }
  uint64_t num_rows() const { return columns_.empty() ? 0 : columns_[0].size(); }
  int num_columns() const { return static_cast<int>(columns_.size()); }

  DeviceColumn& column(int i) { return columns_[i]; }
  const DeviceColumn& column(int i) const { return columns_[i]; }
  const std::string& column_name(int i) const { return column_names_[i]; }

  /// Sum of column byte sizes (the paper's "relation size in GB").
  uint64_t total_bytes() const;

  /// Copies back to host (for verification and display).
  HostTable ToHost() const;

  /// Appends a column; must match num_rows() unless the table is empty.
  Status AddColumn(std::string name, DeviceColumn col);

  /// Moves column i out of the table (the table keeps an empty placeholder;
  /// callers typically discard the table afterwards).
  DeviceColumn TakeColumn(int i) { return std::move(columns_[i]); }

  /// Dictionary of a string column uploaded via FromHost (nullptr for plain
  /// integer columns). Operator outputs do not carry dictionaries; decode
  /// joined/aggregated codes through the *input* table's dictionary.
  const DictionaryEncoder* dictionary(int i) const {
    return i < static_cast<int>(dicts_.size()) ? dicts_[i].get() : nullptr;
  }

 private:
  std::string name_;
  std::vector<std::string> column_names_;
  std::vector<DeviceColumn> columns_;
  std::vector<std::shared_ptr<DictionaryEncoder>> dicts_;
};

}  // namespace gpujoin

#endif  // GPUJOIN_STORAGE_TABLE_H_
