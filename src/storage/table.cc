#include "storage/table.h"

namespace gpujoin {

Result<Table> Table::FromHost(vgpu::Device& device, const HostTable& host) {
  Table t;
  t.name_ = host.name;
  const uint64_t rows = host.num_rows();
  // Every uploaded column is attributed to the host table it came from.
  vgpu::AllocTagScope tag_scope(device, "upload:" + host.name);
  for (const HostColumn& hc : host.columns) {
    if (hc.size() != rows) {
      return Status::InvalidArgument("column " + hc.name +
                                     " has mismatched row count");
    }
    if (hc.is_string()) {
      // Dictionary-encode on upload (§5.3); the dictionary stays attached
      // to the table for decoding results.
      auto dict = std::make_shared<DictionaryEncoder>();
      std::vector<int64_t> codes(rows);
      for (uint64_t i = 0; i < rows; ++i) codes[i] = dict->Encode(hc.strings[i]);
      GPUJOIN_ASSIGN_OR_RETURN(
          DeviceColumn col,
          DeviceColumn::FromHost(device, hc.type, codes, hc.name.c_str()));
      t.column_names_.push_back(hc.name);
      t.columns_.push_back(std::move(col));
      t.dicts_.push_back(std::move(dict));
      continue;
    }
    GPUJOIN_ASSIGN_OR_RETURN(DeviceColumn col,
                             DeviceColumn::FromHost(device, hc.type, hc.values,
                                                    hc.name.c_str()));
    t.column_names_.push_back(hc.name);
    t.columns_.push_back(std::move(col));
    t.dicts_.push_back(nullptr);
  }
  return t;
}

Table Table::FromColumns(std::string name, std::vector<std::string> col_names,
                         std::vector<DeviceColumn> cols) {
  Table t;
  t.name_ = std::move(name);
  t.column_names_ = std::move(col_names);
  t.columns_ = std::move(cols);
  return t;
}

uint64_t Table::total_bytes() const {
  uint64_t total = 0;
  for (const DeviceColumn& c : columns_) total += c.size_bytes();
  return total;
}

HostTable Table::ToHost() const {
  HostTable host;
  host.name = name_;
  for (int i = 0; i < num_columns(); ++i) {
    HostColumn hc;
    hc.name = column_names_[i];
    hc.type = columns_[i].type();
    hc.values = columns_[i].ToHost();
    if (const DictionaryEncoder* dict = dictionary(i)) {
      hc.strings.reserve(hc.values.size());
      for (int64_t code : hc.values) {
        auto str = dict->Decode(code);
        hc.strings.push_back(str.ok() ? *str : "<bad code>");
      }
    }
    host.columns.push_back(std::move(hc));
  }
  return host;
}

Status Table::AddColumn(std::string name, DeviceColumn col) {
  if (!columns_.empty() && col.size() != num_rows()) {
    return Status::InvalidArgument("AddColumn row-count mismatch for " + name);
  }
  column_names_.push_back(std::move(name));
  columns_.push_back(std::move(col));
  return Status::OK();
}

}  // namespace gpujoin
