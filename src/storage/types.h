// Column data types. The paper evaluates 4-byte and 8-byte integer keys and
// payloads (strings are dictionary-encoded to integers, §5.3); we support
// exactly those physical types.

#ifndef GPUJOIN_STORAGE_TYPES_H_
#define GPUJOIN_STORAGE_TYPES_H_

#include <cstddef>
#include <cstdint>

namespace gpujoin {

enum class DataType {
  kInt32,
  kInt64,
};

inline constexpr size_t DataTypeSize(DataType t) {
  return t == DataType::kInt32 ? 4 : 8;
}

inline constexpr const char* DataTypeName(DataType t) {
  return t == DataType::kInt32 ? "int32" : "int64";
}

/// Row/tuple index type used throughout (tuple identifiers, gather maps).
/// The paper uses 4-byte physical IDs; we keep 32-bit ids and check sizes.
using RowId = uint32_t;

inline constexpr uint64_t kMaxRows = uint64_t{1} << 31;

}  // namespace gpujoin

#endif  // GPUJOIN_STORAGE_TYPES_H_
