// Zipfian key generator (§5.2.4): foreign keys drawn from [0, n) with
// P(rank k) proportional to 1 / k^theta. theta = 0 degenerates to uniform.
// Implemented with a precomputed CDF + binary search (deterministic, seeded),
// the same construction Balkesen et al.'s generator uses.

#ifndef GPUJOIN_WORKLOAD_ZIPF_H_
#define GPUJOIN_WORKLOAD_ZIPF_H_

#include <cstdint>
#include <random>
#include <vector>

namespace gpujoin::workload {

class ZipfGenerator {
 public:
  /// Draws values in [0, n). theta >= 0; theta == 0 is uniform.
  ZipfGenerator(uint64_t n, double theta, uint64_t seed);

  uint64_t Next();

  uint64_t domain() const { return n_; }
  double theta() const { return theta_; }

 private:
  uint64_t n_;
  double theta_;
  std::mt19937_64 rng_;
  std::uniform_real_distribution<double> unit_{0.0, 1.0};
  std::vector<double> cdf_;  // Empty when theta == 0 (uniform fast path).
};

}  // namespace gpujoin::workload

#endif  // GPUJOIN_WORKLOAD_ZIPF_H_
