// Synthetic join workload generator, following the paper's §5.1 description:
// R holds shuffled primary keys 0..|R|-1, S holds foreign keys drawn from
// R's key domain (uniform or Zipfian); payloads are random integers of the
// requested width; the match ratio is adjusted by replacing a fraction of
// R's primary keys with values outside S's domain (§5.2.3).

#ifndef GPUJOIN_WORKLOAD_GENERATOR_H_
#define GPUJOIN_WORKLOAD_GENERATOR_H_

#include <cstdint>
#include <utility>

#include "common/status.h"
#include "storage/table.h"

namespace gpujoin::workload {

struct JoinWorkloadSpec {
  uint64_t r_rows = 1 << 16;
  uint64_t s_rows = 1 << 17;
  int r_payload_cols = 1;
  int s_payload_cols = 1;
  DataType key_type = DataType::kInt32;
  DataType r_payload_type = DataType::kInt32;
  DataType s_payload_type = DataType::kInt32;
  /// Fraction of S tuples that find a partner in R (1.0 = every FK matches).
  double match_ratio = 1.0;
  /// Zipf factor of the foreign-key distribution (0 = uniform).
  double zipf_theta = 0.0;
  uint64_t seed = 42;

  Status Validate() const;
};

/// Generated host tables: first = R (primary-key side), second = S.
struct JoinWorkload {
  HostTable r;
  HostTable s;
};

Result<JoinWorkload> GenerateJoinInput(const JoinWorkloadSpec& spec);

/// Star-schema workload for join sequences (§5.2.7, Figure 16): a fact
/// table with `num_dims` foreign-key columns and `num_dims` dimension tables
/// of `dim_rows` tuples (primary key + one payload column) each.
struct StarSchemaSpec {
  uint64_t fact_rows = 1 << 17;
  int num_dims = 4;
  uint64_t dim_rows = 1 << 15;
  DataType key_type = DataType::kInt32;
  DataType payload_type = DataType::kInt32;
  uint64_t seed = 42;

  Status Validate() const;
};

struct StarSchema {
  HostTable fact;
  std::vector<HostTable> dims;
};

Result<StarSchema> GenerateStarSchema(const StarSchemaSpec& spec);

/// Group-by workload: `rows` tuples whose keys are drawn from `num_groups`
/// distinct values (uniform or Zipf-skewed) plus `payload_cols` payload
/// columns of the given type.
struct GroupByWorkloadSpec {
  uint64_t rows = 1 << 16;
  uint64_t num_groups = 1 << 10;
  int payload_cols = 1;
  DataType key_type = DataType::kInt32;
  DataType payload_type = DataType::kInt32;
  double zipf_theta = 0.0;
  uint64_t seed = 42;

  Status Validate() const;
};

Result<HostTable> GenerateGroupByInput(const GroupByWorkloadSpec& spec);

/// Computes per-relation sizes matching the paper's "xG ⋈ yG" notation:
/// rows such that (1 + payload_cols) columns of the given types total
/// `gigabytes` GB.
uint64_t RowsForGigabytes(double gigabytes, int payload_cols, DataType key_type,
                          DataType payload_type);

}  // namespace gpujoin::workload

#endif  // GPUJOIN_WORKLOAD_GENERATOR_H_
