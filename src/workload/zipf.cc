#include "workload/zipf.h"

#include <algorithm>
#include <cmath>

namespace gpujoin::workload {

ZipfGenerator::ZipfGenerator(uint64_t n, double theta, uint64_t seed)
    : n_(n == 0 ? 1 : n), theta_(theta), rng_(seed) {
  if (theta_ <= 0.0) return;
  cdf_.resize(n_);
  double sum = 0.0;
  for (uint64_t k = 0; k < n_; ++k) {
    sum += 1.0 / std::pow(static_cast<double>(k + 1), theta_);
    cdf_[k] = sum;
  }
  const double inv = 1.0 / sum;
  for (double& v : cdf_) v *= inv;
  cdf_.back() = 1.0;  // Guard against rounding.
}

uint64_t ZipfGenerator::Next() {
  if (cdf_.empty()) {
    return rng_() % n_;
  }
  const double u = unit_(rng_);
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<uint64_t>(it - cdf_.begin());
}

}  // namespace gpujoin::workload
