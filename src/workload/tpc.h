// TPC-H / TPC-DS join workloads (Table 6 of the paper).
//
// No dbgen/dsdgen data is available offline, so these generators reproduce
// the *join specifications* the paper extracted from DuckDB query plans:
// the row counts (scaled), the key/non-key payload column layout, the match
// cardinalities (|R ⋈ S|), and dictionary-encoded string attributes with
// shuffled rows. See DESIGN.md §1 for the substitution rationale.

#ifndef GPUJOIN_WORKLOAD_TPC_H_
#define GPUJOIN_WORKLOAD_TPC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "workload/generator.h"

namespace gpujoin::workload {

struct TpcJoinSpec {
  std::string id;      // "J1".."J5".
  std::string source;  // e.g. "TPC-H Q7 (SF=10)".
  uint64_t r_rows;     // Paper-scale tuple counts.
  uint64_t s_rows;
  uint64_t out_rows;
  // Payload columns: "key" attributes are other PK/FK columns riding along
  // (4-byte ids); "non-key" attributes are 8-byte values (or strings,
  // dictionary-encoded).
  int r_key_payloads;
  int r_nonkey_payloads;
  int s_key_payloads;
  int s_nonkey_payloads;
  bool self_join;  // J5: S is the same relation as R, joined on foreign keys.
  bool pk_fk;

  /// Rows after scaling the paper-sized relation counts by
  /// (scale_tuples / 2^27), clamped to >= 1024.
  uint64_t ScaledR(uint64_t scale_tuples) const;
  uint64_t ScaledS(uint64_t scale_tuples) const;
};

/// The five joins of Table 6.
std::vector<TpcJoinSpec> TpcJoinSpecs();

struct TpcGenOptions {
  /// Canonical scale in tuples (paper: 2^27); relation sizes scale by
  /// scale_tuples / 2^27.
  uint64_t scale_tuples = uint64_t{1} << 20;
  /// Width of non-key payloads. The paper evaluates kInt64 (default,
  /// "4-byte keys + 8-byte non-keys") and an all-8-byte variant where keys
  /// are also 8 bytes.
  DataType nonkey_type = DataType::kInt64;
  DataType key_type = DataType::kInt32;
  uint64_t seed = 42;
};

Result<JoinWorkload> GenerateTpcJoin(const TpcJoinSpec& spec,
                                     const TpcGenOptions& options);

}  // namespace gpujoin::workload

#endif  // GPUJOIN_WORKLOAD_TPC_H_
