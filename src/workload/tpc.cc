#include "workload/tpc.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <random>

#include "storage/dictionary.h"

namespace gpujoin::workload {

namespace {

constexpr uint64_t kPaperScale = uint64_t{1} << 27;

uint64_t Scale(uint64_t paper_rows, uint64_t scale_tuples) {
  const double f =
      static_cast<double>(scale_tuples) / static_cast<double>(kPaperScale);
  return std::max<uint64_t>(
      1024, static_cast<uint64_t>(static_cast<double>(paper_rows) * f));
}

/// A small pool of realistic string values (dictionary-encoded into an
/// int64 payload column — §5.3's treatment of string attributes).
HostColumn MakeDictColumn(const std::string& name, uint64_t rows,
                          std::mt19937_64& rng) {
  static const char* kShipModes[] = {"AIR",   "AIR REG", "RAIL", "SHIP",
                                     "TRUCK", "MAIL",    "FOB"};
  DictionaryEncoder dict;
  HostColumn col;
  col.name = name;
  col.type = DataType::kInt64;
  col.values.resize(rows);
  for (auto& v : col.values) {
    v = dict.Encode(kShipModes[rng() % 7]);
  }
  return col;
}

void AppendPayloads(HostTable* t, const std::string& prefix, int key_payloads,
                    int nonkey_payloads, DataType nonkey_type,
                    std::mt19937_64& rng) {
  for (int c = 0; c < key_payloads; ++c) {
    HostColumn col;
    col.name = prefix + "_kp" + std::to_string(c + 1);
    col.type = DataType::kInt32;  // Other PK/FK ids are 4-byte.
    col.values.resize(t->num_rows());
    for (auto& v : col.values) v = static_cast<int64_t>(rng() & 0x7fffffff);
    t->columns.push_back(std::move(col));
  }
  for (int c = 0; c < nonkey_payloads; ++c) {
    if (c == 0) {
      // The first non-key attribute is a dictionary-encoded string column.
      HostColumn col = MakeDictColumn(prefix + "_dict", t->num_rows(), rng);
      if (nonkey_type == DataType::kInt32) col.type = DataType::kInt32;
      t->columns.push_back(std::move(col));
      continue;
    }
    HostColumn col;
    col.name = prefix + "_nk" + std::to_string(c + 1);
    col.type = nonkey_type;
    col.values.resize(t->num_rows());
    for (auto& v : col.values) {
      v = nonkey_type == DataType::kInt32
              ? static_cast<int64_t>(rng() & 0x7fffffff)
              : static_cast<int64_t>(rng() & 0x7fffffffffffffff);
    }
    t->columns.push_back(std::move(col));
  }
}

}  // namespace

uint64_t TpcJoinSpec::ScaledR(uint64_t scale_tuples) const {
  return Scale(r_rows, scale_tuples);
}
uint64_t TpcJoinSpec::ScaledS(uint64_t scale_tuples) const {
  return Scale(s_rows, scale_tuples);
}

std::vector<TpcJoinSpec> TpcJoinSpecs() {
  // Table 6. Row counts are the paper's (TPC-H SF=10, TPC-DS SF=100).
  return {
      // id, source, |R|, |S|, |T|, RK, RNK, SK, SNK, self, pkfk
      {"J1", "TPC-H Q7 (SF=10)", 15'000'000, 18'200'000, 18'200'000, 1, 3, 0, 1,
       false, true},
      {"J2", "TPC-H Q18 (SF=10)", 15'000'000, 60'000'000, 60'000'000, 1, 2, 0, 1,
       false, true},
      {"J3", "TPC-H Q19 (SF=10)", 2'000'000, 2'100'000, 2'100'000, 0, 3, 0, 3,
       false, true},
      {"J4", "TPC-DS Q64 (SF=100)", 1'900'000, 58'000'000, 58'000'000, 0, 1, 3, 7,
       false, true},
      {"J5", "TPC-DS Q95 (SF=100)", 72'000'000, 72'000'000, 904'000'000, 0, 1, 0,
       1, true, false},
  };
}

Result<JoinWorkload> GenerateTpcJoin(const TpcJoinSpec& spec,
                                     const TpcGenOptions& options) {
  std::mt19937_64 rng(options.seed);
  const uint64_t nr = spec.ScaledR(options.scale_tuples);
  const uint64_t ns = spec.ScaledS(options.scale_tuples);

  JoinWorkload out;
  out.r.name = spec.id + "_R";
  out.s.name = spec.id + "_S";

  HostColumn r_keys;
  r_keys.name = "r_key";
  r_keys.type = options.key_type;
  HostColumn s_keys;
  s_keys.name = "s_key";
  s_keys.type = options.key_type;

  if (spec.self_join) {
    // J5: a self foreign-key join. Both sides draw foreign keys from a
    // domain sized so that |R ⋈ S| / |S| matches the paper's ratio
    // (904M / 72M ≈ 12.6): with uniform draws, E[|T|] = nr * ns / domain.
    const double ratio = static_cast<double>(spec.out_rows) /
                         static_cast<double>(spec.s_rows);
    const uint64_t domain = std::max<uint64_t>(
        1, static_cast<uint64_t>(static_cast<double>(nr) / ratio));
    r_keys.values.resize(nr);
    for (auto& v : r_keys.values) v = static_cast<int64_t>(rng() % domain);
    s_keys.values = r_keys.values;  // The same relation on both sides.
  } else {
    // PK side: shuffled 0..|R|-1; FK side: uniform draws (100% match, as in
    // the paper's specs where |T| = |S|).
    r_keys.values.resize(nr);
    std::iota(r_keys.values.begin(), r_keys.values.end(), 0);
    std::shuffle(r_keys.values.begin(), r_keys.values.end(), rng);
    s_keys.values.resize(ns);
    for (auto& v : s_keys.values) v = static_cast<int64_t>(rng() % nr);
  }

  out.r.columns.push_back(std::move(r_keys));
  out.s.columns.push_back(std::move(s_keys));
  AppendPayloads(&out.r, "r", spec.r_key_payloads, spec.r_nonkey_payloads,
                 options.nonkey_type, rng);
  AppendPayloads(&out.s, "s", spec.s_key_payloads, spec.s_nonkey_payloads,
                 options.nonkey_type, rng);
  return out;
}

}  // namespace gpujoin::workload
