#include "workload/generator.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <random>

#include "workload/zipf.h"

namespace gpujoin::workload {

namespace {

int64_t RandomPayload(std::mt19937_64& rng, DataType type) {
  if (type == DataType::kInt32) {
    return static_cast<int64_t>(rng() & 0x7fffffffull);
  }
  return static_cast<int64_t>(rng() & 0x7fffffffffffffffull);
}

}  // namespace

Status JoinWorkloadSpec::Validate() const {
  if (r_rows == 0 || s_rows == 0) {
    return Status::InvalidArgument("workload: relations must be non-empty");
  }
  if (r_payload_cols < 0 || s_payload_cols < 0) {
    return Status::InvalidArgument("workload: negative payload column count");
  }
  if (match_ratio < 0.0 || match_ratio > 1.0) {
    return Status::InvalidArgument("workload: match_ratio must be in [0,1]");
  }
  if (zipf_theta < 0.0) {
    return Status::InvalidArgument("workload: zipf_theta must be >= 0");
  }
  if (key_type == DataType::kInt32 &&
      r_rows + s_rows > static_cast<uint64_t>(std::numeric_limits<int32_t>::max())) {
    return Status::InvalidArgument("workload: key domain exceeds int32");
  }
  return Status::OK();
}

Result<JoinWorkload> GenerateJoinInput(const JoinWorkloadSpec& spec) {
  GPUJOIN_RETURN_IF_ERROR(spec.Validate());
  std::mt19937_64 rng(spec.seed);

  JoinWorkload out;
  out.r.name = "R";
  out.s.name = "S";

  // R keys: 0..|R|-1 shuffled; a (1 - match_ratio) fraction is replaced by
  // values outside S's foreign-key domain so exactly match_ratio of S's
  // (uniform) foreign keys find a partner.
  std::vector<int64_t> r_keys(spec.r_rows);
  std::iota(r_keys.begin(), r_keys.end(), 0);
  const uint64_t non_matching = static_cast<uint64_t>(
      static_cast<double>(spec.r_rows) * (1.0 - spec.match_ratio) + 0.5);
  for (uint64_t i = 0; i < non_matching; ++i) {
    // Remove the *least popular* key values (highest Zipf ranks) and replace
    // them with unique values >= |R| that are never generated as foreign
    // keys. Under a uniform FK distribution the expected match ratio is
    // exact; under skew the ratio errs toward more matches, never fewer.
    r_keys[spec.r_rows - 1 - i] = static_cast<int64_t>(spec.r_rows + i);
  }
  std::shuffle(r_keys.begin(), r_keys.end(), rng);

  HostColumn r_key_col;
  r_key_col.name = "r_key";
  r_key_col.type = spec.key_type;
  r_key_col.values = std::move(r_keys);
  out.r.columns.push_back(std::move(r_key_col));
  for (int c = 0; c < spec.r_payload_cols; ++c) {
    HostColumn col;
    col.name = "r_pay" + std::to_string(c + 1);
    col.type = spec.r_payload_type;
    col.values.resize(spec.r_rows);
    for (auto& v : col.values) v = RandomPayload(rng, spec.r_payload_type);
    out.r.columns.push_back(std::move(col));
  }

  // S foreign keys: uniform or Zipfian draws over the original key domain
  // [0, |R|). Values removed from R above cause the S tuples that drew them
  // to have no partner.
  ZipfGenerator zipf(spec.r_rows, spec.zipf_theta, rng());
  HostColumn s_key_col;
  s_key_col.name = "s_key";
  s_key_col.type = spec.key_type;
  s_key_col.values.resize(spec.s_rows);
  for (auto& v : s_key_col.values) v = static_cast<int64_t>(zipf.Next());
  out.s.columns.push_back(std::move(s_key_col));
  for (int c = 0; c < spec.s_payload_cols; ++c) {
    HostColumn col;
    col.name = "s_pay" + std::to_string(c + 1);
    col.type = spec.s_payload_type;
    col.values.resize(spec.s_rows);
    for (auto& v : col.values) v = RandomPayload(rng, spec.s_payload_type);
    out.s.columns.push_back(std::move(col));
  }
  return out;
}

Status StarSchemaSpec::Validate() const {
  if (fact_rows == 0 || dim_rows == 0) {
    return Status::InvalidArgument("star schema: empty relations");
  }
  if (num_dims < 1 || num_dims > 64) {
    return Status::InvalidArgument("star schema: num_dims out of range");
  }
  if (key_type == DataType::kInt32 &&
      dim_rows > static_cast<uint64_t>(std::numeric_limits<int32_t>::max())) {
    return Status::InvalidArgument("star schema: dim key domain exceeds int32");
  }
  return Status::OK();
}

Result<StarSchema> GenerateStarSchema(const StarSchemaSpec& spec) {
  GPUJOIN_RETURN_IF_ERROR(spec.Validate());
  std::mt19937_64 rng(spec.seed);
  StarSchema out;
  out.fact.name = "F";
  for (int d = 0; d < spec.num_dims; ++d) {
    HostColumn fk;
    fk.name = "fk" + std::to_string(d + 1);
    fk.type = spec.key_type;
    fk.values.resize(spec.fact_rows);
    for (auto& v : fk.values) v = static_cast<int64_t>(rng() % spec.dim_rows);
    out.fact.columns.push_back(std::move(fk));

    HostTable dim;
    dim.name = "D" + std::to_string(d + 1);
    HostColumn key;
    key.name = "k" + std::to_string(d + 1);
    key.type = spec.key_type;
    key.values.resize(spec.dim_rows);
    std::iota(key.values.begin(), key.values.end(), 0);
    std::shuffle(key.values.begin(), key.values.end(), rng);
    dim.columns.push_back(std::move(key));
    HostColumn pay;
    pay.name = "p" + std::to_string(d + 1);
    pay.type = spec.payload_type;
    pay.values.resize(spec.dim_rows);
    for (auto& v : pay.values) v = RandomPayload(rng, spec.payload_type);
    dim.columns.push_back(std::move(pay));
    out.dims.push_back(std::move(dim));
  }
  return out;
}

Status GroupByWorkloadSpec::Validate() const {
  if (rows == 0) return Status::InvalidArgument("groupby workload: rows == 0");
  if (num_groups == 0) {
    return Status::InvalidArgument("groupby workload: num_groups == 0");
  }
  if (payload_cols < 0) {
    return Status::InvalidArgument("groupby workload: negative payload cols");
  }
  if (zipf_theta < 0.0) {
    return Status::InvalidArgument("groupby workload: zipf_theta < 0");
  }
  if (key_type == DataType::kInt32 &&
      num_groups > static_cast<uint64_t>(std::numeric_limits<int32_t>::max())) {
    return Status::InvalidArgument("groupby workload: group domain exceeds int32");
  }
  return Status::OK();
}

Result<HostTable> GenerateGroupByInput(const GroupByWorkloadSpec& spec) {
  GPUJOIN_RETURN_IF_ERROR(spec.Validate());
  std::mt19937_64 rng(spec.seed);
  HostTable t;
  t.name = "G";
  ZipfGenerator zipf(spec.num_groups, spec.zipf_theta, rng());
  HostColumn keys;
  keys.name = "g_key";
  keys.type = spec.key_type;
  keys.values.resize(spec.rows);
  for (auto& v : keys.values) v = static_cast<int64_t>(zipf.Next());
  t.columns.push_back(std::move(keys));
  for (int c = 0; c < spec.payload_cols; ++c) {
    HostColumn col;
    col.name = "g_val" + std::to_string(c + 1);
    col.type = spec.payload_type;
    col.values.resize(spec.rows);
    // Keep values small enough that int64 SUMs cannot overflow.
    for (auto& v : col.values) {
      v = static_cast<int64_t>(rng() & 0xffffff);
    }
    t.columns.push_back(std::move(col));
  }
  return t;
}

uint64_t RowsForGigabytes(double gigabytes, int payload_cols, DataType key_type,
                          DataType payload_type) {
  const double row_bytes =
      static_cast<double>(DataTypeSize(key_type)) +
      static_cast<double>(payload_cols) * static_cast<double>(DataTypeSize(payload_type));
  return static_cast<uint64_t>(gigabytes * 1e9 / row_bytes);
}

}  // namespace gpujoin::workload
