// Relational operators beyond join/group-by: selection (Filter), projection,
// and ORDER BY — each implemented with the same simulated-kernel discipline
// (selection compaction produces ascending gather maps, so its gathers are
// clustered; ORDER BY applies the GFTR insight, re-sorting (key, column)
// pairs per payload column instead of gathering through a permutation).

#ifndef GPUJOIN_OPS_OPS_H_
#define GPUJOIN_OPS_OPS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/table.h"
#include "vgpu/device.h"

namespace gpujoin::ops {

enum class CmpOp {
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
};

const char* CmpOpName(CmpOp op);

/// column <op> literal.
struct Predicate {
  int column = 0;
  CmpOp op = CmpOp::kEq;
  int64_t literal = 0;
};

/// Evaluates a single predicate against a value.
bool EvalPredicate(const Predicate& pred, int64_t value);

/// Selection: keeps the rows satisfying ALL predicates (conjunction).
/// Two kernels: predicate evaluation producing a selection bitmap + count,
/// then a compacting gather per column (ascending map => clustered).
Result<Table> Filter(vgpu::Device& device, const Table& input,
                     const std::vector<Predicate>& predicates);

/// Projection: copies the named subset of columns into a new table.
Result<Table> Project(vgpu::Device& device, const Table& input,
                      const std::vector<int>& columns);

/// ORDER BY input.column(key_column) ascending. Stable. All other columns
/// are re-sorted pairwise with the key (GFTR style) rather than gathered
/// through the sort permutation.
Result<Table> OrderBy(vgpu::Device& device, const Table& input, int key_column);

}  // namespace gpujoin::ops

#endif  // GPUJOIN_OPS_OPS_H_
