#include "ops/ops.h"

#include <algorithm>

#include "common/bit_util.h"
#include "join/transform.h"
#include "prim/gather.h"

namespace gpujoin::ops {

const char* CmpOpName(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return "==";
    case CmpOp::kNe:
      return "!=";
    case CmpOp::kLt:
      return "<";
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kGt:
      return ">";
    case CmpOp::kGe:
      return ">=";
  }
  return "?";
}

bool EvalPredicate(const Predicate& pred, int64_t value) {
  switch (pred.op) {
    case CmpOp::kEq:
      return value == pred.literal;
    case CmpOp::kNe:
      return value != pred.literal;
    case CmpOp::kLt:
      return value < pred.literal;
    case CmpOp::kLe:
      return value <= pred.literal;
    case CmpOp::kGt:
      return value > pred.literal;
    case CmpOp::kGe:
      return value >= pred.literal;
  }
  return false;
}

Result<Table> Filter(vgpu::Device& device, const Table& input,
                     const std::vector<Predicate>& predicates) {
  const uint64_t n = input.num_rows();
  for (const Predicate& p : predicates) {
    if (p.column < 0 || p.column >= input.num_columns()) {
      return Status::InvalidArgument("Filter: predicate column out of range");
    }
  }

  // Kernel 1: evaluate the conjunction, building the selection map.
  std::vector<RowId> selected;
  {
    vgpu::KernelScope ks(device, "filter_eval");
    for (const Predicate& p : predicates) {
      device.LoadSeq(input.column(p.column).addr(), n,
                     static_cast<uint32_t>(DataTypeSize(input.column(p.column).type())));
    }
    device.Compute(bit_util::CeilDiv(n, device.config().warp_size) *
                   std::max<size_t>(predicates.size(), 1));
    for (uint64_t i = 0; i < n; ++i) {
      bool keep = true;
      for (const Predicate& p : predicates) {
        if (!EvalPredicate(p, input.column(p.column).Get(i))) {
          keep = false;
          break;
        }
      }
      if (keep) selected.push_back(static_cast<RowId>(i));
    }
  }

  // Kernel(s) 2: compact every column through the (clustered) map. The map
  // itself is written once (ascending, compacted).
  GPUJOIN_ASSIGN_OR_RETURN(
      auto map, vgpu::DeviceBuffer<RowId>::FromHost(device, selected));
  {
    vgpu::KernelScope ks(device, "filter_write_map");
    device.StoreSeq(map.addr(), map.size(), sizeof(RowId));
  }
  std::vector<std::string> names;
  std::vector<DeviceColumn> cols;
  for (int c = 0; c < input.num_columns(); ++c) {
    GPUJOIN_ASSIGN_OR_RETURN(DeviceColumn col,
                             join::GatherColumn(device, input.column(c), map));
    names.push_back(input.column_name(c));
    cols.push_back(std::move(col));
  }
  return Table::FromColumns(input.name() + "_filtered", std::move(names),
                            std::move(cols));
}

Result<Table> Project(vgpu::Device& device, const Table& input,
                      const std::vector<int>& columns) {
  if (columns.empty()) {
    return Status::InvalidArgument("Project: no columns selected");
  }
  std::vector<std::string> names;
  std::vector<DeviceColumn> cols;
  for (int c : columns) {
    if (c < 0 || c >= input.num_columns()) {
      return Status::InvalidArgument("Project: column out of range");
    }
    const DeviceColumn& src = input.column(c);
    GPUJOIN_ASSIGN_OR_RETURN(DeviceColumn col,
                             DeviceColumn::Allocate(device, src.type(), src.size()));
    {
      vgpu::KernelScope ks(device, "project_copy");
      const uint32_t width = static_cast<uint32_t>(DataTypeSize(src.type()));
      device.LoadSeq(src.addr(), src.size(), width);
      device.StoreSeq(col.addr(), src.size(), width);
    }
    for (uint64_t i = 0; i < src.size(); ++i) col.Set(i, src.Get(i));
    names.push_back(input.column_name(c));
    cols.push_back(std::move(col));
  }
  return Table::FromColumns(input.name() + "_projected", std::move(names),
                            std::move(cols));
}

namespace {

template <typename K>
Result<Table> OrderByTyped(vgpu::Device& device, const Table& input,
                           int key_column) {
  const vgpu::DeviceBuffer<K>* key_buf;
  if constexpr (sizeof(K) == 4) {
    key_buf = &input.column(key_column).i32();
  } else {
    key_buf = &input.column(key_column).i64();
  }
  std::vector<std::string> names(input.num_columns());
  std::vector<DeviceColumn> cols(input.num_columns());
  vgpu::DeviceBuffer<K> t_keys;
  bool have_keys = false;
  for (int c = 0; c < input.num_columns(); ++c) {
    names[c] = input.column_name(c);
    if (c == key_column) continue;
    // Each column rides its own stable (key, column) sort — the GFTR
    // schedule. The sorted keys from the first transform are kept for the
    // key column's output.
    vgpu::DeviceBuffer<K> keys_out;
    GPUJOIN_ASSIGN_OR_RETURN(
        cols[c], join::TransformKeyPayload(device, *key_buf, input.column(c),
                                           &keys_out, join::TransformKind::kSort,
                                           0, /*discard_keys=*/have_keys));
    if (!have_keys) {
      t_keys = std::move(keys_out);
      have_keys = true;
    } else {
      keys_out.Release();
    }
  }
  // Key column: materialize from the kept transformed keys (or sort alone
  // when the table has a single column).
  if (!have_keys) {
    GPUJOIN_ASSIGN_OR_RETURN(
        auto ids, vgpu::DeviceBuffer<RowId>::Allocate(device, key_buf->size()));
    vgpu::DeviceBuffer<RowId> t_ids;
    GPUJOIN_RETURN_IF_ERROR(join::TransformPairOutOfPlace(
        device, *key_buf, ids, &t_keys, &t_ids, join::TransformKind::kSort, 0));
  }
  GPUJOIN_ASSIGN_OR_RETURN(
      DeviceColumn key_col,
      DeviceColumn::Allocate(device, input.column(key_column).type(),
                             t_keys.size()));
  {
    vgpu::KernelScope ks(device, "orderby_emit_keys");
    for (uint64_t i = 0; i < t_keys.size(); ++i) {
      key_col.Set(i, static_cast<int64_t>(t_keys[i]));
    }
    device.StoreSeq(key_col.addr(), t_keys.size(),
                    static_cast<uint32_t>(DataTypeSize(key_col.type())));
  }
  cols[key_column] = std::move(key_col);
  return Table::FromColumns(input.name() + "_ordered", std::move(names),
                            std::move(cols));
}

}  // namespace

Result<Table> OrderBy(vgpu::Device& device, const Table& input, int key_column) {
  if (key_column < 0 || key_column >= input.num_columns()) {
    return Status::InvalidArgument("OrderBy: key column out of range");
  }
  if (input.num_rows() == 0) {
    return Status::InvalidArgument("OrderBy: empty input");
  }
  if (input.column(key_column).type() == DataType::kInt32) {
    return OrderByTyped<int32_t>(device, input, key_column);
  }
  return OrderByTyped<int64_t>(device, input, key_column);
}

}  // namespace gpujoin::ops
