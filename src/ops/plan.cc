#include "ops/plan.h"

#include <optional>
#include <utility>

#include "groupby/planner.h"
#include "join/planner.h"
#include "stats/estimator.h"

namespace gpujoin::ops {

namespace {

std::string Indent(int n) { return std::string(static_cast<size_t>(n) * 2, ' '); }

class ScanNodeImpl final : public PlanNode {
 public:
  explicit ScanNodeImpl(const Table* table) : table_(table) {}

  Result<Table> Execute(vgpu::Device& device) const override {
    if (table_ == nullptr) return Status::InvalidArgument("Scan: null table");
    // Materialize a copy so parents can consume their input tables.
    std::vector<std::string> names;
    std::vector<DeviceColumn> cols;
    for (int c = 0; c < table_->num_columns(); ++c) {
      const DeviceColumn& src = table_->column(c);
      GPUJOIN_ASSIGN_OR_RETURN(
          DeviceColumn col, DeviceColumn::Allocate(device, src.type(), src.size()));
      {
        vgpu::KernelScope ks(device, "scan_copy");
        const uint32_t width = static_cast<uint32_t>(DataTypeSize(src.type()));
        device.LoadSeq(src.addr(), src.size(), width);
        device.StoreSeq(col.addr(), src.size(), width);
      }
      for (uint64_t i = 0; i < src.size(); ++i) col.Set(i, src.Get(i));
      names.push_back(table_->column_name(c));
      cols.push_back(std::move(col));
    }
    return Table::FromColumns(table_->name(), std::move(names), std::move(cols));
  }

  std::string Describe(int indent) const override {
    return Indent(indent) + "Scan(" + table_->name() + ", " +
           std::to_string(table_->num_rows()) + " rows)\n";
  }

 private:
  const Table* table_;
};

class FilterNodeImpl final : public PlanNode {
 public:
  FilterNodeImpl(PlanPtr child, std::vector<Predicate> preds)
      : child_(std::move(child)), preds_(std::move(preds)) {}

  Result<Table> Execute(vgpu::Device& device) const override {
    GPUJOIN_ASSIGN_OR_RETURN(Table in, child_->Execute(device));
    return Filter(device, in, preds_);
  }

  std::string Describe(int indent) const override {
    std::string out = Indent(indent) + "Filter(";
    for (size_t i = 0; i < preds_.size(); ++i) {
      if (i > 0) out += " AND ";
      out += "col" + std::to_string(preds_[i].column) + " " +
             CmpOpName(preds_[i].op) + " " + std::to_string(preds_[i].literal);
    }
    out += ")\n" + child_->Describe(indent + 1);
    return out;
  }

 private:
  PlanPtr child_;
  std::vector<Predicate> preds_;
};

class ProjectNodeImpl final : public PlanNode {
 public:
  ProjectNodeImpl(PlanPtr child, std::vector<int> columns)
      : child_(std::move(child)), columns_(std::move(columns)) {}

  Result<Table> Execute(vgpu::Device& device) const override {
    GPUJOIN_ASSIGN_OR_RETURN(Table in, child_->Execute(device));
    return Project(device, in, columns_);
  }

  std::string Describe(int indent) const override {
    std::string out = Indent(indent) + "Project(";
    for (size_t i = 0; i < columns_.size(); ++i) {
      if (i > 0) out += ", ";
      out += "col" + std::to_string(columns_[i]);
    }
    return out + ")\n" + child_->Describe(indent + 1);
  }

 private:
  PlanPtr child_;
  std::vector<int> columns_;
};

class JoinNodeImpl final : public PlanNode {
 public:
  JoinNodeImpl(PlanPtr build, PlanPtr probe, JoinNodeOptions options)
      : build_(std::move(build)),
        probe_(std::move(probe)),
        options_(std::move(options)) {}

  Result<Table> Execute(vgpu::Device& device) const override {
    GPUJOIN_ASSIGN_OR_RETURN(Table r, build_->Execute(device));
    GPUJOIN_ASSIGN_OR_RETURN(Table s, probe_->Execute(device));
    join::JoinAlgo algo;
    if (options_.algo.has_value()) {
      algo = *options_.algo;
    } else {
      join::JoinFeatures f = options_.features_hint.has_value()
                                 ? *options_.features_hint
                                 : join::JoinFeatures::FromTables(r, s);
      algo = ChooseJoinAlgo(f);
    }
    GPUJOIN_ASSIGN_OR_RETURN(join::JoinRunResult res,
                             RunJoin(device, algo, r, s, options_.join));
    return std::move(res.output);
  }

  std::string Describe(int indent) const override {
    std::string out = Indent(indent) + "Join(";
    out += options_.algo.has_value() ? join::JoinAlgoName(*options_.algo)
                                     : "planner-selected";
    out += ")\n" + build_->Describe(indent + 1) + probe_->Describe(indent + 1);
    return out;
  }

 private:
  PlanPtr build_;
  PlanPtr probe_;
  JoinNodeOptions options_;
};

class GroupByNodeImpl final : public PlanNode {
 public:
  GroupByNodeImpl(PlanPtr child, groupby::GroupBySpec spec,
                  GroupByNodeOptions options)
      : child_(std::move(child)), spec_(std::move(spec)), options_(options) {}

  Result<Table> Execute(vgpu::Device& device) const override {
    GPUJOIN_ASSIGN_OR_RETURN(Table in, child_->Execute(device));
    groupby::GroupByAlgo algo;
    if (options_.algo.has_value()) {
      algo = *options_.algo;
    } else {
      groupby::GroupByFeatures f;
      f.rows = in.num_rows();
      GPUJOIN_ASSIGN_OR_RETURN(f.estimated_groups,
                               stats::EstimateDistinct(device, in.column(0)));
      f.num_aggregates = static_cast<int>(spec_.aggregates.size());
      algo = ChooseGroupByAlgo(device, f);
    }
    GPUJOIN_ASSIGN_OR_RETURN(groupby::GroupByRunResult res,
                             RunGroupBy(device, algo, in, spec_));
    return std::move(res.output);
  }

  std::string Describe(int indent) const override {
    std::string out = Indent(indent) + "GroupBy(";
    for (size_t i = 0; i < spec_.aggregates.size(); ++i) {
      if (i > 0) out += ", ";
      out += groupby::AggOpName(spec_.aggregates[i].op);
      out += "(col" + std::to_string(spec_.aggregates[i].column) + ")";
    }
    return out + ")\n" + child_->Describe(indent + 1);
  }

 private:
  PlanPtr child_;
  groupby::GroupBySpec spec_;
  GroupByNodeOptions options_;
};

class OrderByNodeImpl final : public PlanNode {
 public:
  OrderByNodeImpl(PlanPtr child, int key_column)
      : child_(std::move(child)), key_column_(key_column) {}

  Result<Table> Execute(vgpu::Device& device) const override {
    GPUJOIN_ASSIGN_OR_RETURN(Table in, child_->Execute(device));
    return OrderBy(device, in, key_column_);
  }

  std::string Describe(int indent) const override {
    return Indent(indent) + "OrderBy(col" + std::to_string(key_column_) +
           ")\n" + child_->Describe(indent + 1);
  }

 private:
  PlanPtr child_;
  int key_column_;
};

}  // namespace

PlanPtr ScanNode(const Table* table) {
  return std::make_unique<ScanNodeImpl>(table);
}

PlanPtr FilterNode(PlanPtr child, std::vector<Predicate> predicates) {
  return std::make_unique<FilterNodeImpl>(std::move(child), std::move(predicates));
}

PlanPtr ProjectNode(PlanPtr child, std::vector<int> columns) {
  return std::make_unique<ProjectNodeImpl>(std::move(child), std::move(columns));
}

PlanPtr JoinNode(PlanPtr build, PlanPtr probe, JoinNodeOptions options) {
  return std::make_unique<JoinNodeImpl>(std::move(build), std::move(probe),
                                        std::move(options));
}

PlanPtr GroupByNode(PlanPtr child, groupby::GroupBySpec spec,
                    GroupByNodeOptions options) {
  return std::make_unique<GroupByNodeImpl>(std::move(child), std::move(spec),
                                           options);
}

PlanPtr OrderByNode(PlanPtr child, int key_column) {
  return std::make_unique<OrderByNodeImpl>(std::move(child), key_column);
}

}  // namespace gpujoin::ops
