// A small physical-plan layer composing the operators of this library:
// Scan, Filter, Project, Join (with the Figure 18 planner choosing the
// implementation unless one is forced), GroupBy, and OrderBy. Plans are
// trees of owned nodes; Execute() materializes bottom-up on the device.
//
//   auto plan = ops::JoinNode(ops::ScanNode(&dim),
//                             ops::FilterNode(ops::ScanNode(&fact), {...}));
//   auto table = plan->Execute(device);

#ifndef GPUJOIN_OPS_PLAN_H_
#define GPUJOIN_OPS_PLAN_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "groupby/groupby.h"
#include "join/join.h"
#include "join/planner.h"
#include "ops/ops.h"
#include "storage/table.h"
#include "vgpu/device.h"

namespace gpujoin::ops {

class PlanNode {
 public:
  virtual ~PlanNode() = default;
  /// Materializes this subtree's result on the device.
  virtual Result<Table> Execute(vgpu::Device& device) const = 0;
  /// EXPLAIN-style description of this subtree.
  virtual std::string Describe(int indent = 0) const = 0;
};

using PlanPtr = std::unique_ptr<PlanNode>;

/// Leaf: an existing device table (borrowed; must outlive the plan). The
/// scan copies the table so parents can own/consume their inputs.
PlanPtr ScanNode(const Table* table);

PlanPtr FilterNode(PlanPtr child, std::vector<Predicate> predicates);

PlanPtr ProjectNode(PlanPtr child, std::vector<int> columns);

/// Inner equi-join of the children on column 0 of each. With
/// algo == nullopt the Figure 18 planner picks the implementation from the
/// table shapes (match ratio / skew estimates default to 1.0 / uniform;
/// pass explicit features through `features_hint` to refine).
struct JoinNodeOptions {
  std::optional<join::JoinAlgo> algo;
  join::JoinOptions join;
  std::optional<join::JoinFeatures> features_hint;
};
PlanPtr JoinNode(PlanPtr build, PlanPtr probe, JoinNodeOptions options = {});

struct GroupByNodeOptions {
  std::optional<groupby::GroupByAlgo> algo;  // Default: heuristic choice.
};
PlanPtr GroupByNode(PlanPtr child, groupby::GroupBySpec spec,
                    GroupByNodeOptions options = {});

PlanPtr OrderByNode(PlanPtr child, int key_column);

}  // namespace gpujoin::ops

#endif  // GPUJOIN_OPS_PLAN_H_
