// Backend-neutral operator interface: the seam between "what to run" (a
// join or grouped aggregation over host tables) and "where to run it" (the
// simulated GPU or the vectorized CPU backend).
//
// A provider executes an operator end to end from host inputs to a host
// output, charging whatever its backend charges:
//   * VgpuProvider uploads over the simulated PCIe link (explicitly
//     charged, unlike the raw Table::FromHost staging path), runs the
//     resilient device operators, and downloads the result — its `seconds`
//     are simulated device seconds including both transfers.
//   * CpuxProvider runs the vectorized host engines — its `seconds` are
//     measured host wall seconds, with host_cpu_seconds reporting the
//     multi-core CPU time actually burned.
// The two clocks are directly compared by the router (ops/router.h), the
// same cross-clock comparison the paper's Figure 8 makes between GPU and
// CPU systems.

#ifndef GPUJOIN_OPS_OPERATOR_H_
#define GPUJOIN_OPS_OPERATOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/resilience.h"
#include "common/status.h"
#include "cpux/context.h"
#include "groupby/groupby.h"
#include "join/join.h"
#include "storage/table.h"
#include "vgpu/device.h"

namespace gpujoin::ops {

enum class Backend {
  kAuto,  // Let the cost-based router pick.
  kCpux,  // Vectorized CPU backend.
  kVgpu,  // Simulated GPU.
};

/// "auto" / "cpux" / "vgpu".
const char* BackendName(Backend b);

/// Parses a backend spelling: auto | cpu | cpux | vgpu | gpu
/// (case-sensitive, the aliases matching the GPUJOIN_BACKEND knob).
Result<Backend> ParseBackend(const std::string& s);

/// A join of two host tables on column 0 of each.
struct JoinOp {
  join::JoinAlgo algo = join::JoinAlgo::kPhjUm;
  join::JoinOptions options;
  const HostTable* r = nullptr;
  const HostTable* s = nullptr;
};

/// A grouped aggregation of a host table by column 0.
struct GroupByOp {
  groupby::GroupByAlgo algo = groupby::GroupByAlgo::kHashGlobal;
  groupby::GroupBySpec spec;
  groupby::GroupByOptions options;
  const HostTable* input = nullptr;
};

struct OperatorRunResult {
  HostTable output;
  uint64_t output_rows = 0;
  /// Backend that executed (never kAuto).
  Backend backend = Backend::kVgpu;
  /// The backend's own clock: simulated device seconds (vgpu, transfers
  /// included) or host wall seconds (cpux). The router compares these
  /// directly.
  double seconds = 0;
  /// Host CPU seconds across all worker threads (cpux only; 0 for vgpu).
  double host_cpu_seconds = 0;
  /// Peak backend memory: device bytes (vgpu) or tracked host bytes (cpux).
  uint64_t peak_mem_bytes = 0;
  /// transform / match / materialize split on the backend's clock. For
  /// vgpu, transform covers the upload and materialize the download.
  join::PhaseBreakdown phases;
  /// Resilience-ladder attempts inside the backend (1 = clean first try).
  int attempts = 1;
  std::vector<DegradationStep> degradation;
};

/// A backend that can run the common operators host-to-host.
class OperatorProvider {
 public:
  virtual ~OperatorProvider() = default;
  virtual Backend backend() const = 0;
  virtual Result<OperatorRunResult> RunJoin(const JoinOp& op) = 0;
  virtual Result<OperatorRunResult> RunGroupBy(const GroupByOp& op) = 0;
};

/// Simulated-GPU provider: PCIe-charged upload, resilient device operator,
/// PCIe-charged download. Does not own the device.
class VgpuProvider : public OperatorProvider {
 public:
  explicit VgpuProvider(vgpu::Device& device) : device_(&device) {}

  Backend backend() const override { return Backend::kVgpu; }
  Result<OperatorRunResult> RunJoin(const JoinOp& op) override;
  Result<OperatorRunResult> RunGroupBy(const GroupByOp& op) override;

  vgpu::Device& device() { return *device_; }

 private:
  vgpu::Device* device_;
};

/// Vectorized-CPU provider. Owns its cpux::Context (worker pool + tracked
/// allocator); `threads` sizes the pool.
class CpuxProvider : public OperatorProvider {
 public:
  explicit CpuxProvider(int threads = 1)
      : ctx_(std::make_unique<cpux::Context>(threads)) {}

  Backend backend() const override { return Backend::kCpux; }
  Result<OperatorRunResult> RunJoin(const JoinOp& op) override;
  Result<OperatorRunResult> RunGroupBy(const GroupByOp& op) override;

  cpux::Context& context() { return *ctx_; }

 private:
  /// Meters one completed op: ops_executed_total, the host-flagged wall
  /// histogram, and a post-run leak check against the cpux context.
  void RecordRun(const char* op, double wall_seconds);

  std::unique_ptr<cpux::Context> ctx_;
};

}  // namespace gpujoin::ops

#endif  // GPUJOIN_OPS_OPERATOR_H_
