#include "ops/router.h"

#include <cstdio>
#include <cstdlib>
#include <utility>

#include "obs/registry.h"
#include "obs/trace.h"

namespace gpujoin::ops {

namespace {

std::string Sci(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3e", v);
  return buf;
}

/// Simulated seconds for one host<->device transfer of `bytes`.
double TransferSeconds(const vgpu::DeviceConfig& config, uint64_t bytes) {
  return static_cast<double>(bytes) / (config.pcie_gbps * 1e9) +
         config.CyclesToSeconds(config.pcie_latency_cycles);
}

/// Projected cpux tuples/second at the configured worker count.
double CpuxRate(double single_thread_rate, const CostModel& cost, int threads) {
  const int extra = threads > 1 ? threads - 1 : 0;
  return single_thread_rate * (1.0 + cost.cpux_thread_scaling * extra);
}

/// Whether cpux can run over this table at all (the engines are
/// integer-only; string columns stay on the vgpu path, whose dictionary
/// encoder handles them).
bool CpuxEligibleTable(const HostTable& t, std::string* why) {
  for (const HostColumn& col : t.columns) {
    if (col.is_string()) {
      *why = "strings";
      return false;
    }
  }
  if (t.num_rows() >= uint64_t{0xFFFFFFFF}) {
    *why = "rows";
    return false;
  }
  return true;
}

bool CpuxEligibleJoin(const JoinOp& op, std::string* why) {
  return CpuxEligibleTable(*op.r, why) && CpuxEligibleTable(*op.s, why);
}

bool CpuxEligibleGroupBy(const GroupByOp& op, std::string* why) {
  return CpuxEligibleTable(*op.input, why);
}

void PickByCost(RouteDecision* d, Backend force, bool eligible,
                const std::string& guard) {
  if (force != Backend::kAuto) {
    d->backend = force;
    d->reason = "forced";
    return;
  }
  if (!eligible) {
    d->backend = Backend::kVgpu;
    d->reason = guard;
    return;
  }
  d->backend =
      d->cpux_seconds <= d->vgpu_seconds ? Backend::kCpux : Backend::kVgpu;
  d->reason = "cost";
}

/// Hedge rung: when the health guard quarantines the chosen backend, flip
/// to the survivor. Quarantine outranks even a forced backend (a forced
/// pick on a tripped breaker would just burn its retry budget), but never
/// overrides an eligibility guard: an ineligible survivor means the
/// original choice stands and the service retry path owns the fault.
void ApplyQuarantine(RouteDecision* d, const RouterOptions& options,
                     bool cpux_eligible) {
  if (!options.quarantined || !options.quarantined(d->backend)) return;
  const Backend other =
      d->backend == Backend::kCpux ? Backend::kVgpu : Backend::kCpux;
  if (other == Backend::kCpux && !cpux_eligible) return;
  if (options.quarantined(other)) return;  // Both unhealthy: no hedge.
  d->backend = other;
  d->reason = "quarantined";
}

}  // namespace

RouterOptions RouterOptions::FromEnv(RouterOptions base) {
  const char* env = std::getenv("GPUJOIN_BACKEND");
  if (env != nullptr && env[0] != '\0') {
    Result<Backend> parsed = ParseBackend(env);
    if (parsed.ok()) base.force = *parsed;
  }
  return base;
}

RouterOptions RouterOptions::FromEnv() { return FromEnv(RouterOptions{}); }

Result<Backend> BackendFromEnv(Backend fallback) {
  const char* env = std::getenv("GPUJOIN_BACKEND");
  if (env == nullptr || env[0] == '\0') return fallback;
  return ParseBackend(env);
}

RouteDecision RouteJoin(const JoinOp& op, const vgpu::DeviceConfig& config,
                        const RouterOptions& options) {
  RouteDecision d;
  d.memory = stats::EstimateJoinMemory(*op.r, *op.s);
  const double tuples =
      static_cast<double>(op.r->num_rows() + op.s->num_rows());
  const CostModel& cost = options.cost;

  d.cpux_seconds =
      cost.cpux_fixed_s +
      tuples / CpuxRate(cost.cpux_join_tuples_per_sec, cost,
                        options.cpux_threads);
  d.vgpu_seconds = TransferSeconds(config, stats::EstimateDeviceBytes(*op.r)) +
                   TransferSeconds(config, stats::EstimateDeviceBytes(*op.s)) +
                   TransferSeconds(config, d.memory.output_bytes) +
                   config.CyclesToSeconds(cost.kernels_per_join *
                                          config.launch_overhead_cycles) +
                   tuples / cost.vgpu_join_tuples_per_sec;

  std::string guard;
  const bool eligible = CpuxEligibleJoin(op, &guard);
  PickByCost(&d, options.force, eligible, guard);
  ApplyQuarantine(&d, options, eligible);
  return d;
}

RouteDecision RouteGroupBy(const GroupByOp& op,
                           const vgpu::DeviceConfig& config,
                           const RouterOptions& options) {
  RouteDecision d;
  d.memory = stats::EstimateGroupByMemory(
      *op.input, static_cast<int>(op.spec.aggregates.size()));
  const double tuples = static_cast<double>(op.input->num_rows());
  const CostModel& cost = options.cost;

  d.cpux_seconds =
      cost.cpux_fixed_s +
      tuples / CpuxRate(cost.cpux_groupby_tuples_per_sec, cost,
                        options.cpux_threads);
  d.vgpu_seconds =
      TransferSeconds(config, stats::EstimateDeviceBytes(*op.input)) +
      TransferSeconds(config, d.memory.output_bytes) +
      config.CyclesToSeconds(cost.kernels_per_groupby *
                             config.launch_overhead_cycles) +
      tuples / cost.vgpu_groupby_tuples_per_sec;

  std::string guard;
  const bool eligible = CpuxEligibleGroupBy(op, &guard);
  PickByCost(&d, options.force, eligible, guard);
  ApplyQuarantine(&d, options, eligible);
  return d;
}

Router::Router(vgpu::Device& device, const RouterOptions& options)
    : device_(&device),
      options_(options),
      vgpu_(device),
      cpux_(options.cpux_threads) {}

Result<OperatorRunResult> Router::Dispatch(Backend backend,
                                           const JoinOp* join_op,
                                           const GroupByOp* groupby_op) {
  OperatorProvider& provider =
      backend == Backend::kCpux ? static_cast<OperatorProvider&>(cpux_)
                                : static_cast<OperatorProvider&>(vgpu_);
  return join_op != nullptr ? provider.RunJoin(*join_op)
                            : provider.RunGroupBy(*groupby_op);
}

Result<OperatorRunResult> Router::RunRouted(const RouteDecision& decision,
                                            const JoinOp* join_op,
                                            const GroupByOp* groupby_op,
                                            const std::string& span_name) {
  decisions_.push_back(decision);
  const char* op_kind = join_op != nullptr ? "join" : "groupby";
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  reg.CounterAdd("router_decisions_total",
                 {{"op", op_kind},
                  {"backend", BackendName(decision.backend)},
                  {"reason", decision.reason}});
  obs::TraceSpan span(*device_, "op", span_name);
  span.Annotate("backend", BackendName(decision.backend));
  span.Annotate("cost_cpux_s", Sci(decision.cpux_seconds));
  span.Annotate("cost_vgpu_s", Sci(decision.vgpu_seconds));
  span.Annotate("est_bytes", std::to_string(decision.memory.total_bytes()));
  span.Annotate("route_reason", decision.reason);

  // Every RunRouted call records exactly one router_ops_total sample on
  // its way out, so router_decisions_total == router_ops_total reconciles
  // in every binary, success or error. The backend label is the one the op
  // actually ended on; successes also feed the projected/actual cost-ratio
  // histograms (vgpu actuals are simulated seconds and replay-stable; cpux
  // actuals are host wall time, so that ratio stays behind the host flag).
  const auto record_op = [&](Backend final_backend,
                             const OperatorRunResult* res) {
    reg.CounterAdd("router_ops_total",
                   {{"op", op_kind}, {"backend", BackendName(final_backend)}});
    if (res == nullptr || res->seconds <= 0) return;
    if (final_backend == Backend::kVgpu) {
      reg.HistogramObserve("router_cost_ratio", {{"op", op_kind}},
                           decision.vgpu_seconds / res->seconds);
    } else {
      reg.HostHistogramObserve("router_cost_ratio_host", {{"op", op_kind}},
                               decision.cpux_seconds / res->seconds);
    }
  };

  Result<OperatorRunResult> first = Dispatch(decision.backend, join_op,
                                             groupby_op);
  if (first.ok()) {
    record_op(decision.backend, &first.value());
    return first;
  }
  const Status& st = first.status();
  const bool resource = st.IsResourceExhausted() ||
                        st.code() == StatusCode::kOutOfMemory;
  if (!options_.allow_fallback || !resource) {
    record_op(decision.backend, nullptr);
    return first;
  }

  const Backend other =
      decision.backend == Backend::kCpux ? Backend::kVgpu : Backend::kCpux;
  std::string guard;
  if (other == Backend::kCpux) {
    const bool eligible = join_op != nullptr
                              ? CpuxEligibleJoin(*join_op, &guard)
                              : CpuxEligibleGroupBy(*groupby_op, &guard);
    if (!eligible) {
      record_op(decision.backend, nullptr);
      return first;
    }
  }

  const std::string detail = std::string(BackendName(decision.backend)) +
                             " -> " + BackendName(other) + ": " +
                             st.ToString();
  obs::TraceInstant(*device_, "backend_fallback", detail);
  span.Annotate("fallback_backend", BackendName(other));
  reg.CounterAdd("router_fallback_total",
                 {{"from", BackendName(decision.backend)},
                  {"to", BackendName(other)}});

  Result<OperatorRunResult> second = Dispatch(other, join_op, groupby_op);
  if (!second.ok()) {
    record_op(decision.backend, nullptr);
    return first;  // The routed backend's error is primary.
  }
  OperatorRunResult res = std::move(second).value();
  res.degradation.insert(res.degradation.begin(),
                         DegradationStep{"backend_fallback", detail});
  record_op(other, &res);
  return res;
}

Result<OperatorRunResult> Router::RunJoin(const JoinOp& op) {
  GPUJOIN_RETURN_IF_ERROR([&] {
    if (op.r == nullptr || op.s == nullptr) {
      return Status::InvalidArgument("router join missing input table(s)");
    }
    return Status::OK();
  }());
  const RouteDecision decision = RouteJoin(op, device_->config(), options_);
  return RunRouted(decision, &op, nullptr,
                   std::string("join:") + join::JoinAlgoName(op.algo));
}

Result<OperatorRunResult> Router::RunGroupBy(const GroupByOp& op) {
  GPUJOIN_RETURN_IF_ERROR([&] {
    if (op.input == nullptr) {
      return Status::InvalidArgument("router groupby missing input table");
    }
    return Status::OK();
  }());
  const RouteDecision decision = RouteGroupBy(op, device_->config(), options_);
  return RunRouted(decision, nullptr, &op,
                   std::string("groupby:") +
                       groupby::GroupByAlgoName(op.algo));
}

Result<Router::PipelineRunResult> Router::RunJoinPipeline(
    const HostTable& fact, const std::vector<HostTable>& dims,
    join::JoinAlgo algo, const join::JoinOptions& options) {
  const size_t n = dims.size();
  if (n == 0) {
    return Status::InvalidArgument("router pipeline: no dimension tables");
  }
  if (fact.columns.size() < n) {
    return Status::InvalidArgument(
        "router pipeline: fact table has fewer columns than foreign keys");
  }

  PipelineRunResult out;
  // Invariant: before stage i, current's column 0 is FK_i+1 and the other
  // columns are everything carried (remaining FKs, fact payloads, payloads
  // accumulated from earlier dims).
  HostTable current = fact;
  for (size_t i = 0; i < n; ++i) {
    JoinOp jop;
    jop.algo = algo;
    jop.options = options;
    jop.r = &dims[i];
    jop.s = &current;
    GPUJOIN_ASSIGN_OR_RETURN(OperatorRunResult res, RunJoin(jop));
    out.seconds += res.seconds;
    out.stage_backends.push_back(res.backend);

    if (i + 1 < n) {
      // Stage output: [key, dim_i payloads..., carried...]. Drop the
      // consumed key and rotate the next FK (right after dim_i's payloads)
      // to the front.
      const size_t fk_pos = 1 + (dims[i].columns.size() - 1);
      HostTable next;
      next.name = res.output.name;
      next.columns.push_back(std::move(res.output.columns[fk_pos]));
      for (size_t c = 1; c < res.output.columns.size(); ++c) {
        if (c == fk_pos) continue;
        next.columns.push_back(std::move(res.output.columns[c]));
      }
      current = std::move(next);
    } else {
      current = std::move(res.output);
    }
  }
  out.final_rows = current.num_rows();
  out.output = std::move(current);
  return out;
}

}  // namespace gpujoin::ops
