// Cost-based CPU/GPU operator router.
//
// For every operator the router compares two deterministic cost estimates —
// projected cpux host seconds against projected vgpu simulated seconds
// (transfers and launch overheads included) — and executes on the cheaper
// backend. Small inputs route to the CPU, whose fixed costs are nanoseconds
// rather than the GPU's PCIe round-trips and kernel launches; large inputs
// route to the GPU, whose per-tuple rate dwarfs the CPU's. The crossover
// this produces is measured by bench_hyb1_crossover and is the Figure 8
// style cross-system comparison applied inside one engine.
//
// The estimates are pure functions of tuple counts, byte estimates
// (stats::EstimateJoinMemory / EstimateGroupByMemory), the device config,
// and calibrated constants — never of wall time — so the same query gets
// the same plan on every run and at every GPUJOIN_SIM_THREADS setting.
//
// Cross-backend OOM fallback: when the chosen backend exhausts its ladder
// with ResourceExhausted/OutOfMemory, the router reruns the operator on the
// other backend (one new rung below the per-backend degradation ladders),
// recording a "backend_fallback" DegradationStep and trace instant.

#ifndef GPUJOIN_OPS_ROUTER_H_
#define GPUJOIN_OPS_ROUTER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "ops/operator.h"
#include "stats/estimator.h"
#include "vgpu/device.h"
#include "vgpu/device_config.h"

namespace gpujoin::ops {

/// Calibrated per-backend cost curves. The cpux rates were measured on the
/// bench_hyb1_crossover workload (Release, single worker); the vgpu rates
/// come from the committed fig17 baselines. They steer ROUTING only —
/// nothing correctness-critical — and the router's acceptance bar is "auto
/// lands within 5% of the best backend at every measured scale", which
/// tolerates generous calibration error around the crossover.
struct CostModel {
  /// Fixed cpux cost per operator (allocator + pool wakeup), seconds.
  double cpux_fixed_s = 5e-6;
  /// cpux throughput at one thread, input tuples per host second.
  double cpux_join_tuples_per_sec = 60e6;
  double cpux_groupby_tuples_per_sec = 60e6;
  /// Incremental efficiency of each added cpux worker (1 = linear).
  double cpux_thread_scaling = 0.7;

  /// vgpu device-side throughput, input tuples per simulated second.
  double vgpu_join_tuples_per_sec = 2500e6;
  double vgpu_groupby_tuples_per_sec = 2500e6;
  /// Kernel launches a typical operator issues (each pays
  /// launch_overhead_cycles).
  double kernels_per_join = 14;
  double kernels_per_groupby = 8;
};

struct RouterOptions {
  /// kAuto = cost-based choice; anything else forces that backend.
  Backend force = Backend::kAuto;
  CostModel cost;
  /// Enable the cross-backend OOM fallback rung.
  bool allow_fallback = true;
  /// Worker threads assumed/used for the cpux backend.
  int cpux_threads = 1;

  /// Optional backend-health guard (service::BackendHealth), consulted
  /// AFTER the cost/force choice. When set and it reports the chosen
  /// backend quarantined, the router hedges the fragment to the surviving
  /// backend with reason "quarantined" — unless the survivor is itself
  /// quarantined or ineligible (strings/rows can only run on vgpu), in
  /// which case the original choice stands and the service-layer retry
  /// path owns the fault. Deterministic: the guard reads breaker state
  /// driven purely by the simulated clock.
  std::function<bool(Backend)> quarantined;

  /// `base` with GPUJOIN_BACKEND (auto|cpu|cpux|vgpu|gpu) applied to
  /// `force` when set; unset or unparsable leaves `base` untouched.
  static RouterOptions FromEnv(RouterOptions base);
  static RouterOptions FromEnv();
};

/// GPUJOIN_BACKEND, or `fallback` when the variable is unset. An invalid
/// spelling is an InvalidArgument error.
Result<Backend> BackendFromEnv(Backend fallback);

/// One routing decision (also recorded in trace spans and EXPLAIN).
struct RouteDecision {
  Backend backend = Backend::kVgpu;
  /// Projected seconds per backend (comparable clocks; see operator.h).
  double cpux_seconds = 0;
  double vgpu_seconds = 0;
  stats::MemoryEstimate memory;
  /// "cost", "forced", "quarantined" (hedged off an unhealthy backend),
  /// or an eligibility guard ("strings", "rows").
  std::string reason;
};

/// Pure routing decisions (no execution, no side effects).
RouteDecision RouteJoin(const JoinOp& op, const vgpu::DeviceConfig& config,
                        const RouterOptions& options);
RouteDecision RouteGroupBy(const GroupByOp& op,
                           const vgpu::DeviceConfig& config,
                           const RouterOptions& options);

/// Executes operators on the backend RouteJoin/RouteGroupBy picks, with
/// tracing and the cross-backend OOM fallback. Owns the cpux provider;
/// borrows the device.
class Router {
 public:
  explicit Router(vgpu::Device& device, const RouterOptions& options = {});

  Result<OperatorRunResult> RunJoin(const JoinOp& op);
  Result<OperatorRunResult> RunGroupBy(const GroupByOp& op);

  /// A fact ⋈ dims[0..N-1] pipeline (join/pipeline.h's shape) over host
  /// tables, routing every constituent join independently. Stage i joins
  /// dims[i] (key in column 0) against fact foreign-key column i. The
  /// output carries the last join key first, then the accumulated payload
  /// columns; `seconds` sums each stage's chosen-backend seconds.
  struct PipelineRunResult {
    HostTable output;
    uint64_t final_rows = 0;
    double seconds = 0;
    std::vector<Backend> stage_backends;
  };
  Result<PipelineRunResult> RunJoinPipeline(
      const HostTable& fact, const std::vector<HostTable>& dims,
      join::JoinAlgo algo, const join::JoinOptions& options = {});

  /// Decisions in execution order (one per operator run so far).
  const std::vector<RouteDecision>& decisions() const { return decisions_; }

  const RouterOptions& options() const { return options_; }
  CpuxProvider& cpux_provider() { return cpux_; }
  VgpuProvider& vgpu_provider() { return vgpu_; }

 private:
  Result<OperatorRunResult> Dispatch(Backend backend, const JoinOp* join_op,
                                     const GroupByOp* groupby_op);
  Result<OperatorRunResult> RunRouted(const RouteDecision& decision,
                                      const JoinOp* join_op,
                                      const GroupByOp* groupby_op,
                                      const std::string& span_name);

  vgpu::Device* device_;
  RouterOptions options_;
  VgpuProvider vgpu_;
  CpuxProvider cpux_;
  std::vector<RouteDecision> decisions_;
};

}  // namespace gpujoin::ops

#endif  // GPUJOIN_OPS_ROUTER_H_
