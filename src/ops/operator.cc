#include "ops/operator.h"

#include <utility>

#include "cpux/groupby.h"
#include "cpux/join.h"
#include "groupby/resilient.h"
#include "join/resilient.h"
#include "obs/registry.h"
#include "stats/estimator.h"

namespace gpujoin::ops {

const char* BackendName(Backend b) {
  switch (b) {
    case Backend::kAuto:
      return "auto";
    case Backend::kCpux:
      return "cpux";
    case Backend::kVgpu:
      return "vgpu";
  }
  return "?";
}

Result<Backend> ParseBackend(const std::string& s) {
  if (s == "auto") return Backend::kAuto;
  if (s == "cpu" || s == "cpux") return Backend::kCpux;
  if (s == "gpu" || s == "vgpu") return Backend::kVgpu;
  return Status::InvalidArgument(
      "unknown backend '" + s + "' (expected auto|cpu|cpux|vgpu|gpu)");
}

namespace {

Status ValidateJoinOp(const JoinOp& op) {
  if (op.r == nullptr || op.s == nullptr) {
    return Status::InvalidArgument("join operator missing input table(s)");
  }
  return Status::OK();
}

Status ValidateGroupByOp(const GroupByOp& op) {
  if (op.input == nullptr) {
    return Status::InvalidArgument("groupby operator missing input table");
  }
  return Status::OK();
}

}  // namespace

Result<OperatorRunResult> VgpuProvider::RunJoin(const JoinOp& op) {
  GPUJOIN_RETURN_IF_ERROR(ValidateJoinOp(op));
  vgpu::Device& dev = *device_;
  dev.ResetPeakMemory();
  const uint64_t launches0 = dev.kernels_launched();
  const double t0 = dev.ElapsedSeconds();

  // Upload both inputs over the simulated link (one transfer setup each).
  dev.ChargeHostTransfer(stats::EstimateDeviceBytes(*op.r));
  dev.ChargeHostTransfer(stats::EstimateDeviceBytes(*op.s));
  const double t_up = dev.ElapsedSeconds();

  join::ResilienceOptions ropts;
  ropts.join = op.options;
  GPUJOIN_ASSIGN_OR_RETURN(
      join::ResilientJoinResult run,
      join::RunJoinResilient(dev, op.algo, *op.r, *op.s, ropts));
  const double t_run = dev.ElapsedSeconds();

  dev.ChargeHostTransfer(stats::EstimateDeviceBytes(run.output));
  const double t_down = dev.ElapsedSeconds();

  OperatorRunResult res;
  res.output = std::move(run.output);
  res.output_rows = run.output_rows;
  res.backend = Backend::kVgpu;
  res.seconds = t_down - t0;
  res.peak_mem_bytes = dev.memory_stats().peak_bytes;
  res.phases.transform_s = t_up - t0;
  res.phases.match_s = t_run - t_up;
  res.phases.materialize_s = t_down - t_run;
  res.attempts = run.attempts;
  res.degradation = std::move(run.degradation);
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  reg.CounterAdd("ops_executed_total", {{"op", "join"}, {"backend", "vgpu"}});
  reg.CounterAdd("vgpu_kernel_launches_total", {{"op", "join"}},
                 dev.kernels_launched() - launches0);
  return res;
}

Result<OperatorRunResult> VgpuProvider::RunGroupBy(const GroupByOp& op) {
  GPUJOIN_RETURN_IF_ERROR(ValidateGroupByOp(op));
  vgpu::Device& dev = *device_;
  dev.ResetPeakMemory();
  const uint64_t launches0 = dev.kernels_launched();
  const double t0 = dev.ElapsedSeconds();

  dev.ChargeHostTransfer(stats::EstimateDeviceBytes(*op.input));
  GPUJOIN_ASSIGN_OR_RETURN(Table input, Table::FromHost(dev, *op.input));
  const double t_up = dev.ElapsedSeconds();

  groupby::GroupByResilienceOptions ropts;
  ropts.groupby = op.options;
  GPUJOIN_ASSIGN_OR_RETURN(
      groupby::ResilientGroupByResult run,
      groupby::RunGroupByResilient(dev, op.algo, input, op.spec, ropts));
  const double t_run = dev.ElapsedSeconds();

  OperatorRunResult res;
  res.output = run.run.output.ToHost();
  dev.ChargeHostTransfer(stats::EstimateDeviceBytes(res.output));
  const double t_down = dev.ElapsedSeconds();

  res.output_rows = run.run.num_groups;
  res.backend = Backend::kVgpu;
  res.seconds = t_down - t0;
  res.peak_mem_bytes = dev.memory_stats().peak_bytes;
  res.phases.transform_s = t_up - t0;
  res.phases.match_s = t_run - t_up;
  res.phases.materialize_s = t_down - t_run;
  res.attempts = run.attempts;
  res.degradation = std::move(run.degradation);
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  reg.CounterAdd("ops_executed_total",
                 {{"op", "groupby"}, {"backend", "vgpu"}});
  reg.CounterAdd("vgpu_kernel_launches_total", {{"op", "groupby"}},
                 dev.kernels_launched() - launches0);
  return res;
}

Result<OperatorRunResult> CpuxProvider::RunJoin(const JoinOp& op) {
  GPUJOIN_RETURN_IF_ERROR(ValidateJoinOp(op));
  cpux::CpuxOptions copts;
  copts.radix_bits_override = op.options.radix_bits_override;
  GPUJOIN_ASSIGN_OR_RETURN(cpux::CpuxRunResult run,
                           cpux::RunJoin(*ctx_, op.algo, *op.r, *op.s, copts));

  OperatorRunResult res;
  res.output = std::move(run.output);
  res.output_rows = run.output_rows;
  res.backend = Backend::kCpux;
  res.seconds = run.wall_seconds;
  res.host_cpu_seconds = run.cpu_seconds;
  res.peak_mem_bytes = run.peak_bytes;
  res.phases.transform_s = run.phases.transform_wall_s;
  res.phases.match_s = run.phases.match_wall_s;
  res.phases.materialize_s = run.phases.materialize_wall_s;
  RecordRun("join", run.wall_seconds);
  return res;
}

Result<OperatorRunResult> CpuxProvider::RunGroupBy(const GroupByOp& op) {
  GPUJOIN_RETURN_IF_ERROR(ValidateGroupByOp(op));
  cpux::CpuxOptions copts;
  copts.radix_bits_override = op.options.radix_bits_override;
  GPUJOIN_ASSIGN_OR_RETURN(
      cpux::CpuxRunResult run,
      cpux::RunGroupBy(*ctx_, op.algo, *op.input, op.spec, copts));

  OperatorRunResult res;
  res.output = std::move(run.output);
  res.output_rows = run.output_rows;
  res.backend = Backend::kCpux;
  res.seconds = run.wall_seconds;
  res.host_cpu_seconds = run.cpu_seconds;
  res.peak_mem_bytes = run.peak_bytes;
  res.phases.transform_s = run.phases.transform_wall_s;
  res.phases.match_s = run.phases.match_wall_s;
  res.phases.materialize_s = run.phases.materialize_wall_s;
  RecordRun("groupby", run.wall_seconds);
  return res;
}

void CpuxProvider::RecordRun(const char* op, double wall_seconds) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  reg.CounterAdd("ops_executed_total", {{"op", op}, {"backend", "cpux"}});
  // Host wall time is not replay-stable: keep it behind the host flag so
  // METRICS exports stay diffable across GPUJOIN_SIM_THREADS.
  reg.HostHistogramObserve("cpux_op_host_seconds", {{"op", op}}, wall_seconds);
  const Status leaks = ctx_->CheckNoLeaks();
  reg.CounterAdd("cpux_leak_check_total",
                 {{"outcome", leaks.ok() ? "clean" : "leak"}});
}

}  // namespace gpujoin::ops
