#include "stats/estimator.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>
#include <vector>

#include "common/bit_util.h"
#include "prim/hash.h"

namespace gpujoin::stats {

uint64_t EstimateDeviceBytes(const HostTable& t) {
  uint64_t bytes = 0;
  for (const HostColumn& c : t.columns) {
    // String columns upload as fixed-width dictionary codes; everything else
    // lands at its declared width.
    bytes += c.size() * (c.is_string() ? sizeof(int64_t) : DataTypeSize(c.type));
  }
  return bytes;
}

MemoryEstimate EstimateJoinMemory(const HostTable& r, const HostTable& s) {
  MemoryEstimate est;
  const uint64_t r_bytes = EstimateDeviceBytes(r);
  const uint64_t s_bytes = EstimateDeviceBytes(s);
  est.input_bytes = r_bytes + s_bytes;
  // Partitioned hash join peak: partitioned copies of both inputs coexist
  // with the originals during scatter, plus per-partition hash tables (~2x
  // the build keys for the open-addressing load factor) and the match list
  // (two RowId arrays bounded by |S|).
  const uint64_t match_list = 2 * s.num_rows() * sizeof(uint32_t);
  est.working_bytes = r_bytes + s_bytes + 2 * r_bytes + match_list;
  // Every probe row matches once: key + all payloads of both sides.
  const uint64_t row_width =
      (r.num_rows() > 0 ? r_bytes / std::max<uint64_t>(r.num_rows(), 1) : 0) +
      (s.num_rows() > 0 ? s_bytes / std::max<uint64_t>(s.num_rows(), 1) : 0);
  est.output_bytes = s.num_rows() * row_width;
  return est;
}

MemoryEstimate EstimateGroupByMemory(const HostTable& input,
                                     int num_aggregates) {
  MemoryEstimate est;
  const uint64_t in_bytes = EstimateDeviceBytes(input);
  est.input_bytes = in_bytes;
  // Hash-partitioned peak: a transformed/partitioned copy of the input plus
  // the aggregation hash table (~2x keys+aggregates at worst-case group
  // count). Sort-based fits under the same bound (one transformed copy).
  const uint64_t n = input.num_rows();
  const uint64_t table_row =
      sizeof(int64_t) * (1 + static_cast<uint64_t>(std::max(num_aggregates, 1)));
  est.working_bytes = in_bytes + 2 * n * table_row;
  // Worst case: every row is its own group.
  est.output_bytes = n * table_row;
  return est;
}

Result<uint64_t> EstimateDistinct(vgpu::Device& device,
                                  const DeviceColumn& column,
                                  int precision_bits) {
  if (precision_bits < 4 || precision_bits > 18) {
    return Status::InvalidArgument("EstimateDistinct: precision out of [4,18]");
  }
  const uint64_t m = uint64_t{1} << precision_bits;
  std::vector<uint8_t> registers(m, 0);
  const uint64_t n = column.size();
  {
    vgpu::KernelScope ks(device, "hll_sketch");
    device.LoadSeq(column.addr(), n,
                   static_cast<uint32_t>(DataTypeSize(column.type())));
    device.Compute(bit_util::CeilDiv(n, device.config().warp_size) * 2);
    // Register updates live in shared memory per block, merged once.
    device.SharedAccess(bit_util::CeilDiv(n, device.config().warp_size));
    for (uint64_t i = 0; i < n; ++i) {
      const uint64_t h = prim::Murmur3Fmix64(static_cast<uint64_t>(column.Get(i)));
      const uint64_t idx = h >> (64 - precision_bits);
      const uint64_t rest = h << precision_bits;
      const uint8_t rank = rest == 0
                               ? static_cast<uint8_t>(65 - precision_bits)
                               : static_cast<uint8_t>(__builtin_clzll(rest) + 1);
      registers[idx] = std::max(registers[idx], rank);
    }
  }
  // Standard HLL estimate with the small-range (linear counting) correction.
  double sum = 0;
  uint64_t zeros = 0;
  for (uint8_t r : registers) {
    sum += std::ldexp(1.0, -r);
    if (r == 0) ++zeros;
  }
  const double md = static_cast<double>(m);
  const double alpha =
      m >= 128 ? 0.7213 / (1.0 + 1.079 / md) : (m == 64 ? 0.709 : 0.697);
  double estimate = alpha * md * md / sum;
  if (estimate <= 2.5 * md && zeros > 0) {
    estimate = md * std::log(md / static_cast<double>(zeros));
  }
  return static_cast<uint64_t>(std::max(1.0, std::llround(estimate) * 1.0));
}

Result<double> EstimateMatchRatio(vgpu::Device& device,
                                  const DeviceColumn& build_keys,
                                  const DeviceColumn& probe_keys,
                                  uint64_t sample_size) {
  if (sample_size == 0) {
    return Status::InvalidArgument("EstimateMatchRatio: sample_size == 0");
  }
  const uint64_t nb = build_keys.size();
  const uint64_t np = probe_keys.size();
  if (nb == 0 || np == 0) {
    return Status::InvalidArgument("EstimateMatchRatio: empty keys");
  }
  std::unordered_set<int64_t> build;
  build.reserve(nb);
  {
    vgpu::KernelScope ks(device, "match_ratio_build");
    device.LoadSeq(build_keys.addr(), nb,
                   static_cast<uint32_t>(DataTypeSize(build_keys.type())));
    for (uint64_t i = 0; i < nb; ++i) build.insert(build_keys.Get(i));
  }
  const uint64_t samples = std::min(sample_size, np);
  uint64_t hits = 0;
  {
    vgpu::KernelScope ks(device, "match_ratio_probe");
    uint64_t addrs[32];
    const uint64_t stride = np / samples;
    for (uint64_t s = 0; s < samples; s += 32) {
      const uint32_t lanes = static_cast<uint32_t>(std::min<uint64_t>(32, samples - s));
      for (uint32_t l = 0; l < lanes; ++l) {
        const uint64_t idx = (s + l) * stride;
        addrs[l] = probe_keys.addr(idx);
        if (build.count(probe_keys.Get(idx)) > 0) ++hits;
      }
      device.Load({addrs, lanes},
                  static_cast<uint32_t>(DataTypeSize(probe_keys.type())));
    }
  }
  return static_cast<double>(hits) / static_cast<double>(samples);
}

}  // namespace gpujoin::stats
