// Cardinality and selectivity estimation for the planners. Real optimizers
// decide from estimates, not oracles: EstimateDistinct is a HyperLogLog
// sketch built in one sequential pass over the column (charged); the
// match-ratio estimator probes a sample of the probe side's keys against
// the build side's key set.

#ifndef GPUJOIN_STATS_ESTIMATOR_H_
#define GPUJOIN_STATS_ESTIMATOR_H_

#include <cstdint>

#include "common/status.h"
#include "storage/column.h"
#include "vgpu/device.h"

namespace gpujoin::stats {

/// HyperLogLog distinct-count estimate over a device column. One streaming
/// kernel; typical error ~1.04/sqrt(2^precision_bits) (~1.6% at 12 bits).
Result<uint64_t> EstimateDistinct(vgpu::Device& device, const DeviceColumn& column,
                                  int precision_bits = 12);

/// Estimates the fraction of `probe_keys` values present in `build_keys`
/// by testing `sample_size` evenly spaced probe keys against a hash set of
/// the build keys (one build scan + the sampled probes, charged).
Result<double> EstimateMatchRatio(vgpu::Device& device,
                                  const DeviceColumn& build_keys,
                                  const DeviceColumn& probe_keys,
                                  uint64_t sample_size = 1024);

}  // namespace gpujoin::stats

#endif  // GPUJOIN_STATS_ESTIMATOR_H_
