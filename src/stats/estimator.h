// Cardinality and selectivity estimation for the planners. Real optimizers
// decide from estimates, not oracles: EstimateDistinct is a HyperLogLog
// sketch built in one sequential pass over the column (charged); the
// match-ratio estimator probes a sample of the probe side's keys against
// the build side's key set.

#ifndef GPUJOIN_STATS_ESTIMATOR_H_
#define GPUJOIN_STATS_ESTIMATOR_H_

#include <cstdint>

#include "common/status.h"
#include "storage/column.h"
#include "storage/table.h"
#include "vgpu/device.h"

namespace gpujoin::stats {

/// Host-side device-memory estimate for admission control: computed from
/// host staging tables BEFORE anything touches the device, so the service
/// layer can reserve budget (or queue the query) without spending simulated
/// cycles. Deliberately conservative — an admitted query that still hits a
/// real OOM falls back to the resilience ladders.
struct MemoryEstimate {
  /// Bytes the uploaded base tables will occupy device-resident.
  uint64_t input_bytes = 0;
  /// Peak transient working state (hash tables, partition buffers, match
  /// lists) over the query's lifetime.
  uint64_t working_bytes = 0;
  /// Upper bound on the materialized result.
  uint64_t output_bytes = 0;

  uint64_t total_bytes() const {
    return input_bytes + working_bytes + output_bytes;
  }
};

/// Device bytes a host table occupies after upload (string columns count as
/// their dictionary codes, matching Table::FromHost).
uint64_t EstimateDeviceBytes(const HostTable& t);

/// Admission estimate for a two-table join (keys in column 0). Assumes the
/// worst common case: every probe row matches once, working state sized as
/// a partitioned hash join's peak (partitioned copies of both inputs plus
/// the per-partition hash tables).
MemoryEstimate EstimateJoinMemory(const HostTable& r, const HostTable& s);

/// Admission estimate for a grouped aggregation over `input` producing
/// `num_aggregates` aggregate columns. Group count is unknown host-side, so
/// the output bound assumes every row is its own group.
MemoryEstimate EstimateGroupByMemory(const HostTable& input,
                                     int num_aggregates);

/// HyperLogLog distinct-count estimate over a device column. One streaming
/// kernel; typical error ~1.04/sqrt(2^precision_bits) (~1.6% at 12 bits).
Result<uint64_t> EstimateDistinct(vgpu::Device& device, const DeviceColumn& column,
                                  int precision_bits = 12);

/// Estimates the fraction of `probe_keys` values present in `build_keys`
/// by testing `sample_size` evenly spaced probe keys against a hash set of
/// the build keys (one build scan + the sampled probes, charged).
Result<double> EstimateMatchRatio(vgpu::Device& device,
                                  const DeviceColumn& build_keys,
                                  const DeviceColumn& probe_keys,
                                  uint64_t sample_size = 1024);

}  // namespace gpujoin::stats

#endif  // GPUJOIN_STATS_ESTIMATOR_H_
