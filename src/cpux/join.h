// Vectorized CPU join engines for the cpux backend.
//
// Three engines cover the library's five join algorithms:
//   kNphj           -> global linear-probe hash join (build r, probe s)
//   kPhjUm, kPhjOm  -> radix-partitioned hash join (co-partition, per-
//                      partition probe tables in shared slabs)
//   kSmjUm, kSmjOm  -> sort-merge join (parallel chunk sort + merge)
//
// All engines follow the count-then-fill discipline: a parallel pass counts
// matches per fixed-size chunk (or per partition), a serial prefix turns
// counts into disjoint output ranges, and a parallel pass fills them — so
// every tracked allocation happens on the coordinator thread in a
// deterministic order (replayable fault injection) and the output is
// bit-identical at any thread count.
//
// Output schema matches cpubase::CpuRadixJoin and the device joins:
// [key, r payloads..., s payloads...].

#ifndef GPUJOIN_CPUX_JOIN_H_
#define GPUJOIN_CPUX_JOIN_H_

#include <cstdint>

#include "common/status.h"
#include "cpux/context.h"
#include "join/join.h"
#include "storage/table.h"

namespace gpujoin::cpux {

struct CpuxOptions {
  /// Partition bits for the radix engines (< 1 = derive from build size).
  int radix_bits_override = -1;
};

/// Host wall-clock phase breakdown, mirroring join::PhaseBreakdown's
/// transform / match / materialize split.
struct CpuxPhases {
  double transform_wall_s = 0;    // Partition / sort / build-side prep.
  double match_wall_s = 0;        // Build + probe (count and fill passes).
  double materialize_wall_s = 0;  // Payload gathers into the output table.
};

struct CpuxRunResult {
  HostTable output;
  uint64_t output_rows = 0;
  CpuxPhases phases;
  /// End-to-end host wall seconds (the number routed against vgpu's
  /// simulated seconds).
  double wall_seconds = 0;
  /// Total CPU seconds across all threads (coordinator delta + pool
  /// workers), the "cores burned" complement to wall_seconds.
  double cpu_seconds = 0;
  /// Peak tracked cpux bytes during the run.
  uint64_t peak_bytes = 0;
  double throughput_tuples_per_sec = 0;
};

/// Runs r JOIN s on key column 0 with the engine mapped from `algo`.
/// Inputs must be integer tables (no string columns) with non-negative
/// keys and fewer than 2^32 - 1 rows each.
Result<CpuxRunResult> RunJoin(Context& ctx, join::JoinAlgo algo,
                              const HostTable& r, const HostTable& s,
                              const CpuxOptions& options = {});

}  // namespace gpujoin::cpux

#endif  // GPUJOIN_CPUX_JOIN_H_
