// Vectorized (batch-at-a-time) CPU kernels for the cpux backend, in the
// style of SIMD database operator libraries: every primitive processes a
// fixed-size batch of keys through tight, branch-light loops over plain
// arrays so the compiler can auto-vectorize (hashing, slot-key compares,
// gathers), with a selection vector carrying the still-active lanes of a
// linear-probe chain between steps.
//
// Parallel decomposition is by FIXED-SIZE chunks (kChunkRows) whose output
// ranges are a pure function of the input size — never of the worker
// count — so every kernel is bit-identical at any TaskPool size, matching
// the determinism contract of the simulator's ParallelBlocks path.
//
// Keys follow the library convention (join.h): non-negative int64 values,
// so -1 is the universal empty-slot sentinel.

#ifndef GPUJOIN_CPUX_KERNELS_H_
#define GPUJOIN_CPUX_KERNELS_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/bit_util.h"
#include "prim/hash.h"

namespace gpujoin::cpux {

/// Lanes processed per batch step. Large enough to amortize the batch loop,
/// small enough that the working arrays live in L1.
inline constexpr uint64_t kBatchSize = 1024;

/// Rows per parallel chunk. Fixed (thread-count independent) so per-chunk
/// counts, offsets, and output ranges are stable for every pool size.
inline constexpr uint64_t kChunkRows = uint64_t{1} << 16;

inline uint64_t NumChunks(uint64_t rows) {
  return rows == 0 ? 0 : (rows + kChunkRows - 1) / kChunkRows;
}

/// A (key, original row id) pair — the unit the partition and sort kernels
/// move around, mirroring the device kernels' key/rid columns.
struct KeyId {
  int64_t key;
  uint32_t id;
};

inline bool KeyIdLess(const KeyId& a, const KeyId& b) {
  return a.key != b.key ? a.key < b.key : a.id < b.id;
}

/// Hashes a batch of keys into `out` (tight loop, auto-vectorizable).
inline void HashBatch(const int64_t* keys, uint64_t n, uint64_t mask,
                      uint64_t* out) {
  for (uint64_t i = 0; i < n; ++i) {
    out[i] = prim::HashToSlot(keys[i], mask);
  }
}

/// An open-addressing linear-probe table over pre-allocated slabs. Slots
/// hold the build key and its row id; empty slots carry key -1. Duplicate
/// build keys occupy distinct slots, so probes walk their chain to the
/// first empty slot to find every match (M:N correct).
struct ProbeTable {
  int64_t* slot_keys = nullptr;
  uint32_t* slot_ids = nullptr;
  uint64_t mask = 0;  // capacity - 1 (capacity is a power of two)

  uint64_t capacity() const { return mask + 1; }

  void Clear() {
    std::fill(slot_keys, slot_keys + capacity(), int64_t{-1});
  }

  /// Sequential build (insertion order = input order, deterministic).
  /// Hashing is batched; the probe-to-empty insert is scalar per lane.
  /// Build row ids come from `ids` when non-null, else base_id + i.
  void Build(const int64_t* keys, const uint32_t* ids, uint64_t n,
             uint32_t base_id = 0) {
    uint64_t hashes[kBatchSize];
    for (uint64_t base = 0; base < n; base += kBatchSize) {
      const uint64_t m = std::min(kBatchSize, n - base);
      HashBatch(keys + base, m, mask, hashes);
      for (uint64_t i = 0; i < m; ++i) {
        uint64_t h = hashes[i];
        while (slot_keys[h] != -1) h = (h + 1) & mask;
        slot_keys[h] = keys[base + i];
        slot_ids[h] = ids != nullptr
                          ? ids[base + i]
                          : base_id + static_cast<uint32_t>(base + i);
      }
    }
  }

  /// Counts matches for probe keys [0, n). Batch-at-a-time: hash the whole
  /// batch, then walk the probe chains step-synchronously with a selection
  /// vector of still-active lanes (lanes retire at their first empty slot).
  uint64_t CountMatches(const int64_t* keys, uint64_t n) const {
    uint64_t total = 0;
    uint64_t hashes[kBatchSize];
    uint32_t active[kBatchSize];
    uint64_t pos[kBatchSize];
    for (uint64_t base = 0; base < n; base += kBatchSize) {
      const uint64_t m = std::min(kBatchSize, n - base);
      HashBatch(keys + base, m, mask, hashes);
      uint32_t n_active = 0;
      for (uint64_t i = 0; i < m; ++i) {
        active[n_active] = static_cast<uint32_t>(i);
        pos[i] = hashes[i];
        ++n_active;
      }
      while (n_active > 0) {
        uint32_t n_next = 0;
        for (uint32_t a = 0; a < n_active; ++a) {
          const uint32_t lane = active[a];
          const int64_t slot = slot_keys[pos[lane]];
          if (slot == -1) continue;  // Chain end: lane retires.
          total += (slot == keys[base + lane]) ? 1 : 0;
          pos[lane] = (pos[lane] + 1) & mask;
          active[n_next++] = lane;
        }
        n_active = n_next;
      }
    }
    return total;
  }

  /// Emits (build id, probe row id) pairs for probe keys [0, n), writing
  /// sequentially from out_r/out_s (sized by a prior CountMatches). The
  /// probe row id is probe_ids[i] when probe_ids is non-null, else
  /// base_row + i. Emission order: probe-row order, chain order within a
  /// row — a fixed function of the inputs.
  void FillMatches(const int64_t* keys, const uint32_t* probe_ids, uint64_t n,
                   uint32_t base_row, uint32_t* out_r, uint32_t* out_s) const {
    uint64_t hashes[kBatchSize];
    uint64_t out = 0;
    for (uint64_t batch = 0; batch < n; batch += kBatchSize) {
      const uint64_t m = std::min(kBatchSize, n - batch);
      HashBatch(keys + batch, m, mask, hashes);
      for (uint64_t i = 0; i < m; ++i) {
        const int64_t key = keys[batch + i];
        const uint32_t row = probe_ids != nullptr
                                 ? probe_ids[batch + i]
                                 : base_row + static_cast<uint32_t>(batch + i);
        uint64_t h = hashes[i];
        while (slot_keys[h] != -1) {
          if (slot_keys[h] == key) {
            out_r[out] = slot_ids[h];
            out_s[out] = row;
            ++out;
          }
          h = (h + 1) & mask;
        }
      }
    }
  }
};

/// Gathers src[ids[i]] into dst[i] (tight loop; the compiler turns this
/// into vector gathers where profitable).
inline void GatherI64(const int64_t* src, const uint32_t* ids, uint64_t n,
                      int64_t* dst) {
  for (uint64_t i = 0; i < n; ++i) dst[i] = src[ids[i]];
}

/// Radix digit of a key for partitioning (low `bits` key bits, matching
/// the device and cpubase partitioners).
inline uint32_t PartitionDigit(int64_t key, int bits) {
  return bit_util::RadixDigit(key, 0, bits);
}

/// Derives the partition-bit count for an n-row build side: partitions
/// sized to stay cache-resident (~kPartitionTargetRows each), clamped to
/// [1, kMaxPartitionBits].
inline constexpr uint64_t kPartitionTargetRows = 2048;
inline constexpr int kMaxPartitionBits = 12;

inline int DerivePartitionBits(uint64_t build_rows) {
  int bits = 1;
  while (bits < kMaxPartitionBits &&
         (build_rows >> bits) > kPartitionTargetRows) {
    ++bits;
  }
  return bits;
}

}  // namespace gpujoin::cpux

#endif  // GPUJOIN_CPUX_KERNELS_H_
