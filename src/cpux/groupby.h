// Vectorized CPU grouped aggregation for the cpux backend, mirroring the
// device's three algorithm families (groupby.h):
//
//   kHashGlobal       one accumulator table, sequential batched-hash
//                     update (the device's global-atomics variant maps to
//                     a deterministic single-thread update on the host)
//   kHashPartitioned  radix-partition the keys, then aggregate each
//                     partition in parallel against its own cache-sized
//                     accumulator slab and emit densely
//   kSortBased        parallel chunk sort + serial segmented reduction
//
// Same discipline as the join engines: coordinator-only allocation in a
// deterministic order, fixed-size parallel decomposition, output ranges
// pre-computed from counts — bit-identical at any thread count.
//
// Output schema matches the device: [group key, one int64 per aggregate],
// aggregate columns named "<op>_<column>" ("count" for kCount). AVG is the
// integer mean floor(sum/count); MIN/MAX initialize from int64 max/min.

#ifndef GPUJOIN_CPUX_GROUPBY_H_
#define GPUJOIN_CPUX_GROUPBY_H_

#include "common/status.h"
#include "cpux/context.h"
#include "cpux/join.h"
#include "groupby/groupby.h"
#include "storage/table.h"

namespace gpujoin::cpux {

/// Runs a grouped aggregation of `input` grouped by column 0. Inputs must
/// be integer tables with non-negative keys and fewer than 2^32 - 1 rows.
/// The result's output_rows is the group count.
Result<CpuxRunResult> RunGroupBy(Context& ctx, groupby::GroupByAlgo algo,
                                 const HostTable& input,
                                 const groupby::GroupBySpec& spec,
                                 const CpuxOptions& options = {});

}  // namespace gpujoin::cpux

#endif  // GPUJOIN_CPUX_GROUPBY_H_
