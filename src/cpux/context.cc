#include "cpux/context.h"

#include <algorithm>

namespace gpujoin::cpux {

Context::Context(int threads)
    : pool_(std::make_unique<TaskPool>(std::max(1, threads))) {}

void Context::set_fault_injector(vgpu::FaultInjector injector) {
  std::lock_guard<std::mutex> lk(mu_);
  injector_ = injector;
}

uint64_t Context::live_bytes() const {
  std::lock_guard<std::mutex> lk(mu_);
  return live_bytes_;
}

uint64_t Context::peak_bytes() const {
  std::lock_guard<std::mutex> lk(mu_);
  return peak_bytes_;
}

uint64_t Context::allocation_attempts() const {
  std::lock_guard<std::mutex> lk(mu_);
  return attempts_;
}

void Context::ResetPeak() {
  std::lock_guard<std::mutex> lk(mu_);
  peak_bytes_ = live_bytes_;
}

Status Context::CheckNoLeaks() const {
  std::lock_guard<std::mutex> lk(mu_);
  if (live_bytes_ == 0 && outstanding_.empty()) return Status::OK();
  std::string report;
  for (const auto& [tag, entry] : outstanding_) {
    report += "  " + tag + ": " + std::to_string(entry.first) + " buffer(s), " +
              std::to_string(entry.second) + " bytes\n";
  }
  return Status::Internal("cpux leak: " + std::to_string(live_bytes_) +
                          " bytes outstanding\n" + report);
}

std::string Context::LeakReport() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::string report;
  for (const auto& [tag, entry] : outstanding_) {
    report += tag + ": " + std::to_string(entry.first) + " buffer(s), " +
              std::to_string(entry.second) + " bytes\n";
  }
  return report;
}

Status Context::OnAllocate(uint64_t bytes, const char* tag) {
  std::lock_guard<std::mutex> lk(mu_);
  ++attempts_;
  if (injector_.ShouldFail(bytes)) {
    return Status::ResourceExhausted(
        "cpux: injected allocation failure at attempt " +
        std::to_string(attempts_) + " (" + std::to_string(bytes) +
        " bytes, tag " + (tag != nullptr ? tag : "untagged") + ")");
  }
  live_bytes_ += bytes;
  peak_bytes_ = std::max(peak_bytes_, live_bytes_);
  auto& entry = outstanding_[tag != nullptr ? tag : "untagged"];
  ++entry.first;
  entry.second += bytes;
  return Status::OK();
}

void Context::OnFree(uint64_t bytes, const char* tag) {
  std::lock_guard<std::mutex> lk(mu_);
  live_bytes_ -= bytes;
  auto it = outstanding_.find(tag != nullptr ? tag : "untagged");
  if (it != outstanding_.end()) {
    --it->second.first;
    it->second.second -= bytes;
    if (it->second.first == 0) outstanding_.erase(it);
  }
}

}  // namespace gpujoin::cpux
