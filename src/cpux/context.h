// Execution context for the vectorized CPU backend: a tracked host
// allocator with the same robustness contract PR 2 gave the simulated
// device, plus the worker pool and the host timing surface.
//
//   * Every significant cpux buffer (anything O(n) or a hash-table slab)
//     is allocated through Context as a tagged cpux::Buffer<T>. The context
//     counts attempts, live bytes, and the peak watermark, and consults a
//     deterministic vgpu::FaultInjector on every attempt — so the
//     exhaustive failure sweeps (fail allocation k, assert a clean Status,
//     zero leaks, bit-identical replay) run against the CPU backend exactly
//     as they run against the device.
//   * Buffers are RAII: destruction returns their bytes, and CheckNoLeaks()
//     / LeakReport() audit whatever is still outstanding by tag.
//   * Allocation is coordinator-thread-only by design: the engines allocate
//     every buffer up front in a deterministic order and hand workers
//     disjoint ranges, which is also what makes fail-nth injection
//     replayable. A mutex still guards the counters so misuse is a data-race
//     report, not silent corruption.

#ifndef GPUJOIN_CPUX_CONTEXT_H_
#define GPUJOIN_CPUX_CONTEXT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "cpux/task_pool.h"
#include "vgpu/fault.h"

namespace gpujoin::cpux {

class Context {
 public:
  /// `threads` sizes the worker pool (1 = fully sequential). Results are
  /// bit-identical for every value; only wall/CPU seconds change.
  explicit Context(int threads = 1);

  Context(const Context&) = delete;
  Context& operator=(const Context&) = delete;

  int threads() const { return pool_->threads(); }
  TaskPool& pool() { return *pool_; }

  /// Arms (or disarms, with a default-constructed injector) allocation-
  /// failure injection. Resets the injector's counters only, not the
  /// live/peak accounting.
  void set_fault_injector(vgpu::FaultInjector injector);
  const vgpu::FaultInjector& fault_injector() const { return injector_; }

  uint64_t live_bytes() const;
  uint64_t peak_bytes() const;
  /// Allocation attempts seen since construction (failed ones included) —
  /// the sweep bound for fail-nth fault injection.
  uint64_t allocation_attempts() const;

  /// Restarts the peak watermark from the current live bytes (engines call
  /// this at run start so peak_bytes() reports a per-run peak).
  void ResetPeak();

  /// OK when no tracked buffer is outstanding; Internal with LeakReport()
  /// otherwise.
  Status CheckNoLeaks() const;
  /// "tag: n buffers, b bytes" lines for every outstanding tag.
  std::string LeakReport() const;

  // --- Buffer internals (not for direct use) ---
  Status OnAllocate(uint64_t bytes, const char* tag);
  void OnFree(uint64_t bytes, const char* tag);

 private:
  mutable std::mutex mu_;
  vgpu::FaultInjector injector_;
  uint64_t live_bytes_ = 0;
  uint64_t peak_bytes_ = 0;
  uint64_t attempts_ = 0;
  /// tag -> (outstanding buffers, outstanding bytes).
  std::map<std::string, std::pair<uint64_t, uint64_t>> outstanding_;
  std::unique_ptr<TaskPool> pool_;
};

/// A tracked, move-only host buffer. Allocate() consults the context's
/// fault injector and accounting before committing memory; destruction
/// releases the bytes. Contents are zero-initialized.
template <typename T>
class Buffer {
 public:
  Buffer() = default;

  static Result<Buffer<T>> Allocate(Context& ctx, uint64_t n, const char* tag) {
    Buffer<T> buf;
    buf.bytes_ = n * sizeof(T);
    GPUJOIN_RETURN_IF_ERROR(ctx.OnAllocate(buf.bytes_, tag));
    buf.ctx_ = &ctx;
    buf.tag_ = tag;
    buf.data_.resize(n);
    return buf;
  }

  ~Buffer() { Release(); }

  Buffer(Buffer&& other) noexcept { *this = std::move(other); }
  Buffer& operator=(Buffer&& other) noexcept {
    if (this != &other) {
      Release();
      ctx_ = other.ctx_;
      tag_ = other.tag_;
      bytes_ = other.bytes_;
      data_ = std::move(other.data_);
      other.ctx_ = nullptr;
      other.data_.clear();
    }
    return *this;
  }

  Buffer(const Buffer&) = delete;
  Buffer& operator=(const Buffer&) = delete;

  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }
  uint64_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }
  T& operator[](uint64_t i) { return data_[i]; }
  const T& operator[](uint64_t i) const { return data_[i]; }

  /// Moves the underlying storage out (for zero-copy handoff into a
  /// HostColumn); the buffer releases its accounting immediately.
  std::vector<T> TakeStorage() {
    std::vector<T> out = std::move(data_);
    Release();
    return out;
  }

 private:
  void Release() {
    if (ctx_ != nullptr) {
      ctx_->OnFree(bytes_, tag_);
      ctx_ = nullptr;
    }
    data_.clear();
  }

  Context* ctx_ = nullptr;
  const char* tag_ = "";
  uint64_t bytes_ = 0;
  std::vector<T> data_;
};

}  // namespace gpujoin::cpux

#endif  // GPUJOIN_CPUX_CONTEXT_H_
