// Parallel radix partition and sort for the cpux backend, shared by the
// join and group-by engines.
//
// Both kernels decompose the input into FIXED-SIZE chunks (kernels.h:
// kChunkRows) and pre-compute every chunk's output range from per-chunk
// histograms, so workers scatter into disjoint destinations and the result
// is bit-identical at any TaskPool size. The partition is stable (chunk
// order = input order within a partition); the sort is a total order on
// (key, id), so its output is unique whatever the decomposition.

#ifndef GPUJOIN_CPUX_PARTITION_H_
#define GPUJOIN_CPUX_PARTITION_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "cpux/context.h"
#include "cpux/kernels.h"

namespace gpujoin::cpux {

/// A radix-partitioned copy of (key, id) pairs in SoA layout (separate key
/// and id arrays, the shape the batch kernels consume).
struct PartitionedColumn {
  Buffer<int64_t> keys;
  Buffer<uint32_t> ids;
  /// Partition p occupies [offsets[p], offsets[p+1]) of keys/ids.
  std::vector<uint64_t> offsets;
  int bits = 0;

  uint64_t fanout() const { return offsets.empty() ? 0 : offsets.size() - 1; }
  uint64_t size(uint64_t p) const { return offsets[p + 1] - offsets[p]; }
};

/// Partitions keys[0..n) (implicit ids 0..n-1) into 2^bits partitions by
/// the low key bits. One vectorized pass: parallel per-chunk histograms, a
/// serial prefix over the (chunk, digit) grid, then a parallel scatter into
/// disjoint ranges. Adds the pool workers' CPU seconds to *cpu_s.
Result<PartitionedColumn> RadixPartition(Context& ctx, const int64_t* keys,
                                         uint64_t n, int bits, const char* tag,
                                         double* cpu_s);

/// Sorts (key, id) pairs of keys[0..n) (implicit ids 0..n-1) by (key, id):
/// parallel sort of fixed-size chunks, then a serial k-way merge. The
/// comparison key is unique, so the output is a fixed function of the
/// input. Adds the pool workers' CPU seconds to *cpu_s.
Result<Buffer<KeyId>> SortKeyIds(Context& ctx, const int64_t* keys, uint64_t n,
                                 const char* tag, double* cpu_s);

}  // namespace gpujoin::cpux

#endif  // GPUJOIN_CPUX_PARTITION_H_
