// Persistent host worker pool for the vectorized CPU backend.
//
// ParallelFor(num_tasks, fn) runs fn(task) for every task index, claiming
// tasks dynamically across the pool's workers plus the calling thread.
// Determinism contract: callers decompose work into tasks whose OUTPUT
// RANGES are a fixed function of the input (never of the thread count or
// of claim order), so results are bit-identical for every pool size — the
// same discipline vgpu::Device::ParallelBlocks established for the
// simulator (DESIGN.md §12), applied to native execution.
//
// The pool also keeps the cpux timing surface honest: every ParallelFor
// returns the summed per-thread CPU seconds of the region (workers + the
// calling thread), so callers can report both wall time and the CPU time
// actually burned across cores.

#ifndef GPUJOIN_CPUX_TASK_POOL_H_
#define GPUJOIN_CPUX_TASK_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace gpujoin::cpux {

/// CPU seconds consumed so far by the calling thread (thread, not process).
/// Falls back to a monotonic wall clock on platforms without per-thread
/// CPU clocks; the relative per-region deltas stay meaningful either way.
double ThreadCpuSeconds();

class TaskPool {
 public:
  /// `threads` is the TOTAL worker count including the calling thread, so
  /// TaskPool(1) spawns nothing and runs inline. Values < 1 clamp to 1.
  explicit TaskPool(int threads);
  ~TaskPool();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  int threads() const { return 1 + static_cast<int>(workers_.size()); }

  /// Runs fn(task) for task in [0, num_tasks); blocks until all complete.
  /// Returns the summed CPU seconds the POOL WORKERS spent inside fn (the
  /// calling thread's share is visible on its own thread CPU clock, so
  /// callers report total CPU as their own delta plus these returns).
  /// fn must not call ParallelFor on the same pool (no nesting).
  double ParallelFor(uint64_t num_tasks, const std::function<void(uint64_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  const std::function<void(uint64_t)>* fn_ = nullptr;
  uint64_t num_tasks_ = 0;
  std::atomic<uint64_t> next_{0};
  uint64_t generation_ = 0;
  int workers_active_ = 0;
  double worker_cpu_s_ = 0;
  bool shutdown_ = false;
};

}  // namespace gpujoin::cpux

#endif  // GPUJOIN_CPUX_TASK_POOL_H_
