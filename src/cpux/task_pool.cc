#include "cpux/task_pool.h"

#include <chrono>

#ifdef __unix__
#include <time.h>
#endif

namespace gpujoin::cpux {

double ThreadCpuSeconds() {
#if defined(__unix__) && defined(CLOCK_THREAD_CPUTIME_ID)
  struct timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
    return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) * 1e-9;
  }
#endif
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

TaskPool::TaskPool(int threads) {
  const int extra = (threads < 1 ? 1 : threads) - 1;
  workers_.reserve(extra);
  for (int i = 0; i < extra; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

TaskPool::~TaskPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    shutdown_ = true;
  }
  cv_work_.notify_all();
  for (std::thread& t : workers_) t.join();
}

double TaskPool::ParallelFor(uint64_t num_tasks,
                             const std::function<void(uint64_t)>& fn) {
  if (num_tasks == 0) return 0;
  if (workers_.empty() || num_tasks == 1) {
    for (uint64_t t = 0; t < num_tasks; ++t) fn(t);
    return 0;  // All work ran on the calling thread's own CPU clock.
  }

  {
    std::lock_guard<std::mutex> lk(mu_);
    fn_ = &fn;
    num_tasks_ = num_tasks;
    next_.store(0, std::memory_order_relaxed);
    worker_cpu_s_ = 0;
    workers_active_ = static_cast<int>(workers_.size());
    ++generation_;
  }
  cv_work_.notify_all();

  // The calling thread claims tasks alongside the workers; its share is
  // covered by the caller's own thread CPU clock, so only worker seconds
  // are returned.
  for (;;) {
    const uint64_t t = next_.fetch_add(1, std::memory_order_relaxed);
    if (t >= num_tasks) break;
    fn(t);
  }

  std::unique_lock<std::mutex> lk(mu_);
  cv_done_.wait(lk, [&] { return workers_active_ == 0; });
  fn_ = nullptr;
  return worker_cpu_s_;
}

void TaskPool::WorkerLoop() {
  uint64_t seen_generation = 0;
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    cv_work_.wait(lk, [&] { return shutdown_ || generation_ != seen_generation; });
    if (shutdown_) return;
    seen_generation = generation_;
    const std::function<void(uint64_t)>* fn = fn_;
    const uint64_t num_tasks = num_tasks_;
    lk.unlock();

    const double c0 = ThreadCpuSeconds();
    for (;;) {
      const uint64_t t = next_.fetch_add(1, std::memory_order_relaxed);
      if (t >= num_tasks) break;
      (*fn)(t);
    }
    const double cpu = ThreadCpuSeconds() - c0;

    lk.lock();
    worker_cpu_s_ += cpu;
    if (--workers_active_ == 0) cv_done_.notify_one();
  }
}

}  // namespace gpujoin::cpux
