#include "cpux/join.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <vector>

#include "common/bit_util.h"
#include "cpux/kernels.h"
#include "cpux/partition.h"

namespace gpujoin::cpux {

namespace {

using Clock = std::chrono::steady_clock;

double Since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

Status ValidateJoinInput(const HostTable& t, const char* side) {
  if (t.columns.empty()) {
    return Status::InvalidArgument(std::string("cpux join: table ") + side +
                                   " has no key column");
  }
  for (const HostColumn& col : t.columns) {
    if (col.is_string()) {
      return Status::InvalidArgument(
          std::string("cpux join: string column '") + col.name + "' in " +
          side + " not supported (route to vgpu)");
    }
  }
  if (t.num_rows() >= std::numeric_limits<uint32_t>::max()) {
    return Status::InvalidArgument(std::string("cpux join: table ") + side +
                                   " exceeds 2^32 - 1 rows");
  }
  for (const int64_t key : t.columns[0].values) {
    if (key < 0) {
      return Status::InvalidArgument(std::string("cpux join: table ") + side +
                                     " has a negative key");
    }
  }
  return Status::OK();
}

/// Matched (r row id, s row id) pairs in emission order.
struct MatchIds {
  Buffer<uint32_t> r_ids;
  Buffer<uint32_t> s_ids;
  uint64_t n = 0;
};

/// --- Engine 1: global linear-probe hash join (kNphj). Build r into one
/// table; count/fill over fixed-size s chunks.
Result<MatchIds> NphjMatch(Context& ctx, const HostTable& r,
                           const HostTable& s, CpuxPhases* phases,
                           double* cpu_s) {
  const uint64_t nr = r.num_rows();
  const uint64_t ns = s.num_rows();
  const int64_t* r_keys = r.columns[0].values.data();
  const int64_t* s_keys = s.columns[0].values.data();

  const auto t_match = Clock::now();
  const uint64_t capacity =
      bit_util::NextPowerOfTwo(std::max<uint64_t>(nr * 2, 16));
  GPUJOIN_ASSIGN_OR_RETURN(
      auto slot_keys, Buffer<int64_t>::Allocate(ctx, capacity, "cpux.join.ht"));
  GPUJOIN_ASSIGN_OR_RETURN(
      auto slot_ids, Buffer<uint32_t>::Allocate(ctx, capacity, "cpux.join.ht"));
  ProbeTable table{slot_keys.data(), slot_ids.data(), capacity - 1};
  table.Clear();
  table.Build(r_keys, nullptr, nr);

  const uint64_t num_chunks = NumChunks(ns);
  std::vector<uint64_t> offsets(num_chunks + 1, 0);
  *cpu_s += ctx.pool().ParallelFor(num_chunks, [&](uint64_t c) {
    const uint64_t begin = c * kChunkRows;
    const uint64_t len = std::min(ns, begin + kChunkRows) - begin;
    offsets[c + 1] = table.CountMatches(s_keys + begin, len);
  });
  for (uint64_t c = 0; c < num_chunks; ++c) offsets[c + 1] += offsets[c];

  MatchIds out;
  out.n = offsets[num_chunks];
  GPUJOIN_ASSIGN_OR_RETURN(
      out.r_ids, Buffer<uint32_t>::Allocate(ctx, out.n, "cpux.join.match"));
  GPUJOIN_ASSIGN_OR_RETURN(
      out.s_ids, Buffer<uint32_t>::Allocate(ctx, out.n, "cpux.join.match"));
  uint32_t* out_r = out.r_ids.data();
  uint32_t* out_s = out.s_ids.data();
  *cpu_s += ctx.pool().ParallelFor(num_chunks, [&](uint64_t c) {
    const uint64_t begin = c * kChunkRows;
    const uint64_t len = std::min(ns, begin + kChunkRows) - begin;
    table.FillMatches(s_keys + begin, nullptr, len,
                      static_cast<uint32_t>(begin), out_r + offsets[c],
                      out_s + offsets[c]);
  });
  phases->match_wall_s += Since(t_match);
  return out;
}

/// --- Engine 2: radix-partitioned hash join (kPhjUm / kPhjOm).
/// Co-partition both sides by low key bits, then build/probe each partition
/// against its own cache-sized table carved out of shared slot slabs.
/// Per-partition capacities (2x the partition's build rows, rounded up to a
/// power of two) keep total slab memory ~4x the build side even under heavy
/// skew, where a uniform max-partition capacity would explode.
Result<MatchIds> PhjMatch(Context& ctx, const HostTable& r, const HostTable& s,
                          const CpuxOptions& options, CpuxPhases* phases,
                          double* cpu_s) {
  const uint64_t nr = r.num_rows();
  const uint64_t ns = s.num_rows();
  const int bits = options.radix_bits_override >= 1
                       ? std::min(options.radix_bits_override, kMaxPartitionBits)
                       : DerivePartitionBits(nr);
  const uint64_t fanout = uint64_t{1} << bits;

  const auto t_transform = Clock::now();
  GPUJOIN_ASSIGN_OR_RETURN(
      auto pr, RadixPartition(ctx, r.columns[0].values.data(), nr, bits,
                              "cpux.join.part_r", cpu_s));
  GPUJOIN_ASSIGN_OR_RETURN(
      auto ps, RadixPartition(ctx, s.columns[0].values.data(), ns, bits,
                              "cpux.join.part_s", cpu_s));
  phases->transform_wall_s += Since(t_transform);

  const auto t_match = Clock::now();
  // Carve per-partition tables out of shared slabs. A partition gets slots
  // only when both sides are non-empty there.
  std::vector<uint64_t> capacity(fanout, 0), slot_off(fanout + 1, 0);
  for (uint64_t p = 0; p < fanout; ++p) {
    if (pr.size(p) > 0 && ps.size(p) > 0) {
      capacity[p] =
          bit_util::NextPowerOfTwo(std::max<uint64_t>(pr.size(p) * 2, 16));
    }
    slot_off[p + 1] = slot_off[p] + capacity[p];
  }
  GPUJOIN_ASSIGN_OR_RETURN(
      auto slab_keys,
      Buffer<int64_t>::Allocate(ctx, slot_off[fanout], "cpux.join.ht"));
  GPUJOIN_ASSIGN_OR_RETURN(
      auto slab_ids,
      Buffer<uint32_t>::Allocate(ctx, slot_off[fanout], "cpux.join.ht"));

  // Phase A (parallel per partition): build + count.
  std::vector<uint64_t> offsets(fanout + 1, 0);
  *cpu_s += ctx.pool().ParallelFor(fanout, [&](uint64_t p) {
    if (capacity[p] == 0) return;
    ProbeTable table{slab_keys.data() + slot_off[p],
                     slab_ids.data() + slot_off[p], capacity[p] - 1};
    table.Clear();
    table.Build(pr.keys.data() + pr.offsets[p], pr.ids.data() + pr.offsets[p],
                pr.size(p));
    offsets[p + 1] = table.CountMatches(ps.keys.data() + ps.offsets[p], ps.size(p));
  });
  for (uint64_t p = 0; p < fanout; ++p) offsets[p + 1] += offsets[p];

  MatchIds out;
  out.n = offsets[fanout];
  GPUJOIN_ASSIGN_OR_RETURN(
      out.r_ids, Buffer<uint32_t>::Allocate(ctx, out.n, "cpux.join.match"));
  GPUJOIN_ASSIGN_OR_RETURN(
      out.s_ids, Buffer<uint32_t>::Allocate(ctx, out.n, "cpux.join.match"));

  // Phase B (parallel per partition): fill from the still-built tables,
  // emitting original s row ids from the partitioned id column.
  uint32_t* out_r = out.r_ids.data();
  uint32_t* out_s = out.s_ids.data();
  *cpu_s += ctx.pool().ParallelFor(fanout, [&](uint64_t p) {
    if (capacity[p] == 0) return;
    ProbeTable table{slab_keys.data() + slot_off[p],
                     slab_ids.data() + slot_off[p], capacity[p] - 1};
    table.FillMatches(ps.keys.data() + ps.offsets[p],
                      ps.ids.data() + ps.offsets[p], ps.size(p), 0,
                      out_r + offsets[p], out_s + offsets[p]);
  });
  phases->match_wall_s += Since(t_match);
  return out;
}

/// --- Engine 3: sort-merge join (kSmjUm / kSmjOm). Parallel chunk sort of
/// both sides, then a serial merge emitting the run product per key group
/// (count pass, then fill into an exact-size buffer).
Result<MatchIds> SmjMatch(Context& ctx, const HostTable& r, const HostTable& s,
                          CpuxPhases* phases, double* cpu_s) {
  const uint64_t nr = r.num_rows();
  const uint64_t ns = s.num_rows();

  const auto t_transform = Clock::now();
  GPUJOIN_ASSIGN_OR_RETURN(auto sr, SortKeyIds(ctx, r.columns[0].values.data(),
                                               nr, "cpux.join.sort_r", cpu_s));
  GPUJOIN_ASSIGN_OR_RETURN(auto ss, SortKeyIds(ctx, s.columns[0].values.data(),
                                               ns, "cpux.join.sort_s", cpu_s));
  phases->transform_wall_s += Since(t_transform);

  const auto t_match = Clock::now();
  const KeyId* a = sr.data();
  const KeyId* b = ss.data();
  // Count pass: sum of run products over equal-key groups.
  uint64_t total = 0;
  {
    uint64_t i = 0, j = 0;
    while (i < nr && j < ns) {
      if (a[i].key < b[j].key) {
        ++i;
      } else if (b[j].key < a[i].key) {
        ++j;
      } else {
        const int64_t key = a[i].key;
        uint64_t ri = i, sj = j;
        while (ri < nr && a[ri].key == key) ++ri;
        while (sj < ns && b[sj].key == key) ++sj;
        total += (ri - i) * (sj - j);
        i = ri;
        j = sj;
      }
    }
  }

  MatchIds out;
  out.n = total;
  GPUJOIN_ASSIGN_OR_RETURN(
      out.r_ids, Buffer<uint32_t>::Allocate(ctx, out.n, "cpux.join.match"));
  GPUJOIN_ASSIGN_OR_RETURN(
      out.s_ids, Buffer<uint32_t>::Allocate(ctx, out.n, "cpux.join.match"));
  uint32_t* out_r = out.r_ids.data();
  uint32_t* out_s = out.s_ids.data();

  // Fill pass: s-outer / r-inner within each group (fixed emission order).
  uint64_t i = 0, j = 0, cursor = 0;
  while (i < nr && j < ns) {
    if (a[i].key < b[j].key) {
      ++i;
    } else if (b[j].key < a[i].key) {
      ++j;
    } else {
      const int64_t key = a[i].key;
      uint64_t ri = i, sj = j;
      while (ri < nr && a[ri].key == key) ++ri;
      while (sj < ns && b[sj].key == key) ++sj;
      for (uint64_t y = j; y < sj; ++y) {
        for (uint64_t x = i; x < ri; ++x) {
          out_r[cursor] = a[x].id;
          out_s[cursor] = b[y].id;
          ++cursor;
        }
      }
      i = ri;
      j = sj;
    }
  }
  phases->match_wall_s += Since(t_match);
  return out;
}

/// Gathers every output column through the match ids (parallel over fixed
/// chunks of output rows): [key (from s), r payloads..., s payloads...].
Result<HostTable> Materialize(Context& ctx, const HostTable& r,
                              const HostTable& s, const MatchIds& m,
                              double* cpu_s) {
  const uint64_t n = m.n;
  const uint64_t num_chunks = NumChunks(n);
  HostTable result;
  result.name = "cpux_join_result";

  auto gather_column = [&](const HostColumn& src,
                           const uint32_t* ids) -> Status {
    GPUJOIN_ASSIGN_OR_RETURN(
        auto dst, Buffer<int64_t>::Allocate(ctx, n, "cpux.join.out"));
    const int64_t* src_vals = src.values.data();
    int64_t* dst_vals = dst.data();
    *cpu_s += ctx.pool().ParallelFor(num_chunks, [&](uint64_t c) {
      const uint64_t begin = c * kChunkRows;
      const uint64_t len = std::min(n, begin + kChunkRows) - begin;
      GatherI64(src_vals, ids + begin, len, dst_vals + begin);
    });
    HostColumn col;
    col.name = src.name;
    col.type = src.type;
    col.values = dst.TakeStorage();
    result.columns.push_back(std::move(col));
    return Status::OK();
  };

  GPUJOIN_RETURN_IF_ERROR(gather_column(s.columns[0], m.s_ids.data()));
  for (size_t c = 1; c < r.columns.size(); ++c) {
    GPUJOIN_RETURN_IF_ERROR(gather_column(r.columns[c], m.r_ids.data()));
  }
  for (size_t c = 1; c < s.columns.size(); ++c) {
    GPUJOIN_RETURN_IF_ERROR(gather_column(s.columns[c], m.s_ids.data()));
  }
  return result;
}

}  // namespace

Result<CpuxRunResult> RunJoin(Context& ctx, join::JoinAlgo algo,
                              const HostTable& r, const HostTable& s,
                              const CpuxOptions& options) {
  GPUJOIN_RETURN_IF_ERROR(ValidateJoinInput(r, "r"));
  GPUJOIN_RETURN_IF_ERROR(ValidateJoinInput(s, "s"));

  ctx.ResetPeak();
  const double cpu0 = ThreadCpuSeconds();
  const auto w0 = Clock::now();
  double pool_cpu = 0;

  CpuxRunResult res;
  MatchIds match;
  switch (algo) {
    case join::JoinAlgo::kNphj: {
      GPUJOIN_ASSIGN_OR_RETURN(match,
                               NphjMatch(ctx, r, s, &res.phases, &pool_cpu));
      break;
    }
    case join::JoinAlgo::kPhjUm:
    case join::JoinAlgo::kPhjOm: {
      GPUJOIN_ASSIGN_OR_RETURN(
          match, PhjMatch(ctx, r, s, options, &res.phases, &pool_cpu));
      break;
    }
    case join::JoinAlgo::kSmjUm:
    case join::JoinAlgo::kSmjOm: {
      GPUJOIN_ASSIGN_OR_RETURN(match,
                               SmjMatch(ctx, r, s, &res.phases, &pool_cpu));
      break;
    }
  }

  const auto t_mat = Clock::now();
  GPUJOIN_ASSIGN_OR_RETURN(res.output, Materialize(ctx, r, s, match, &pool_cpu));
  res.phases.materialize_wall_s = Since(t_mat);

  res.output_rows = match.n;
  res.wall_seconds = Since(w0);
  res.cpu_seconds = (ThreadCpuSeconds() - cpu0) + pool_cpu;
  res.peak_bytes = ctx.peak_bytes();
  res.throughput_tuples_per_sec =
      res.wall_seconds > 0
          ? static_cast<double>(r.num_rows() + s.num_rows()) / res.wall_seconds
          : 0;
  return res;
}

}  // namespace gpujoin::cpux
