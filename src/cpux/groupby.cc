#include "cpux/groupby.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <string>
#include <vector>

#include "common/bit_util.h"
#include "cpux/kernels.h"
#include "cpux/partition.h"

namespace gpujoin::cpux {

namespace {

using groupby::AggOp;
using groupby::AggSpec;
using groupby::GroupByAlgo;
using groupby::GroupBySpec;

using Clock = std::chrono::steady_clock;

double Since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

Status ValidateGroupByInput(const HostTable& input, const GroupBySpec& spec) {
  if (input.columns.empty()) {
    return Status::InvalidArgument("cpux groupby: input has no key column");
  }
  for (const HostColumn& col : input.columns) {
    if (col.is_string()) {
      return Status::InvalidArgument(
          "cpux groupby: string column '" + col.name +
          "' not supported (route to vgpu)");
    }
  }
  if (input.num_rows() >= std::numeric_limits<uint32_t>::max()) {
    return Status::InvalidArgument("cpux groupby: input exceeds 2^32 - 1 rows");
  }
  for (const int64_t key : input.columns[0].values) {
    if (key < 0) {
      return Status::InvalidArgument("cpux groupby: negative group key");
    }
  }
  for (const AggSpec& a : spec.aggregates) {
    if (a.op == AggOp::kCount) continue;
    if (a.column < 1 || a.column >= static_cast<int>(input.columns.size())) {
      return Status::InvalidArgument(
          "cpux groupby: aggregate references column " +
          std::to_string(a.column) + " out of range");
    }
  }
  return Status::OK();
}

int64_t AggInit(AggOp op) {
  switch (op) {
    case AggOp::kMin:
      return std::numeric_limits<int64_t>::max();
    case AggOp::kMax:
      return std::numeric_limits<int64_t>::min();
    default:
      return 0;
  }
}

void AggUpdate(AggOp op, int64_t* acc, int64_t v) {
  switch (op) {
    case AggOp::kSum:
    case AggOp::kAvg:
      *acc += v;
      break;
    case AggOp::kMin:
      *acc = std::min(*acc, v);
      break;
    case AggOp::kMax:
      *acc = std::max(*acc, v);
      break;
    case AggOp::kCount:
      break;
  }
}

int64_t AggFinalize(AggOp op, int64_t acc, int64_t count) {
  switch (op) {
    case AggOp::kCount:
      return count;
    case AggOp::kAvg:
      return count == 0 ? 0 : acc / count;
    default:
      return acc;
  }
}

/// An open-addressing accumulator table carved out of shared slabs.
/// Per slot: the group key (-1 empty), the row count, and one int64
/// accumulator per aggregate (agg-major: aggs[a * capacity + slot]).
struct AccTable {
  int64_t* slot_keys = nullptr;
  int64_t* slot_count = nullptr;
  int64_t* slot_aggs = nullptr;
  uint64_t mask = 0;

  uint64_t capacity() const { return mask + 1; }

  void Clear() { std::fill(slot_keys, slot_keys + capacity(), int64_t{-1}); }

  /// Sequential batched-hash update of rows [0, n). The aggregated value
  /// for row i is read from the input column at row `ids ? ids[i] : i`
  /// (so the partitioned engine feeds permuted keys but original rows).
  /// Returns the number of new groups claimed.
  uint64_t Accumulate(const int64_t* keys, const uint32_t* ids, uint64_t n,
                      const GroupBySpec& spec, const HostTable& input) {
    const size_t num_aggs = spec.aggregates.size();
    uint64_t groups = 0;
    uint64_t hashes[kBatchSize];
    for (uint64_t base = 0; base < n; base += kBatchSize) {
      const uint64_t m = std::min(kBatchSize, n - base);
      HashBatch(keys + base, m, mask, hashes);
      for (uint64_t i = 0; i < m; ++i) {
        const int64_t key = keys[base + i];
        const uint64_t row =
            ids != nullptr ? ids[base + i] : base + i;
        uint64_t h = hashes[i];
        while (slot_keys[h] != -1 && slot_keys[h] != key) h = (h + 1) & mask;
        if (slot_keys[h] == -1) {
          slot_keys[h] = key;
          slot_count[h] = 0;
          for (size_t a = 0; a < num_aggs; ++a) {
            slot_aggs[a * capacity() + h] = AggInit(spec.aggregates[a].op);
          }
          ++groups;
        }
        ++slot_count[h];
        for (size_t a = 0; a < num_aggs; ++a) {
          const AggSpec& as = spec.aggregates[a];
          if (as.op == AggOp::kCount) continue;
          AggUpdate(as.op, &slot_aggs[a * capacity() + h],
                    input.columns[as.column].values[row]);
        }
      }
    }
    return groups;
  }

  /// Emits finalized groups in slot order into out_key / out_aggs[a],
  /// writing `groups` rows starting at `out_base`. out_aggs entries are
  /// full output columns (indexed absolutely).
  void Emit(const GroupBySpec& spec, uint64_t out_base, int64_t* out_key,
            const std::vector<int64_t*>& out_aggs) const {
    uint64_t out = out_base;
    for (uint64_t slot = 0; slot < capacity(); ++slot) {
      if (slot_keys[slot] == -1) continue;
      out_key[out] = slot_keys[slot];
      for (size_t a = 0; a < spec.aggregates.size(); ++a) {
        out_aggs[a][out] =
            AggFinalize(spec.aggregates[a].op, slot_aggs[a * capacity() + slot],
                        slot_count[slot]);
      }
      ++out;
    }
  }
};

/// Output column buffers: one key column plus one per aggregate.
struct OutputBuffers {
  Buffer<int64_t> key;
  std::vector<Buffer<int64_t>> aggs;
  std::vector<int64_t*> agg_ptrs;
};

Result<OutputBuffers> AllocateOutput(Context& ctx, uint64_t groups,
                                     size_t num_aggs) {
  OutputBuffers out;
  GPUJOIN_ASSIGN_OR_RETURN(out.key,
                           Buffer<int64_t>::Allocate(ctx, groups, "cpux.gb.out"));
  out.aggs.reserve(num_aggs);
  for (size_t a = 0; a < num_aggs; ++a) {
    GPUJOIN_ASSIGN_OR_RETURN(
        auto buf, Buffer<int64_t>::Allocate(ctx, groups, "cpux.gb.out"));
    out.aggs.push_back(std::move(buf));
  }
  for (auto& buf : out.aggs) out.agg_ptrs.push_back(buf.data());
  return out;
}

HostTable FinishOutput(const HostTable& input, const GroupBySpec& spec,
                       OutputBuffers* out) {
  HostTable result;
  result.name = "cpux_groupby_result";
  HostColumn key_col;
  key_col.name = input.columns[0].name;
  key_col.type = input.columns[0].type;
  key_col.values = out->key.TakeStorage();
  result.columns.push_back(std::move(key_col));
  for (size_t a = 0; a < spec.aggregates.size(); ++a) {
    HostColumn col;
    col.name = groupby::AggOpName(spec.aggregates[a].op);
    if (spec.aggregates[a].op != AggOp::kCount) {
      col.name += "_" + input.columns[spec.aggregates[a].column].name;
    }
    col.type = DataType::kInt64;
    col.values = out->aggs[a].TakeStorage();
    result.columns.push_back(std::move(col));
  }
  return result;
}

/// --- Engine 1: one global accumulator table, sequential update. The
/// deterministic host analogue of the device's global-atomics variant;
/// it is the small-input path, so it trades parallelism for zero
/// partitioning cost.
Result<CpuxRunResult> HashGlobal(Context& ctx, const HostTable& input,
                                 const GroupBySpec& spec) {
  const uint64_t n = input.num_rows();
  const size_t num_aggs = spec.aggregates.size();
  CpuxRunResult res;

  const auto t_agg = Clock::now();
  const uint64_t capacity =
      bit_util::NextPowerOfTwo(std::max<uint64_t>(n * 2, 16));
  GPUJOIN_ASSIGN_OR_RETURN(auto slot_keys,
                           Buffer<int64_t>::Allocate(ctx, capacity, "cpux.gb.acc"));
  GPUJOIN_ASSIGN_OR_RETURN(auto slot_count,
                           Buffer<int64_t>::Allocate(ctx, capacity, "cpux.gb.acc"));
  GPUJOIN_ASSIGN_OR_RETURN(
      auto slot_aggs,
      Buffer<int64_t>::Allocate(ctx, capacity * num_aggs, "cpux.gb.acc"));
  AccTable table{slot_keys.data(), slot_count.data(), slot_aggs.data(),
                 capacity - 1};
  table.Clear();
  const uint64_t groups =
      table.Accumulate(input.columns[0].values.data(), nullptr, n, spec, input);
  res.phases.match_wall_s += Since(t_agg);

  const auto t_emit = Clock::now();
  GPUJOIN_ASSIGN_OR_RETURN(auto out, AllocateOutput(ctx, groups, num_aggs));
  table.Emit(spec, 0, out.key.data(), out.agg_ptrs);
  res.output = FinishOutput(input, spec, &out);
  res.output_rows = groups;
  res.phases.materialize_wall_s += Since(t_emit);
  return res;
}

/// --- Engine 2: radix-partition the keys, aggregate partitions in
/// parallel against per-partition slab tables, emit densely into
/// pre-computed disjoint output ranges.
Result<CpuxRunResult> HashPartitioned(Context& ctx, const HostTable& input,
                                      const GroupBySpec& spec,
                                      const CpuxOptions& options,
                                      double* cpu_s) {
  const uint64_t n = input.num_rows();
  const size_t num_aggs = spec.aggregates.size();
  const int bits = options.radix_bits_override >= 1
                       ? std::min(options.radix_bits_override, kMaxPartitionBits)
                       : DerivePartitionBits(n);
  const uint64_t fanout = uint64_t{1} << bits;
  CpuxRunResult res;

  const auto t_transform = Clock::now();
  GPUJOIN_ASSIGN_OR_RETURN(
      auto part, RadixPartition(ctx, input.columns[0].values.data(), n, bits,
                                "cpux.gb.part", cpu_s));
  res.phases.transform_wall_s += Since(t_transform);

  const auto t_agg = Clock::now();
  std::vector<uint64_t> capacity(fanout, 0), slot_off(fanout + 1, 0);
  for (uint64_t p = 0; p < fanout; ++p) {
    if (part.size(p) > 0) {
      capacity[p] =
          bit_util::NextPowerOfTwo(std::max<uint64_t>(part.size(p) * 2, 16));
    }
    slot_off[p + 1] = slot_off[p] + capacity[p];
  }
  const uint64_t total_slots = slot_off[fanout];
  GPUJOIN_ASSIGN_OR_RETURN(
      auto slab_keys, Buffer<int64_t>::Allocate(ctx, total_slots, "cpux.gb.acc"));
  GPUJOIN_ASSIGN_OR_RETURN(
      auto slab_count, Buffer<int64_t>::Allocate(ctx, total_slots, "cpux.gb.acc"));
  GPUJOIN_ASSIGN_OR_RETURN(
      auto slab_aggs,
      Buffer<int64_t>::Allocate(ctx, total_slots * num_aggs, "cpux.gb.acc"));

  auto table_for = [&](uint64_t p) {
    return AccTable{slab_keys.data() + slot_off[p],
                    slab_count.data() + slot_off[p],
                    slab_aggs.data() + slot_off[p] * num_aggs, capacity[p] - 1};
  };

  std::vector<uint64_t> group_off(fanout + 1, 0);
  *cpu_s += ctx.pool().ParallelFor(fanout, [&](uint64_t p) {
    if (capacity[p] == 0) return;
    AccTable table = table_for(p);
    table.Clear();
    group_off[p + 1] =
        table.Accumulate(part.keys.data() + part.offsets[p],
                         part.ids.data() + part.offsets[p], part.size(p), spec,
                         input);
  });
  for (uint64_t p = 0; p < fanout; ++p) group_off[p + 1] += group_off[p];
  const uint64_t groups = group_off[fanout];
  res.phases.match_wall_s += Since(t_agg);

  const auto t_emit = Clock::now();
  GPUJOIN_ASSIGN_OR_RETURN(auto out, AllocateOutput(ctx, groups, num_aggs));
  int64_t* out_key = out.key.data();
  *cpu_s += ctx.pool().ParallelFor(fanout, [&](uint64_t p) {
    if (capacity[p] == 0) return;
    table_for(p).Emit(spec, group_off[p], out_key, out.agg_ptrs);
  });
  res.output = FinishOutput(input, spec, &out);
  res.output_rows = groups;
  res.phases.materialize_wall_s += Since(t_emit);
  return res;
}

/// --- Engine 3: parallel chunk sort + serial segmented reduction over
/// equal-key runs (count the runs, then finalize each into its slot).
Result<CpuxRunResult> SortBased(Context& ctx, const HostTable& input,
                                const GroupBySpec& spec, double* cpu_s) {
  const uint64_t n = input.num_rows();
  const size_t num_aggs = spec.aggregates.size();
  CpuxRunResult res;

  const auto t_transform = Clock::now();
  GPUJOIN_ASSIGN_OR_RETURN(
      auto sorted,
      SortKeyIds(ctx, input.columns[0].values.data(), n, "cpux.gb.sort", cpu_s));
  res.phases.transform_wall_s += Since(t_transform);

  const auto t_agg = Clock::now();
  const KeyId* data = sorted.data();
  uint64_t groups = 0;
  for (uint64_t i = 0; i < n; ++i) {
    if (i == 0 || data[i].key != data[i - 1].key) ++groups;
  }
  res.phases.match_wall_s += Since(t_agg);

  const auto t_emit = Clock::now();
  GPUJOIN_ASSIGN_OR_RETURN(auto out, AllocateOutput(ctx, groups, num_aggs));
  int64_t* out_key = out.key.data();
  std::vector<int64_t> acc(num_aggs);
  uint64_t g = 0;
  uint64_t i = 0;
  while (i < n) {
    const int64_t key = data[i].key;
    for (size_t a = 0; a < num_aggs; ++a) acc[a] = AggInit(spec.aggregates[a].op);
    int64_t count = 0;
    while (i < n && data[i].key == key) {
      ++count;
      for (size_t a = 0; a < num_aggs; ++a) {
        const AggSpec& as = spec.aggregates[a];
        if (as.op == AggOp::kCount) continue;
        AggUpdate(as.op, &acc[a],
                  input.columns[as.column].values[data[i].id]);
      }
      ++i;
    }
    out_key[g] = key;
    for (size_t a = 0; a < num_aggs; ++a) {
      out.agg_ptrs[a][g] = AggFinalize(spec.aggregates[a].op, acc[a], count);
    }
    ++g;
  }
  res.output = FinishOutput(input, spec, &out);
  res.output_rows = groups;
  res.phases.materialize_wall_s += Since(t_emit);
  return res;
}

}  // namespace

Result<CpuxRunResult> RunGroupBy(Context& ctx, GroupByAlgo algo,
                                 const HostTable& input, const GroupBySpec& spec,
                                 const CpuxOptions& options) {
  GPUJOIN_RETURN_IF_ERROR(ValidateGroupByInput(input, spec));

  ctx.ResetPeak();
  const double cpu0 = ThreadCpuSeconds();
  const auto w0 = Clock::now();
  double pool_cpu = 0;

  CpuxRunResult res;
  switch (algo) {
    case GroupByAlgo::kHashGlobal: {
      GPUJOIN_ASSIGN_OR_RETURN(res, HashGlobal(ctx, input, spec));
      break;
    }
    case GroupByAlgo::kHashPartitioned: {
      GPUJOIN_ASSIGN_OR_RETURN(
          res, HashPartitioned(ctx, input, spec, options, &pool_cpu));
      break;
    }
    case GroupByAlgo::kSortBased: {
      GPUJOIN_ASSIGN_OR_RETURN(res, SortBased(ctx, input, spec, &pool_cpu));
      break;
    }
  }
  res.wall_seconds = Since(w0);
  res.cpu_seconds = (ThreadCpuSeconds() - cpu0) + pool_cpu;
  res.peak_bytes = ctx.peak_bytes();
  res.throughput_tuples_per_sec =
      res.wall_seconds > 0 ? static_cast<double>(input.num_rows()) / res.wall_seconds
                           : 0;
  return res;
}

}  // namespace gpujoin::cpux
