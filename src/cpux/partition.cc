#include "cpux/partition.h"

#include <algorithm>

namespace gpujoin::cpux {

Result<PartitionedColumn> RadixPartition(Context& ctx, const int64_t* keys,
                                         uint64_t n, int bits, const char* tag,
                                         double* cpu_s) {
  const uint64_t fanout = uint64_t{1} << bits;
  const uint64_t num_chunks = NumChunks(n);

  PartitionedColumn out;
  out.bits = bits;
  GPUJOIN_ASSIGN_OR_RETURN(out.keys, Buffer<int64_t>::Allocate(ctx, n, tag));
  GPUJOIN_ASSIGN_OR_RETURN(out.ids, Buffer<uint32_t>::Allocate(ctx, n, tag));
  GPUJOIN_ASSIGN_OR_RETURN(
      auto hist, Buffer<uint64_t>::Allocate(ctx, num_chunks * fanout, tag));

  // Pass 1: per-chunk digit histograms (parallel over fixed-size chunks).
  uint64_t* hist_data = hist.data();
  *cpu_s += ctx.pool().ParallelFor(num_chunks, [&](uint64_t c) {
    const uint64_t begin = c * kChunkRows;
    const uint64_t end = std::min(n, begin + kChunkRows);
    uint64_t* h = hist_data + c * fanout;
    for (uint64_t i = begin; i < end; ++i) {
      ++h[PartitionDigit(keys[i], bits)];
    }
  });

  // Serial prefix over the (digit, chunk) grid: hist[c * fanout + d] becomes
  // chunk c's write cursor for digit d. Digit-major order makes partitions
  // contiguous and chunk order (= input order) stable within each partition.
  out.offsets.assign(fanout + 1, 0);
  uint64_t running = 0;
  for (uint64_t d = 0; d < fanout; ++d) {
    out.offsets[d] = running;
    for (uint64_t c = 0; c < num_chunks; ++c) {
      const uint64_t count = hist_data[c * fanout + d];
      hist_data[c * fanout + d] = running;
      running += count;
    }
  }
  out.offsets[fanout] = running;

  // Pass 2: scatter (parallel; every chunk writes its pre-computed disjoint
  // ranges, so the result is identical at any pool size).
  int64_t* out_keys = out.keys.data();
  uint32_t* out_ids = out.ids.data();
  *cpu_s += ctx.pool().ParallelFor(num_chunks, [&](uint64_t c) {
    const uint64_t begin = c * kChunkRows;
    const uint64_t end = std::min(n, begin + kChunkRows);
    uint64_t* cursor = hist_data + c * fanout;
    for (uint64_t i = begin; i < end; ++i) {
      const uint64_t dst = cursor[PartitionDigit(keys[i], bits)]++;
      out_keys[dst] = keys[i];
      out_ids[dst] = static_cast<uint32_t>(i);
    }
  });

  return out;
}

Result<Buffer<KeyId>> SortKeyIds(Context& ctx, const int64_t* keys, uint64_t n,
                                 const char* tag, double* cpu_s) {
  const uint64_t num_chunks = NumChunks(n);
  GPUJOIN_ASSIGN_OR_RETURN(auto sorted, Buffer<KeyId>::Allocate(ctx, n, tag));
  KeyId* data = sorted.data();

  // Sort each fixed-size chunk in place (parallel).
  *cpu_s += ctx.pool().ParallelFor(num_chunks, [&](uint64_t c) {
    const uint64_t begin = c * kChunkRows;
    const uint64_t end = std::min(n, begin + kChunkRows);
    for (uint64_t i = begin; i < end; ++i) {
      data[i] = KeyId{keys[i], static_cast<uint32_t>(i)};
    }
    std::sort(data + begin, data + end, KeyIdLess);
  });
  if (num_chunks <= 1) return sorted;

  // Serial k-way merge of the sorted chunks. (key, id) is a unique total
  // order, so the merged output is a fixed function of the input.
  GPUJOIN_ASSIGN_OR_RETURN(auto merged, Buffer<KeyId>::Allocate(ctx, n, tag));
  std::vector<uint64_t> cursor(num_chunks), limit(num_chunks);
  for (uint64_t c = 0; c < num_chunks; ++c) {
    cursor[c] = c * kChunkRows;
    limit[c] = std::min(n, cursor[c] + kChunkRows);
  }
  KeyId* out = merged.data();
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t best = num_chunks;
    for (uint64_t c = 0; c < num_chunks; ++c) {
      if (cursor[c] == limit[c]) continue;
      if (best == num_chunks || KeyIdLess(data[cursor[c]], data[cursor[best]])) {
        best = c;
      }
    }
    out[i] = data[cursor[best]++];
  }
  return merged;
}

}  // namespace gpujoin::cpux
