// Hash-join match finders.
//
// HashJoinCoPartitioned — the partitioned hash join's match-finding phase
// (§3.2/§4.3): for every co-partition, a thread block builds a hash table in
// shared memory from the build-side partition and probes it with the
// probe-side partition streaming from global memory. Build partitions larger
// than the shared-memory capacity are processed in capacity-sized chunks,
// re-streaming the probe partition per chunk (the block-nested-loop scheme
// the paper describes). The simulation runs one partition per thread block
// via Device::ParallelBlocks — the blocks are independent by construction
// (each owns its shared-table image and a precomputed output range).
//
// HashJoinGlobal — the non-partitioned hash join baseline (cuDF-style,
// Figure 8): one global-memory open-addressing table built from R and probed
// by S; every table access is a random global access, which is exactly why
// the paper's Figure 9 shows it losing to the partitioned implementations.
// The build inserts in tuple order (insertion order defines the table
// layout, so it stays sequential); the probe sweeps run one S tile per
// block against the read-only table.
//
// Both run a count sweep + write sweep (deterministic, clustered output).

#ifndef GPUJOIN_PRIM_HASH_JOIN_H_
#define GPUJOIN_PRIM_HASH_JOIN_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/bit_util.h"
#include "common/status.h"
#include "prim/hash.h"
#include "prim/match.h"
#include "storage/types.h"
#include "vgpu/buffer.h"
#include "vgpu/device.h"

namespace gpujoin::prim {

/// Sentinel for empty hash-table slots; all workload keys are non-negative.
inline constexpr int64_t kEmptySlot = -1;

/// S elements per thread-block tile of the non-partitioned probe sweeps.
inline constexpr uint64_t kProbeTileElems = 4096;

/// Shared-memory hash-table capacity (entries) for a build chunk, derived
/// from the device's shared memory budget at load factor 1/2.
template <typename K>
uint64_t SharedHashCapacity(const vgpu::Device& device) {
  const uint64_t slot_bytes = sizeof(K) + sizeof(RowId);
  const uint64_t cap = device.config().shared_mem_per_block_bytes / slot_bytes / 2;
  return std::max<uint64_t>(cap, 64);
}

/// Inner hash join of co-partitioned key arrays. r_offsets/s_offsets are the
/// partition boundaries (size P+1) of r_keys/s_keys. Emits positions into
/// the partitioned arrays (virtual IDs). Output is probe-major per partition,
/// so positions are clustered. `capacity` is the shared-table entry budget.
template <typename K>
Result<MatchResult<K>> HashJoinCoPartitioned(
    vgpu::Device& device, const vgpu::DeviceBuffer<K>& r_keys,
    const vgpu::DeviceBuffer<K>& s_keys, const std::vector<uint64_t>& r_offsets,
    const std::vector<uint64_t>& s_offsets, uint64_t capacity) {
  if (r_offsets.size() != s_offsets.size() || r_offsets.empty()) {
    return Status::InvalidArgument("HashJoinCoPartitioned: offset size mismatch");
  }
  const size_t num_parts = r_offsets.size() - 1;
  const int warp = device.config().warp_size;
  const uint64_t table_size = bit_util::NextPowerOfTwo(capacity * 2);
  const uint64_t mask = table_size - 1;

  // --- Count sweep: one partition per block, each with a private
  // shared-table image; per-partition match counts land in disjoint slots.
  std::vector<uint64_t> part_matches(num_parts, 0);
  {
    vgpu::KernelScope ks(device, "phj_probe_count");
    GPUJOIN_RETURN_IF_ERROR(device.ParallelBlocks(
        num_parts, [&](uint64_t p, vgpu::BlockContext& ctx) -> Status {
          const uint64_t rb = r_offsets[p], re = r_offsets[p + 1];
          const uint64_t sb = s_offsets[p], se = s_offsets[p + 1];
          if (rb == re || sb == se) return Status::OK();
          std::vector<int64_t> slot_keys(table_size, kEmptySlot);
          uint64_t o = 0;
          for (uint64_t chunk = rb; chunk < re; chunk += capacity) {
            const uint64_t ce = std::min(re, chunk + capacity);
            // Build: stream the chunk, insert into the shared table.
            ctx.LoadSeq(r_keys.addr(chunk), ce - chunk, sizeof(K));
            ctx.SharedAccess(bit_util::CeilDiv(ce - chunk, warp) * 2);
            std::fill(slot_keys.begin(), slot_keys.end(), kEmptySlot);
            for (uint64_t i = chunk; i < ce; ++i) {
              uint64_t h = HashToSlot(static_cast<int64_t>(r_keys[i]), mask);
              while (slot_keys[h] != kEmptySlot) h = (h + 1) & mask;
              slot_keys[h] = static_cast<int64_t>(r_keys[i]);
            }
            // Probe: stream the S partition.
            ctx.LoadSeq(s_keys.addr(sb), se - sb, sizeof(K));
            ctx.SharedAccess(bit_util::CeilDiv(se - sb, warp) * 2);
            for (uint64_t j = sb; j < se; ++j) {
              uint64_t h = HashToSlot(static_cast<int64_t>(s_keys[j]), mask);
              while (slot_keys[h] != kEmptySlot) {
                if (slot_keys[h] == static_cast<int64_t>(s_keys[j])) ++o;
                h = (h + 1) & mask;
              }
            }
          }
          part_matches[p] = o;
          return Status::OK();
        }));
  }

  // Per-partition output bases (probe-major per partition, so positions are
  // clustered) and the output allocation, on the calling thread.
  std::vector<uint64_t> out_base(num_parts + 1, 0);
  for (size_t p = 0; p < num_parts; ++p) {
    out_base[p + 1] = out_base[p] + part_matches[p];
  }
  const uint64_t n_matches = out_base[num_parts];
  MatchResult<K> out;
  GPUJOIN_ASSIGN_OR_RETURN(out.keys,
                           vgpu::DeviceBuffer<K>::Allocate(device, n_matches));
  GPUJOIN_ASSIGN_OR_RETURN(
      out.r_pos, vgpu::DeviceBuffer<RowId>::Allocate(device, n_matches));
  GPUJOIN_ASSIGN_OR_RETURN(
      out.s_pos, vgpu::DeviceBuffer<RowId>::Allocate(device, n_matches));

  // --- Write sweep: same block decomposition; each block emits into its
  // precomputed contiguous output range.
  {
    vgpu::KernelScope ks(device, "phj_probe_write");
    GPUJOIN_RETURN_IF_ERROR(device.ParallelBlocks(
        num_parts, [&](uint64_t p, vgpu::BlockContext& ctx) -> Status {
          const uint64_t rb = r_offsets[p], re = r_offsets[p + 1];
          const uint64_t sb = s_offsets[p], se = s_offsets[p + 1];
          if (rb == re || sb == se) return Status::OK();
          std::vector<int64_t> slot_keys(table_size, kEmptySlot);
          std::vector<RowId> slot_pos(table_size, 0);
          uint64_t o = out_base[p];
          for (uint64_t chunk = rb; chunk < re; chunk += capacity) {
            const uint64_t ce = std::min(re, chunk + capacity);
            ctx.LoadSeq(r_keys.addr(chunk), ce - chunk, sizeof(K));
            ctx.SharedAccess(bit_util::CeilDiv(ce - chunk, warp) * 2);
            std::fill(slot_keys.begin(), slot_keys.end(), kEmptySlot);
            for (uint64_t i = chunk; i < ce; ++i) {
              uint64_t h = HashToSlot(static_cast<int64_t>(r_keys[i]), mask);
              while (slot_keys[h] != kEmptySlot) h = (h + 1) & mask;
              slot_keys[h] = static_cast<int64_t>(r_keys[i]);
              slot_pos[h] = static_cast<RowId>(i);
            }
            ctx.LoadSeq(s_keys.addr(sb), se - sb, sizeof(K));
            ctx.SharedAccess(bit_util::CeilDiv(se - sb, warp) * 2);
            for (uint64_t j = sb; j < se; ++j) {
              uint64_t h = HashToSlot(static_cast<int64_t>(s_keys[j]), mask);
              while (slot_keys[h] != kEmptySlot) {
                if (slot_keys[h] == static_cast<int64_t>(s_keys[j])) {
                  out.keys[o] = s_keys[j];
                  out.r_pos[o] = slot_pos[h];
                  out.s_pos[o] = static_cast<RowId>(j);
                  ++o;
                }
                h = (h + 1) & mask;
              }
            }
          }
          // The partition's matches flush as one contiguous run per array.
          const uint64_t len = out_base[p + 1] - out_base[p];
          if (len > 0) {
            ctx.StoreSeq(out.keys.addr(out_base[p]), len, sizeof(K));
            ctx.StoreSeq(out.r_pos.addr(out_base[p]), len, sizeof(RowId));
            ctx.StoreSeq(out.s_pos.addr(out_base[p]), len, sizeof(RowId));
          }
          return Status::OK();
        }));
  }
  return out;
}

/// Non-partitioned hash join: global-memory table, random accesses.
template <typename K>
Result<MatchResult<K>> HashJoinGlobal(vgpu::Device& device,
                                      const vgpu::DeviceBuffer<K>& r_keys,
                                      const vgpu::DeviceBuffer<K>& s_keys) {
  const uint64_t nr = r_keys.size();
  const uint64_t ns = s_keys.size();
  const int warp = device.config().warp_size;
  const uint64_t table_size = bit_util::NextPowerOfTwo(std::max<uint64_t>(nr * 2, 16));
  const uint64_t mask = table_size - 1;

  // The table lives in (simulated) global memory: allocate so accesses have
  // real addresses and the allocator sees the footprint.
  GPUJOIN_ASSIGN_OR_RETURN(auto table_keys,
                           vgpu::DeviceBuffer<int64_t>::Allocate(device, table_size));
  GPUJOIN_ASSIGN_OR_RETURN(auto table_pos,
                           vgpu::DeviceBuffer<RowId>::Allocate(device, table_size));
  std::fill(table_keys.data(), table_keys.data() + table_size, kEmptySlot);

  // --- Build kernel: one random load+store chain per R tuple. Insertion
  // order defines the linear-probe layout, so the build stays sequential.
  {
    vgpu::KernelScope ks(device, "nphj_build");
    device.LoadSeq(r_keys.addr(), nr, sizeof(K));
    uint64_t load_addrs[32];
    uint64_t store_addrs[32];
    for (uint64_t i = 0; i < nr; i += warp) {
      const uint32_t lanes = static_cast<uint32_t>(std::min<uint64_t>(warp, nr - i));
      for (uint32_t l = 0; l < lanes; ++l) {
        const uint64_t idx = i + l;
        uint64_t h = HashToSlot(static_cast<int64_t>(r_keys[idx]), mask);
        uint64_t steps = 1;
        while (table_keys[h] != kEmptySlot) {
          h = (h + 1) & mask;
          ++steps;
        }
        table_keys[h] = static_cast<int64_t>(r_keys[idx]);
        table_pos[h] = static_cast<RowId>(idx);
        load_addrs[l] = table_keys.addr(h);
        store_addrs[l] = table_keys.addr(h);
        // Collision chain steps beyond the first: extra probes, charged as
        // additional warp accesses (approximately batched).
        if (steps > 1) device.Compute(steps - 1);
      }
      device.Load({load_addrs, lanes}, sizeof(int64_t));
      device.Store({store_addrs, lanes}, sizeof(int64_t) + sizeof(RowId));
    }
  }

  // --- Probe kernels: count sweep then write sweep, one S tile per block
  // against the read-only table.
  const uint64_t n_tiles = bit_util::CeilDiv(ns, kProbeTileElems);
  std::vector<uint64_t> tile_matches(n_tiles, 0);
  {
    vgpu::KernelScope ks(device, "nphj_probe_count");
    GPUJOIN_RETURN_IF_ERROR(device.ParallelBlocks(
        n_tiles, [&](uint64_t tile, vgpu::BlockContext& ctx) -> Status {
          const uint64_t begin = tile * kProbeTileElems;
          const uint64_t tile_n = std::min(kProbeTileElems, ns - begin);
          ctx.LoadSeq(s_keys.addr(begin), tile_n, sizeof(K));
          uint64_t o = 0;
          uint64_t addrs[32];
          for (uint64_t j = begin; j < begin + tile_n; j += warp) {
            const uint32_t lanes = static_cast<uint32_t>(
                std::min<uint64_t>(warp, begin + tile_n - j));
            for (uint32_t l = 0; l < lanes; ++l) {
              const uint64_t idx = j + l;
              uint64_t h = HashToSlot(static_cast<int64_t>(s_keys[idx]), mask);
              addrs[l] = table_keys.addr(h);
              uint64_t steps = 1;
              while (table_keys[h] != kEmptySlot) {
                if (table_keys[h] == static_cast<int64_t>(s_keys[idx])) ++o;
                h = (h + 1) & mask;
                ++steps;
              }
              if (steps > 1) ctx.Compute(steps - 1);
            }
            ctx.Load({addrs, lanes}, sizeof(int64_t) + sizeof(RowId));
          }
          tile_matches[tile] = o;
          return Status::OK();
        }));
  }

  std::vector<uint64_t> tile_base(n_tiles + 1, 0);
  for (uint64_t t = 0; t < n_tiles; ++t) {
    tile_base[t + 1] = tile_base[t] + tile_matches[t];
  }
  const uint64_t n_matches = tile_base[n_tiles];
  MatchResult<K> out;
  GPUJOIN_ASSIGN_OR_RETURN(out.keys,
                           vgpu::DeviceBuffer<K>::Allocate(device, n_matches));
  GPUJOIN_ASSIGN_OR_RETURN(
      out.r_pos, vgpu::DeviceBuffer<RowId>::Allocate(device, n_matches));
  GPUJOIN_ASSIGN_OR_RETURN(
      out.s_pos, vgpu::DeviceBuffer<RowId>::Allocate(device, n_matches));

  {
    vgpu::KernelScope ks(device, "nphj_probe_write");
    GPUJOIN_RETURN_IF_ERROR(device.ParallelBlocks(
        n_tiles, [&](uint64_t tile, vgpu::BlockContext& ctx) -> Status {
          const uint64_t begin = tile * kProbeTileElems;
          const uint64_t tile_n = std::min(kProbeTileElems, ns - begin);
          ctx.LoadSeq(s_keys.addr(begin), tile_n, sizeof(K));
          uint64_t o = tile_base[tile];
          uint64_t addrs[32];
          for (uint64_t j = begin; j < begin + tile_n; j += warp) {
            const uint32_t lanes = static_cast<uint32_t>(
                std::min<uint64_t>(warp, begin + tile_n - j));
            for (uint32_t l = 0; l < lanes; ++l) {
              const uint64_t idx = j + l;
              uint64_t h = HashToSlot(static_cast<int64_t>(s_keys[idx]), mask);
              addrs[l] = table_keys.addr(h);
              uint64_t steps = 1;
              while (table_keys[h] != kEmptySlot) {
                if (table_keys[h] == static_cast<int64_t>(s_keys[idx])) {
                  out.keys[o] = s_keys[idx];
                  out.r_pos[o] = table_pos[h];
                  out.s_pos[o] = static_cast<RowId>(idx);
                  ++o;
                }
                h = (h + 1) & mask;
                ++steps;
              }
              if (steps > 1) ctx.Compute(steps - 1);
            }
            ctx.Load({addrs, lanes}, sizeof(int64_t) + sizeof(RowId));
          }
          const uint64_t len = tile_base[tile + 1] - tile_base[tile];
          if (len > 0) {
            ctx.StoreSeq(out.keys.addr(tile_base[tile]), len, sizeof(K));
            ctx.StoreSeq(out.r_pos.addr(tile_base[tile]), len, sizeof(RowId));
            ctx.StoreSeq(out.s_pos.addr(tile_base[tile]), len, sizeof(RowId));
          }
          return Status::OK();
        }));
  }
  return out;
}

}  // namespace gpujoin::prim

#endif  // GPUJOIN_PRIM_HASH_JOIN_H_
