// Bucket-chaining radix partitioner — the PHJ-UM transform (§3.2, Figure 3,
// Sioulas et al.). Two passes of shared-memory-histogram partitioning where
// output positions are claimed with atomics rather than a prefix sum:
//
//  * Non-determinism: the order of tuples inside a partition depends on the
//    atomics' arrival order. We model this by processing input tiles in a
//    seeded pseudo-random interleave (Device::interleave_seed); different
//    seeds produce different — yet all valid — partition layouts (§4.3's
//    argument why this transform cannot support GFTR).
//  * Fragmentation: buckets are fixed-size regions carved from pre-allocated
//    pools; a partition's last bucket is partially empty, and looking up the
//    i-th element of a partitioned column requires chain walking. The pool
//    over-allocation is visible to the device allocator (Table 5).
//  * Skew sensitivity: every tuple performs a shared-memory atomic on its
//    partition's counter; lanes of a warp hitting the same partition
//    serialize (Device::SharedAtomic), which is why Figure 14 shows this
//    transform degrading sharply beyond Zipf factor 1.
//
// The layout (routing of tuples to pool positions, and the store-run
// structure for cost charging) is computed once from the key column by
// BuildBucketChainLayout; ApplyBucketChainToValues replays the identical
// movement for a value column (physical IDs, or the payload of a narrow
// relation).
//
// Parallel simulation: the routing itself is order-dependent (cursors are
// shared across tiles because partitions span tiles), so it is computed
// functionally on the calling thread in the seeded arrival order. The cost
// accounting, by contrast, is per-tile independent once the routing is
// fixed: each arrival-order tile becomes a thread block that re-derives its
// lane digits from the key column and charges its loads, shared atomics and
// staged run flushes through Device::ParallelBlocks. The per-block source
// ranges and run ranges are recorded in the layout so the value replay can
// use the same decomposition.

#ifndef GPUJOIN_PRIM_BUCKET_CHAIN_H_
#define GPUJOIN_PRIM_BUCKET_CHAIN_H_

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <random>
#include <vector>

#include "common/bit_util.h"
#include "common/status.h"
#include "prim/hash.h"
#include "prim/hash_join.h"
#include "prim/match.h"
#include "prim/radix_partition.h"
#include "storage/types.h"
#include "vgpu/buffer.h"
#include "vgpu/device.h"

namespace gpujoin::prim {

inline constexpr RowId kInvalidRow = ~RowId{0};

/// Latency of one serialized bucket allocation on a partition's chain tail
/// (global atomic round trip + next-pointer publication).
inline constexpr double kBucketAllocSerialCycles = 300.0;

/// A contiguous store run (element offset + length) within a pool — one
/// staged bucket flush.
struct StoreRun {
  uint64_t dst;
  uint32_t len;
};

/// One thread block of a bucket-chain pass: the source element range it
/// streamed and its slice of the pass's store runs. Recorded so the value
/// replay charges the identical block decomposition.
struct ChainBlock {
  uint64_t src;        // First source element (into the pass's input pool).
  uint64_t len;        // Source elements streamed by this block.
  uint64_t run_begin;  // First run index owned by this block.
  uint64_t run_end;    // One past the last run index.
};

/// The result of bucket-chain partitioning a key column, plus everything
/// needed to (a) hash-join over the chains and (b) replay the permutation
/// onto value columns with faithful cost charging.
template <typename K>
struct BucketChainLayout {
  /// Final-pass key pool. Partition p occupies pool positions
  /// [starts[p], starts[p] + sizes[p]); between partitions there are
  /// fragmentation gaps up to the next bucket boundary.
  vgpu::DeviceBuffer<K> keys;
  std::vector<uint64_t> starts;
  std::vector<uint64_t> sizes;
  uint32_t bucket_elems = 0;
  uint64_t pool1_elems = 0;  // Pass-1 (coarse) pool size, incl. waste.
  uint64_t pool2_elems = 0;  // Final pool size, incl. waste.

  /// Tuple routing: pool1_pos -> source index, pool2_pos -> pool1_pos
  /// (kInvalidRow in fragmentation gaps).
  std::vector<RowId> perm1;
  std::vector<RowId> perm2;

  /// Contiguous store runs (element offsets into the pass's pool), in
  /// arrival order — the staged bucket flushes of each pass.
  std::vector<StoreRun> runs1;
  std::vector<StoreRun> runs2;

  /// Thread-block decomposition of each pass (arrival order), for replay.
  std::vector<ChainBlock> blocks1;
  std::vector<ChainBlock> blocks2;

  uint32_t num_partitions() const { return static_cast<uint32_t>(starts.size()); }
};

namespace bc_internal {

inline std::vector<uint64_t> ShuffledTiles(uint64_t n_tiles, uint64_t seed,
                                           uint64_t salt) {
  std::vector<uint64_t> order(n_tiles);
  std::iota(order.begin(), order.end(), 0);
  std::mt19937_64 rng(seed ^ (salt * 0x9e3779b97f4a7c15ull));
  std::shuffle(order.begin(), order.end(), rng);
  return order;
}

}  // namespace bc_internal

/// Builds the bucket-chain layout for `keys_in`, charging the key-column
/// traffic and the atomics of both passes. Partitions by the low
/// (bits1 + bits2) key bits; bits1/bits2 <= 8 each (Ampere fan-out limit).
template <typename K>
Result<BucketChainLayout<K>> BuildBucketChainLayout(
    vgpu::Device& device, const vgpu::DeviceBuffer<K>& keys_in, int bits1,
    int bits2, uint32_t bucket_elems) {
  if (bits1 < 1 || bits1 > kMaxRadixBitsPerPass || bits2 < 0 ||
      bits2 > kMaxRadixBitsPerPass) {
    return Status::InvalidArgument("BuildBucketChainLayout: invalid radix bits");
  }
  if (bucket_elems == 0) {
    return Status::InvalidArgument("BuildBucketChainLayout: bucket_elems == 0");
  }
  const uint64_t n = keys_in.size();
  const int total_bits = bits1 + bits2;
  const uint32_t coarse_parts = 1u << bits1;
  const uint32_t num_parts = 1u << total_bits;
  const int warp = device.config().warp_size;

  BucketChainLayout<K> out;
  out.bucket_elems = bucket_elems;

  // --- Coarse (pass 1) pool layout: exact chain lengths per coarse digit.
  std::vector<uint64_t> coarse_sizes(coarse_parts, 0);
  for (uint64_t i = 0; i < n; ++i) {
    ++coarse_sizes[bit_util::RadixDigit(keys_in[i], bits2, bits1)];
  }
  std::vector<uint64_t> coarse_starts(coarse_parts);
  uint64_t pool1 = 0;
  for (uint32_t c = 0; c < coarse_parts; ++c) {
    coarse_starts[c] = pool1;
    pool1 += bit_util::CeilDiv(std::max<uint64_t>(coarse_sizes[c], 1),
                               bucket_elems) *
             bucket_elems;
  }
  out.pool1_elems = pool1;
  out.perm1.assign(pool1, kInvalidRow);

  // Pass-1 key pool is a transient allocation (part of the paper's M_t).
  GPUJOIN_ASSIGN_OR_RETURN(auto keys_pool1,
                           vgpu::DeviceBuffer<K>::Allocate(device, pool1));

  // --- Pass 1: shuffled tiles, atomics per warp, staged run stores. The
  // routing (cursor walk in arrival order) happens functionally up front;
  // each arrival-order tile then charges its traffic as one thread block.
  {
    vgpu::KernelScope ks(device, "bucket_chain_pass1");
    const uint64_t n_tiles = bit_util::CeilDiv(n, kPartitionTileElems);
    const auto order =
        bc_internal::ShuffledTiles(n_tiles, device.interleave_seed(), 1);
    {
      std::vector<uint64_t> cursor = coarse_starts;
      std::vector<uint64_t> tile_start(coarse_parts);
      for (uint64_t b = 0; b < n_tiles; ++b) {
        const uint64_t tb = order[b] * kPartitionTileElems;
        const uint64_t te = std::min(n, tb + kPartitionTileElems);
        const uint64_t first_run = out.runs1.size();
        tile_start = cursor;
        for (uint64_t i = tb; i < te; ++i) {
          const uint32_t d = bit_util::RadixDigit(keys_in[i], bits2, bits1);
          const uint64_t pos = cursor[d]++;
          keys_pool1[pos] = keys_in[i];
          out.perm1[pos] = static_cast<RowId>(i);
        }
        // Block-staged flush: one contiguous run per coarse partition per tile.
        for (uint32_t d = 0; d < coarse_parts; ++d) {
          const uint64_t len = cursor[d] - tile_start[d];
          if (len > 0) {
            out.runs1.push_back({tile_start[d], static_cast<uint32_t>(len)});
          }
        }
        out.blocks1.push_back({tb, te - tb, first_run, out.runs1.size()});
      }
    }
    GPUJOIN_RETURN_IF_ERROR(device.ParallelBlocks(
        out.blocks1.size(), [&](uint64_t b, vgpu::BlockContext& ctx) -> Status {
          const ChainBlock& blk = out.blocks1[b];
          ctx.LoadSeq(keys_in.addr(blk.src), blk.len, sizeof(K));
          uint32_t lane_slots[32];
          for (uint64_t i = 0; i < blk.len; i += warp) {
            const uint32_t lanes =
                static_cast<uint32_t>(std::min<uint64_t>(warp, blk.len - i));
            for (uint32_t l = 0; l < lanes; ++l) {
              lane_slots[l] =
                  bit_util::RadixDigit(keys_in[blk.src + i + l], bits2, bits1);
            }
            ctx.SharedAtomic({lane_slots, lanes});
          }
          for (uint64_t r = blk.run_begin; r < blk.run_end; ++r) {
            ctx.StoreSeq(keys_pool1.addr(out.runs1[r].dst), out.runs1[r].len,
                         sizeof(K));
          }
          return Status::OK();
        }));
    // Bucket allocation bookkeeping: a global atomic + next-pointer write
    // per allocated bucket. Allocations for the SAME partition serialize
    // across thread blocks on its chain tail — under a skewed distribution
    // the hottest partition's chain becomes a device-wide critical path
    // (the §5.2.4 bucket-chain collapse).
    device.Compute((pool1 / bucket_elems) * 3);
    // Only the allocations *beyond* a balanced chain length form a blocking
    // chain (balanced allocations proceed in parallel across partitions).
    uint64_t max_chain = 0;
    for (uint32_t c = 0; c < coarse_parts; ++c) {
      max_chain = std::max(
          max_chain,
          bit_util::CeilDiv(std::max<uint64_t>(coarse_sizes[c], 1), bucket_elems));
    }
    const double avg_chain1 =
        static_cast<double>(pool1 / bucket_elems) / coarse_parts;
    device.SerialStall(std::max(0.0, static_cast<double>(max_chain) - avg_chain1) *
                       kBucketAllocSerialCycles);
  }

  // --- Final (pass 2) pool layout.
  std::vector<uint64_t> sizes(num_parts, 0);
  for (uint64_t i = 0; i < n; ++i) {
    ++sizes[bit_util::RadixDigit(keys_in[i], 0, total_bits)];
  }
  out.sizes = sizes;
  out.starts.resize(num_parts);
  uint64_t pool2 = 0;
  for (uint32_t p = 0; p < num_parts; ++p) {
    out.starts[p] = pool2;
    pool2 += bit_util::CeilDiv(std::max<uint64_t>(sizes[p], 1), bucket_elems) *
             bucket_elems;
  }
  out.pool2_elems = pool2;
  out.perm2.assign(pool2, kInvalidRow);
  GPUJOIN_ASSIGN_OR_RETURN(out.keys, vgpu::DeviceBuffer<K>::Allocate(device, pool2));

  // --- Pass 2: per coarse partition, refine by the low bits2 bits. Routing
  // runs functionally first (same arrival-order rule as pass 1), then the
  // recorded blocks charge in parallel.
  {
    vgpu::KernelScope ks(device, "bucket_chain_pass2");
    const uint32_t fine_parts = 1u << bits2;
    {
      std::vector<uint64_t> cursor = out.starts;
      std::vector<uint64_t> tile_start(fine_parts);
      for (uint32_t c = 0; c < coarse_parts; ++c) {
        const uint64_t cb = coarse_starts[c];
        const uint64_t cn = coarse_sizes[c];
        // Final digits of coarse partition c occupy the contiguous id range
        // [c << bits2, (c + 1) << bits2).
        const uint32_t d_base = c << bits2;
        const uint64_t n_tiles = bit_util::CeilDiv(cn, kPartitionTileElems);
        for (uint64_t t : bc_internal::ShuffledTiles(
                 n_tiles, device.interleave_seed(), 1000 + c)) {
          const uint64_t tb = t * kPartitionTileElems;
          const uint64_t te = std::min(cn, tb + kPartitionTileElems);
          const uint64_t first_run = out.runs2.size();
          for (uint32_t f = 0; f < fine_parts; ++f) {
            tile_start[f] = cursor[d_base + f];
          }
          for (uint64_t i = tb; i < te; ++i) {
            const uint64_t p1pos = cb + i;
            const K key = keys_pool1[p1pos];
            const uint32_t d = bit_util::RadixDigit(key, 0, total_bits);
            const uint64_t pos = cursor[d]++;
            out.keys[pos] = key;
            out.perm2[pos] = static_cast<RowId>(p1pos);
          }
          for (uint32_t f = 0; f < fine_parts; ++f) {
            const uint64_t len = cursor[d_base + f] - tile_start[f];
            if (len > 0) {
              out.runs2.push_back({tile_start[f], static_cast<uint32_t>(len)});
            }
          }
          out.blocks2.push_back({cb + tb, te - tb, first_run, out.runs2.size()});
        }
      }
    }
    GPUJOIN_RETURN_IF_ERROR(device.ParallelBlocks(
        out.blocks2.size(), [&](uint64_t b, vgpu::BlockContext& ctx) -> Status {
          const ChainBlock& blk = out.blocks2[b];
          ctx.LoadSeq(keys_pool1.addr(blk.src), blk.len, sizeof(K));
          uint32_t lane_slots[32];
          for (uint64_t i = 0; i < blk.len; i += warp) {
            const uint32_t lanes =
                static_cast<uint32_t>(std::min<uint64_t>(warp, blk.len - i));
            for (uint32_t l = 0; l < lanes; ++l) {
              lane_slots[l] =
                  bit_util::RadixDigit(keys_pool1[blk.src + i + l], 0, bits2);
            }
            ctx.SharedAtomic({lane_slots, lanes});
          }
          for (uint64_t r = blk.run_begin; r < blk.run_end; ++r) {
            ctx.StoreSeq(out.keys.addr(out.runs2[r].dst), out.runs2[r].len,
                         sizeof(K));
          }
          return Status::OK();
        }));
    device.Compute((pool2 / bucket_elems) * 3);
    uint64_t max_chain = 0;
    for (uint32_t p = 0; p < num_parts; ++p) {
      max_chain = std::max(
          max_chain,
          bit_util::CeilDiv(std::max<uint64_t>(sizes[p], 1), bucket_elems));
    }
    const double avg_chain2 =
        static_cast<double>(pool2 / bucket_elems) / num_parts;
    device.SerialStall(std::max(0.0, static_cast<double>(max_chain) - avg_chain2) *
                       kBucketAllocSerialCycles);
  }
  return out;
}

/// Replays the layout's two-pass movement onto a value column (the physical
/// IDs, or a narrow relation's payload). Returns the final-pass value pool
/// (same positions as layout.keys). Charges the same traffic pattern the
/// key column paid (minus the atomics, which were already charged), block
/// for block via the layout's recorded pass decomposition.
template <typename K, typename V>
Result<vgpu::DeviceBuffer<V>> ApplyBucketChainToValues(
    vgpu::Device& device, const BucketChainLayout<K>& layout,
    const vgpu::DeviceBuffer<V>& vals_in) {
  GPUJOIN_ASSIGN_OR_RETURN(
      auto pool1, vgpu::DeviceBuffer<V>::Allocate(device, layout.pool1_elems));
  GPUJOIN_ASSIGN_OR_RETURN(
      auto pool2, vgpu::DeviceBuffer<V>::Allocate(device, layout.pool2_elems));
  {
    vgpu::KernelScope ks(device, "bucket_chain_vals_pass1");
    for (uint64_t pos = 0; pos < layout.pool1_elems; ++pos) {
      if (layout.perm1[pos] != kInvalidRow) pool1[pos] = vals_in[layout.perm1[pos]];
    }
    GPUJOIN_RETURN_IF_ERROR(device.ParallelBlocks(
        layout.blocks1.size(), [&](uint64_t b, vgpu::BlockContext& ctx) -> Status {
          const ChainBlock& blk = layout.blocks1[b];
          ctx.LoadSeq(vals_in.addr(blk.src), blk.len, sizeof(V));
          for (uint64_t r = blk.run_begin; r < blk.run_end; ++r) {
            ctx.StoreSeq(pool1.addr(layout.runs1[r].dst), layout.runs1[r].len,
                         sizeof(V));
          }
          return Status::OK();
        }));
  }
  {
    vgpu::KernelScope ks(device, "bucket_chain_vals_pass2");
    for (uint64_t pos = 0; pos < layout.pool2_elems; ++pos) {
      if (layout.perm2[pos] != kInvalidRow) pool2[pos] = pool1[layout.perm2[pos]];
    }
    GPUJOIN_RETURN_IF_ERROR(device.ParallelBlocks(
        layout.blocks2.size(), [&](uint64_t b, vgpu::BlockContext& ctx) -> Status {
          const ChainBlock& blk = layout.blocks2[b];
          ctx.LoadSeq(pool1.addr(blk.src), blk.len, sizeof(V));
          for (uint64_t r = blk.run_begin; r < blk.run_end; ++r) {
            ctx.StoreSeq(pool2.addr(layout.runs2[r].dst), layout.runs2[r].len,
                         sizeof(V));
          }
          return Status::OK();
        }));
  }
  return pool2;
}

/// Match finding over bucket-chained co-partitions: for every partition,
/// iterate the build side's chain bucket by bucket, build a shared-memory
/// table from the bucket, and probe with the probe side's chain (§3.2's
/// block-nested-loop over build buckets). Positions refer to the final key
/// pools of the respective layouts. One partition per thread block; count
/// sweep, then a write sweep into precomputed per-partition output ranges.
template <typename K>
Result<MatchResult<K>> HashJoinBucketChains(vgpu::Device& device,
                                            const BucketChainLayout<K>& r,
                                            const BucketChainLayout<K>& s,
                                            uint64_t capacity) {
  if (r.starts.size() != s.starts.size()) {
    return Status::InvalidArgument("HashJoinBucketChains: partition mismatch");
  }
  const size_t num_parts = r.starts.size();
  const int warp = device.config().warp_size;
  const uint64_t chunk_elems = std::min<uint64_t>(capacity, r.bucket_elems);
  const uint64_t table_size = bit_util::NextPowerOfTwo(chunk_elems * 2);
  const uint64_t mask = table_size - 1;

  std::vector<uint64_t> part_matches(num_parts, 0);
  {
    vgpu::KernelScope ks(device, "phj_um_probe_count");
    GPUJOIN_RETURN_IF_ERROR(device.ParallelBlocks(
        num_parts, [&](uint64_t p, vgpu::BlockContext& ctx) -> Status {
          const uint64_t rb = r.starts[p], rn = r.sizes[p];
          const uint64_t sb = s.starts[p], sn = s.sizes[p];
          if (rn == 0 || sn == 0) return Status::OK();
          std::vector<int64_t> slot_keys(table_size, kEmptySlot);
          uint64_t o = 0;
          for (uint64_t chunk = 0; chunk < rn; chunk += chunk_elems) {
            const uint64_t cn = std::min(chunk_elems, rn - chunk);
            ctx.Compute(4);  // Chain header / next-pointer bookkeeping.
            ctx.LoadSeq(r.keys.addr(rb + chunk), cn, sizeof(K));
            ctx.SharedAccess(bit_util::CeilDiv(cn, warp) * 2);
            std::fill(slot_keys.begin(), slot_keys.end(), kEmptySlot);
            for (uint64_t i = 0; i < cn; ++i) {
              const uint64_t pos = rb + chunk + i;
              uint64_t h = HashToSlot(static_cast<int64_t>(r.keys[pos]), mask);
              while (slot_keys[h] != kEmptySlot) h = (h + 1) & mask;
              slot_keys[h] = static_cast<int64_t>(r.keys[pos]);
            }
            for (uint64_t sc = 0; sc < sn; sc += s.bucket_elems) {
              const uint64_t scn = std::min<uint64_t>(s.bucket_elems, sn - sc);
              ctx.Compute(4);
              ctx.LoadSeq(s.keys.addr(sb + sc), scn, sizeof(K));
              ctx.SharedAccess(bit_util::CeilDiv(scn, warp) * 2);
              for (uint64_t j = 0; j < scn; ++j) {
                const uint64_t spos = sb + sc + j;
                uint64_t h = HashToSlot(static_cast<int64_t>(s.keys[spos]), mask);
                while (slot_keys[h] != kEmptySlot) {
                  if (slot_keys[h] == static_cast<int64_t>(s.keys[spos])) ++o;
                  h = (h + 1) & mask;
                }
              }
            }
          }
          part_matches[p] = o;
          return Status::OK();
        }));
  }

  std::vector<uint64_t> out_base(num_parts + 1, 0);
  for (size_t p = 0; p < num_parts; ++p) {
    out_base[p + 1] = out_base[p] + part_matches[p];
  }
  const uint64_t n_matches = out_base[num_parts];
  MatchResult<K> out;
  GPUJOIN_ASSIGN_OR_RETURN(out.keys,
                           vgpu::DeviceBuffer<K>::Allocate(device, n_matches));
  GPUJOIN_ASSIGN_OR_RETURN(
      out.r_pos, vgpu::DeviceBuffer<RowId>::Allocate(device, n_matches));
  GPUJOIN_ASSIGN_OR_RETURN(
      out.s_pos, vgpu::DeviceBuffer<RowId>::Allocate(device, n_matches));

  {
    vgpu::KernelScope ks(device, "phj_um_probe_write");
    GPUJOIN_RETURN_IF_ERROR(device.ParallelBlocks(
        num_parts, [&](uint64_t p, vgpu::BlockContext& ctx) -> Status {
          const uint64_t rb = r.starts[p], rn = r.sizes[p];
          const uint64_t sb = s.starts[p], sn = s.sizes[p];
          if (rn == 0 || sn == 0) return Status::OK();
          std::vector<int64_t> slot_keys(table_size, kEmptySlot);
          std::vector<RowId> slot_pos(table_size, 0);
          uint64_t o = out_base[p];
          for (uint64_t chunk = 0; chunk < rn; chunk += chunk_elems) {
            const uint64_t cn = std::min(chunk_elems, rn - chunk);
            ctx.Compute(4);
            ctx.LoadSeq(r.keys.addr(rb + chunk), cn, sizeof(K));
            ctx.SharedAccess(bit_util::CeilDiv(cn, warp) * 2);
            std::fill(slot_keys.begin(), slot_keys.end(), kEmptySlot);
            for (uint64_t i = 0; i < cn; ++i) {
              const uint64_t pos = rb + chunk + i;
              uint64_t h = HashToSlot(static_cast<int64_t>(r.keys[pos]), mask);
              while (slot_keys[h] != kEmptySlot) h = (h + 1) & mask;
              slot_keys[h] = static_cast<int64_t>(r.keys[pos]);
              slot_pos[h] = static_cast<RowId>(pos);
            }
            for (uint64_t sc = 0; sc < sn; sc += s.bucket_elems) {
              const uint64_t scn = std::min<uint64_t>(s.bucket_elems, sn - sc);
              ctx.Compute(4);
              ctx.LoadSeq(s.keys.addr(sb + sc), scn, sizeof(K));
              ctx.SharedAccess(bit_util::CeilDiv(scn, warp) * 2);
              for (uint64_t j = 0; j < scn; ++j) {
                const uint64_t spos = sb + sc + j;
                uint64_t h = HashToSlot(static_cast<int64_t>(s.keys[spos]), mask);
                while (slot_keys[h] != kEmptySlot) {
                  if (slot_keys[h] == static_cast<int64_t>(s.keys[spos])) {
                    out.keys[o] = s.keys[spos];
                    out.r_pos[o] = slot_pos[h];
                    out.s_pos[o] = static_cast<RowId>(spos);
                    ++o;
                  }
                  h = (h + 1) & mask;
                }
              }
            }
          }
          const uint64_t len = out_base[p + 1] - out_base[p];
          if (len > 0) {
            ctx.StoreSeq(out.keys.addr(out_base[p]), len, sizeof(K));
            ctx.StoreSeq(out.r_pos.addr(out_base[p]), len, sizeof(RowId));
            ctx.StoreSeq(out.s_pos.addr(out_base[p]), len, sizeof(RowId));
          }
          return Status::OK();
        }));
  }
  return out;
}

}  // namespace gpujoin::prim

#endif  // GPUJOIN_PRIM_BUCKET_CHAIN_H_
