// GATHER / SCATTER primitives (§2.3).
//
// GATHER computes out[i] = in[map[i]]. The map is always read sequentially
// and the output written sequentially; whether the read of `in` is clustered
// (coalesced, cache-friendly) or unclustered (random) depends entirely on the
// ordering of `map` — which is precisely the effect the GFTR pattern exploits
// (§4.1, Table 4, Figure 7). The simulated cost model sees the actual lane
// addresses, so clustering emerges from the data, not from a flag.
//
// All three kernels run one 4096-element tile per thread block through
// Device::ParallelBlocks: tiles read/write disjoint index ranges of the
// streams, so the blocks are independent. SCATTER additionally requires a
// duplicate-free map (a permutation prefix) for that independence — every
// call site scatters by a permutation, and duplicate destinations would be
// a data race on a real GPU too.

#ifndef GPUJOIN_PRIM_GATHER_H_
#define GPUJOIN_PRIM_GATHER_H_

#include <algorithm>
#include <cstdint>

#include "common/bit_util.h"
#include "common/status.h"
#include "storage/types.h"
#include "vgpu/buffer.h"
#include "vgpu/device.h"

namespace gpujoin::prim {

/// Elements per thread-block tile of the gather/scatter kernels.
inline constexpr uint64_t kGatherTileElems = 4096;

/// out[i] = in[map[i]] for i in [0, map.size()).
template <typename T>
Status Gather(vgpu::Device& device, const vgpu::DeviceBuffer<T>& in,
              const vgpu::DeviceBuffer<RowId>& map, vgpu::DeviceBuffer<T>* out) {
  if (out->size() != map.size()) {
    return Status::InvalidArgument("Gather: output size != map size");
  }
  const uint64_t n = map.size();
  const int warp = device.config().warp_size;
  vgpu::KernelScope ks(device, "gather");
  const uint64_t n_tiles = bit_util::CeilDiv(n, kGatherTileElems);
  return device.ParallelBlocks(
      n_tiles, [&](uint64_t tile, vgpu::BlockContext& ctx) -> Status {
        const uint64_t begin = tile * kGatherTileElems;
        const uint64_t tile_n = std::min(kGatherTileElems, n - begin);
        // The map read and output write are fully coalesced streams: charge
        // them as bulk runs. Only the data read depends on the map contents
        // and needs per-warp lane addresses.
        ctx.LoadSeq(map.addr(begin), tile_n, sizeof(RowId));
        uint64_t addrs[32];
        for (uint64_t i = begin; i < begin + tile_n; i += warp) {
          const uint32_t lanes = static_cast<uint32_t>(
              std::min<uint64_t>(warp, begin + tile_n - i));
          for (uint32_t l = 0; l < lanes; ++l) {
            const RowId src = map[i + l];
            if (src >= in.size()) {
              return Status::InvalidArgument("Gather: map index out of range");
            }
            addrs[l] = in.addr(src);
            (*out)[i + l] = in[src];
          }
          ctx.Load({addrs, lanes}, sizeof(T));
        }
        ctx.StoreSeq(out->addr(begin), tile_n, sizeof(T));
        return Status::OK();
      });
}

/// out[map[i]] = in[i] for i in [0, map.size()). The map must be
/// duplicate-free (concurrent blocks would otherwise race on a real GPU).
template <typename T>
Status Scatter(vgpu::Device& device, const vgpu::DeviceBuffer<T>& in,
               const vgpu::DeviceBuffer<RowId>& map, vgpu::DeviceBuffer<T>* out) {
  if (in.size() != map.size()) {
    return Status::InvalidArgument("Scatter: input size != map size");
  }
  const uint64_t n = map.size();
  const int warp = device.config().warp_size;
  vgpu::KernelScope ks(device, "scatter");
  const uint64_t n_tiles = bit_util::CeilDiv(n, kGatherTileElems);
  return device.ParallelBlocks(
      n_tiles, [&](uint64_t tile, vgpu::BlockContext& ctx) -> Status {
        const uint64_t begin = tile * kGatherTileElems;
        const uint64_t tile_n = std::min(kGatherTileElems, n - begin);
        // Map and input are fully coalesced streams: charge them as runs.
        ctx.LoadSeq(map.addr(begin), tile_n, sizeof(RowId));
        ctx.LoadSeq(in.addr(begin), tile_n, sizeof(T));
        uint64_t addrs[32];
        for (uint64_t i = begin; i < begin + tile_n; i += warp) {
          const uint32_t lanes = static_cast<uint32_t>(
              std::min<uint64_t>(warp, begin + tile_n - i));
          for (uint32_t l = 0; l < lanes; ++l) {
            const RowId dst = map[i + l];
            if (dst >= out->size()) {
              return Status::InvalidArgument("Scatter: map index out of range");
            }
            addrs[l] = out->addr(dst);
            (*out)[dst] = in[i + l];
          }
          ctx.Store({addrs, lanes}, sizeof(T));
        }
        return Status::OK();
      });
}

/// Fills ids with 0, 1, ..., n-1 (physical tuple-identifier initialization).
inline Status Iota(vgpu::Device& device, vgpu::DeviceBuffer<RowId>* ids) {
  const uint64_t n = ids->size();
  vgpu::KernelScope ks(device, "iota");
  const uint64_t n_tiles = bit_util::CeilDiv(n, kGatherTileElems);
  return device.ParallelBlocks(
      n_tiles, [&](uint64_t tile, vgpu::BlockContext& ctx) -> Status {
        const uint64_t begin = tile * kGatherTileElems;
        const uint64_t tile_n = std::min(kGatherTileElems, n - begin);
        for (uint64_t i = begin; i < begin + tile_n; ++i) {
          (*ids)[i] = static_cast<RowId>(i);
        }
        ctx.StoreSeq(ids->addr(begin), tile_n, sizeof(RowId));
        return Status::OK();
      });
}

}  // namespace gpujoin::prim

#endif  // GPUJOIN_PRIM_GATHER_H_
