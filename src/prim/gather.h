// GATHER / SCATTER primitives (§2.3).
//
// GATHER computes out[i] = in[map[i]]. The map is always read sequentially
// and the output written sequentially; whether the read of `in` is clustered
// (coalesced, cache-friendly) or unclustered (random) depends entirely on the
// ordering of `map` — which is precisely the effect the GFTR pattern exploits
// (§4.1, Table 4, Figure 7). The simulated cost model sees the actual lane
// addresses, so clustering emerges from the data, not from a flag.

#ifndef GPUJOIN_PRIM_GATHER_H_
#define GPUJOIN_PRIM_GATHER_H_

#include <algorithm>
#include <cstdint>

#include "common/status.h"
#include "storage/types.h"
#include "vgpu/buffer.h"
#include "vgpu/device.h"

namespace gpujoin::prim {

/// out[i] = in[map[i]] for i in [0, map.size()).
template <typename T>
Status Gather(vgpu::Device& device, const vgpu::DeviceBuffer<T>& in,
              const vgpu::DeviceBuffer<RowId>& map, vgpu::DeviceBuffer<T>* out) {
  if (out->size() != map.size()) {
    return Status::InvalidArgument("Gather: output size != map size");
  }
  const uint64_t n = map.size();
  const int warp = device.config().warp_size;
  vgpu::KernelScope ks(device, "gather");
  // The map read and output write are fully coalesced streams: charge them
  // as bulk runs. Only the data read depends on the map contents and needs
  // per-warp lane addresses.
  device.LoadSeq(map.addr(), n, sizeof(RowId));
  uint64_t addrs[32];
  for (uint64_t i = 0; i < n; i += warp) {
    const uint32_t lanes = static_cast<uint32_t>(
        std::min<uint64_t>(warp, n - i));
    for (uint32_t l = 0; l < lanes; ++l) {
      const RowId src = map[i + l];
      if (src >= in.size()) {
        return Status::InvalidArgument("Gather: map index out of range");
      }
      addrs[l] = in.addr(src);
      (*out)[i + l] = in[src];
    }
    device.Load({addrs, lanes}, sizeof(T));
  }
  device.StoreSeq(out->addr(), n, sizeof(T));
  return Status::OK();
}

/// out[map[i]] = in[i] for i in [0, map.size()).
template <typename T>
Status Scatter(vgpu::Device& device, const vgpu::DeviceBuffer<T>& in,
               const vgpu::DeviceBuffer<RowId>& map, vgpu::DeviceBuffer<T>* out) {
  if (in.size() != map.size()) {
    return Status::InvalidArgument("Scatter: input size != map size");
  }
  const uint64_t n = map.size();
  const int warp = device.config().warp_size;
  vgpu::KernelScope ks(device, "scatter");
  // Map and input are fully coalesced streams: charge them as bulk runs.
  device.LoadSeq(map.addr(), n, sizeof(RowId));
  device.LoadSeq(in.addr(), n, sizeof(T));
  uint64_t addrs[32];
  for (uint64_t i = 0; i < n; i += warp) {
    const uint32_t lanes = static_cast<uint32_t>(
        std::min<uint64_t>(warp, n - i));
    for (uint32_t l = 0; l < lanes; ++l) {
      const RowId dst = map[i + l];
      if (dst >= out->size()) {
        return Status::InvalidArgument("Scatter: map index out of range");
      }
      addrs[l] = out->addr(dst);
      (*out)[dst] = in[i + l];
    }
    device.Store({addrs, lanes}, sizeof(T));
  }
  return Status::OK();
}

/// Fills ids with 0, 1, ..., n-1 (physical tuple-identifier initialization).
inline Status Iota(vgpu::Device& device, vgpu::DeviceBuffer<RowId>* ids) {
  vgpu::KernelScope ks(device, "iota");
  for (uint64_t i = 0; i < ids->size(); ++i) (*ids)[i] = static_cast<RowId>(i);
  device.StoreSeq(ids->addr(), ids->size(), sizeof(RowId));
  return Status::OK();
}

}  // namespace gpujoin::prim

#endif  // GPUJOIN_PRIM_GATHER_H_
