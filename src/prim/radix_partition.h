// RADIX-PARTITION primitive (§2.3 of the paper).
//
// Stable single-pass partitioning of a (key, value) pair of arrays by up to
// 8 radix bits (the paper's Ampere limit of 256 partitions per invocation).
// The simulated implementation mirrors the CUB/OneSweep structure the paper
// relies on:
//   1. histogram kernel: one tile of keys per thread block, warp-aggregated
//      shared-memory histogram (skew-robust: no per-tuple atomic contention),
//   2. an exclusive prefix sum over the 2^bits counters,
//   3. scatter kernel: tiles are staged in shared memory and flushed
//      per-partition in contiguous runs, so writes are mostly coalesced.
//
// Both data-parallel kernels run block-tile by block-tile through
// Device::ParallelBlocks: each 4096-element tile is an independent thread
// block whose write destinations are precomputed from the per-tile
// histograms (the OneSweep decoupled-lookback analog, resolved exactly
// because the simulator already knows every tile's counts), so the blocks
// are simulation-parallel and the output is bit-identical to a sequential
// stable partition.
//
// Multi-pass composition (LSD order, stability makes the composition group
// by the full digit) and SORT-PAIRS are built on top of this pass.

#ifndef GPUJOIN_PRIM_RADIX_PARTITION_H_
#define GPUJOIN_PRIM_RADIX_PARTITION_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/bit_util.h"
#include "common/status.h"
#include "vgpu/buffer.h"
#include "vgpu/device.h"

namespace gpujoin::prim {

/// Maximum radix bits per RADIX-PARTITION invocation (256 partitions),
/// matching the paper's description of the Ampere-generation primitive.
inline constexpr int kMaxRadixBitsPerPass = 8;

/// Elements staged per thread-block tile in the histogram/scatter phases.
inline constexpr uint64_t kPartitionTileElems = 4096;

/// Stable partition of (keys, vals) by key bits [bit_lo, bit_lo + bits).
/// Results are written to keys_out / vals_out (same sizes as the inputs).
/// If histogram_out != nullptr it receives the 2^bits partition sizes.
/// keys_out may be nullptr for a values-only final pass (the materialization
/// re-transform of Algorithm 1 never reads the transformed keys, so the last
/// pass can skip writing them).
///
/// V may be any trivially copyable 4/8-byte value type (payload or RowId).
template <typename K, typename V>
Status RadixPartitionPass(vgpu::Device& device, const vgpu::DeviceBuffer<K>& keys_in,
                          const vgpu::DeviceBuffer<V>& vals_in,
                          vgpu::DeviceBuffer<K>* keys_out,
                          vgpu::DeviceBuffer<V>* vals_out, int bit_lo, int bits,
                          std::vector<uint64_t>* histogram_out = nullptr) {
  if (bits < 1 || bits > kMaxRadixBitsPerPass) {
    return Status::InvalidArgument("RadixPartitionPass: bits must be in [1,8], got " +
                                   std::to_string(bits));
  }
  const uint64_t n = keys_in.size();
  if (vals_in.size() != n || vals_out->size() != n ||
      (keys_out != nullptr && keys_out->size() != n)) {
    return Status::InvalidArgument("RadixPartitionPass: size mismatch");
  }
  const uint32_t fanout = 1u << bits;
  const int warp = device.config().warp_size;
  const uint64_t n_tiles = bit_util::CeilDiv(n, kPartitionTileElems);

  // --- Kernel 1: histogram. One tile per block: sequential tile read +
  // warp-aggregated shared-memory counters. Each block owns its slice of
  // tile_counts, so blocks write disjoint host ranges.
  std::vector<uint64_t> tile_counts(n_tiles * fanout, 0);
  {
    vgpu::KernelScope ks(device, "radix_histogram");
    GPUJOIN_RETURN_IF_ERROR(device.ParallelBlocks(
        n_tiles, [&](uint64_t tile, vgpu::BlockContext& ctx) -> Status {
          const uint64_t begin = tile * kPartitionTileElems;
          const uint64_t tile_n = std::min(kPartitionTileElems, n - begin);
          ctx.LoadSeq(keys_in.addr(begin), tile_n, sizeof(K));
          uint64_t* mine = tile_counts.data() + tile * fanout;
          for (uint64_t i = begin; i < begin + tile_n; ++i) {
            ++mine[bit_util::RadixDigit(keys_in[i], bit_lo, bits)];
          }
          // Warp-aggregated histogram update: one shared access per warp.
          ctx.SharedAccess(bit_util::CeilDiv(tile_n, warp));
          ctx.Compute(bit_util::CeilDiv(tile_n, warp));
          return Status::OK();
        }));
  }
  std::vector<uint64_t> counts(fanout, 0);
  for (uint64_t tile = 0; tile < n_tiles; ++tile) {
    for (uint32_t d = 0; d < fanout; ++d) {
      counts[d] += tile_counts[tile * fanout + d];
    }
  }

  // --- Kernel 2: exclusive prefix sum over the counters (tiny).
  std::vector<uint64_t> offsets(fanout + 1, 0);
  {
    vgpu::KernelScope ks(device, "radix_scan");
    for (uint32_t p = 0; p < fanout; ++p) offsets[p + 1] = offsets[p] + counts[p];
    device.Compute(bit_util::CeilDiv(fanout, warp) * 2);
  }

  // --- Kernel 3: scatter. Tiles are staged in shared memory and flushed in
  // per-partition contiguous runs. Each tile's run start per digit is fully
  // determined by the partition offsets plus the preceding tiles' counts
  // (decoupled lookback, resolved exactly), so every block writes disjoint
  // output ranges and the result is the same stable order the sequential
  // cursor walk produces.
  {
    vgpu::KernelScope ks(device, "radix_scatter");
    std::vector<uint64_t> tile_cursor(n_tiles * fanout);
    {
      std::vector<uint64_t> run(offsets.begin(), offsets.end() - 1);
      for (uint64_t tile = 0; tile < n_tiles; ++tile) {
        for (uint32_t d = 0; d < fanout; ++d) {
          tile_cursor[tile * fanout + d] = run[d];
          run[d] += tile_counts[tile * fanout + d];
        }
      }
    }
    GPUJOIN_RETURN_IF_ERROR(device.ParallelBlocks(
        n_tiles, [&](uint64_t tile, vgpu::BlockContext& ctx) -> Status {
          const uint64_t begin = tile * kPartitionTileElems;
          const uint64_t tile_n = std::min(kPartitionTileElems, n - begin);
          ctx.LoadSeq(keys_in.addr(begin), tile_n, sizeof(K));
          ctx.LoadSeq(vals_in.addr(begin), tile_n, sizeof(V));
          // Stage + rank within the tile: ~2 shared accesses per warp.
          ctx.SharedAccess(bit_util::CeilDiv(tile_n, warp) * 2);
          ctx.Compute(bit_util::CeilDiv(tile_n, warp));

          // Functionally place the tile's elements at its precomputed
          // per-digit cursors (stable within the tile and across tiles).
          std::vector<uint64_t> cursor(tile_cursor.begin() + tile * fanout,
                                       tile_cursor.begin() + (tile + 1) * fanout);
          for (uint64_t i = begin; i < begin + tile_n; ++i) {
            const uint32_t d = bit_util::RadixDigit(keys_in[i], bit_lo, bits);
            const uint64_t pos = cursor[d]++;
            if (keys_out != nullptr) (*keys_out)[pos] = keys_in[i];
            (*vals_out)[pos] = vals_in[i];
          }
          // The tile is staged in shared memory, so elements headed to the
          // same partition flush together: one contiguous run per digit.
          for (uint32_t d = 0; d < fanout; ++d) {
            const uint64_t start = tile_cursor[tile * fanout + d];
            const uint64_t len = cursor[d] - start;
            if (len == 0) continue;
            if (keys_out != nullptr) {
              ctx.StoreSeq(keys_out->addr(start), len, sizeof(K));
            }
            ctx.StoreSeq(vals_out->addr(start), len, sizeof(V));
          }
          return Status::OK();
        }));
  }

  if (histogram_out != nullptr) *histogram_out = std::move(counts);
  return Status::OK();
}

/// Stable LSD multi-pass partition by key bits [0, total_bits): after the
/// passes, elements are grouped by their full `total_bits` digit, in input
/// order within each group. Ping-pongs between the in/out buffers; the final
/// result is guaranteed to land in (keys, vals) (an extra copy pass is
/// charged if the pass count is odd... avoided by alternating from the right
/// end). Returns the number of passes executed.
template <typename K, typename V>
Result<int> RadixPartitionMultiPass(vgpu::Device& device,
                                    vgpu::DeviceBuffer<K>* keys,
                                    vgpu::DeviceBuffer<V>* vals,
                                    vgpu::DeviceBuffer<K>* keys_tmp,
                                    vgpu::DeviceBuffer<V>* vals_tmp,
                                    int total_bits) {
  if (total_bits < 1) return Status::InvalidArgument("total_bits must be >= 1");
  // Split into balanced passes of <= 8 bits, LSD order.
  const int passes = static_cast<int>(
      bit_util::CeilDiv(static_cast<uint64_t>(total_bits), kMaxRadixBitsPerPass));
  std::vector<int> widths(passes, total_bits / passes);
  for (int i = 0; i < total_bits % passes; ++i) ++widths[i];

  vgpu::DeviceBuffer<K>* ka = keys;
  vgpu::DeviceBuffer<V>* va = vals;
  vgpu::DeviceBuffer<K>* kb = keys_tmp;
  vgpu::DeviceBuffer<V>* vb = vals_tmp;
  int bit_lo = 0;
  for (int p = 0; p < passes; ++p) {
    GPUJOIN_RETURN_IF_ERROR(
        RadixPartitionPass(device, *ka, *va, kb, vb, bit_lo, widths[p]));
    bit_lo += widths[p];
    std::swap(ka, kb);
    std::swap(va, vb);
  }
  if (ka != keys) {
    // Odd pass count: result is in the tmp buffers; swap contents (free on a
    // real GPU — just pointer exchange — so no cost is charged).
    std::swap(*keys, *keys_tmp);
    std::swap(*vals, *vals_tmp);
  }
  return passes;
}

/// Computes the partition boundaries of an array already grouped by bits
/// [0, bits): one sequential read + histogram + prefix sum (the explicit
/// "extra histogram" step of §4.3). offsets gets 2^bits + 1 entries.
template <typename K>
Status ComputePartitionOffsets(vgpu::Device& device,
                               const vgpu::DeviceBuffer<K>& keys, int bits,
                               std::vector<uint64_t>* offsets) {
  const uint32_t fanout = 1u << bits;
  const uint64_t n = keys.size();
  const int warp = device.config().warp_size;
  const uint64_t n_tiles = bit_util::CeilDiv(n, kPartitionTileElems);
  std::vector<uint64_t> tile_counts(n_tiles * fanout, 0);
  {
    vgpu::KernelScope ks(device, "partition_offsets");
    GPUJOIN_RETURN_IF_ERROR(device.ParallelBlocks(
        n_tiles, [&](uint64_t tile, vgpu::BlockContext& ctx) -> Status {
          const uint64_t begin = tile * kPartitionTileElems;
          const uint64_t tile_n = std::min(kPartitionTileElems, n - begin);
          ctx.LoadSeq(keys.addr(begin), tile_n, sizeof(K));
          uint64_t* mine = tile_counts.data() + tile * fanout;
          for (uint64_t i = begin; i < begin + tile_n; ++i) {
            ++mine[bit_util::RadixDigit(keys[i], 0, bits)];
          }
          ctx.SharedAccess(bit_util::CeilDiv(tile_n, warp));
          return Status::OK();
        }));
    device.Compute(bit_util::CeilDiv(fanout, 32) * 2);
  }
  offsets->assign(fanout + 1, 0);
  for (uint32_t p = 0; p < fanout; ++p) {
    uint64_t count = 0;
    for (uint64_t tile = 0; tile < n_tiles; ++tile) {
      count += tile_counts[tile * fanout + p];
    }
    (*offsets)[p + 1] = (*offsets)[p] + count;
  }
  return Status::OK();
}

}  // namespace gpujoin::prim

#endif  // GPUJOIN_PRIM_RADIX_PARTITION_H_
