// The GPU Merge Path algorithm (Green et al., cited as the paper's §3.1
// mechanism for skew-resilient merge joins): finding, for a given output
// diagonal, the unique split point (i, j) with i + j = diagonal such that
// merging a[0..i) and b[0..j) yields the first `diagonal` outputs of the
// full merge. Splitting both sorted inputs at evenly spaced diagonals
// yields independently mergeable partitions of identical total size —
// which is exactly why the merge join's work stays balanced regardless of
// the key distribution.

#ifndef GPUJOIN_PRIM_MERGE_PATH_H_
#define GPUJOIN_PRIM_MERGE_PATH_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "vgpu/buffer.h"
#include "vgpu/device.h"

namespace gpujoin::prim {

/// A split of the two sorted inputs: the segment merges a[a_begin..a_end)
/// with b[b_begin..b_end).
struct MergeSegment {
  uint64_t a_begin = 0;
  uint64_t a_end = 0;
  uint64_t b_begin = 0;
  uint64_t b_end = 0;
};

/// Binary search along the `diagonal` (0 <= diagonal <= |a|+|b|) for the
/// merge-path split point: returns i such that merging a[0..i) with
/// b[0..diagonal-i) produces the first `diagonal` merged elements
/// (ties broken a-first, matching a stable merge).
template <typename K>
uint64_t MergePathSearch(const vgpu::DeviceBuffer<K>& a,
                         const vgpu::DeviceBuffer<K>& b, uint64_t diagonal) {
  uint64_t lo = diagonal > b.size() ? diagonal - b.size() : 0;
  uint64_t hi = std::min<uint64_t>(diagonal, a.size());
  while (lo < hi) {
    const uint64_t i = lo + (hi - lo) / 2;
    const uint64_t j = diagonal - i;
    // Stable split invariant: a[i-1] <= b[j] and b[j-1] < a[i].
    if (i > 0 && j < b.size() && a[i - 1] > b[j]) {
      hi = i;  // Too many a's taken.
    } else if (j > 0 && i < a.size() && b[j - 1] >= a[i]) {
      lo = i + 1;  // Too few a's taken.
    } else {
      return i;
    }
  }
  return lo;
}

/// Splits the merge of two sorted arrays into `num_segments` independently
/// mergeable segments of (near-)equal output size. Charges the per-segment
/// binary-search descents.
template <typename K>
Result<std::vector<MergeSegment>> MergePathPartition(
    vgpu::Device& device, const vgpu::DeviceBuffer<K>& a,
    const vgpu::DeviceBuffer<K>& b, uint64_t num_segments) {
  if (num_segments == 0) {
    return Status::InvalidArgument("MergePathPartition: zero segments");
  }
  const uint64_t total = a.size() + b.size();
  num_segments = std::min<uint64_t>(num_segments, std::max<uint64_t>(total, 1));
  std::vector<MergeSegment> segments(num_segments);
  {
    vgpu::KernelScope ks(device, "merge_path_partition");
    uint64_t prev_i = 0, prev_j = 0;
    for (uint64_t s = 1; s <= num_segments; ++s) {
      const uint64_t diagonal = total * s / num_segments;
      const uint64_t i =
          s == num_segments ? a.size() : MergePathSearch(a, b, diagonal);
      const uint64_t j = diagonal - i;
      segments[s - 1] = {prev_i, i, prev_j, j};
      prev_i = i;
      prev_j = j;
      // The descent touches ~log2(total) elements of each input.
      device.Compute(2 * (64 - __builtin_clzll(total | 1)));
    }
    // Each probed element is a (scattered) global load.
    device.Compute(num_segments);
  }
  return segments;
}

}  // namespace gpujoin::prim

#endif  // GPUJOIN_PRIM_MERGE_PATH_H_
