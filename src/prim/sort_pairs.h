// SORT-PAIRS primitive (§2.3): least-significant-digit radix sort of a
// (key, value) array pair, built — exactly as CUB does — from repeated
// stable RADIX-PARTITION passes of 8 bits each. A 4-byte key therefore
// costs 4 passes (the paper's "about 17 sequential scans" for key+payload),
// an 8-byte key costs 8.
//
// Keys must be non-negative (all workloads in the paper use non-negative
// keys; dictionary codes are non-negative by construction).

#ifndef GPUJOIN_PRIM_SORT_PAIRS_H_
#define GPUJOIN_PRIM_SORT_PAIRS_H_

#include <cstdint>

#include "common/status.h"
#include "prim/radix_partition.h"
#include "vgpu/buffer.h"
#include "vgpu/device.h"

namespace gpujoin::prim {

/// Sorts (keys, vals) in place by keys, stably, using the provided temp
/// buffers (same sizes). Sorts the full key width like CUB's default.
template <typename K, typename V>
Status SortPairs(vgpu::Device& device, vgpu::DeviceBuffer<K>* keys,
                 vgpu::DeviceBuffer<V>* vals, vgpu::DeviceBuffer<K>* keys_tmp,
                 vgpu::DeviceBuffer<V>* vals_tmp) {
  const int total_bits = static_cast<int>(sizeof(K)) * 8;
  GPUJOIN_ASSIGN_OR_RETURN(
      int passes, RadixPartitionMultiPass(device, keys, vals, keys_tmp, vals_tmp,
                                          total_bits));
  (void)passes;
  return Status::OK();
}

/// Convenience overload that allocates (and frees) its own temp buffers.
/// The temporaries count toward peak device memory (the paper's M_t).
template <typename K, typename V>
Status SortPairsAllocTemp(vgpu::Device& device, vgpu::DeviceBuffer<K>* keys,
                          vgpu::DeviceBuffer<V>* vals) {
  GPUJOIN_ASSIGN_OR_RETURN(auto keys_tmp,
                           vgpu::DeviceBuffer<K>::Allocate(device, keys->size()));
  GPUJOIN_ASSIGN_OR_RETURN(auto vals_tmp,
                           vgpu::DeviceBuffer<V>::Allocate(device, vals->size()));
  return SortPairs(device, keys, vals, &keys_tmp, &vals_tmp);
}

}  // namespace gpujoin::prim

#endif  // GPUJOIN_PRIM_SORT_PAIRS_H_
