// Merge join over two sorted key arrays, in the style of the GPU Merge Path
// algorithm (§3.1): the inputs are split into balanced, independently
// mergeable segments (charged as the Merge Path binary-search descent), then
// each segment is merged with purely sequential accesses. Handles M:N key
// multiplicity (needed for the TPC-DS self-join J5).
//
// Like the real implementations, match finding runs in two sweeps: a count
// sweep to size the output, an exclusive scan, and a write sweep that emits
// (key, r_pos, s_pos) sequentially. For PK-FK inputs the paper notes a
// single Merge Path descent suffices; we charge the descent accordingly.
//
// Output ordering: S-major (s_pos strictly ascending), r_pos ascending
// within each S run — i.e., the output position columns are clustered
// whenever the inputs are (the property GFTR relies on, §4.1).

#ifndef GPUJOIN_PRIM_MERGE_JOIN_H_
#define GPUJOIN_PRIM_MERGE_JOIN_H_

#include <cstdint>
#include <vector>

#include "common/bit_util.h"
#include "common/status.h"
#include "prim/match.h"
#include "prim/merge_path.h"
#include "storage/types.h"
#include "vgpu/buffer.h"
#include "vgpu/device.h"

namespace gpujoin::prim {

/// Inner merge join of sorted r_keys and s_keys.
/// `pk_fk`: R keys are unique (primary keys) — halves the Merge Path setup.
template <typename K>
Result<MatchResult<K>> MergeJoinSorted(vgpu::Device& device,
                                       const vgpu::DeviceBuffer<K>& r_keys,
                                       const vgpu::DeviceBuffer<K>& s_keys,
                                       bool pk_fk) {
  const uint64_t nr = r_keys.size();
  const uint64_t ns = s_keys.size();
  const int warp = device.config().warp_size;

  // --- Merge Path setup: split the merge into balanced segments (one per
  // warp of the probe side); a PK-FK join needs a single descent, general
  // M:N joins apply it twice (lower + upper bounds, §3.1).
  const uint64_t segments = std::max<uint64_t>(1, bit_util::CeilDiv(ns, warp));
  GPUJOIN_RETURN_IF_ERROR(
      MergePathPartition(device, r_keys, s_keys, segments).status());
  if (!pk_fk) {
    GPUJOIN_RETURN_IF_ERROR(
        MergePathPartition(device, r_keys, s_keys, segments).status());
  }

  // --- Sweep 1: count matches (sequential scan of both inputs).
  uint64_t n_matches = 0;
  {
    vgpu::KernelScope ks(device, "merge_join_count");
    device.LoadSeq(r_keys.addr(), nr, sizeof(K));
    device.LoadSeq(s_keys.addr(), ns, sizeof(K));
    uint64_t i = 0, j = 0;
    while (i < nr && j < ns) {
      if (r_keys[i] < s_keys[j]) {
        ++i;
      } else if (s_keys[j] < r_keys[i]) {
        ++j;
      } else {
        uint64_t ri = i;
        while (ri < nr && r_keys[ri] == r_keys[i]) ++ri;
        uint64_t sj = j;
        while (sj < ns && s_keys[sj] == s_keys[j]) ++sj;
        n_matches += (ri - i) * (sj - j);
        i = ri;
        j = sj;
      }
    }
    device.Compute(bit_util::CeilDiv(nr + ns, warp));
  }

  MatchResult<K> out;
  GPUJOIN_ASSIGN_OR_RETURN(out.keys,
                           vgpu::DeviceBuffer<K>::Allocate(device, n_matches));
  GPUJOIN_ASSIGN_OR_RETURN(
      out.r_pos, vgpu::DeviceBuffer<RowId>::Allocate(device, n_matches));
  GPUJOIN_ASSIGN_OR_RETURN(
      out.s_pos, vgpu::DeviceBuffer<RowId>::Allocate(device, n_matches));

  // --- Sweep 2: write matches.
  {
    vgpu::KernelScope ks(device, "merge_join_write");
    device.LoadSeq(r_keys.addr(), nr, sizeof(K));
    device.LoadSeq(s_keys.addr(), ns, sizeof(K));
    uint64_t i = 0, j = 0, o = 0;
    while (i < nr && j < ns) {
      if (r_keys[i] < s_keys[j]) {
        ++i;
      } else if (s_keys[j] < r_keys[i]) {
        ++j;
      } else {
        uint64_t ri = i;
        while (ri < nr && r_keys[ri] == r_keys[i]) ++ri;
        uint64_t sj = j;
        while (sj < ns && s_keys[sj] == s_keys[j]) ++sj;
        for (uint64_t s = j; s < sj; ++s) {
          for (uint64_t r = i; r < ri; ++r) {
            out.keys[o] = s_keys[s];
            out.r_pos[o] = static_cast<RowId>(r);
            out.s_pos[o] = static_cast<RowId>(s);
            ++o;
          }
        }
        i = ri;
        j = sj;
      }
    }
    device.StoreSeq(out.keys.addr(), n_matches, sizeof(K));
    device.StoreSeq(out.r_pos.addr(), n_matches, sizeof(RowId));
    device.StoreSeq(out.s_pos.addr(), n_matches, sizeof(RowId));
    device.Compute(bit_util::CeilDiv(nr + ns + n_matches, warp));
  }
  return out;
}

}  // namespace gpujoin::prim

#endif  // GPUJOIN_PRIM_MERGE_JOIN_H_
