// Merge join over two sorted key arrays, in the style of the GPU Merge Path
// algorithm (§3.1): the inputs are split into balanced, independently
// mergeable segments (charged as the Merge Path binary-search descent), then
// each segment is merged with purely sequential accesses. Handles M:N key
// multiplicity (needed for the TPC-DS self-join J5).
//
// Like the real implementations, match finding runs in two sweeps: a count
// sweep to size the output, an exclusive scan, and a write sweep that emits
// (key, r_pos, s_pos) sequentially. For PK-FK inputs the paper notes a
// single Merge Path descent suffices; we charge the descent accordingly.
//
// Parallel simulation: the segment decomposition is materialized explicitly
// — S is tiled and each tile boundary snapped forward to the next key-run
// start (so no equal-key run straddles two segments), R is co-partitioned
// by binary search on the segment's first S key. Each segment then merges
// as an independent thread block via Device::ParallelBlocks, emitting into
// a per-segment output range precomputed from the count sweep.
//
// Output ordering: S-major (s_pos strictly ascending), r_pos ascending
// within each S run — i.e., the output position columns are clustered
// whenever the inputs are (the property GFTR relies on, §4.1).

#ifndef GPUJOIN_PRIM_MERGE_JOIN_H_
#define GPUJOIN_PRIM_MERGE_JOIN_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/bit_util.h"
#include "common/status.h"
#include "prim/match.h"
#include "prim/merge_path.h"
#include "storage/types.h"
#include "vgpu/buffer.h"
#include "vgpu/device.h"

namespace gpujoin::prim {

/// Probe-side elements per merge segment (before run snapping).
inline constexpr uint64_t kMergeTileElems = 4096;

/// Inner merge join of sorted r_keys and s_keys.
/// `pk_fk`: R keys are unique (primary keys) — halves the Merge Path setup.
template <typename K>
Result<MatchResult<K>> MergeJoinSorted(vgpu::Device& device,
                                       const vgpu::DeviceBuffer<K>& r_keys,
                                       const vgpu::DeviceBuffer<K>& s_keys,
                                       bool pk_fk) {
  const uint64_t nr = r_keys.size();
  const uint64_t ns = s_keys.size();
  const int warp = device.config().warp_size;

  // --- Merge Path setup: split the merge into balanced segments (one per
  // warp of the probe side); a PK-FK join needs a single descent, general
  // M:N joins apply it twice (lower + upper bounds, §3.1).
  const uint64_t segments = std::max<uint64_t>(1, bit_util::CeilDiv(ns, warp));
  GPUJOIN_RETURN_IF_ERROR(
      MergePathPartition(device, r_keys, s_keys, segments).status());
  if (!pk_fk) {
    GPUJOIN_RETURN_IF_ERROR(
        MergePathPartition(device, r_keys, s_keys, segments).status());
  }

  // --- Segment decomposition (functional; the descent above already paid
  // for it). S tile boundaries snap forward to the next key-run start, so
  // every equal-key run lives in exactly one segment; R is co-partitioned
  // at the lower bound of each segment's first S key. Both partitions are
  // exact covers, so per-segment merges are globally complete and disjoint.
  std::vector<uint64_t> s_bounds;
  if (ns > 0) {
    s_bounds.push_back(0);
    for (uint64_t raw = kMergeTileElems; raw < ns; raw += kMergeTileElems) {
      uint64_t j = raw;
      while (j < ns && s_keys[j] == s_keys[j - 1]) ++j;
      if (j < ns && j > s_bounds.back()) s_bounds.push_back(j);
    }
    s_bounds.push_back(ns);
  }
  const uint64_t n_segs = s_bounds.empty() ? 0 : s_bounds.size() - 1;
  std::vector<uint64_t> r_bounds(n_segs + 1, 0);
  for (uint64_t k = 1; k < n_segs; ++k) {
    r_bounds[k] = static_cast<uint64_t>(
        std::lower_bound(r_keys.data(), r_keys.data() + nr,
                         s_keys[s_bounds[k]]) -
        r_keys.data());
  }
  if (n_segs > 0) r_bounds[n_segs] = nr;

  // Merge walk of one segment; emits via `emit(r, s, key)` for each match.
  auto walk_segment = [&](uint64_t k, auto&& emit) {
    const uint64_t re = r_bounds[k + 1], se = s_bounds[k + 1];
    uint64_t i = r_bounds[k], j = s_bounds[k];
    uint64_t count = 0;
    while (i < re && j < se) {
      if (r_keys[i] < s_keys[j]) {
        ++i;
      } else if (s_keys[j] < r_keys[i]) {
        ++j;
      } else {
        uint64_t ri = i;
        while (ri < nr && r_keys[ri] == r_keys[i]) ++ri;
        uint64_t sj = j;
        while (sj < se && s_keys[sj] == s_keys[j]) ++sj;
        for (uint64_t s = j; s < sj; ++s) {
          for (uint64_t r = i; r < ri; ++r) {
            emit(r, s, s_keys[s]);
            ++count;
          }
        }
        i = ri;
        j = sj;
      }
    }
    return count;
  };

  // --- Sweep 1: count matches per segment (sequential scans per block).
  std::vector<uint64_t> seg_matches(n_segs, 0);
  {
    vgpu::KernelScope ks(device, "merge_join_count");
    GPUJOIN_RETURN_IF_ERROR(device.ParallelBlocks(
        n_segs, [&](uint64_t k, vgpu::BlockContext& ctx) -> Status {
          const uint64_t rn = r_bounds[k + 1] - r_bounds[k];
          const uint64_t sn = s_bounds[k + 1] - s_bounds[k];
          if (rn > 0) ctx.LoadSeq(r_keys.addr(r_bounds[k]), rn, sizeof(K));
          if (sn > 0) ctx.LoadSeq(s_keys.addr(s_bounds[k]), sn, sizeof(K));
          seg_matches[k] = walk_segment(k, [](uint64_t, uint64_t, K) {});
          ctx.Compute(bit_util::CeilDiv(rn + sn, warp));
          return Status::OK();
        }));
  }
  std::vector<uint64_t> out_base(n_segs + 1, 0);
  for (uint64_t k = 0; k < n_segs; ++k) {
    out_base[k + 1] = out_base[k] + seg_matches[k];
  }
  const uint64_t n_matches = out_base[n_segs];

  MatchResult<K> out;
  GPUJOIN_ASSIGN_OR_RETURN(out.keys,
                           vgpu::DeviceBuffer<K>::Allocate(device, n_matches));
  GPUJOIN_ASSIGN_OR_RETURN(
      out.r_pos, vgpu::DeviceBuffer<RowId>::Allocate(device, n_matches));
  GPUJOIN_ASSIGN_OR_RETURN(
      out.s_pos, vgpu::DeviceBuffer<RowId>::Allocate(device, n_matches));

  // --- Sweep 2: write matches into per-segment output ranges.
  {
    vgpu::KernelScope ks(device, "merge_join_write");
    GPUJOIN_RETURN_IF_ERROR(device.ParallelBlocks(
        n_segs, [&](uint64_t k, vgpu::BlockContext& ctx) -> Status {
          const uint64_t rn = r_bounds[k + 1] - r_bounds[k];
          const uint64_t sn = s_bounds[k + 1] - s_bounds[k];
          if (rn > 0) ctx.LoadSeq(r_keys.addr(r_bounds[k]), rn, sizeof(K));
          if (sn > 0) ctx.LoadSeq(s_keys.addr(s_bounds[k]), sn, sizeof(K));
          uint64_t o = out_base[k];
          walk_segment(k, [&](uint64_t r, uint64_t s, K key) {
            out.keys[o] = key;
            out.r_pos[o] = static_cast<RowId>(r);
            out.s_pos[o] = static_cast<RowId>(s);
            ++o;
          });
          const uint64_t len = out_base[k + 1] - out_base[k];
          if (len > 0) {
            ctx.StoreSeq(out.keys.addr(out_base[k]), len, sizeof(K));
            ctx.StoreSeq(out.r_pos.addr(out_base[k]), len, sizeof(RowId));
            ctx.StoreSeq(out.s_pos.addr(out_base[k]), len, sizeof(RowId));
          }
          ctx.Compute(bit_util::CeilDiv(rn + sn + len, warp));
          return Status::OK();
        }));
  }
  return out;
}

}  // namespace gpujoin::prim

#endif  // GPUJOIN_PRIM_MERGE_JOIN_H_
