// Common output type of the match-finding phase: matched keys plus the
// *positions* of the matching tuples in the (transformed) input relations.
//
// Positions are virtual tuple identifiers in the sense of §4.1: position i
// refers to the i-th tuple of the transformed relation the match finder
// consumed. Drivers translate positions into whatever the pattern needs
// (physical IDs for GFUR via a clustered gather of the carried ID column;
// direct clustered gathers for GFTR).

#ifndef GPUJOIN_PRIM_MATCH_H_
#define GPUJOIN_PRIM_MATCH_H_

#include <cstdint>

#include "storage/types.h"
#include "vgpu/buffer.h"

namespace gpujoin::prim {

template <typename K>
struct MatchResult {
  /// Matched key values, in output order.
  vgpu::DeviceBuffer<K> keys;
  /// Position of the R-side match in the transformed R relation.
  vgpu::DeviceBuffer<RowId> r_pos;
  /// Position of the S-side match in the transformed S relation.
  vgpu::DeviceBuffer<RowId> s_pos;

  uint64_t count() const { return keys.size(); }
};

}  // namespace gpujoin::prim

#endif  // GPUJOIN_PRIM_MATCH_H_
