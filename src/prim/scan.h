// Scan (prefix sum) and histogram primitives. The radix machinery inlines
// its own fused versions for the hot paths; these standalone forms are the
// public building blocks (and are used for partition-offset computation).
//
// Both kernels stream one 4096-element tile per thread block through
// Device::ParallelBlocks. The scan's running sum itself is computed
// functionally on the calling thread (the simulated cost already charges
// the two tree sweeps a real device scan performs); the histogram's
// per-tile counts land in disjoint slices and are reduced after the kernel.

#ifndef GPUJOIN_PRIM_SCAN_H_
#define GPUJOIN_PRIM_SCAN_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/bit_util.h"
#include "common/status.h"
#include "vgpu/buffer.h"
#include "vgpu/device.h"

namespace gpujoin::prim {

/// Elements per thread-block tile of the scan/histogram kernels.
inline constexpr uint64_t kScanTileElems = 4096;

/// Exclusive prefix sum over a device buffer: out[i] = sum(in[0..i)).
/// Charged as the standard two-sweep (reduce + downsweep) device scan.
template <typename T>
Status ExclusiveScan(vgpu::Device& device, const vgpu::DeviceBuffer<T>& in,
                     vgpu::DeviceBuffer<T>* out) {
  if (out->size() != in.size()) {
    return Status::InvalidArgument("ExclusiveScan: size mismatch");
  }
  const uint64_t n = in.size();
  const int warp = device.config().warp_size;
  vgpu::KernelScope ks(device, "exclusive_scan");
  // The carry across tiles makes the values sequential; compute them up
  // front on the calling thread, then charge the streams tile-parallel.
  T running{};
  for (uint64_t i = 0; i < n; ++i) {
    (*out)[i] = running;
    running = static_cast<T>(running + in[i]);
  }
  const uint64_t n_tiles = bit_util::CeilDiv(n, kScanTileElems);
  return device.ParallelBlocks(
      n_tiles, [&](uint64_t tile, vgpu::BlockContext& ctx) -> Status {
        const uint64_t begin = tile * kScanTileElems;
        const uint64_t tile_n = std::min(kScanTileElems, n - begin);
        ctx.LoadSeq(in.addr(begin), tile_n, sizeof(T));
        ctx.StoreSeq(out->addr(begin), tile_n, sizeof(T));
        // Tree sweeps: ~2 extra passes of block partials at warp granularity.
        ctx.Compute(bit_util::CeilDiv(tile_n, warp) * 2);
        return Status::OK();
      });
}

/// Histogram of the `bits`-wide digit at bit_lo of every key. Charged like
/// the radix histogram kernel (sequential read + warp-aggregated shared
/// counters). counts gets 2^bits entries.
template <typename K>
Status Histogram(vgpu::Device& device, const vgpu::DeviceBuffer<K>& keys,
                 int bit_lo, int bits, std::vector<uint64_t>* counts) {
  if (bits < 1 || bits > 24) {
    return Status::InvalidArgument("Histogram: bits out of [1,24]");
  }
  const uint64_t fanout = uint64_t{1} << bits;
  const uint64_t n = keys.size();
  const int warp = device.config().warp_size;
  counts->assign(fanout, 0);
  vgpu::KernelScope ks(device, "histogram");
  const uint64_t n_tiles = bit_util::CeilDiv(n, kScanTileElems);
  // Per-tile counter slices stay affordable up to 12 bits; wider digits
  // fall back to per-tile accounting with a single shared counts array
  // (still deterministic: blocks only charge, the counting runs after).
  if (bits <= 12) {
    std::vector<uint64_t> tile_counts(n_tiles * fanout, 0);
    GPUJOIN_RETURN_IF_ERROR(device.ParallelBlocks(
        n_tiles, [&](uint64_t tile, vgpu::BlockContext& ctx) -> Status {
          const uint64_t begin = tile * kScanTileElems;
          const uint64_t tile_n = std::min(kScanTileElems, n - begin);
          ctx.LoadSeq(keys.addr(begin), tile_n, sizeof(K));
          uint64_t* mine = tile_counts.data() + tile * fanout;
          for (uint64_t i = begin; i < begin + tile_n; ++i) {
            ++mine[bit_util::RadixDigit(keys[i], bit_lo, bits)];
          }
          ctx.SharedAccess(bit_util::CeilDiv(tile_n, warp));
          ctx.Compute(bit_util::CeilDiv(tile_n, warp));
          return Status::OK();
        }));
    for (uint64_t tile = 0; tile < n_tiles; ++tile) {
      for (uint64_t d = 0; d < fanout; ++d) {
        (*counts)[d] += tile_counts[tile * fanout + d];
      }
    }
    return Status::OK();
  }
  GPUJOIN_RETURN_IF_ERROR(device.ParallelBlocks(
      n_tiles, [&](uint64_t tile, vgpu::BlockContext& ctx) -> Status {
        const uint64_t begin = tile * kScanTileElems;
        const uint64_t tile_n = std::min(kScanTileElems, n - begin);
        ctx.LoadSeq(keys.addr(begin), tile_n, sizeof(K));
        ctx.SharedAccess(bit_util::CeilDiv(tile_n, warp));
        ctx.Compute(bit_util::CeilDiv(tile_n, warp));
        return Status::OK();
      }));
  for (uint64_t i = 0; i < n; ++i) {
    ++(*counts)[bit_util::RadixDigit(keys[i], bit_lo, bits)];
  }
  return Status::OK();
}

}  // namespace gpujoin::prim

#endif  // GPUJOIN_PRIM_SCAN_H_
