// Scan (prefix sum) and histogram primitives. The radix machinery inlines
// its own fused versions for the hot paths; these standalone forms are the
// public building blocks (and are used for partition-offset computation).

#ifndef GPUJOIN_PRIM_SCAN_H_
#define GPUJOIN_PRIM_SCAN_H_

#include <cstdint>
#include <vector>

#include "common/bit_util.h"
#include "common/status.h"
#include "vgpu/buffer.h"
#include "vgpu/device.h"

namespace gpujoin::prim {

/// Exclusive prefix sum over a device buffer: out[i] = sum(in[0..i)).
/// Charged as the standard two-sweep (reduce + downsweep) device scan.
template <typename T>
Status ExclusiveScan(vgpu::Device& device, const vgpu::DeviceBuffer<T>& in,
                     vgpu::DeviceBuffer<T>* out) {
  if (out->size() != in.size()) {
    return Status::InvalidArgument("ExclusiveScan: size mismatch");
  }
  const uint64_t n = in.size();
  vgpu::KernelScope ks(device, "exclusive_scan");
  device.LoadSeq(in.addr(), n, sizeof(T));
  T running{};
  for (uint64_t i = 0; i < n; ++i) {
    (*out)[i] = running;
    running = static_cast<T>(running + in[i]);
  }
  device.StoreSeq(out->addr(), n, sizeof(T));
  // Tree sweeps: ~2 extra passes of block partials at warp granularity.
  device.Compute(bit_util::CeilDiv(n, device.config().warp_size) * 2);
  return Status::OK();
}

/// Histogram of the `bits`-wide digit at bit_lo of every key. Charged like
/// the radix histogram kernel (sequential read + warp-aggregated shared
/// counters). counts gets 2^bits entries.
template <typename K>
Status Histogram(vgpu::Device& device, const vgpu::DeviceBuffer<K>& keys,
                 int bit_lo, int bits, std::vector<uint64_t>* counts) {
  if (bits < 1 || bits > 24) {
    return Status::InvalidArgument("Histogram: bits out of [1,24]");
  }
  counts->assign(uint64_t{1} << bits, 0);
  vgpu::KernelScope ks(device, "histogram");
  device.LoadSeq(keys.addr(), keys.size(), sizeof(K));
  for (uint64_t i = 0; i < keys.size(); ++i) {
    ++(*counts)[bit_util::RadixDigit(keys[i], bit_lo, bits)];
  }
  const int warp = device.config().warp_size;
  device.SharedAccess(bit_util::CeilDiv(keys.size(), warp));
  device.Compute(bit_util::CeilDiv(keys.size(), warp));
  return Status::OK();
}

}  // namespace gpujoin::prim

#endif  // GPUJOIN_PRIM_SCAN_H_
