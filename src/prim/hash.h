// Hash functions used by the hash-join implementations.

#ifndef GPUJOIN_PRIM_HASH_H_
#define GPUJOIN_PRIM_HASH_H_

#include <cstdint>

namespace gpujoin::prim {

/// MurmurHash3 64-bit finalizer: fast, well-mixed, invertible.
inline uint64_t Murmur3Fmix64(uint64_t k) {
  k ^= k >> 33;
  k *= 0xff51afd7ed558ccdull;
  k ^= k >> 33;
  k *= 0xc4ceb9fe1a85ec53ull;
  k ^= k >> 33;
  return k;
}

/// Hash for hash-table placement; `mask` must be table_size - 1 (power of 2).
inline uint64_t HashToSlot(int64_t key, uint64_t mask) {
  return Murmur3Fmix64(static_cast<uint64_t>(key)) & mask;
}

}  // namespace gpujoin::prim

#endif  // GPUJOIN_PRIM_HASH_H_
