// Resilient execution wrappers: the degradation ladder must turn resource
// exhaustion (real capacity or injected faults) into correct answers when
// any rung can complete, and into clean structured errors otherwise —
// never crashes, never leaks.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "groupby/resilient.h"
#include "join/pipeline.h"
#include "join/reference.h"
#include "join/resilient.h"
#include "storage/table.h"
#include "test_util.h"
#include "vgpu/device.h"
#include "vgpu/fault.h"
#include "workload/generator.h"

namespace gpujoin {
namespace {

using ::gpujoin::testing::MakeTestDevice;

workload::JoinWorkload SmallJoinWorkload() {
  workload::JoinWorkloadSpec spec;
  spec.r_rows = 1 << 9;
  spec.s_rows = 1 << 10;
  spec.seed = 5;
  return workload::GenerateJoinInput(spec).ValueOrDie();
}

TEST(ResilientJoinTest, FirstAttemptSucceedsWithoutDegradation) {
  const workload::JoinWorkload w = SmallJoinWorkload();
  vgpu::Device device = MakeTestDevice();
  testing::ScopedLeakCheck leak_check(device);
  ASSERT_OK_AND_ASSIGN(
      join::ResilientJoinResult res,
      join::RunJoinResilient(device, join::JoinAlgo::kPhjOm, w.r, w.s));
  EXPECT_EQ(res.attempts, 1);
  EXPECT_FALSE(res.used_out_of_core);
  EXPECT_TRUE(res.degradation.empty());
  EXPECT_EQ(join::CanonicalRows(res.output), join::ReferenceJoinRows(w.r, w.s));
}

TEST(ResilientJoinTest, OneShotFaultIsAbsorbedByRetry) {
  const workload::JoinWorkload w = SmallJoinWorkload();
  vgpu::Device device = MakeTestDevice();
  testing::ScopedLeakCheck leak_check(device);
  // The 5th allocation of the first attempt fails once; a retry (same or
  // degraded parameters) must complete and still be correct.
  device.set_fault_injector(vgpu::FaultInjector::FailNth(5));
  ASSERT_OK_AND_ASSIGN(
      join::ResilientJoinResult res,
      join::RunJoinResilient(device, join::JoinAlgo::kPhjOm, w.r, w.s));
  EXPECT_GT(res.attempts, 1);
  EXPECT_FALSE(res.degradation.empty());
  EXPECT_EQ(join::CanonicalRows(res.output), join::ReferenceJoinRows(w.r, w.s));
  device.clear_fault_injector();
}

TEST(ResilientJoinTest, UndersizedDeviceFallsBackToOutOfCore) {
  // A device whose whole capacity is smaller than the inputs: no in-memory
  // attempt can ever fit, so the ladder must reach the out-of-core rung and
  // still produce the exact join result.
  workload::JoinWorkloadSpec spec;
  spec.r_rows = 1 << 10;
  spec.s_rows = 1 << 11;
  spec.key_type = DataType::kInt64;
  spec.r_payload_type = DataType::kInt64;
  spec.s_payload_type = DataType::kInt64;
  spec.seed = 9;
  const workload::JoinWorkload w =
      workload::GenerateJoinInput(spec).ValueOrDie();

  vgpu::DeviceConfig cfg = vgpu::DeviceConfig::ScaledToWorkload(
      vgpu::DeviceConfig::A100(), uint64_t{1} << 16);
  cfg.global_mem_bytes = 24 * 1024;  // Far below the ~72 KiB of inputs.
  vgpu::Device device(cfg);
  testing::ScopedLeakCheck leak_check(device);

  join::ResilienceOptions opts;
  opts.max_attempts = 6;
  ASSERT_OK_AND_ASSIGN(
      join::ResilientJoinResult res,
      join::RunJoinResilient(device, join::JoinAlgo::kSmjOm, w.r, w.s, opts));
  EXPECT_TRUE(res.used_out_of_core);
  ASSERT_FALSE(res.degradation.empty());
  bool saw_ooc_step = false;
  for (const DegradationStep& step : res.degradation) {
    if (step.action == "out_of_core_fallback") saw_ooc_step = true;
  }
  EXPECT_TRUE(saw_ooc_step);
  EXPECT_EQ(join::CanonicalRows(res.output), join::ReferenceJoinRows(w.r, w.s));
}

TEST(ResilientJoinTest, ExhaustedLadderReturnsStructuredError) {
  const workload::JoinWorkload w = SmallJoinWorkload();
  vgpu::Device device = MakeTestDevice();
  testing::ScopedLeakCheck leak_check(device);
  // Every allocation fails: nothing can complete on any rung.
  device.set_fault_injector(vgpu::FaultInjector::FailAfterBytes(0));
  join::ResilienceOptions opts;
  opts.max_attempts = 3;
  Result<join::ResilientJoinResult> res =
      join::RunJoinResilient(device, join::JoinAlgo::kPhjUm, w.r, w.s, opts);
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(res.status().message().find("degradation ladder"),
            std::string::npos)
      << res.status().ToString();
  device.clear_fault_injector();
  ASSERT_OK(device.CheckNoLeaks());
}

TEST(ResilientJoinTest, NonResourceErrorsPropagateImmediately) {
  vgpu::Device device = MakeTestDevice();
  HostTable empty;
  Result<join::ResilientJoinResult> res = join::RunJoinResilient(
      device, join::JoinAlgo::kPhjOm, empty, empty);
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResilientGroupByTest, FirstAttemptSucceedsWithoutDegradation) {
  workload::GroupByWorkloadSpec spec;
  spec.rows = 1 << 10;
  spec.num_groups = 1 << 5;
  const HostTable input = workload::GenerateGroupByInput(spec).ValueOrDie();

  vgpu::Device device = MakeTestDevice();
  groupby::GroupBySpec gspec;
  gspec.aggregates.push_back({1, groupby::AggOp::kSum});
  {
    ASSERT_OK_AND_ASSIGN(Table t, Table::FromHost(device, input));
    ASSERT_OK_AND_ASSIGN(groupby::ResilientGroupByResult res,
                         groupby::RunGroupByResilient(
                             device, groupby::GroupByAlgo::kHashGlobal, t,
                             gspec));
    EXPECT_EQ(res.attempts, 1);
    EXPECT_EQ(res.algo_used, groupby::GroupByAlgo::kHashGlobal);
    EXPECT_TRUE(res.degradation.empty());
    EXPECT_GT(res.run.num_groups, 0u);
  }
  ASSERT_OK(device.CheckNoLeaks());
}

TEST(ResilientGroupByTest, HashGlobalFallsBackToPartitioned) {
  workload::GroupByWorkloadSpec spec;
  spec.rows = 1 << 10;
  spec.num_groups = 1 << 5;
  const HostTable input = workload::GenerateGroupByInput(spec).ValueOrDie();

  vgpu::Device device = MakeTestDevice();
  groupby::GroupBySpec gspec;
  gspec.aggregates.push_back({1, groupby::AggOp::kSum});
  gspec.aggregates.push_back({1, groupby::AggOp::kCount});

  // Reference result, computed before any fault is armed.
  std::vector<std::vector<int64_t>> expected;
  {
    ASSERT_OK_AND_ASSIGN(Table t, Table::FromHost(device, input));
    ASSERT_OK_AND_ASSIGN(
        groupby::GroupByRunResult ref,
        groupby::RunGroupBy(device, groupby::GroupByAlgo::kHashPartitioned, t,
                            gspec));
    expected = join::CanonicalRows(ref.output.ToHost());
  }
  ASSERT_OK(device.CheckNoLeaks());

  {
    ASSERT_OK_AND_ASSIGN(Table t, Table::FromHost(device, input));
    // HASH-GLOBAL's first allocation (the global table) fails once; the
    // ladder should land on HASH-PARTITIONED and agree with the reference.
    device.set_fault_injector(vgpu::FaultInjector::FailNth(1));
    ASSERT_OK_AND_ASSIGN(groupby::ResilientGroupByResult res,
                         groupby::RunGroupByResilient(
                             device, groupby::GroupByAlgo::kHashGlobal, t,
                             gspec));
    device.clear_fault_injector();
    EXPECT_EQ(res.algo_used, groupby::GroupByAlgo::kHashPartitioned);
    EXPECT_GT(res.attempts, 1);
    ASSERT_FALSE(res.degradation.empty());
    EXPECT_EQ(res.degradation[0].action, "algo_fallback");
    EXPECT_EQ(join::CanonicalRows(res.run.output.ToHost()), expected);
  }
  ASSERT_OK(device.CheckNoLeaks());
}

TEST(ResilientGroupByTest, ExhaustedLadderReturnsStructuredError) {
  workload::GroupByWorkloadSpec spec;
  spec.rows = 1 << 9;
  const HostTable input = workload::GenerateGroupByInput(spec).ValueOrDie();

  vgpu::Device device = MakeTestDevice();
  groupby::GroupBySpec gspec;
  gspec.aggregates.push_back({1, groupby::AggOp::kSum});
  {
    ASSERT_OK_AND_ASSIGN(Table t, Table::FromHost(device, input));
    device.set_fault_injector(vgpu::FaultInjector::FailAfterBytes(0));
    Result<groupby::ResilientGroupByResult> res = groupby::RunGroupByResilient(
        device, groupby::GroupByAlgo::kHashGlobal, t, gspec);
    ASSERT_FALSE(res.ok());
    EXPECT_EQ(res.status().code(), StatusCode::kResourceExhausted);
    EXPECT_NE(res.status().message().find("degradation ladder"),
              std::string::npos);
    device.clear_fault_injector();
  }
  ASSERT_OK(device.CheckNoLeaks());
}

TEST(PipelineResilienceTest, PerJoinRetryAbsorbsOneShotFaults) {
  workload::StarSchemaSpec spec;
  spec.fact_rows = 1 << 10;
  spec.num_dims = 2;
  spec.dim_rows = 1 << 8;
  const workload::StarSchema star =
      workload::GenerateStarSchema(spec).ValueOrDie();

  vgpu::Device device = MakeTestDevice();
  {
    ASSERT_OK_AND_ASSIGN(Table fact, Table::FromHost(device, star.fact));
    std::vector<Table> dims;
    for (const HostTable& d : star.dims) {
      ASSERT_OK_AND_ASSIGN(Table dt, Table::FromHost(device, d));
      dims.push_back(std::move(dt));
    }

    // Reference run without faults.
    std::vector<std::vector<int64_t>> expected;
    {
      ASSERT_OK_AND_ASSIGN(
          join::PipelineRunResult ref,
          join::RunJoinPipeline(device, join::JoinAlgo::kPhjOm, fact, dims));
      expected = join::CanonicalRows(ref.output.ToHost());
    }

    // Sweep one-shot faults over the pipeline's first allocation points.
    // The hook only retries the RunJoin calls (not the FK gathers between
    // them), so each k must either be absorbed — correct output plus a
    // degradation log — or fail cleanly; at least one k must be absorbed.
    join::PipelineResilience resilience;
    int absorbed = 0;
    for (uint64_t k = 1; k <= 12; ++k) {
      SCOPED_TRACE("fault at allocation point " + std::to_string(k));
      device.set_fault_injector(vgpu::FaultInjector::FailNth(k));
      Result<join::PipelineRunResult> res = join::RunJoinPipeline(
          device, join::JoinAlgo::kPhjOm, fact, dims, {}, &resilience);
      device.clear_fault_injector();
      if (res.ok()) {
        if (!res->degradation.empty()) {
          EXPECT_EQ(res->degradation[0].action, "retry_more_partition_bits");
          ++absorbed;
        }
        EXPECT_EQ(join::CanonicalRows(res->output.ToHost()), expected);
      } else {
        EXPECT_EQ(res.status().code(), StatusCode::kResourceExhausted)
            << res.status().ToString();
      }
    }
    EXPECT_GT(absorbed, 0) << "no fault ever reached the retry hook";
  }
  ASSERT_OK(device.CheckNoLeaks());
}

/// A device just big enough to hold `star`'s uploaded tables plus
/// `headroom_bytes`: a real, PERSISTENT out-of-memory inside the pipeline's
/// constituent joins — retrying with more radix bits cannot help because the
/// binding constraint is total capacity, not per-partition state.
vgpu::Device MakeCrampedDevice(const workload::StarSchema& star,
                               uint64_t headroom_bytes) {
  uint64_t resident = 0;
  {
    vgpu::Device probe = gpujoin::testing::MakeTestDevice();
    auto fact = Table::FromHost(probe, star.fact).ValueOrDie();
    std::vector<Table> dims;
    for (const HostTable& d : star.dims) {
      dims.push_back(Table::FromHost(probe, d).ValueOrDie());
    }
    resident = probe.memory_stats().live_bytes;
  }
  vgpu::DeviceConfig cfg = vgpu::DeviceConfig::ScaledToWorkload(
      vgpu::DeviceConfig::A100(), uint64_t{1} << 16);
  cfg.global_mem_bytes = resident + headroom_bytes;
  return vgpu::Device(cfg);
}

// Runaway-retry regression: under a persistent resource failure, the
// per-join retry hook used to spin `max_attempts_per_join` identical
// retries with no backoff. It must now (a) stop as soon as the radix-bit
// escalation hits its ceiling (an identical retry cannot succeed),
// regardless of a huge attempt budget, and (b) charge backoff delays to the
// simulated clock between attempts.
TEST(PipelineResilienceTest, PersistentFaultTerminatesWithoutRunawayRetries) {
  workload::StarSchemaSpec spec;
  spec.fact_rows = 1 << 10;
  spec.num_dims = 1;
  spec.dim_rows = 1 << 8;
  const workload::StarSchema star =
      workload::GenerateStarSchema(spec).ValueOrDie();

  vgpu::Device device = MakeCrampedDevice(star, /*headroom_bytes=*/32 << 10);
  {
    ASSERT_OK_AND_ASSIGN(Table fact, Table::FromHost(device, star.fact));
    std::vector<Table> dims;
    ASSERT_OK_AND_ASSIGN(Table d0, Table::FromHost(device, star.dims[0]));
    dims.push_back(std::move(d0));

    join::PipelineResilience resilience;
    resilience.max_attempts_per_join = 1'000'000;  // Absurd budget.
    resilience.backoff.max_attempts = 1'000'000;
    const double t0 = device.elapsed_cycles();
    Result<join::PipelineRunResult> res = join::RunJoinPipeline(
        device, join::JoinAlgo::kPhjOm, fact, dims, {}, &resilience);
    ASSERT_FALSE(res.ok());
    EXPECT_TRUE(res.status().code() == StatusCode::kResourceExhausted ||
                res.status().code() == StatusCode::kOutOfMemory)
        << res.status().ToString();
    // The radix-bit ladder starts at 8 and steps by 2 to its ceiling of 16:
    // at most 5 attempts ever run, so at most 4 backoff delays are charged.
    const double elapsed = device.elapsed_cycles() - t0;
    double max_delay = 0;
    for (int i = 1; i <= 4; ++i) max_delay += resilience.backoff.DelayCycles(i);
    EXPECT_LE(elapsed, max_delay + 1e6) << "retry loop ran away";
  }
  ASSERT_OK(device.CheckNoLeaks());
}

// Attempt caps compose: the effective per-join budget is the smaller of
// max_attempts_per_join and the backoff policy's max_attempts.
TEST(PipelineResilienceTest, BackoffPolicyCapsAttempts) {
  workload::StarSchemaSpec spec;
  spec.fact_rows = 1 << 10;
  spec.num_dims = 1;
  spec.dim_rows = 1 << 8;
  const workload::StarSchema star =
      workload::GenerateStarSchema(spec).ValueOrDie();

  vgpu::Device device = MakeCrampedDevice(star, /*headroom_bytes=*/32 << 10);
  {
    ASSERT_OK_AND_ASSIGN(Table fact, Table::FromHost(device, star.fact));
    std::vector<Table> dims;
    ASSERT_OK_AND_ASSIGN(Table d0, Table::FromHost(device, star.dims[0]));
    dims.push_back(std::move(d0));

    join::PipelineResilience resilience;
    resilience.max_attempts_per_join = 100;
    resilience.backoff.max_attempts = 1;  // No retries at all.
    const double t0 = device.elapsed_cycles();
    Result<join::PipelineRunResult> res = join::RunJoinPipeline(
        device, join::JoinAlgo::kPhjOm, fact, dims, {}, &resilience);
    ASSERT_FALSE(res.ok());
    // Attempt 1 fails and the loop exits without a retry, so no backoff
    // delay was charged — only the (small) kernel cycles of the attempt.
    const double elapsed = device.elapsed_cycles() - t0;
    EXPECT_LT(elapsed, resilience.backoff.DelayCycles(1));
  }
  ASSERT_OK(device.CheckNoLeaks());
}

// ---------------------------------------------------------------------------
// Exhaustive kernel-fault sweeps: for EVERY kernel launch k of every join
// algorithm and group-by strategy, inject a one-shot transient kernel fault
// at k and require that the resilient wrapper ABSORBS it (the transient
// rung retries the same work): clean success, output identical to the
// fault-free baseline, zero leaks, and a bit-identical replay of the
// faulted run on the same reset device. The inverse of the allocation
// sweeps in fault_injection_test.cc, which expect a clean FAILURE — a
// kernel fault is retryable, an exhausted allocator is not.
// ---------------------------------------------------------------------------

std::string SanitizeAlgoName(const char* name) {
  std::string s(name);
  for (char& c : s) {
    if (c == '-') c = '_';
  }
  return s;
}

class KernelFaultJoinSweep : public ::testing::TestWithParam<join::JoinAlgo> {};

TEST_P(KernelFaultJoinSweep, EveryKernelFaultIsAbsorbedAndReplaysIdentically) {
  const join::JoinAlgo algo = GetParam();
  workload::JoinWorkloadSpec spec;
  spec.r_rows = 1 << 9;
  spec.s_rows = 1 << 10;
  spec.seed = 7;
  const workload::JoinWorkload w =
      workload::GenerateJoinInput(spec).ValueOrDie();

  vgpu::Device device = MakeTestDevice();

  // Fault-free baseline: canonical rows plus the kernel count, which bounds
  // the sweep (FailNthKernel numbers launches from the arming point).
  std::vector<std::vector<int64_t>> base_rows;
  uint64_t base_kernels = 0;
  {
    const uint64_t k0 = device.kernels_launched();
    ASSERT_OK_AND_ASSIGN(join::ResilientJoinResult res,
                         join::RunJoinResilient(device, algo, w.r, w.s));
    base_rows = join::CanonicalRows(res.output);
    base_kernels = device.kernels_launched() - k0;
  }
  ASSERT_OK(device.CheckNoLeaks());
  ASSERT_GT(base_kernels, 0u);

  for (uint64_t k = 1; k <= base_kernels; ++k) {
    SCOPED_TRACE("kernel fault at launch " + std::to_string(k));

    ASSERT_OK(device.Reset());
    device.set_fault_injector(vgpu::FaultInjector::FailNthKernel(k));
    ASSERT_OK_AND_ASSIGN(join::ResilientJoinResult res,
                         join::RunJoinResilient(device, algo, w.r, w.s));
    EXPECT_EQ(device.fault_injector().injected_kernel_faults(), 1u);
    bool retried = false;
    for (const DegradationStep& step : res.degradation) {
      if (step.action == "transient_retry") retried = true;
    }
    EXPECT_TRUE(retried) << "fault at kernel " << k
                         << " never reached the transient rung";
    EXPECT_EQ(join::CanonicalRows(res.output), base_rows);
    const double faulted_cycles = device.elapsed_cycles();
    const uint64_t faulted_kernels = device.kernels_launched();
    ASSERT_OK(device.CheckNoLeaks());

    // Replay: the same injector on the same reset device must reproduce
    // the faulted run bit-identically (rows, kernel count, simulated
    // clock) — retries are seeded, never wall-clock driven.
    ASSERT_OK(device.Reset());
    device.set_fault_injector(vgpu::FaultInjector::FailNthKernel(k));
    ASSERT_OK_AND_ASSIGN(join::ResilientJoinResult replay,
                         join::RunJoinResilient(device, algo, w.r, w.s));
    EXPECT_EQ(join::CanonicalRows(replay.output), base_rows);
    EXPECT_EQ(device.kernels_launched(), faulted_kernels);
    EXPECT_EQ(device.elapsed_cycles(), faulted_cycles);
    ASSERT_OK(device.CheckNoLeaks());
    ASSERT_OK(device.Reset());
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllJoinAlgos, KernelFaultJoinSweep,
    ::testing::ValuesIn(join::kAllJoinAlgos),
    [](const ::testing::TestParamInfo<join::JoinAlgo>& info) {
      return SanitizeAlgoName(join::JoinAlgoName(info.param));
    });

class KernelFaultGroupBySweep
    : public ::testing::TestWithParam<groupby::GroupByAlgo> {};

TEST_P(KernelFaultGroupBySweep, EveryKernelFaultIsAbsorbedAndReplaysIdentically) {
  const groupby::GroupByAlgo algo = GetParam();
  workload::GroupByWorkloadSpec spec;
  spec.rows = 1 << 10;
  spec.num_groups = 1 << 6;
  spec.seed = 11;
  const HostTable input = workload::GenerateGroupByInput(spec).ValueOrDie();

  groupby::GroupBySpec gspec;
  gspec.aggregates.push_back({1, groupby::AggOp::kSum});
  gspec.aggregates.push_back({1, groupby::AggOp::kCount});
  gspec.aggregates.push_back({1, groupby::AggOp::kMax});

  vgpu::Device device = MakeTestDevice();

  // Fault-free baseline. The injector is armed AFTER the upload, so kernel
  // numbering spans only the resilient call; the upload runs fault-free in
  // every iteration (its kernels are outside the wrapper's retry scope).
  std::vector<std::vector<int64_t>> base_rows;
  uint64_t base_kernels = 0;
  {
    ASSERT_OK_AND_ASSIGN(Table t, Table::FromHost(device, input));
    const uint64_t k0 = device.kernels_launched();
    ASSERT_OK_AND_ASSIGN(groupby::ResilientGroupByResult res,
                         groupby::RunGroupByResilient(device, algo, t, gspec));
    base_rows = join::CanonicalRows(res.run.output.ToHost());
    base_kernels = device.kernels_launched() - k0;
  }
  ASSERT_OK(device.CheckNoLeaks());
  ASSERT_GT(base_kernels, 0u);

  for (uint64_t k = 1; k <= base_kernels; ++k) {
    SCOPED_TRACE("kernel fault at launch " + std::to_string(k));

    ASSERT_OK(device.Reset());
    double faulted_cycles = 0;
    uint64_t faulted_kernels = 0;
    {
      ASSERT_OK_AND_ASSIGN(Table t, Table::FromHost(device, input));
      device.set_fault_injector(vgpu::FaultInjector::FailNthKernel(k));
      ASSERT_OK_AND_ASSIGN(groupby::ResilientGroupByResult res,
                           groupby::RunGroupByResilient(device, algo, t, gspec));
      EXPECT_EQ(device.fault_injector().injected_kernel_faults(), 1u);
      bool retried = false;
      for (const DegradationStep& step : res.degradation) {
        if (step.action == "transient_retry") retried = true;
      }
      EXPECT_TRUE(retried) << "fault at kernel " << k
                           << " never reached the transient rung";
      EXPECT_EQ(join::CanonicalRows(res.run.output.ToHost()), base_rows);
      faulted_cycles = device.elapsed_cycles();
      faulted_kernels = device.kernels_launched();
    }
    ASSERT_OK(device.CheckNoLeaks());

    ASSERT_OK(device.Reset());
    {
      ASSERT_OK_AND_ASSIGN(Table t, Table::FromHost(device, input));
      device.set_fault_injector(vgpu::FaultInjector::FailNthKernel(k));
      ASSERT_OK_AND_ASSIGN(groupby::ResilientGroupByResult replay,
                           groupby::RunGroupByResilient(device, algo, t, gspec));
      EXPECT_EQ(join::CanonicalRows(replay.run.output.ToHost()), base_rows);
      EXPECT_EQ(device.kernels_launched(), faulted_kernels);
      EXPECT_EQ(device.elapsed_cycles(), faulted_cycles);
    }
    ASSERT_OK(device.CheckNoLeaks());
    ASSERT_OK(device.Reset());
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllGroupByAlgos, KernelFaultGroupBySweep,
    ::testing::ValuesIn(groupby::kAllGroupByAlgos),
    [](const ::testing::TestParamInfo<groupby::GroupByAlgo>& info) {
      return SanitizeAlgoName(groupby::GroupByAlgoName(info.param));
    });

// A kernel fault that never stops firing (probability 1): every retry of
// the rung faults again, so the ladder's transient budget must exhaust and
// surface a clean structured kUnavailable — never an infinite retry loop.
TEST(ResilientJoinTest, PersistentKernelFaultExhaustsTransientBudget) {
  const workload::JoinWorkload w = SmallJoinWorkload();
  vgpu::Device device = MakeTestDevice();
  testing::ScopedLeakCheck leak_check(device);
  device.set_fault_injector(
      vgpu::FaultInjector::FailKernelWithProbability(1.0, /*seed=*/3));
  join::ResilienceOptions opts;
  opts.backoff.max_attempts = 3;
  Result<join::ResilientJoinResult> res =
      join::RunJoinResilient(device, join::JoinAlgo::kPhjOm, w.r, w.s, opts);
  ASSERT_FALSE(res.ok());
  EXPECT_TRUE(res.status().IsUnavailable()) << res.status().ToString();
  EXPECT_NE(res.status().message().find("ladder transient-retry budget"),
            std::string::npos)
      << res.status().ToString();
  device.clear_fault_injector();
  device.ClearTransientFault();
  ASSERT_OK(device.CheckNoLeaks());
}

// Same exhaustion contract for the watchdog: a budget so small every
// kernel trips it means no rung can ever complete.
TEST(ResilientJoinTest, RunawayWatchdogExhaustsTransientBudget) {
  const workload::JoinWorkload w = SmallJoinWorkload();
  vgpu::Device device = MakeTestDevice();
  testing::ScopedLeakCheck leak_check(device);
  device.set_kernel_watchdog_cycles(1.0);
  join::ResilienceOptions opts;
  opts.backoff.max_attempts = 3;
  Result<join::ResilientJoinResult> res =
      join::RunJoinResilient(device, join::JoinAlgo::kPhjOm, w.r, w.s, opts);
  ASSERT_FALSE(res.ok());
  EXPECT_TRUE(res.status().IsUnavailable()) << res.status().ToString();
  EXPECT_NE(res.status().message().find("watchdog_timeout"), std::string::npos)
      << res.status().ToString();
  EXPECT_GT(device.watchdog_trips(), 0u);
  device.set_kernel_watchdog_cycles(0);
  device.ClearTransientFault();
  ASSERT_OK(device.CheckNoLeaks());
}

// A generous watchdog never perturbs a healthy run: same rows, no trips.
TEST(ResilientJoinTest, GenerousWatchdogIsInvisible) {
  const workload::JoinWorkload w = SmallJoinWorkload();
  vgpu::Device device = MakeTestDevice();
  testing::ScopedLeakCheck leak_check(device);
  device.set_kernel_watchdog_cycles(1e15);
  ASSERT_OK_AND_ASSIGN(
      join::ResilientJoinResult res,
      join::RunJoinResilient(device, join::JoinAlgo::kPhjOm, w.r, w.s));
  EXPECT_EQ(res.attempts, 1);
  EXPECT_EQ(device.watchdog_trips(), 0u);
  EXPECT_EQ(join::CanonicalRows(res.output), join::ReferenceJoinRows(w.r, w.s));
  device.set_kernel_watchdog_cycles(0);
}

}  // namespace
}  // namespace gpujoin
