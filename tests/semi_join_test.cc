// Semi and anti joins across all match-finding machineries, against a host
// oracle, plus the partition identity semi ∪ anti == S.

#include <gtest/gtest.h>

#include <set>

#include "join/reference.h"
#include "join/semi.h"
#include "test_util.h"
#include "workload/generator.h"

namespace gpujoin {
namespace {

using join::JoinAlgo;
using join::SemiJoinType;
using testing::MakeTestDevice;

std::vector<std::vector<int64_t>> ReferenceSemiRows(const HostTable& r,
                                                    const HostTable& s,
                                                    bool anti) {
  std::set<int64_t> r_keys(r.columns[0].values.begin(),
                           r.columns[0].values.end());
  std::vector<std::vector<int64_t>> rows;
  for (uint64_t i = 0; i < s.num_rows(); ++i) {
    const bool has = r_keys.count(s.columns[0].values[i]) > 0;
    if (has != anti) {
      std::vector<int64_t> row;
      for (const HostColumn& c : s.columns) row.push_back(c.values[i]);
      rows.push_back(std::move(row));
    }
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

class SemiJoinTest : public ::testing::TestWithParam<JoinAlgo> {};

TEST_P(SemiJoinTest, SemiMatchesOracle) {
  workload::JoinWorkloadSpec spec;
  spec.r_rows = 2048;
  spec.s_rows = 6000;
  spec.s_payload_cols = 2;
  spec.match_ratio = 0.5;
  auto w = workload::GenerateJoinInput(spec).ValueOrDie();
  vgpu::Device device = MakeTestDevice();
  auto r = Table::FromHost(device, w.r).ValueOrDie();
  auto s = Table::FromHost(device, w.s).ValueOrDie();

  auto res = RunSemiJoin(device, GetParam(), r, s, SemiJoinType::kSemi);
  ASSERT_OK(res);
  EXPECT_EQ(join::CanonicalRows(res->output.ToHost()),
            ReferenceSemiRows(w.r, w.s, /*anti=*/false));
  EXPECT_GT(res->output_rows, 0u);
  EXPECT_LT(res->output_rows, spec.s_rows);
}

TEST_P(SemiJoinTest, AntiMatchesOracle) {
  workload::JoinWorkloadSpec spec;
  spec.r_rows = 2048;
  spec.s_rows = 6000;
  spec.s_payload_cols = 1;
  spec.match_ratio = 0.7;
  auto w = workload::GenerateJoinInput(spec).ValueOrDie();
  vgpu::Device device = MakeTestDevice();
  auto r = Table::FromHost(device, w.r).ValueOrDie();
  auto s = Table::FromHost(device, w.s).ValueOrDie();

  auto res = RunSemiJoin(device, GetParam(), r, s, SemiJoinType::kAnti);
  ASSERT_OK(res);
  EXPECT_EQ(join::CanonicalRows(res->output.ToHost()),
            ReferenceSemiRows(w.r, w.s, /*anti=*/true));
}

TEST_P(SemiJoinTest, SemiAndAntiPartitionS) {
  workload::JoinWorkloadSpec spec;
  spec.r_rows = 1024;
  spec.s_rows = 4096;
  spec.match_ratio = 0.33;
  auto w = workload::GenerateJoinInput(spec).ValueOrDie();
  vgpu::Device device = MakeTestDevice();
  auto r = Table::FromHost(device, w.r).ValueOrDie();
  auto s = Table::FromHost(device, w.s).ValueOrDie();

  auto semi = RunSemiJoin(device, GetParam(), r, s, SemiJoinType::kSemi);
  auto anti = RunSemiJoin(device, GetParam(), r, s, SemiJoinType::kAnti);
  ASSERT_OK(semi);
  ASSERT_OK(anti);
  EXPECT_EQ(semi->output_rows + anti->output_rows, spec.s_rows);
}

TEST_P(SemiJoinTest, DuplicateMatchesDoNotDuplicateOutput) {
  // M:N inner joins multiply rows; semi joins must not.
  vgpu::Device device = MakeTestDevice();
  HostTable r{"r", {{"k", DataType::kInt32, {1, 1, 1, 2}}}};
  HostTable s{"s", {{"k", DataType::kInt32, {1, 2, 3}},
                    {"p", DataType::kInt32, {10, 20, 30}}}};
  auto rd = Table::FromHost(device, r).ValueOrDie();
  auto sd = Table::FromHost(device, s).ValueOrDie();
  join::JoinOptions opts;
  opts.pk_fk = false;
  auto res = RunSemiJoin(device, GetParam(), rd, sd, SemiJoinType::kSemi, opts);
  ASSERT_OK(res);
  EXPECT_EQ(res->output_rows, 2u);  // Keys 1 and 2, each once.
}

INSTANTIATE_TEST_SUITE_P(AllAlgos, SemiJoinTest,
                         ::testing::ValuesIn(join::kAllJoinAlgos),
                         [](const ::testing::TestParamInfo<JoinAlgo>& i) {
                           std::string n = join::JoinAlgoName(i.param);
                           for (char& ch : n) {
                             if (ch == '-') ch = '_';
                           }
                           return n;
                         });

TEST(SemiJoinValidationTest, RejectsBadInputs) {
  vgpu::Device device = MakeTestDevice();
  HostTable r{"r", {{"k", DataType::kInt32, {1}}}};
  HostTable s64{"s", {{"k", DataType::kInt64, {1}}}};
  auto rd = Table::FromHost(device, r).ValueOrDie();
  auto sd = Table::FromHost(device, s64).ValueOrDie();
  EXPECT_FALSE(
      RunSemiJoin(device, JoinAlgo::kPhjOm, rd, sd, SemiJoinType::kSemi).ok());
}

}  // namespace
}  // namespace gpujoin
