// Match-finding primitives: merge join over sorted inputs (incl. the
// clustered-output property GFTR depends on), co-partitioned hash join,
// and the global (NPHJ) hash join.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <random>
#include <vector>

#include "common/bit_util.h"
#include "prim/hash_join.h"
#include "prim/merge_join.h"
#include "prim/radix_partition.h"
#include "test_util.h"
#include "vgpu/buffer.h"

namespace gpujoin::prim {
namespace {

using testing::MakeTestDevice;
using vgpu::DeviceBuffer;

/// Expected matches as a sorted multiset of (key, r_key_idx?, s_idx) —
/// verified via key values only plus pair counts, since position mappings
/// differ per algorithm layout.
uint64_t ExpectedMatchCount(const std::vector<int32_t>& r,
                            const std::vector<int32_t>& s) {
  std::map<int32_t, uint64_t> r_counts;
  for (int32_t k : r) ++r_counts[k];
  uint64_t total = 0;
  for (int32_t k : s) {
    auto it = r_counts.find(k);
    if (it != r_counts.end()) total += it->second;
  }
  return total;
}

TEST(MergeJoinTest, PkFkMatchesAreCorrect) {
  vgpu::Device device = MakeTestDevice();
  // R: unique sorted keys 0..99; S: sorted foreign keys with duplicates.
  auto r = DeviceBuffer<int32_t>::Allocate(device, 100).ValueOrDie();
  for (int i = 0; i < 100; ++i) r[i] = i;
  std::vector<int32_t> s_host;
  for (int i = 0; i < 100; i += 2) {
    s_host.push_back(i);
    s_host.push_back(i);  // Each even key twice.
  }
  auto s = DeviceBuffer<int32_t>::FromHost(device, s_host).ValueOrDie();

  auto match = MergeJoinSorted(device, r, s, /*pk_fk=*/true);
  ASSERT_OK(match);
  EXPECT_EQ(match->count(), s_host.size());
  for (uint64_t i = 0; i < match->count(); ++i) {
    EXPECT_EQ(match->keys[i], s_host[match->s_pos[i]]);
    EXPECT_EQ(r[match->r_pos[i]], match->keys[i]);
  }
}

TEST(MergeJoinTest, ManyToManyCrossProducts) {
  vgpu::Device device = MakeTestDevice();
  const std::vector<int32_t> r_host = {1, 1, 2, 5, 5, 5};
  const std::vector<int32_t> s_host = {1, 2, 2, 5};
  auto r = DeviceBuffer<int32_t>::FromHost(device, r_host).ValueOrDie();
  auto s = DeviceBuffer<int32_t>::FromHost(device, s_host).ValueOrDie();
  auto match = MergeJoinSorted(device, r, s, /*pk_fk=*/false);
  ASSERT_OK(match);
  // key 1: 2x1; key 2: 1x2; key 5: 3x1 => 2 + 2 + 3 = 7.
  EXPECT_EQ(match->count(), 7u);
  EXPECT_EQ(match->count(), ExpectedMatchCount(r_host, s_host));
}

TEST(MergeJoinTest, SPositionsAreClustered) {
  // The GFTR-critical property (§4.1): with sorted inputs, the emitted
  // probe-side positions ascend monotonically.
  vgpu::Device device = MakeTestDevice();
  std::mt19937_64 rng(4);
  std::vector<int32_t> r_host(500), s_host(2000);
  for (auto& k : r_host) k = static_cast<int32_t>(rng() % 1000);
  for (auto& k : s_host) k = static_cast<int32_t>(rng() % 1000);
  std::sort(r_host.begin(), r_host.end());
  std::sort(s_host.begin(), s_host.end());
  auto r = DeviceBuffer<int32_t>::FromHost(device, r_host).ValueOrDie();
  auto s = DeviceBuffer<int32_t>::FromHost(device, s_host).ValueOrDie();
  auto match = MergeJoinSorted(device, r, s, /*pk_fk=*/false);
  ASSERT_OK(match);
  ASSERT_GT(match->count(), 0u);
  for (uint64_t i = 1; i < match->count(); ++i) {
    EXPECT_GE(match->s_pos[i], match->s_pos[i - 1]);
  }
}

TEST(MergeJoinTest, DisjointKeyRangesProduceNothing) {
  vgpu::Device device = MakeTestDevice();
  auto r = DeviceBuffer<int32_t>::FromHost(device, {{1, 2, 3}}).ValueOrDie();
  auto s = DeviceBuffer<int32_t>::FromHost(device, {{10, 20}}).ValueOrDie();
  auto match = MergeJoinSorted(device, r, s, true);
  ASSERT_OK(match);
  EXPECT_EQ(match->count(), 0u);
}

class CoPartitionedHashJoinTest : public ::testing::TestWithParam<int> {};

TEST_P(CoPartitionedHashJoinTest, MatchesReferenceCount) {
  const int bits = GetParam();
  vgpu::Device device = MakeTestDevice();
  std::mt19937_64 rng(17);
  const uint64_t nr = 4000, ns = 9000;
  std::vector<int32_t> r_host(nr), s_host(ns);
  for (auto& k : r_host) k = static_cast<int32_t>(rng() % 3000);
  for (auto& k : s_host) k = static_cast<int32_t>(rng() % 3000);

  // Partition both sides by the low `bits` (the PHJ-OM transform).
  auto prep = [&](const std::vector<int32_t>& host) {
    auto keys = DeviceBuffer<int32_t>::FromHost(device, host).ValueOrDie();
    auto vals = DeviceBuffer<int32_t>::Allocate(device, host.size()).ValueOrDie();
    auto ko = DeviceBuffer<int32_t>::Allocate(device, host.size()).ValueOrDie();
    auto vo = DeviceBuffer<int32_t>::Allocate(device, host.size()).ValueOrDie();
    GPUJOIN_CHECK_OK(
        RadixPartitionPass(device, keys, vals, &ko, &vo, 0, bits));
    std::vector<uint64_t> offsets;
    GPUJOIN_CHECK_OK(ComputePartitionOffsets(device, ko, bits, &offsets));
    return std::make_pair(std::move(ko), std::move(offsets));
  };
  auto [r_keys, r_off] = prep(r_host);
  auto [s_keys, s_off] = prep(s_host);

  auto match = HashJoinCoPartitioned(device, r_keys, s_keys, r_off, s_off,
                                     /*capacity=*/256);
  ASSERT_OK(match);
  EXPECT_EQ(match->count(), ExpectedMatchCount(r_host, s_host));
  for (uint64_t i = 0; i < match->count(); ++i) {
    EXPECT_EQ(r_keys[match->r_pos[i]], match->keys[i]);
    EXPECT_EQ(s_keys[match->s_pos[i]], match->keys[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Bits, CoPartitionedHashJoinTest,
                         ::testing::Values(1, 3, 5, 8));

TEST(CoPartitionedHashJoinTest, BuildChunkingHandlesOversizedPartitions) {
  // Capacity far below the partition size: block-nested-loop chunking.
  vgpu::Device device = MakeTestDevice();
  const uint64_t nr = 2000;
  std::vector<int32_t> r_host(nr), s_host(nr);
  for (uint64_t i = 0; i < nr; ++i) {
    r_host[i] = static_cast<int32_t>(i) * 2;  // All even keys, 1 partition.
    s_host[i] = static_cast<int32_t>(i);      // Half match.
  }
  auto r = DeviceBuffer<int32_t>::FromHost(device, r_host).ValueOrDie();
  auto s = DeviceBuffer<int32_t>::FromHost(device, s_host).ValueOrDie();
  const std::vector<uint64_t> off = {0, nr};  // A single co-partition.
  auto match = HashJoinCoPartitioned(device, r, s, off, off, /*capacity=*/64);
  ASSERT_OK(match);
  EXPECT_EQ(match->count(), ExpectedMatchCount(r_host, s_host));
}

TEST(GlobalHashJoinTest, MatchesReferenceAndEmitsOriginalPositions) {
  vgpu::Device device = MakeTestDevice();
  std::mt19937_64 rng(23);
  std::vector<int32_t> r_host(3000), s_host(7000);
  for (auto& k : r_host) k = static_cast<int32_t>(rng() % 2048);
  for (auto& k : s_host) k = static_cast<int32_t>(rng() % 2048);
  auto r = DeviceBuffer<int32_t>::FromHost(device, r_host).ValueOrDie();
  auto s = DeviceBuffer<int32_t>::FromHost(device, s_host).ValueOrDie();
  auto match = HashJoinGlobal(device, r, s);
  ASSERT_OK(match);
  EXPECT_EQ(match->count(), ExpectedMatchCount(r_host, s_host));
  for (uint64_t i = 0; i < match->count(); ++i) {
    // Positions refer to the ORIGINAL relations (no transform phase).
    EXPECT_EQ(r_host[match->r_pos[i]], match->keys[i]);
    EXPECT_EQ(s_host[match->s_pos[i]], match->keys[i]);
  }
  // Probe-side positions are clustered (the NPHJ property from §5.2.2).
  for (uint64_t i = 1; i < match->count(); ++i) {
    EXPECT_GE(match->s_pos[i], match->s_pos[i - 1]);
  }
}

TEST(GlobalHashJoinTest, Int64Keys) {
  vgpu::Device device = MakeTestDevice();
  std::vector<int64_t> r_host = {int64_t{1} << 40, 5, (int64_t{1} << 40) + 1};
  std::vector<int64_t> s_host = {5, int64_t{1} << 40, 5};
  auto r = DeviceBuffer<int64_t>::FromHost(device, r_host).ValueOrDie();
  auto s = DeviceBuffer<int64_t>::FromHost(device, s_host).ValueOrDie();
  auto match = HashJoinGlobal(device, r, s);
  ASSERT_OK(match);
  EXPECT_EQ(match->count(), 3u);
}

TEST(SharedHashCapacityTest, ScalesWithSharedMemoryAndTypes) {
  vgpu::Device device(vgpu::DeviceConfig::A100());
  const uint64_t cap32 = SharedHashCapacity<int32_t>(device);
  const uint64_t cap64 = SharedHashCapacity<int64_t>(device);
  EXPECT_GT(cap32, cap64);  // Wider keys -> fewer slots.
  EXPECT_GE(cap64, 64u);    // Floor.
}

}  // namespace
}  // namespace gpujoin::prim
