// RADIX-PARTITION primitive: correctness against std::stable_sort-by-digit,
// stability (the property GFTR's payload alignment rests on, §4.3),
// multi-pass composition, and partition-offset computation.

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "common/bit_util.h"
#include "prim/radix_partition.h"
#include "test_util.h"
#include "vgpu/buffer.h"

namespace gpujoin::prim {
namespace {

using testing::MakeTestDevice;
using vgpu::DeviceBuffer;

struct Pair {
  int32_t key;
  int32_t val;
};

std::vector<Pair> RandomPairs(uint64_t n, int32_t key_range, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<Pair> out(n);
  for (uint64_t i = 0; i < n; ++i) {
    out[i] = {static_cast<int32_t>(rng() % key_range), static_cast<int32_t>(i)};
  }
  return out;
}

class RadixPartitionPassTest : public ::testing::TestWithParam<int> {};

TEST_P(RadixPartitionPassTest, MatchesStableSortByDigit) {
  const int bits = GetParam();
  vgpu::Device device = MakeTestDevice();
  const uint64_t n = 10000;
  auto pairs = RandomPairs(n, 1 << 14, 42);

  auto keys = DeviceBuffer<int32_t>::Allocate(device, n).ValueOrDie();
  auto vals = DeviceBuffer<int32_t>::Allocate(device, n).ValueOrDie();
  for (uint64_t i = 0; i < n; ++i) {
    keys[i] = pairs[i].key;
    vals[i] = pairs[i].val;
  }
  auto keys_out = DeviceBuffer<int32_t>::Allocate(device, n).ValueOrDie();
  auto vals_out = DeviceBuffer<int32_t>::Allocate(device, n).ValueOrDie();
  std::vector<uint64_t> hist;
  ASSERT_OK(RadixPartitionPass(device, keys, vals, &keys_out, &vals_out, 2,
                               bits, &hist));

  // Reference: stable sort by the same digit.
  std::stable_sort(pairs.begin(), pairs.end(), [&](const Pair& a, const Pair& b) {
    return bit_util::RadixDigit(a.key, 2, bits) <
           bit_util::RadixDigit(b.key, 2, bits);
  });
  for (uint64_t i = 0; i < n; ++i) {
    EXPECT_EQ(keys_out[i], pairs[i].key) << "at " << i;
    EXPECT_EQ(vals_out[i], pairs[i].val) << "at " << i;
  }

  // Histogram integrity.
  ASSERT_EQ(hist.size(), size_t{1} << bits);
  uint64_t total = 0;
  for (uint64_t c : hist) total += c;
  EXPECT_EQ(total, n);
}

INSTANTIATE_TEST_SUITE_P(Bits, RadixPartitionPassTest,
                         ::testing::Values(1, 2, 4, 6, 8));

TEST(RadixPartitionPassTest, RejectsBadBitWidths) {
  vgpu::Device device = MakeTestDevice();
  auto keys = DeviceBuffer<int32_t>::Allocate(device, 16).ValueOrDie();
  auto vals = DeviceBuffer<int32_t>::Allocate(device, 16).ValueOrDie();
  auto ko = DeviceBuffer<int32_t>::Allocate(device, 16).ValueOrDie();
  auto vo = DeviceBuffer<int32_t>::Allocate(device, 16).ValueOrDie();
  EXPECT_FALSE(RadixPartitionPass(device, keys, vals, &ko, &vo, 0, 0).ok());
  EXPECT_FALSE(RadixPartitionPass(device, keys, vals, &ko, &vo, 0, 9).ok());
}

TEST(RadixPartitionPassTest, RejectsSizeMismatch) {
  vgpu::Device device = MakeTestDevice();
  auto keys = DeviceBuffer<int32_t>::Allocate(device, 16).ValueOrDie();
  auto vals = DeviceBuffer<int32_t>::Allocate(device, 8).ValueOrDie();
  auto ko = DeviceBuffer<int32_t>::Allocate(device, 16).ValueOrDie();
  auto vo = DeviceBuffer<int32_t>::Allocate(device, 16).ValueOrDie();
  EXPECT_FALSE(RadixPartitionPass(device, keys, vals, &ko, &vo, 0, 4).ok());
}

class MultiPassTest : public ::testing::TestWithParam<int> {};

TEST_P(MultiPassTest, GroupsByFullDigitStably) {
  const int total_bits = GetParam();
  vgpu::Device device = MakeTestDevice();
  const uint64_t n = 20000;
  auto pairs = RandomPairs(n, 1 << 18, 7);

  auto keys = DeviceBuffer<int32_t>::Allocate(device, n).ValueOrDie();
  auto vals = DeviceBuffer<int32_t>::Allocate(device, n).ValueOrDie();
  auto keys_tmp = DeviceBuffer<int32_t>::Allocate(device, n).ValueOrDie();
  auto vals_tmp = DeviceBuffer<int32_t>::Allocate(device, n).ValueOrDie();
  for (uint64_t i = 0; i < n; ++i) {
    keys[i] = pairs[i].key;
    vals[i] = pairs[i].val;
  }
  auto passes = RadixPartitionMultiPass(device, &keys, &vals, &keys_tmp,
                                        &vals_tmp, total_bits);
  ASSERT_OK(passes);
  EXPECT_EQ(*passes, static_cast<int>(bit_util::CeilDiv(total_bits, 8)));

  std::stable_sort(pairs.begin(), pairs.end(), [&](const Pair& a, const Pair& b) {
    return bit_util::RadixDigit(a.key, 0, total_bits) <
           bit_util::RadixDigit(b.key, 0, total_bits);
  });
  for (uint64_t i = 0; i < n; ++i) {
    ASSERT_EQ(keys[i], pairs[i].key) << "at " << i;
    ASSERT_EQ(vals[i], pairs[i].val) << "at " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(TotalBits, MultiPassTest,
                         ::testing::Values(4, 8, 11, 15, 16));

TEST(ComputePartitionOffsetsTest, BoundariesMatchContents) {
  vgpu::Device device = MakeTestDevice();
  const int bits = 6;
  const uint64_t n = 5000;
  auto pairs = RandomPairs(n, 1 << 12, 3);
  std::stable_sort(pairs.begin(), pairs.end(), [&](const Pair& a, const Pair& b) {
    return bit_util::RadixDigit(a.key, 0, bits) <
           bit_util::RadixDigit(b.key, 0, bits);
  });
  auto keys = DeviceBuffer<int32_t>::Allocate(device, n).ValueOrDie();
  for (uint64_t i = 0; i < n; ++i) keys[i] = pairs[i].key;

  std::vector<uint64_t> offsets;
  ASSERT_OK(ComputePartitionOffsets(device, keys, bits, &offsets));
  ASSERT_EQ(offsets.size(), (size_t{1} << bits) + 1);
  EXPECT_EQ(offsets.front(), 0u);
  EXPECT_EQ(offsets.back(), n);
  for (uint32_t p = 0; p < (1u << bits); ++p) {
    for (uint64_t i = offsets[p]; i < offsets[p + 1]; ++i) {
      EXPECT_EQ(bit_util::RadixDigit(keys[i], 0, bits), p);
    }
  }
}

TEST(RadixPartitionDeterminismTest, IdenticalAcrossRuns) {
  // The §4.3 requirement: RADIX-PARTITION must produce identical results
  // across runs (unlike bucket chaining) so payload transforms align.
  const uint64_t n = 8192;
  std::vector<int32_t> first_keys, second_keys;
  for (int run = 0; run < 2; ++run) {
    vgpu::Device device = MakeTestDevice();
    device.set_interleave_seed(run * 777 + 1);  // Must have no effect here.
    auto pairs = RandomPairs(n, 1 << 12, 99);
    auto keys = DeviceBuffer<int32_t>::Allocate(device, n).ValueOrDie();
    auto vals = DeviceBuffer<int32_t>::Allocate(device, n).ValueOrDie();
    for (uint64_t i = 0; i < n; ++i) {
      keys[i] = pairs[i].key;
      vals[i] = pairs[i].val;
    }
    auto ko = DeviceBuffer<int32_t>::Allocate(device, n).ValueOrDie();
    auto vo = DeviceBuffer<int32_t>::Allocate(device, n).ValueOrDie();
    ASSERT_OK(RadixPartitionPass(device, keys, vals, &ko, &vo, 0, 8));
    auto& target = run == 0 ? first_keys : second_keys;
    target.assign(ko.data(), ko.data() + n);
  }
  EXPECT_EQ(first_keys, second_keys);
}

}  // namespace
}  // namespace gpujoin::prim
