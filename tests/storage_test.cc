// Columns, tables, and the dictionary encoder.

#include <gtest/gtest.h>

#include "storage/column.h"
#include "storage/dictionary.h"
#include "storage/table.h"
#include "test_util.h"

namespace gpujoin {
namespace {

using testing::MakeTestDevice;

TEST(DeviceColumnTest, Int32RoundTrip) {
  vgpu::Device device = MakeTestDevice();
  auto col =
      DeviceColumn::FromHost(device, DataType::kInt32, {{1, -2, 3}}).ValueOrDie();
  EXPECT_EQ(col.type(), DataType::kInt32);
  EXPECT_EQ(col.size(), 3u);
  EXPECT_EQ(col.size_bytes(), 12u);
  EXPECT_EQ(col.Get(1), -2);
  col.Set(1, 42);
  EXPECT_EQ(col.Get(1), 42);
  EXPECT_EQ(col.ToHost(), (std::vector<int64_t>{1, 42, 3}));
}

TEST(DeviceColumnTest, Int64HoldsWideValues) {
  vgpu::Device device = MakeTestDevice();
  const int64_t big = int64_t{1} << 50;
  auto col =
      DeviceColumn::FromHost(device, DataType::kInt64, {{big, 0}}).ValueOrDie();
  EXPECT_EQ(col.Get(0), big);
  EXPECT_EQ(col.size_bytes(), 16u);
}

TEST(DeviceColumnTest, RejectsValuesThatDoNotFit) {
  vgpu::Device device = MakeTestDevice();
  auto r = DeviceColumn::FromHost(device, DataType::kInt32,
                                  {{int64_t{1} << 40}});
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(DeviceColumnTest, AddressesAreElementStrided) {
  vgpu::Device device = MakeTestDevice();
  auto c32 = DeviceColumn::Allocate(device, DataType::kInt32, 8).ValueOrDie();
  EXPECT_EQ(c32.addr(3), c32.addr(0) + 12);
  auto c64 = DeviceColumn::Allocate(device, DataType::kInt64, 8).ValueOrDie();
  EXPECT_EQ(c64.addr(3), c64.addr(0) + 24);
}

TEST(TableTest, FromHostAndBack) {
  vgpu::Device device = MakeTestDevice();
  HostTable host{"t",
                 {{"k", DataType::kInt32, {1, 2}},
                  {"v", DataType::kInt64, {10, 20}}}};
  auto table = Table::FromHost(device, host).ValueOrDie();
  EXPECT_EQ(table.num_rows(), 2u);
  EXPECT_EQ(table.num_columns(), 2);
  EXPECT_EQ(table.column_name(1), "v");
  EXPECT_EQ(table.total_bytes(), 2 * 4 + 2 * 8u);
  const HostTable round = table.ToHost();
  EXPECT_EQ(round.columns[0].values, host.columns[0].values);
  EXPECT_EQ(round.columns[1].values, host.columns[1].values);
}

TEST(TableTest, RejectsRaggedColumns) {
  vgpu::Device device = MakeTestDevice();
  HostTable host{"t",
                 {{"k", DataType::kInt32, {1, 2}},
                  {"v", DataType::kInt32, {10}}}};
  EXPECT_FALSE(Table::FromHost(device, host).ok());
}

TEST(TableTest, AddColumnValidatesRowCount) {
  vgpu::Device device = MakeTestDevice();
  HostTable host{"t", {{"k", DataType::kInt32, {1, 2, 3}}}};
  auto table = Table::FromHost(device, host).ValueOrDie();
  auto good = DeviceColumn::Allocate(device, DataType::kInt32, 3).ValueOrDie();
  ASSERT_OK(table.AddColumn("ok", std::move(good)));
  auto bad = DeviceColumn::Allocate(device, DataType::kInt32, 5).ValueOrDie();
  EXPECT_FALSE(table.AddColumn("bad", std::move(bad)).ok());
}

TEST(DictionaryTest, EncodesDenselyAndDecodes) {
  DictionaryEncoder dict;
  EXPECT_EQ(dict.Encode("AIR"), 0);
  EXPECT_EQ(dict.Encode("RAIL"), 1);
  EXPECT_EQ(dict.Encode("AIR"), 0);  // Idempotent.
  EXPECT_EQ(dict.Encode("SHIP"), 2);
  EXPECT_EQ(dict.size(), 3u);
  EXPECT_EQ(dict.Decode(1).ValueOrDie(), "RAIL");
  EXPECT_EQ(dict.Lookup("SHIP"), 2);
  EXPECT_EQ(dict.Lookup("TRUCK"), -1);
  EXPECT_FALSE(dict.Decode(99).ok());
  EXPECT_FALSE(dict.Decode(-1).ok());
}

TEST(DictionaryTest, ManyDistinctValues) {
  DictionaryEncoder dict;
  for (int i = 0; i < 10000; ++i) {
    EXPECT_EQ(dict.Encode("value_" + std::to_string(i)), i);
  }
  EXPECT_EQ(dict.size(), 10000u);
  EXPECT_EQ(dict.Decode(9999).ValueOrDie(), "value_9999");
}

}  // namespace
}  // namespace gpujoin
