// Determinism guarantees (§4.3): the GFTR implementations (SMJ-OM, PHJ-OM)
// are bit-deterministic regardless of the scheduling seed, while PHJ-UM's
// bucket chaining produces run-dependent (yet always correct) layouts —
// which is exactly why it cannot support the GFTR pattern.

#include <gtest/gtest.h>

#include <vector>

#include "join/join.h"
#include "join/reference.h"
#include "test_util.h"
#include "workload/generator.h"

namespace gpujoin {
namespace {

using join::JoinAlgo;
using testing::MakeTestDevice;

std::vector<std::vector<int64_t>> RunWithSeed(JoinAlgo algo, uint64_t seed,
                                              bool* identical_order_marker,
                                              const workload::JoinWorkload& w) {
  vgpu::Device device = MakeTestDevice();
  device.set_interleave_seed(seed);
  auto r = Table::FromHost(device, w.r).ValueOrDie();
  auto s = Table::FromHost(device, w.s).ValueOrDie();
  auto res = RunJoin(device, algo, r, s).ValueOrDie();
  (void)identical_order_marker;
  // Return rows in OUTPUT ORDER (not canonicalized) to compare layouts.
  const HostTable out = res.output.ToHost();
  std::vector<std::vector<int64_t>> rows(out.num_rows());
  for (uint64_t i = 0; i < out.num_rows(); ++i) {
    for (const HostColumn& c : out.columns) rows[i].push_back(c.values[i]);
  }
  return rows;
}

workload::JoinWorkload MakeWorkload() {
  workload::JoinWorkloadSpec spec;
  spec.r_rows = 6000;
  spec.s_rows = 12000;
  spec.r_payload_cols = 2;
  spec.s_payload_cols = 2;
  return workload::GenerateJoinInput(spec).ValueOrDie();
}

TEST(DeterminismTest, GftrImplementationsAreSeedIndependent) {
  const auto w = MakeWorkload();
  for (JoinAlgo algo : {JoinAlgo::kSmjOm, JoinAlgo::kPhjOm, JoinAlgo::kSmjUm,
                        JoinAlgo::kNphj}) {
    const auto a = RunWithSeed(algo, 1, nullptr, w);
    const auto b = RunWithSeed(algo, 999, nullptr, w);
    EXPECT_EQ(a, b) << join::JoinAlgoName(algo)
                    << " must be bit-deterministic across seeds";
  }
}

TEST(DeterminismTest, BucketChainOutputOrderIsSeedDependentYetCorrect) {
  const auto w = MakeWorkload();
  auto a = RunWithSeed(JoinAlgo::kPhjUm, 1, nullptr, w);
  auto b = RunWithSeed(JoinAlgo::kPhjUm, 999, nullptr, w);
  // Different atomics arrival order => different output order...
  EXPECT_NE(a, b);
  // ...but the same multiset of rows, and both match the oracle.
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, join::ReferenceJoinRows(w.r, w.s));
}

TEST(DeterminismTest, SameSeedReproducesBucketChainExactly) {
  const auto w = MakeWorkload();
  const auto a = RunWithSeed(JoinAlgo::kPhjUm, 77, nullptr, w);
  const auto b = RunWithSeed(JoinAlgo::kPhjUm, 77, nullptr, w);
  EXPECT_EQ(a, b);
}

TEST(DeterminismTest, FastPathMatchesGenericPathOnFullJoins) {
  // The batched-run memory accounting (Device fast path) must leave every
  // simulated counter bit-identical to the generic per-warp path, for every
  // algorithm and interleave seed — otherwise figures silently change with
  // the host-speed optimization.
  const auto w = MakeWorkload();
  for (JoinAlgo algo : {JoinAlgo::kSmjOm, JoinAlgo::kPhjOm, JoinAlgo::kNphj}) {
    for (uint64_t seed : {1ull, 77ull, 999ull}) {
      double cycles[2];
      uint64_t sectors[2], hits[2], row_misses[2];
      for (bool fast : {true, false}) {
        vgpu::Device device = MakeTestDevice();
        device.set_fast_path_enabled(fast);
        device.set_interleave_seed(seed);
        auto r = Table::FromHost(device, w.r).ValueOrDie();
        auto s = Table::FromHost(device, w.s).ValueOrDie();
        auto res = RunJoin(device, algo, r, s).ValueOrDie();
        (void)res;
        const vgpu::KernelStats& t = device.total_stats();
        cycles[fast] = t.cycles;
        sectors[fast] = t.sectors;
        hits[fast] = t.l2_hit_sectors;
        row_misses[fast] = t.dram_row_misses;
      }
      EXPECT_DOUBLE_EQ(cycles[0], cycles[1])
          << join::JoinAlgoName(algo) << " seed=" << seed;
      EXPECT_EQ(sectors[0], sectors[1]);
      EXPECT_EQ(hits[0], hits[1]);
      EXPECT_EQ(row_misses[0], row_misses[1]);
    }
  }
}

TEST(DeterminismTest, SimulatedTimingIsReproducible) {
  const auto w = MakeWorkload();
  double t1 = 0, t2 = 0;
  for (double* t : {&t1, &t2}) {
    vgpu::Device device = MakeTestDevice();
    auto r = Table::FromHost(device, w.r).ValueOrDie();
    auto s = Table::FromHost(device, w.s).ValueOrDie();
    auto res = RunJoin(device, join::JoinAlgo::kPhjOm, r, s).ValueOrDie();
    *t = res.phases.total_s();
  }
  EXPECT_DOUBLE_EQ(t1, t2);
}

}  // namespace
}  // namespace gpujoin
