// Extensions: fused join + aggregation, composite-key packing, and the
// out-of-core join.

#include <gtest/gtest.h>

#include <map>
#include <random>

#include "join/join_aggregate.h"
#include "join/out_of_core.h"
#include "join/reference.h"
#include "storage/key_pack.h"
#include "test_util.h"
#include "workload/generator.h"

namespace gpujoin {
namespace {

using join::JoinAggregateSpec;
using join::JoinAlgo;
using join::JoinColumnRef;
using testing::MakeTestDevice;

// ---------------------------------------------------------------------------
// Fused join + aggregation.
// ---------------------------------------------------------------------------

TEST(JoinAggregateTest, MatchesJoinThenGroupBy) {
  // SELECT r.grp, SUM(s.measure), COUNT(*) FROM r JOIN s GROUP BY r.grp.
  vgpu::Device device = MakeTestDevice();
  std::mt19937_64 rng(9);
  HostTable r{"r", {{"k", DataType::kInt32, {}},
                    {"grp", DataType::kInt32, {}},
                    {"unused1", DataType::kInt64, {}},
                    {"unused2", DataType::kInt64, {}}}};
  HostTable s{"s", {{"k", DataType::kInt32, {}},
                    {"measure", DataType::kInt32, {}},
                    {"unused3", DataType::kInt64, {}}}};
  const uint64_t kR = 2048, kS = 8192;
  for (uint64_t i = 0; i < kR; ++i) {
    r.columns[0].values.push_back(static_cast<int64_t>(i));
    r.columns[1].values.push_back(static_cast<int64_t>(i % 16));
    r.columns[2].values.push_back(1);
    r.columns[3].values.push_back(2);
  }
  for (uint64_t i = 0; i < kS; ++i) {
    s.columns[0].values.push_back(static_cast<int64_t>(rng() % kR));
    s.columns[1].values.push_back(static_cast<int64_t>(rng() % 1000));
    s.columns[2].values.push_back(3);
  }
  auto rd = Table::FromHost(device, r).ValueOrDie();
  auto sd = Table::FromHost(device, s).ValueOrDie();

  JoinAggregateSpec spec;
  spec.group_by = {JoinColumnRef::Side::kR, 1};
  spec.aggregates = {{{JoinColumnRef::Side::kS, 1}, groupby::AggOp::kSum},
                     {{JoinColumnRef::Side::kS, 1}, groupby::AggOp::kCount}};
  auto fused = RunJoinAggregate(device, JoinAlgo::kPhjOm,
                                groupby::GroupByAlgo::kHashPartitioned, rd, sd,
                                spec);
  ASSERT_OK(fused);
  EXPECT_EQ(fused->join_rows, kS);
  EXPECT_EQ(fused->num_groups, 16u);

  // Host reference.
  std::map<int64_t, std::pair<int64_t, int64_t>> expected;  // grp -> (sum, count).
  for (uint64_t i = 0; i < kS; ++i) {
    const int64_t grp = s.columns[0].values[i] % 16;
    expected[grp].first += s.columns[1].values[i];
    ++expected[grp].second;
  }
  const auto rows = join::CanonicalRows(fused->output.ToHost());
  ASSERT_EQ(rows.size(), expected.size());
  for (const auto& row : rows) {
    EXPECT_EQ(row[1], expected[row[0]].first) << "group " << row[0];
    EXPECT_EQ(row[2], expected[row[0]].second) << "group " << row[0];
  }
}

TEST(JoinAggregateTest, EarlyProjectionSkipsUnreferencedColumns) {
  // The fused run must be cheaper than join-everything + group-by when the
  // inputs carry many unreferenced payload columns.
  const uint64_t n = uint64_t{1} << 16;
  vgpu::Device device(
      vgpu::DeviceConfig::ScaledToWorkload(vgpu::DeviceConfig::A100(), n));
  workload::JoinWorkloadSpec wspec;
  wspec.r_rows = n / 2;
  wspec.s_rows = n;
  wspec.r_payload_cols = 6;
  wspec.s_payload_cols = 6;
  auto w = workload::GenerateJoinInput(wspec).ValueOrDie();
  for (auto& v : w.r.columns[1].values) v &= 0xff;  // Group attribute.
  auto rd = Table::FromHost(device, w.r).ValueOrDie();
  auto sd = Table::FromHost(device, w.s).ValueOrDie();

  JoinAggregateSpec spec;
  spec.group_by = {JoinColumnRef::Side::kR, 1};
  spec.aggregates = {{{JoinColumnRef::Side::kS, 1}, groupby::AggOp::kSum}};

  device.FlushL2();
  const double f0 = device.ElapsedSeconds();
  auto fused = RunJoinAggregate(device, JoinAlgo::kPhjOm,
                                groupby::GroupByAlgo::kHashPartitioned, rd, sd,
                                spec);
  ASSERT_OK(fused);
  const double fused_s = device.ElapsedSeconds() - f0;

  device.FlushL2();
  const double u0 = device.ElapsedSeconds();
  auto joined = RunJoin(device, JoinAlgo::kPhjOm, rd, sd).ValueOrDie();
  groupby::GroupBySpec gs;
  gs.aggregates = {{7, groupby::AggOp::kSum}};  // s_pay1 in the full output.
  Table gb_in = Table::FromColumns(
      "full", {"grp", "m"},
      [&] {
        std::vector<DeviceColumn> cols;
        cols.push_back(joined.output.TakeColumn(1));
        cols.push_back(joined.output.TakeColumn(7));
        return cols;
      }());
  gs.aggregates = {{1, groupby::AggOp::kSum}};
  auto unfused =
      RunGroupBy(device, groupby::GroupByAlgo::kHashPartitioned, gb_in, gs)
          .ValueOrDie();
  const double unfused_s = device.ElapsedSeconds() - u0;

  EXPECT_LT(fused_s, unfused_s * 0.7)
      << "fused " << fused_s << " vs unfused " << unfused_s;
  EXPECT_EQ(fused->num_groups, unfused.num_groups);
}

TEST(JoinAggregateTest, ValidatesSpec) {
  vgpu::Device device = MakeTestDevice();
  HostTable r{"r", {{"k", DataType::kInt32, {1}}, {"g", DataType::kInt32, {1}}}};
  HostTable s{"s", {{"k", DataType::kInt32, {1}}, {"m", DataType::kInt32, {1}}}};
  auto rd = Table::FromHost(device, r).ValueOrDie();
  auto sd = Table::FromHost(device, s).ValueOrDie();
  JoinAggregateSpec bad;
  bad.group_by = {JoinColumnRef::Side::kR, 7};
  bad.aggregates = {{{JoinColumnRef::Side::kS, 1}, groupby::AggOp::kSum}};
  EXPECT_FALSE(RunJoinAggregate(device, JoinAlgo::kPhjOm,
                                groupby::GroupByAlgo::kHashGlobal, rd, sd, bad)
                   .ok());
  JoinAggregateSpec empty;
  empty.group_by = {JoinColumnRef::Side::kR, 1};
  EXPECT_FALSE(RunJoinAggregate(device, JoinAlgo::kPhjOm,
                                groupby::GroupByAlgo::kHashGlobal, rd, sd, empty)
                   .ok());
}

// ---------------------------------------------------------------------------
// Key packing.
// ---------------------------------------------------------------------------

TEST(KeyPackTest, RoundTrip) {
  vgpu::Device device = MakeTestDevice();
  auto hi = DeviceColumn::FromHost(device, DataType::kInt32, {{1, 0, 70000}})
                .ValueOrDie();
  auto lo = DeviceColumn::FromHost(device, DataType::kInt32, {{5, 9, 70001}})
                .ValueOrDie();
  auto packed = PackKeyColumns(device, hi, lo);
  ASSERT_OK(packed);
  EXPECT_EQ(packed->Get(0), (int64_t{1} << 32) | 5);
  auto unpacked = UnpackKeyColumn(device, *packed);
  ASSERT_OK(unpacked);
  EXPECT_EQ(unpacked->first.ToHost(), hi.ToHost());
  EXPECT_EQ(unpacked->second.ToHost(), lo.ToHost());
}

TEST(KeyPackTest, PackedJoinEqualsCompositeJoin) {
  // Join on (a, b) == join on pack(a, b).
  vgpu::Device device = MakeTestDevice();
  std::mt19937_64 rng(12);
  const uint64_t nr = 1024, ns = 4096;
  HostTable r{"r", {{"a", DataType::kInt32, {}},
                    {"b", DataType::kInt32, {}},
                    {"p", DataType::kInt32, {}}}};
  HostTable s{"s", {{"a", DataType::kInt32, {}},
                    {"b", DataType::kInt32, {}},
                    {"q", DataType::kInt32, {}}}};
  for (uint64_t i = 0; i < nr; ++i) {
    r.columns[0].values.push_back(static_cast<int64_t>(i % 64));
    r.columns[1].values.push_back(static_cast<int64_t>(i / 64));
    r.columns[2].values.push_back(static_cast<int64_t>(i));
  }
  for (uint64_t i = 0; i < ns; ++i) {
    s.columns[0].values.push_back(static_cast<int64_t>(rng() % 64));
    s.columns[1].values.push_back(static_cast<int64_t>(rng() % 20));
    s.columns[2].values.push_back(static_cast<int64_t>(i));
  }
  auto rd = Table::FromHost(device, r).ValueOrDie();
  auto sd = Table::FromHost(device, s).ValueOrDie();

  auto r_key = PackKeyColumns(device, rd.column(0), rd.column(1)).ValueOrDie();
  auto s_key = PackKeyColumns(device, sd.column(0), sd.column(1)).ValueOrDie();
  Table r_packed = Table::FromColumns(
      "r", {"ab", "p"},
      [&] {
        std::vector<DeviceColumn> cols;
        cols.push_back(std::move(r_key));
        cols.push_back(rd.TakeColumn(2));
        return cols;
      }());
  Table s_packed = Table::FromColumns(
      "s", {"ab", "q"},
      [&] {
        std::vector<DeviceColumn> cols;
        cols.push_back(std::move(s_key));
        cols.push_back(sd.TakeColumn(2));
        return cols;
      }());
  auto res =
      RunJoin(device, JoinAlgo::kPhjOm, r_packed, s_packed).ValueOrDie();

  // Host reference over composite keys.
  std::map<std::pair<int64_t, int64_t>, std::vector<int64_t>> build;
  for (uint64_t i = 0; i < nr; ++i) {
    build[{r.columns[0].values[i], r.columns[1].values[i]}].push_back(
        r.columns[2].values[i]);
  }
  uint64_t expected = 0;
  for (uint64_t i = 0; i < ns; ++i) {
    auto it = build.find({s.columns[0].values[i], s.columns[1].values[i]});
    if (it != build.end()) expected += it->second.size();
  }
  EXPECT_EQ(res.output_rows, expected);
}

TEST(KeyPackTest, RejectsBadInputs) {
  vgpu::Device device = MakeTestDevice();
  auto i64 = DeviceColumn::FromHost(device, DataType::kInt64, {{1}}).ValueOrDie();
  auto i32 = DeviceColumn::FromHost(device, DataType::kInt32, {{1}}).ValueOrDie();
  EXPECT_FALSE(PackKeyColumns(device, i64, i32).ok());
  auto neg = DeviceColumn::FromHost(device, DataType::kInt32, {{-1}}).ValueOrDie();
  EXPECT_FALSE(PackKeyColumns(device, neg, i32).ok());
  EXPECT_FALSE(UnpackKeyColumn(device, i32).ok());
}

// ---------------------------------------------------------------------------
// Out-of-core join.
// ---------------------------------------------------------------------------

TEST(OutOfCoreJoinTest, MatchesReferenceOnTinyDevice) {
  // Device capacity far below the inputs: forces multi-fragment execution.
  workload::JoinWorkloadSpec spec;
  spec.r_rows = 1 << 14;
  spec.s_rows = 1 << 15;
  spec.r_payload_cols = 2;
  spec.s_payload_cols = 2;
  auto w = workload::GenerateJoinInput(spec).ValueOrDie();

  vgpu::DeviceConfig cfg =
      vgpu::DeviceConfig::ScaledToWorkload(vgpu::DeviceConfig::A100(), 1 << 14);
  cfg.global_mem_bytes = 2 * 1024 * 1024;  // 2 MB device vs ~1.3 MB inputs.
  vgpu::Device device(cfg);

  auto res = join::RunOutOfCoreJoin(device, JoinAlgo::kPhjOm, w.r, w.s);
  ASSERT_OK(res);
  EXPECT_GT(res->fragments, 1);
  EXPECT_GT(res->bytes_transferred, 0u);
  EXPECT_GT(res->device_seconds, 0.0);
  EXPECT_EQ(join::CanonicalRows(res->output),
            join::ReferenceJoinRows(w.r, w.s));
}

TEST(OutOfCoreJoinTest, SingleFragmentDegeneratesToInMemory) {
  workload::JoinWorkloadSpec spec;
  spec.r_rows = 2048;
  spec.s_rows = 2048;
  auto w = workload::GenerateJoinInput(spec).ValueOrDie();
  vgpu::Device device = MakeTestDevice();
  join::OutOfCoreOptions opts;
  opts.fragment_bits = 1;
  auto res = join::RunOutOfCoreJoin(device, JoinAlgo::kSmjOm, w.r, w.s, opts);
  ASSERT_OK(res);
  EXPECT_EQ(res->fragments, 2);
  EXPECT_EQ(join::CanonicalRows(res->output),
            join::ReferenceJoinRows(w.r, w.s));
}

TEST(OutOfCoreJoinTest, AllAlgorithmsAgree) {
  workload::JoinWorkloadSpec spec;
  spec.r_rows = 4096;
  spec.s_rows = 8192;
  spec.match_ratio = 0.8;
  auto w = workload::GenerateJoinInput(spec).ValueOrDie();
  const auto expected = join::ReferenceJoinRows(w.r, w.s);
  for (JoinAlgo algo : join::kAllJoinAlgos) {
    vgpu::Device device = MakeTestDevice();
    join::OutOfCoreOptions opts;
    opts.fragment_bits = 3;
    auto res = join::RunOutOfCoreJoin(device, algo, w.r, w.s, opts);
    ASSERT_OK(res);
    EXPECT_EQ(join::CanonicalRows(res->output), expected)
        << join::JoinAlgoName(algo);
  }
}

TEST(OutOfCoreJoinTest, TransferChargesAdvanceTheClock) {
  vgpu::Device device = MakeTestDevice();
  const double t0 = device.ElapsedSeconds();
  device.ChargeHostTransfer(25'000'000);  // 25 MB at 25 GB/s ~ 1 ms.
  const double dt = device.ElapsedSeconds() - t0;
  EXPECT_NEAR(dt, 1e-3, 2e-4);
}

}  // namespace
}  // namespace gpujoin
