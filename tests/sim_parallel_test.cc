// The host-parallel simulation path (Device::ParallelBlocks fanned across
// GPUJOIN_SIM_THREADS worker threads) must be BIT-IDENTICAL to the
// sequential path: same query results, same KernelStats field by field,
// same L2-shard and DRAM-row state after the merge, same trace spans, and
// the same fault-injection / lifecycle / leak-audit behavior. These tests
// sweep every join algorithm and group-by strategy across thread counts
// {1, 2, 7, 16} and compare everything exactly — the determinism contract
// DESIGN.md §12 documents (each block runs on a cold shard, so its outcome
// is a pure function of (block_id, inputs); merging in fixed block order
// makes the thread count unobservable).

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "groupby/groupby.h"
#include "join/join.h"
#include "obs/trace.h"
#include "storage/table.h"
#include "test_util.h"
#include "vgpu/buffer.h"
#include "vgpu/device.h"
#include "workload/generator.h"

namespace gpujoin {
namespace {

using groupby::AggOp;
using groupby::GroupByAlgo;
using groupby::GroupBySpec;
using join::JoinAlgo;
using join::JoinRunResult;
using testing::MakeTestDevice;
using vgpu::Device;
using vgpu::KernelStats;
using workload::GenerateGroupByInput;
using workload::GenerateJoinInput;
using workload::GroupByWorkloadSpec;
using workload::JoinWorkload;
using workload::JoinWorkloadSpec;

#define EXPECT_STATS_EQ(a, b)                                        \
  do {                                                               \
    EXPECT_EQ((a).warp_instructions, (b).warp_instructions);         \
    EXPECT_EQ((a).mem_instructions, (b).mem_instructions);           \
    EXPECT_EQ((a).transactions, (b).transactions);                   \
    EXPECT_EQ((a).sectors, (b).sectors);                             \
    EXPECT_EQ((a).l2_hit_sectors, (b).l2_hit_sectors);               \
    EXPECT_EQ((a).dram_sectors, (b).dram_sectors);                   \
    EXPECT_EQ((a).dram_row_misses, (b).dram_row_misses);             \
    EXPECT_EQ((a).bytes_read, (b).bytes_read);                       \
    EXPECT_EQ((a).bytes_written, (b).bytes_written);                 \
    EXPECT_EQ((a).shared_accesses, (b).shared_accesses);             \
    EXPECT_EQ((a).atomic_serializations, (b).atomic_serializations); \
    EXPECT_DOUBLE_EQ((a).serial_cycles, (b).serial_cycles);          \
    EXPECT_DOUBLE_EQ((a).compute_cycles, (b).compute_cycles);        \
    EXPECT_DOUBLE_EQ((a).memory_cycles, (b).memory_cycles);          \
    EXPECT_DOUBLE_EQ((a).cycles, (b).cycles);                        \
  } while (0)

const int kThreadCounts[] = {2, 7, 16};

/// FNV-1a over every cell of a table: proves the parallel path produces the
/// same bytes, not just the same statistics.
uint64_t TableChecksum(const Table& t) {
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      h ^= (v >> (8 * b)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  mix(t.num_rows());
  for (int c = 0; c < t.num_columns(); ++c) {
    for (uint64_t i = 0; i < t.num_rows(); ++i) {
      mix(static_cast<uint64_t>(t.column(c).Get(i)));
    }
  }
  return h;
}

/// The full post-run fingerprint compared between thread counts.
struct RunFingerprint {
  KernelStats total;
  std::vector<uint64_t> l2_sectors;
  std::vector<uint64_t> dram_rows;
  double elapsed_seconds = 0;
  uint64_t output_rows = 0;
  uint64_t checksum = 0;
  uint64_t peak_mem = 0;
};

void ExpectFingerprintEq(const RunFingerprint& a, const RunFingerprint& b) {
  EXPECT_STATS_EQ(a.total, b.total);
  EXPECT_EQ(a.l2_sectors, b.l2_sectors);
  EXPECT_EQ(a.dram_rows, b.dram_rows);
  EXPECT_DOUBLE_EQ(a.elapsed_seconds, b.elapsed_seconds);
  EXPECT_EQ(a.output_rows, b.output_rows);
  EXPECT_EQ(a.checksum, b.checksum);
  EXPECT_EQ(a.peak_mem, b.peak_mem);
}

JoinWorkloadSpec JoinSpec() {
  JoinWorkloadSpec spec;
  spec.r_rows = 4096;
  spec.s_rows = 9000;  // Not a tile multiple: exercises tail blocks.
  spec.r_payload_cols = 2;
  spec.s_payload_cols = 2;
  return spec;
}

RunFingerprint RunJoinWith(int threads, JoinAlgo algo, const JoinWorkload& w) {
  RunFingerprint fp;
  Device device = MakeTestDevice();
  device.set_parallel_sim(threads);
  EXPECT_EQ(device.parallel_sim_threads(), threads);
  {
    Table r = Table::FromHost(device, w.r).ValueOrDie();
    Table s = Table::FromHost(device, w.s).ValueOrDie();
    JoinRunResult res = join::RunJoin(device, algo, r, s).ValueOrDie();
    fp.output_rows = res.output_rows;
    fp.checksum = TableChecksum(res.output);
    fp.peak_mem = res.peak_mem_bytes;
  }
  fp.total = device.total_stats();
  fp.l2_sectors = device.DebugResidentL2Sectors();
  fp.dram_rows = device.DebugOpenDramRows();
  fp.elapsed_seconds = device.ElapsedSeconds();
  EXPECT_OK(device.CheckNoLeaks());
  return fp;
}

class ParallelSimJoinTest : public ::testing::TestWithParam<JoinAlgo> {};

TEST_P(ParallelSimJoinTest, BitIdenticalAcrossThreadCounts) {
  const JoinAlgo algo = GetParam();
  ASSERT_OK_AND_ASSIGN(JoinWorkload w, GenerateJoinInput(JoinSpec()));
  const RunFingerprint seq = RunJoinWith(1, algo, w);
  EXPECT_GT(seq.output_rows, 0u);
  for (int threads : kThreadCounts) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ExpectFingerprintEq(seq, RunJoinWith(threads, algo, w));
  }
}

INSTANTIATE_TEST_SUITE_P(AllAlgos, ParallelSimJoinTest,
                         ::testing::ValuesIn(join::kAllJoinAlgos),
                         [](const auto& info) {
                           return std::string(
                               join::JoinAlgoShortName(info.param));
                         });

RunFingerprint RunGroupByWith(int threads, GroupByAlgo algo,
                              const HostTable& host) {
  RunFingerprint fp;
  Device device = MakeTestDevice();
  device.set_parallel_sim(threads);
  GroupBySpec spec;
  spec.aggregates = {{1, AggOp::kSum}, {2, AggOp::kMax}, {1, AggOp::kCount}};
  {
    Table input = Table::FromHost(device, host).ValueOrDie();
    auto res = groupby::RunGroupBy(device, algo, input, spec).ValueOrDie();
    fp.output_rows = res.num_groups;
    fp.checksum = TableChecksum(res.output);
    fp.peak_mem = res.peak_mem_bytes;
  }
  fp.total = device.total_stats();
  fp.l2_sectors = device.DebugResidentL2Sectors();
  fp.dram_rows = device.DebugOpenDramRows();
  fp.elapsed_seconds = device.ElapsedSeconds();
  EXPECT_OK(device.CheckNoLeaks());
  return fp;
}

class ParallelSimGroupByTest : public ::testing::TestWithParam<GroupByAlgo> {};

TEST_P(ParallelSimGroupByTest, BitIdenticalAcrossThreadCounts) {
  const GroupByAlgo algo = GetParam();
  GroupByWorkloadSpec spec;
  spec.rows = 20000;
  spec.num_groups = 700;
  spec.payload_cols = 2;
  ASSERT_OK_AND_ASSIGN(HostTable host, GenerateGroupByInput(spec));
  const RunFingerprint seq = RunGroupByWith(1, algo, host);
  EXPECT_GT(seq.output_rows, 0u);
  for (int threads : kThreadCounts) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ExpectFingerprintEq(seq, RunGroupByWith(threads, algo, host));
  }
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, ParallelSimGroupByTest,
                         ::testing::ValuesIn(groupby::kAllGroupByAlgos),
                         [](const auto& info) {
                           switch (info.param) {
                             case GroupByAlgo::kHashGlobal:
                               return std::string("HashGlobal");
                             case GroupByAlgo::kHashPartitioned:
                               return std::string("HashPartitioned");
                             case GroupByAlgo::kSortBased:
                               return std::string("SortBased");
                           }
                           return std::string("Unknown");
                         });

// --- Direct ParallelBlocks stream equivalence: per-block access streams
// that are pure functions of block_id must merge identically at any fan-out.

void RunBlockStream(Device& device, uint64_t buf_addr, uint64_t num_blocks) {
  vgpu::KernelScope ks(device, "block_stream");
  ASSERT_OK(device.ParallelBlocks(
      num_blocks, [&](uint64_t b, vgpu::BlockContext& ctx) -> Status {
        // A deterministic mix of run, warp, shared, and atomic traffic whose
        // shape varies per block.
        const uint64_t base = buf_addr + (b % 13) * 4096;
        ctx.LoadSeq(base, 1000 + (b % 7) * 31, 4);
        uint64_t addrs[32];
        for (uint32_t l = 0; l < 32; ++l) {
          addrs[l] = buf_addr + ((b * 131 + l * 977) % (1 << 19));
        }
        ctx.Load({addrs, 32}, 8);
        ctx.StoreSeq(base + 64, 513 + (b % 5), 8);
        uint32_t slots[32];
        for (uint32_t l = 0; l < 32; ++l) {
          slots[l] = static_cast<uint32_t>((b + l) % ((b % 3) + 2));
        }
        ctx.SharedAtomic({slots, 32});
        ctx.Compute(b % 17);
        if (b % 4 == 0) ctx.SerialStall(static_cast<double>(b % 23));
        return Status::OK();
      }));
}

TEST(ParallelBlocksTest, RandomBlockStreamsMergeIdenticallyAtAnyFanOut) {
  RunFingerprint seq;
  auto run = [](int threads) {
    RunFingerprint fp;
    Device device = MakeTestDevice();
    device.set_parallel_sim(threads);
    auto buf = vgpu::DeviceBuffer<uint8_t>::Allocate(device, 1 << 20)
                   .ValueOrDie();
    RunBlockStream(device, buf.addr(), 57);
    RunBlockStream(device, buf.addr(), 31);  // Starts from merged L2 state.
    fp.total = device.total_stats();
    fp.l2_sectors = device.DebugResidentL2Sectors();
    fp.dram_rows = device.DebugOpenDramRows();
    fp.elapsed_seconds = device.ElapsedSeconds();
    return fp;
  };
  seq = run(1);
  EXPECT_FALSE(seq.l2_sectors.empty());
  for (int threads : kThreadCounts) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const RunFingerprint par = run(threads);
    EXPECT_STATS_EQ(seq.total, par.total);
    EXPECT_EQ(seq.l2_sectors, par.l2_sectors);
    EXPECT_EQ(seq.dram_rows, par.dram_rows);
    EXPECT_DOUBLE_EQ(seq.elapsed_seconds, par.elapsed_seconds);
  }
}

TEST(ParallelBlocksTest, FirstErrorInBlockOrderWinsRegardlessOfThreads) {
  for (int threads : {1, 2, 7, 16}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    Device device = MakeTestDevice();
    device.set_parallel_sim(threads);
    vgpu::KernelScope ks(device, "failing_stream");
    const Status st = device.ParallelBlocks(
        40, [&](uint64_t b, vgpu::BlockContext& ctx) -> Status {
          ctx.Compute(1);
          if (b >= 11 && b % 2 == 1) {
            return Status::InvalidArgument("block " + std::to_string(b));
          }
          return Status::OK();
        });
    ASSERT_FALSE(st.ok());
    // Block 11 is the first failing block in block order; later failures
    // (13, 15, ...) must never win the race.
    EXPECT_NE(st.message().find("block 11"), std::string::npos)
        << st.ToString();
  }
}

// --- Trace spans: the span tree (names, nesting, simulated clocks, stats)
// must not depend on the thread count. Host wall-clock fields are excluded —
// they are explicitly observability-only.

TEST(ParallelSimObsTest, TraceSpansAreIdenticalAcrossThreadCounts) {
  ASSERT_OK_AND_ASSIGN(JoinWorkload w, GenerateJoinInput(JoinSpec()));
  auto collect = [&](int threads) {
    obs::Tracer::Global().Clear();
    obs::Tracer::Global().set_enabled(true);
    Device device = MakeTestDevice();
    device.set_parallel_sim(threads);
    {
      Table r = Table::FromHost(device, w.r).ValueOrDie();
      Table s = Table::FromHost(device, w.s).ValueOrDie();
      join::RunJoin(device, JoinAlgo::kPhjOm, r, s).ValueOrDie();
    }
    std::vector<obs::SpanRecord> spans = obs::Tracer::Global().spans();
    obs::Tracer::Global().set_enabled(false);
    obs::Tracer::Global().Clear();
    return spans;
  };
  const auto seq = collect(1);
  ASSERT_FALSE(seq.empty());
  for (int threads : kThreadCounts) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const auto par = collect(threads);
    ASSERT_EQ(seq.size(), par.size());
    for (size_t i = 0; i < seq.size(); ++i) {
      SCOPED_TRACE("span " + std::to_string(i) + " (" + seq[i].name + ")");
      EXPECT_EQ(seq[i].category, par[i].category);
      EXPECT_EQ(seq[i].name, par[i].name);
      EXPECT_EQ(seq[i].parent, par[i].parent);
      EXPECT_EQ(seq[i].depth, par[i].depth);
      EXPECT_DOUBLE_EQ(seq[i].start_cycles, par[i].start_cycles);
      EXPECT_DOUBLE_EQ(seq[i].end_cycles, par[i].end_cycles);
      EXPECT_STATS_EQ(seq[i].stats, par[i].stats);
      EXPECT_EQ(seq[i].live_bytes_end, par[i].live_bytes_end);
    }
  }
}

// --- Fault injection, lifecycle seams, and leak audits must stay
// deterministic under the parallel path: allocations and kernel boundaries
// all happen on the calling thread, so the Nth attempt / Nth kernel is the
// same with any fan-out.

TEST(ParallelSimResilienceTest, FaultInjectionTripsIdenticallyAcrossThreads) {
  ASSERT_OK_AND_ASSIGN(JoinWorkload w, GenerateJoinInput(JoinSpec()));
  auto run = [&](int threads, uint64_t nth) {
    Device device(vgpu::DeviceConfig::ScaledToWorkload(
                      vgpu::DeviceConfig::A100(), uint64_t{1} << 16),
                  vgpu::FaultInjector::FailNth(nth), nullptr, threads);
    std::string message;
    uint64_t attempts = 0;
    {
      Table r = Table::FromHost(device, w.r).ValueOrDie();
      Table s = Table::FromHost(device, w.s).ValueOrDie();
      auto res = join::RunJoin(device, JoinAlgo::kPhjOm, r, s);
      EXPECT_FALSE(res.ok());
      message = res.status().ToString();
      attempts = device.memory_stats().alloc_attempts;
      EXPECT_EQ(device.memory_stats().injected_failures, 1u);
    }
    EXPECT_OK(device.CheckNoLeaks());  // Error path must not leak.
    return std::make_pair(message, attempts);
  };
  for (uint64_t nth : {9ull, 14ull}) {
    const auto seq = run(1, nth);
    for (int threads : kThreadCounts) {
      SCOPED_TRACE("threads=" + std::to_string(threads) +
                   " nth=" + std::to_string(nth));
      EXPECT_EQ(run(threads, nth), seq);
    }
  }
}

TEST(ParallelSimResilienceTest, CancellationSeamIsIdenticalAcrossThreads) {
  ASSERT_OK_AND_ASSIGN(JoinWorkload w, GenerateJoinInput(JoinSpec()));
  auto run = [&](int threads) {
    vgpu::LifecycleControl control;
    control.set_cancel_at_kernel(5);
    Device device(vgpu::DeviceConfig::ScaledToWorkload(
                      vgpu::DeviceConfig::A100(), uint64_t{1} << 16),
                  vgpu::FaultInjector{}, &control, threads);
    std::string message;
    {
      Table r = Table::FromHost(device, w.r).ValueOrDie();
      Table s = Table::FromHost(device, w.s).ValueOrDie();
      auto res = join::RunJoin(device, JoinAlgo::kPhjOm, r, s);
      EXPECT_FALSE(res.ok());
      message = res.status().ToString();
    }
    EXPECT_OK(device.CheckNoLeaks());
    return std::make_pair(message, device.total_stats().cycles);
  };
  const auto seq = run(1);
  for (int threads : kThreadCounts) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    EXPECT_EQ(run(threads), seq);
  }
}

// --- host_kernel_seconds satellite: under the parallel path the device
// reports both wall seconds and CPU-summed worker seconds; both must be
// populated and non-negative (their exact values are host timing, not
// simulated state, so only sanity is asserted).

TEST(ParallelSimProfileTest, WallAndCpuSecondsBothReported) {
  Device device = MakeTestDevice();
  device.set_parallel_sim(4);
  auto buf = vgpu::DeviceBuffer<uint8_t>::Allocate(device, 1 << 20).ValueOrDie();
  RunBlockStream(device, buf.addr(), 64);
  EXPECT_GT(device.host_kernel_seconds(), 0.0);
  EXPECT_GE(device.host_kernel_cpu_seconds(), 0.0);
}

}  // namespace
}  // namespace gpujoin
